// Package rsconfig renders and parses BIRD-style route-server
// configuration files. The paper's §3 dictionary construction starts
// from exactly this artifact: "using the LG API, we fetch the RS
// configuration file containing the semantics of informational and
// action BGP communities available". Render produces a plausible
// config for one IXP scheme (import policy plus annotated community
// definitions); Parse recovers the community semantics from such a
// text, which is how the collection side builds its dictionary without
// any out-of-band knowledge.
package rsconfig

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"ixplight/internal/bgp"
	"ixplight/internal/dictionary"
)

// Options tune the rendered import policy.
type Options struct {
	RouterID       string
	MaxPathLen     int
	MaxCommunities int
}

func (o *Options) setDefaults() {
	if o.RouterID == "" {
		o.RouterID = "192.0.2.1"
	}
	if o.MaxPathLen == 0 {
		o.MaxPathLen = 64
	}
}

// Render emits the configuration text for one scheme. The community
// section annotates every definition with a machine-parsable comment:
//
//	define comm_12 = (0, 15169); # do-not-announce-to | AS15169 | do not announce to AS15169
func Render(scheme *dictionary.Scheme, opts Options) string {
	opts.setDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "# ixplight route server configuration — %s\n", scheme.IXP)
	fmt.Fprintf(&b, "router id %s;\n", opts.RouterID)
	fmt.Fprintf(&b, "define rs_asn = %d;\n\n", scheme.RSASN)

	b.WriteString("# import policy (§3: filtered vs accepted)\n")
	b.WriteString("filter ixp_import {\n")
	b.WriteString("  if is_bogon_prefix(net) then reject; # bogon prefix\n")
	b.WriteString("  if bgp_path ~ [= * bogon_asn * =] then reject; # bogon ASN\n")
	fmt.Fprintf(&b, "  if bgp_path.len > %d then reject; # AS path too long\n", opts.MaxPathLen)
	b.WriteString("  if net.type = NET_IP4 && (net.len > 24 || net.len < 8) then reject; # prefix bounds\n")
	b.WriteString("  if net.type = NET_IP6 && (net.len > 48 || net.len < 16) then reject; # prefix bounds\n")
	if opts.MaxCommunities > 0 {
		fmt.Fprintf(&b, "  if bgp_community.len > %d then reject; # too many communities\n", opts.MaxCommunities)
	}
	if scheme.SupportsBlackhole {
		b.WriteString("  if (65535, 666) ~ bgp_community then accept; # blackhole host routes bypass bounds\n")
	}
	b.WriteString("  accept;\n")
	b.WriteString("}\n\n")

	b.WriteString("# community semantics\n")
	for i, e := range scheme.RSConfigEntries() {
		fmt.Fprintf(&b, "define comm_%d = (%d, %d); # %s | %s | %s\n",
			i, e.Community.ASN(), e.Community.Value(),
			e.Action, targetField(e), e.Description)
	}
	return b.String()
}

func targetField(e dictionary.Entry) string {
	switch e.Target {
	case dictionary.TargetAll:
		return "all"
	case dictionary.TargetPeer:
		return fmt.Sprintf("AS%d", e.TargetASN)
	default:
		return "-"
	}
}

// Def is one community definition recovered from a config text.
type Def struct {
	Community   bgp.Community
	Action      dictionary.ActionType
	Target      dictionary.TargetKind
	TargetASN   uint32
	Description string
}

// Parse extracts the community definitions from a rendered
// configuration. Lines that are not community defines are skipped;
// malformed define lines are an error (a corrupted config must not
// silently shrink the dictionary).
func Parse(text string) ([]Def, error) {
	var out []Def
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "define comm_") {
			continue
		}
		def, err := parseDefine(line)
		if err != nil {
			return nil, fmt.Errorf("rsconfig: line %d: %w", lineNo, err)
		}
		out = append(out, def)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseDefine(line string) (Def, error) {
	// define comm_N = (a, b); # action | target | description
	_, rest, ok := strings.Cut(line, "=")
	if !ok {
		return Def{}, fmt.Errorf("no '=' in %q", line)
	}
	valuePart, comment, ok := strings.Cut(rest, "#")
	if !ok {
		return Def{}, fmt.Errorf("missing annotation comment in %q", line)
	}
	valuePart = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(valuePart), ";"))
	if !strings.HasPrefix(valuePart, "(") || !strings.HasSuffix(valuePart, ")") {
		return Def{}, fmt.Errorf("bad community tuple %q", valuePart)
	}
	halves := strings.Split(valuePart[1:len(valuePart)-1], ",")
	if len(halves) != 2 {
		return Def{}, fmt.Errorf("bad community tuple %q", valuePart)
	}
	a, errA := strconv.ParseUint(strings.TrimSpace(halves[0]), 10, 16)
	b, errB := strconv.ParseUint(strings.TrimSpace(halves[1]), 10, 16)
	if errA != nil || errB != nil {
		return Def{}, fmt.Errorf("bad community tuple %q", valuePart)
	}

	fields := strings.SplitN(comment, "|", 3)
	if len(fields) != 3 {
		return Def{}, fmt.Errorf("annotation needs 3 fields in %q", comment)
	}
	action, err := parseAction(strings.TrimSpace(fields[0]))
	if err != nil {
		return Def{}, err
	}
	def := Def{
		Community:   bgp.NewCommunity(uint16(a), uint16(b)),
		Action:      action,
		Description: strings.TrimSpace(fields[2]),
	}
	switch target := strings.TrimSpace(fields[1]); {
	case target == "all":
		def.Target = dictionary.TargetAll
	case target == "-":
		def.Target = dictionary.TargetNone
	case strings.HasPrefix(target, "AS"):
		var asn uint32
		if _, err := fmt.Sscanf(target, "AS%d", &asn); err != nil {
			return Def{}, fmt.Errorf("bad target %q: %v", target, err)
		}
		def.Target = dictionary.TargetPeer
		def.TargetASN = asn
	default:
		return Def{}, fmt.Errorf("bad target %q", target)
	}
	return def, nil
}

func parseAction(s string) (dictionary.ActionType, error) {
	for _, a := range []dictionary.ActionType{
		dictionary.Informational, dictionary.DoNotAnnounceTo,
		dictionary.AnnounceOnlyTo, dictionary.PrependTo, dictionary.Blackhole,
	} {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown action %q", s)
}

// Entries converts parsed definitions into dictionary entries for one
// IXP — the §3 "RS config" half of the dictionary union.
func Entries(ixp string, defs []Def) []dictionary.Entry {
	out := make([]dictionary.Entry, 0, len(defs))
	for _, d := range defs {
		out = append(out, dictionary.Entry{
			Community:   d.Community,
			IXP:         ixp,
			Action:      d.Action,
			Target:      d.Target,
			TargetASN:   d.TargetASN,
			Description: d.Description,
		})
	}
	return out
}
