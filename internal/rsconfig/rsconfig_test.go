package rsconfig

import (
	"strings"
	"testing"

	"ixplight/internal/bgp"
	"ixplight/internal/dictionary"
)

func TestRenderShape(t *testing.T) {
	scheme := dictionary.ProfileByName("DE-CIX")
	text := Render(scheme, Options{MaxCommunities: 100})
	for _, want := range []string{
		"router id 192.0.2.1;",
		"define rs_asn = 6695;",
		"filter ixp_import",
		"bgp_path.len > 64",
		"too many communities",
		"(65535, 666)", // blackhole bypass
		"define comm_0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered config misses %q", want)
		}
	}
	// LINX has no blackholing: the bypass stanza must be absent.
	linx := Render(dictionary.ProfileByName("LINX"), Options{})
	if strings.Contains(linx, "(65535, 666)") {
		t.Error("LINX config must not mention the blackhole bypass")
	}
}

// TestRoundTripAllSchemes pins the §3 extraction: parsing a rendered
// config recovers exactly the scheme's RS-config entry set.
func TestRoundTripAllSchemes(t *testing.T) {
	for _, scheme := range dictionary.Profiles() {
		text := Render(scheme, Options{})
		defs, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: %v", scheme.IXP, err)
		}
		want := scheme.RSConfigEntries()
		if len(defs) != len(want) {
			t.Fatalf("%s: parsed %d defs, want %d", scheme.IXP, len(defs), len(want))
		}
		for i, d := range defs {
			w := want[i]
			if d.Community != w.Community || d.Action != w.Action ||
				d.Target != w.Target || d.TargetASN != w.TargetASN ||
				d.Description != w.Description {
				t.Errorf("%s def %d: got %+v want %+v", scheme.IXP, i, d, w)
			}
		}
		// The converted entries union with the website docs back to the
		// full dictionary (the §3 construction).
		union := dictionary.UnionEntries(Entries(scheme.IXP, defs), scheme.WebsiteEntries())
		if len(union) != len(scheme.Entries()) {
			t.Errorf("%s: union = %d entries, want %d", scheme.IXP, len(union), len(scheme.Entries()))
		}
	}
}

func TestParseSkipsNonDefineLines(t *testing.T) {
	text := "# comment\nrouter id 10.0.0.1;\n\ndefine rs_asn = 1;\n"
	defs, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 0 {
		t.Errorf("defs = %v", defs)
	}
}

func TestParseRejectsMalformedDefines(t *testing.T) {
	cases := []string{
		"define comm_0 (0, 1); # x | all | y",                     // no '='
		"define comm_0 = (0, 1);",                                 // no comment
		"define comm_0 = 0:1; # do-not-announce-to | all | y",     // bad tuple
		"define comm_0 = (0, 1); # do-not-announce-to | all",      // 2 fields
		"define comm_0 = (0, 1); # explode | all | y",             // unknown action
		"define comm_0 = (0, 1); # do-not-announce-to | ASx | y",  // bad target
		"define comm_0 = (0, 1); # do-not-announce-to | here | y", // bad target kind
		"define comm_0 = (0, 99999); # do-not-announce-to | all | y",
	}
	for _, line := range cases {
		if _, err := Parse(line + "\n"); err == nil {
			t.Errorf("accepted malformed line %q", line)
		}
	}
}

func TestParseTolerantOfWhitespace(t *testing.T) {
	line := "   define comm_7 =   ( 0 , 15169 ) ;   #  do-not-announce-to  |  AS15169  |  do not announce to AS15169  \n"
	defs, err := Parse(line)
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 1 {
		t.Fatalf("defs = %v", defs)
	}
	d := defs[0]
	if d.Community != bgp.NewCommunity(0, 15169) || d.TargetASN != 15169 ||
		d.Action != dictionary.DoNotAnnounceTo {
		t.Errorf("def = %+v", d)
	}
	if d.Description != "do not announce to AS15169" {
		t.Errorf("description = %q", d.Description)
	}
}
