package ixpgen

import (
	"fmt"
	"math/rand"

	"ixplight/internal/bgp"
	"ixplight/internal/collector"
	"ixplight/internal/netutil"
)

// Evolved daily series: the delta-chain counterpart of GenerateDay.
//
// GenerateDay regenerates every day from a related seed, which is
// right for scale calibration but wrong for storage realism — two
// adjacent days share routes only as far as their seeds collide. A
// real route server's consecutive daily RIBs instead overlap almost
// completely (the redundancy delta snapshots exploit), so EvolveSeries
// produces each day by *editing* the previous one: a small fraction of
// routes withdrawn, re-tagged or MED-flapped, a matching trickle of
// fresh announcements, weekly membership churn, and the §3 collection
// valleys as one-day drops that recover the next day.

const (
	// evolvePrefixBase numbers the fresh prefixes evolved days
	// announce — disjoint from Generate's per-member ranges (< ~50k)
	// and emitInvalid's 900k+ range, so an evolved announcement never
	// collides with an existing route.
	evolvePrefixBase = 600000
	// evolveJoinerBase numbers the ASNs of members joining mid-series:
	// above the synthetic member pool (30000+), below the downstream
	// hop pool (100000+).
	evolveJoinerBase = 59000
)

// EvolveSeries generates an o.Days-long daily series for p by evolving
// day 0 (a plain Generate at o.Scale) with per-day churn, calling fn
// once per day in date order. churn is the approximate fraction of
// routes edited per day (withdrawn + re-tagged + flapped, with a
// matching share of fresh announcements); <= 0 defaults to 0.03,
// within the paper's "under 4%" daily variation. Every seventh day one
// member departs (its routes withdrawn) and a fresh one joins, so
// member-dependent aggregates see churn too. o.ValleyDays emit a
// one-day collapse to o.ValleyDepth of the healthy series, which
// continues unharmed the next day.
//
// Each emitted snapshot is freshly allocated and normalized; fn may
// retain it. The series is deterministic in (p, o, churn).
func EvolveSeries(p Profile, o TemporalOptions, churn float64, fn func(day int, snap *collector.Snapshot) error) error {
	(&o).setDefaults()
	if churn <= 0 {
		churn = 0.03
	}
	w, err := Generate(p, Options{Seed: o.Seed, Scale: o.Scale})
	if err != nil {
		return err
	}
	cur := w.Snapshot(o.Start.Format("2006-01-02"))
	if err := fn(0, cur); err != nil {
		return err
	}
	freshPrefix := evolvePrefixBase
	joinerASN := uint32(evolveJoinerBase)
	for d := 1; d < o.Days; d++ {
		date := o.Start.AddDate(0, 0, d).Format("2006-01-02")
		rng := rand.New(rand.NewSource(o.Seed*1000003 + int64(d)))
		next := evolveDay(cur, date, rng, churn, &freshPrefix)
		if d%7 == 0 {
			churnMembers(next, rng, &joinerASN)
		}
		next.Normalize()
		emit := next
		if isValleyDay(o, d) {
			emit = shrinkSnapshot(next, o.ValleyDepth, rng)
			emit.Normalize()
		}
		if err := fn(d, emit); err != nil {
			return err
		}
		cur = next // the healthy series continues past a valley
	}
	return nil
}

func isValleyDay(o TemporalOptions, d int) bool {
	for _, v := range o.ValleyDays {
		if v == d {
			return true
		}
	}
	return false
}

// evolveDay derives one day from the previous one. prev is never
// mutated: kept routes are copied by value with their attribute slices
// shared, and edited routes are cloned before their slices change.
func evolveDay(prev *collector.Snapshot, date string, rng *rand.Rand, churn float64, freshPrefix *int) *collector.Snapshot {
	next := &collector.Snapshot{
		IXP:           prev.IXP,
		Date:          date,
		Members:       append([]collector.Member(nil), prev.Members...),
		FilteredCount: prev.FilteredCount,
	}
	perOp := churn / 3
	routes := make([]bgp.Route, 0, len(prev.Routes)+len(prev.Routes)/16+4)
	for i := range prev.Routes {
		r := prev.Routes[i]
		switch roll := rng.Float64(); {
		case roll < perOp: // withdrawn
			continue
		case roll < 2*perOp: // re-tagged
			nr := r.Clone()
			if n := len(nr.Communities); n > 0 && rng.Intn(2) == 0 {
				nr.Communities[rng.Intn(n)] = memberPrivate(nr.PeerAS(), rng)
			} else {
				nr.Communities = append(nr.Communities, memberPrivate(nr.PeerAS(), rng))
			}
			routes = append(routes, nr)
		case roll < 3*perOp: // MED flap (scalar change on the copy)
			r.MED = uint32(rng.Intn(200))
			routes = append(routes, r)
		default:
			routes = append(routes, r)
		}
	}
	// Fresh announcements reuse an existing route's attributes under a
	// prefix no other day ever announced.
	for n := int(float64(len(prev.Routes))*perOp) + 1; n > 0 && len(routes) > 0; n-- {
		nr := routes[rng.Intn(len(routes))].Clone()
		if nr.IsIPv6() {
			nr.Prefix = netutil.SyntheticV6Prefix(*freshPrefix)
		} else {
			nr.Prefix = netutil.SyntheticV4Prefix(*freshPrefix)
		}
		*freshPrefix++
		routes = append(routes, nr)
	}
	next.Routes = routes
	return next
}

// churnMembers retires the series' last member (withdrawing its
// routes) and admits a fresh one with no routes yet — the weekly
// membership drift that flips targeted ASNs between the member and
// non-member sides of the §5.5 aggregates.
func churnMembers(s *collector.Snapshot, rng *rand.Rand, joinerASN *uint32) {
	if len(s.Members) > 9 {
		gone := s.Members[len(s.Members)-1].ASN
		s.Members = s.Members[:len(s.Members)-1]
		kept := s.Routes[:0]
		for _, r := range s.Routes {
			if r.PeerAS() != gone {
				kept = append(kept, r)
			}
		}
		s.Routes = kept
	}
	asn := *joinerASN
	*joinerASN++
	s.Members = append(s.Members, collector.Member{
		ASN:  asn,
		Name: fmt.Sprintf("AS%d Joiner", asn),
		IPv4: true,
		IPv6: rng.Intn(2) == 0,
	})
}

// shrinkSnapshot is a valley day: the collection keeps only depth of
// the members and routes, losing the rest to the outage.
func shrinkSnapshot(s *collector.Snapshot, depth float64, rng *rand.Rand) *collector.Snapshot {
	v := &collector.Snapshot{
		IXP:           s.IXP,
		Date:          s.Date,
		FilteredCount: s.FilteredCount,
	}
	nm := int(float64(len(s.Members)) * depth)
	v.Members = append([]collector.Member(nil), s.Members[:nm]...)
	v.Routes = make([]bgp.Route, 0, int(float64(len(s.Routes))*depth)+1)
	for i := range s.Routes {
		if rng.Float64() < depth {
			v.Routes = append(v.Routes, s.Routes[i])
		}
	}
	return v
}
