package ixpgen

import (
	"fmt"

	"ixplight/internal/collector"
	"ixplight/internal/netutil"
	"ixplight/internal/rs"
)

// Populate announces the whole workload into a route server: adds
// every member as a peer and runs every route through the import
// pipeline. The generator only emits import-clean routes, so an
// unexpected rejection is an error (it would silently skew the
// calibration).
func (w *Workload) Populate(server *rs.Server) error {
	for _, m := range w.Members {
		err := server.AddPeer(rs.Peer{
			ASN:    m.ASN,
			Name:   m.Name,
			AddrV4: netutil.PeerAddrV4(m.Index),
			AddrV6: netutil.PeerAddrV6(m.Index),
			IPv4:   m.IPv4,
			IPv6:   m.IPv6,
		})
		if err != nil {
			return fmt.Errorf("ixpgen: add peer AS%d: %w", m.ASN, err)
		}
	}
	for _, r := range w.Routes {
		reason, err := server.Announce(r.PeerAS(), r)
		if err != nil {
			return fmt.Errorf("ixpgen: announce %s from AS%d: %w", r.Prefix, r.PeerAS(), err)
		}
		if reason != rs.FilterNone {
			return fmt.Errorf("ixpgen: generated route %s from AS%d rejected: %v", r.Prefix, r.PeerAS(), reason)
		}
	}
	for _, r := range w.Invalid {
		reason, err := server.Announce(r.PeerAS(), r)
		if err != nil {
			return fmt.Errorf("ixpgen: announce invalid %s from AS%d: %w", r.Prefix, r.PeerAS(), err)
		}
		if reason == rs.FilterNone {
			return fmt.Errorf("ixpgen: invalid route %s from AS%d was accepted", r.Prefix, r.PeerAS())
		}
	}
	return nil
}

// Snapshot packages the workload directly as a collector snapshot —
// the fast path equivalent to Populate + LG crawl, used by the
// twelve-week dataset builder. TestSnapshotMatchesCollectedSnapshot
// pins the equivalence.
func (w *Workload) Snapshot(date string) *collector.Snapshot {
	s := &collector.Snapshot{
		IXP:           w.Profile.IXP,
		Date:          date,
		FilteredCount: len(w.Invalid),
	}
	for _, m := range w.Members {
		s.Members = append(s.Members, collector.Member{
			ASN: m.ASN, Name: m.Name, IPv4: m.IPv4, IPv6: m.IPv6,
		})
	}
	s.Routes = append(s.Routes, w.Routes...)
	s.Normalize()
	return s
}
