package ixpgen

import (
	"encoding/json"
	"math"
	"os"
	"reflect"
	"testing"

	"ixplight/internal/analysis"
	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
	"ixplight/internal/rs"
)

const testScale = 0.08

// genSnapshot memoises one workload snapshot per IXP for the
// calibration tests.
var snapCache = map[string]*collector.Snapshot{}

func genSnapshot(t *testing.T, ixp string) *collector.Snapshot {
	t.Helper()
	if s, ok := snapCache[ixp]; ok {
		return s
	}
	p := ProfileByName(ixp)
	if p == nil {
		t.Fatalf("no profile %q", ixp)
	}
	w, err := Generate(*p, Options{Seed: 42, Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	s := w.Snapshot("2021-10-04")
	snapCache[ixp] = s
	return s
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / want
}

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 8 {
		t.Fatalf("profiles = %d", len(ps))
	}
	for _, p := range ps {
		if p.Scheme == nil {
			t.Errorf("%s: nil scheme", p.IXP)
		}
		if p.V4.Routes < p.V4.Prefixes {
			t.Errorf("%s: v4 routes < prefixes", p.IXP)
		}
		if p.V6.MembersAtRS > p.V4.MembersAtRS {
			t.Errorf("%s: v6 members exceed v4", p.IXP)
		}
		if p.V4.ActionShare <= 0.6 {
			t.Errorf("%s: action share %f not in paper range", p.IXP, p.V4.ActionShare)
		}
	}
	if BigFour()[0].IXP != "IX.br-SP" || len(BigFour()) != 4 {
		t.Error("BigFour wrong")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := *ProfileByName("LINX")
	a, err := Generate(p, Options{Seed: 7, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, Options{Seed: 7, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Members, b.Members) {
		t.Error("members differ across identical runs")
	}
	if !reflect.DeepEqual(a.Routes, b.Routes) {
		t.Error("routes differ across identical runs")
	}
	c, err := Generate(p, Options{Seed: 8, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Routes, c.Routes) {
		t.Error("different seeds produced identical routes")
	}
}

func TestTable1Magnitudes(t *testing.T) {
	for _, ixp := range []string{"IX.br-SP", "DE-CIX", "LINX", "AMS-IX"} {
		p := ProfileByName(ixp)
		s := genSnapshot(t, ixp)
		for _, v6 := range []bool{false, true} {
			fam := p.V4
			if v6 {
				fam = p.V6
			}
			c := analysis.CountSnapshot(s, v6)
			wantMembers := int(math.Round(float64(fam.MembersAtRS) * testScale))
			if relErr(float64(c.Members), float64(wantMembers)) > 0.05 {
				t.Errorf("%s v6=%v members = %d, want ≈%d", ixp, v6, c.Members, wantMembers)
			}
			wantRoutes := float64(fam.Routes) * testScale
			if relErr(float64(c.Routes), wantRoutes) > 0.10 {
				t.Errorf("%s v6=%v routes = %d, want ≈%.0f", ixp, v6, c.Routes, wantRoutes)
			}
			wantPrefixes := float64(fam.Prefixes) * testScale
			if relErr(float64(c.Prefixes), wantPrefixes) > 0.15 {
				t.Errorf("%s v6=%v prefixes = %d, want ≈%.0f", ixp, v6, c.Prefixes, wantPrefixes)
			}
		}
	}
}

func TestFig1DefinedShareCalibration(t *testing.T) {
	for _, ixp := range []string{"IX.br-SP", "DE-CIX", "LINX", "AMS-IX"} {
		p := ProfileByName(ixp)
		s := genSnapshot(t, ixp)
		for _, v6 := range []bool{false, true} {
			fam, scheme := p.V4, p.Scheme
			if v6 {
				fam = p.V6
			}
			mix := analysis.ComputeMix(s, scheme, v6)
			if got := mix.DefinedShare(); math.Abs(got-fam.DefinedShare) > 0.05 {
				t.Errorf("%s v6=%v defined share = %.3f, want %.3f", ixp, v6, got, fam.DefinedShare)
			}
		}
	}
}

func TestFig2StandardShareCalibration(t *testing.T) {
	for _, ixp := range []string{"IX.br-SP", "DE-CIX", "LINX", "AMS-IX"} {
		p := ProfileByName(ixp)
		s := genSnapshot(t, ixp)
		for _, v6 := range []bool{false, true} {
			fam := p.V4
			if v6 {
				fam = p.V6
			}
			mix := analysis.ComputeMix(s, p.Scheme, v6)
			if got := mix.StandardShare(); math.Abs(got-fam.StandardShare) > 0.05 {
				t.Errorf("%s v6=%v standard share = %.3f, want %.3f", ixp, v6, got, fam.StandardShare)
			}
			// The paper's headline: standard consistently dominates.
			if mix.StandardShare() < 0.8 {
				t.Errorf("%s v6=%v standard share %.3f below the paper's >80%% finding", ixp, v6, mix.StandardShare())
			}
		}
	}
}

func TestFig3ActionShareCalibration(t *testing.T) {
	for _, ixp := range []string{"IX.br-SP", "DE-CIX", "LINX", "AMS-IX"} {
		p := ProfileByName(ixp)
		s := genSnapshot(t, ixp)
		for _, v6 := range []bool{false, true} {
			fam := p.V4
			if v6 {
				fam = p.V6
			}
			got := analysis.ActionShare(s, p.Scheme, v6)
			if math.Abs(got-fam.ActionShare) > 0.06 {
				t.Errorf("%s v6=%v action share = %.3f, want %.3f", ixp, v6, got, fam.ActionShare)
			}
			if got < 0.6 {
				t.Errorf("%s v6=%v action share %.3f below the paper's two-thirds floor", ixp, v6, got)
			}
		}
	}
}

func TestFig4aUsageCalibration(t *testing.T) {
	for _, ixp := range []string{"IX.br-SP", "DE-CIX", "LINX", "AMS-IX"} {
		p := ProfileByName(ixp)
		s := genSnapshot(t, ixp)
		for _, v6 := range []bool{false, true} {
			fam := p.V4
			if v6 {
				fam = p.V6
			}
			u := analysis.ComputeUsage(s, p.Scheme, v6)
			if math.Abs(u.ASShare()-fam.ActionUserFrac) > 0.08 {
				t.Errorf("%s v6=%v AS share = %.3f, want %.3f", ixp, v6, u.ASShare(), fam.ActionUserFrac)
			}
			// With very few members the discrete rank-size law cannot
			// concentrate routes as sharply as the paper's population,
			// so the tagged-route share gets a wider band.
			tol := 0.08
			if u.MembersAtRS < 60 {
				tol = 0.18
			}
			if math.Abs(u.RouteShare()-fam.TaggedRouteFrac) > tol {
				t.Errorf("%s v6=%v route share = %.3f, want %.3f (tol %.2f)", ixp, v6, u.RouteShare(), fam.TaggedRouteFrac, tol)
			}
			wantInstances := fam.ActionPerRoute * float64(u.RoutesTotal)
			if relErr(float64(u.ActionInstances), wantInstances) > 0.30 {
				t.Errorf("%s v6=%v action instances = %d, want ≈%.0f", ixp, v6, u.ActionInstances, wantInstances)
			}
		}
	}
}

func TestFig4bConcentration(t *testing.T) {
	// §5.2: few ASes account for most of the instances. At test scale
	// the "top 1%" bucket is a couple of ASes; check the top 5% carries
	// a majority and the bottom 90% of members stays small.
	for _, ixp := range []string{"IX.br-SP", "DE-CIX"} {
		p := ProfileByName(ixp)
		s := genSnapshot(t, ixp)
		counts := analysis.PerASActionCounts(s, p.Scheme, false)
		u := analysis.ComputeUsage(s, p.Scheme, false)
		cdf := analysis.ConcentrationCDF(counts, u.MembersAtRS)
		if top5 := analysis.TopShare(cdf, 0.05); top5 < 0.5 {
			t.Errorf("%s: top-5%% share = %.3f, want ≥ 0.5", ixp, top5)
		}
	}
}

func TestTable2PerTypeCalibration(t *testing.T) {
	for _, ixp := range []string{"IX.br-SP", "DE-CIX", "LINX", "AMS-IX"} {
		p := ProfileByName(ixp)
		s := genSnapshot(t, ixp)
		for _, v6 := range []bool{false, true} {
			fam := p.V4
			if v6 {
				fam = p.V6
			}
			rows := analysis.ASesPerActionType(s, p.Scheme, v6)
			want := map[dictionary.ActionType]float64{
				dictionary.DoNotAnnounceTo: fam.DNAUserFrac,
				dictionary.AnnounceOnlyTo:  fam.AOTUserFrac,
				dictionary.PrependTo:       fam.PrependUserFrac,
				dictionary.Blackhole:       fam.BHUserFrac,
			}
			for _, row := range rows {
				w := want[row.Type]
				// AOT users also emit block-all (a DNA community), so
				// the DNA set legitimately absorbs them.
				tol := 0.08
				if row.Type == dictionary.DoNotAnnounceTo {
					tol = 0.08 + fam.AOTUserFrac
				}
				if math.Abs(row.Share-w) > tol {
					t.Errorf("%s v6=%v %v AS share = %.3f, want ≈%.3f (tol %.2f)", ixp, v6, row.Type, row.Share, w, tol)
				}
				// Zero-support cells must be exactly zero (Table 2).
				if w == 0 && row.ASes != 0 {
					t.Errorf("%s v6=%v %v must be unused, got %d ASes", ixp, v6, row.Type, row.ASes)
				}
			}
		}
	}
}

func TestSec53OccurrenceShares(t *testing.T) {
	for _, ixp := range []string{"IX.br-SP", "DE-CIX", "LINX", "AMS-IX"} {
		p := ProfileByName(ixp)
		s := genSnapshot(t, ixp)
		occ := analysis.OccurrencesPerType(s, p.Scheme, false)
		total := 0
		for _, n := range occ {
			total += n
		}
		if total == 0 {
			t.Fatalf("%s: no action occurrences", ixp)
		}
		dna := float64(occ[dictionary.DoNotAnnounceTo]) / float64(total)
		aot := float64(occ[dictionary.AnnounceOnlyTo]) / float64(total)
		prep := float64(occ[dictionary.PrependTo]) / float64(total)
		bh := float64(occ[dictionary.Blackhole]) / float64(total)
		if dna < 0.60 || dna > 0.95 {
			t.Errorf("%s: DNA occurrence share %.3f outside the paper's 66.6–92%% band (±tol)", ixp, dna)
		}
		if aot < 0.05 || aot > 0.40 {
			t.Errorf("%s: AOT occurrence share %.3f outside the paper's 17.7–31.4%% band (±tol)", ixp, aot)
		}
		if prep > 0.03 {
			t.Errorf("%s: prepend share %.3f above the paper's <1.9%% (+tol)", ixp, prep)
		}
		if bh > 0.01 {
			t.Errorf("%s: blackhole share %.3f above the paper's <0.4%% (+tol)", ixp, bh)
		}
		// Ordering must match §5.3: DNA > AOT > prepend ≥ blackhole.
		if !(dna > aot && aot > prep) {
			t.Errorf("%s: type ordering broken: dna=%.3f aot=%.3f prep=%.3f bh=%.3f", ixp, dna, aot, prep, bh)
		}
	}
}

func TestSec55NonMemberTargeting(t *testing.T) {
	for _, ixp := range []string{"IX.br-SP", "DE-CIX", "LINX", "AMS-IX"} {
		p := ProfileByName(ixp)
		s := genSnapshot(t, ixp)
		for _, v6 := range []bool{false, true} {
			fam := p.V4
			if v6 {
				fam = p.V6
			}
			nm := analysis.ComputeNonMemberTargeting(s, p.Scheme, v6, 20)
			// Small member pools make member-side distinct draws spill
			// into the non-member pool, so tiny families get headroom.
			tol := 0.10
			if u := analysis.ComputeUsage(s, p.Scheme, v6); u.MembersAtRS < 60 {
				tol = 0.16
			}
			if math.Abs(nm.Share()-fam.NonMemberTargetShare) > tol {
				t.Errorf("%s v6=%v non-member share = %.3f, want %.3f (tol %.2f)", ixp, v6, nm.Share(), fam.NonMemberTargetShare, tol)
			}
			// The paper's headline: always above 31.8% (minus tolerance).
			if nm.Share() < 0.25 {
				t.Errorf("%s v6=%v non-member share %.3f below the paper's floor", ixp, v6, nm.Share())
			}
		}
	}
}

func TestFig7HurricaneElectricTopCulprit(t *testing.T) {
	for _, ixp := range []string{"IX.br-SP", "DE-CIX", "LINX", "AMS-IX"} {
		p := ProfileByName(ixp)
		s := genSnapshot(t, ixp)
		culprits := analysis.CulpritRanking(s, p.Scheme, false, 10)
		if len(culprits) == 0 {
			t.Fatalf("%s: no culprits", ixp)
		}
		found := false
		for i, c := range culprits {
			if c.ASN == 6939 && i < 3 {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: Hurricane Electric not among top-3 culprits: %v", ixp, culprits[:min(3, len(culprits))])
		}
	}
}

func TestFig5TopTargetsPlausible(t *testing.T) {
	// §5.4's per-IXP most-avoided member network must appear among the
	// top-10 targets (Hurricane Electric at IX.br-SP).
	p := ProfileByName("IX.br-SP")
	s := genSnapshot(t, "IX.br-SP")
	targets := analysis.TopTargets(s, p.Scheme, false, 10)
	found := false
	for _, tgt := range targets {
		if tgt.ASN == 6939 {
			found = true
		}
	}
	if !found {
		t.Errorf("IX.br-SP: Hurricane Electric not in top-10 targets %v", targets)
	}
}

func TestFig6TopNonMemberTargetsPlausible(t *testing.T) {
	// Fig. 6: the paper's headline non-member targets (Google at LINX,
	// OVHcloud at AMS-IX) must rank in the top-5 of the non-member
	// targeting analysis.
	expectations := map[string]uint32{
		"LINX":   15169, // Google
		"AMS-IX": 16276, // OVHcloud
	}
	for ixp, want := range expectations {
		p := ProfileByName(ixp)
		s := genSnapshot(t, ixp)
		nm := analysis.ComputeNonMemberTargeting(s, p.Scheme, false, 5)
		found := false
		for _, cc := range nm.Top {
			if cc.Class.TargetASN == want {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: AS%d not in top-5 non-member targets %v", ixp, want, nm.Top)
		}
	}
}

func TestPopulateAcceptsEverything(t *testing.T) {
	p := *ProfileByName("LINX")
	w, err := Generate(p, Options{Seed: 3, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	server, err := rs.New(rs.Config{Scheme: p.Scheme, ScrubActions: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Populate(server); err != nil {
		t.Fatal(err)
	}
	st := server.Stats()
	if st.RoutesV4 == 0 || st.RoutesV6 == 0 {
		t.Errorf("stats = %+v", st)
	}
	// Exactly the deliberately-invalid announcements are filtered.
	if st.FilteredRoutes != len(w.Invalid) {
		t.Errorf("filtered = %d, want %d", st.FilteredRoutes, len(w.Invalid))
	}
	if st.RoutesV4+st.RoutesV6 != len(w.Routes) {
		t.Errorf("accepted = %d, want %d", st.RoutesV4+st.RoutesV6, len(w.Routes))
	}
}

func TestMemberASNsAvoidSchemeAnchors(t *testing.T) {
	for _, p := range Profiles() {
		w, err := Generate(p, Options{Seed: 1, Scale: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range w.Members {
			if m.ASN == uint32(p.Scheme.RSASN) || m.ASN == uint32(p.Scheme.InfoASN) {
				t.Errorf("%s: member ASN %d collides with a scheme anchor", p.IXP, m.ASN)
			}
			if m.ASN == 0 || m.ASN > 65535 {
				t.Errorf("%s: member ASN %d outside 16-bit range", p.IXP, m.ASN)
			}
		}
	}
}

func TestGenerateDayTemporalShape(t *testing.T) {
	p := *ProfileByName("AMS-IX")
	opts := TemporalOptions{Seed: 11, Scale: 0.02, Days: 14, ValleyDays: []int{9}}

	var counts []int
	for d := 0; d < 14; d++ {
		w, date, err := GenerateDay(p, opts, d)
		if err != nil {
			t.Fatal(err)
		}
		if date == "" {
			t.Fatal("empty date")
		}
		counts = append(counts, len(w.Routes))
	}
	// Within the first week the variation must stay small (Table 3).
	minC, maxC := counts[0], counts[0]
	for _, c := range counts[1:7] {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if diff := float64(maxC-minC) / float64(minC); diff > 0.05 {
		t.Errorf("weekly variation = %.3f, want < 0.05", diff)
	}
	// The valley day must show a ≥30% drop vs its predecessor.
	if drop := 1 - float64(counts[9])/float64(counts[8]); drop < 0.30 {
		t.Errorf("valley drop = %.3f, want ≥ 0.30", drop)
	}
	// And recovery after.
	if counts[10] < int(0.85*float64(counts[8])) {
		t.Errorf("no recovery after valley: %v", counts[8:12])
	}
}

func TestSnapshotMatchesCollectedState(t *testing.T) {
	// Workload.Snapshot must agree with Populate + RS state on the
	// aggregate counts (the fast path and the full path are the same
	// dataset).
	p := *ProfileByName("AMS-IX")
	w, err := Generate(p, Options{Seed: 5, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	snap := w.Snapshot("2021-10-04")

	server, err := rs.New(rs.Config{Scheme: p.Scheme})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Populate(server); err != nil {
		t.Fatal(err)
	}
	st := server.Stats()
	c4 := analysis.CountSnapshot(snap, false)
	c6 := analysis.CountSnapshot(snap, true)
	if st.RoutesV4 != c4.Routes || st.RoutesV6 != c6.Routes {
		t.Errorf("route counts disagree: rs %d/%d snap %d/%d", st.RoutesV4, st.RoutesV6, c4.Routes, c6.Routes)
	}
	if st.MembersV4 != snap.MembersV4() || st.MembersV6 != snap.MembersV6() {
		t.Errorf("member counts disagree")
	}
	if st.CommunitiesV4 != c4.Communities {
		t.Errorf("community counts disagree: rs %d snap %d", st.CommunitiesV4, c4.Communities)
	}
}

// TestSmallIXPsGenerate covers the four smaller IXPs the paper
// comments on alongside the big four: generation must succeed and the
// §5.1 observation (action share above two-thirds, above 95% at BCIX
// and Netnod) must hold.
func TestSmallIXPsGenerate(t *testing.T) {
	for _, ixp := range []string{"DE-CIX Mad", "DE-CIX NYC", "BCIX", "Netnod"} {
		p := ProfileByName(ixp)
		w, err := Generate(*p, Options{Seed: 42, Scale: 0.3})
		if err != nil {
			t.Fatalf("%s: %v", ixp, err)
		}
		s := w.Snapshot("2021-10-04")
		share := analysis.ActionShare(s, p.Scheme, false)
		if share < 0.6 {
			t.Errorf("%s: action share %.3f below two-thirds", ixp, share)
		}
		if (ixp == "BCIX" || ixp == "Netnod") && share < 0.9 {
			t.Errorf("%s: action share %.3f, paper reports >95%%", ixp, share)
		}
		u := analysis.ComputeUsage(s, p.Scheme, false)
		if u.ASesUsing == 0 || u.ActionInstances == 0 {
			t.Errorf("%s: empty usage %+v", ixp, u)
		}
		nm := analysis.ComputeNonMemberTargeting(s, p.Scheme, false, 5)
		if nm.Share() < 0.2 {
			t.Errorf("%s: non-member share %.3f suspiciously low", ixp, nm.Share())
		}
	}
}

// TestAllEightIXPsSnapshotConsistency runs the cheap structural sanity
// checks on every profile at once.
func TestAllEightIXPsSnapshotConsistency(t *testing.T) {
	for _, p := range Profiles() {
		w, err := Generate(p, Options{Seed: 9, Scale: 0.02})
		if err != nil {
			t.Fatalf("%s: %v", p.IXP, err)
		}
		s := w.Snapshot("2021-10-04")
		memberSet := s.MemberSet()
		for _, r := range s.Routes {
			if !memberSet[r.PeerAS()] {
				t.Fatalf("%s: route %s announced by non-member AS%d", p.IXP, r.Prefix, r.PeerAS())
			}
			if err := r.Validate(); err != nil {
				t.Fatalf("%s: invalid route: %v", p.IXP, err)
			}
		}
		c4 := analysis.CountSnapshot(s, false)
		c6 := analysis.CountSnapshot(s, true)
		if c4.Routes == 0 || c6.Routes == 0 {
			t.Errorf("%s: missing family (%d/%d routes)", p.IXP, c4.Routes, c6.Routes)
		}
		if c4.Prefixes > c4.Routes {
			t.Errorf("%s: prefixes (%d) exceed routes (%d)", p.IXP, c4.Prefixes, c4.Routes)
		}
	}
}

// TestInvalidRoutesAreFiltered pins the §3 filtered-vs-accepted split:
// the generator's invalid announcements must all be rejected by the
// import policy, and the snapshot's FilteredCount must agree.
func TestInvalidRoutesAreFiltered(t *testing.T) {
	p := *ProfileByName("DE-CIX")
	w, err := Generate(p, Options{Seed: 6, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Invalid) < 2 {
		t.Fatalf("invalid routes = %d, want ≥ 2", len(w.Invalid))
	}
	server, err := rs.New(rs.Config{Scheme: p.Scheme, MaxPathLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Populate(server); err != nil {
		t.Fatal(err)
	}
	if got := server.Stats().FilteredRoutes; got != len(w.Invalid) {
		t.Errorf("RS filtered = %d, want %d", got, len(w.Invalid))
	}
	if got := w.Snapshot("2021-10-04").FilteredCount; got != len(w.Invalid) {
		t.Errorf("snapshot FilteredCount = %d, want %d", got, len(w.Invalid))
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/custom.json"
	p := *ProfileByName("AMS-IX")
	p.IXP = "CUSTOM-IX"
	p.Scheme.IXP = "CUSTOM-IX"
	if err := SaveProfile(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.IXP != "CUSTOM-IX" || got.Scheme.RSASN != p.Scheme.RSASN {
		t.Errorf("round trip = %+v", got)
	}
	if !reflect.DeepEqual(got.V4, p.V4) || !reflect.DeepEqual(got.V6, p.V6) {
		t.Error("family params lost")
	}
	// The loaded profile must generate.
	w, err := Generate(*got, Options{Seed: 1, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Routes) == 0 {
		t.Error("custom profile generated nothing")
	}
}

func TestLoadProfileValidation(t *testing.T) {
	dir := t.TempDir()
	write := func(mutate func(*Profile)) string {
		p := *ProfileByName("LINX")
		mutate(&p)
		path := dir + "/bad.json"
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewEncoder(f).Encode(p); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return path
	}
	cases := map[string]func(*Profile){
		"no name":         func(p *Profile) { p.IXP = "" },
		"no scheme":       func(p *Profile) { p.Scheme = nil },
		"bad fraction":    func(p *Profile) { p.V4.ActionUserFrac = 1.5 },
		"routes<prefixes": func(p *Profile) { p.V4.Routes = p.V4.Prefixes - 1 },
		"v6>v4 members":   func(p *Profile) { p.V6.MembersAtRS = p.V4.MembersAtRS + 1 },
		"shares exceed 1": func(p *Profile) { p.V4.DNAOccShare, p.V4.AOTOccShare = 0.8, 0.4 },
		"zero members":    func(p *Profile) { p.V4.MembersAtRS = 0 },
	}
	for name, mutate := range cases {
		if _, err := LoadProfile(write(mutate)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
	if _, err := LoadProfile(dir + "/missing.json"); err == nil {
		t.Error("missing file: want error")
	}
	if err := os.WriteFile(dir+"/garbage.json", []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProfile(dir + "/garbage.json"); err == nil {
		t.Error("garbage JSON: want error")
	}
}
