package ixpgen

import (
	"reflect"
	"testing"
	"time"

	"ixplight/internal/collector"
)

func collectSeries(t *testing.T, ixp string, o TemporalOptions, churn float64) []*collector.Snapshot {
	t.Helper()
	p := ProfileByName(ixp)
	if p == nil {
		t.Fatalf("no profile %q", ixp)
	}
	var days []*collector.Snapshot
	err := EvolveSeries(*p, o, churn, func(day int, s *collector.Snapshot) error {
		if day != len(days) {
			t.Fatalf("days out of order: got %d want %d", day, len(days))
		}
		days = append(days, s)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return days
}

func routeKeys(s *collector.Snapshot) map[string]bool {
	keys := make(map[string]bool, len(s.Routes))
	for i := range s.Routes {
		r := &s.Routes[i]
		keys[r.Prefix.String()+"|"+r.NextHop.String()] = true
	}
	return keys
}

func TestEvolveSeriesShape(t *testing.T) {
	o := TemporalOptions{
		Start:      time.Date(2021, 7, 19, 0, 0, 0, 0, time.UTC),
		Days:       16,
		Seed:       7,
		Scale:      0.02,
		ValleyDays: []int{11},
	}
	days := collectSeries(t, "LINX", o, 0.03)
	if len(days) != o.Days {
		t.Fatalf("got %d days, want %d", len(days), o.Days)
	}
	for d, s := range days {
		wantDate := o.Start.AddDate(0, 0, d).Format("2006-01-02")
		if s.Date != wantDate {
			t.Errorf("day %d: date %q, want %q", d, s.Date, wantDate)
		}
		if len(s.Routes) == 0 || len(s.Members) == 0 {
			t.Fatalf("day %d: empty snapshot", d)
		}
	}

	// Adjacent healthy days overlap almost completely — the redundancy
	// the delta codec exists to exploit.
	prev := routeKeys(days[0])
	for d := 1; d < len(days); d++ {
		if d == 11 || d == 12 { // valley day and its recovery jump
			prev = routeKeys(days[d])
			continue
		}
		cur := routeKeys(days[d])
		shared := 0
		for k := range cur {
			if prev[k] {
				shared++
			}
		}
		if frac := float64(shared) / float64(len(cur)); frac < 0.9 {
			t.Errorf("day %d: only %.2f of routes shared with previous day", d, frac)
		}
		prev = cur
	}

	// Weekly churn: day 7 swaps one member for a joiner in the evolve
	// ASN range, keeping the count steady.
	if got, want := len(days[7].Members), len(days[6].Members); got != want {
		t.Errorf("day 7: member count %d, want %d (swap, not growth)", got, want)
	}
	joiner := days[7].Members[len(days[7].Members)-1]
	if joiner.ASN < evolveJoinerBase || joiner.ASN >= 100000 {
		t.Errorf("day 7 joiner ASN %d outside evolve range", joiner.ASN)
	}
	goneASN := days[6].Members[len(days[6].Members)-1].ASN
	for i := range days[7].Routes {
		if days[7].Routes[i].PeerAS() == goneASN {
			t.Fatalf("day 7 still carries a route from departed AS%d", goneASN)
		}
	}

	// Valley day 11 collapses toward ValleyDepth of day 10; day 12
	// recovers to the healthy line rather than evolving the valley.
	ratio := float64(len(days[11].Routes)) / float64(len(days[10].Routes))
	if ratio < 0.4 || ratio > 0.8 {
		t.Errorf("valley day ratio %.2f, want near default depth 0.62", ratio)
	}
	rec := float64(len(days[12].Routes)) / float64(len(days[10].Routes))
	if rec < 0.9 {
		t.Errorf("post-valley day recovered only to %.2f of the healthy line", rec)
	}
}

func TestEvolveSeriesDeterministic(t *testing.T) {
	o := TemporalOptions{Days: 9, Seed: 11, Scale: 0.02}
	a := collectSeries(t, "AMS-IX", o, 0.05)
	b := collectSeries(t, "AMS-IX", o, 0.05)
	for d := range a {
		if !reflect.DeepEqual(a[d], b[d]) {
			t.Fatalf("day %d differs across identical runs", d)
		}
	}
	c := collectSeries(t, "AMS-IX", TemporalOptions{Days: 9, Seed: 12, Scale: 0.02}, 0.05)
	same := true
	for d := 1; d < len(a); d++ {
		if !reflect.DeepEqual(a[d].Routes, c[d].Routes) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical evolved series")
	}
}

func TestEvolveSeriesFreshPrefixesDisjoint(t *testing.T) {
	o := TemporalOptions{Days: 6, Seed: 3, Scale: 0.02}
	days := collectSeries(t, "LINX", o, 0.06)
	day0 := routeKeys(days[0])
	var day0Prefixes = map[string]bool{}
	for i := range days[0].Routes {
		day0Prefixes[days[0].Routes[i].Prefix.String()] = true
	}
	// Evolved announcements must never reuse a prefix+nexthop pair that
	// day 0 already withdrew — fresh prefixes come from a disjoint
	// range, so any route absent from day 0 must carry a new prefix.
	fresh := 0
	for i := range days[5].Routes {
		r := &days[5].Routes[i]
		if !day0[r.Prefix.String()+"|"+r.NextHop.String()] && !day0Prefixes[r.Prefix.String()] {
			fresh++
		}
	}
	if fresh == 0 {
		t.Error("no fresh announcements after 5 evolved days at 6% churn")
	}
}
