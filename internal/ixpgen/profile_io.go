package ixpgen

import (
	"encoding/json"
	"fmt"
	"os"
)

// Profiles are plain data, so custom IXPs — beyond the paper's eight —
// can be described in JSON and fed to the generator. cmd/ixpgen's
// -profile flag uses this.

// SaveProfile writes a profile as indented JSON.
func SaveProfile(path string, p Profile) error {
	if err := validateProfile(p); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// LoadProfile reads and validates a JSON profile.
func LoadProfile(path string) (*Profile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Profile
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, fmt.Errorf("ixpgen: parse profile %s: %w", path, err)
	}
	if err := validateProfile(p); err != nil {
		return nil, fmt.Errorf("ixpgen: profile %s: %w", path, err)
	}
	return &p, nil
}

// validateProfile checks the invariants Generate depends on. It is the
// contract a hand-written profile must meet.
func validateProfile(p Profile) error {
	if p.IXP == "" {
		return fmt.Errorf("profile needs an IXP name")
	}
	if p.Scheme == nil {
		return fmt.Errorf("profile needs a community scheme")
	}
	if err := p.Scheme.Validate(); err != nil {
		return err
	}
	for name, fam := range map[string]FamilyParams{"v4": p.V4, "v6": p.V6} {
		if fam.MembersAtRS <= 0 {
			return fmt.Errorf("%s: MembersAtRS must be positive", name)
		}
		if fam.Routes < fam.Prefixes {
			return fmt.Errorf("%s: routes (%d) below prefixes (%d)", name, fam.Routes, fam.Prefixes)
		}
		for label, v := range map[string]float64{
			"ActionUserFrac": fam.ActionUserFrac, "TaggedRouteFrac": fam.TaggedRouteFrac,
			"DNAUserFrac": fam.DNAUserFrac, "AOTUserFrac": fam.AOTUserFrac,
			"PrependUserFrac": fam.PrependUserFrac, "BHUserFrac": fam.BHUserFrac,
			"DNAOccShare": fam.DNAOccShare, "AOTOccShare": fam.AOTOccShare,
			"DefinedShare": fam.DefinedShare, "StandardShare": fam.StandardShare,
			"ActionShare": fam.ActionShare, "NonMemberTargetShare": fam.NonMemberTargetShare,
		} {
			if v < 0 || v > 1 {
				return fmt.Errorf("%s: %s = %f outside [0,1]", name, label, v)
			}
		}
		if fam.ActionPerRoute < 0 {
			return fmt.Errorf("%s: negative ActionPerRoute", name)
		}
		if fam.DNAOccShare+fam.AOTOccShare > 1 {
			return fmt.Errorf("%s: DNA+AOT occurrence shares exceed 1", name)
		}
	}
	if p.V6.MembersAtRS > p.V4.MembersAtRS {
		return fmt.Errorf("v6 members (%d) exceed v4 (%d): v6 membership is modelled as a subset",
			p.V6.MembersAtRS, p.V4.MembersAtRS)
	}
	return nil
}
