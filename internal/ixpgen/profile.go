// Package ixpgen synthesises IXP route-server workloads calibrated to
// the paper's published aggregates. Real member announcements are not
// publicly archivable (the LGs expose only live state), so the
// generator reproduces, per IXP and address family, the marginals the
// paper reports: member/route/prefix counts (Table 1), the
// IXP-defined vs unknown community split (Fig. 1), the
// standard/extended/large mix (Fig. 2), the action vs informational
// ratio (Fig. 3), the share of ASes and routes using action
// communities (Fig. 4a), heavy-tailed per-AS usage (Fig. 4b/4c),
// per-type AS counts (Table 2) and occurrence shares (§5.3), target
// popularity with the paper's named networks on top (Fig. 5/6), and
// the share of action communities targeting ASes absent from the RS
// (§5.5, Fig. 7).
//
// Everything is driven by a seed: the same (profile, seed, scale)
// triple always produces the identical workload.
package ixpgen

import "ixplight/internal/dictionary"

// FamilyParams calibrates one address family of one IXP. All counts
// are at scale 1.0 (the paper's 4 Oct 2021 snapshot); Generate scales
// them down uniformly.
type FamilyParams struct {
	// Table 1 magnitudes.
	MembersAtRS int
	Prefixes    int
	Routes      int

	// Fig. 4a: fraction of RS members using ≥1 action community, and
	// fraction of routes carrying ≥1 action community.
	ActionUserFrac  float64
	TaggedRouteFrac float64

	// Table 2: fraction of RS members using each action type.
	DNAUserFrac     float64
	AOTUserFrac     float64
	PrependUserFrac float64
	BHUserFrac      float64

	// §5.3: shares of action-community occurrences per type. The
	// blackhole share is emergent (one instance per blackhole route),
	// so only the DNA/AOT split is calibrated here (prepend gets the
	// remainder's tail).
	DNAOccShare float64
	AOTOccShare float64

	// Community-volume chain: Fig. 4a/5 count divided by routes.
	ActionPerRoute float64
	// Fig. 1: IXP-defined share of all community instances.
	DefinedShare float64
	// Fig. 2: standard share of the IXP-defined instances.
	StandardShare float64
	// Fig. 3: action share of the IXP-defined standard instances.
	ActionShare float64

	// §5.5: share of action instances whose target has no RS session.
	NonMemberTargetShare float64
}

// InfoPerRoute derives the average informational instances per route
// from the Fig. 3 ratio.
func (f FamilyParams) InfoPerRoute() float64 {
	if f.ActionShare <= 0 {
		return 0
	}
	return f.ActionPerRoute * (1 - f.ActionShare) / f.ActionShare
}

// ExtLargePerRoute derives the average extended+large instances per
// route from the Fig. 2 ratio.
func (f FamilyParams) ExtLargePerRoute() float64 {
	if f.StandardShare <= 0 {
		return 0
	}
	stdDefined := f.ActionPerRoute + f.InfoPerRoute()
	return stdDefined * (1 - f.StandardShare) / f.StandardShare
}

// UnknownPerRoute derives the average unknown (member-private)
// instances per route from the Fig. 1 ratio.
func (f FamilyParams) UnknownPerRoute() float64 {
	if f.DefinedShare <= 0 {
		return 0
	}
	defined := f.ActionPerRoute + f.InfoPerRoute() + f.ExtLargePerRoute()
	return defined * (1 - f.DefinedShare) / f.DefinedShare
}

// Profile is the full calibration of one IXP.
type Profile struct {
	IXP string
	// Location and AvgTraffic reproduce Table 1's descriptive columns.
	Location   string
	AvgTraffic string
	// TotalMembers is the IXP's member count (RS members are fewer).
	TotalMembers int
	Scheme       *dictionary.Scheme
	V4           FamilyParams
	V6           FamilyParams
}

// Profiles returns the calibrated profiles for the eight IXPs in
// Table 1 order. Counts come straight from Table 1; behavioural
// fractions from Fig. 1–4, Table 2, §5.3 and §5.5 (values the paper
// reports only as ranges use a mid-range estimate).
func Profiles() []Profile {
	return []Profile{
		{
			IXP: "IX.br-SP", Location: "São Paulo, Brazil", AvgTraffic: "9.6 Tbps",
			TotalMembers: 2338, Scheme: dictionary.ProfileByName("IX.br-SP"),
			V4: FamilyParams{
				MembersAtRS: 1803, Prefixes: 163981, Routes: 282697,
				ActionUserFrac: 0.519, TaggedRouteFrac: 0.737,
				DNAUserFrac: 0.483, AOTUserFrac: 0.061, PrependUserFrac: 0.057, BHUserFrac: 0,
				DNAOccShare: 0.72, AOTOccShare: 0.26,
				ActionPerRoute: 10.54, DefinedShare: 0.833, StandardShare: 0.849, ActionShare: 0.705,
				NonMemberTargetShare: 0.318,
			},
			V6: FamilyParams{
				MembersAtRS: 1627, Prefixes: 60203, Routes: 88652,
				ActionUserFrac: 0.293, TaggedRouteFrac: 0.756,
				DNAUserFrac: 0.273, AOTUserFrac: 0.021, PrependUserFrac: 0.029, BHUserFrac: 0,
				DNAOccShare: 0.85, AOTOccShare: 0.148,
				ActionPerRoute: 10.66, DefinedShare: 0.913, StandardShare: 0.849, ActionShare: 0.705,
				NonMemberTargetShare: 0.403,
			},
		},
		{
			IXP: "DE-CIX", Location: "Frankfurt, Germany", AvgTraffic: "9.27 Tbps",
			TotalMembers: 1072, Scheme: dictionary.ProfileByName("DE-CIX"),
			V4: FamilyParams{
				MembersAtRS: 874, Prefixes: 451544, Routes: 888478,
				ActionUserFrac: 0.540, TaggedRouteFrac: 0.617,
				DNAUserFrac: 0.381, AOTUserFrac: 0.244, PrependUserFrac: 0.083, BHUserFrac: 0.157,
				DNAOccShare: 0.80, AOTOccShare: 0.18,
				ActionPerRoute: 9.52, DefinedShare: 0.802, StandardShare: 0.909, ActionShare: 0.704,
				NonMemberTargetShare: 0.495,
			},
			V6: FamilyParams{
				MembersAtRS: 711, Prefixes: 65395, Routes: 130084,
				ActionUserFrac: 0.336, TaggedRouteFrac: 0.487,
				DNAUserFrac: 0.231, AOTUserFrac: 0.157, PrependUserFrac: 0.039, BHUserFrac: 0.014,
				DNAOccShare: 0.80, AOTOccShare: 0.195,
				ActionPerRoute: 7.99, DefinedShare: 0.809, StandardShare: 0.887, ActionShare: 0.665,
				NonMemberTargetShare: 0.404,
			},
		},
		{
			IXP: "LINX", Location: "London, United Kingdom", AvgTraffic: "3.8 Tbps",
			TotalMembers: 847, Scheme: dictionary.ProfileByName("LINX"),
			V4: FamilyParams{
				MembersAtRS: 669, Prefixes: 241084, Routes: 315215,
				ActionUserFrac: 0.404, TaggedRouteFrac: 0.766,
				DNAUserFrac: 0.276, AOTUserFrac: 0.209, PrependUserFrac: 0.015, BHUserFrac: 0,
				DNAOccShare: 0.75, AOTOccShare: 0.248,
				ActionPerRoute: 13.23, DefinedShare: 0.861, StandardShare: 0.850, ActionShare: 0.836,
				NonMemberTargetShare: 0.643,
			},
			V6: FamilyParams{
				MembersAtRS: 508, Prefixes: 62912, Routes: 79690,
				ActionUserFrac: 0.285, TaggedRouteFrac: 0.875,
				DNAUserFrac: 0.169, AOTUserFrac: 0.159, PrependUserFrac: 0.012, BHUserFrac: 0,
				DNAOccShare: 0.90, AOTOccShare: 0.099,
				ActionPerRoute: 11.42, DefinedShare: 0.889, StandardShare: 0.873, ActionShare: 0.858,
				NonMemberTargetShare: 0.526,
			},
		},
		{
			IXP: "AMS-IX", Location: "Amsterdam, Netherlands", AvgTraffic: "7.6 Tbps",
			TotalMembers: 861, Scheme: dictionary.ProfileByName("AMS-IX"),
			V4: FamilyParams{
				MembersAtRS: 636, Prefixes: 252704, Routes: 252704,
				ActionUserFrac: 0.355, TaggedRouteFrac: 0.681,
				DNAUserFrac: 0.283, AOTUserFrac: 0.126, PrependUserFrac: 0, BHUserFrac: 0.014,
				DNAOccShare: 0.82, AOTOccShare: 0.179,
				ActionPerRoute: 15.16, DefinedShare: 0.868, StandardShare: 0.965, ActionShare: 0.834,
				NonMemberTargetShare: 0.543,
			},
			V6: FamilyParams{
				MembersAtRS: 488, Prefixes: 61528, Routes: 61528,
				ActionUserFrac: 0.241, TaggedRouteFrac: 0.751,
				DNAUserFrac: 0.176, AOTUserFrac: 0.096, PrependUserFrac: 0, BHUserFrac: 0.002,
				DNAOccShare: 0.78, AOTOccShare: 0.2195,
				ActionPerRoute: 12.29, DefinedShare: 0.925, StandardShare: 0.997, ActionShare: 0.804,
				NonMemberTargetShare: 0.459,
			},
		},
		{
			IXP: "DE-CIX Mad", Location: "Madrid, Spain", AvgTraffic: "492 Gbps",
			TotalMembers: 214, Scheme: dictionary.ProfileByName("DE-CIX Mad"),
			V4: FamilyParams{
				MembersAtRS: 151, Prefixes: 116237, Routes: 125812,
				ActionUserFrac: 0.46, TaggedRouteFrac: 0.62,
				DNAUserFrac: 0.34, AOTUserFrac: 0.20, PrependUserFrac: 0.07, BHUserFrac: 0.10,
				DNAOccShare: 0.80, AOTOccShare: 0.18,
				ActionPerRoute: 12.0, DefinedShare: 0.81, StandardShare: 0.90, ActionShare: 0.70,
				NonMemberTargetShare: 0.45,
			},
			V6: FamilyParams{
				MembersAtRS: 85, Prefixes: 45321, Routes: 48711,
				ActionUserFrac: 0.30, TaggedRouteFrac: 0.50,
				DNAUserFrac: 0.20, AOTUserFrac: 0.13, PrependUserFrac: 0.03, BHUserFrac: 0.01,
				DNAOccShare: 0.82, AOTOccShare: 0.17,
				ActionPerRoute: 10.0, DefinedShare: 0.82, StandardShare: 0.89, ActionShare: 0.67,
				NonMemberTargetShare: 0.42,
			},
		},
		{
			IXP: "DE-CIX NYC", Location: "New York, USA", AvgTraffic: "941 Gbps",
			TotalMembers: 256, Scheme: dictionary.ProfileByName("DE-CIX NYC"),
			V4: FamilyParams{
				MembersAtRS: 171, Prefixes: 162469, Routes: 186983,
				ActionUserFrac: 0.48, TaggedRouteFrac: 0.63,
				DNAUserFrac: 0.35, AOTUserFrac: 0.21, PrependUserFrac: 0.08, BHUserFrac: 0.11,
				DNAOccShare: 0.80, AOTOccShare: 0.18,
				ActionPerRoute: 11.0, DefinedShare: 0.80, StandardShare: 0.91, ActionShare: 0.70,
				NonMemberTargetShare: 0.47,
			},
			V6: FamilyParams{
				MembersAtRS: 145, Prefixes: 48951, Routes: 61638,
				ActionUserFrac: 0.31, TaggedRouteFrac: 0.49,
				DNAUserFrac: 0.21, AOTUserFrac: 0.14, PrependUserFrac: 0.04, BHUserFrac: 0.01,
				DNAOccShare: 0.81, AOTOccShare: 0.18,
				ActionPerRoute: 9.5, DefinedShare: 0.81, StandardShare: 0.89, ActionShare: 0.66,
				NonMemberTargetShare: 0.43,
			},
		},
		{
			IXP: "BCIX", Location: "Berlin, Germany", AvgTraffic: "640 Gbps",
			TotalMembers: 145, Scheme: dictionary.ProfileByName("BCIX"),
			V4: FamilyParams{
				MembersAtRS: 88, Prefixes: 106249, Routes: 111115,
				ActionUserFrac: 0.45, TaggedRouteFrac: 0.65,
				DNAUserFrac: 0.36, AOTUserFrac: 0.14, PrependUserFrac: 0.05, BHUserFrac: 0.05,
				DNAOccShare: 0.85, AOTOccShare: 0.14,
				// §5.1: action ≥ 95% of IXP-defined standard communities.
				ActionPerRoute: 12.6, DefinedShare: 0.85, StandardShare: 0.92, ActionShare: 0.955,
				NonMemberTargetShare: 0.40,
			},
			V6: FamilyParams{
				MembersAtRS: 78, Prefixes: 46873, Routes: 50569,
				ActionUserFrac: 0.30, TaggedRouteFrac: 0.55,
				DNAUserFrac: 0.24, AOTUserFrac: 0.09, PrependUserFrac: 0.02, BHUserFrac: 0.01,
				DNAOccShare: 0.88, AOTOccShare: 0.115,
				ActionPerRoute: 13.0, DefinedShare: 0.88, StandardShare: 0.91, ActionShare: 0.955,
				NonMemberTargetShare: 0.38,
			},
		},
		{
			IXP: "Netnod", Location: "Stockholm, Sweden", AvgTraffic: "1.12 Tbps",
			TotalMembers: 187, Scheme: dictionary.ProfileByName("Netnod"),
			V4: FamilyParams{
				MembersAtRS: 127, Prefixes: 132179, Routes: 150670,
				ActionUserFrac: 0.47, TaggedRouteFrac: 0.68,
				DNAUserFrac: 0.38, AOTUserFrac: 0.15, PrependUserFrac: 0.06, BHUserFrac: 0.06,
				DNAOccShare: 0.86, AOTOccShare: 0.13,
				ActionPerRoute: 30.0, DefinedShare: 0.86, StandardShare: 0.93, ActionShare: 0.955,
				NonMemberTargetShare: 0.42,
			},
			V6: FamilyParams{
				MembersAtRS: 101, Prefixes: 45507, Routes: 48874,
				ActionUserFrac: 0.32, TaggedRouteFrac: 0.56,
				DNAUserFrac: 0.26, AOTUserFrac: 0.10, PrependUserFrac: 0.03, BHUserFrac: 0.01,
				DNAOccShare: 0.88, AOTOccShare: 0.115,
				ActionPerRoute: 16.0, DefinedShare: 0.88, StandardShare: 0.92, ActionShare: 0.955,
				NonMemberTargetShare: 0.40,
			},
		},
	}
}

// ProfileByName returns the profile for an IXP name, or nil.
func ProfileByName(name string) *Profile {
	for _, p := range Profiles() {
		if p.IXP == name {
			cp := p
			return &cp
		}
	}
	return nil
}

// BigFour returns the four large IXPs the paper's analyses focus on.
func BigFour() []Profile {
	all := Profiles()
	return all[:4]
}
