package ixpgen

import (
	"math"
	"time"
)

// TemporalOptions configure a snapshot time series — the twelve-week,
// daily-snapshot collection of §3/§4 with its small day-to-day jitter
// (Table 3), slower multi-week drift (Table 4) and the occasional
// collection "valley" that sanitation must catch.
type TemporalOptions struct {
	// Start is the first snapshot day (the paper collected from
	// 19 Jul 2021).
	Start time.Time
	// Days is the series length (84 days ≈ twelve weeks).
	Days int
	// Seed and Scale are passed through to Generate; each day derives
	// its own sub-seed.
	Seed  int64
	Scale float64
	// DailyJitter is the amplitude of day-to-day variation (paper:
	// under 4%; default 0.012).
	DailyJitter float64
	// WeeklyDrift is the relative growth per week (Table 4 shows a
	// median min-max difference of ~5.3% over 12 weeks; default 0.004).
	WeeklyDrift float64
	// ValleyDays lists day offsets where the collection fails and the
	// snapshot loses ≥30% of members and routes (§3 sanitation).
	ValleyDays []int
	// ValleyDepth is the fraction retained on a valley day (default
	// 0.62, i.e. a 38% drop).
	ValleyDepth float64
}

// DefaultStart mirrors the paper's collection start date.
var DefaultStart = time.Date(2021, time.July, 19, 0, 0, 0, 0, time.UTC)

func (o *TemporalOptions) setDefaults() {
	if o.Start.IsZero() {
		o.Start = DefaultStart
	}
	if o.Days <= 0 {
		o.Days = 84
	}
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.DailyJitter == 0 {
		o.DailyJitter = 0.012
	}
	if o.WeeklyDrift == 0 {
		o.WeeklyDrift = 0.004
	}
	if o.ValleyDepth == 0 {
		o.ValleyDepth = 0.62
	}
}

// DayScale returns the effective generation scale for day d: the base
// scale modulated by drift, deterministic jitter and valleys.
func (o TemporalOptions) DayScale(d int) float64 {
	(&o).setDefaults()
	week := float64(d) / 7.0
	// Deterministic pseudo-jitter: two incommensurate sinusoids give a
	// wandering ±DailyJitter without any RNG state to thread through.
	jitter := o.DailyJitter * 0.5 * (math.Sin(float64(d)*1.7+float64(o.Seed%7)) + math.Sin(float64(d)*0.61))
	scale := o.Scale * (1 + o.WeeklyDrift*week + jitter)
	for _, v := range o.ValleyDays {
		if v == d {
			return scale * o.ValleyDepth
		}
	}
	return scale
}

// GenerateDay builds the workload for day d of the series. Membership
// and announcements evolve through the changing scale and a distinct
// per-day seed component for churn.
func GenerateDay(p Profile, o TemporalOptions, d int) (*Workload, string, error) {
	o.setDefaults()
	date := o.Start.AddDate(0, 0, d).Format("2006-01-02")
	// The seed changes slowly: the same base population with per-day
	// churn comes from mixing a week component (stable within a week)
	// and a small day component.
	seed := o.Seed + int64(d/7)*1009 + int64(d%7)
	w, err := Generate(p, Options{Seed: seed, Scale: o.DayScale(d)})
	if err != nil {
		return nil, "", err
	}
	return w, date, nil
}
