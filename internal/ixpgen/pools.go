package ixpgen

import (
	"math"
	"math/rand"

	"ixplight/internal/asdb"
)

// ASN ranges for synthetic entities. Everything that can be the target
// of a standard action community must fit in 16 bits; transit hops on
// AS paths have no such constraint and use a high 32-bit range.
const (
	synthMemberBase    = 30000  // synthetic RS members: 30000+
	synthNonMemberBase = 40000  // synthetic non-member targets: 40000+
	synthHopBase       = 100000 // downstream path hops (32-bit is fine)
)

// wellKnownMembers are the paper-named networks modelled as RS members
// at every IXP. Hurricane Electric heads the list: it is the paper's
// top "culprit" (Fig. 7) at all four large IXPs.
var wellKnownMembers = []uint32{
	asdb.ASNHurricaneElectric,
	asdb.ASNCloudflare,
	asdb.ASNNetflix,
	asdb.ASNMicrosoft,
	asdb.ASNTelia,
	asdb.ASNGTT,
	asdb.ASNCogent,
	asdb.ASNLumen,
}

// brazilMembers join the member list only at IX.br-SP (§5.4 names them
// as announce-only-to targets there).
var brazilMembers = []uint32{
	asdb.ASNRNP,
	asdb.ASNNICSimet,
	asdb.ASNItau,
	asdb.ASNCDNetworks,
	asdb.ASNProlink,
	asdb.ASNSyntegra,
}

// wellKnownNonMembers are the content/cloud providers modelled as
// *absent* from every RS: the preferred-PNI networks whose targeting
// is ineffective (§5.5). Per-IXP ordering below decides which heads
// the target popularity ranking.
var wellKnownNonMembers = []uint32{
	asdb.ASNGoogle,
	asdb.ASNOVHcloud,
	asdb.ASNAkamai,
	asdb.ASNLeaseWeb,
	asdb.ASNEdgecast,
	asdb.ASNApple,
	asdb.ASNMeta,
	asdb.ASNAmazon,
	asdb.ASNFilanco,
}

// nonMemberHeadOrder gives each IXP's most-avoided non-member first,
// reproducing the Fig. 5/6 top targets (Google at LINX, OVHcloud at
// AMS-IX, Filanco prominent at DE-CIX).
var nonMemberHeadOrder = map[string][]uint32{
	"IX.br-SP": {asdb.ASNGoogle, asdb.ASNLeaseWeb, asdb.ASNOVHcloud, asdb.ASNAkamai},
	"DE-CIX":   {asdb.ASNGoogle, asdb.ASNFilanco, asdb.ASNLeaseWeb, asdb.ASNOVHcloud},
	"LINX":     {asdb.ASNGoogle, asdb.ASNOVHcloud, asdb.ASNAkamai, asdb.ASNLeaseWeb},
	"AMS-IX":   {asdb.ASNOVHcloud, asdb.ASNGoogle, asdb.ASNLeaseWeb, asdb.ASNAkamai},
}

// memberHeadOrder gives each IXP's most-avoided member first
// (Hurricane Electric heads IX.br-SP, matching its top-community slot
// in Fig. 5).
var memberHeadOrder = map[string][]uint32{
	"IX.br-SP": {asdb.ASNHurricaneElectric, asdb.ASNProlink, asdb.ASNSyntegra, asdb.ASNCloudflare, asdb.ASNNetflix},
	"DE-CIX":   {asdb.ASNHurricaneElectric, asdb.ASNCloudflare, asdb.ASNNetflix},
	"LINX":     {asdb.ASNHurricaneElectric, asdb.ASNCloudflare, asdb.ASNNetflix},
	"AMS-IX":   {asdb.ASNHurricaneElectric, asdb.ASNNetflix, asdb.ASNCloudflare},
}

// targetPool is a popularity-ranked list of target ASNs with
// precomputed Zipf cumulative weights for sampling.
type targetPool struct {
	asns []uint32
	cum  []float64 // cumulative Zipf weights
}

// newTargetPool ranks head first, then tail, and precomputes the
// sampling distribution (weight 1/(rank+2)^1.1 — heavy-tailed enough
// that the head dominates, as Fig. 5's top-20 skew requires).
func newTargetPool(head, tail []uint32) *targetPool {
	seen := make(map[uint32]bool)
	var asns []uint32
	for _, lists := range [][]uint32{head, tail} {
		for _, a := range lists {
			if !seen[a] {
				seen[a] = true
				asns = append(asns, a)
			}
		}
	}
	p := &targetPool{asns: asns, cum: make([]float64, len(asns))}
	total := 0.0
	for i := range asns {
		total += 1.0 / math.Pow(float64(i+2), 1.1)
		p.cum[i] = total
	}
	return p
}

// head returns the n top-ranked ASNs (fewer if the pool is smaller).
func (p *targetPool) head(n int) []uint32 {
	if n > len(p.asns) {
		n = len(p.asns)
	}
	if n <= 0 {
		return nil
	}
	return p.asns[:n]
}

// draw picks one ASN by the Zipf distribution.
func (p *targetPool) draw(rng *rand.Rand) uint32 {
	if len(p.asns) == 0 {
		return 0
	}
	v := rng.Float64() * p.cum[len(p.cum)-1]
	lo, hi := 0, len(p.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cum[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return p.asns[lo]
}

// drawDistinct samples n distinct ASNs (fewer if the pool is smaller).
func (p *targetPool) drawDistinct(rng *rand.Rand, n int) []uint32 {
	if n > len(p.asns) {
		n = len(p.asns)
	}
	out := make([]uint32, 0, n)
	seen := make(map[uint32]bool, n)
	for attempts := 0; len(out) < n && attempts < n*30; attempts++ {
		a := p.draw(rng)
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	// Fill any remainder by scanning ranks in order.
	for i := 0; len(out) < n && i < len(p.asns); i++ {
		if !seen[p.asns[i]] {
			seen[p.asns[i]] = true
			out = append(out, p.asns[i])
		}
	}
	return out
}
