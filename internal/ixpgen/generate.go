package ixpgen

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sort"

	"ixplight/internal/bgp"
	"ixplight/internal/dictionary"
	"ixplight/internal/netutil"
)

// Options control one generation run.
type Options struct {
	// Seed makes the workload reproducible.
	Seed int64
	// Scale multiplies every magnitude (members, prefixes, routes);
	// 1.0 is paper scale, 0.02–0.05 is comfortable for tests/benches.
	Scale float64
}

// Member is one synthetic RS member.
type Member struct {
	ASN  uint32
	Name string
	// Index numbers the member on the IXP LAN for address derivation.
	Index int
	IPv4  bool
	IPv6  bool
}

// Workload is a fully materialised set of members and their accepted
// routes for one IXP, ready to be fed into a route server or packaged
// as a snapshot.
type Workload struct {
	Profile Profile
	Members []Member
	Routes  []bgp.Route
	// Invalid holds announcements the route server must reject (bogon
	// prefixes, out-of-bounds lengths, looped or oversized paths) —
	// the §3 "filtered" side of the filtered-vs-accepted split. Real
	// members leak such announcements constantly.
	Invalid []bgp.Route
}

// memberState carries the per-member generation decisions.
type memberState struct {
	member     *Member
	routes     int
	isDNA      bool
	isAOT      bool
	isPrepend  bool
	isBH       bool
	avoidList  []bgp.Community // do-not-announce entries
	allowList  []bgp.Community // block-all + announce-only entries
	prependTag []bgp.Community
	// Extension flavours (the paper's future work): extended-community
	// prepending (AMS-IX) and large-community avoid lists able to name
	// 32-bit targets.
	prependExt []bgp.ExtendedCommunity
	largeAvoid []bgp.LargeCommunity
	tagProb    float64
	v6         bool
}

// Generate builds the workload for one profile. Both address families
// are generated; v6 members are a subset of the v4 membership, as at
// real route servers.
func Generate(p Profile, opt Options) (*Workload, error) {
	if p.Scheme == nil {
		return nil, fmt.Errorf("ixpgen: profile %q has no scheme", p.IXP)
	}
	if opt.Scale <= 0 {
		opt.Scale = 1.0
	}
	rng := rand.New(rand.NewSource(opt.Seed ^ int64(p.Scheme.RSASN)<<20))

	w := &Workload{Profile: p}
	members := buildMembers(p, opt.Scale, rng)
	w.Members = members

	prefixCounter := 0
	for _, v6 := range []bool{false, true} {
		fam := p.V4
		if v6 {
			fam = p.V6
		}
		if err := generateFamily(w, fam, v6, rng, opt.Scale, &prefixCounter); err != nil {
			return nil, err
		}
	}
	w.Invalid = emitInvalid(w, rng)
	return w, nil
}

// emitInvalid fabricates the announcements the import policy must
// reject: roughly half a percent of the table, spread over the larger
// members, cycling through the §3 rejection reasons.
func emitInvalid(w *Workload, rng *rand.Rand) []bgp.Route {
	n := len(w.Routes) / 200
	if n < 2 {
		n = 2
	}
	var out []bgp.Route
	for i := 0; i < n; i++ {
		m := w.Members[rng.Intn(min(len(w.Members), 8))]
		if !m.IPv4 {
			continue
		}
		nh := netutil.PeerAddrV4(m.Index)
		base := bgp.Route{NextHop: nh, ASPath: bgp.ASPath{m.ASN}, Origin: bgp.OriginIGP}
		r := base
		switch i % 4 {
		case 0: // bogon prefix
			r.Prefix = netip.MustParsePrefix("10.64.0.0/16")
		case 1: // too specific
			p := netutil.SyntheticV4Prefix(900000 + i)
			r.Prefix = netip.PrefixFrom(p.Addr(), 28)
		case 2: // bogon ASN on the path
			r.Prefix = netutil.SyntheticV4Prefix(910000 + i)
			r.ASPath = bgp.ASPath{m.ASN, 23456, uint32(synthHopBase + i)}
		case 3: // AS path loop
			r.Prefix = netutil.SyntheticV4Prefix(920000 + i)
			r.ASPath = bgp.ASPath{m.ASN, uint32(synthHopBase + i), m.ASN}
		}
		out = append(out, r)
	}
	return out
}

// scaleInt scales a paper-scale magnitude, keeping a sane floor.
func scaleInt(n int, scale float64, floor int) int {
	v := int(math.Round(float64(n) * scale))
	if v < floor {
		v = floor
	}
	return v
}

// buildMembers creates the member list: the paper-named networks
// first, then synthetic members. IPv6 membership is the first
// n6-of-n4 slice after a deterministic shuffle that keeps the
// well-known networks dual-stacked.
func buildMembers(p Profile, scale float64, rng *rand.Rand) []Member {
	n4 := scaleInt(p.V4.MembersAtRS, scale, 16)
	n6 := scaleInt(p.V6.MembersAtRS, scale, 12)
	if n6 > n4 {
		n6 = n4
	}

	head := append([]uint32(nil), wellKnownMembers...)
	if p.IXP == "IX.br-SP" {
		head = append(head, brazilMembers...)
	}
	members := make([]Member, 0, n4)
	for i, asn := range head {
		if len(members) == n4 {
			break
		}
		members = append(members, Member{ASN: asn, Name: memberName(asn), Index: i + 1, IPv4: true})
	}
	for i := len(members); i < n4; i++ {
		asn := uint32(synthMemberBase + i)
		members = append(members, Member{ASN: asn, Name: memberName(asn), Index: i + 1, IPv4: true})
	}

	// IPv6: well-known members always, then a deterministic sample.
	v6Left := n6
	for i := range members {
		if i < len(head) && v6Left > 0 {
			members[i].IPv6 = true
			v6Left--
		}
	}
	perm := rng.Perm(n4)
	for _, i := range perm {
		if v6Left == 0 {
			break
		}
		if !members[i].IPv6 {
			members[i].IPv6 = true
			v6Left--
		}
	}
	return members
}

func memberName(asn uint32) string {
	if asn >= synthMemberBase && asn < synthNonMemberBase {
		return fmt.Sprintf("Member-%d", asn)
	}
	return fmt.Sprintf("AS%d", asn)
}

// generateFamily emits one family's routes into w.Routes.
func generateFamily(w *Workload, fam FamilyParams, v6 bool, rng *rand.Rand, scale float64, prefixCounter *int) error {
	p := w.Profile
	var famMembers []*Member
	for i := range w.Members {
		m := &w.Members[i]
		if (v6 && m.IPv6) || (!v6 && m.IPv4) {
			famMembers = append(famMembers, m)
		}
	}
	n := len(famMembers)
	if n == 0 {
		return fmt.Errorf("ixpgen: %s: no members for family v6=%v", p.IXP, v6)
	}
	totalRoutes := scaleInt(fam.Routes, scale, n)
	totalPrefixes := scaleInt(fam.Prefixes, scale, n)
	if totalPrefixes > totalRoutes {
		totalPrefixes = totalRoutes
	}

	states := assignSizes(famMembers, totalRoutes, v6, rng)
	assignRoles(states, fam, rng)
	buildLists(states, fam, p, rng)

	routes := emitRoutes(states, fam, p, v6, rng, totalRoutes, totalPrefixes, prefixCounter)
	w.Routes = append(w.Routes, routes...)
	return nil
}

// assignSizes distributes totalRoutes over members with a Zipf-like
// rank-size law. Hurricane Electric is pinned near the top: the
// paper's Fig. 7 culprit must be one of the largest announcers.
func assignSizes(members []*Member, totalRoutes int, v6 bool, rng *rand.Rand) []*memberState {
	n := len(members)
	perm := rng.Perm(n)
	// Pin HE to the top rank: the paper's Fig. 7 culprit is one of the
	// largest announcers at every IXP.
	for i, mi := range perm {
		if members[mi].ASN == wellKnownMembers[0] {
			perm[i], perm[0] = perm[0], perm[i]
			break
		}
	}
	// Exponent 1.2: steep enough that the paper's extreme cases hold
	// (28.5% of LINX v6 members originate 87.5% of the tagged routes).
	weights := make([]float64, n)
	sum := 0.0
	for rank := 0; rank < n; rank++ {
		weights[rank] = 1.0 / math.Pow(float64(rank+1), 1.2)
		sum += weights[rank]
	}
	states := make([]*memberState, n)
	assigned := 0
	for rank, mi := range perm {
		r := int(math.Round(float64(totalRoutes) * weights[rank] / sum))
		if r < 1 {
			r = 1
		}
		states[rank] = &memberState{member: members[mi], routes: r, v6: v6}
		assigned += r
	}
	// Trim or pad the largest member so the total lands on target.
	states[0].routes += totalRoutes - assigned
	if states[0].routes < 1 {
		states[0].routes = 1
	}
	return states
}

// assignRoles picks which members use which action types. Action users
// skew large (the paper's Fig. 4b concentration requires it): two
// thirds of the action users come from the biggest announcers, the
// rest are sampled from the tail. tagProb is then derived so that the
// tagged-route share matches Fig. 4a.
func assignRoles(states []*memberState, fam FamilyParams, rng *rand.Rand) {
	n := len(states)
	nAction := int(math.Round(fam.ActionUserFrac * float64(n)))
	if nAction < 1 {
		nAction = 1
	}
	if nAction > n {
		nAction = n
	}
	totalRoutes := 0
	for _, s := range states {
		totalRoutes += s.routes
	}
	// states is rank-ordered (largest first). Take members from the top
	// until the action users' routes can cover the tagged-route share
	// (with ~8% headroom so tagProb stays below 1), then spread the
	// remaining user slots over the tail.
	needRoutes := fam.TaggedRouteFrac * float64(totalRoutes) * 1.08
	var actionIdx, skipped []int
	actionRoutes := 0
	topCount := 0
	for i := 0; i < n && len(actionIdx) < nAction && float64(actionRoutes) < needRoutes; i++ {
		// ~15% of the big announcers stay out: the paper's Fig. 4c
		// shows large ASes that do not use many communities. Hurricane
		// Electric (rank 0) is always in.
		if i > 0 && rng.Float64() < 0.15 {
			skipped = append(skipped, i)
			continue
		}
		actionIdx = append(actionIdx, i)
		actionRoutes += states[i].routes
		topCount = i + 1
	}
	restPerm := rng.Perm(n - topCount)
	for _, j := range restPerm {
		if len(actionIdx) == nAction {
			break
		}
		actionIdx = append(actionIdx, topCount+j)
		actionRoutes += states[topCount+j].routes
	}
	// Safety: if the tail could not fill the quota, pull the skipped
	// big members back in (deterministic order).
	for _, i := range skipped {
		if len(actionIdx) == nAction {
			break
		}
		actionIdx = append(actionIdx, i)
		actionRoutes += states[i].routes
	}
	// Per-type membership within the action users, sized to Table 2.
	pick := func(frac float64, mark func(*memberState)) {
		want := int(math.Round(frac * float64(n)))
		perm := rng.Perm(len(actionIdx))
		for _, j := range perm {
			if want == 0 {
				break
			}
			mark(states[actionIdx[j]])
			want--
		}
	}
	pick(fam.DNAUserFrac, func(s *memberState) { s.isDNA = true })
	pick(fam.AOTUserFrac, func(s *memberState) { s.isAOT = true })
	pick(fam.PrependUserFrac, func(s *memberState) { s.isPrepend = true })
	pick(fam.BHUserFrac, func(s *memberState) { s.isBH = true })
	if fam.DNAUserFrac > 0 {
		// Hurricane Electric (rank 0, always an action user) is the
		// paper's blanket avoid-list tagger; it must be a DNA user for
		// the Fig. 7 culprit ranking to hold.
		states[0].isDNA = true
	}
	taggerRoutes := 0
	for _, i := range actionIdx {
		s := states[i]
		if !s.isDNA && !s.isAOT && !s.isPrepend && !s.isBH {
			// Every action user must do something; DNA is the
			// overwhelmingly common default.
			s.isDNA = true
		}
		// Blackhole-only users announce host routes but do not tag
		// their table, so they don't contribute to the tagged-route
		// share — derive tagProb over the actual taggers.
		if s.isDNA || s.isAOT || s.isPrepend {
			taggerRoutes += s.routes
		}
	}
	tagProb := 1.0
	if taggerRoutes > 0 {
		tagProb = fam.TaggedRouteFrac * float64(totalRoutes) / float64(taggerRoutes)
	}
	if tagProb > 1 {
		tagProb = 1
	}
	for _, i := range actionIdx {
		states[i].tagProb = tagProb
	}
}

// buildLists materialises each member's avoid/allow/prepend lists,
// sized so the per-type occurrence totals match §5.3 and the target
// mix matches §5.5.
func buildLists(states []*memberState, fam FamilyParams, p Profile, rng *rand.Rand) {
	memberPool, nonMemberPool := buildPools(p, states)
	scheme := p.Scheme

	totalRoutes := 0
	var dnaTagged, aotTagged float64
	for _, s := range states {
		totalRoutes += s.routes
		if s.isDNA {
			dnaTagged += float64(s.routes) * s.tagProb
		}
		if s.isAOT {
			aotTagged += float64(s.routes) * s.tagProb
		}
	}
	actionTotal := fam.ActionPerRoute * float64(totalRoutes)
	dnaTarget := fam.DNAOccShare * actionTotal
	aotTarget := fam.AOTOccShare * actionTotal
	// Every AOT-tagged route carries one block-all community, which
	// counts as a do-not-announce occurrence; budget for it.
	dnaTarget -= aotTagged
	if dnaTarget < 0 {
		dnaTarget = 0
	}

	// List lengths: draw a heavy multiplier per member, then normalise
	// in a second pass so the expected instance totals land exactly on
	// the §5.3 budget. Hurricane Electric gets an outsized multiplier —
	// its blanket avoid-list drives Fig. 7.
	maxList := poolCap(memberPool, nonMemberPool)
	dnaLens := normalizedLengths(states, rng, dnaTarget, maxList,
		func(s *memberState) bool { return s.isDNA },
		func(s *memberState) float64 {
			if s.member.ASN == wellKnownMembers[0] {
				return 1.5
			}
			return 1
		})
	aotLens := normalizedLengths(states, rng, aotTarget, maxList,
		func(s *memberState) bool { return s.isAOT },
		func(*memberState) float64 { return 1 })

	// Non-member bias. §5.5's share is over ALL action instances, but
	// allow-list entries are member-heavy (0.1 non-member) and
	// prepend/blackhole target members or nothing, so the avoid lists
	// must over-shoot: solve for the DNA-entry bias that makes the
	// aggregate land on the target.
	dnaNMTarget := fam.NonMemberTargetShare
	if dnaTarget > 0 {
		dnaNMTarget = clamp((fam.NonMemberTargetShare*actionTotal-0.1*aotTarget)/dnaTarget, 0.05, 0.95)
	}
	// Hurricane Electric blankets non-members (§5.5, Fig. 7); everyone
	// else gets the bias that balances HE's (large) weight.
	heBias := math.Max(0.75, dnaNMTarget)
	var heWeight, totalWeight float64
	for i, s := range states {
		if !s.isDNA {
			continue
		}
		w := float64(s.routes) * s.tagProb * float64(dnaLens[i])
		totalWeight += w
		if s.member.ASN == wellKnownMembers[0] {
			heWeight += w
		}
	}
	restBias := dnaNMTarget
	if totalWeight > 0 && totalWeight > heWeight {
		restBias = (dnaNMTarget*totalWeight - heBias*heWeight) / (totalWeight - heWeight)
	}
	restBias = clamp(restBias, 0.05, 0.95)

	drawTarget := func(s *memberState) uint32 {
		bias := restBias
		if s.member.ASN == wellKnownMembers[0] {
			bias = heBias
		}
		if rng.Float64() < bias {
			return nonMemberPool.draw(rng)
		}
		return memberPool.draw(rng)
	}

	extUserForced, largeUserForced := false, false
	for i, s := range states {
		if s.isDNA {
			l := dnaLens[i]
			bias := restBias
			if s.member.ASN == wellKnownMembers[0] {
				bias = heBias
			}
			seen := map[uint32]bool{s.member.ASN: true, 0: true}
			add := func(t uint32) {
				if !seen[t] {
					seen[t] = true
					s.avoidList = append(s.avoidList, scheme.DoNotAnnounce(uint16(t)))
				}
			}
			// Real avoid lists share a common head: everyone blankets
			// the same big content providers. Seed ~35% of the list
			// from the pool heads (split by the bias), then fill the
			// rest with popularity-weighted random draws.
			for _, t := range nonMemberPool.head(int(bias * float64(l) * 0.35)) {
				add(t)
			}
			for _, t := range memberPool.head(int((1 - bias) * float64(l) * 0.35)) {
				add(t)
			}
			for attempts := 0; len(s.avoidList) < l && attempts < l*40+200; attempts++ {
				add(drawTarget(s))
			}
		}
		if s.isAOT {
			l := aotLens[i]
			// Whitelists point at members you do want (plus the odd
			// future member), so the pool is member-heavy.
			s.allowList = append(s.allowList, scheme.DoNotAnnounceAll())
			seen := map[uint32]bool{s.member.ASN: true, 0: true}
			add := func(t uint32) {
				if !seen[t] {
					seen[t] = true
					s.allowList = append(s.allowList, scheme.AnnounceOnly(uint16(t)))
				}
			}
			for _, t := range memberPool.head(int(float64(l) * 0.3)) {
				add(t)
			}
			for attempts := 0; len(s.allowList)-1 < l && attempts < l*40+200; attempts++ {
				if rng.Float64() < 0.1 {
					add(nonMemberPool.draw(rng))
				} else {
					add(memberPool.draw(rng))
				}
			}
		}
		if s.isPrepend && scheme.SupportsPrepend {
			for _, t := range memberPool.drawDistinct(rng, 1+rng.Intn(2)) {
				c, err := scheme.Prepend(1+rng.Intn(3), uint16(t))
				if err == nil {
					s.prependTag = append(s.prependTag, c)
				}
			}
		}
		// Extension flavours. At AMS-IX fine-grained prepending exists
		// only as an extended community; a sliver of action users
		// exercises it. At large-community IXPs, some avoid lists name
		// 32-bit ASNs that standard communities cannot express.
		if scheme.SupportsExtPrepend && (s.isDNA || s.isAOT) && rng.Float64() < 0.30 {
			assignExtPrepend(s, scheme, memberPool, rng)
			extUserForced = true
		}
		if scheme.SupportsLarge && s.isDNA && rng.Float64() < 0.10 {
			assignLargeAvoid(s, scheme, rng)
			largeUserForced = true
		}
	}
	// Guarantee at least one user of each supported extension flavour,
	// picked from the tail so the forced volume stays small (states are
	// rank-ordered largest-first).
	for i := len(states) - 1; i >= 0 && scheme.SupportsExtPrepend && !extUserForced; i-- {
		if s := states[i]; s.isDNA || s.isAOT {
			assignExtPrepend(s, scheme, memberPool, rng)
			extUserForced = true
		}
	}
	for i := len(states) - 1; i >= 0 && scheme.SupportsLarge && !largeUserForced; i-- {
		if s := states[i]; s.isDNA {
			assignLargeAvoid(s, scheme, rng)
			largeUserForced = true
		}
	}
}

// assignExtPrepend gives one member an extended-community prepend tag.
func assignExtPrepend(s *memberState, scheme *dictionary.Scheme, memberPool *targetPool, rng *rand.Rand) {
	for _, t := range memberPool.drawDistinct(rng, 1) {
		if c, err := scheme.ExtPrepend(1+rng.Intn(3), uint16(t)); err == nil {
			s.prependExt = append(s.prependExt, c)
		}
	}
}

// assignLargeAvoid gives one member a large-community avoid list whose
// targets need 32 bits.
func assignLargeAvoid(s *memberState, scheme *dictionary.Scheme, rng *rand.Rand) {
	for n := 2 + rng.Intn(4); n > 0; n-- {
		target := uint32(262144 + rng.Intn(4000)) // 32-bit-only ASN
		if c, err := scheme.LargeDoNotAnnounce(target); err == nil {
			s.largeAvoid = append(s.largeAvoid, c)
		}
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// normalizedLengths assigns heavy-tailed list lengths to the members
// selected by isUser so that Σ routes·tagProb·len ≈ target. The
// returned slice is indexed like states (zero for non-users).
func normalizedLengths(states []*memberState, rng *rand.Rand, target float64, maxList int, isUser func(*memberState) bool, boost func(*memberState) float64) []int {
	mults := make([]float64, len(states))
	weighted := 0.0
	for i, s := range states {
		if !isUser(s) {
			continue
		}
		mults[i] = math.Exp(rng.NormFloat64()*0.8-0.32) * boost(s)
		weighted += float64(s.routes) * s.tagProb * mults[i]
	}
	lens := make([]int, len(states))
	if weighted <= 0 || target <= 0 {
		for i, s := range states {
			if isUser(s) {
				lens[i] = 1
			}
		}
		return lens
	}
	// Two rounds: the clamps (floor 1, cap maxList) shift the realised
	// total, so rescale the unclamped members once to compensate.
	scale := target / weighted
	for round := 0; round < 2; round++ {
		realized, free := 0.0, 0.0
		for i, s := range states {
			if !isUser(s) {
				continue
			}
			l := int(math.Round(scale * mults[i]))
			clamped := false
			if l < 1 {
				l, clamped = 1, true
			}
			if l > maxList {
				l, clamped = maxList, true
			}
			lens[i] = l
			w := float64(s.routes) * s.tagProb
			realized += w * float64(l)
			if !clamped {
				free += w * scale * mults[i]
			}
		}
		if round == 1 || free <= 0 || realized <= 0 {
			break
		}
		// Adjust only the share the unclamped members can absorb.
		want := target - (realized - free)
		if want <= 0 {
			break
		}
		scale *= want / free
	}
	return lens
}

// poolCap bounds a target list by the distinct ASNs actually drawable
// from the two pools (minus the member itself).
func poolCap(member, nonMember *targetPool) int {
	n := len(member.asns) + len(nonMember.asns) - 1
	if n < 1 {
		n = 1
	}
	return n
}

// buildPools constructs the member and non-member target pools for an
// IXP, ranked so the paper's named networks head the popularity order.
func buildPools(p Profile, states []*memberState) (member, nonMember *targetPool) {
	memberSet := make(map[uint32]bool, len(states))
	var synthMembers []uint32
	for _, s := range states {
		memberSet[s.member.ASN] = true
		if s.member.ASN >= synthMemberBase && s.member.ASN < synthNonMemberBase {
			synthMembers = append(synthMembers, s.member.ASN)
		}
	}
	sort.Slice(synthMembers, func(i, j int) bool { return synthMembers[i] < synthMembers[j] })

	var memberHead []uint32
	for _, a := range memberHeadOrder[p.IXP] {
		if memberSet[a] {
			memberHead = append(memberHead, a)
		}
	}
	if len(memberHead) == 0 { // smaller IXPs: HE first if present
		for _, a := range wellKnownMembers {
			if memberSet[a] {
				memberHead = append(memberHead, a)
			}
		}
	}
	memberPool := newTargetPool(memberHead, synthMembers)

	nmHead := nonMemberHeadOrder[p.IXP]
	if nmHead == nil {
		nmHead = wellKnownNonMembers
	} else {
		nmHead = append(append([]uint32(nil), nmHead...), wellKnownNonMembers...)
	}
	// The non-member tail must stay comfortably larger than the longest
	// avoid-lists, or distinct-target draws saturate the pool and the
	// realised §5.5 share collapses towards the pool-size ratio.
	var nmTail []uint32
	nSynthNM := 200 + len(states)
	for i := 0; i < nSynthNM; i++ {
		nmTail = append(nmTail, uint32(synthNonMemberBase+i))
	}
	nonMemberPool := newTargetPool(nmHead, nmTail)
	return memberPool, nonMemberPool
}

// emitRoutes walks every member and materialises its routes with the
// full community composition.
func emitRoutes(states []*memberState, fam FamilyParams, p Profile, v6 bool, rng *rand.Rand, totalRoutes, totalPrefixes int, prefixCounter *int) []bgp.Route {
	scheme := p.Scheme
	infoMean := fam.InfoPerRoute()
	unknownMean := fam.UnknownPerRoute()
	extLargeMean := fam.ExtLargePerRoute()

	alloc := &prefixAllocator{
		freshLeft:  totalPrefixes,
		routesLeft: totalRoutes,
		v6:         v6,
		counter:    prefixCounter,
	}
	routes := make([]bgp.Route, 0, totalRoutes+16)

	for _, s := range states {
		perMemberSeen := make(map[netip.Prefix]bool, s.routes)
		nh := netutil.PeerAddrV4(s.member.Index)
		if v6 {
			nh = netutil.PeerAddrV6(s.member.Index)
		}
		for k := 0; k < s.routes; k++ {
			prefix := alloc.pick(rng, perMemberSeen)
			r := bgp.Route{
				Prefix:  prefix,
				NextHop: nh,
				ASPath:  buildPath(s.member.ASN, rng),
				Origin:  bgp.OriginIGP,
			}
			tagged := (s.isDNA || s.isAOT || s.isPrepend) && rng.Float64() < s.tagProb
			if tagged {
				if s.isDNA {
					r.Communities = append(r.Communities, s.avoidList...)
					r.LargeCommunities = append(r.LargeCommunities, s.largeAvoid...)
				}
				if s.isAOT {
					r.Communities = append(r.Communities, s.allowList...)
				}
				if s.isPrepend && rng.Float64() < 0.5 {
					r.Communities = append(r.Communities, s.prependTag...)
				}
				if len(s.prependExt) > 0 && rng.Float64() < 0.5 {
					r.ExtCommunities = append(r.ExtCommunities, s.prependExt...)
				}
			}
			// Informational tags (as the RS would attach on ingress).
			for _, k := range sampleCount(rng, infoMean) {
				if info, err := scheme.Info(k % scheme.InfoCount); err == nil {
					if !bgp.HasCommunity(r.Communities, info) {
						r.Communities = append(r.Communities, info)
					}
				}
			}
			// Member-private (unknown) communities.
			for range sampleCount(rng, unknownMean) {
				r.Communities = append(r.Communities, memberPrivate(s.member.ASN, rng))
			}
			// Extended / large IXP-defined informational tags (60/40
			// where the IXP defines large communities, ext-only else).
			for range sampleCount(rng, extLargeMean) {
				if !scheme.SupportsLarge || rng.Float64() < 0.6 {
					r.ExtCommunities = append(r.ExtCommunities, scheme.ExtInfo(rng.Intn(64)))
				} else if info, err := scheme.LargeInfo(rng.Intn(scheme.InfoCount)); err == nil {
					r.LargeCommunities = append(r.LargeCommunities, info)
				}
			}
			routes = append(routes, r)
		}
		// Blackhole users add a few host routes on top.
		if s.isBH && scheme.SupportsBlackhole {
			bhComm, _ := scheme.BlackholeCommunity()
			for b, nBH := 0, 1+rng.Intn(3); b < nBH; b++ {
				routes = append(routes, blackholeRoute(s, b, v6, nh, bhComm))
			}
		}
	}
	return routes
}

// sampleCount turns a fractional mean into an integer draw: the whole
// part always, plus one more with the fractional probability. It
// returns index slots usable for variety.
func sampleCount(rng *rand.Rand, mean float64) []int {
	n := int(mean)
	if rng.Float64() < mean-float64(n) {
		n++
	}
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(1 << 20)
	}
	return out
}

// prefixAllocator hands out route prefixes so that the number of
// distinct prefixes lands on the Table 1 target while routes exceed
// prefixes through multi-member announcements. The fresh-vs-reuse
// probability adapts to the remaining budget, which keeps the realised
// distinct count on target regardless of the member size distribution.
type prefixAllocator struct {
	used       []netip.Prefix
	freshLeft  int
	routesLeft int
	v6         bool
	counter    *int
}

func (a *prefixAllocator) mint(perMember map[netip.Prefix]bool) netip.Prefix {
	var p netip.Prefix
	if a.v6 {
		p = netutil.SyntheticV6Prefix(*a.counter)
	} else {
		p = netutil.SyntheticV4Prefix(*a.counter)
	}
	*a.counter++
	a.freshLeft--
	a.used = append(a.used, p)
	perMember[p] = true
	return p
}

func (a *prefixAllocator) pick(rng *rand.Rand, perMember map[netip.Prefix]bool) netip.Prefix {
	defer func() { a.routesLeft-- }()
	freshProb := 1.0
	if a.routesLeft > 0 {
		freshProb = float64(a.freshLeft) / float64(a.routesLeft)
	}
	if a.freshLeft > 0 && (len(a.used) == 0 || rng.Float64() < freshProb) {
		return a.mint(perMember)
	}
	for attempt := 0; attempt < 12; attempt++ {
		p := a.used[rng.Intn(len(a.used))]
		if !perMember[p] {
			perMember[p] = true
			return p
		}
	}
	// The member already announces everything we sampled; minting is
	// the only way out (slightly overshoots the distinct target).
	if a.freshLeft <= 0 {
		a.freshLeft = 1
	}
	return a.mint(perMember)
}

// buildPath gives 60% of routes a direct origination and the rest a
// short customer cone behind the member.
func buildPath(memberASN uint32, rng *rand.Rand) bgp.ASPath {
	path := bgp.ASPath{memberASN}
	if rng.Float64() < 0.4 {
		hops := 1 + rng.Intn(3)
		for i := 0; i < hops; i++ {
			hop := uint32(synthHopBase + rng.Intn(50000))
			// Keep hops distinct: the route server rejects looped paths.
			for path.Contains(hop) {
				hop++
			}
			path = append(path, hop)
		}
	}
	return path
}

// memberPrivate builds an unknown community whose high half is the
// member's own ASN. Member ASNs never collide with a scheme's anchor
// ASNs (see TestMemberASNsAvoidSchemeAnchors), so these always
// classify as unknown.
func memberPrivate(asn uint32, rng *rand.Rand) bgp.Community {
	return bgp.NewCommunity(uint16(asn), uint16(rng.Intn(1000)))
}

// blackholeRoute builds one /32 (or /128) host route tagged RFC 7999.
func blackholeRoute(s *memberState, b int, v6 bool, nh netip.Addr, bhComm bgp.Community) bgp.Route {
	var prefix netip.Prefix
	if v6 {
		base := netutil.SyntheticV6Prefix(int(s.member.ASN%10000)*4 + b)
		prefix = netip.PrefixFrom(base.Addr(), 128)
	} else {
		base := netutil.SyntheticV4Prefix(int(s.member.ASN%10000)*4 + b)
		prefix = netip.PrefixFrom(base.Addr(), 32)
	}
	return bgp.Route{
		Prefix:      prefix,
		NextHop:     nh,
		ASPath:      bgp.ASPath{s.member.ASN},
		Origin:      bgp.OriginIGP,
		Communities: []bgp.Community{bhComm},
	}
}
