package lg

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// BenchmarkRoutesReceived measures one paged route listing through
// the client — request, retry bookkeeping, JSON decode — against an
// in-process LG, so the client's own overhead per crawled neighbor is
// visible without network latency.
func BenchmarkRoutesReceived(b *testing.B) {
	_, ts := fixture(b, 50)
	c := NewClient(ts.URL, ClientOptions{PageSize: 25})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		routes, err := c.RoutesReceived(context.Background(), 100)
		if err != nil {
			b.Fatal(err)
		}
		if len(routes) != 50 {
			b.Fatalf("routes = %d, want 50", len(routes))
		}
	}
}

// BenchmarkThrottleContended measures the shared MinInterval pacer
// under heavy goroutine contention — the hot path every request of a
// parallel crawl serialises through.
func BenchmarkThrottleContended(b *testing.B) {
	c := NewClient("http://unused", ClientOptions{
		MinInterval: time.Nanosecond, MaxInFlight: 64,
	})
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := c.throttle(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkClientConcurrency compares pushing n concurrent requests
// through one client at MaxInFlight=1 vs n — the per-client cost of
// the in-flight semaphore and shared pacer as parallelism grows.
func BenchmarkClientConcurrency(b *testing.B) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"ixp":"TEST","version":"1.0","rs_asn":1}`))
	}))
	defer ts.Close()
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("inflight=%d", workers), func(b *testing.B) {
			c := NewClient(ts.URL, ClientOptions{MaxInFlight: workers})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for j := 0; j < workers; j++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						if _, err := c.Status(context.Background()); err != nil {
							b.Error(err)
						}
					}()
				}
				wg.Wait()
			}
		})
	}
}
