package lg

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"ixplight/internal/bgp"
	"ixplight/internal/dictionary"
	"ixplight/internal/netutil"
	"ixplight/internal/rs"
)

// fixture spins up a route server with two peers and nRoutes routes
// announced by AS100, wrapped in an httptest LG. It takes testing.TB
// so benchmarks share it.
func fixture(t testing.TB, nRoutes int) (*rs.Server, *httptest.Server) {
	t.Helper()
	server, err := rs.New(rs.Config{
		Scheme:       dictionary.ProfileByName("DE-CIX"),
		ScrubActions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, asn := range []uint32{100, 200} {
		if err := server.AddPeer(rs.Peer{
			ASN: asn, Name: "peer", AddrV4: netutil.PeerAddrV4(i + 1),
			IPv4: true, IPv6: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	scheme := server.Scheme()
	for i := 0; i < nRoutes; i++ {
		r := bgp.Route{
			Prefix:  netutil.SyntheticV4Prefix(i),
			NextHop: netutil.PeerAddrV4(1),
			ASPath:  bgp.ASPath{100},
			Communities: []bgp.Community{
				scheme.DoNotAnnounce(6939),
				bgp.NewCommunity(100, uint16(i)),
			},
		}
		if reason, err := server.Announce(100, r); err != nil || reason != rs.FilterNone {
			t.Fatalf("announce %d: %v %v", i, reason, err)
		}
	}
	// One filtered route for the filtered endpoint.
	bad := bgp.Route{
		Prefix:  netutil.SyntheticV4Prefix(nRoutes + 1),
		NextHop: netutil.PeerAddrV4(1),
		ASPath:  bgp.ASPath{999}, // first-AS mismatch
	}
	if reason, _ := server.Announce(100, bad); reason == rs.FilterNone {
		t.Fatal("bad route accepted")
	}
	ts := httptest.NewServer(NewServer(server))
	t.Cleanup(ts.Close)
	return server, ts
}

func TestStatusEndpoint(t *testing.T) {
	_, ts := fixture(t, 1)
	c := NewClient(ts.URL, ClientOptions{})
	st, err := c.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.IXP != "DE-CIX" || st.RSASN != 6695 {
		t.Errorf("status = %+v", st)
	}
}

func TestNeighborsEndpoint(t *testing.T) {
	_, ts := fixture(t, 3)
	c := NewClient(ts.URL, ClientOptions{})
	ns, err := c.Neighbors(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 2 {
		t.Fatalf("neighbors = %d", len(ns))
	}
	if ns[0].ASN != 100 || ns[0].RoutesAccepted != 3 || ns[0].RoutesFiltered != 1 {
		t.Errorf("neighbor[0] = %+v", ns[0])
	}
	if ns[1].ASN != 200 || ns[1].RoutesAccepted != 0 {
		t.Errorf("neighbor[1] = %+v", ns[1])
	}
}

func TestRoutesPagination(t *testing.T) {
	server, ts := fixture(t, 47)
	c := NewClient(ts.URL, ClientOptions{PageSize: 10})
	routes, err := c.RoutesReceived(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 47 {
		t.Fatalf("routes = %d, want 47", len(routes))
	}
	// Paginated fetch must reconstruct exactly what the RS holds.
	want := server.AcceptedRoutes(100)
	if !reflect.DeepEqual(routes, want) {
		t.Error("paginated routes differ from RS state")
	}
	// 5 pages of routes + neighbors-free direct call count.
	if c.HTTPRequests() != 5 {
		t.Errorf("http requests = %d, want 5 pages", c.HTTPRequests())
	}
	// One logical call, however many pages it took.
	if c.Requests() != 1 {
		t.Errorf("logical calls = %d, want 1", c.Requests())
	}
}

func TestRouteRoundTripThroughAPI(t *testing.T) {
	_, ts := fixture(t, 1)
	c := NewClient(ts.URL, ClientOptions{})
	routes, err := c.RoutesReceived(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	r := routes[0]
	if r.PeerAS() != 100 {
		t.Errorf("peer AS = %d", r.PeerAS())
	}
	if !bgp.HasCommunity(r.Communities, bgp.NewCommunity(0, 6939)) {
		t.Errorf("action community lost: %v", r.Communities)
	}
}

func TestFilteredCount(t *testing.T) {
	_, ts := fixture(t, 2)
	c := NewClient(ts.URL, ClientOptions{})
	n, err := c.FilteredCount(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("filtered = %d, want 1", n)
	}
}

func TestConfigEndpoint(t *testing.T) {
	_, ts := fixture(t, 1)
	c := NewClient(ts.URL, ClientOptions{})
	cfg, err := c.Config(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.IXP != "DE-CIX" {
		t.Errorf("config IXP = %q", cfg.IXP)
	}
	// The RS config list is the incomplete one (§3): fewer entries than
	// the 774 full dictionary.
	if len(cfg.Communities) == 0 || len(cfg.Communities) >= 774 {
		t.Errorf("config communities = %d, want 0 < n < 774", len(cfg.Communities))
	}
}

func TestNotFoundAndBadRequests(t *testing.T) {
	_, ts := fixture(t, 1)
	for _, path := range []string{
		"/api/v1/routeservers/rs1/neighbors/999/routes/received", // no such peer
		"/api/v1/routeservers/rs1/neighbors/xyz/routes/received", // bad asn
		"/api/v1/nope",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("%s: got 200", path)
		}
	}
	// Client surfaces non-retryable errors immediately.
	c := NewClient(ts.URL, ClientOptions{MaxRetries: 3})
	if _, err := c.RoutesReceived(context.Background(), 999); err == nil {
		t.Error("want error for unknown neighbor")
	}
	if c.HTTPRequests() != 1 {
		t.Errorf("http requests = %d, 404 must not be retried", c.HTTPRequests())
	}
}

func TestClientRetriesFlakyServer(t *testing.T) {
	server, _ := fixture(t, 5)
	flaky := httptest.NewServer(Flaky(NewServer(server), FlakyOptions{
		ErrorRate: 0.6,
		Seed:      7,
	}))
	defer flaky.Close()

	c := NewClient(flaky.URL, ClientOptions{PageSize: 1, MaxRetries: 30})
	routes, err := c.RoutesReceived(context.Background(), 100)
	if err != nil {
		t.Fatalf("client did not survive flakiness: %v", err)
	}
	if len(routes) != 5 {
		t.Errorf("routes = %d, want 5", len(routes))
	}
	if c.HTTPRequests() <= 5 {
		t.Error("expected retries to have happened")
	}
	if c.Requests() != 1 {
		t.Errorf("logical calls = %d: retries must not count as calls", c.Requests())
	}
}

func TestClientSurvivesRateLimiting(t *testing.T) {
	server, _ := fixture(t, 30)
	limited := httptest.NewServer(Flaky(NewServer(server), FlakyOptions{
		RateLimitEvery: 3, // every third request gets 429
		Seed:           1,
	}))
	defer limited.Close()

	c := NewClient(limited.URL, ClientOptions{PageSize: 5, MaxRetries: 5})
	routes, err := c.RoutesReceived(context.Background(), 100)
	if err != nil {
		t.Fatalf("client did not survive rate limiting: %v", err)
	}
	if len(routes) != 30 {
		t.Errorf("routes = %d, want 30", len(routes))
	}
}

func TestClientGivesUpEventually(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer dead.Close()
	c := NewClient(dead.URL, ClientOptions{MaxRetries: 2})
	if _, err := c.Status(context.Background()); err == nil {
		t.Error("want error from permanently failing server")
	}
	if c.HTTPRequests() != 3 {
		t.Errorf("http requests = %d, want 3 (1 + 2 retries)", c.HTTPRequests())
	}
	if c.Requests() != 1 {
		t.Errorf("logical calls = %d, want 1", c.Requests())
	}
}

func TestClientContextCancellation(t *testing.T) {
	_, ts := fixture(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := NewClient(ts.URL, ClientOptions{})
	if _, err := c.Status(ctx); err == nil {
		t.Error("want context error")
	}
}

func TestDecodeRouteErrors(t *testing.T) {
	cases := []APIRoute{
		{Prefix: "not-a-prefix", NextHop: "10.0.0.1"},
		{Prefix: "1.0.0.0/24", NextHop: "nope"},
		{Prefix: "1.0.0.0/24", NextHop: "10.0.0.1", Communities: []string{"bad"}},
		{Prefix: "1.0.0.0/24", NextHop: "10.0.0.1", LargeCommunities: []string{"1:2"}},
		{Prefix: "1.0.0.0/24", NextHop: "10.0.0.1", ExtCommunities: []string{"zz"}},
	}
	for i, a := range cases {
		if _, err := DecodeRoute(a); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestEncodeDecodeRouteRoundTrip(t *testing.T) {
	in := bgp.Route{
		Prefix:  netutil.SyntheticV6Prefix(3),
		NextHop: netutil.PeerAddrV6(9),
		ASPath:  bgp.ASPath{64500, 64501},
		Communities: []bgp.Community{
			bgp.NewCommunity(0, 15169), bgp.BlackholeWellKnown,
		},
		ExtCommunities:   []bgp.ExtendedCommunity{bgp.NewTwoOctetASExtended(0x80, 64500, 99)},
		LargeCommunities: []bgp.LargeCommunity{{Global: 64500, Local1: 1, Local2: 2}},
	}
	out, err := DecodeRoute(EncodeRoute(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip:\n in  %+v\n out %+v", in, out)
	}
}

func TestPaginateEdges(t *testing.T) {
	lo, hi, pages := paginate(0, 0, 10)
	if lo != 0 || hi != 0 || pages != 1 {
		t.Errorf("empty: %d %d %d", lo, hi, pages)
	}
	lo, hi, pages = paginate(25, 2, 10)
	if lo != 20 || hi != 25 || pages != 3 {
		t.Errorf("last page: %d %d %d", lo, hi, pages)
	}
	lo, hi, _ = paginate(25, 99, 10)
	if lo != 25 || hi != 25 {
		t.Errorf("past-end page: %d %d", lo, hi)
	}
}

func TestRoutesNotExportedEndpoint(t *testing.T) {
	server, ts := fixture(t, 3) // AS100's routes all carry 0:6939 (non-member): no effect
	scheme := server.Scheme()
	// Add a route avoiding AS200 so the not-exported view is non-empty.
	avoid := bgp.Route{
		Prefix:      netutil.SyntheticV4Prefix(50),
		NextHop:     netutil.PeerAddrV4(1),
		ASPath:      bgp.ASPath{100},
		Communities: []bgp.Community{scheme.DoNotAnnounce(200)},
	}
	if reason, err := server.Announce(100, avoid); err != nil || reason != rs.FilterNone {
		t.Fatal(reason, err)
	}
	c := NewClient(ts.URL, ClientOptions{PageSize: 2})
	withheld, err := c.RoutesNotExported(context.Background(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(withheld) != 1 || withheld[0].Prefix != avoid.Prefix {
		t.Errorf("withheld = %v", withheld)
	}
	received, err := c.RoutesReceived(context.Background(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(received) != 0 {
		t.Errorf("received = %d (AS200 announces nothing; it *gets* exports, not received)", len(received))
	}
}

func TestConfigRawEndpoint(t *testing.T) {
	_, ts := fixture(t, 1)
	c := NewClient(ts.URL, ClientOptions{MinInterval: time.Millisecond})
	text, err := c.ConfigRaw(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"define rs_asn = 6695;", "filter ixp_import", "define comm_0"} {
		if !strings.Contains(text, want) {
			t.Errorf("raw config misses %q", want)
		}
	}
	// Error paths: unreachable and non-200.
	dead := NewClient("http://127.0.0.1:1", ClientOptions{})
	if _, err := dead.ConfigRaw(context.Background()); err == nil {
		t.Error("unreachable LG: want error")
	}
	notFound := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.NotFound(w, nil)
	}))
	defer notFound.Close()
	nf := NewClient(notFound.URL, ClientOptions{})
	if _, err := nf.ConfigRaw(context.Background()); err == nil {
		t.Error("404: want error")
	}
}

func TestClientThrottleSpacing(t *testing.T) {
	_, ts := fixture(t, 1)
	c := NewClient(ts.URL, ClientOptions{MinInterval: 30 * time.Millisecond})
	start := time.Now()
	for i := 0; i < 3; i++ {
		if _, err := c.Status(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	// Three requests need at least two full intervals.
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Errorf("3 throttled requests took %v, want ≥ 60ms", elapsed)
	}
	// Throttle must respect context cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.throttle(ctx); err == nil {
		t.Error("cancelled throttle: want error")
	}
}
