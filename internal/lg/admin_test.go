package lg

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// okHandler answers 200 "ok" to everything.
var okHandler = http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
	io.WriteString(w, "ok")
})

func TestFlakySwitchToggle(t *testing.T) {
	fs := NewFlakySwitch(okHandler, FlakyOptions{})
	ts := httptest.NewServer(fs)
	defer ts.Close()

	get := func() int {
		t.Helper()
		resp, err := http.Get(ts.URL + "/anything")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := get(); code != http.StatusOK {
		t.Fatalf("healthy switch answered %d", code)
	}
	// Arm total failure: every request rolls under ErrorRate 1.0.
	fs.Set(FlakyOptions{ErrorRate: 1.0, Seed: 1})
	if code := get(); code != http.StatusInternalServerError {
		t.Fatalf("armed switch answered %d, want 500", code)
	}
	// Heal it again.
	fs.Set(FlakyOptions{})
	if code := get(); code != http.StatusOK {
		t.Fatalf("healed switch answered %d, want 200", code)
	}
}

func TestFlakySwitchEpochDeterminism(t *testing.T) {
	// Same seed, same request sequence → same injected failures, even
	// after a re-arm. RateLimitEvery is count-driven, so the epoch
	// reset is observable: the 3rd request of each epoch is a 429.
	fs := NewFlakySwitch(okHandler, FlakyOptions{RateLimitEvery: 3, Seed: 7})
	codes := func(n int) []int {
		var out []int
		for i := 0; i < n; i++ {
			rec := httptest.NewRecorder()
			fs.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
			out = append(out, rec.Code)
		}
		return out
	}
	first := codes(4)
	fs.Set(FlakyOptions{RateLimitEvery: 3, Seed: 7})
	second := codes(4)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("epoch replay diverged at request %d: %v vs %v", i, first, second)
		}
	}
	if first[2] != http.StatusTooManyRequests {
		t.Fatalf("3rd request = %d, want 429 (got %v)", first[2], first)
	}
}

func TestAdminHandlerFlipsFlaky(t *testing.T) {
	fs := NewFlakySwitch(okHandler, FlakyOptions{})
	mux := http.NewServeMux()
	mux.Handle("/admin/", AdminHandler(fs))
	mux.Handle("/", fs)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	// Arm an outage over the wire.
	want := FlakyOptions{
		ErrorRate:       0.5,
		Latency:         2 * time.Millisecond,
		NeighborOutage:  []uint32{64500},
		NeighborLatency: map[uint32]time.Duration{64501: time.Millisecond},
		Seed:            42,
	}
	body, _ := json.Marshal(want)
	resp, err := http.Post(ts.URL+"/admin/flaky", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /admin/flaky: %d", resp.StatusCode)
	}
	var applied FlakyOptions
	if err := json.NewDecoder(resp.Body).Decode(&applied); err != nil {
		t.Fatal(err)
	}
	if applied.ErrorRate != want.ErrorRate || applied.Seed != want.Seed ||
		len(applied.NeighborOutage) != 1 || applied.NeighborOutage[0] != 64500 ||
		applied.NeighborLatency[64501] != time.Millisecond {
		t.Fatalf("applied options = %+v, want %+v", applied, want)
	}
	got := fs.Options()
	if got.ErrorRate != want.ErrorRate || got.Latency != want.Latency {
		t.Fatalf("switch options = %+v, want %+v", got, want)
	}

	// GET reads them back.
	resp2, err := http.Get(ts.URL + "/admin/flaky")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var read FlakyOptions
	if err := json.NewDecoder(resp2.Body).Decode(&read); err != nil {
		t.Fatal(err)
	}
	if read.ErrorRate != want.ErrorRate || read.Seed != want.Seed {
		t.Fatalf("GET /admin/flaky = %+v, want %+v", read, want)
	}

	// Bad JSON is rejected and leaves the armed options alone.
	resp3, err := http.Post(ts.URL+"/admin/flaky", "application/json",
		bytes.NewReader([]byte(`{"no_such_knob": true}`)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad options POST: %d, want 400", resp3.StatusCode)
	}
	if fs.Options().ErrorRate != want.ErrorRate {
		t.Fatal("rejected POST changed the armed options")
	}
}

func TestFlakySwitchConcurrentSetAndServe(t *testing.T) {
	// Races between Set and ServeHTTP must be clean (-race pins this):
	// requests run under whichever epoch they observed.
	fs := NewFlakySwitch(okHandler, FlakyOptions{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				fs.Set(FlakyOptions{ErrorRate: float64(j%2) * 0.5, Seed: int64(i*100 + j)})
			}
		}(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				rec := httptest.NewRecorder()
				fs.ServeHTTP(rec, httptest.NewRequest("GET", fmt.Sprintf("/r/%d", j), nil))
				if rec.Code != http.StatusOK && rec.Code != http.StatusInternalServerError {
					t.Errorf("unexpected status %d", rec.Code)
					return
				}
			}
		}()
	}
	wg.Wait()
}
