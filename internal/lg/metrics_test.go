package lg

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ixplight/internal/telemetry"
)

// TestClientMetrics drives an instrumented client against a flaky LG
// and checks every instrument: the logical/wire split, retry causes,
// the in-flight gauge returning to zero, and per-call latency counts.
func TestClientMetrics(t *testing.T) {
	server, _ := fixture(t, 5)
	flaky := httptest.NewServer(Flaky(NewServer(server), FlakyOptions{
		ErrorRate: 0.5,
		Seed:      3,
	}))
	defer flaky.Close()

	reg := telemetry.New()
	m := NewMetrics(reg)
	c := NewClient(flaky.URL, ClientOptions{
		PageSize:     2,
		MaxRetries:   30,
		RetryBackoff: time.Millisecond,
		Metrics:      m,
	})
	ctx := context.Background()
	if _, err := c.Status(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Neighbors(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RoutesReceived(ctx, 100); err != nil {
		t.Fatal(err)
	}

	if got := m.requests.Value(); got != int64(c.Requests()) {
		t.Errorf("requests counter = %d, Requests() = %d", got, c.Requests())
	}
	if c.Requests() != 3 {
		t.Errorf("logical calls = %d, want 3", c.Requests())
	}
	if got := m.httpRequests.Value(); got != int64(c.HTTPRequests()) {
		t.Errorf("http counter = %d, HTTPRequests() = %d", got, c.HTTPRequests())
	}
	if c.HTTPRequests() <= 3 {
		t.Errorf("http requests = %d: flaky server must have forced retries", c.HTTPRequests())
	}
	// Retries: wire minus logical minus extra pages (3 pages of 2 for
	// 5 routes → 2 extra wire requests are pagination, not retries).
	wantRetries := int64(c.HTTPRequests() - c.Requests() - 2)
	if got := m.retries.With("http_5xx").Value(); got != wantRetries {
		t.Errorf("retries{http_5xx} = %d, want %d", got, wantRetries)
	}
	if got := m.retryWait.With("backoff").Count(); got != uint64(wantRetries) {
		t.Errorf("retry wait observations = %d, want %d", got, wantRetries)
	}
	if got := m.inFlight.Value(); got != 0 {
		t.Errorf("in-flight gauge = %d after all calls returned", got)
	}
	for _, call := range []string{"status", "neighbors", "routes_received"} {
		if got := m.callSeconds.With(call).Count(); got != 1 {
			t.Errorf("call latency count for %q = %d, want 1", call, got)
		}
	}
}

// TestClientMetricsRetryAfterCause: a 429 with Retry-After must be
// recorded under the http_429 cause and the retry_after wait kind.
func TestClientMetricsRetryAfterCause(t *testing.T) {
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls++
		if calls == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "rate limited", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"ixp":"TEST","version":"1.0","rs_asn":1}`))
	}))
	defer ts.Close()

	reg := telemetry.New()
	m := NewMetrics(reg)
	c := NewClient(ts.URL, ClientOptions{
		MaxRetries:    2,
		RetryBackoff:  time.Millisecond,
		MaxRetryAfter: 10 * time.Millisecond,
		Metrics:       m,
	})
	if _, err := c.Status(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := m.retries.With("http_429").Value(); got != 1 {
		t.Errorf("retries{http_429} = %d, want 1", got)
	}
	if got := m.retryWait.With("retry_after").Count(); got != 1 {
		t.Errorf("retry wait{retry_after} = %d, want 1", got)
	}
}

// TestSharedMetricsAcrossClients: two clients sharing one instrument
// set aggregate into the same counters — the multi-target wiring.
func TestSharedMetricsAcrossClients(t *testing.T) {
	_, ts := fixture(t, 1)
	reg := telemetry.New()
	m := NewMetrics(reg)
	a := NewClient(ts.URL, ClientOptions{Metrics: m})
	b := NewClient(ts.URL, ClientOptions{Metrics: m})
	ctx := context.Background()
	if _, err := a.Status(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Status(ctx); err != nil {
		t.Fatal(err)
	}
	if got := m.requests.Value(); got != 2 {
		t.Errorf("shared requests counter = %d, want 2", got)
	}
	if a.Requests() != 1 || b.Requests() != 1 {
		t.Errorf("per-client calls = %d/%d, want 1/1", a.Requests(), b.Requests())
	}
}
