package lg

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMaxInFlightSemaphore exercises the in-flight bound directly:
// MaxInFlight slots can be held at once, the next acquire fails fast
// with ErrConcurrentUse, and releasing a slot frees it again.
func TestMaxInFlightSemaphore(t *testing.T) {
	c := NewClient("http://unused", ClientOptions{MaxInFlight: 3})
	if got := c.MaxInFlight(); got != 3 {
		t.Fatalf("MaxInFlight() = %d, want 3", got)
	}
	for i := 0; i < 3; i++ {
		if err := c.acquire(); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	if err := c.acquire(); !errors.Is(err, ErrConcurrentUse) {
		t.Errorf("4th acquire: err = %v, want ErrConcurrentUse", err)
	}
	c.release()
	if err := c.acquire(); err != nil {
		t.Errorf("acquire after release: %v", err)
	}
}

// TestMaxInFlightAllowsConcurrentCalls fires exactly MaxInFlight
// concurrent calls at a healthy LG; with the old single-flight guard
// all but one would fail, with the semaphore all must succeed.
func TestMaxInFlightAllowsConcurrentCalls(t *testing.T) {
	_, ts := fixture(t, 1)
	const n = 8
	c := NewClient(ts.URL, ClientOptions{MaxInFlight: n})
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Status(context.Background())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("call %d: %v", i, err)
		}
	}
	if c.Requests() != n {
		t.Errorf("requests = %d, want %d", c.Requests(), n)
	}
}

// TestSharedPacerSpacesConcurrentRequests checks the MinInterval
// throttle holds across goroutines: n concurrent calls through one
// client must arrive at the server spaced by the interval, so the
// whole burst spans at least (n-1) intervals. Run with -race this is
// also the regression test for the old unsynchronized lastReq.
func TestSharedPacerSpacesConcurrentRequests(t *testing.T) {
	const (
		n        = 6
		interval = 20 * time.Millisecond
	)
	var mu sync.Mutex
	var arrivals []time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		mu.Lock()
		arrivals = append(arrivals, time.Now())
		mu.Unlock()
		w.Write([]byte(`{"ixp":"TEST","version":"1.0","rs_asn":1}`))
	}))
	defer ts.Close()

	c := NewClient(ts.URL, ClientOptions{MaxInFlight: n, MinInterval: interval})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Status(context.Background()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if len(arrivals) != n {
		t.Fatalf("arrivals = %d, want %d", len(arrivals), n)
	}
	first, last := arrivals[0], arrivals[0]
	for _, a := range arrivals[1:] {
		if a.Before(first) {
			first = a
		}
		if a.After(last) {
			last = a
		}
	}
	// The pacer reserves slots interval apart; allow generous slack for
	// scheduler noise but catch the burst a broken pacer would let
	// through (span ~0 instead of ~(n-1)*interval).
	if span := last.Sub(first); span < (n-1)*interval/2 {
		t.Errorf("burst span = %v, want ≥ %v: concurrent requests not paced", span, (n-1)*interval/2)
	}
}

// TestThrottleRace hammers the pacer from many goroutines with a tiny
// interval — no assertions beyond the race detector: this is the
// -race pin for the Client.lastReq data race the pacer replaced.
func TestThrottleRace(t *testing.T) {
	_, ts := fixture(t, 1)
	const n = 16
	c := NewClient(ts.URL, ClientOptions{MaxInFlight: n, MinInterval: 100 * time.Microsecond})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				if _, err := c.Status(context.Background()); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Requests() != n*4 {
		t.Errorf("requests = %d, want %d", c.Requests(), n*4)
	}
}

// TestDefaultStillSingleFlight pins the compatibility contract: a
// zero-options client keeps the old behaviour — one call at a time,
// concurrent entry fails with ErrConcurrentUse.
func TestDefaultStillSingleFlight(t *testing.T) {
	c := NewClient("http://unused", ClientOptions{})
	if got := c.MaxInFlight(); got != 1 {
		t.Fatalf("default MaxInFlight = %d, want 1", got)
	}
	if err := c.acquire(); err != nil {
		t.Fatal(err)
	}
	if err := c.acquire(); !errors.Is(err, ErrConcurrentUse) {
		t.Errorf("second acquire: err = %v, want ErrConcurrentUse", err)
	}
}

// TestRequestBudgetCapsGlobalInFlight shares one 2-slot budget across
// two clients and fires 4 concurrent calls per client against a slow
// server; the server-side high-water mark of concurrent requests must
// never exceed the budget.
func TestRequestBudgetCapsGlobalInFlight(t *testing.T) {
	var inFlight, peak atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		inFlight.Add(-1)
		w.Write([]byte(`{"ixp":"TEST","version":"1.0","rs_asn":1}`))
	}))
	defer ts.Close()

	budget := NewRequestBudget(2)
	a := NewClient(ts.URL, ClientOptions{MaxInFlight: 4, Budget: budget})
	b := NewClient(ts.URL, ClientOptions{MaxInFlight: 4, Budget: budget})
	var wg sync.WaitGroup
	for _, c := range []*Client{a, b} {
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(c *Client) {
				defer wg.Done()
				if _, err := c.Status(context.Background()); err != nil {
					t.Error(err)
				}
			}(c)
		}
	}
	wg.Wait()
	if got := peak.Load(); got > 2 {
		t.Errorf("peak concurrent requests = %d, want ≤ 2 (the global budget)", got)
	}
	if total := a.Requests() + b.Requests(); total != 8 {
		t.Errorf("total requests = %d, want 8", total)
	}
}

// TestRequestBudgetHonoursCancellation: a budget with every slot held
// must not park a cancelled request forever.
func TestRequestBudgetHonoursCancellation(t *testing.T) {
	budget := NewRequestBudget(1)
	if err := budget.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, ts := fixture(t, 1)
	c := NewClient(ts.URL, ClientOptions{Budget: budget})
	if _, err := c.Status(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded while budget is exhausted", err)
	}
	budget.release()
	if _, err := c.Status(context.Background()); err != nil {
		t.Errorf("after release: %v", err)
	}
}
