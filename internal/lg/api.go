// Package lg implements the looking-glass layer the paper's collection
// depends on: an alice-lg-style HTTP JSON API exposing a route
// server's neighbors and per-neighbor accepted/filtered routes, and a
// client with pagination, rate limiting, retry with backoff and
// failure injection hooks for exercising the collector's resilience
// (LG instability and query rate limits, §3).
package lg

import (
	"net/netip"

	"ixplight/internal/bgp"
)

// API payload shapes. They deliberately differ from the storage types
// in internal/collector, as a real LG's JSON differs from a research
// dataset's schema; the collector maps between the two.

// StatusResponse is returned by GET /api/v1/status.
type StatusResponse struct {
	IXP     string `json:"ixp"`
	Version string `json:"version"`
	RSASN   uint16 `json:"rs_asn"`
}

// Neighbor is one member session as the LG reports it.
type Neighbor struct {
	ASN            uint32 `json:"asn"`
	Description    string `json:"description"`
	IPv4           bool   `json:"ipv4"`
	IPv6           bool   `json:"ipv6"`
	RoutesAccepted int    `json:"routes_accepted"`
	RoutesFiltered int    `json:"routes_filtered"`
}

// NeighborsResponse is returned by GET /api/v1/routeservers/rs1/neighbors.
type NeighborsResponse struct {
	Neighbors []Neighbor `json:"neighbors"`
}

// APIRoute is the wire representation of one route.
type APIRoute struct {
	Prefix           string   `json:"network"`
	NextHop          string   `json:"gateway"`
	ASPath           []uint32 `json:"as_path"`
	Communities      []string `json:"communities"`
	ExtCommunities   []string `json:"ext_communities,omitempty"`
	LargeCommunities []string `json:"large_communities,omitempty"`
	FilterReason     string   `json:"filter_reason,omitempty"`
}

// RoutesResponse is one page of GET .../routes/received or /filtered.
type RoutesResponse struct {
	Routes     []APIRoute `json:"routes"`
	Page       int        `json:"page"`
	PageSize   int        `json:"page_size"`
	TotalPages int        `json:"total_pages"`
	TotalCount int        `json:"total_count"`
}

// ConfigResponse is returned by GET /api/v1/routeservers/rs1/config —
// the RS configuration extract the paper's dictionary starts from.
type ConfigResponse struct {
	IXP         string            `json:"ixp"`
	RSASN       uint16            `json:"rs_asn"`
	Communities []CommunityConfig `json:"communities"`
}

// CommunityConfig is one community definition in the RS config dump.
type CommunityConfig struct {
	Community   string `json:"community"`
	Action      string `json:"action"`
	Target      string `json:"target"`
	Description string `json:"description"`
}

// EncodeRoute converts an internal route into its API shape.
func EncodeRoute(r bgp.Route) APIRoute {
	out := APIRoute{
		Prefix:  r.Prefix.String(),
		NextHop: r.NextHop.String(),
		ASPath:  r.ASPath,
	}
	for _, c := range r.Communities {
		out.Communities = append(out.Communities, c.String())
	}
	for _, e := range r.ExtCommunities {
		out.ExtCommunities = append(out.ExtCommunities, e.String())
	}
	for _, l := range r.LargeCommunities {
		out.LargeCommunities = append(out.LargeCommunities, l.String())
	}
	return out
}

// DecodeRoute converts an API route back to the internal form.
func DecodeRoute(a APIRoute) (bgp.Route, error) {
	prefix, err := netip.ParsePrefix(a.Prefix)
	if err != nil {
		return bgp.Route{}, err
	}
	nh, err := netip.ParseAddr(a.NextHop)
	if err != nil {
		return bgp.Route{}, err
	}
	r := bgp.Route{Prefix: prefix, NextHop: nh, ASPath: a.ASPath}
	for _, s := range a.Communities {
		c, err := bgp.ParseCommunity(s)
		if err != nil {
			return bgp.Route{}, err
		}
		r.Communities = append(r.Communities, c)
	}
	for _, s := range a.ExtCommunities {
		e, err := bgp.ParseExtendedCommunity(s)
		if err != nil {
			return bgp.Route{}, err
		}
		r.ExtCommunities = append(r.ExtCommunities, e)
	}
	for _, s := range a.LargeCommunities {
		l, err := bgp.ParseLargeCommunity(s)
		if err != nil {
			return bgp.Route{}, err
		}
		r.LargeCommunities = append(r.LargeCommunities, l)
	}
	return r, nil
}
