package lg

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ixplight/internal/bgp"
	"ixplight/internal/telemetry"
)

// ClientOptions tunes the LG client's politeness and resilience.
type ClientOptions struct {
	// PageSize requested from the routes endpoints (0 = server default).
	PageSize int
	// MinInterval is the minimum delay between consecutive requests —
	// the single-connection politeness the paper's §3 ethics note
	// describes (0 = no throttling).
	MinInterval time.Duration
	// MaxRetries is how many times a failed request is retried.
	MaxRetries int
	// RetryBackoff is the base backoff between retries; it doubles on
	// every attempt, with full jitter, up to MaxBackoff.
	RetryBackoff time.Duration
	// MaxBackoff caps the exponential backoff (default 5s).
	MaxBackoff time.Duration
	// RequestTimeout bounds each individual HTTP request (0 = none) so
	// a hung LG response is cut off and retried instead of stalling
	// the whole crawl.
	RequestTimeout time.Duration
	// MaxRetryAfter caps how long a server's Retry-After header is
	// honoured (default 30s), so a broken LG cannot park the crawl
	// indefinitely.
	MaxRetryAfter time.Duration
	// MaxInFlight bounds how many calls may be in flight on this
	// client at once (default 1: the §3 single-connection politeness).
	// Raising it lets a neighbor-crawl worker pool share one client;
	// the MinInterval pacer still spaces all requests globally, so a
	// parallel crawl is no less polite per-LG, just not idle between
	// responses. Calls beyond the bound fail with ErrConcurrentUse.
	MaxInFlight int
	// Budget, when set, caps in-flight requests across every client
	// sharing it — the global request budget of a multi-target crawl.
	// Unlike the per-client MaxInFlight guard it blocks (politeness
	// backpressure, not a misuse signal).
	Budget *RequestBudget
	// HTTPClient overrides the transport (nil = http.DefaultClient).
	HTTPClient *http.Client
	// Metrics, when set, records the client's runtime behaviour —
	// requests, retries by cause, politeness and budget waits, per-call
	// latency — into a telemetry registry (see NewMetrics). Nil keeps
	// instrumentation off at zero cost.
	Metrics *Metrics
}

// ErrConcurrentUse is returned when a Client is entered by more
// concurrent calls than ClientOptions.MaxInFlight allows (more than
// one, by default), which would break the §3 politeness contract.
// Raise MaxInFlight — or create one Client per goroutine — instead.
var ErrConcurrentUse = errors.New("lg: concurrent use of Client beyond MaxInFlight")

// RequestBudget is a counting semaphore shared by several clients to
// cap the total number of HTTP requests in flight at once — the one
// global budget a multi-IXP collection run composes its target-level
// and neighbor-level parallelism under.
type RequestBudget struct {
	slots chan struct{}
}

// NewRequestBudget builds a budget of n concurrent requests (n < 1 is
// clamped to 1).
func NewRequestBudget(n int) *RequestBudget {
	if n < 1 {
		n = 1
	}
	return &RequestBudget{slots: make(chan struct{}, n)}
}

func (b *RequestBudget) acquire(ctx context.Context) error {
	select {
	case b.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (b *RequestBudget) release() { <-b.slots }

// Client crawls one looking glass. It is safe for concurrent use up
// to ClientOptions.MaxInFlight simultaneous calls (1 by default — the
// collection keeps a single connection per LG unless told otherwise).
// The contract is enforced: a call that would exceed the bound fails
// with ErrConcurrentUse rather than silently queueing.
type Client struct {
	base string
	opts ClientOptions
	http *http.Client
	m    *Metrics
	// calls counts admitted logical API calls; requests counts wire
	// requests (every HTTP round trip, including retries and pages).
	calls    atomic.Int64
	requests atomic.Int64
	// sem holds one token per in-flight call (capacity MaxInFlight).
	sem chan struct{}
	// paceMu guards nextSend, the shared MinInterval pacer: concurrent
	// requests reserve evenly-spaced send slots so the per-LG rate
	// limit holds for any MaxInFlight.
	paceMu   sync.Mutex
	nextSend time.Time
}

// NewClient builds a client for the LG at base (e.g. the httptest
// server URL or "https://lg.de-cix.net").
func NewClient(base string, opts ClientOptions) *Client {
	hc := opts.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 10 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 5 * time.Second
	}
	if opts.MaxRetryAfter <= 0 {
		opts.MaxRetryAfter = 30 * time.Second
	}
	if opts.MaxInFlight < 1 {
		opts.MaxInFlight = 1
	}
	return &Client{base: base, opts: opts, http: hc, m: opts.Metrics, sem: make(chan struct{}, opts.MaxInFlight)}
}

// Requests reports the number of logical API calls made (Status,
// Neighbors, one routes listing, …) — pagination and retries are one
// call no matter how many wire requests they take. For the historical
// "total requests issued, including retries" count, use HTTPRequests.
func (c *Client) Requests() int { return int(c.calls.Load()) }

// HTTPRequests reports the total wire requests issued, including
// retries and pagination — what Requests counted before the split.
func (c *Client) HTTPRequests() int { return int(c.requests.Load()) }

// MaxInFlight reports the client's in-flight call bound, so callers
// (the collector's neighbor pool) can size their worker count to it.
func (c *Client) MaxInFlight() int { return c.opts.MaxInFlight }

// acquire takes one in-flight slot; release returns it. The pair
// bounds concurrency without serialising misuse silently: a call that
// finds every slot taken fails fast instead of queueing.
func (c *Client) acquire() error {
	select {
	case c.sem <- struct{}{}:
		c.calls.Add(1)
		c.m.callStarted()
		return nil
	default:
		return ErrConcurrentUse
	}
}

func (c *Client) release() {
	c.m.callFinished()
	<-c.sem
}

// countWire records one HTTP round trip on both the atomic counter
// and, when instrumented, the telemetry registry.
func (c *Client) countWire() {
	c.requests.Add(1)
	c.m.httpRequest()
}

// get fetches one endpoint into out, honouring the rate limit and
// retrying transient failures (5xx, 429, transport errors, truncated
// bodies) with full-jitter exponential backoff. A 429 carrying a
// Retry-After header is honoured, capped at MaxRetryAfter. Each get is
// one "lg.request" trace span — nested under whatever span the
// context carries — recording the attempt count, every retry's cause
// and wait as events, and the total time spent waiting to retry.
func (c *Client) get(ctx context.Context, path string, out any) (err error) {
	ctx, sp := c.m.startSpan(ctx, "lg.request")
	if sp != nil {
		sp.SetAttr("path", path)
		attempts, totalWait := 0, time.Duration(0)
		defer func() {
			sp.SetAttrInt("attempts", int64(attempts))
			if totalWait > 0 {
				sp.SetAttrDuration("retry_wait", totalWait)
			}
			if err != nil {
				sp.SetAttr("error", err.Error())
			}
			sp.End()
		}()
		err = c.getRetries(ctx, path, out, sp, &attempts, &totalWait)
		return err
	}
	return c.getRetries(ctx, path, out, nil, nil, nil)
}

// getRetries is the retry loop behind get; sp, attempts and totalWait
// are nil when tracing is off.
func (c *Client) getRetries(ctx context.Context, path string, out any, sp *telemetry.Span, attempts *int, totalWait *time.Duration) error {
	var lastErr error
	backoff := c.opts.RetryBackoff
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		if attempts != nil {
			*attempts = attempt + 1
		}
		if attempt > 0 {
			wait := c.retryDelay(lastErr, &backoff)
			cause, kind := "other", "backoff"
			var re *retryableError
			if errors.As(lastErr, &re) {
				cause = re.cause
				if re.retryAfter > 0 {
					kind = "retry_after"
				}
			}
			c.m.retry(cause, kind, wait)
			if sp != nil {
				*totalWait += wait
				sp.Event("retry",
					telemetry.String("cause", cause),
					telemetry.String("kind", kind),
					telemetry.Int("attempt", int64(attempt)),
					telemetry.Duration("wait", wait))
			}
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if err := c.throttle(ctx); err != nil {
			return err
		}
		lastErr = c.once(ctx, path, out)
		if lastErr == nil {
			return nil
		}
		if ctx.Err() != nil {
			// The crawl itself was cancelled; no point retrying.
			return lastErr
		}
		var re *retryableError
		if !errors.As(lastErr, &re) {
			return lastErr
		}
	}
	return fmt.Errorf("lg: %s failed after %d attempts: %w", path, c.opts.MaxRetries+1, lastErr)
}

// retryDelay picks the wait before the next attempt: the server's
// Retry-After if it sent one (capped), otherwise full jitter on the
// doubling backoff.
func (c *Client) retryDelay(lastErr error, backoff *time.Duration) time.Duration {
	var re *retryableError
	if errors.As(lastErr, &re) && re.retryAfter > 0 {
		if re.retryAfter > c.opts.MaxRetryAfter {
			return c.opts.MaxRetryAfter
		}
		return re.retryAfter
	}
	d := time.Duration(rand.Int63n(int64(*backoff) + 1))
	*backoff *= 2
	if *backoff > c.opts.MaxBackoff {
		*backoff = c.opts.MaxBackoff
	}
	return d
}

// parseRetryAfter reads a Retry-After header value: delay-seconds or
// an HTTP date. Unparseable or past values yield 0.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if when, err := http.ParseTime(v); err == nil {
		if d := time.Until(when); d > 0 {
			return d
		}
	}
	return 0
}

// throttle enforces MinInterval between requests. It is a shared
// pacer: under paceMu each caller reserves the next free send slot
// (previous slot + MinInterval), then sleeps until its slot outside
// the lock — so concurrent requests stay evenly spaced instead of
// bursting, and the old unsynchronized lastReq read is gone.
func (c *Client) throttle(ctx context.Context) error {
	if c.opts.MinInterval <= 0 {
		return nil
	}
	c.paceMu.Lock()
	now := time.Now()
	slot := c.nextSend
	if slot.Before(now) {
		slot = now
	}
	c.nextSend = slot.Add(c.opts.MinInterval)
	c.paceMu.Unlock()
	if wait := time.Until(slot); wait > 0 {
		c.m.pacer(wait)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// retryableError marks failures worth retrying; retryAfter carries
// the server's requested delay when it sent one, and cause classifies
// the failure for the retry metrics.
type retryableError struct {
	err        error
	retryAfter time.Duration
	cause      string
}

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

func (c *Client) once(ctx context.Context, path string, out any) error {
	if t := c.opts.RequestTimeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	if b := c.opts.Budget; b != nil {
		t0 := c.m.now()
		if err := b.acquire(ctx); err != nil {
			return err
		}
		c.m.budgetWaited(t0)
		defer b.release()
	}
	c.countWire()
	resp, err := c.http.Do(req)
	if err != nil {
		return &retryableError{err: err, cause: "transport"}
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			// A connection dying mid-body is as transient as a 500.
			return &retryableError{err: fmt.Errorf("lg: %s: reading body: %w", path, err), cause: "read_body"}
		}
		if err := json.Unmarshal(body, out); err != nil {
			return &retryableError{err: fmt.Errorf("lg: %s: invalid JSON (truncated response?): %w", path, err), cause: "bad_json"}
		}
		return nil
	case resp.StatusCode == http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		return &retryableError{
			err:        fmt.Errorf("lg: %s: status 429", path),
			retryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
			cause:      "http_429",
		}
	case resp.StatusCode >= 500:
		io.Copy(io.Discard, resp.Body)
		return &retryableError{err: fmt.Errorf("lg: %s: status %d", path, resp.StatusCode), cause: "http_5xx"}
	default:
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("lg: %s: status %d", path, resp.StatusCode)
	}
}

// Status fetches the LG identity.
func (c *Client) Status(ctx context.Context) (*StatusResponse, error) {
	if err := c.acquire(); err != nil {
		return nil, err
	}
	defer c.release()
	defer c.m.callTimer("status")()
	var out StatusResponse
	if err := c.get(ctx, "/api/v1/status", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Neighbors fetches the member summary list (§3's "summary file with
// the list of peers and the number of routes announced by each").
func (c *Client) Neighbors(ctx context.Context) ([]Neighbor, error) {
	if err := c.acquire(); err != nil {
		return nil, err
	}
	defer c.release()
	defer c.m.callTimer("neighbors")()
	var out NeighborsResponse
	if err := c.get(ctx, "/api/v1/routeservers/rs1/neighbors", &out); err != nil {
		return nil, err
	}
	return out.Neighbors, nil
}

// Config fetches the RS configuration community list.
func (c *Client) Config(ctx context.Context) (*ConfigResponse, error) {
	if err := c.acquire(); err != nil {
		return nil, err
	}
	defer c.release()
	defer c.m.callTimer("config")()
	var out ConfigResponse
	if err := c.get(ctx, "/api/v1/routeservers/rs1/config", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ConfigRaw fetches the BIRD-style route-server configuration text.
func (c *Client) ConfigRaw(ctx context.Context) (text string, err error) {
	if err := c.acquire(); err != nil {
		return "", err
	}
	defer c.release()
	defer c.m.callTimer("config_raw")()
	ctx, sp := c.m.startSpan(ctx, "lg.request")
	if sp != nil {
		sp.SetAttr("path", "/api/v1/routeservers/rs1/config/raw")
		defer func() {
			if err != nil {
				sp.SetAttr("error", err.Error())
			}
			sp.End()
		}()
	}
	if err := c.throttle(ctx); err != nil {
		return "", err
	}
	if t := c.opts.RequestTimeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/api/v1/routeservers/rs1/config/raw", nil)
	if err != nil {
		return "", err
	}
	if b := c.opts.Budget; b != nil {
		t0 := c.m.now()
		if err := b.acquire(ctx); err != nil {
			return "", err
		}
		c.m.budgetWaited(t0)
		defer b.release()
	}
	c.countWire()
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return "", fmt.Errorf("lg: config/raw: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// routesPaged walks every page of one routes endpoint. The walk is
// bounded: the page count implied by the first page's TotalCount caps
// the loop, and a TotalCount that changes mid-crawl (the RIB shifted
// under us) is an error — a partial, silently-wrong listing is worse
// than a recorded failure.
func (c *Client) routesPaged(ctx context.Context, endpoint string) ([]bgp.Route, error) {
	var routes []bgp.Route
	total, maxPages := 0, 0
	for page := 0; ; page++ {
		path := fmt.Sprintf("%s?page=%d", endpoint, page)
		if c.opts.PageSize > 0 {
			path += fmt.Sprintf("&page_size=%d", c.opts.PageSize)
		}
		var resp RoutesResponse
		if err := c.get(ctx, path, &resp); err != nil {
			return nil, err
		}
		if page == 0 {
			total = resp.TotalCount
			size := resp.PageSize
			if size <= 0 {
				size = len(resp.Routes)
			}
			if size <= 0 {
				size = 1
			}
			maxPages = (total + size - 1) / size
			if maxPages < 1 {
				maxPages = 1
			}
		} else if resp.TotalCount != total {
			return nil, fmt.Errorf("lg: %s: total count changed mid-crawl (%d -> %d)", endpoint, total, resp.TotalCount)
		}
		for _, ar := range resp.Routes {
			r, err := DecodeRoute(ar)
			if err != nil {
				return nil, fmt.Errorf("lg: bad route %q: %w", ar.Prefix, err)
			}
			routes = append(routes, r)
		}
		if len(routes) > total {
			return nil, fmt.Errorf("lg: %s: server returned %d routes for a declared total of %d", endpoint, len(routes), total)
		}
		if page >= resp.TotalPages-1 {
			return routes, nil
		}
		if page+1 >= maxPages {
			return nil, fmt.Errorf("lg: %s: pagination ran past the %d pages implied by %d routes", endpoint, maxPages, total)
		}
	}
}

// RoutesReceived fetches every accepted route of one neighbor.
func (c *Client) RoutesReceived(ctx context.Context, asn uint32) ([]bgp.Route, error) {
	if err := c.acquire(); err != nil {
		return nil, err
	}
	defer c.release()
	defer c.m.callTimer("routes_received")()
	return c.routesPaged(ctx, fmt.Sprintf("/api/v1/routeservers/rs1/neighbors/%d/routes/received", asn))
}

// RoutesNotExported fetches the routes withheld from one neighbor by
// action communities.
func (c *Client) RoutesNotExported(ctx context.Context, asn uint32) ([]bgp.Route, error) {
	if err := c.acquire(); err != nil {
		return nil, err
	}
	defer c.release()
	defer c.m.callTimer("routes_not_exported")()
	return c.routesPaged(ctx, fmt.Sprintf("/api/v1/routeservers/rs1/neighbors/%d/routes/not-exported", asn))
}

// FilteredCount fetches how many routes of one neighbor were filtered
// (the collection records the count, not the routes).
func (c *Client) FilteredCount(ctx context.Context, asn uint32) (int, error) {
	if err := c.acquire(); err != nil {
		return 0, err
	}
	defer c.release()
	defer c.m.callTimer("filtered_count")()
	var resp RoutesResponse
	path := fmt.Sprintf("/api/v1/routeservers/rs1/neighbors/%d/routes/filtered?page=0&page_size=1", asn)
	if err := c.get(ctx, path, &resp); err != nil {
		return 0, err
	}
	return resp.TotalCount, nil
}
