package lg

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"ixplight/internal/bgp"
)

// ClientOptions tunes the LG client's politeness and resilience.
type ClientOptions struct {
	// PageSize requested from the routes endpoints (0 = server default).
	PageSize int
	// MinInterval is the minimum delay between consecutive requests —
	// the single-connection politeness the paper's §3 ethics note
	// describes (0 = no throttling).
	MinInterval time.Duration
	// MaxRetries is how many times a failed request is retried.
	MaxRetries int
	// RetryBackoff is the base backoff between retries; it doubles on
	// every attempt.
	RetryBackoff time.Duration
	// HTTPClient overrides the transport (nil = http.DefaultClient).
	HTTPClient *http.Client
}

// Client crawls one looking glass. It is not safe for concurrent use —
// deliberately: the collection keeps a single connection to the LG.
type Client struct {
	base     string
	opts     ClientOptions
	http     *http.Client
	lastReq  time.Time
	Requests int // total requests issued, including retries
}

// NewClient builds a client for the LG at base (e.g. the httptest
// server URL or "https://lg.de-cix.net").
func NewClient(base string, opts ClientOptions) *Client {
	hc := opts.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 10 * time.Millisecond
	}
	return &Client{base: base, opts: opts, http: hc}
}

// get fetches one endpoint into out, honouring the rate limit and
// retrying transient failures (5xx, 429, transport errors) with
// exponential backoff.
func (c *Client) get(ctx context.Context, path string, out any) error {
	var lastErr error
	backoff := c.opts.RetryBackoff
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return ctx.Err()
			}
			backoff *= 2
		}
		if err := c.throttle(ctx); err != nil {
			return err
		}
		lastErr = c.once(ctx, path, out)
		if lastErr == nil {
			return nil
		}
		var re *retryableError
		if !errors.As(lastErr, &re) {
			return lastErr
		}
	}
	return fmt.Errorf("lg: %s failed after %d attempts: %w", path, c.opts.MaxRetries+1, lastErr)
}

// throttle enforces MinInterval between requests.
func (c *Client) throttle(ctx context.Context) error {
	if c.opts.MinInterval <= 0 {
		return nil
	}
	wait := c.opts.MinInterval - time.Since(c.lastReq)
	if wait > 0 {
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	c.lastReq = time.Now()
	return nil
}

// retryableError marks failures worth retrying.
type retryableError struct{ err error }

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

func (c *Client) once(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	c.Requests++
	resp, err := c.http.Do(req)
	if err != nil {
		return &retryableError{err}
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		return json.NewDecoder(resp.Body).Decode(out)
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
		io.Copy(io.Discard, resp.Body)
		return &retryableError{fmt.Errorf("lg: %s: status %d", path, resp.StatusCode)}
	default:
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("lg: %s: status %d", path, resp.StatusCode)
	}
}

// Status fetches the LG identity.
func (c *Client) Status(ctx context.Context) (*StatusResponse, error) {
	var out StatusResponse
	if err := c.get(ctx, "/api/v1/status", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Neighbors fetches the member summary list (§3's "summary file with
// the list of peers and the number of routes announced by each").
func (c *Client) Neighbors(ctx context.Context) ([]Neighbor, error) {
	var out NeighborsResponse
	if err := c.get(ctx, "/api/v1/routeservers/rs1/neighbors", &out); err != nil {
		return nil, err
	}
	return out.Neighbors, nil
}

// Config fetches the RS configuration community list.
func (c *Client) Config(ctx context.Context) (*ConfigResponse, error) {
	var out ConfigResponse
	if err := c.get(ctx, "/api/v1/routeservers/rs1/config", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ConfigRaw fetches the BIRD-style route-server configuration text.
func (c *Client) ConfigRaw(ctx context.Context) (string, error) {
	if err := c.throttle(ctx); err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/api/v1/routeservers/rs1/config/raw", nil)
	if err != nil {
		return "", err
	}
	c.Requests++
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return "", fmt.Errorf("lg: config/raw: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// routesPaged walks every page of one routes endpoint.
func (c *Client) routesPaged(ctx context.Context, endpoint string) ([]bgp.Route, error) {
	var routes []bgp.Route
	for page := 0; ; page++ {
		path := fmt.Sprintf("%s?page=%d", endpoint, page)
		if c.opts.PageSize > 0 {
			path += fmt.Sprintf("&page_size=%d", c.opts.PageSize)
		}
		var resp RoutesResponse
		if err := c.get(ctx, path, &resp); err != nil {
			return nil, err
		}
		for _, ar := range resp.Routes {
			r, err := DecodeRoute(ar)
			if err != nil {
				return nil, fmt.Errorf("lg: bad route %q: %w", ar.Prefix, err)
			}
			routes = append(routes, r)
		}
		if page >= resp.TotalPages-1 {
			return routes, nil
		}
	}
}

// RoutesReceived fetches every accepted route of one neighbor.
func (c *Client) RoutesReceived(ctx context.Context, asn uint32) ([]bgp.Route, error) {
	return c.routesPaged(ctx, fmt.Sprintf("/api/v1/routeservers/rs1/neighbors/%d/routes/received", asn))
}

// RoutesNotExported fetches the routes withheld from one neighbor by
// action communities.
func (c *Client) RoutesNotExported(ctx context.Context, asn uint32) ([]bgp.Route, error) {
	return c.routesPaged(ctx, fmt.Sprintf("/api/v1/routeservers/rs1/neighbors/%d/routes/not-exported", asn))
}

// FilteredCount fetches how many routes of one neighbor were filtered
// (the collection records the count, not the routes).
func (c *Client) FilteredCount(ctx context.Context, asn uint32) (int, error) {
	var resp RoutesResponse
	path := fmt.Sprintf("/api/v1/routeservers/rs1/neighbors/%d/routes/filtered?page=0&page_size=1", asn)
	if err := c.get(ctx, path, &resp); err != nil {
		return 0, err
	}
	return resp.TotalCount, nil
}
