package lg

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"ixplight/internal/dictionary"
	"ixplight/internal/rs"
	"ixplight/internal/rsconfig"
)

// DefaultPageSize caps a routes page when the client does not specify
// one; real LGs paginate to keep responses bounded.
const DefaultPageSize = 500

// MaxPageSize bounds client-requested page sizes.
const MaxPageSize = 5000

// Server exposes a route server through the HTTP JSON API. Create one
// with NewServer and mount it (it implements http.Handler).
type Server struct {
	rs  *rs.Server
	mux *http.ServeMux
}

// NewServer wraps a route server with the LG API.
func NewServer(routeServer *rs.Server) *Server {
	s := &Server{rs: routeServer, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /api/v1/status", s.handleStatus)
	s.mux.HandleFunc("GET /api/v1/routeservers/rs1/neighbors", s.handleNeighbors)
	s.mux.HandleFunc("GET /api/v1/routeservers/rs1/neighbors/{asn}/routes/received", s.handleRoutesReceived)
	s.mux.HandleFunc("GET /api/v1/routeservers/rs1/neighbors/{asn}/routes/filtered", s.handleRoutesFiltered)
	s.mux.HandleFunc("GET /api/v1/routeservers/rs1/neighbors/{asn}/routes/not-exported", s.handleRoutesNotExported)
	s.mux.HandleFunc("GET /api/v1/routeservers/rs1/config", s.handleConfig)
	s.mux.HandleFunc("GET /api/v1/routeservers/rs1/config/raw", s.handleConfigRaw)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for a status change; the client sees a truncated body.
		return
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	scheme := s.rs.Scheme()
	writeJSON(w, StatusResponse{IXP: scheme.IXP, Version: "1.0", RSASN: scheme.RSASN})
}

func (s *Server) handleNeighbors(w http.ResponseWriter, _ *http.Request) {
	peers := s.rs.Peers()
	resp := NeighborsResponse{Neighbors: make([]Neighbor, 0, len(peers))}
	for _, p := range peers {
		resp.Neighbors = append(resp.Neighbors, Neighbor{
			ASN:            p.ASN,
			Description:    p.Name,
			IPv4:           p.IPv4,
			IPv6:           p.IPv6,
			RoutesAccepted: len(s.rs.AcceptedRoutes(p.ASN)),
			RoutesFiltered: len(s.rs.FilteredRoutes(p.ASN)),
		})
	}
	writeJSON(w, resp)
}

func (s *Server) neighborASN(w http.ResponseWriter, r *http.Request) (uint32, bool) {
	asn, err := strconv.ParseUint(r.PathValue("asn"), 10, 32)
	if err != nil {
		http.Error(w, "bad neighbor asn", http.StatusBadRequest)
		return 0, false
	}
	if !s.rs.HasPeer(uint32(asn)) {
		http.Error(w, "no such neighbor", http.StatusNotFound)
		return 0, false
	}
	return uint32(asn), true
}

func pageParams(r *http.Request) (page, size int) {
	page, _ = strconv.Atoi(r.URL.Query().Get("page"))
	if page < 0 {
		page = 0
	}
	size, _ = strconv.Atoi(r.URL.Query().Get("page_size"))
	if size <= 0 {
		size = DefaultPageSize
	}
	if size > MaxPageSize {
		size = MaxPageSize
	}
	return page, size
}

// paginate slices one page out of n items and reports the page counts.
func paginate(n, page, size int) (lo, hi, totalPages int) {
	totalPages = (n + size - 1) / size
	if totalPages == 0 {
		totalPages = 1
	}
	lo = page * size
	if lo > n {
		lo = n
	}
	hi = lo + size
	if hi > n {
		hi = n
	}
	return lo, hi, totalPages
}

func (s *Server) handleRoutesReceived(w http.ResponseWriter, r *http.Request) {
	asn, ok := s.neighborASN(w, r)
	if !ok {
		return
	}
	routes := s.rs.AcceptedRoutes(asn)
	page, size := pageParams(r)
	lo, hi, totalPages := paginate(len(routes), page, size)
	resp := RoutesResponse{
		Page: page, PageSize: size,
		TotalPages: totalPages, TotalCount: len(routes),
	}
	for _, rt := range routes[lo:hi] {
		resp.Routes = append(resp.Routes, EncodeRoute(rt))
	}
	writeJSON(w, resp)
}

func (s *Server) handleRoutesFiltered(w http.ResponseWriter, r *http.Request) {
	asn, ok := s.neighborASN(w, r)
	if !ok {
		return
	}
	filtered := s.rs.FilteredRoutes(asn)
	page, size := pageParams(r)
	lo, hi, totalPages := paginate(len(filtered), page, size)
	resp := RoutesResponse{
		Page: page, PageSize: size,
		TotalPages: totalPages, TotalCount: len(filtered),
	}
	for _, f := range filtered[lo:hi] {
		ar := EncodeRoute(f.Route)
		ar.FilterReason = f.Reason.String()
		resp.Routes = append(resp.Routes, ar)
	}
	writeJSON(w, resp)
}

// handleRoutesNotExported serves the routes action communities keep
// away from this neighbor — the alice-lg "not exported" view.
func (s *Server) handleRoutesNotExported(w http.ResponseWriter, r *http.Request) {
	asn, ok := s.neighborASN(w, r)
	if !ok {
		return
	}
	routes := s.rs.NotExportedTo(asn)
	page, size := pageParams(r)
	lo, hi, totalPages := paginate(len(routes), page, size)
	resp := RoutesResponse{
		Page: page, PageSize: size,
		TotalPages: totalPages, TotalCount: len(routes),
	}
	for _, rt := range routes[lo:hi] {
		resp.Routes = append(resp.Routes, EncodeRoute(rt))
	}
	writeJSON(w, resp)
}

func (s *Server) handleConfig(w http.ResponseWriter, _ *http.Request) {
	scheme := s.rs.Scheme()
	resp := ConfigResponse{IXP: scheme.IXP, RSASN: scheme.RSASN}
	for _, e := range scheme.RSConfigEntries() {
		resp.Communities = append(resp.Communities, CommunityConfig{
			Community:   e.Community.String(),
			Action:      e.Action.String(),
			Target:      targetLabel(e),
			Description: e.Description,
		})
	}
	writeJSON(w, resp)
}

// handleConfigRaw serves the BIRD-style configuration text — the §3
// artifact the dictionary extraction parses.
func (s *Server) handleConfigRaw(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, rsconfig.Render(s.rs.Scheme(), rsconfig.Options{}))
}

func targetLabel(e dictionary.Entry) string {
	switch e.Target {
	case dictionary.TargetAll:
		return "all"
	case dictionary.TargetPeer:
		return fmt.Sprintf("AS%d", e.TargetASN)
	default:
		return ""
	}
}
