package lg

import (
	"encoding/json"
	"net/http"
)

// AdminHandler exposes runtime control over a FlakySwitch, so chaos
// tooling (cmd/soak, or an operator with curl) can flip a live
// server's failure modes over the same kind of socket the crawler
// uses:
//
//	GET  /admin/flaky  — the currently armed FlakyOptions as JSON
//	POST /admin/flaky  — replace the options with the JSON body
//	                     (an empty object {} heals the server)
//
// A successful POST answers 200 with the applied options, so the
// caller can confirm exactly what is armed. The endpoint is
// deliberately not mounted by default — cmd/lg-server requires -admin
// — because it turns a public-looking LG into a remotely breakable
// one.
func AdminHandler(s *FlakySwitch) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/admin/flaky", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, s.Options())
		case http.MethodPost, http.MethodPut:
			var opts FlakyOptions
			dec := json.NewDecoder(r.Body)
			dec.DisallowUnknownFields()
			if err := dec.Decode(&opts); err != nil {
				http.Error(w, "bad flaky options: "+err.Error(), http.StatusBadRequest)
				return
			}
			s.Set(opts)
			writeJSON(w, s.Options())
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	return mux
}
