package lg

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFlaky429CarriesRetryAfter checks the rate-limit injection
// advertises Retry-After the way real alice-lg deployments do.
func TestFlaky429CarriesRetryAfter(t *testing.T) {
	server, _ := fixture(t, 1)
	limited := httptest.NewServer(Flaky(NewServer(server), FlakyOptions{
		RateLimitEvery: 1, // every request
		RetryAfter:     3 * time.Second,
	}))
	defer limited.Close()
	resp, err := http.Get(limited.URL + "/api/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", got)
	}
}

// TestClientHonorsRetryAfter verifies a 429's Retry-After dominates
// the (tiny) backoff, capped at MaxRetryAfter.
func TestClientHonorsRetryAfter(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			w.Header().Set("Retry-After", "1") // one full second
			http.Error(w, "rate limited", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"ixp":"TEST","version":"1.0","rs_asn":1}`))
	}))
	defer ts.Close()

	c := NewClient(ts.URL, ClientOptions{
		MaxRetries:    2,
		RetryBackoff:  time.Millisecond, // jittered backoff would be ~1-2ms
		MaxRetryAfter: 80 * time.Millisecond,
	})
	start := time.Now()
	st, err := c.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.IXP != "TEST" {
		t.Errorf("ixp = %q", st.IXP)
	}
	elapsed := time.Since(start)
	if elapsed < 60*time.Millisecond {
		t.Errorf("elapsed = %v: Retry-After not honoured (backoff alone is ~1ms)", elapsed)
	}
	if elapsed > 600*time.Millisecond {
		t.Errorf("elapsed = %v: MaxRetryAfter cap not applied (server asked for 1s)", elapsed)
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("3"); d != 3*time.Second {
		t.Errorf("seconds: %v", d)
	}
	if d := parseRetryAfter(""); d != 0 {
		t.Errorf("empty: %v", d)
	}
	if d := parseRetryAfter("-5"); d != 0 {
		t.Errorf("negative: %v", d)
	}
	if d := parseRetryAfter("garbage"); d != 0 {
		t.Errorf("garbage: %v", d)
	}
	future := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(future); d <= 0 || d > 10*time.Second {
		t.Errorf("http-date: %v", d)
	}
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(past); d != 0 {
		t.Errorf("past http-date: %v", d)
	}
}

// TestRequestTimeoutRecoversHungResponse: every second request hangs
// until the client hangs up; the per-request timeout must cut it off
// and the retry must succeed.
func TestRequestTimeoutRecoversHungResponse(t *testing.T) {
	server, _ := fixture(t, 3)
	hung := httptest.NewServer(Flaky(NewServer(server), FlakyOptions{HangEvery: 2}))
	defer hung.Close()

	c := NewClient(hung.URL, ClientOptions{
		MaxRetries:     3,
		RetryBackoff:   time.Millisecond,
		RequestTimeout: 50 * time.Millisecond,
	})
	start := time.Now()
	for i := 0; i < 3; i++ { // requests 2 and 4 hang
		if _, err := c.Status(context.Background()); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("took %v: hung responses not cut off", elapsed)
	}
}

// TestTruncatedBodyIsRetried: a body cut off mid-JSON must be treated
// as transient, not fatal.
func TestTruncatedBodyIsRetried(t *testing.T) {
	server, _ := fixture(t, 5)
	cut := httptest.NewServer(Flaky(NewServer(server), FlakyOptions{TruncateEvery: 2}))
	defer cut.Close()

	c := NewClient(cut.URL, ClientOptions{MaxRetries: 4, RetryBackoff: time.Millisecond})
	for i := 0; i < 4; i++ {
		ns, err := c.Neighbors(context.Background())
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if len(ns) != 2 {
			t.Fatalf("call %d: neighbors = %d", i, len(ns))
		}
	}
	if c.HTTPRequests() <= 4 {
		t.Errorf("http requests = %d: truncated responses were apparently never retried", c.HTTPRequests())
	}
}

// TestPaginationShrinkageDetected: a RIB that shrinks between pages
// must surface as an explicit inconsistency error, not as a silently
// short route listing.
func TestPaginationShrinkageDetected(t *testing.T) {
	server, _ := fixture(t, 20)
	churn := httptest.NewServer(Flaky(NewServer(server), FlakyOptions{ShrinkAfter: 1}))
	defer churn.Close()

	c := NewClient(churn.URL, ClientOptions{PageSize: 5})
	_, err := c.RoutesReceived(context.Background(), 100)
	if err == nil {
		t.Fatal("want inconsistency error")
	}
	if !strings.Contains(err.Error(), "changed mid-crawl") {
		t.Errorf("error = %v, want mid-crawl inconsistency", err)
	}
}

// TestRoutesPagedCapsRunawayPagination: a server whose TotalPages
// keeps growing must not drag the client into an unbounded crawl.
func TestRoutesPagedCapsRunawayPagination(t *testing.T) {
	requests := 0
	mal := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests++
		page := requests - 1
		writeJSON(w, RoutesResponse{
			Routes: []APIRoute{{
				Prefix:  fmt.Sprintf("10.0.%d.0/24", page%250),
				NextHop: "10.0.0.1",
				ASPath:  []uint32{100},
			}},
			Page: page, PageSize: 1,
			TotalPages: page + 2, // always one more page
			TotalCount: 3,
		})
	}))
	defer mal.Close()

	c := NewClient(mal.URL, ClientOptions{})
	_, err := c.RoutesReceived(context.Background(), 100)
	if err == nil {
		t.Fatal("want pagination-cap error")
	}
	if !strings.Contains(err.Error(), "pagination ran past") {
		t.Errorf("error = %v", err)
	}
	// 3 declared routes at page size 1 = at most 3 pages fetched.
	if requests > 3 {
		t.Errorf("requests = %d, want ≤ 3", requests)
	}
}

// TestNeighborOutageIsPermanent: the injected per-neighbor outage
// must exhaust retries while other neighbors stay crawlable.
func TestNeighborOutageIsPermanent(t *testing.T) {
	server, _ := fixture(t, 4)
	out := httptest.NewServer(Flaky(NewServer(server), FlakyOptions{NeighborOutage: []uint32{100}}))
	defer out.Close()

	c := NewClient(out.URL, ClientOptions{MaxRetries: 2, RetryBackoff: time.Millisecond})
	if _, err := c.RoutesReceived(context.Background(), 100); err == nil {
		t.Error("outage neighbor: want error")
	}
	if c.HTTPRequests() != 3 {
		t.Errorf("http requests = %d, want 3 (permanent 500 exhausts retries)", c.HTTPRequests())
	}
	if _, err := c.Neighbors(context.Background()); err != nil {
		t.Errorf("other endpoints must stay up: %v", err)
	}
}

// TestFlakyLatencyInjected: every response is delayed.
func TestFlakyLatencyInjected(t *testing.T) {
	server, _ := fixture(t, 1)
	slow := httptest.NewServer(Flaky(NewServer(server), FlakyOptions{Latency: 30 * time.Millisecond}))
	defer slow.Close()

	c := NewClient(slow.URL, ClientOptions{})
	start := time.Now()
	if _, err := c.Status(context.Background()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("elapsed = %v, want ≥ 30ms of injected latency", elapsed)
	}
}

// TestConcurrentUseGuard: entering the client while a call is in
// flight must fail loudly with ErrConcurrentUse — the documented
// single-goroutine (single LG connection) contract.
func TestConcurrentUseGuard(t *testing.T) {
	_, ts := fixture(t, 1)
	c := NewClient(ts.URL, ClientOptions{})
	if err := c.acquire(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Status(context.Background()); !errors.Is(err, ErrConcurrentUse) {
		t.Errorf("busy client: err = %v, want ErrConcurrentUse", err)
	}
	c.release()
	if _, err := c.Status(context.Background()); err != nil {
		t.Errorf("released client must work again: %v", err)
	}
}

// TestConcurrentUseUnderRace hammers one client from many goroutines.
// Run with -race: the request counter and busy guard are atomic, so
// misuse is reported as ErrConcurrentUse rather than a data race.
func TestConcurrentUseUnderRace(t *testing.T) {
	_, ts := fixture(t, 1)
	c := NewClient(ts.URL, ClientOptions{})
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Status(context.Background())
		}(i)
	}
	wg.Wait()
	ok := 0
	for i, err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrConcurrentUse):
		default:
			t.Errorf("call %d: unexpected error %v", i, err)
		}
	}
	if ok == 0 {
		t.Error("no call succeeded")
	}
}
