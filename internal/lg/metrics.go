package lg

import (
	"context"
	"time"

	"ixplight/internal/telemetry"
)

// Metrics is the LG client's instrument set. Build one with
// NewMetrics and share it across every client scraping the same
// process — the counters aggregate, and per-call latency is labeled
// by endpoint, not by client. A nil *Metrics (the default) disables
// instrumentation: every recording method is a no-op behind an
// inlined nil check, so the uninstrumented hot path allocates and
// measures nothing (pinned by BenchmarkTelemetryOverhead).
type Metrics struct {
	reg          *telemetry.Registry     // span source (trace context propagation)
	requests     *telemetry.Counter      // logical API calls
	httpRequests *telemetry.Counter      // wire requests, incl. retries and pages
	retries      *telemetry.CounterVec   // by failure cause
	retryWait    *telemetry.HistogramVec // backoff vs honoured Retry-After
	pacerWait    *telemetry.Histogram    // MinInterval politeness delay
	budgetWait   *telemetry.Histogram    // global RequestBudget acquire wait
	inFlight     *telemetry.Gauge        // calls currently inside the client
	callSeconds  *telemetry.HistogramVec // per-endpoint logical call latency
}

// NewMetrics registers the LG client metric families on reg and
// returns the instrument set. A nil registry returns nil — the
// disabled, zero-cost form every ClientOptions defaults to.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		reg: reg,
		requests: reg.Counter("ixplight_lg_requests_total",
			"Logical LG API calls (pagination and retries excluded)."),
		httpRequests: reg.Counter("ixplight_lg_http_requests_total",
			"HTTP requests sent to looking glasses, including retries and pagination."),
		retries: reg.CounterVec("ixplight_lg_retries_total",
			"Request retries by failure cause.", "cause"),
		retryWait: reg.HistogramVec("ixplight_lg_retry_wait_seconds",
			"Delay before each retry, by kind (backoff or honoured Retry-After).",
			nil, "kind"),
		pacerWait: reg.Histogram("ixplight_lg_pacer_wait_seconds",
			"Politeness delay imposed by the MinInterval pacer.", nil),
		budgetWait: reg.Histogram("ixplight_lg_budget_wait_seconds",
			"Time spent waiting for a global request-budget slot.", nil),
		inFlight: reg.Gauge("ixplight_lg_in_flight",
			"LG client calls currently in flight."),
		callSeconds: reg.HistogramVec("ixplight_lg_call_seconds",
			"Logical call latency by endpoint.", nil, "call"),
	}
}

// startSpan begins a trace span as a child of the context's active
// span (nil-safe, allocation-free when tracing is off). The LG
// client's per-request spans nest under the collector's neighbor
// spans this way, so one trace covers a whole crawl.
func (m *Metrics) startSpan(ctx context.Context, name string) (context.Context, *telemetry.Span) {
	if m == nil {
		return ctx, nil
	}
	return telemetry.StartSpan(ctx, m.reg, name)
}

// callStarted records one admitted logical call.
func (m *Metrics) callStarted() {
	if m == nil {
		return
	}
	m.requests.Inc()
	m.inFlight.Inc()
}

// callFinished balances callStarted.
func (m *Metrics) callFinished() {
	if m == nil {
		return
	}
	m.inFlight.Dec()
}

// httpRequest records one wire request.
func (m *Metrics) httpRequest() {
	if m == nil {
		return
	}
	m.httpRequests.Inc()
}

// retry records one retry and the delay preceding it. kind is
// "retry_after" when the server's Retry-After header was honoured,
// "backoff" otherwise; cause classifies the failure being retried.
func (m *Metrics) retry(cause, kind string, wait time.Duration) {
	if m == nil {
		return
	}
	m.retries.With(cause).Inc()
	m.retryWait.With(kind).ObserveDuration(wait)
}

// pacer records one MinInterval politeness delay.
func (m *Metrics) pacer(wait time.Duration) {
	if m == nil {
		return
	}
	m.pacerWait.ObserveDuration(wait)
}

// now returns the wall clock when instrumentation is on, and the zero
// time — which ObserveSince ignores — when it is off, so disabled
// paths skip the time.Now call entirely.
func (m *Metrics) now() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

// budgetWaited records the time spent blocked on the request budget.
func (m *Metrics) budgetWaited(t0 time.Time) {
	if m == nil {
		return
	}
	m.budgetWait.ObserveSince(t0)
}

// noopTimer is the shared disabled call timer: returning the same
// func value keeps the off path allocation-free.
var noopTimer = func() {}

// callTimer starts a per-endpoint latency measurement; the returned
// func stops it. Disabled metrics return a shared no-op.
func (m *Metrics) callTimer(call string) func() {
	if m == nil {
		return noopTimer
	}
	h := m.callSeconds.With(call)
	t0 := time.Now()
	return func() { h.ObserveSince(t0) }
}
