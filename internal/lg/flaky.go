package lg

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// FlakyOptions configures the failure-injection middleware. Each knob
// reproduces one failure mode the paper's twelve-week collection had
// to survive.
type FlakyOptions struct {
	// ErrorRate is the probability of answering 500 instead of the
	// real response.
	ErrorRate float64
	// RateLimitEvery answers 429 on every n-th request when > 0,
	// simulating LG query rate limits.
	RateLimitEvery int
	// RetryAfter is advertised in the Retry-After header of every 429
	// (default 1s), matching real alice-lg deployments behind rate
	// limiters.
	RetryAfter time.Duration
	// Latency delays every response by this much, simulating a slow or
	// overloaded LG backend.
	Latency time.Duration
	// HangEvery makes every n-th request hang until the client gives
	// up (its request context is cancelled) when > 0.
	HangEvery int
	// TruncateEvery cuts every n-th successful body in half when > 0:
	// the declared Content-Length promises the full body, so the
	// client sees the connection die mid-response.
	TruncateEvery int
	// ShrinkAfter shrinks the declared route totals of paginated
	// listings (pages after the first) once more than n requests have
	// been served, simulating RIB churn mid-crawl. 0 disables.
	ShrinkAfter int
	// NeighborOutage lists neighbor ASNs whose routes endpoints always
	// answer 500 — a permanently broken per-peer view.
	NeighborOutage []uint32
	// NeighborLatency delays the routes endpoints of specific
	// neighbors (on top of Latency), so tests can force parallel
	// crawls to complete out of neighbor order.
	NeighborLatency map[uint32]time.Duration
	// Seed makes the injected failures reproducible.
	Seed int64
}

// flakyRecorder buffers a downstream response so Flaky can tamper
// with the body before it reaches the wire.
type flakyRecorder struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (r *flakyRecorder) Header() http.Header { return r.header }

func (r *flakyRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
}

func (r *flakyRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.body.Write(b)
}

// Flaky wraps an HTTP handler with deterministic failure injection —
// the LG instability the paper's collection had to survive: 500s,
// rate limits (with Retry-After), latency, hung connections,
// truncated bodies, and mid-crawl pagination shrinkage.
func Flaky(next http.Handler, opts FlakyOptions) http.Handler {
	rng := rand.New(rand.NewSource(opts.Seed))
	var mu sync.Mutex
	count := 0
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		count++
		n := count
		roll := rng.Float64()
		mu.Unlock()
		if opts.Latency > 0 {
			select {
			case <-time.After(opts.Latency):
			case <-r.Context().Done():
				return
			}
		}
		if opts.HangEvery > 0 && n%opts.HangEvery == 0 {
			<-r.Context().Done()
			return
		}
		// Per-neighbor failure modes come before the stochastic,
		// counter-driven ones: a permanently broken per-peer view answers
		// the same way no matter how requests interleave, so a degraded
		// crawl's recorded errors stay deterministic at any parallelism.
		for asn, d := range opts.NeighborLatency {
			if d > 0 && strings.Contains(r.URL.Path, fmt.Sprintf("/neighbors/%d/routes", asn)) {
				select {
				case <-time.After(d):
				case <-r.Context().Done():
					return
				}
			}
		}
		for _, asn := range opts.NeighborOutage {
			if strings.Contains(r.URL.Path, fmt.Sprintf("/neighbors/%d/routes", asn)) {
				http.Error(w, "backend unavailable", http.StatusInternalServerError)
				return
			}
		}
		if opts.RateLimitEvery > 0 && n%opts.RateLimitEvery == 0 {
			w.Header().Set("Retry-After", retryAfterSeconds(opts.RetryAfter))
			http.Error(w, "rate limited", http.StatusTooManyRequests)
			return
		}
		if roll < opts.ErrorRate {
			http.Error(w, "internal error", http.StatusInternalServerError)
			return
		}
		rec := &flakyRecorder{header: make(http.Header)}
		next.ServeHTTP(rec, r)
		body := rec.body.Bytes()
		if opts.ShrinkAfter > 0 && n > opts.ShrinkAfter && rec.status == http.StatusOK &&
			strings.Contains(r.URL.Path, "/routes/") && pastFirstPage(r) {
			body = shrinkRoutesBody(body)
		}
		for k, vs := range rec.header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		if opts.TruncateEvery > 0 && n%opts.TruncateEvery == 0 && rec.status == http.StatusOK && len(body) > 1 {
			// Promise the full body, deliver half: the server closes the
			// connection on the shortfall and the client reads an
			// unexpected EOF.
			w.Header().Set("Content-Length", strconv.Itoa(len(body)))
			w.WriteHeader(rec.status)
			w.Write(body[:len(body)/2])
			return
		}
		w.WriteHeader(rec.status)
		w.Write(body)
	})
}

func pastFirstPage(r *http.Request) bool {
	p := r.URL.Query().Get("page")
	return p != "" && p != "0"
}

// shrinkRoutesBody rewrites a RoutesResponse with one fewer declared
// total, the signature of a RIB that shifted between pages.
func shrinkRoutesBody(body []byte) []byte {
	var resp RoutesResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return body
	}
	if resp.TotalCount > 0 {
		resp.TotalCount--
	}
	out, err := json.Marshal(resp)
	if err != nil {
		return body
	}
	return out
}

// retryAfterSeconds renders a Retry-After value in whole seconds
// (minimum 1, the header's granularity).
func retryAfterSeconds(d time.Duration) string {
	if d <= 0 {
		d = time.Second
	}
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
