package lg

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FlakyOptions configures the failure-injection middleware. Each knob
// reproduces one failure mode the paper's twelve-week collection had
// to survive.
type FlakyOptions struct {
	// ErrorRate is the probability of answering 500 instead of the
	// real response.
	ErrorRate float64 `json:"error_rate,omitempty"`
	// RateLimitEvery answers 429 on every n-th request when > 0,
	// simulating LG query rate limits.
	RateLimitEvery int `json:"rate_limit_every,omitempty"`
	// RetryAfter is advertised in the Retry-After header of every 429
	// (default 1s), matching real alice-lg deployments behind rate
	// limiters.
	RetryAfter time.Duration `json:"retry_after,omitempty"`
	// Latency delays every response by this much, simulating a slow or
	// overloaded LG backend.
	Latency time.Duration `json:"latency,omitempty"`
	// HangEvery makes every n-th request hang until the client gives
	// up (its request context is cancelled) when > 0.
	HangEvery int `json:"hang_every,omitempty"`
	// TruncateEvery cuts every n-th successful body in half when > 0:
	// the declared Content-Length promises the full body, so the
	// client sees the connection die mid-response.
	TruncateEvery int `json:"truncate_every,omitempty"`
	// ShrinkAfter shrinks the declared route totals of paginated
	// listings (pages after the first) once more than n requests have
	// been served, simulating RIB churn mid-crawl. 0 disables.
	ShrinkAfter int `json:"shrink_after,omitempty"`
	// NeighborOutage lists neighbor ASNs whose routes endpoints always
	// answer 500 — a permanently broken per-peer view.
	NeighborOutage []uint32 `json:"neighbor_outage,omitempty"`
	// NeighborLatency delays the routes endpoints of specific
	// neighbors (on top of Latency), so tests can force parallel
	// crawls to complete out of neighbor order.
	NeighborLatency map[uint32]time.Duration `json:"neighbor_latency,omitempty"`
	// Seed makes the injected failures reproducible.
	Seed int64 `json:"seed,omitempty"`
}

// active reports whether any failure mode is switched on. An inactive
// option set lets the switch serve requests straight through, without
// buffering bodies.
func (o FlakyOptions) active() bool {
	return o.ErrorRate > 0 || o.RateLimitEvery > 0 || o.Latency > 0 ||
		o.HangEvery > 0 || o.TruncateEvery > 0 || o.ShrinkAfter > 0 ||
		len(o.NeighborOutage) > 0 || len(o.NeighborLatency) > 0
}

// flakyRecorder buffers a downstream response so the injector can
// tamper with the body before it reaches the wire.
type flakyRecorder struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (r *flakyRecorder) Header() http.Header { return r.header }

func (r *flakyRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
}

func (r *flakyRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.body.Write(b)
}

// flakyCore is one injection epoch: an option set plus the seeded rng
// and request counter the counter-driven modes are interpreted
// against. Swapping options (FlakySwitch.Set) starts a fresh epoch, so
// every epoch replays deterministically from its seed.
type flakyCore struct {
	opts FlakyOptions

	mu    sync.Mutex
	rng   *rand.Rand
	count int
}

func newFlakyCore(opts FlakyOptions) *flakyCore {
	return &flakyCore{opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// serve runs one request through the failure injector in front of next.
func (c *flakyCore) serve(w http.ResponseWriter, r *http.Request, next http.Handler) {
	opts := c.opts
	c.mu.Lock()
	c.count++
	n := c.count
	roll := c.rng.Float64()
	c.mu.Unlock()
	if opts.Latency > 0 {
		select {
		case <-time.After(opts.Latency):
		case <-r.Context().Done():
			return
		}
	}
	if opts.HangEvery > 0 && n%opts.HangEvery == 0 {
		<-r.Context().Done()
		return
	}
	// Per-neighbor failure modes come before the stochastic,
	// counter-driven ones: a permanently broken per-peer view answers
	// the same way no matter how requests interleave, so a degraded
	// crawl's recorded errors stay deterministic at any parallelism.
	for asn, d := range opts.NeighborLatency {
		if d > 0 && strings.Contains(r.URL.Path, fmt.Sprintf("/neighbors/%d/routes", asn)) {
			select {
			case <-time.After(d):
			case <-r.Context().Done():
				return
			}
		}
	}
	for _, asn := range opts.NeighborOutage {
		if strings.Contains(r.URL.Path, fmt.Sprintf("/neighbors/%d/routes", asn)) {
			http.Error(w, "backend unavailable", http.StatusInternalServerError)
			return
		}
	}
	if opts.RateLimitEvery > 0 && n%opts.RateLimitEvery == 0 {
		w.Header().Set("Retry-After", retryAfterSeconds(opts.RetryAfter))
		http.Error(w, "rate limited", http.StatusTooManyRequests)
		return
	}
	if roll < opts.ErrorRate {
		http.Error(w, "internal error", http.StatusInternalServerError)
		return
	}
	rec := &flakyRecorder{header: make(http.Header)}
	next.ServeHTTP(rec, r)
	body := rec.body.Bytes()
	if opts.ShrinkAfter > 0 && n > opts.ShrinkAfter && rec.status == http.StatusOK &&
		strings.Contains(r.URL.Path, "/routes/") && pastFirstPage(r) {
		body = shrinkRoutesBody(body)
	}
	for k, vs := range rec.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if opts.TruncateEvery > 0 && n%opts.TruncateEvery == 0 && rec.status == http.StatusOK && len(body) > 1 {
		// Promise the full body, deliver half: the server closes the
		// connection on the shortfall and the client reads an
		// unexpected EOF.
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(rec.status)
		w.Write(body[:len(body)/2])
		return
	}
	w.WriteHeader(rec.status)
	w.Write(body)
}

// FlakySwitch is failure injection that can be re-armed while the
// server is live: a handler wrapper whose FlakyOptions are swapped
// atomically with Set — the runtime chaos control the soak harness
// (and cmd/lg-server's admin endpoint) flips servers with. A switch
// whose options are all zero serves straight through.
type FlakySwitch struct {
	next http.Handler
	core atomic.Pointer[flakyCore]
}

// NewFlakySwitch wraps next with a togglable failure injector, armed
// with opts (which may be the zero value: a healthy server until the
// first Set).
func NewFlakySwitch(next http.Handler, opts FlakyOptions) *FlakySwitch {
	s := &FlakySwitch{next: next}
	s.core.Store(newFlakyCore(opts))
	return s
}

// Set replaces the injection options. The swap is atomic — in-flight
// requests finish under the options they started with — and begins a
// fresh epoch: the request counter resets and the rng is reseeded from
// opts.Seed, so every epoch's failures replay deterministically.
func (s *FlakySwitch) Set(opts FlakyOptions) {
	s.core.Store(newFlakyCore(opts))
}

// Options returns the currently armed option set.
func (s *FlakySwitch) Options() FlakyOptions {
	return s.core.Load().opts
}

// ServeHTTP implements http.Handler.
func (s *FlakySwitch) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c := s.core.Load()
	if !c.opts.active() {
		s.next.ServeHTTP(w, r)
		return
	}
	c.serve(w, r, s.next)
}

// Flaky wraps an HTTP handler with deterministic failure injection —
// the LG instability the paper's collection had to survive: 500s,
// rate limits (with Retry-After), latency, hung connections,
// truncated bodies, and mid-crawl pagination shrinkage. The returned
// handler is a *FlakySwitch, so callers that keep the concrete type
// can re-arm it at runtime.
func Flaky(next http.Handler, opts FlakyOptions) http.Handler {
	return NewFlakySwitch(next, opts)
}

func pastFirstPage(r *http.Request) bool {
	p := r.URL.Query().Get("page")
	return p != "" && p != "0"
}

// shrinkRoutesBody rewrites a RoutesResponse with one fewer declared
// total, the signature of a RIB that shifted between pages.
func shrinkRoutesBody(body []byte) []byte {
	var resp RoutesResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return body
	}
	if resp.TotalCount > 0 {
		resp.TotalCount--
	}
	out, err := json.Marshal(resp)
	if err != nil {
		return body
	}
	return out
}

// retryAfterSeconds renders a Retry-After value in whole seconds
// (minimum 1, the header's granularity).
func retryAfterSeconds(d time.Duration) string {
	if d <= 0 {
		d = time.Second
	}
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
