package mrt

import (
	"bytes"
	"testing"

	"ixplight/internal/bgp"
	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
	"ixplight/internal/ixpgen"
	"ixplight/internal/netutil"
)

func sampleSnapshot(t *testing.T) *collector.Snapshot {
	t.Helper()
	scheme := dictionary.ProfileByName("DE-CIX")
	s := &collector.Snapshot{
		IXP:  "DE-CIX",
		Date: "2021-10-04",
		Members: []collector.Member{
			{ASN: 100, Name: "AS100", IPv4: true, IPv6: true},
			{ASN: 4260000077, Name: "AS4260000077", IPv4: true},
		},
		Routes: []bgp.Route{
			{
				Prefix:  netutil.SyntheticV4Prefix(0),
				NextHop: netutil.PeerAddrV4(1),
				ASPath:  bgp.ASPath{100, 200, 300},
				Origin:  bgp.OriginIGP,
				MED:     50,
				Communities: []bgp.Community{
					scheme.DoNotAnnounce(15169), bgp.BlackholeWellKnown,
				},
				ExtCommunities:   []bgp.ExtendedCommunity{scheme.ExtInfo(3)},
				LargeCommunities: []bgp.LargeCommunity{{Global: 6695, Local1: 100, Local2: 0}},
			},
			{
				Prefix:  netutil.SyntheticV6Prefix(0),
				NextHop: netutil.PeerAddrV6(1),
				ASPath:  bgp.ASPath{100},
				Origin:  bgp.OriginIncomplete,
			},
			{
				Prefix:  netutil.SyntheticV4Prefix(1),
				NextHop: netutil.PeerAddrV4(2),
				ASPath:  bgp.ASPath{4260000077},
			},
		},
	}
	s.Normalize()
	return s
}

func TestRIBRoundTrip(t *testing.T) {
	in := sampleSnapshot(t)
	var buf bytes.Buffer
	if err := WriteRIB(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadRIB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.IXP != in.IXP || out.Date != in.Date {
		t.Errorf("identity = %s/%s", out.IXP, out.Date)
	}
	if len(out.Routes) != len(in.Routes) {
		t.Fatalf("routes = %d, want %d", len(out.Routes), len(in.Routes))
	}
	for i := range in.Routes {
		a, b := in.Routes[i], out.Routes[i]
		if a.Prefix != b.Prefix || a.NextHop != b.NextHop || a.String() != b.String() {
			t.Errorf("route %d mismatch:\n in  %s\n out %s", i, a, b)
		}
		if a.MED != b.MED || a.Origin != b.Origin {
			t.Errorf("route %d attrs: med %d/%d origin %v/%v", i, a.MED, b.MED, a.Origin, b.Origin)
		}
		if len(a.ExtCommunities) != len(b.ExtCommunities) || len(a.LargeCommunities) != len(b.LargeCommunities) {
			t.Errorf("route %d ext/large lost", i)
		}
	}
	// 4-byte ASN must survive.
	found := false
	for _, m := range out.Members {
		if m.ASN == 4260000077 {
			found = true
		}
	}
	if !found {
		t.Error("4-octet peer ASN lost")
	}
}

// TestGeneratedWorkloadRoundTrip pushes a full synthetic IXP through
// the MRT codec and checks the analysis-relevant aggregates survive.
func TestGeneratedWorkloadRoundTrip(t *testing.T) {
	p := ixpgen.ProfileByName("AMS-IX")
	w, err := ixpgen.Generate(*p, ixpgen.Options{Seed: 4, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	in := w.Snapshot("2021-10-04")
	var buf bytes.Buffer
	if err := WriteRIB(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadRIB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Routes) != len(in.Routes) {
		t.Fatalf("routes = %d, want %d", len(out.Routes), len(in.Routes))
	}
	inComm, outComm := 0, 0
	for i := range in.Routes {
		inComm += in.Routes[i].CommunityCount()
		outComm += out.Routes[i].CommunityCount()
	}
	if inComm != outComm {
		t.Errorf("community instances = %d, want %d", outComm, inComm)
	}
	if len(out.Members) != len(in.Members) {
		t.Errorf("members = %d, want %d", len(out.Members), len(in.Members))
	}
}

func TestReadRejectsCorruptArchives(t *testing.T) {
	good := &bytes.Buffer{}
	if err := WriteRIB(good, sampleSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	raw := good.Bytes()

	t.Run("empty", func(t *testing.T) {
		if _, err := ReadRIB(bytes.NewReader(nil)); err == nil {
			t.Error("want error")
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		if _, err := ReadRIB(bytes.NewReader(raw[:6])); err == nil {
			t.Error("want error")
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		if _, err := ReadRIB(bytes.NewReader(raw[:20])); err == nil {
			t.Error("want error")
		}
	})
	t.Run("implausible length", func(t *testing.T) {
		bad := bytes.Clone(raw)
		bad[8], bad[9], bad[10], bad[11] = 0xFF, 0xFF, 0xFF, 0xFF
		if _, err := ReadRIB(bytes.NewReader(bad)); err == nil {
			t.Error("want error")
		}
	})
	t.Run("rib before index", func(t *testing.T) {
		// Skip the peer index record.
		idxLen := 12 + int(uint32(raw[8])<<24|uint32(raw[9])<<16|uint32(raw[10])<<8|uint32(raw[11]))
		if _, err := ReadRIB(bytes.NewReader(raw[idxLen:])); err == nil {
			t.Error("want error")
		}
	})
}

func TestWriteRejectsUnknownAnnouncer(t *testing.T) {
	s := sampleSnapshot(t)
	s.Routes = append(s.Routes, bgp.Route{
		Prefix:  netutil.SyntheticV4Prefix(9),
		NextHop: netutil.PeerAddrV4(9),
		ASPath:  bgp.ASPath{999999},
	})
	var buf bytes.Buffer
	if err := WriteRIB(&buf, s); err == nil {
		t.Error("route from non-member accepted")
	}
}

func TestWriteRejectsBadDate(t *testing.T) {
	s := sampleSnapshot(t)
	s.Date = "not-a-date"
	var buf bytes.Buffer
	if err := WriteRIB(&buf, s); err == nil {
		t.Error("bad date accepted")
	}
}

func TestReadToleratesForeignRecordTypes(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRIB(&buf, sampleSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	// Prepend a BGP4MP (type 16) record, which must be skipped.
	foreign := []byte{0, 0, 0, 0, 0, 16, 0, 4, 0, 0, 0, 3, 1, 2, 3}
	full := append(foreign, buf.Bytes()...)
	out, err := ReadRIB(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Routes) != 3 {
		t.Errorf("routes = %d", len(out.Routes))
	}
}

// sampleSnapshotForFuzz is the test fixture without *testing.T, for
// the fuzz seed corpus.
func sampleSnapshotForFuzz() *collector.Snapshot {
	s := &collector.Snapshot{
		IXP:  "X",
		Date: "2021-10-04",
		Members: []collector.Member{
			{ASN: 100, IPv4: true},
		},
		Routes: []bgp.Route{{
			Prefix:  netutil.SyntheticV4Prefix(0),
			NextHop: netutil.PeerAddrV4(1),
			ASPath:  bgp.ASPath{100},
		}},
	}
	s.Normalize()
	return s
}
