// Package mrt reads and writes MRT TABLE_DUMP_V2 RIB archives
// (RFC 6396) — the format RouteViews and RIPE RIS publish their
// collector snapshots in. It gives this laboratory's snapshots the
// same interchange format real measurement pipelines consume, and
// powers the collector-visibility experiment: an ixplight snapshot can
// be dumped exactly as a route collector would have archived it.
//
// Supported records: PEER_INDEX_TABLE plus RIB_IPV4_UNICAST and
// RIB_IPV6_UNICAST entries, with 4-byte peer ASNs.
package mrt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"time"

	"ixplight/internal/bgp"
	"ixplight/internal/collector"
)

// MRT record constants (RFC 6396).
const (
	typeTableDumpV2 = 13

	subtypePeerIndexTable = 1
	subtypeRIBIPv4Unicast = 2
	subtypeRIBIPv6Unicast = 4

	peerFlagIPv6   = 0x01
	peerFlagAS4    = 0x02
	maxRecordLen   = 1 << 24 // sanity bound against corrupted headers
	collectorBGPID = 0xC0000201
)

// ErrTruncated reports a record cut short.
var ErrTruncated = errors.New("mrt: truncated record")

// writeRecord emits one MRT record with the common header.
func writeRecord(w io.Writer, ts uint32, subtype uint16, body []byte) error {
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], ts)
	binary.BigEndian.PutUint16(hdr[4:6], typeTableDumpV2)
	binary.BigEndian.PutUint16(hdr[6:8], subtype)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// WriteRIB dumps a snapshot as a TABLE_DUMP_V2 archive: one
// PEER_INDEX_TABLE followed by one RIB entry record per route. The
// snapshot date (midnight UTC) stamps every record.
func WriteRIB(w io.Writer, snap *collector.Snapshot) error {
	ts, err := timestampOf(snap)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)

	// Peer index: one entry per member (its v4 LAN address when it has
	// one, the v6 address otherwise).
	peerIdx := make(map[uint32]uint16, len(snap.Members))
	var body []byte
	body = binary.BigEndian.AppendUint32(body, collectorBGPID)
	view := []byte(snap.IXP)
	body = binary.BigEndian.AppendUint16(body, uint16(len(view)))
	body = append(body, view...)
	body = binary.BigEndian.AppendUint16(body, uint16(len(snap.Members)))
	for i, m := range snap.Members {
		peerIdx[m.ASN] = uint16(i)
		body = append(body, peerFlagAS4)
		body = binary.BigEndian.AppendUint32(body, m.ASN) // BGP ID := ASN (synthetic)
		body = append(body, 0, 0, 0, 0)                   // peer IP (unused downstream)
		body = binary.BigEndian.AppendUint32(body, m.ASN)
	}
	if err := writeRecord(bw, ts, subtypePeerIndexTable, body); err != nil {
		return err
	}

	for seq, r := range snap.Routes {
		idx, ok := peerIdx[r.PeerAS()]
		if !ok {
			return fmt.Errorf("mrt: route %s announced by non-member AS%d", r.Prefix, r.PeerAS())
		}
		attrs, err := bgp.MarshalRIBAttributes(r)
		if err != nil {
			return err
		}
		var entry []byte
		entry = binary.BigEndian.AppendUint32(entry, uint32(seq))
		entry = append(entry, byte(r.Prefix.Bits()))
		nbytes := (r.Prefix.Bits() + 7) / 8
		if r.Prefix.Addr().Is4() {
			a := r.Prefix.Addr().As4()
			entry = append(entry, a[:nbytes]...)
		} else {
			a := r.Prefix.Addr().As16()
			entry = append(entry, a[:nbytes]...)
		}
		entry = binary.BigEndian.AppendUint16(entry, 1) // one RIB entry
		entry = binary.BigEndian.AppendUint16(entry, idx)
		entry = binary.BigEndian.AppendUint32(entry, ts)
		entry = binary.BigEndian.AppendUint16(entry, uint16(len(attrs)))
		entry = append(entry, attrs...)

		subtype := uint16(subtypeRIBIPv4Unicast)
		if r.IsIPv6() {
			subtype = subtypeRIBIPv6Unicast
		}
		if err := writeRecord(bw, ts, subtype, entry); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func timestampOf(snap *collector.Snapshot) (uint32, error) {
	day, err := snap.Day()
	if err != nil {
		return 0, fmt.Errorf("mrt: bad snapshot date %q: %v", snap.Date, err)
	}
	return uint32(day.Unix()), nil
}

// ReadRIB parses a TABLE_DUMP_V2 archive back into a snapshot. Member
// address-family flags are reconstructed from the routes (the peer
// index does not carry them); members with no routes keep both flags
// set, the conservative reading.
func ReadRIB(r io.Reader) (*collector.Snapshot, error) {
	br := bufio.NewReader(r)
	snap := &collector.Snapshot{}
	var peers []collector.Member
	sawIndex := false

	for recNo := 0; ; recNo++ {
		var hdr [12]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF && recNo > 0 {
				break
			}
			if err == io.EOF {
				return nil, errors.New("mrt: empty archive")
			}
			return nil, ErrTruncated
		}
		ts := binary.BigEndian.Uint32(hdr[0:4])
		typ := binary.BigEndian.Uint16(hdr[4:6])
		subtype := binary.BigEndian.Uint16(hdr[6:8])
		length := binary.BigEndian.Uint32(hdr[8:12])
		if length > maxRecordLen {
			return nil, fmt.Errorf("mrt: record %d: implausible length %d", recNo, length)
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, ErrTruncated
		}
		if typ != typeTableDumpV2 {
			continue // tolerate foreign record types
		}
		switch subtype {
		case subtypePeerIndexTable:
			ixp, ps, err := parsePeerIndex(body)
			if err != nil {
				return nil, fmt.Errorf("mrt: record %d: %w", recNo, err)
			}
			snap.IXP = ixp
			snap.Date = time.Unix(int64(ts), 0).UTC().Format("2006-01-02")
			peers = ps
			sawIndex = true
		case subtypeRIBIPv4Unicast, subtypeRIBIPv6Unicast:
			if !sawIndex {
				return nil, fmt.Errorf("mrt: record %d: RIB entry before peer index", recNo)
			}
			routes, err := parseRIBEntry(body, subtype == subtypeRIBIPv6Unicast, peers)
			if err != nil {
				return nil, fmt.Errorf("mrt: record %d: %w", recNo, err)
			}
			snap.Routes = append(snap.Routes, routes...)
		}
	}
	if !sawIndex {
		return nil, errors.New("mrt: no peer index table")
	}
	snap.Members = reconstructMembers(peers, snap.Routes)
	snap.Normalize()
	return snap, nil
}

func parsePeerIndex(body []byte) (string, []collector.Member, error) {
	if len(body) < 8 {
		return "", nil, ErrTruncated
	}
	viewLen := int(binary.BigEndian.Uint16(body[4:6]))
	if len(body) < 6+viewLen+2 {
		return "", nil, ErrTruncated
	}
	view := string(body[6 : 6+viewLen])
	off := 6 + viewLen
	count := int(binary.BigEndian.Uint16(body[off : off+2]))
	off += 2
	peers := make([]collector.Member, 0, count)
	for i := 0; i < count; i++ {
		if len(body) < off+1 {
			return "", nil, ErrTruncated
		}
		flags := body[off]
		off++
		addrLen := 4
		if flags&peerFlagIPv6 != 0 {
			addrLen = 16
		}
		asLen := 2
		if flags&peerFlagAS4 != 0 {
			asLen = 4
		}
		need := 4 + addrLen + asLen
		if len(body) < off+need {
			return "", nil, ErrTruncated
		}
		off += 4 + addrLen // skip BGP ID and peer address
		var asn uint32
		if asLen == 4 {
			asn = binary.BigEndian.Uint32(body[off : off+4])
		} else {
			asn = uint32(binary.BigEndian.Uint16(body[off : off+2]))
		}
		off += asLen
		peers = append(peers, collector.Member{ASN: asn, Name: fmt.Sprintf("AS%d", asn)})
	}
	return view, peers, nil
}

func parseRIBEntry(body []byte, v6 bool, peers []collector.Member) ([]bgp.Route, error) {
	if len(body) < 5 {
		return nil, ErrTruncated
	}
	bits := int(body[4])
	maxBits := 32
	if v6 {
		maxBits = 128
	}
	if bits > maxBits {
		return nil, fmt.Errorf("prefix length %d exceeds %d", bits, maxBits)
	}
	nbytes := (bits + 7) / 8
	if len(body) < 5+nbytes+2 {
		return nil, ErrTruncated
	}
	var addr netip.Addr
	if v6 {
		var a [16]byte
		copy(a[:], body[5:5+nbytes])
		addr = netip.AddrFrom16(a)
	} else {
		var a [4]byte
		copy(a[:], body[5:5+nbytes])
		addr = netip.AddrFrom4(a)
	}
	prefix := netip.PrefixFrom(addr, bits)
	off := 5 + nbytes
	count := int(binary.BigEndian.Uint16(body[off : off+2]))
	off += 2

	routes := make([]bgp.Route, 0, count)
	for i := 0; i < count; i++ {
		if len(body) < off+8 {
			return nil, ErrTruncated
		}
		idx := int(binary.BigEndian.Uint16(body[off : off+2]))
		attrLen := int(binary.BigEndian.Uint16(body[off+6 : off+8]))
		off += 8
		if len(body) < off+attrLen {
			return nil, ErrTruncated
		}
		if idx >= len(peers) {
			return nil, fmt.Errorf("peer index %d out of range (%d peers)", idx, len(peers))
		}
		r := bgp.Route{Prefix: prefix}
		if err := bgp.UnmarshalRIBAttributes(body[off:off+attrLen], &r); err != nil {
			return nil, err
		}
		off += attrLen
		// The snapshot model identifies the announcer by the AS path's
		// first hop; an archive whose path head disagrees with the peer
		// index is inconsistent.
		if r.PeerAS() != peers[idx].ASN {
			return nil, fmt.Errorf("AS path head %d disagrees with peer index entry AS%d",
				r.PeerAS(), peers[idx].ASN)
		}
		routes = append(routes, r)
	}
	return routes, nil
}

// reconstructMembers derives per-family flags from the routes each
// member announced; members with no routes keep both families.
func reconstructMembers(peers []collector.Member, routes []bgp.Route) []collector.Member {
	hasV4 := make(map[uint32]bool)
	hasV6 := make(map[uint32]bool)
	announced := make(map[uint32]bool)
	for _, r := range routes {
		announced[r.PeerAS()] = true
		if r.IsIPv6() {
			hasV6[r.PeerAS()] = true
		} else {
			hasV4[r.PeerAS()] = true
		}
	}
	out := make([]collector.Member, len(peers))
	for i, p := range peers {
		p.IPv4 = hasV4[p.ASN] || !announced[p.ASN]
		p.IPv6 = hasV6[p.ASN] || !announced[p.ASN]
		out[i] = p
	}
	return out
}
