package mrt

import (
	"bytes"
	"testing"
)

// FuzzReadRIB feeds arbitrary bytes to the archive reader: errors are
// fine, panics and unbounded allocations are not.
func FuzzReadRIB(f *testing.F) {
	var buf bytes.Buffer
	snap := sampleSnapshotForFuzz()
	if err := WriteRIB(&buf, snap); err == nil {
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add(make([]byte, 12))

	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := ReadRIB(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must re-serialise (members cover all routes by
		// construction of the reader).
		var rt bytes.Buffer
		if err := WriteRIB(&rt, out); err != nil {
			t.Fatalf("re-write of parsed archive failed: %v", err)
		}
	})
}
