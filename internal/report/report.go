// Package report renders analysis results in the shapes the paper
// publishes them: fixed-width text tables for Tables 1–4 and CSV
// series for the figures, so each experiment's output can be compared
// row-by-row against the paper.
package report

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"ixplight/internal/analysis"
	"ixplight/internal/asdb"
	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
)

// Table1Row is one IXP line of Table 1.
type Table1Row struct {
	IXP                      string
	Location                 string
	AvgTraffic               string
	Members                  int
	MembersRSv4, MembersRSv6 int
	PrefixesV4, PrefixesV6   int
	RoutesV4, RoutesV6       int
}

// Table1RowFromSnapshot derives the measured columns from a snapshot.
func Table1RowFromSnapshot(s *collector.Snapshot, location, traffic string, totalMembers int) Table1Row {
	c4 := analysis.CountSnapshot(s, false)
	c6 := analysis.CountSnapshot(s, true)
	return Table1Row{
		IXP: s.IXP, Location: location, AvgTraffic: traffic, Members: totalMembers,
		MembersRSv4: c4.Members, MembersRSv6: c6.Members,
		PrefixesV4: c4.Prefixes, PrefixesV6: c6.Prefixes,
		RoutesV4: c4.Routes, RoutesV6: c6.Routes,
	}
}

// WriteTable1 renders Table 1.
func WriteTable1(w io.Writer, rows []Table1Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "IXP\tLocation\tTraffic\tMembers\tRS v4\tRS v6\tPrefixes v4\tPrefixes v6\tRoutes v4\tRoutes v6")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.IXP, r.Location, r.AvgTraffic, r.Members,
			r.MembersRSv4, r.MembersRSv6, r.PrefixesV4, r.PrefixesV6, r.RoutesV4, r.RoutesV6)
	}
	tw.Flush()
}

// WriteFig1 renders the Fig. 1 series (IXP-defined vs unknown shares).
func WriteFig1(w io.Writer, ixp string, v4, v6 analysis.Mix) {
	fmt.Fprintf(w, "figure1,%s,IPv4,total=%d,defined=%.1f%%,unknown=%.1f%%\n",
		ixp, v4.Total(), 100*v4.DefinedShare(), 100*(1-v4.DefinedShare()))
	fmt.Fprintf(w, "figure1,%s,IPv6,total=%d,defined=%.1f%%,unknown=%.1f%%\n",
		ixp, v6.Total(), 100*v6.DefinedShare(), 100*(1-v6.DefinedShare()))
}

// WriteFig2 renders the Fig. 2 series (standard/extended/large mix).
func WriteFig2(w io.Writer, ixp string, v4, v6 analysis.Mix) {
	fmt.Fprintf(w, "figure2,%s,IPv4,defined=%d,standard=%.1f%%,extended=%.1f%%,large=%.1f%%\n",
		ixp, v4.Defined(), 100*v4.StandardShare(), 100*v4.ExtendedShare(), 100*v4.LargeShare())
	fmt.Fprintf(w, "figure2,%s,IPv6,defined=%d,standard=%.1f%%,extended=%.1f%%,large=%.1f%%\n",
		ixp, v6.Defined(), 100*v6.StandardShare(), 100*v6.ExtendedShare(), 100*v6.LargeShare())
}

// WriteFig3 renders the Fig. 3 series (action vs informational).
func WriteFig3(w io.Writer, ixp string, family string, action, info int) {
	total := action + info
	if total == 0 {
		fmt.Fprintf(w, "figure3,%s,%s,empty\n", ixp, family)
		return
	}
	fmt.Fprintf(w, "figure3,%s,%s,standard_defined=%d,action=%.1f%%,informational=%.1f%%\n",
		ixp, family, total, 100*float64(action)/float64(total), 100*float64(info)/float64(total))
}

// WriteFig4a renders the Fig. 4a bars.
func WriteFig4a(w io.Writer, ixp, family string, u analysis.Usage) {
	fmt.Fprintf(w, "figure4a,%s,%s,ases=%d (%.1f%% of %d),routes_tagged=%d (%.1f%%),action_instances=%d\n",
		ixp, family, u.ASesUsing, 100*u.ASShare(), u.MembersAtRS,
		u.RoutesTagged, 100*u.RouteShare(), u.ActionInstances)
}

// WriteFig4b renders selected Fig. 4b CDF points.
func WriteFig4b(w io.Writer, ixp string, cdf []analysis.CDFPoint) {
	for _, frac := range []float64{0.01, 0.05, 0.10, 0.50, 1.0} {
		fmt.Fprintf(w, "figure4b,%s,top %.0f%% of ASes,%.1f%% of action communities\n",
			ixp, frac*100, 100*analysis.TopShare(cdf, frac))
	}
}

// WriteFig4c renders the Fig. 4c scatter as CSV.
func WriteFig4c(w io.Writer, ixp string, points []analysis.CorrelationPoint) {
	fmt.Fprintf(w, "figure4c,%s,asn,route_fraction,community_fraction\n", ixp)
	for _, p := range points {
		fmt.Fprintf(w, "figure4c,%s,%d,%.6f,%.6f\n", ixp, p.ASN, p.RouteFrac, p.CommFrac)
	}
}

// WriteTable2 renders one IXP's Table 2 columns.
func WriteTable2(w io.Writer, ixp, family string, rows []analysis.TypeUsage) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Table 2 — %s (%s)\n", ixp, family)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t(%.1f%%)\n", r.Type, r.ASes, 100*r.Share)
	}
	tw.Flush()
}

// WriteSec53 renders the §5.3 occurrence-per-type shares.
func WriteSec53(w io.Writer, ixp, family string, occ map[dictionary.ActionType]int) {
	total := 0
	for _, n := range occ {
		total += n
	}
	fmt.Fprintf(w, "sec5.3,%s,%s,total=%d", ixp, family, total)
	for _, t := range dictionary.ActionTypes {
		share := 0.0
		if total > 0 {
			share = float64(occ[t]) / float64(total)
		}
		fmt.Fprintf(w, ",%s=%.1f%%", t, 100*share)
	}
	fmt.Fprintln(w)
}

// WriteTopCommunities renders a Fig. 5/6 ranking with AS names.
func WriteTopCommunities(w io.Writer, title, ixp string, top []analysis.CommunityCount, reg *asdb.Registry) {
	fmt.Fprintf(w, "%s — %s\n", title, ixp)
	for i, cc := range top {
		target := targetText(cc.Class, reg)
		fmt.Fprintf(w, "%2d. %-14s %-20s %-28s %d\n",
			i+1, cc.Community, cc.Class.Action, target, cc.Count)
	}
}

func targetText(cl dictionary.Class, reg *asdb.Registry) string {
	switch cl.Target {
	case dictionary.TargetAll:
		return "→ all peers"
	case dictionary.TargetPeer:
		if reg != nil {
			return "→ " + reg.Name(cl.TargetASN)
		}
		return fmt.Sprintf("→ AS%d", cl.TargetASN)
	default:
		return ""
	}
}

// WriteCulprits renders the Fig. 7 ranking.
func WriteCulprits(w io.Writer, ixp string, culprits []analysis.Culprit, total int, reg *asdb.Registry) {
	fmt.Fprintf(w, "Figure 7 — %s (total non-member-targeting instances: %d)\n", ixp, total)
	for i, c := range culprits {
		name := fmt.Sprintf("AS%d", c.ASN)
		if reg != nil {
			name = reg.Name(c.ASN)
		}
		share := 0.0
		if total > 0 {
			share = float64(c.Count) / float64(total)
		}
		fmt.Fprintf(w, "%2d. %-24s %8d (%.1f%%)\n", i+1, name, c.Count, 100*share)
	}
}

// WriteStability renders one Table 3/4 row.
func WriteStability(w io.Writer, label string, t analysis.StabilityTable) {
	fmt.Fprintf(w, "%-16s members %d–%d (%.2f%%)  prefixes %d–%d (%.2f%%)  routes %d–%d (%.2f%%)  communities %d–%d (%.2f%%)\n",
		label,
		t.Members.Min, t.Members.Max, t.Members.DiffPct,
		t.Prefixes.Min, t.Prefixes.Max, t.Prefixes.DiffPct,
		t.Routes.Min, t.Routes.Max, t.Routes.DiffPct,
		t.Communities.Min, t.Communities.Max, t.Communities.DiffPct)
}

// Section prints a visually separated heading.
func Section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}
