package report

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"ixplight/internal/analysis"
	"ixplight/internal/ixpgen"
)

// TestExpAllParallelMatchesSequential pins the engine's central
// guarantee: the full `-exp all` battery over the seeded big-four
// workload produces byte-identical output on the parallel indexed
// path (analysis parallelism > 1, experiment fan-out) and on the
// legacy sequential direct-classify path (-parallel 1). `make check`
// runs this under -race, so it also exercises the index and pool
// concurrently.
func TestExpAllParallelMatchesSequential(t *testing.T) {
	// Scale keeps the two full `-exp all` batteries (with table4's
	// 84-day series per IXP) affordable under -race.
	const (
		seed  = 42
		scale = 0.004
	)
	profiles := ixpgen.BigFour()
	old := analysis.Parallelism()
	t.Cleanup(func() { analysis.SetParallelism(old) })

	analysis.SetParallelism(1)
	seqLab, err := NewLabParallel(profiles, seed, scale, 1)
	if err != nil {
		t.Fatalf("sequential lab: %v", err)
	}
	seqOuts, err := seqLab.RunMany(ExperimentNames)
	if err != nil {
		t.Fatalf("sequential RunMany: %v", err)
	}

	analysis.SetParallelism(4)
	parLab, err := NewLabParallel(profiles, seed, scale, 4)
	if err != nil {
		t.Fatalf("parallel lab: %v", err)
	}
	parOuts, err := parLab.RunMany(ExperimentNames)
	if err != nil {
		t.Fatalf("parallel RunMany: %v", err)
	}

	if len(seqOuts) != len(ExperimentNames) || len(parOuts) != len(ExperimentNames) {
		t.Fatalf("outputs: sequential %d, parallel %d, want %d",
			len(seqOuts), len(parOuts), len(ExperimentNames))
	}
	for i, name := range ExperimentNames {
		if len(seqOuts[i]) == 0 {
			t.Errorf("%s: empty sequential output", name)
		}
		if !bytes.Equal(seqOuts[i], parOuts[i]) {
			t.Errorf("%s: parallel output differs from sequential (%d vs %d bytes)",
				name, len(parOuts[i]), len(seqOuts[i]))
		}
	}
}

// TestRunPoolErrorSemantics pins the pool's sequential-compatible
// error behaviour: the lowest failing index wins regardless of worker
// count, and RunMany keeps exactly the outputs preceding it.
func TestRunPoolErrorSemantics(t *testing.T) {
	failAt := map[int]bool{3: true, 7: true}
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		idx, err := runPool(10, workers, func(i int) error {
			ran.Add(1)
			if failAt[i] {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if idx != 3 || err == nil || err.Error() != "task 3 failed" {
			t.Errorf("workers=%d: got (%d, %v), want lowest failure (3, task 3 failed)", workers, idx, err)
		}
		if workers == 1 && ran.Load() != 4 {
			t.Errorf("sequential pool ran %d tasks, want 4 (stop at first error)", ran.Load())
		}
	}

	if idx, err := runPool(0, 4, func(int) error { return errors.New("never") }); idx != 0 || err != nil {
		t.Errorf("empty pool: got (%d, %v)", idx, err)
	}
}

// TestRunManyTruncatesAtError checks the documented failure contract:
// outputs before the failing experiment survive, the rest are
// dropped.
func TestRunManyTruncatesAtError(t *testing.T) {
	l := testLab(t)
	outs, err := l.RunMany([]string{"fig1", "definitely-not-an-experiment", "fig2"})
	if err == nil {
		t.Fatal("want error for unknown experiment")
	}
	if len(outs) != 1 {
		t.Fatalf("got %d outputs, want 1 (only the experiment before the failure)", len(outs))
	}
	if len(outs[0]) == 0 {
		t.Error("fig1 output empty")
	}
}
