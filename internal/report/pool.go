package report

import (
	"bytes"
	"sync"
)

// runPool runs fn(0), ..., fn(n-1) on a bounded pool of workers and
// returns the index of the lowest failing task plus its error, or
// (n, nil) when every task succeeds. Indices are dispatched in
// ascending order; once a task fails, tasks with higher indices are
// skipped (lower ones still run, so the winning error is the one the
// sequential loop would have hit). workers <= 1 degenerates to the
// plain sequential loop, stopping at the first error.
func runPool(n, workers int, fn func(int) error) (int, error) {
	if n <= 0 {
		return 0, nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return i, err
			}
		}
		return n, nil
	}

	var (
		mu      sync.Mutex
		failIdx = n
		failErr error
		next    = make(chan int)
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				mu.Lock()
				skip := failErr != nil && i > failIdx
				mu.Unlock()
				if skip {
					continue
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if failErr == nil || i < failIdx {
						failIdx, failErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return failIdx, failErr
}

// RunMany executes the named experiments across the lab's worker pool
// and returns one output buffer per experiment, in input order — the
// concatenation is byte-identical to running them sequentially.
// Each experiment writes into its own ordered buffer, so `-exp all`
// parallelism never interleaves output. On failure the slice holds
// the complete outputs of the experiments preceding the lowest
// failing one (a failing experiment's partial output is dropped),
// alongside that experiment's error.
func (l *Lab) RunMany(names []string) ([][]byte, error) {
	bufs := make([]bytes.Buffer, len(names))
	stop, err := runPool(len(names), l.workers(), func(i int) error {
		return l.Run(&bufs[i], names[i])
	})
	outs := make([][]byte, 0, stop)
	for i := 0; i < stop && i < len(names); i++ {
		outs = append(outs, bufs[i].Bytes())
	}
	return outs, err
}
