package report

import (
	"io"
	"strings"
	"testing"

	"ixplight/internal/telemetry"
)

// TestRunRecordsExperimentTelemetry: an instrumented Lab must time
// each experiment under its own label and emit a report.experiment
// span, errors included.
func TestRunRecordsExperimentTelemetry(t *testing.T) {
	l := testLab(t)
	reg := telemetry.New()
	sink := &telemetry.RecordingSink{}
	reg.SetSpanSink(sink)
	l.Telemetry = reg
	t.Cleanup(func() { l.Telemetry = nil })

	if err := l.Run(io.Discard, "fig1"); err != nil {
		t.Fatal(err)
	}
	if err := l.Run(io.Discard, "fig1"); err != nil {
		t.Fatal(err)
	}
	if err := l.Run(io.Discard, "table2"); err != nil {
		t.Fatal(err)
	}
	if err := l.Run(io.Discard, "no-such-experiment"); err == nil {
		t.Fatal("want error for unknown experiment")
	}

	h := reg.HistogramVec("ixplight_report_experiment_seconds", "", nil, "experiment")
	if got := h.With("fig1").Count(); got != 2 {
		t.Errorf("fig1 observations = %d, want 2", got)
	}
	if got := h.With("table2").Count(); got != 1 {
		t.Errorf("table2 observations = %d, want 1", got)
	}

	spans := sink.Named("report.experiment")
	if len(spans) != 4 {
		t.Fatalf("spans = %d, want 4 (errors are spanned too)", len(spans))
	}
	var failed *telemetry.Span
	for i := range spans {
		for _, a := range spans[i].Attrs {
			if a.Key == "experiment" && a.Value == "no-such-experiment" {
				failed = &spans[i]
			}
		}
	}
	if failed == nil {
		t.Fatal("no span for the failing experiment")
	}
	hasError := false
	for _, a := range failed.Attrs {
		if a.Key == "error" && strings.Contains(a.Value, "unknown experiment") {
			hasError = true
		}
	}
	if !hasError {
		t.Errorf("failing span attrs = %v, want an error attr", failed.Attrs)
	}
}

// TestRunWithoutTelemetryUnchanged: the nil-Telemetry Lab (the
// default) must run experiments exactly as before.
func TestRunWithoutTelemetryUnchanged(t *testing.T) {
	l := testLab(t)
	if l.Telemetry != nil {
		t.Fatal("test lab unexpectedly instrumented")
	}
	var b strings.Builder
	if err := l.Run(&b, "fig3"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Figure 3") {
		t.Errorf("output = %q", b.String())
	}
}
