package report

import (
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"

	"ixplight/internal/analysis"
	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
	"ixplight/internal/mrt"
)

// LoadSnapshotDir replaces the lab's generated snapshots with stored
// files from dir: every regular file is decoded (codec deduced per
// file, so a directory may mix json/gob/binary/MRT freely), the full
// date-ordered series per IXP feeds the temporal experiments, and the
// latest snapshot per IXP becomes the point-in-time input. Files are
// decoded across the lab's worker pool; the resulting series order is
// deterministic regardless of worker interleaving because it is
// re-sorted by date.
//
// Columnar binary files of a profiled IXP are, unless l.Materialize
// is set, indexed straight off their columns: the loaded snapshot is
// header-only with the classified index attached, and every analysis
// wrapper answers from the index. Other codecs, MRT dumps and
// unprofiled IXPs materialize as before.
//
// Delta files (.delta) reconstruct their days from the chain base in
// the same directory: by default each day's index is advanced
// incrementally from the previous day's (never materializing the
// routes), unless l.Materialize or l.NoIncremental force the chain
// through a materializing DeltaApplier. A delta whose base snapshot is
// missing from dir is an error.
func (l *Lab) LoadSnapshotDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var files, deltaFiles []string
	for _, e := range entries {
		switch {
		case e.IsDir():
		case strings.HasPrefix(e.Name(), "."):
			// AtomicWrite stages dot-prefixed temp files in the same
			// directory; a loader racing a collector must not decode one.
		case strings.HasSuffix(e.Name(), collector.DeltaExt):
			deltaFiles = append(deltaFiles, e.Name())
		default:
			files = append(files, e.Name())
		}
	}

	// Deltas parse up front (they decode lazily, so this is cheap) so
	// chain bases are known before the full snapshots load: a base of
	// an incremental chain must be indexed as a series day 0, not as a
	// standalone column-direct index.
	deltas := make([]*collector.DeltaReader, len(deltaFiles))
	if _, err := runPool(len(deltaFiles), l.workers(), func(i int) error {
		dr, err := collector.OpenDelta(filepath.Join(dir, deltaFiles[i]))
		if err != nil {
			return fmt.Errorf("load %s: %w", deltaFiles[i], err)
		}
		deltas[i] = dr
		return nil
	}); err != nil {
		return err
	}
	incremental := !l.Materialize && !l.NoIncremental
	chainBases := map[string]bool{}
	if len(deltas) > 0 {
		emitted := map[string]bool{}
		for _, dr := range deltas {
			emitted[chainKey(dr.Header().IXP, dr.Header().Date)] = true
		}
		for _, dr := range deltas {
			if k := chainKey(dr.Header().IXP, dr.BaseDate()); !emitted[k] {
				chainBases[k] = true
			}
		}
	}

	schemes := make(map[string]*dictionary.Scheme, len(l.Profiles))
	if !l.Materialize {
		for _, p := range l.Profiles {
			schemes[p.IXP] = p.Scheme
		}
	}
	snaps := make([]*collector.Snapshot, len(files))
	if _, err := runPool(len(files), l.workers(), func(i int) error {
		path := filepath.Join(dir, files[i])
		var snap *collector.Snapshot
		var err error
		if strings.HasSuffix(files[i], ".mrt") {
			snap, err = loadMRTFile(path)
		} else {
			snap, err = loadSnapshotFile(path, schemes, incremental, chainBases)
		}
		if err != nil {
			return fmt.Errorf("load %s: %w", files[i], err)
		}
		snaps[i] = snap
		return nil
	}); err != nil {
		return err
	}

	if len(deltas) > 0 {
		chained, err := applyDeltaChains(snaps, deltas, deltaFiles, schemes, incremental)
		if err != nil {
			return err
		}
		snaps = append(snaps, chained...)
	}

	l.Series = make(map[string][]*collector.Snapshot)
	for _, snap := range snaps {
		l.Series[snap.IXP] = append(l.Series[snap.IXP], snap)
	}
	for ixp, series := range l.Series {
		slices.SortStableFunc(series, func(a, b *collector.Snapshot) int {
			return strings.Compare(a.Date, b.Date)
		})
		l.Snapshots[ixp] = series[len(series)-1]
	}
	return nil
}

func chainKey(ixp, date string) string { return ixp + "\x00" + date }

// applyDeltaChains reconstructs every delta day, in date order per
// chain, from the loaded base snapshots. On the incremental path a
// chain base carries a series index (loadSnapshotFile built it that
// way) and each day advances the previous day's index; otherwise the
// chain runs through a materializing DeltaApplier. Either way the
// reconstructed day joins the pool a later delta may build on.
func applyDeltaChains(snaps []*collector.Snapshot, deltas []*collector.DeltaReader, names []string, schemes map[string]*dictionary.Scheme, incremental bool) ([]*collector.Snapshot, error) {
	byDate := make(map[string]*collector.Snapshot, len(snaps)+len(deltas))
	for _, s := range snaps {
		byDate[chainKey(s.IXP, s.Date)] = s
	}
	order := make([]int, len(deltas))
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int {
		return strings.Compare(deltas[a].Header().Date, deltas[b].Header().Date)
	})

	appliers := map[string]*collector.DeltaApplier{}
	var chained []*collector.Snapshot
	for _, i := range order {
		dr := deltas[i]
		ixp := dr.Header().IXP
		baseKey := chainKey(ixp, dr.BaseDate())
		base := byDate[baseKey]
		if base == nil {
			return nil, fmt.Errorf("apply %s: no snapshot for base day %s of %s", names[i], dr.BaseDate(), ixp)
		}
		var next *collector.Snapshot
		if incremental && base.Routes == nil {
			s, err := analysis.AdvanceSnapshot(base, schemes[ixp], dr)
			if err != nil {
				return nil, fmt.Errorf("apply %s: %w", names[i], err)
			}
			next = s
		} else {
			app := appliers[baseKey]
			if app == nil {
				var err error
				if app, err = collector.NewDeltaApplier(base); err != nil {
					return nil, fmt.Errorf("apply %s: %w", names[i], err)
				}
			}
			s, err := app.Apply(dr)
			if err != nil {
				return nil, fmt.Errorf("apply %s: %w", names[i], err)
			}
			delete(appliers, baseKey)
			appliers[chainKey(ixp, s.Date)] = app
			next = s
		}
		byDate[chainKey(ixp, next.Date)] = next
		chained = append(chained, next)
	}
	return chained, nil
}

// loadSnapshotFile decodes one native snapshot file through the
// random-access reader (mmap where the platform provides it), so the
// codec is deduced from the extension or the file's magic bytes. A
// columnar file whose IXP has a scheme in schemes is not materialized:
// the classified index is built column-direct and pinned on the
// header-only snapshot — as a series index when the file heads an
// incremental delta chain, so later days can advance it.
func loadSnapshotFile(path string, schemes map[string]*dictionary.Scheme, incremental bool, chainBases map[string]bool) (*collector.Snapshot, error) {
	sr, err := collector.OpenSnapshotAt(path)
	if err != nil {
		return nil, err
	}
	defer sr.Close()
	if sr.Codec() == collector.CodecBinary {
		head := sr.Header()
		if scheme := schemes[head.IXP]; scheme != nil {
			isBase := chainBases[chainKey(head.IXP, head.Date)]
			if isBase && !incremental {
				// A materializing chain needs the base's routes.
				return sr.Snapshot()
			}
			var ix *analysis.Index
			if isBase {
				ix, err = analysis.IndexSeriesFromReader(sr, scheme)
			} else {
				ix, err = analysis.IndexFromReader(sr, scheme)
			}
			if err != nil {
				return nil, err
			}
			s := ix.Snapshot()
			analysis.AttachIndex(s, ix)
			return s, nil
		}
	}
	return sr.Snapshot()
}

func loadMRTFile(path string) (*collector.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return mrt.ReadRIB(f)
}
