package report

import (
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"

	"ixplight/internal/analysis"
	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
	"ixplight/internal/mrt"
)

// LoadSnapshotDir replaces the lab's generated snapshots with stored
// files from dir: every regular file is decoded (codec deduced per
// file, so a directory may mix json/gob/binary/MRT freely), the full
// date-ordered series per IXP feeds the temporal experiments, and the
// latest snapshot per IXP becomes the point-in-time input. Files are
// decoded across the lab's worker pool; the resulting series order is
// deterministic regardless of worker interleaving because it is
// re-sorted by date.
//
// Columnar binary files of a profiled IXP are, unless l.Materialize
// is set, indexed straight off their columns: the loaded snapshot is
// header-only with the classified index attached, and every analysis
// wrapper answers from the index. Other codecs, MRT dumps and
// unprofiled IXPs materialize as before.
func (l *Lab) LoadSnapshotDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() {
			files = append(files, e.Name())
		}
	}
	schemes := make(map[string]*dictionary.Scheme, len(l.Profiles))
	if !l.Materialize {
		for _, p := range l.Profiles {
			schemes[p.IXP] = p.Scheme
		}
	}
	snaps := make([]*collector.Snapshot, len(files))
	if _, err := runPool(len(files), l.workers(), func(i int) error {
		path := filepath.Join(dir, files[i])
		var snap *collector.Snapshot
		var err error
		if strings.HasSuffix(files[i], ".mrt") {
			snap, err = loadMRTFile(path)
		} else {
			snap, err = loadSnapshotFile(path, schemes)
		}
		if err != nil {
			return fmt.Errorf("load %s: %w", files[i], err)
		}
		snaps[i] = snap
		return nil
	}); err != nil {
		return err
	}
	l.Series = make(map[string][]*collector.Snapshot)
	for _, snap := range snaps {
		l.Series[snap.IXP] = append(l.Series[snap.IXP], snap)
	}
	for ixp, series := range l.Series {
		slices.SortStableFunc(series, func(a, b *collector.Snapshot) int {
			return strings.Compare(a.Date, b.Date)
		})
		l.Snapshots[ixp] = series[len(series)-1]
	}
	return nil
}

// loadSnapshotFile decodes one native snapshot file through the
// random-access reader (mmap where the platform provides it), so the
// codec is deduced from the extension or the file's magic bytes. A
// columnar file whose IXP has a scheme in schemes is not materialized:
// the classified index is built column-direct and pinned on the
// header-only snapshot.
func loadSnapshotFile(path string, schemes map[string]*dictionary.Scheme) (*collector.Snapshot, error) {
	sr, err := collector.OpenSnapshotAt(path)
	if err != nil {
		return nil, err
	}
	defer sr.Close()
	if sr.Codec() == collector.CodecBinary {
		if scheme := schemes[sr.Header().IXP]; scheme != nil {
			ix, err := analysis.IndexFromReader(sr, scheme)
			if err != nil {
				return nil, err
			}
			s := ix.Snapshot()
			analysis.AttachIndex(s, ix)
			return s, nil
		}
	}
	return sr.Snapshot()
}

func loadMRTFile(path string) (*collector.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return mrt.ReadRIB(f)
}
