package report

import (
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"

	"ixplight/internal/collector"
	"ixplight/internal/mrt"
)

// LoadSnapshotDir replaces the lab's generated snapshots with stored
// files from dir: every regular file is decoded (codec deduced per
// file, so a directory may mix json/gob/binary/MRT freely), the full
// date-ordered series per IXP feeds the temporal experiments, and the
// latest snapshot per IXP becomes the point-in-time input. Files are
// decoded across the lab's worker pool; the resulting series order is
// deterministic regardless of worker interleaving because it is
// re-sorted by date.
func (l *Lab) LoadSnapshotDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() {
			files = append(files, e.Name())
		}
	}
	snaps := make([]*collector.Snapshot, len(files))
	if _, err := runPool(len(files), l.workers(), func(i int) error {
		path := filepath.Join(dir, files[i])
		var snap *collector.Snapshot
		var err error
		if strings.HasSuffix(files[i], ".mrt") {
			snap, err = loadMRTFile(path)
		} else {
			snap, err = loadSnapshotFile(path)
		}
		if err != nil {
			return fmt.Errorf("load %s: %w", files[i], err)
		}
		snaps[i] = snap
		return nil
	}); err != nil {
		return err
	}
	l.Series = make(map[string][]*collector.Snapshot)
	for _, snap := range snaps {
		l.Series[snap.IXP] = append(l.Series[snap.IXP], snap)
	}
	for ixp, series := range l.Series {
		slices.SortStableFunc(series, func(a, b *collector.Snapshot) int {
			return strings.Compare(a.Date, b.Date)
		})
		l.Snapshots[ixp] = series[len(series)-1]
	}
	return nil
}

// loadSnapshotFile decodes one native snapshot file through the
// streaming reader, so the codec is deduced from the extension or the
// file's magic bytes.
func loadSnapshotFile(path string) (*collector.Snapshot, error) {
	sr, err := collector.OpenSnapshot(path)
	if err != nil {
		return nil, err
	}
	defer sr.Close()
	return sr.Snapshot()
}

func loadMRTFile(path string) (*collector.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return mrt.ReadRIB(f)
}
