package report

import (
	"bytes"
	"strings"
	"testing"

	"ixplight/internal/ixpgen"
)

// testLab builds a small two-IXP lab shared across report tests.
var cachedLab *Lab

func testLab(t *testing.T) *Lab {
	t.Helper()
	if cachedLab != nil {
		return cachedLab
	}
	profiles := []ixpgen.Profile{
		*ixpgen.ProfileByName("DE-CIX"),
		*ixpgen.ProfileByName("AMS-IX"),
	}
	l, err := NewLab(profiles, 7, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	cachedLab = l
	return l
}

func TestNewLabPopulatesSnapshots(t *testing.T) {
	l := testLab(t)
	if len(l.Snapshots) != 2 {
		t.Fatalf("snapshots = %d", len(l.Snapshots))
	}
	for _, name := range []string{"DE-CIX", "AMS-IX"} {
		s, ok := l.Snapshots[name]
		if !ok || len(s.Routes) == 0 || len(s.Members) == 0 {
			t.Errorf("%s snapshot incomplete", name)
		}
	}
}

// TestEveryExperimentRuns executes each registered experiment and
// checks for non-empty, section-headed output.
func TestEveryExperimentRuns(t *testing.T) {
	l := testLab(t)
	for _, name := range ExperimentNames {
		// The temporal experiments regenerate day series; keep them to
		// the cheap list here (they have their own benches).
		if name == "table4" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := l.Run(&buf, name); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if len(out) == 0 {
				t.Fatal("no output")
			}
			if !strings.Contains(out, "=====") {
				t.Error("missing section header")
			}
			// Every experiment must mention each IXP.
			for _, p := range l.Profiles {
				if !strings.Contains(out, p.IXP) {
					t.Errorf("output misses IXP %s", p.IXP)
				}
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	l := testLab(t)
	var buf bytes.Buffer
	if err := l.Run(&buf, "nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFig1OutputShape(t *testing.T) {
	l := testLab(t)
	var buf bytes.Buffer
	if err := l.Run(&buf, "fig1"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"figure1,DE-CIX,IPv4", "figure1,DE-CIX,IPv6", "defined=", "unknown="} {
		if !strings.Contains(out, want) {
			t.Errorf("fig1 output misses %q:\n%s", want, out)
		}
	}
}

func TestTable2OutputShape(t *testing.T) {
	l := testLab(t)
	var buf bytes.Buffer
	if err := l.Run(&buf, "table2"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"do-not-announce-to", "announce-only-to", "prepend-to", "blackholing"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output misses %q", want)
		}
	}
}

func TestFig7NamesCulprits(t *testing.T) {
	l := testLab(t)
	var buf bytes.Buffer
	if err := l.Run(&buf, "fig7"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Hurricane Electric") {
		t.Error("fig7 output does not name Hurricane Electric")
	}
}

func TestVisibilityReportsGap(t *testing.T) {
	l := testLab(t)
	var buf bytes.Buffer
	if err := l.Run(&buf, "visibility"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "invisible") {
		t.Errorf("visibility output unexpected:\n%s", out)
	}
	// The core claim: ~100% of action instances invisible at collectors.
	if !strings.Contains(out, "100.0% invisible") && !strings.Contains(out, "99.") {
		t.Errorf("visibility gap suspiciously low:\n%s", out)
	}
}

func TestSanitationRemovesInjectedValleys(t *testing.T) {
	l := testLab(t)
	var buf bytes.Buffer
	if err := l.Run(&buf, "sanitation"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2 removed as valleys") {
		t.Errorf("sanitation output unexpected:\n%s", buf.String())
	}
}

func TestTable1RowFromSnapshot(t *testing.T) {
	l := testLab(t)
	s := l.Snapshots["DE-CIX"]
	row := Table1RowFromSnapshot(s, "Frankfurt", "9.27 Tbps", 1072)
	if row.IXP != "DE-CIX" || row.MembersRSv4 == 0 || row.RoutesV4 == 0 {
		t.Errorf("row = %+v", row)
	}
	if row.RoutesV4 < row.PrefixesV4 {
		t.Errorf("routes (%d) < prefixes (%d)", row.RoutesV4, row.PrefixesV4)
	}
}
