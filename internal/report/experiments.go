package report

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"ixplight/internal/analysis"
	"ixplight/internal/asdb"
	"ixplight/internal/bgp"
	"ixplight/internal/collector"
	"ixplight/internal/ixpgen"
	"ixplight/internal/netutil"
	"ixplight/internal/rs"
	"ixplight/internal/sanitize"
	"ixplight/internal/telemetry"
)

// Experiment names accepted by Run: one per paper artifact, plus the
// three extension experiments (ext/large flavours, §5.6 hygiene
// what-if, collector-visibility gap).
var ExperimentNames = []string{
	"table1", "fig1", "fig2", "fig3", "fig4a", "fig4b", "fig4c",
	"table2", "sec53", "fig5", "fig6", "fig7", "table3", "table4",
	"sanitation", "extlarge", "sec56", "visibility", "intersect",
	"categories", "summary",
}

// Lab bundles the generated snapshots an experiment runs over.
type Lab struct {
	// Profiles are the IXPs under study (Table 1 order).
	Profiles []ixpgen.Profile
	// Snapshots holds the latest snapshot per IXP.
	Snapshots map[string]*collector.Snapshot
	// Series optionally holds a full date-ordered snapshot series per
	// IXP (e.g. loaded from a cmd/ixpgen dataset). When present, the
	// temporal experiments (table3, table4, sanitation) run over it
	// instead of regenerating a synthetic series.
	Series map[string][]*collector.Snapshot
	// Registry labels ASNs in rankings.
	Registry *asdb.Registry
	// Seed and Scale record how the lab was generated.
	Seed  int64
	Scale float64
	// Parallel bounds the lab's worker pools (experiment fan-out in
	// RunMany, series generation). 0 or less means
	// runtime.GOMAXPROCS(0); 1 runs everything sequentially. Results
	// are identical for any value — parallel work lands in ordered
	// slots.
	Parallel int
	// Materialize forces LoadSnapshotDir to decode full []bgp.Route
	// snapshots even for columnar binary files. By default those files
	// are indexed column-direct (analysis.IndexFromReader) and carried
	// as header-only snapshots with the index attached — byte-identical
	// experiment output, without materializing routes.
	Materialize bool
	// NoIncremental makes LoadSnapshotDir reconstruct delta chains
	// through a materializing DeltaApplier instead of advancing the
	// previous day's index in place. Output is byte-identical either
	// way; the flag exists to compare the two paths.
	NoIncremental bool
	// Telemetry, when set, records a per-experiment run-time histogram
	// (ixplight_report_experiment_seconds) and emits a
	// "report.experiment" span per Run.
	Telemetry *telemetry.Registry
	// TraceCtx, when set alongside Telemetry, parents every
	// report.experiment span under the context's active trace span —
	// cmd/analyze uses it to hang all experiments off one root
	// "analyze.run" span so a whole -exp all run is a single trace.
	// Nil means each experiment roots its own trace.
	TraceCtx context.Context
}

// workers resolves the lab's worker budget.
func (l *Lab) workers() int {
	if l.Parallel < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return l.Parallel
}

// NewLab generates the latest-snapshot lab for the given profiles.
func NewLab(profiles []ixpgen.Profile, seed int64, scale float64) (*Lab, error) {
	return NewLabParallel(profiles, seed, scale, 0)
}

// NewLabShell builds a Lab without generating any workload — the
// constructor for callers that immediately replace the snapshots via
// LoadSnapshotDir. The serving daemon reloads datasets through this
// path, so a reload pays snapshot decode, never synthetic generation.
func NewLabShell(profiles []ixpgen.Profile, seed int64, scale float64, workers int) *Lab {
	return &Lab{
		Profiles:  profiles,
		Snapshots: make(map[string]*collector.Snapshot, len(profiles)),
		Registry:  asdb.Default(),
		Seed:      seed,
		Scale:     scale,
		Parallel:  workers,
	}
}

// NewLabParallel is NewLab with an explicit worker budget: the
// per-IXP workload generation fans out across the pool. Generation is
// seeded per profile, so the lab is identical for any worker count.
func NewLabParallel(profiles []ixpgen.Profile, seed int64, scale float64, workers int) (*Lab, error) {
	lab := NewLabShell(profiles, seed, scale, workers)
	snaps := make([]*collector.Snapshot, len(profiles))
	if _, err := runPool(len(profiles), lab.workers(), func(i int) error {
		w, err := ixpgen.Generate(profiles[i], ixpgen.Options{Seed: seed, Scale: scale})
		if err != nil {
			return err
		}
		snaps[i] = w.Snapshot("2021-10-04")
		return nil
	}); err != nil {
		return nil, err
	}
	for i, p := range profiles {
		lab.Snapshots[p.IXP] = snaps[i]
	}
	return lab, nil
}

// Run executes one experiment by name, writing its paper-shaped output.
func (l *Lab) Run(w io.Writer, name string) (err error) {
	if l.Telemetry != nil {
		ctx := l.TraceCtx
		if ctx == nil {
			ctx = context.Background()
		}
		_, sp := telemetry.StartSpan(ctx, l.Telemetry, "report.experiment")
		sp.SetAttr("experiment", name)
		h := l.Telemetry.HistogramVec("ixplight_report_experiment_seconds",
			"Experiment run time by name.", nil, "experiment").With(name)
		t0 := time.Now()
		defer func() {
			h.ObserveSince(t0)
			if err != nil {
				sp.SetAttr("error", err.Error())
			}
			sp.End()
		}()
	}
	return l.run(w, name)
}

// run is the uninstrumented experiment dispatch.
func (l *Lab) run(w io.Writer, name string) error {
	switch name {
	case "table1":
		return l.runTable1(w)
	case "fig1":
		return l.runMix(w, "Figure 1 — IXP-defined vs unknown communities", WriteFig1)
	case "fig2":
		return l.runMix(w, "Figure 2 — standard vs extended vs large", WriteFig2)
	case "fig3":
		return l.runFig3(w)
	case "fig4a":
		return l.runFig4a(w)
	case "fig4b":
		return l.runFig4b(w)
	case "fig4c":
		return l.runFig4c(w)
	case "table2":
		return l.runTable2(w)
	case "sec53":
		return l.runSec53(w)
	case "fig5":
		return l.runFig5(w)
	case "fig6":
		return l.runFig6(w)
	case "fig7":
		return l.runFig7(w)
	case "table3":
		return l.runStability(w, "Table 3 — daily variation over one week", 7, nil)
	case "table4":
		return l.runStability(w, "Table 4 — weekly variation over twelve weeks", 84, nil)
	case "sanitation":
		return l.runSanitation(w)
	case "extlarge":
		return l.runExtLarge(w)
	case "sec56":
		return l.runHygiene(w)
	case "visibility":
		return l.runVisibility(w)
	case "intersect":
		return l.runIntersect(w)
	case "categories":
		return l.runCategories(w)
	case "summary":
		return l.runSummary(w)
	default:
		return fmt.Errorf("report: unknown experiment %q (known: %v)", name, ExperimentNames)
	}
}

func (l *Lab) runTable1(w io.Writer) error {
	Section(w, "Table 1 — the IXPs in numbers")
	var rows []Table1Row
	for _, p := range l.Profiles {
		rows = append(rows, Table1RowFromSnapshot(
			l.Snapshots[p.IXP], p.Location, p.AvgTraffic,
			int(float64(p.TotalMembers)*l.Scale)))
	}
	WriteTable1(w, rows)
	return nil
}

func (l *Lab) runMix(w io.Writer, title string, emit func(io.Writer, string, analysis.Mix, analysis.Mix)) error {
	Section(w, title)
	for _, p := range l.Profiles {
		s := l.Snapshots[p.IXP]
		emit(w, p.IXP, analysis.ComputeMix(s, p.Scheme, false), analysis.ComputeMix(s, p.Scheme, true))
	}
	return nil
}

func (l *Lab) runFig3(w io.Writer) error {
	Section(w, "Figure 3 — action vs informational communities")
	for _, p := range l.Profiles {
		s := l.Snapshots[p.IXP]
		a4, i4 := analysis.ActionInfoSplit(s, p.Scheme, false)
		a6, i6 := analysis.ActionInfoSplit(s, p.Scheme, true)
		WriteFig3(w, p.IXP, "IPv4", a4, i4)
		WriteFig3(w, p.IXP, "IPv6", a6, i6)
	}
	return nil
}

func (l *Lab) runFig4a(w io.Writer) error {
	Section(w, "Figure 4a — ASes and routes using action communities")
	for _, p := range l.Profiles {
		s := l.Snapshots[p.IXP]
		WriteFig4a(w, p.IXP, "IPv4", analysis.ComputeUsage(s, p.Scheme, false))
		WriteFig4a(w, p.IXP, "IPv6", analysis.ComputeUsage(s, p.Scheme, true))
	}
	return nil
}

func (l *Lab) runFig4b(w io.Writer) error {
	Section(w, "Figure 4b — action community usage concentration")
	for _, p := range l.Profiles {
		s := l.Snapshots[p.IXP]
		counts := analysis.PerASActionCounts(s, p.Scheme, false)
		u := analysis.ComputeUsage(s, p.Scheme, false)
		WriteFig4b(w, p.IXP, analysis.ConcentrationCDF(counts, u.MembersAtRS))
	}
	return nil
}

func (l *Lab) runFig4c(w io.Writer) error {
	Section(w, "Figure 4c — route share vs community share per AS")
	for _, p := range l.Profiles {
		WriteFig4c(w, p.IXP, analysis.RouteCommCorrelation(l.Snapshots[p.IXP], p.Scheme, false))
	}
	return nil
}

func (l *Lab) runTable2(w io.Writer) error {
	Section(w, "Table 2 — ASes using each action community type")
	for _, p := range l.Profiles {
		s := l.Snapshots[p.IXP]
		WriteTable2(w, p.IXP, "IPv4", analysis.ASesPerActionType(s, p.Scheme, false))
		WriteTable2(w, p.IXP, "IPv6", analysis.ASesPerActionType(s, p.Scheme, true))
	}
	return nil
}

func (l *Lab) runSec53(w io.Writer) error {
	Section(w, "§5.3 — action community occurrences per type")
	for _, p := range l.Profiles {
		s := l.Snapshots[p.IXP]
		WriteSec53(w, p.IXP, "IPv4", analysis.OccurrencesPerType(s, p.Scheme, false))
		WriteSec53(w, p.IXP, "IPv6", analysis.OccurrencesPerType(s, p.Scheme, true))
	}
	return nil
}

func (l *Lab) runFig5(w io.Writer) error {
	Section(w, "Figure 5 — top-20 action communities (IPv4)")
	for _, p := range l.Profiles {
		top := analysis.TopActionCommunities(l.Snapshots[p.IXP], p.Scheme, false, 20)
		WriteTopCommunities(w, "Figure 5", p.IXP, top, l.Registry)
	}
	return nil
}

func (l *Lab) runFig6(w io.Writer) error {
	Section(w, "Figure 6 — top-20 communities targeting non-RS members (IPv4)")
	for _, p := range l.Profiles {
		nm := analysis.ComputeNonMemberTargeting(l.Snapshots[p.IXP], p.Scheme, false, 20)
		fmt.Fprintf(w, "%s: %.1f%% of action instances (%d of %d) target non-RS members\n",
			p.IXP, 100*nm.Share(), nm.Instances, nm.Total)
		WriteTopCommunities(w, "Figure 6", p.IXP, nm.Top, l.Registry)
	}
	return nil
}

func (l *Lab) runFig7(w io.Writer) error {
	Section(w, "Figure 7 — top-10 ASes targeting non-RS members (IPv4)")
	for _, p := range l.Profiles {
		s := l.Snapshots[p.IXP]
		nm := analysis.ComputeNonMemberTargeting(s, p.Scheme, false, 0)
		culprits := analysis.CulpritRanking(s, p.Scheme, false, 10)
		WriteCulprits(w, p.IXP, culprits, nm.Instances, l.Registry)
	}
	return nil
}

// runStability reports Tables 3/4 over a daily series — the loaded
// dataset when the lab has one, a freshly generated series otherwise.
func (l *Lab) runStability(w io.Writer, title string, days int, valleys []int) error {
	Section(w, title)
	for _, p := range l.Profiles {
		snaps, err := l.series(p, days, valleys)
		if err != nil {
			return err
		}
		// The paper computes Appendix A over the sanitized dataset:
		// collection valleys are removed before measuring variation.
		snaps, _ = sanitize.Clean(snaps, sanitize.Options{})
		if len(snaps) > days {
			snaps = snaps[:days]
		}
		if days > 7 {
			snaps = analysis.WeeklyRepresentatives(snaps)
		}
		WriteStability(w, p.IXP+"-v4", analysis.Stability(snaps, false))
		WriteStability(w, p.IXP+"-v6", analysis.Stability(snaps, true))
	}
	return nil
}

// series returns the lab's stored series for p, or generates one.
func (l *Lab) series(p ixpgen.Profile, days int, valleys []int) ([]*collector.Snapshot, error) {
	if stored := l.Series[p.IXP]; len(stored) > 0 {
		return stored, nil
	}
	// Day generation is independently seeded per day, so the series
	// fans out across the lab's pool with each day landing in its own
	// slot — the same date-ordered series for any worker count.
	opts := ixpgen.TemporalOptions{Seed: l.Seed, Scale: l.Scale, Days: days, ValleyDays: valleys}
	snaps := make([]*collector.Snapshot, days)
	if _, err := runPool(days, l.workers(), func(d int) error {
		wl, date, err := ixpgen.GenerateDay(p, opts, d)
		if err != nil {
			return err
		}
		snaps[d] = wl.Snapshot(date)
		return nil
	}); err != nil {
		return nil, err
	}
	return snaps, nil
}

// runExtLarge reports the extension analysis: action instances by
// community flavour, including wide (32-bit) targets only large
// communities can express.
func (l *Lab) runExtLarge(w io.Writer) error {
	Section(w, "Extension — action communities beyond the standard flavour")
	for _, p := range l.Profiles {
		s := l.Snapshots[p.IXP]
		f := analysis.ComputeFlavourActions(s, p.Scheme, false)
		fmt.Fprintf(w, "%s: standard %d action / %d info; extended %d / %d; large %d / %d; wide-target large actions %d\n",
			p.IXP, f.StandardAction, f.StandardInfo,
			f.ExtendedAction, f.ExtendedInfo,
			f.LargeAction, f.LargeInfo, f.LargeWideTargets)
	}
	return nil
}

// runHygiene reports the §5.6 what-if: the impact of a "too many
// communities" import filter at several thresholds.
func (l *Lab) runHygiene(w io.Writer) error {
	Section(w, "§5.6 — impact of a 'too many communities' filter")
	thresholds := []int{10, 20, 40, 80}
	for _, p := range l.Profiles {
		s := l.Snapshots[p.IXP]
		pct := analysis.CommunityCountPercentiles(s, false, []float64{50, 90, 99, 100})
		fmt.Fprintf(w, "%s: communities per route p50=%d p90=%d p99=%d max=%d\n",
			p.IXP, pct[0], pct[1], pct[2], pct[3])
		for _, h := range analysis.HygieneFilterImpact(s, false, thresholds) {
			fmt.Fprintf(w, "  threshold %3d: drops %5.1f%% of routes, sheds %5.1f%% of community load\n",
				h.Threshold, 100*h.DropShare(), 100*h.LoadShare())
		}
	}
	return nil
}

// runVisibility reports the methodological experiment behind the
// paper's vantage-point choice: the share of action communities that
// a classic route collector never sees because the RS scrubs them.
func (l *Lab) runVisibility(w io.Writer) error {
	Section(w, "Methodology — action community visibility: looking glass vs route collector")
	for _, p := range l.Profiles {
		server, err := rs.New(rs.Config{Scheme: p.Scheme, ScrubActions: true})
		if err != nil {
			return err
		}
		wl, err := ixpgen.Generate(p, ixpgen.Options{Seed: l.Seed, Scale: min(l.Scale, 0.01)})
		if err != nil {
			return err
		}
		if err := wl.Populate(server); err != nil {
			return err
		}
		// The collector peers like a member and receives the post-action
		// export; the LG view is the union of all Adj-RIB-Ins.
		const collectorASN = 65010
		if err := server.AddPeer(rs.Peer{ASN: collectorASN, Name: "route-collector",
			AddrV4: netutil.PeerAddrV4(9999), AddrV6: netutil.PeerAddrV6(9999),
			IPv4: true, IPv6: true}); err != nil {
			return err
		}
		var ingress []bgp.Route
		for _, peer := range server.Peers() {
			ingress = append(ingress, server.AcceptedRoutes(peer.ASN)...)
		}
		exported := server.ExportTo(collectorASN)
		v := analysis.CompareVisibility(ingress, exported, p.Scheme)
		fmt.Fprintf(w, "%s: LG sees %d action instances; collector sees %d over %d routes → %.1f%% invisible\n",
			p.IXP, v.LGActionInstances, v.CollectorActionInstances, v.CollectorRoutes,
			100*v.VisibilityGap())
	}
	return nil
}

// runIntersect reports the §5.4 cross-IXP target overlaps.
func (l *Lab) runIntersect(w io.Writer) error {
	Section(w, "§5.4 — intersection of top-20 targets across IXPs")
	var ixps []analysis.IXPSnapshot
	for _, p := range l.Profiles {
		ixps = append(ixps, analysis.IXPSnapshot{Snapshot: l.Snapshots[p.IXP], Scheme: p.Scheme})
	}
	pairs, common := analysis.TargetIntersections(ixps, false, 20)
	for _, pair := range pairs {
		fmt.Fprintf(w, "%s ∩ %s: %d shared targets (%s)\n",
			pair.IXPA, pair.IXPB, len(pair.Shared), nameList(pair.Shared, l.Registry, 6))
	}
	fmt.Fprintf(w, "shared by all %d IXPs: %d targets (%s)\n",
		len(ixps), len(common), nameList(common, l.Registry, 10))
	return nil
}

// runSummary prints the paper's abstract-level findings as measured
// over this lab — the cross-IXP ranges of the three headline numbers.
func (l *Lab) runSummary(w io.Writer) error {
	Section(w, "Headline findings (cf. the paper's abstract)")
	type rangeAcc struct{ min, max float64 }
	update := func(r *rangeAcc, v float64) {
		if r.min == 0 && r.max == 0 {
			r.min, r.max = v, v
		}
		if v < r.min {
			r.min = v
		}
		if v > r.max {
			r.max = v
		}
	}
	var asShare, actionShare, nmShare rangeAcc
	names := ""
	for i, p := range l.Profiles {
		if i > 0 {
			names += ", "
		}
		names += p.IXP
		s := l.Snapshots[p.IXP]
		update(&asShare, analysis.ComputeUsage(s, p.Scheme, false).ASShare())
		update(&actionShare, analysis.ActionShare(s, p.Scheme, false))
		update(&nmShare, analysis.ComputeNonMemberTargeting(s, p.Scheme, false, 0).Share())
	}
	fmt.Fprintf(w, "over %s (IPv4):\n", names)
	fmt.Fprintf(w, "members using action communities in ≥1 route: %.1f%%–%.1f%% (paper: >35.7%%, up to 54.1%%)\n",
		100*asShare.min, 100*asShare.max)
	fmt.Fprintf(w, "action share of IXP-defined standard communities: %.1f%%–%.1f%% (paper: ≥66.6%%)\n",
		100*actionShare.min, 100*actionShare.max)
	fmt.Fprintf(w, "action communities targeting non-RS members: %.1f%%–%.1f%% (paper: ≥31.8%%)\n",
		100*nmShare.min, 100*nmShare.max)
	return nil
}

// runCategories reports the §5.4 target-category breakdown.
func (l *Lab) runCategories(w io.Writer) error {
	Section(w, "§5.4 — targeted ASes by operator category (IPv4)")
	for _, p := range l.Profiles {
		b := analysis.ComputeCategoryBreakdown(l.Snapshots[p.IXP], p.Scheme, l.Registry, false)
		fmt.Fprintf(w, "%s (content+cloud share: all %.1f%%, non-members %.1f%%)\n",
			p.IXP, 100*analysis.ContentShare(b.All), 100*analysis.ContentShare(b.NonMembers))
		for _, row := range b.NonMembers {
			if row.Category == asdb.Unknown {
				fmt.Fprintf(w, "  non-member %-18s %8d (%.1f%%)  [synthetic tail]\n",
					row.Category, row.Instances, 100*row.Share)
				continue
			}
			fmt.Fprintf(w, "  non-member %-18s %8d (%.1f%%)\n", row.Category, row.Instances, 100*row.Share)
		}
	}
	return nil
}

// nameList renders up to max AS names.
func nameList(asns []uint32, reg *asdb.Registry, max int) string {
	if len(asns) == 0 {
		return "none"
	}
	out := ""
	for i, asn := range asns {
		if i == max {
			out += ", …"
			break
		}
		if i > 0 {
			out += ", "
		}
		out += reg.Name(asn)
	}
	return out
}

func (l *Lab) runSanitation(w io.Writer) error {
	Section(w, "§3 — sanitation: valley detection")
	for _, p := range l.Profiles {
		// Two injected collection failures when generating; a loaded
		// dataset carries whatever valleys its producer injected.
		snaps, err := l.series(p, 21, []int{5, 13})
		if err != nil {
			return err
		}
		kept, removed := sanitize.Clean(snaps, sanitize.Options{})
		fmt.Fprintf(w, "%s: %d snapshots, %d removed as valleys (%.1f%%), %d kept\n",
			p.IXP, len(snaps), removed, 100*float64(removed)/float64(len(snaps)), len(kept))
	}
	return nil
}
