package report

import (
	"bytes"
	"testing"

	"ixplight/internal/collector"
	"ixplight/internal/ixpgen"
)

// TestLoadSnapshotDirCodecIndependence pins the analyze acceptance
// contract: running the experiment battery over a binary-encoded
// snapshot directory produces byte-identical output to running it
// over the same snapshots stored as JSON. The two labs share one
// generated series; only the on-disk codec differs.
func TestLoadSnapshotDirCodecIndependence(t *testing.T) {
	const (
		seed  = 42
		scale = 0.004
		days  = 3
	)
	profiles := ixpgen.BigFour()[:2]
	jsonDir := t.TempDir()
	binDir := t.TempDir()
	for _, p := range profiles {
		opts := ixpgen.TemporalOptions{Seed: seed, Scale: scale, Days: days}
		for d := 0; d < days; d++ {
			w, date, err := ixpgen.GenerateDay(p, opts, d)
			if err != nil {
				t.Fatal(err)
			}
			snap := w.Snapshot(date)
			if _, err := collector.SaveSnapshot(jsonDir, snap, collector.CodecJSON); err != nil {
				t.Fatal(err)
			}
			if _, err := collector.SaveSnapshot(binDir, snap, collector.CodecBinary); err != nil {
				t.Fatal(err)
			}
		}
	}

	run := func(dir string) [][]byte {
		lab, err := NewLabParallel(profiles, seed, scale, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := lab.LoadSnapshotDir(dir); err != nil {
			t.Fatal(err)
		}
		outs, err := lab.RunMany(ExperimentNames)
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}
	jsonOuts := run(jsonDir)
	binOuts := run(binDir)
	for i := range jsonOuts {
		if !bytes.Equal(jsonOuts[i], binOuts[i]) {
			t.Errorf("%s: output differs between JSON and binary snapshot dirs", ExperimentNames[i])
		}
	}
}

// TestLoadSnapshotDirColumnDirect pins the tentpole's end-to-end
// contract: loading a binary snapshot directory column-direct (the
// default) produces byte-identical experiment output to loading it
// with Materialize set — and really does skip materialization (the
// loaded snapshots are header-only with a pinned index).
func TestLoadSnapshotDirColumnDirect(t *testing.T) {
	const (
		seed  = 42
		scale = 0.004
		days  = 3
	)
	profiles := ixpgen.BigFour()[:2]
	binDir := t.TempDir()
	for _, p := range profiles {
		opts := ixpgen.TemporalOptions{Seed: seed, Scale: scale, Days: days}
		for d := 0; d < days; d++ {
			w, date, err := ixpgen.GenerateDay(p, opts, d)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := collector.SaveSnapshot(binDir, w.Snapshot(date), collector.CodecBinary); err != nil {
				t.Fatal(err)
			}
		}
	}

	run := func(materialize bool) (*Lab, [][]byte) {
		lab, err := NewLabParallel(profiles, seed, scale, 2)
		if err != nil {
			t.Fatal(err)
		}
		lab.Materialize = materialize
		if err := lab.LoadSnapshotDir(binDir); err != nil {
			t.Fatal(err)
		}
		outs, err := lab.RunMany(ExperimentNames)
		if err != nil {
			t.Fatal(err)
		}
		return lab, outs
	}
	colLab, colOuts := run(false)
	matLab, matOuts := run(true)

	for _, p := range profiles {
		if colLab.Snapshots[p.IXP].Routes != nil {
			t.Errorf("%s: column-direct load materialized routes", p.IXP)
		}
		if matLab.Snapshots[p.IXP].Routes == nil {
			t.Errorf("%s: Materialize load produced no routes", p.IXP)
		}
		for _, s := range colLab.Series[p.IXP] {
			if s.Routes != nil {
				t.Errorf("%s %s: column-direct series snapshot materialized routes", p.IXP, s.Date)
			}
		}
	}
	for i := range colOuts {
		if !bytes.Equal(colOuts[i], matOuts[i]) {
			t.Errorf("%s: output differs between column-direct and materialized loading", ExperimentNames[i])
		}
	}
}

// TestLoadSnapshotDirSeries checks the loader's shape contract:
// per-IXP series sorted by date, latest snapshot promoted to the
// point-in-time slot, mixed codecs in one directory.
func TestLoadSnapshotDirSeries(t *testing.T) {
	dir := t.TempDir()
	mk := func(ixp, date string) *collector.Snapshot {
		return &collector.Snapshot{IXP: ixp, Date: date}
	}
	for _, c := range []struct {
		s     *collector.Snapshot
		codec collector.Codec
	}{
		{mk("LINX", "2021-10-06"), collector.CodecBinary},
		{mk("LINX", "2021-10-04"), collector.CodecJSON},
		{mk("LINX", "2021-10-05"), collector.CodecGobGzip},
		{mk("DE-CIX", "2021-10-04"), collector.CodecBinary},
	} {
		if _, err := collector.SaveSnapshot(dir, c.s, c.codec); err != nil {
			t.Fatal(err)
		}
	}
	lab, err := NewLabParallel(ixpgen.BigFour()[:1], 1, 0.002, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.LoadSnapshotDir(dir); err != nil {
		t.Fatal(err)
	}
	linx := lab.Series["LINX"]
	if len(linx) != 3 || linx[0].Date != "2021-10-04" || linx[2].Date != "2021-10-06" {
		t.Errorf("LINX series wrong: %+v", linx)
	}
	if lab.Snapshots["LINX"].Date != "2021-10-06" || lab.Snapshots["DE-CIX"].Date != "2021-10-04" {
		t.Errorf("latest promotion wrong")
	}
}
