package report

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ixplight/internal/collector"
	"ixplight/internal/ixpgen"
)

// TestLoadSnapshotDirCodecIndependence pins the analyze acceptance
// contract: running the experiment battery over a binary-encoded
// snapshot directory produces byte-identical output to running it
// over the same snapshots stored as JSON. The two labs share one
// generated series; only the on-disk codec differs.
func TestLoadSnapshotDirCodecIndependence(t *testing.T) {
	const (
		seed  = 42
		scale = 0.004
		days  = 3
	)
	profiles := ixpgen.BigFour()[:2]
	jsonDir := t.TempDir()
	binDir := t.TempDir()
	for _, p := range profiles {
		opts := ixpgen.TemporalOptions{Seed: seed, Scale: scale, Days: days}
		for d := 0; d < days; d++ {
			w, date, err := ixpgen.GenerateDay(p, opts, d)
			if err != nil {
				t.Fatal(err)
			}
			snap := w.Snapshot(date)
			if _, err := collector.SaveSnapshot(jsonDir, snap, collector.CodecJSON); err != nil {
				t.Fatal(err)
			}
			if _, err := collector.SaveSnapshot(binDir, snap, collector.CodecBinary); err != nil {
				t.Fatal(err)
			}
		}
	}

	run := func(dir string) [][]byte {
		lab, err := NewLabParallel(profiles, seed, scale, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := lab.LoadSnapshotDir(dir); err != nil {
			t.Fatal(err)
		}
		outs, err := lab.RunMany(ExperimentNames)
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}
	jsonOuts := run(jsonDir)
	binOuts := run(binDir)
	for i := range jsonOuts {
		if !bytes.Equal(jsonOuts[i], binOuts[i]) {
			t.Errorf("%s: output differs between JSON and binary snapshot dirs", ExperimentNames[i])
		}
	}
}

// TestLoadSnapshotDirColumnDirect pins the tentpole's end-to-end
// contract: loading a binary snapshot directory column-direct (the
// default) produces byte-identical experiment output to loading it
// with Materialize set — and really does skip materialization (the
// loaded snapshots are header-only with a pinned index).
func TestLoadSnapshotDirColumnDirect(t *testing.T) {
	const (
		seed  = 42
		scale = 0.004
		days  = 3
	)
	profiles := ixpgen.BigFour()[:2]
	binDir := t.TempDir()
	for _, p := range profiles {
		opts := ixpgen.TemporalOptions{Seed: seed, Scale: scale, Days: days}
		for d := 0; d < days; d++ {
			w, date, err := ixpgen.GenerateDay(p, opts, d)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := collector.SaveSnapshot(binDir, w.Snapshot(date), collector.CodecBinary); err != nil {
				t.Fatal(err)
			}
		}
	}

	run := func(materialize bool) (*Lab, [][]byte) {
		lab, err := NewLabParallel(profiles, seed, scale, 2)
		if err != nil {
			t.Fatal(err)
		}
		lab.Materialize = materialize
		if err := lab.LoadSnapshotDir(binDir); err != nil {
			t.Fatal(err)
		}
		outs, err := lab.RunMany(ExperimentNames)
		if err != nil {
			t.Fatal(err)
		}
		return lab, outs
	}
	colLab, colOuts := run(false)
	matLab, matOuts := run(true)

	for _, p := range profiles {
		if colLab.Snapshots[p.IXP].Routes != nil {
			t.Errorf("%s: column-direct load materialized routes", p.IXP)
		}
		if matLab.Snapshots[p.IXP].Routes == nil {
			t.Errorf("%s: Materialize load produced no routes", p.IXP)
		}
		for _, s := range colLab.Series[p.IXP] {
			if s.Routes != nil {
				t.Errorf("%s %s: column-direct series snapshot materialized routes", p.IXP, s.Date)
			}
		}
	}
	for i := range colOuts {
		if !bytes.Equal(colOuts[i], matOuts[i]) {
			t.Errorf("%s: output differs between column-direct and materialized loading", ExperimentNames[i])
		}
	}
}

// TestLoadSnapshotDirSeries checks the loader's shape contract:
// per-IXP series sorted by date, latest snapshot promoted to the
// point-in-time slot, mixed codecs in one directory.
func TestLoadSnapshotDirSeries(t *testing.T) {
	dir := t.TempDir()
	mk := func(ixp, date string) *collector.Snapshot {
		return &collector.Snapshot{IXP: ixp, Date: date}
	}
	for _, c := range []struct {
		s     *collector.Snapshot
		codec collector.Codec
	}{
		{mk("LINX", "2021-10-06"), collector.CodecBinary},
		{mk("LINX", "2021-10-04"), collector.CodecJSON},
		{mk("LINX", "2021-10-05"), collector.CodecGobGzip},
		{mk("DE-CIX", "2021-10-04"), collector.CodecBinary},
	} {
		if _, err := collector.SaveSnapshot(dir, c.s, c.codec); err != nil {
			t.Fatal(err)
		}
	}
	lab, err := NewLabParallel(ixpgen.BigFour()[:1], 1, 0.002, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.LoadSnapshotDir(dir); err != nil {
		t.Fatal(err)
	}
	linx := lab.Series["LINX"]
	if len(linx) != 3 || linx[0].Date != "2021-10-04" || linx[2].Date != "2021-10-06" {
		t.Errorf("LINX series wrong: %+v", linx)
	}
	if lab.Snapshots["LINX"].Date != "2021-10-06" || lab.Snapshots["DE-CIX"].Date != "2021-10-04" {
		t.Errorf("latest promotion wrong")
	}
}

// writeDeltaChain evolves a daily series for each profile into dir as
// a delta chain (day 0 full binary, every later day a .delta), and
// the same days into fullDir as full binary files. Returns the
// materialized series per IXP.
func writeDeltaChain(t *testing.T, profiles []ixpgen.Profile, dir, fullDir string, o ixpgen.TemporalOptions) map[string][]*collector.Snapshot {
	t.Helper()
	series := map[string][]*collector.Snapshot{}
	for _, p := range profiles {
		var enc *collector.DeltaEncoder
		err := ixpgen.EvolveSeries(p, o, 0.05, func(day int, s *collector.Snapshot) error {
			series[p.IXP] = append(series[p.IXP], s)
			if _, err := collector.SaveSnapshot(fullDir, s, collector.CodecBinary); err != nil {
				return err
			}
			if day == 0 {
				var err error
				enc, err = collector.NewDeltaEncoder(s)
				if err != nil {
					return err
				}
				_, err2 := collector.SaveSnapshot(dir, s, collector.CodecBinary)
				return err2
			}
			buf, err := enc.Encode(s)
			if err != nil {
				return err
			}
			return os.WriteFile(filepath.Join(dir, s.IXP+"-"+s.Date+collector.DeltaExt), buf, 0o644)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return series
}

// TestLoadSnapshotDirDeltaChain pins the delta tentpole end to end:
// loading a chain directory (one full day plus deltas) produces
// byte-identical experiment output to loading the same days as full
// files — on the default incremental path (which never materializes a
// route), on the -no-incremental applier path, and fully materialized.
func TestLoadSnapshotDirDeltaChain(t *testing.T) {
	const (
		seed  = 42
		scale = 0.004
	)
	profiles := ixpgen.BigFour()[:2]
	o := ixpgen.TemporalOptions{Seed: seed, Scale: scale, Days: 5, ValleyDays: []int{3}}
	chainDir := t.TempDir()
	fullDir := t.TempDir()
	series := writeDeltaChain(t, profiles, chainDir, fullDir, o)

	run := func(dir string, cfg func(*Lab)) (*Lab, [][]byte) {
		lab, err := NewLabParallel(profiles, seed, scale, 2)
		if err != nil {
			t.Fatal(err)
		}
		if cfg != nil {
			cfg(lab)
		}
		if err := lab.LoadSnapshotDir(dir); err != nil {
			t.Fatal(err)
		}
		outs, err := lab.RunMany(ExperimentNames)
		if err != nil {
			t.Fatal(err)
		}
		return lab, outs
	}

	fullLab, fullOuts := run(fullDir, nil)
	incLab, incOuts := run(chainDir, nil)
	appLab, appOuts := run(chainDir, func(l *Lab) { l.NoIncremental = true })
	_, matOuts := run(chainDir, func(l *Lab) { l.Materialize = true })

	for i := range fullOuts {
		if !bytes.Equal(fullOuts[i], incOuts[i]) {
			t.Errorf("%s: incremental chain output differs from full files", ExperimentNames[i])
		}
		if !bytes.Equal(fullOuts[i], appOuts[i]) {
			t.Errorf("%s: NoIncremental chain output differs from full files", ExperimentNames[i])
		}
		if !bytes.Equal(fullOuts[i], matOuts[i]) {
			t.Errorf("%s: Materialize chain output differs from full files", ExperimentNames[i])
		}
	}

	for _, p := range profiles {
		want := series[p.IXP]
		for _, lab := range []*Lab{fullLab, incLab, appLab} {
			got := lab.Series[p.IXP]
			if len(got) != len(want) {
				t.Fatalf("%s: series length %d, want %d", p.IXP, len(got), len(want))
			}
			for d := range got {
				if got[d].Date != want[d].Date {
					t.Errorf("%s day %d: date %q, want %q", p.IXP, d, got[d].Date, want[d].Date)
				}
			}
		}
		// The incremental chain never materializes a route.
		for _, s := range incLab.Series[p.IXP] {
			if s.Routes != nil {
				t.Errorf("%s %s: incremental chain materialized routes", p.IXP, s.Date)
			}
		}
		// The applier path reconstructs the exact snapshots.
		for d, s := range appLab.Series[p.IXP] {
			if d > 0 && !reflect.DeepEqual(s, want[d]) {
				t.Errorf("%s day %d: applier-reconstructed snapshot diverges", p.IXP, d)
			}
		}
	}
}

// TestLoadSnapshotDirDeltaMissingBase pins the failure mode: a chain
// whose base snapshot is absent from the directory is an error, not a
// silently dropped day.
func TestLoadSnapshotDirDeltaMissingBase(t *testing.T) {
	profiles := ixpgen.BigFour()[:1]
	o := ixpgen.TemporalOptions{Seed: 7, Scale: 0.002, Days: 3}
	chainDir := t.TempDir()
	writeDeltaChain(t, profiles, chainDir, t.TempDir(), o)
	ents, err := os.ReadDir(chainDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), collector.DeltaExt) {
			if err := os.Remove(filepath.Join(chainDir, e.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}
	lab, err := NewLabParallel(profiles, 7, 0.002, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.LoadSnapshotDir(chainDir); err == nil {
		t.Fatal("loading a delta chain without its base succeeded")
	} else if !strings.Contains(err.Error(), "no snapshot for base day") {
		t.Fatalf("unexpected error: %v", err)
	}
}
