// Package netutil provides address-plane helpers shared by the route
// server and the workload generator: bogon prefix and ASN detection
// (the route-server import filters the paper's §3 describes) and
// deterministic prefix synthesis for the simulator.
package netutil

import (
	"fmt"
	"net/netip"
)

// bogonV4 lists IPv4 space that must never appear in a routing table
// (RFC 1122, RFC 1918, RFC 3927, RFC 5737, RFC 6598, ...). Route
// servers reject announcements covered by any of these.
var bogonV4 = mustPrefixes(
	"0.0.0.0/8",
	"10.0.0.0/8",
	"100.64.0.0/10",
	"127.0.0.0/8",
	"169.254.0.0/16",
	"172.16.0.0/12",
	"192.0.0.0/24",
	"192.0.2.0/24",
	"192.168.0.0/16",
	"198.18.0.0/15",
	"198.51.100.0/24",
	"203.0.113.0/24",
	"224.0.0.0/4",
	"240.0.0.0/4",
)

// bogonV6 lists the equivalent IPv6 bogon space. 2001:db8::/32 is
// deliberately not included: this simulator numbers its synthetic
// Internet out of the documentation prefix, exactly so that nothing it
// generates can collide with real routable space.
var bogonV6 = mustPrefixes(
	"::/8",
	"100::/64",
	"2001::/33",
	"fc00::/7",
	"fe80::/10",
	"ff00::/8",
)

func mustPrefixes(ss ...string) []netip.Prefix {
	ps := make([]netip.Prefix, len(ss))
	for i, s := range ss {
		ps[i] = netip.MustParsePrefix(s)
	}
	return ps
}

// IsBogonPrefix reports whether p falls inside reserved address space.
func IsBogonPrefix(p netip.Prefix) bool {
	addr := p.Addr()
	table := bogonV4
	if addr.Is6() {
		table = bogonV6
	}
	for _, b := range table {
		if b.Overlaps(p) {
			return true
		}
	}
	return false
}

// IsBogonASN reports whether asn is reserved (RFC 7607 zero,
// RFC 5398 documentation ranges, RFC 6996 private use, RFC 7300 last,
// or the 4-octet documentation/private ranges).
func IsBogonASN(asn uint32) bool {
	switch {
	case asn == 0:
		return true
	case asn == 23456: // AS_TRANS must never originate routes
		return true
	case asn >= 64496 && asn <= 64511: // documentation (RFC 5398)
		return true
	case asn >= 65536 && asn <= 65551: // documentation (RFC 5398)
		return true
	case asn == 65535 || asn == 4294967295: // last ASNs (RFC 7300)
		return true
	case asn >= 4200000000 && asn <= 4294967294: // private (RFC 6996)
		return true
	}
	return false
}

// PrivateASN reports whether asn is in the RFC 6996 16-bit private
// range used by this simulator for IXP infrastructure.
func PrivateASN(asn uint32) bool {
	return asn >= 64512 && asn <= 65534
}

// SyntheticV4Prefix deterministically derives the i-th /24 inside the
// simulator's synthetic IPv4 space. The space is carved from 1.0.0.0/8
// upward, skipping bogon territory by construction: index i maps to
// 1.0.0.0 + i*256.
func SyntheticV4Prefix(i int) netip.Prefix {
	base := uint32(1 << 24) // 1.0.0.0
	v := base + uint32(i)*256
	a := [4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
	return netip.PrefixFrom(netip.AddrFrom4(a), 24)
}

// SyntheticV6Prefix deterministically derives the i-th /48 inside
// 2400::/12-style synthetic space (we use 2a10::/16 and count up in
// /48 units).
func SyntheticV6Prefix(i int) netip.Prefix {
	var a [16]byte
	a[0], a[1] = 0x2a, 0x10
	a[2] = byte(i >> 24)
	a[3] = byte(i >> 16)
	a[4] = byte(i >> 8)
	a[5] = byte(i)
	return netip.PrefixFrom(netip.AddrFrom16(a), 48)
}

// PeerAddrV4 returns the deterministic IXP-LAN IPv4 address of the
// idx-th peer (the route server itself is index 0). IXP peering LANs
// are conventionally a /22-ish shared subnet; we synthesise one from
// 193.239.x.y which keeps addresses plausible and collision-free for
// up to 64k peers.
func PeerAddrV4(idx int) netip.Addr {
	return netip.AddrFrom4([4]byte{193, 239, byte(idx >> 8), byte(idx)})
}

// PeerAddrV6 returns the deterministic IXP-LAN IPv6 address of the
// idx-th peer.
func PeerAddrV6(idx int) netip.Addr {
	var a [16]byte
	a[0], a[1], a[2], a[3] = 0x20, 0x01, 0x7f, 0x8b
	a[14] = byte(idx >> 8)
	a[15] = byte(idx)
	return netip.AddrFrom16(a)
}

// FamilyName returns "IPv4" or "IPv6" for a prefix, the label the
// paper's tables use.
func FamilyName(p netip.Prefix) string {
	if p.Addr().Is6() {
		return "IPv6"
	}
	return "IPv4"
}

// CheckPrefixBounds enforces the route-server acceptance window the
// paper describes: IPv4 more specific than /24 or broader than /8 is
// filtered (and the analogous /48–/16 window for IPv6).
func CheckPrefixBounds(p netip.Prefix) error {
	if p.Addr().Is4() {
		if p.Bits() > 24 {
			return fmt.Errorf("netutil: %s too specific (> /24)", p)
		}
		if p.Bits() < 8 {
			return fmt.Errorf("netutil: %s too broad (< /8)", p)
		}
		return nil
	}
	if p.Bits() > 48 {
		return fmt.Errorf("netutil: %s too specific (> /48)", p)
	}
	if p.Bits() < 16 {
		return fmt.Errorf("netutil: %s too broad (< /16)", p)
	}
	return nil
}
