package netutil

import (
	"net/netip"
	"testing"
)

func TestIsBogonPrefix(t *testing.T) {
	bogons := []string{
		"10.0.0.0/8", "10.1.2.0/24", "192.168.1.0/24", "127.0.0.1/32",
		"100.64.0.0/10", "224.0.0.0/8", "0.0.0.0/0",
		"fe80::/64", "fc00::/8", "::1/128", "ff02::/16",
	}
	for _, s := range bogons {
		if !IsBogonPrefix(netip.MustParsePrefix(s)) {
			t.Errorf("IsBogonPrefix(%s) = false, want true", s)
		}
	}
	clean := []string{
		"1.0.0.0/24", "8.8.8.0/24", "193.239.0.0/22",
		"2a10::/16", "2600::/16", "2001:db8::/32",
	}
	for _, s := range clean {
		if IsBogonPrefix(netip.MustParsePrefix(s)) {
			t.Errorf("IsBogonPrefix(%s) = true, want false", s)
		}
	}
}

func TestIsBogonASN(t *testing.T) {
	for _, asn := range []uint32{0, 23456, 64496, 64511, 65535, 65536, 65551, 4200000000, 4294967295} {
		if !IsBogonASN(asn) {
			t.Errorf("IsBogonASN(%d) = false, want true", asn)
		}
	}
	for _, asn := range []uint32{1, 6939, 15169, 64495, 64512, 65534, 65552, 263075, 4199999999} {
		if IsBogonASN(asn) {
			t.Errorf("IsBogonASN(%d) = true, want false", asn)
		}
	}
}

func TestPrivateASN(t *testing.T) {
	if !PrivateASN(64512) || !PrivateASN(65534) {
		t.Error("private range edges misclassified")
	}
	if PrivateASN(64511) || PrivateASN(65535) {
		t.Error("non-private values classified private")
	}
}

func TestSyntheticV4PrefixDistinctAndClean(t *testing.T) {
	seen := map[netip.Prefix]bool{}
	for i := 0; i < 10000; i++ {
		p := SyntheticV4Prefix(i)
		if p.Bits() != 24 {
			t.Fatalf("prefix %d = %s, want /24", i, p)
		}
		if seen[p] {
			t.Fatalf("duplicate prefix at index %d: %s", i, p)
		}
		seen[p] = true
		if IsBogonPrefix(p) {
			t.Fatalf("synthetic prefix %s is a bogon", p)
		}
		if err := CheckPrefixBounds(p); err != nil {
			t.Fatalf("synthetic prefix out of bounds: %v", err)
		}
	}
}

func TestSyntheticV6PrefixDistinctAndClean(t *testing.T) {
	seen := map[netip.Prefix]bool{}
	for i := 0; i < 10000; i++ {
		p := SyntheticV6Prefix(i)
		if p.Bits() != 48 {
			t.Fatalf("prefix %d = %s, want /48", i, p)
		}
		if seen[p] {
			t.Fatalf("duplicate prefix at index %d: %s", i, p)
		}
		seen[p] = true
		if IsBogonPrefix(p) {
			t.Fatalf("synthetic prefix %s is a bogon", p)
		}
	}
}

func TestPeerAddrsDistinct(t *testing.T) {
	seen4 := map[netip.Addr]bool{}
	seen6 := map[netip.Addr]bool{}
	for i := 0; i < 3000; i++ {
		a4, a6 := PeerAddrV4(i), PeerAddrV6(i)
		if seen4[a4] || seen6[a6] {
			t.Fatalf("duplicate peer address at index %d", i)
		}
		seen4[a4], seen6[a6] = true, true
		if !a4.Is4() || !a6.Is6() {
			t.Fatalf("family mismatch at index %d", i)
		}
	}
}

func TestCheckPrefixBounds(t *testing.T) {
	for _, s := range []string{"1.2.3.0/25", "1.0.0.0/7", "2a10::/49", "2a10::/12"} {
		if err := CheckPrefixBounds(netip.MustParsePrefix(s)); err == nil {
			t.Errorf("CheckPrefixBounds(%s): want error", s)
		}
	}
	for _, s := range []string{"1.2.3.0/24", "1.0.0.0/8", "2a10::/48", "2a10::/16"} {
		if err := CheckPrefixBounds(netip.MustParsePrefix(s)); err != nil {
			t.Errorf("CheckPrefixBounds(%s) = %v, want nil", s, err)
		}
	}
}

func TestFamilyName(t *testing.T) {
	if FamilyName(netip.MustParsePrefix("1.0.0.0/24")) != "IPv4" {
		t.Error("v4 family name wrong")
	}
	if FamilyName(netip.MustParsePrefix("2a10::/48")) != "IPv6" {
		t.Error("v6 family name wrong")
	}
}
