// Package rs implements an IXP route server in the style of RFC 7947:
// members peer multilaterally with a transparent BGP speaker that
// keeps per-peer Adj-RIB-In tables, applies import filters (the §3
// "filtered vs accepted" split: bogon prefixes and ASNs, AS paths too
// long, prefixes too specific or too broad) and executes the action
// BGP communities of the hosting IXP's scheme on export:
//
//   - do-not-announce-to: suppress export towards the targeted peer
//     (or everyone), with announce-only-to acting as a whitelist
//     override, matching BIRD route-server configs in the field;
//   - prepend-to: repeat the announcing member's ASN 1–3× on the
//     exported AS path towards the target;
//   - blackholing: accept host routes carrying RFC 7999 65535:666 and
//     propagate them with the community retained.
//
// Exported routes are scrubbed: action communities are removed after
// being acted on (the behaviour that makes them invisible at classic
// route collectors and motivates the paper's LG-based methodology).
package rs
