package rs

import (
	"sync"
	"testing"

	"ixplight/internal/bgp"
	"ixplight/internal/netutil"
)

// TestConcurrentAnnounceExport hammers the server from writer and
// reader goroutines simultaneously; run with -race this pins the
// locking discipline.
func TestConcurrentAnnounceExport(t *testing.T) {
	s := testServer(t, "DE-CIX")
	const peers = 8
	for i := 0; i < peers; i++ {
		addPeer(t, s, uint32(100+i), i+1)
	}
	scheme := s.Scheme()

	var wg sync.WaitGroup
	// Writers: each peer announces, withdraws and re-announces.
	for i := 0; i < peers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			peer := uint32(100 + i)
			for k := 0; k < 50; k++ {
				r := bgp.Route{
					Prefix:      netutil.SyntheticV4Prefix(i*100 + k),
					NextHop:     netutil.PeerAddrV4(i + 1),
					ASPath:      bgp.ASPath{peer},
					Communities: []bgp.Community{scheme.DoNotAnnounce(uint16(100 + (i+1)%peers))},
				}
				if _, err := s.Announce(peer, r); err != nil {
					t.Error(err)
					return
				}
				if k%10 == 0 {
					s.Withdraw(peer, r.Prefix)
					if _, err := s.Announce(peer, r); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(i)
	}
	// Readers: exports, stats, peer lists while writes are in flight.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 30; k++ {
				_ = s.ExportTo(uint32(100 + (i+k)%peers))
				_ = s.Stats()
				_ = s.Peers()
				_ = s.AcceptedRoutes(uint32(100 + k%peers))
			}
		}(i)
	}
	wg.Wait()

	st := s.Stats()
	if st.RoutesV4 != peers*50 {
		t.Errorf("routes = %d, want %d", st.RoutesV4, peers*50)
	}
	// Every peer must miss exactly the routes avoiding it: peer i is
	// avoided by peer i-1 (mod peers), so it sees (peers-2)*50 routes
	// from the others... verify one case precisely.
	got := len(s.ExportTo(101))
	want := (peers - 2) * 50 // everyone else's routes minus AS100's (which avoid 101)
	if got != want {
		t.Errorf("export to AS101 = %d routes, want %d", got, want)
	}
}
