package rs

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"ixplight/internal/bgp"
	"ixplight/internal/dictionary"
)

// Config parameterises a route server instance.
type Config struct {
	// Scheme is the hosting IXP's community scheme; it drives both
	// import special-cases (blackhole host routes) and export actions.
	Scheme *dictionary.Scheme
	// MaxPathLen rejects announcements with longer AS paths (0 = no
	// limit). Production route servers commonly cap around 32–64.
	MaxPathLen int
	// MaxCommunities rejects announcements with more community values
	// (0 = no limit) — DE-CIX's "too many communities" hygiene filter.
	MaxCommunities int
	// ScrubActions removes action communities from exported routes
	// after acting on them (the default in the field).
	ScrubActions bool
	// AttachInfo makes the server tag every accepted route with its
	// scheme's informational communities on ingress.
	AttachInfo bool
	// InfoPerRoute is how many informational tags ingress attaches
	// (clamped to the scheme's InfoCount); 2 matches the roughly 1/3
	// informational share of Fig. 3 for typical tagging rates.
	InfoPerRoute int
}

// Peer is one member AS session at the route server.
type Peer struct {
	ASN    uint32
	Name   string
	AddrV4 netip.Addr
	AddrV6 netip.Addr
	// IPv4/IPv6 report which families the member established sessions
	// for (Table 1 counts them separately).
	IPv4 bool
	IPv6 bool
}

// ribEntry is one accepted Adj-RIB-In route plus its precomputed
// export action summary.
type ribEntry struct {
	route   bgp.Route
	actions *actionSummary
}

// Server is an in-memory route server. All methods are safe for
// concurrent use.
type Server struct {
	cfg Config

	mu       sync.RWMutex
	peers    map[uint32]*Peer
	ribIn    map[uint32]map[netip.Prefix]ribEntry
	filtered map[uint32][]FilteredRoute
}

// New builds a server for the given configuration. The scheme is
// mandatory.
func New(cfg Config) (*Server, error) {
	if cfg.Scheme == nil {
		return nil, fmt.Errorf("rs: config needs a community scheme")
	}
	if err := cfg.Scheme.Validate(); err != nil {
		return nil, err
	}
	if cfg.InfoPerRoute > cfg.Scheme.InfoCount {
		cfg.InfoPerRoute = cfg.Scheme.InfoCount
	}
	return &Server{
		cfg:      cfg,
		peers:    make(map[uint32]*Peer),
		ribIn:    make(map[uint32]map[netip.Prefix]ribEntry),
		filtered: make(map[uint32][]FilteredRoute),
	}, nil
}

// Scheme returns the hosting IXP's community scheme.
func (s *Server) Scheme() *dictionary.Scheme { return s.cfg.Scheme }

// AddPeer registers a member session. Re-adding an existing ASN
// updates its metadata without dropping routes.
func (s *Server) AddPeer(p Peer) error {
	if p.ASN == 0 {
		return fmt.Errorf("rs: peer ASN must be non-zero")
	}
	if !p.IPv4 && !p.IPv6 {
		return fmt.Errorf("rs: peer AS%d has no address family enabled", p.ASN)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := p
	s.peers[p.ASN] = &cp
	if _, ok := s.ribIn[p.ASN]; !ok {
		s.ribIn[p.ASN] = make(map[netip.Prefix]ribEntry)
	}
	return nil
}

// RemovePeer drops a member and all its routes.
func (s *Server) RemovePeer(asn uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.peers, asn)
	delete(s.ribIn, asn)
	delete(s.filtered, asn)
}

// Peers returns the member list sorted by ASN.
func (s *Server) Peers() []Peer {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Peer, 0, len(s.peers))
	for _, p := range s.peers {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// HasPeer reports whether asn has a session at the server — the
// membership test behind the paper's §5.5 "targets not at the RS"
// analysis.
func (s *Server) HasPeer(asn uint32) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.peers[asn]
	return ok
}

// Announce runs the import policy on r as announced by peerASN.
// Accepted routes land in the peer's Adj-RIB-In (keyed by prefix, so a
// re-announcement replaces the previous path); rejected routes are
// recorded on the filtered list with their reason.
func (s *Server) Announce(peerASN uint32, r bgp.Route) (FilterReason, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.peers[peerASN]; !ok {
		return FilterNone, fmt.Errorf("rs: AS%d has no session", peerASN)
	}
	if reason := s.checkImport(peerASN, r); reason != FilterNone {
		s.filtered[peerASN] = append(s.filtered[peerASN], FilteredRoute{Route: r.Clone(), Reason: reason})
		return reason, nil
	}
	stored := r.Clone()
	if s.cfg.AttachInfo {
		for k := 0; k < s.cfg.InfoPerRoute; k++ {
			info, err := s.cfg.Scheme.Info(k)
			if err != nil {
				break
			}
			if !bgp.HasCommunity(stored.Communities, info) {
				stored.Communities = append(stored.Communities, info)
			}
		}
	}
	s.ribIn[peerASN][stored.Prefix] = ribEntry{
		route:   stored,
		actions: summarizeActions(s.cfg.Scheme, stored),
	}
	return FilterNone, nil
}

// Withdraw removes peerASN's route for prefix, if present.
func (s *Server) Withdraw(peerASN uint32, prefix netip.Prefix) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rib, ok := s.ribIn[peerASN]; ok {
		delete(rib, prefix)
	}
}

// AcceptedRoutes returns peerASN's accepted Adj-RIB-In routes, sorted
// by prefix for deterministic snapshots.
func (s *Server) AcceptedRoutes(peerASN uint32) []bgp.Route {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rib, ok := s.ribIn[peerASN]
	if !ok {
		return nil
	}
	out := make([]bgp.Route, 0, len(rib))
	for _, e := range rib {
		out = append(out, e.route.Clone())
	}
	sortRoutes(out)
	return out
}

// FilteredRoutes returns the routes rejected from peerASN.
func (s *Server) FilteredRoutes(peerASN uint32) []FilteredRoute {
	s.mu.RLock()
	defer s.mu.RUnlock()
	src := s.filtered[peerASN]
	out := make([]FilteredRoute, len(src))
	for i, f := range src {
		out[i] = FilteredRoute{Route: f.Route.Clone(), Reason: f.Reason}
	}
	return out
}

func sortRoutes(rs []bgp.Route) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i].Prefix, rs[j].Prefix
		if a.Addr() != b.Addr() {
			return a.Addr().Less(b.Addr())
		}
		return a.Bits() < b.Bits()
	})
}

// Stats summarises the server state with the quantities of Table 1.
type Stats struct {
	IXP            string
	MembersV4      int
	MembersV6      int
	PrefixesV4     int
	PrefixesV6     int
	RoutesV4       int
	RoutesV6       int
	CommunitiesV4  int
	CommunitiesV6  int
	FilteredRoutes int
}

// Stats computes the current Table 1 row for this server.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{IXP: s.cfg.Scheme.IXP}
	for _, p := range s.peers {
		if p.IPv4 {
			st.MembersV4++
		}
		if p.IPv6 {
			st.MembersV6++
		}
	}
	seenV4 := make(map[netip.Prefix]bool)
	seenV6 := make(map[netip.Prefix]bool)
	for _, rib := range s.ribIn {
		for _, e := range rib {
			if e.route.IsIPv6() {
				st.RoutesV6++
				st.CommunitiesV6 += e.route.CommunityCount()
				seenV6[e.route.Prefix] = true
			} else {
				st.RoutesV4++
				st.CommunitiesV4 += e.route.CommunityCount()
				seenV4[e.route.Prefix] = true
			}
		}
	}
	st.PrefixesV4 = len(seenV4)
	st.PrefixesV6 = len(seenV6)
	for _, f := range s.filtered {
		st.FilteredRoutes += len(f)
	}
	return st
}
