package rs

import (
	"net/netip"
	"reflect"
	"testing"

	"ixplight/internal/bgp"
	"ixplight/internal/dictionary"
	"ixplight/internal/netutil"
)

// TestLargeCommunityActionsExecute checks that large-community actions
// (the 32-bit-target extension) steer export exactly like standard
// ones.
func TestLargeCommunityActionsExecute(t *testing.T) {
	s := testServer(t, "DE-CIX")
	addPeer(t, s, 100, 1)
	addPeer(t, s, 200, 2)
	addPeer(t, s, 300, 3)
	scheme := s.Scheme()

	deny200, err := scheme.LargeDoNotAnnounce(200)
	if err != nil {
		t.Fatal(err)
	}
	r := route(100, 0)
	r.LargeCommunities = []bgp.LargeCommunity{deny200}
	announceOK(t, s, 100, r)

	if got := len(s.ExportTo(200)); got != 0 {
		t.Errorf("AS200 export = %d, large deny ignored", got)
	}
	if got := len(s.ExportTo(300)); got != 1 {
		t.Errorf("AS300 export = %d, want 1", got)
	}
	// The large action community is scrubbed on export.
	if out := s.ExportTo(300); len(out[0].LargeCommunities) != 0 {
		t.Errorf("large action not scrubbed: %v", out[0].LargeCommunities)
	}
}

func TestLargeWhitelistExecutes(t *testing.T) {
	s := testServer(t, "DE-CIX")
	addPeer(t, s, 100, 1)
	addPeer(t, s, 200, 2)
	addPeer(t, s, 300, 3)
	scheme := s.Scheme()

	blockAll, _ := scheme.LargeDoNotAnnounce(0)
	allow200, _ := scheme.LargeAnnounceOnly(200)
	r := route(100, 0)
	r.LargeCommunities = []bgp.LargeCommunity{blockAll, allow200}
	announceOK(t, s, 100, r)

	if got := len(s.ExportTo(200)); got != 1 {
		t.Errorf("whitelisted AS200 export = %d", got)
	}
	if got := len(s.ExportTo(300)); got != 0 {
		t.Errorf("AS300 export = %d, want 0", got)
	}
}

func TestExtendedPrependExecutes(t *testing.T) {
	s := testServer(t, "AMS-IX")
	addPeer(t, s, 100, 1)
	addPeer(t, s, 200, 2)
	addPeer(t, s, 300, 3)
	scheme := s.Scheme()

	p3, err := scheme.ExtPrepend(3, 200)
	if err != nil {
		t.Fatal(err)
	}
	r := route(100, 0)
	r.ExtCommunities = []bgp.ExtendedCommunity{p3}
	announceOK(t, s, 100, r)

	to200 := s.ExportTo(200)
	if len(to200) != 1 {
		t.Fatalf("AS200 export = %d", len(to200))
	}
	if want := (bgp.ASPath{100, 100, 100, 100}); !reflect.DeepEqual(to200[0].ASPath, want) {
		t.Errorf("AS200 path = %v, want %v", to200[0].ASPath, want)
	}
	if len(to200[0].ExtCommunities) != 0 {
		t.Errorf("ext prepend not scrubbed: %v", to200[0].ExtCommunities)
	}
	to300 := s.ExportTo(300)
	if to300[0].ASPath.Len() != 1 {
		t.Errorf("AS300 path = %v, want no prepend", to300[0].ASPath)
	}
}

func TestLargeBlackholeHostRoute(t *testing.T) {
	s := testServer(t, "DE-CIX")
	addPeer(t, s, 100, 1)
	addPeer(t, s, 200, 2)
	scheme := s.Scheme()

	bhComm := bgp.LargeCommunity{Global: uint32(scheme.RSASN), Local1: dictionary.LargeFnBlackhole, Local2: 0}
	bh := bgp.Route{
		Prefix:           netip.MustParsePrefix("1.2.3.4/32"),
		NextHop:          netutil.PeerAddrV4(1),
		ASPath:           bgp.ASPath{100},
		LargeCommunities: []bgp.LargeCommunity{bhComm},
	}
	if reason, _ := s.Announce(100, bh); reason != FilterNone {
		t.Fatalf("large-blackhole /32 rejected: %v", reason)
	}
	out := s.ExportTo(200)
	if len(out) != 1 {
		t.Fatalf("export = %d", len(out))
	}
	// The blackhole marker survives scrubbing (receivers need it).
	if len(out[0].LargeCommunities) != 1 || out[0].LargeCommunities[0] != bhComm {
		t.Errorf("large blackhole community = %v", out[0].LargeCommunities)
	}
}

func TestInformationalExtLargeSurviveScrubbing(t *testing.T) {
	s := testServer(t, "DE-CIX")
	addPeer(t, s, 100, 1)
	addPeer(t, s, 200, 2)
	scheme := s.Scheme()

	info, _ := scheme.LargeInfo(1)
	r := route(100, 0)
	r.ExtCommunities = []bgp.ExtendedCommunity{scheme.ExtInfo(2)}
	r.LargeCommunities = []bgp.LargeCommunity{info}
	announceOK(t, s, 100, r)

	out := s.ExportTo(200)
	if len(out[0].ExtCommunities) != 1 || len(out[0].LargeCommunities) != 1 {
		t.Errorf("informational ext/large scrubbed: %v %v",
			out[0].ExtCommunities, out[0].LargeCommunities)
	}
}
