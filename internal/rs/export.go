package rs

import (
	"ixplight/internal/bgp"
	"ixplight/internal/dictionary"
)

// actionSummary is the per-route digest of action communities,
// precomputed at import time so that each export decision is a couple
// of map probes instead of a re-classification of every community.
// BenchmarkAblation_ExportScan compares this against classifying on
// every export.
type actionSummary struct {
	denyAll    bool
	deny       map[uint32]bool // do-not-announce-to specific targets
	allow      map[uint32]bool // announce-only-to specific targets
	prependAll int             // prepend count towards everyone
	prepend    map[uint32]int  // prepend count towards specific targets
	blackhole  bool
}

// summarizeActions classifies all three community flavours of a route
// once under the scheme.
func summarizeActions(scheme *dictionary.Scheme, r bgp.Route) *actionSummary {
	a := &actionSummary{}
	apply := func(cl dictionary.Class) {
		if !cl.IsAction() {
			return
		}
		switch cl.Action {
		case dictionary.DoNotAnnounceTo:
			if cl.Target == dictionary.TargetAll {
				a.denyAll = true
			} else {
				if a.deny == nil {
					a.deny = make(map[uint32]bool)
				}
				a.deny[cl.TargetASN] = true
			}
		case dictionary.AnnounceOnlyTo:
			if cl.Target == dictionary.TargetAll {
				// "announce to all" restores the default; nothing to do.
				return
			}
			if a.allow == nil {
				a.allow = make(map[uint32]bool)
			}
			a.allow[cl.TargetASN] = true
		case dictionary.PrependTo:
			if cl.Target == dictionary.TargetAll {
				a.prependAll = max(a.prependAll, cl.PrependCount)
			} else {
				if a.prepend == nil {
					a.prepend = make(map[uint32]int)
				}
				a.prepend[cl.TargetASN] = max(a.prepend[cl.TargetASN], cl.PrependCount)
			}
		case dictionary.Blackhole:
			a.blackhole = true
		}
	}
	for _, c := range r.Communities {
		apply(scheme.Classify(c))
	}
	for _, e := range r.ExtCommunities {
		apply(scheme.ClassifyExtended(e))
	}
	for _, l := range r.LargeCommunities {
		apply(scheme.ClassifyLarge(l))
	}
	return a
}

// exportAllowed decides whether a route with summary a may be exported
// to target. Specific communities beat the general ones, matching
// production BIRD filter chains:
//
//  1. 0:<target> denies,
//  2. <rs>:<target> allows,
//  3. 0:<rs> denies everyone else,
//  4. default allow.
func (a *actionSummary) exportAllowed(target uint32) bool {
	if a.deny[target] {
		return false
	}
	if a.allow[target] {
		return true
	}
	return !a.denyAll
}

// prependFor returns how many prepends the exported path needs towards
// target (the larger of the targeted and the to-everyone request).
func (a *actionSummary) prependFor(target uint32) int {
	return max(a.prependAll, a.prepend[target])
}

// ExportTo computes the routes the server propagates to member target:
// every other member's accepted routes, minus those whose action
// communities suppress the export, with prepending applied and (when
// configured) action communities scrubbed. Routes are sorted by
// prefix, then by announcing peer.
func (s *Server) ExportTo(target uint32) []bgp.Route {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.peers[target]; !ok {
		return nil
	}
	var out []bgp.Route
	for peerASN, rib := range s.ribIn {
		if peerASN == target {
			continue
		}
		for _, e := range rib {
			if !e.actions.exportAllowed(target) {
				continue
			}
			out = append(out, s.exportRoute(e, peerASN, target))
		}
	}
	sortRoutes(out)
	return out
}

// exportRoute materialises the per-target copy of one RIB entry.
func (s *Server) exportRoute(e ribEntry, peerASN, target uint32) bgp.Route {
	r := e.route.Clone()
	if n := e.actions.prependFor(target); n > 0 {
		r.ASPath = r.ASPath.Prepend(peerASN, n)
	}
	if s.cfg.ScrubActions {
		scrubActions(s.cfg.Scheme, &r, e.actions.blackhole)
	}
	return r
}

// scrubActions drops the scheme's action communities of all three
// flavours from the route. The RFC 7999 blackhole community is
// retained when the route is a blackhole request, since downstream
// members need to see it.
func scrubActions(scheme *dictionary.Scheme, r *bgp.Route, keepBlackhole bool) {
	comms := r.Communities[:0]
	for _, c := range r.Communities {
		cl := scheme.Classify(c)
		if cl.IsAction() {
			if keepBlackhole && cl.Action == dictionary.Blackhole {
				comms = append(comms, c)
			}
			continue
		}
		comms = append(comms, c)
	}
	r.Communities = comms

	exts := r.ExtCommunities[:0]
	for _, e := range r.ExtCommunities {
		if !scheme.ClassifyExtended(e).IsAction() {
			exts = append(exts, e)
		}
	}
	r.ExtCommunities = exts

	larges := r.LargeCommunities[:0]
	for _, l := range r.LargeCommunities {
		cl := scheme.ClassifyLarge(l)
		if cl.IsAction() {
			if keepBlackhole && cl.Action == dictionary.Blackhole {
				larges = append(larges, l)
			}
			continue
		}
		larges = append(larges, l)
	}
	r.LargeCommunities = larges
}

// NotExportedTo returns the routes the server withholds from member
// target because of action communities — the complement of ExportTo
// over the other members' accepted routes. Looking glasses expose this
// view (alice-lg's "not exported" tab); it is how an operator checks
// that their do-not-announce tags bite.
func (s *Server) NotExportedTo(target uint32) []bgp.Route {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.peers[target]; !ok {
		return nil
	}
	var out []bgp.Route
	for peerASN, rib := range s.ribIn {
		if peerASN == target {
			continue
		}
		for _, e := range rib {
			if e.actions.exportAllowed(target) {
				continue
			}
			out = append(out, e.route.Clone())
		}
	}
	sortRoutes(out)
	return out
}

// ExportToScan is the ablation twin of ExportTo: it ignores the
// precomputed summaries and re-classifies every community of every
// candidate route on each call.
func (s *Server) ExportToScan(target uint32) []bgp.Route {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.peers[target]; !ok {
		return nil
	}
	var out []bgp.Route
	for peerASN, rib := range s.ribIn {
		if peerASN == target {
			continue
		}
		for _, e := range rib {
			summary := summarizeActions(s.cfg.Scheme, e.route)
			if !summary.exportAllowed(target) {
				continue
			}
			out = append(out, s.exportRoute(ribEntry{route: e.route, actions: summary}, peerASN, target))
		}
	}
	sortRoutes(out)
	return out
}
