package rs

import (
	"fmt"

	"ixplight/internal/bgp"
	"ixplight/internal/dictionary"
	"ixplight/internal/netutil"
)

// FilterReason says why an announced route was rejected by the import
// policy. FilterNone means the route was accepted.
type FilterReason int

// Import filter outcomes, mirroring the rejection reasons the paper
// lists in §3 plus the DE-CIX "too many communities" guard of §5.6.
const (
	FilterNone FilterReason = iota
	FilterInvalidRoute
	FilterBogonPrefix
	FilterBogonASN
	FilterPathTooLong
	FilterPrefixBounds
	FilterPathLoop
	FilterFirstASMismatch
	FilterTooManyCommunities
)

// String implements fmt.Stringer.
func (f FilterReason) String() string {
	switch f {
	case FilterNone:
		return "accepted"
	case FilterInvalidRoute:
		return "invalid-route"
	case FilterBogonPrefix:
		return "bogon-prefix"
	case FilterBogonASN:
		return "bogon-asn"
	case FilterPathTooLong:
		return "as-path-too-long"
	case FilterPrefixBounds:
		return "prefix-out-of-bounds"
	case FilterPathLoop:
		return "as-path-loop"
	case FilterFirstASMismatch:
		return "first-as-mismatch"
	case FilterTooManyCommunities:
		return "too-many-communities"
	default:
		return fmt.Sprintf("FilterReason(%d)", int(f))
	}
}

// FilteredRoute pairs a rejected route with its rejection reason, the
// shape the looking glass exposes under /routes/filtered.
type FilteredRoute struct {
	Route  bgp.Route
	Reason FilterReason
}

// checkImport applies the import policy for a route announced by
// peerASN. Blackhole-tagged routes (when the scheme supports them) are
// exempt from the prefix-bounds check so that /32 and /128 host routes
// pass, as real route-server configs special-case.
func (s *Server) checkImport(peerASN uint32, r bgp.Route) FilterReason {
	if err := r.Validate(); err != nil {
		return FilterInvalidRoute
	}
	if r.PeerAS() != peerASN {
		return FilterFirstASMismatch
	}
	if netutil.IsBogonPrefix(r.Prefix) {
		return FilterBogonPrefix
	}
	for _, asn := range r.ASPath {
		if netutil.IsBogonASN(asn) {
			return FilterBogonASN
		}
	}
	if s.cfg.MaxPathLen > 0 && r.ASPath.Len() > s.cfg.MaxPathLen {
		return FilterPathTooLong
	}
	if r.ASPath.HasLoop() {
		return FilterPathLoop
	}
	isBlackhole := false
	if s.cfg.Scheme.SupportsBlackhole {
		isBlackhole = bgp.HasCommunity(r.Communities, bgp.BlackholeWellKnown)
		for _, l := range r.LargeCommunities {
			cl := s.cfg.Scheme.ClassifyLarge(l)
			if cl.Known && cl.Action == dictionary.Blackhole {
				isBlackhole = true
			}
		}
	}
	if !isBlackhole {
		if err := netutil.CheckPrefixBounds(r.Prefix); err != nil {
			return FilterPrefixBounds
		}
	}
	if s.cfg.MaxCommunities > 0 && r.CommunityCount() > s.cfg.MaxCommunities {
		return FilterTooManyCommunities
	}
	return FilterNone
}
