package rs

import (
	"math/rand"
	"testing"

	"ixplight/internal/bgp"
	"ixplight/internal/dictionary"
	"ixplight/internal/netutil"
)

// Property tests over randomly tagged tables: for any combination of
// action communities, the route server must satisfy three invariants
// for every target peer:
//
//  1. partition: ExportTo(t) ∪ NotExportedTo(t) covers exactly the
//     other members' accepted routes, with no overlap;
//  2. scrub-completeness: no exported route carries a known action
//     community (except a retained blackhole marker);
//  3. prepend monotonicity: an exported path is the stored path with
//     zero or more copies of the announcer prepended.
func TestExportInvariantsRandomized(t *testing.T) {
	scheme := dictionary.ProfileByName("DE-CIX")
	rng := rand.New(rand.NewSource(2024))

	for trial := 0; trial < 30; trial++ {
		s, err := New(Config{Scheme: scheme, ScrubActions: true})
		if err != nil {
			t.Fatal(err)
		}
		const nPeers = 6
		peers := make([]uint32, nPeers)
		for i := range peers {
			peers[i] = uint32(100 + i)
			addPeer(t, s, peers[i], i+1)
		}
		perPeer := make(map[uint32]int)
		total := 0
		for i, peer := range peers {
			n := 1 + rng.Intn(8)
			perPeer[peer] = n
			for k := 0; k < n; k++ {
				r := bgp.Route{
					Prefix:      netutil.SyntheticV4Prefix(trial*1000 + i*100 + k),
					NextHop:     netutil.PeerAddrV4(i + 1),
					ASPath:      bgp.ASPath{peer},
					Communities: randomActionSet(rng, scheme, peers),
				}
				announceOK(t, s, peer, r)
				total++
			}
		}

		for _, target := range peers {
			exported := s.ExportTo(target)
			withheld := s.NotExportedTo(target)

			// 1. Partition.
			want := total - perPeer[target]
			if len(exported)+len(withheld) != want {
				t.Fatalf("trial %d target %d: %d exported + %d withheld != %d candidates",
					trial, target, len(exported), len(withheld), want)
			}
			seen := map[string]bool{}
			for _, r := range exported {
				seen[r.Prefix.String()+"|"+r.ASPath.String()] = true
			}
			for _, r := range withheld {
				key := r.Prefix.String() + "|" + r.ASPath.String()
				if seen[key] {
					t.Fatalf("trial %d target %d: route %s both exported and withheld", trial, target, key)
				}
			}

			for _, r := range exported {
				// 2. Scrub-completeness.
				for _, c := range r.Communities {
					cl := scheme.Classify(c)
					if cl.IsAction() && cl.Action != dictionary.Blackhole {
						t.Fatalf("trial %d target %d: exported route %s carries action %s",
							trial, target, r.Prefix, c)
					}
				}
				// 3. Prepend monotonicity: path is announcer^k + original,
				// and the original tail is a single announcer hop here.
				announcer := r.ASPath[len(r.ASPath)-1]
				for _, hop := range r.ASPath {
					if hop != announcer {
						t.Fatalf("trial %d target %d: path %v is not pure prepending", trial, target, r.ASPath)
					}
				}
				if len(r.ASPath) > 4 {
					t.Fatalf("trial %d target %d: %d prepends exceed the 3x maximum", trial, target, len(r.ASPath)-1)
				}
			}
		}
	}
}

// randomActionSet draws a random community list mixing all action
// kinds, member and non-member targets, info tags and private values.
func randomActionSet(rng *rand.Rand, scheme *dictionary.Scheme, peers []uint32) []bgp.Community {
	var out []bgp.Community
	maybe := func(p float64, c bgp.Community) {
		if rng.Float64() < p {
			out = append(out, c)
		}
	}
	target := func() uint16 {
		if rng.Float64() < 0.5 {
			return uint16(peers[rng.Intn(len(peers))])
		}
		return uint16(40000 + rng.Intn(100)) // non-member
	}
	maybe(0.4, scheme.DoNotAnnounce(target()))
	maybe(0.2, scheme.DoNotAnnounce(target()))
	maybe(0.15, scheme.DoNotAnnounceAll())
	maybe(0.25, scheme.AnnounceOnly(target()))
	if c, err := scheme.Prepend(1+rng.Intn(3), target()); err == nil {
		maybe(0.2, c)
	}
	if info, err := scheme.Info(rng.Intn(scheme.InfoCount)); err == nil {
		maybe(0.5, info)
	}
	maybe(0.3, bgp.NewCommunity(uint16(100+rng.Intn(6)), uint16(rng.Intn(500))))
	return out
}

// TestWhitelistInvariant: a route carrying block-all plus allow-list
// entries is exported to exactly the allowed members (minus any
// specifically denied).
func TestWhitelistInvariant(t *testing.T) {
	scheme := dictionary.ProfileByName("DE-CIX")
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		s, err := New(Config{Scheme: scheme, ScrubActions: true})
		if err != nil {
			t.Fatal(err)
		}
		peers := []uint32{100, 200, 300, 400, 500}
		for i, p := range peers {
			addPeer(t, s, p, i+1)
		}
		comms := []bgp.Community{scheme.DoNotAnnounceAll()}
		allowed := map[uint32]bool{}
		denied := map[uint32]bool{}
		for _, p := range peers[1:] {
			switch rng.Intn(3) {
			case 0:
				comms = append(comms, scheme.AnnounceOnly(uint16(p)))
				allowed[p] = true
			case 1:
				comms = append(comms, scheme.DoNotAnnounce(uint16(p)))
				denied[p] = true
			}
		}
		r := bgp.Route{
			Prefix:      netutil.SyntheticV4Prefix(trial),
			NextHop:     netutil.PeerAddrV4(1),
			ASPath:      bgp.ASPath{100},
			Communities: comms,
		}
		announceOK(t, s, 100, r)
		for _, p := range peers[1:] {
			got := len(s.ExportTo(p)) == 1
			want := allowed[p] && !denied[p]
			if got != want {
				t.Errorf("trial %d: peer %d got=%v want=%v (allowed=%v denied=%v)",
					trial, p, got, want, allowed[p], denied[p])
			}
		}
	}
}
