package rs

import (
	"net/netip"
	"reflect"
	"testing"

	"ixplight/internal/bgp"
	"ixplight/internal/dictionary"
	"ixplight/internal/netutil"
)

// exportFixture builds a DE-CIX server with three peers: announcer
// AS100 plus receivers AS200 and AS300.
func exportFixture(t *testing.T) (*Server, *dictionary.Scheme) {
	t.Helper()
	s := testServer(t, "DE-CIX")
	addPeer(t, s, 100, 1)
	addPeer(t, s, 200, 2)
	addPeer(t, s, 300, 3)
	return s, dictionary.ProfileByName("DE-CIX")
}

func prefixesOf(routes []bgp.Route) []netip.Prefix {
	out := make([]netip.Prefix, len(routes))
	for i, r := range routes {
		out[i] = r.Prefix
	}
	return out
}

func TestExportDefaultAnnouncesToAll(t *testing.T) {
	s, _ := exportFixture(t)
	announceOK(t, s, 100, route(100, 0))
	if got := len(s.ExportTo(200)); got != 1 {
		t.Errorf("AS200 export = %d routes", got)
	}
	if got := len(s.ExportTo(300)); got != 1 {
		t.Errorf("AS300 export = %d routes", got)
	}
	// The announcer never sees its own route back.
	if got := len(s.ExportTo(100)); got != 0 {
		t.Errorf("AS100 export = %d routes, want 0", got)
	}
	// Unknown peers get nothing.
	if got := s.ExportTo(999); got != nil {
		t.Errorf("unknown peer export = %v", got)
	}
}

func TestExportDoNotAnnounceTo(t *testing.T) {
	s, scheme := exportFixture(t)
	announceOK(t, s, 100, route(100, 0, scheme.DoNotAnnounce(200)))
	if got := len(s.ExportTo(200)); got != 0 {
		t.Errorf("AS200 must be suppressed, got %d routes", got)
	}
	if got := len(s.ExportTo(300)); got != 1 {
		t.Errorf("AS300 export = %d routes, want 1", got)
	}
}

func TestExportDoNotAnnounceAll(t *testing.T) {
	s, scheme := exportFixture(t)
	announceOK(t, s, 100, route(100, 0, scheme.DoNotAnnounceAll()))
	if len(s.ExportTo(200)) != 0 || len(s.ExportTo(300)) != 0 {
		t.Error("deny-all leaked a route")
	}
}

func TestExportWhitelist(t *testing.T) {
	// Block all + announce-only-to AS200: only AS200 receives it.
	s, scheme := exportFixture(t)
	announceOK(t, s, 100, route(100, 0, scheme.DoNotAnnounceAll(), scheme.AnnounceOnly(200)))
	if got := len(s.ExportTo(200)); got != 1 {
		t.Errorf("whitelisted AS200 export = %d routes, want 1", got)
	}
	if got := len(s.ExportTo(300)); got != 0 {
		t.Errorf("AS300 export = %d routes, want 0", got)
	}
}

func TestExportSpecificDenyBeatsAllow(t *testing.T) {
	s, scheme := exportFixture(t)
	announceOK(t, s, 100, route(100, 0, scheme.DoNotAnnounce(200), scheme.AnnounceOnly(200)))
	if got := len(s.ExportTo(200)); got != 0 {
		t.Errorf("specific deny must win, got %d routes", got)
	}
}

func TestExportTargetingNonMemberHasNoEffect(t *testing.T) {
	// The §5.5 scenario: AS100 tags routes against Hurricane Electric,
	// which has no session — every actual member still receives the
	// route, so the community achieves nothing.
	s, scheme := exportFixture(t)
	announceOK(t, s, 100, route(100, 0, scheme.DoNotAnnounce(6939)))
	if got := len(s.ExportTo(200)); got != 1 {
		t.Errorf("AS200 export = %d routes, want 1", got)
	}
	if got := len(s.ExportTo(300)); got != 1 {
		t.Errorf("AS300 export = %d routes, want 1", got)
	}
}

func TestExportPrepend(t *testing.T) {
	s, scheme := exportFixture(t)
	p2, _ := scheme.Prepend(2, 200)
	announceOK(t, s, 100, route(100, 0, p2))

	to200 := s.ExportTo(200)
	if len(to200) != 1 {
		t.Fatalf("AS200 export = %d routes", len(to200))
	}
	if want := (bgp.ASPath{100, 100, 100}); !reflect.DeepEqual(to200[0].ASPath, want) {
		t.Errorf("AS200 path = %v, want %v", to200[0].ASPath, want)
	}
	to300 := s.ExportTo(300)
	if want := (bgp.ASPath{100}); !reflect.DeepEqual(to300[0].ASPath, want) {
		t.Errorf("AS300 path = %v, want %v", to300[0].ASPath, want)
	}
}

func TestExportPrependAllAndMax(t *testing.T) {
	s, scheme := exportFixture(t)
	pAll, _ := scheme.Prepend(1, scheme.RSASN) // prepend 1x to everyone
	p3, _ := scheme.Prepend(3, 200)            // and 3x to AS200
	announceOK(t, s, 100, route(100, 0, pAll, p3))

	if got := s.ExportTo(200)[0].ASPath.Len(); got != 4 {
		t.Errorf("AS200 path len = %d, want 4 (3 prepends)", got)
	}
	if got := s.ExportTo(300)[0].ASPath.Len(); got != 2 {
		t.Errorf("AS300 path len = %d, want 2 (1 prepend)", got)
	}
}

func TestExportScrubsActionCommunities(t *testing.T) {
	s, scheme := exportFixture(t)
	info, _ := scheme.Info(3)
	private := bgp.NewCommunity(100, 42) // member-private, unknown to the IXP
	announceOK(t, s, 100, route(100, 0, scheme.DoNotAnnounce(300), info, private))

	got := s.ExportTo(200)
	if len(got) != 1 {
		t.Fatalf("routes = %d", len(got))
	}
	comms := got[0].Communities
	if bgp.HasCommunity(comms, scheme.DoNotAnnounce(300)) {
		t.Error("action community not scrubbed")
	}
	if !bgp.HasCommunity(comms, info) {
		t.Error("informational community scrubbed")
	}
	if !bgp.HasCommunity(comms, private) {
		t.Error("unknown community scrubbed")
	}
}

func TestExportKeepsBlackholeCommunity(t *testing.T) {
	s, _ := exportFixture(t)
	bh := bgp.Route{
		Prefix:      netip.MustParsePrefix("1.2.3.4/32"),
		NextHop:     netutil.PeerAddrV4(1),
		ASPath:      bgp.ASPath{100},
		Communities: []bgp.Community{bgp.BlackholeWellKnown},
	}
	announceOK(t, s, 100, bh)
	got := s.ExportTo(200)
	if len(got) != 1 {
		t.Fatalf("routes = %d", len(got))
	}
	if !bgp.HasCommunity(got[0].Communities, bgp.BlackholeWellKnown) {
		t.Error("blackhole community must survive scrubbing")
	}
}

func TestExportNoScrubKeepsEverything(t *testing.T) {
	s, err := New(Config{Scheme: dictionary.ProfileByName("DE-CIX")})
	if err != nil {
		t.Fatal(err)
	}
	addPeer(t, s, 100, 1)
	addPeer(t, s, 200, 2)
	scheme := s.Scheme()
	announceOK(t, s, 100, route(100, 0, scheme.DoNotAnnounce(300)))
	got := s.ExportTo(200)
	if !bgp.HasCommunity(got[0].Communities, scheme.DoNotAnnounce(300)) {
		t.Error("with ScrubActions off the community must be visible")
	}
}

func TestExportToScanAgreesWithExportTo(t *testing.T) {
	s, scheme := exportFixture(t)
	p1, _ := scheme.Prepend(1, 300)
	announceOK(t, s, 100, route(100, 0, scheme.DoNotAnnounce(200)))
	announceOK(t, s, 100, route(100, 1, p1))
	announceOK(t, s, 200, route(200, 2, scheme.DoNotAnnounceAll(), scheme.AnnounceOnly(300)))
	announceOK(t, s, 300, route(300, 3))

	for _, target := range []uint32{100, 200, 300} {
		a, b := s.ExportTo(target), s.ExportToScan(target)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("target AS%d: ExportTo and ExportToScan disagree:\n %v\n %v", target, prefixesOf(a), prefixesOf(b))
		}
	}
}

func TestExportDeterministicOrder(t *testing.T) {
	s, _ := exportFixture(t)
	for i := 10; i > 0; i-- {
		announceOK(t, s, 100, route(100, i))
	}
	a := prefixesOf(s.ExportTo(200))
	b := prefixesOf(s.ExportTo(200))
	if !reflect.DeepEqual(a, b) {
		t.Error("export order unstable")
	}
	for i := 1; i < len(a); i++ {
		if !a[i-1].Addr().Less(a[i].Addr()) {
			t.Fatalf("export not sorted: %v before %v", a[i-1], a[i])
		}
	}
}

func TestNotExportedTo(t *testing.T) {
	s, scheme := exportFixture(t)
	announceOK(t, s, 100, route(100, 0, scheme.DoNotAnnounce(200)))
	announceOK(t, s, 100, route(100, 1))
	announceOK(t, s, 300, route(300, 2, scheme.DoNotAnnounceAll()))

	// AS200 misses the avoid-tagged route and the deny-all one.
	withheld := s.NotExportedTo(200)
	if len(withheld) != 2 {
		t.Fatalf("withheld = %d routes: %v", len(withheld), prefixesOf(withheld))
	}
	// Exported + withheld must partition the other members' routes.
	if got := len(s.ExportTo(200)) + len(withheld); got != 3 {
		t.Errorf("partition = %d routes, want 3", got)
	}
	// AS300 only misses the deny-all... which is its own route, so it
	// misses only AS100's avoid-tagged? No: 0:200 targets AS200 only.
	if got := len(s.NotExportedTo(300)); got != 0 {
		t.Errorf("AS300 withheld = %d, want 0", got)
	}
	if s.NotExportedTo(999) != nil {
		t.Error("unknown peer must get nil")
	}
}
