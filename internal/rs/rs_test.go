package rs

import (
	"net/netip"
	"testing"

	"ixplight/internal/bgp"
	"ixplight/internal/dictionary"
	"ixplight/internal/netutil"
)

func testServer(t *testing.T, ixp string) *Server {
	t.Helper()
	s, err := New(Config{
		Scheme:       dictionary.ProfileByName(ixp),
		MaxPathLen:   32,
		ScrubActions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func addPeer(t *testing.T, s *Server, asn uint32, idx int) {
	t.Helper()
	err := s.AddPeer(Peer{
		ASN:    asn,
		AddrV4: netutil.PeerAddrV4(idx),
		AddrV6: netutil.PeerAddrV6(idx),
		IPv4:   true,
		IPv6:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func route(peer uint32, idx int, comms ...bgp.Community) bgp.Route {
	return bgp.Route{
		Prefix:      netutil.SyntheticV4Prefix(idx),
		NextHop:     netutil.PeerAddrV4(int(peer % 1000)),
		ASPath:      bgp.ASPath{peer},
		Communities: comms,
	}
}

func announceOK(t *testing.T, s *Server, peer uint32, r bgp.Route) {
	t.Helper()
	reason, err := s.Announce(peer, r)
	if err != nil {
		t.Fatal(err)
	}
	if reason != FilterNone {
		t.Fatalf("route %s rejected: %v", r.Prefix, reason)
	}
}

func TestNewRequiresScheme(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New without scheme must fail")
	}
}

func TestAddPeerValidation(t *testing.T) {
	s := testServer(t, "DE-CIX")
	if err := s.AddPeer(Peer{ASN: 0, IPv4: true}); err == nil {
		t.Error("zero ASN accepted")
	}
	if err := s.AddPeer(Peer{ASN: 1}); err == nil {
		t.Error("peer without families accepted")
	}
}

func TestAnnounceRequiresSession(t *testing.T) {
	s := testServer(t, "DE-CIX")
	if _, err := s.Announce(64999, route(64999, 0)); err == nil {
		t.Error("announce without session accepted")
	}
}

func TestImportFilters(t *testing.T) {
	s := testServer(t, "DE-CIX")
	addPeer(t, s, 100, 1)

	cases := []struct {
		name string
		r    bgp.Route
		want FilterReason
	}{
		{"accepted", route(100, 0), FilterNone},
		{"invalid", bgp.Route{}, FilterInvalidRoute},
		{"first-as mismatch", bgp.Route{
			Prefix: netutil.SyntheticV4Prefix(1), NextHop: netutil.PeerAddrV4(1),
			ASPath: bgp.ASPath{200},
		}, FilterFirstASMismatch},
		{"bogon prefix", bgp.Route{
			Prefix: netip.MustParsePrefix("10.1.0.0/16"), NextHop: netutil.PeerAddrV4(1),
			ASPath: bgp.ASPath{100},
		}, FilterBogonPrefix},
		{"bogon asn", bgp.Route{
			Prefix: netutil.SyntheticV4Prefix(2), NextHop: netutil.PeerAddrV4(1),
			ASPath: bgp.ASPath{100, 23456, 300},
		}, FilterBogonASN},
		{"path loop", bgp.Route{
			Prefix: netutil.SyntheticV4Prefix(3), NextHop: netutil.PeerAddrV4(1),
			ASPath: bgp.ASPath{100, 200, 100},
		}, FilterPathLoop},
		{"too specific", bgp.Route{
			Prefix: netip.MustParsePrefix("1.1.1.128/25"), NextHop: netutil.PeerAddrV4(1),
			ASPath: bgp.ASPath{100},
		}, FilterPrefixBounds},
	}
	for _, tt := range cases {
		reason, err := s.Announce(100, tt.r)
		if err != nil {
			t.Fatalf("%s: %v", tt.name, err)
		}
		if reason != tt.want {
			t.Errorf("%s: reason = %v, want %v", tt.name, reason, tt.want)
		}
	}

	long := bgp.Route{
		Prefix: netutil.SyntheticV4Prefix(4), NextHop: netutil.PeerAddrV4(1),
		ASPath: make(bgp.ASPath, 0, 40),
	}
	long.ASPath = append(long.ASPath, 100)
	for i := 0; i < 39; i++ {
		long.ASPath = append(long.ASPath, uint32(1000+i))
	}
	if reason, _ := s.Announce(100, long); reason != FilterPathTooLong {
		t.Errorf("long path reason = %v", reason)
	}

	if got := len(s.FilteredRoutes(100)); got != 7 {
		t.Errorf("filtered list length = %d, want 7", got)
	}
	if got := len(s.AcceptedRoutes(100)); got != 1 {
		t.Errorf("accepted = %d, want 1", got)
	}
}

func TestTooManyCommunitiesFilter(t *testing.T) {
	s, err := New(Config{Scheme: dictionary.ProfileByName("DE-CIX"), MaxCommunities: 5})
	if err != nil {
		t.Fatal(err)
	}
	addPeer(t, s, 100, 1)
	r := route(100, 0)
	for i := 0; i < 6; i++ {
		r.Communities = append(r.Communities, bgp.NewCommunity(100, uint16(i)))
	}
	if reason, _ := s.Announce(100, r); reason != FilterTooManyCommunities {
		t.Errorf("reason = %v", reason)
	}
	r2 := route(100, 1)
	for i := 0; i < 5; i++ {
		r2.Communities = append(r2.Communities, bgp.NewCommunity(100, uint16(i)))
	}
	if reason, _ := s.Announce(100, r2); reason != FilterNone {
		t.Errorf("5 communities rejected: %v", reason)
	}
}

func TestBlackholeHostRouteBypassesBounds(t *testing.T) {
	s := testServer(t, "DE-CIX") // supports blackholing
	addPeer(t, s, 100, 1)
	bh := bgp.Route{
		Prefix:      netip.MustParsePrefix("1.2.3.4/32"),
		NextHop:     netutil.PeerAddrV4(1),
		ASPath:      bgp.ASPath{100},
		Communities: []bgp.Community{bgp.BlackholeWellKnown},
	}
	if reason, _ := s.Announce(100, bh); reason != FilterNone {
		t.Errorf("blackhole /32 rejected: %v", reason)
	}

	// At LINX (no blackhole support) the same route must be filtered.
	linx := testServer(t, "LINX")
	addPeer(t, linx, 100, 1)
	if reason, _ := linx.Announce(100, bh); reason != FilterPrefixBounds {
		t.Errorf("LINX blackhole /32 reason = %v, want prefix bounds", reason)
	}
}

func TestReannounceReplaces(t *testing.T) {
	s := testServer(t, "DE-CIX")
	addPeer(t, s, 100, 1)
	announceOK(t, s, 100, route(100, 0))
	r2 := route(100, 0)
	r2.ASPath = bgp.ASPath{100, 555}
	announceOK(t, s, 100, r2)
	got := s.AcceptedRoutes(100)
	if len(got) != 1 {
		t.Fatalf("routes = %d, want 1", len(got))
	}
	if got[0].ASPath.Len() != 2 {
		t.Errorf("replacement did not take: path %v", got[0].ASPath)
	}
}

func TestWithdraw(t *testing.T) {
	s := testServer(t, "DE-CIX")
	addPeer(t, s, 100, 1)
	r := route(100, 0)
	announceOK(t, s, 100, r)
	s.Withdraw(100, r.Prefix)
	if got := len(s.AcceptedRoutes(100)); got != 0 {
		t.Errorf("routes after withdraw = %d", got)
	}
	// Withdrawing an absent prefix is a no-op.
	s.Withdraw(100, r.Prefix)
	s.Withdraw(999, r.Prefix)
}

func TestRemovePeerDropsState(t *testing.T) {
	s := testServer(t, "DE-CIX")
	addPeer(t, s, 100, 1)
	announceOK(t, s, 100, route(100, 0))
	s.RemovePeer(100)
	if s.HasPeer(100) {
		t.Error("peer still present")
	}
	if got := len(s.AcceptedRoutes(100)); got != 0 {
		t.Errorf("routes = %d", got)
	}
}

func TestStats(t *testing.T) {
	s := testServer(t, "DE-CIX")
	addPeer(t, s, 100, 1)
	addPeer(t, s, 200, 2)
	announceOK(t, s, 100, route(100, 0, bgp.NewCommunity(0, 15169)))
	announceOK(t, s, 100, route(100, 1))
	announceOK(t, s, 200, route(200, 2, bgp.NewCommunity(0, 15169), bgp.NewCommunity(100, 1)))
	v6 := bgp.Route{
		Prefix:  netutil.SyntheticV6Prefix(0),
		NextHop: netutil.PeerAddrV6(2),
		ASPath:  bgp.ASPath{200},
	}
	announceOK(t, s, 200, v6)

	st := s.Stats()
	if st.MembersV4 != 2 || st.MembersV6 != 2 {
		t.Errorf("members = %d/%d", st.MembersV4, st.MembersV6)
	}
	if st.RoutesV4 != 3 || st.RoutesV6 != 1 {
		t.Errorf("routes = %d/%d", st.RoutesV4, st.RoutesV6)
	}
	if st.PrefixesV4 != 3 || st.PrefixesV6 != 1 {
		t.Errorf("prefixes = %d/%d", st.PrefixesV4, st.PrefixesV6)
	}
	if st.CommunitiesV4 != 3 {
		t.Errorf("communities v4 = %d, want 3", st.CommunitiesV4)
	}
	if st.IXP != "DE-CIX" {
		t.Errorf("IXP = %q", st.IXP)
	}
}

func TestAttachInfoTagsIngress(t *testing.T) {
	s, err := New(Config{
		Scheme:       dictionary.ProfileByName("DE-CIX"),
		AttachInfo:   true,
		InfoPerRoute: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	addPeer(t, s, 100, 1)
	announceOK(t, s, 100, route(100, 0))
	got := s.AcceptedRoutes(100)[0]
	scheme := dictionary.ProfileByName("DE-CIX")
	info0, _ := scheme.Info(0)
	info1, _ := scheme.Info(1)
	if !bgp.HasCommunity(got.Communities, info0) || !bgp.HasCommunity(got.Communities, info1) {
		t.Errorf("informational tags missing: %v", got.Communities)
	}
}

func TestInfoPerRouteClamped(t *testing.T) {
	scheme := dictionary.ProfileByName("BCIX") // InfoCount = 2
	s, err := New(Config{Scheme: scheme, AttachInfo: true, InfoPerRoute: 10})
	if err != nil {
		t.Fatal(err)
	}
	addPeer(t, s, 100, 1)
	announceOK(t, s, 100, route(100, 0))
	got := s.AcceptedRoutes(100)[0]
	if len(got.Communities) != 2 {
		t.Errorf("communities = %v, want exactly the 2 defined info tags", got.Communities)
	}
}
