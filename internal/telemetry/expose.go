package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in Prometheus text exposition
// format v0.0.4: families in name order, one HELP/TYPE header each,
// children in label order, histograms as cumulative _bucket/_sum/
// _count triplets. Families with no samples yet still emit their
// headers, so a scrape shows the full metric catalog from process
// start.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.sortedFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		for _, ch := range f.sortedChildren() {
			if err := writeChild(w, f, ch); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeChild(w io.Writer, f *family, ch *child) error {
	labels := renderLabels(f.labels, ch.values)
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labels, ch.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labels, ch.g.Value())
		return err
	case kindHistogram:
		s := ch.h.snapshot()
		cum := uint64(0)
		for i, bound := range ch.h.bounds {
			cum += s.counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, renderLabelsLE(f.labels, ch.values, formatFloat(bound)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, renderLabelsLE(f.labels, ch.values, "+Inf"), s.count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
			f.name, labels, formatFloat(s.sum), f.name, labels, s.count); err != nil {
			return err
		}
		return nil
	}
	return nil
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeHelp escapes a HELP string per the text format: backslash and
// newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	return renderLabelsLE(names, values, "")
}

// renderLabelsLE renders a label set, appending le when non-empty —
// the histogram bucket form.
func renderLabelsLE(names, values []string, le string) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, SanitizeName(n), escapeLabel(values[i]))
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `le="%s"`, le)
	}
	b.WriteByte('}')
	return b.String()
}

// --- JSON / expvar ------------------------------------------------------

// histJSON is the JSON shape of one histogram.
type histJSON struct {
	Count   uint64       `json:"count"`
	Sum     float64      `json:"sum"`
	Buckets []bucketJSON `json:"buckets"`
}

// bucketJSON is one cumulative bucket.
type bucketJSON struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// Snapshot returns every metric's current value keyed by its
// exposition name (label values rendered prometheus-style into the
// key). Counters and gauges map to integers, histograms to
// {count, sum, buckets} objects with buckets in bound order.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	for _, f := range r.sortedFamilies() {
		for _, ch := range f.sortedChildren() {
			key := f.name + renderLabels(f.labels, ch.values)
			switch f.kind {
			case kindCounter:
				out[key] = ch.c.Value()
			case kindGauge:
				out[key] = ch.g.Value()
			case kindHistogram:
				s := ch.h.snapshot()
				hj := histJSON{Count: s.count, Sum: s.sum}
				cum := uint64(0)
				for i, bound := range ch.h.bounds {
					cum += s.counts[i]
					hj.Buckets = append(hj.Buckets, bucketJSON{LE: formatFloat(bound), Count: cum})
				}
				hj.Buckets = append(hj.Buckets, bucketJSON{LE: "+Inf", Count: s.count})
				out[key] = hj
			}
		}
	}
	return out
}

// WriteJSON dumps the registry as an indented JSON object — the
// telemetry.json health record archived next to each snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// writeExpvar renders an expvar-compatible /debug/vars document: the
// process-wide published vars (cmdline, memstats, …) followed by this
// registry's metrics as top-level keys.
func (r *Registry) writeExpvar(w io.Writer) {
	fmt.Fprintf(w, "{\n")
	first := true
	expvar.Do(func(kv expvar.KeyValue) {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
	})
	snap := r.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	// Sorted for a stable document; Snapshot keys are unordered.
	sort.Strings(keys)
	for _, k := range keys {
		v, err := json.Marshal(snap[k])
		if err != nil {
			continue
		}
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", k, v)
	}
	fmt.Fprintf(w, "\n}\n")
}

// Handler returns the operational HTTP surface: /metrics (Prometheus
// text format), /debug/vars (expvar-style JSON), and the standard
// /debug/pprof/ endpoints for live profiling.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.writeExpvar(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
