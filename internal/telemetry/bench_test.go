package telemetry_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ixplight/internal/lg"
	"ixplight/internal/telemetry"
)

// lgFixture is a minimal looking glass answering only /status — enough
// for the logical-call hot path the benchmark drives.
func lgFixture() (*httptest.Server, error) {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"ixp":"BENCH","version":"1.0","rs_asn":64512}`))
	})), nil
}

// BenchmarkTelemetryOverhead measures the cost of each instrument hot
// path, enabled and disabled. The disabled (nil-registry) cases are
// the contract the instrumented subsystems rely on: report 0 B/op.
func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("counter-inc", func(b *testing.B) {
		c := telemetry.New().Counter("ixplight_bench_total", "")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("counter-inc-disabled", func(b *testing.B) {
		var r *telemetry.Registry
		c := r.Counter("ixplight_bench_total", "")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("counter-vec-with-inc", func(b *testing.B) {
		v := telemetry.New().CounterVec("ixplight_bench_vec_total", "", "cause")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v.With("transport").Inc()
		}
	})
	b.Run("histogram-observe", func(b *testing.B) {
		h := telemetry.New().Histogram("ixplight_bench_seconds", "", nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(0.005)
		}
	})
	b.Run("histogram-observe-parallel", func(b *testing.B) {
		h := telemetry.New().Histogram("ixplight_bench_par_seconds", "", nil)
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				h.Observe(0.005)
			}
		})
	})
	b.Run("histogram-observe-disabled", func(b *testing.B) {
		var r *telemetry.Registry
		h := r.Histogram("ixplight_bench_seconds", "", nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(0.005)
		}
	})
}

// BenchmarkSpanOverhead pins the three cost tiers of hierarchical
// tracing, from cheapest to dearest:
//
//   - disabled: no sink installed — the every-binary default. The
//     contract is 0 B/op, 0 allocs/op; instrumented hot paths pay
//     nothing until someone passes -trace.
//   - sampled: a sink is installed but the head-based sampler drops
//     the trace at its root — the cost of saying no once per trace.
//   - recorded: the full path — span allocated, attribute attached,
//     emitted to a sink.
func BenchmarkSpanOverhead(b *testing.B) {
	ctx := context.Background()
	b.Run("disabled", func(b *testing.B) {
		r := telemetry.New() // no sink installed
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, sp := telemetry.StartSpan(ctx, r, "bench.op")
			sp.SetAttr("k", "v")
			sp.End()
		}
	})
	b.Run("sampled", func(b *testing.B) {
		r := telemetry.New()
		r.SetSpanSink(discardSink{})
		r.SetSampler(0, 1) // every root sampled out
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, sp := telemetry.StartSpan(ctx, r, "bench.op")
			sp.SetAttr("k", "v")
			sp.End()
		}
	})
	b.Run("recorded", func(b *testing.B) {
		r := telemetry.New()
		r.SetSpanSink(discardSink{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, sp := telemetry.StartSpan(ctx, r, "bench.op")
			sp.SetAttr("k", "v")
			sp.End()
		}
	})
}

type discardSink struct{}

func (discardSink) Emit(telemetry.Span) {}

// BenchmarkLGClientTelemetry compares the LG client's logical-call
// hot path with instrumentation off (nil Metrics — must not add
// allocations over the seed behaviour) and on.
func BenchmarkLGClientTelemetry(b *testing.B) {
	server, err := lgFixture()
	if err != nil {
		b.Fatal(err)
	}
	defer server.Close()
	bench := func(b *testing.B, m *lg.Metrics) {
		c := lg.NewClient(server.URL, lg.ClientOptions{Metrics: m})
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Status(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { bench(b, nil) })
	b.Run("on", func(b *testing.B) {
		bench(b, lg.NewMetrics(telemetry.New()))
	})
}

// BenchmarkDisabledInstrumentHelpers pins the nil-receiver helper
// pattern: zero-time clock plus ignored ObserveSince.
func BenchmarkDisabledInstrumentHelpers(b *testing.B) {
	var r *telemetry.Registry
	h := r.Histogram("ixplight_bench_helper_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(time.Time{})
	}
}
