package telemetry

import (
	"fmt"
	"strconv"
	"sync"
	"time"
)

// SpanSink receives completed spans. Implementations must be safe for
// concurrent Emit calls.
type SpanSink interface {
	Emit(Span)
}

// sinkBox wraps the interface so it can live in an atomic.Pointer.
type sinkBox struct{ sink SpanSink }

// SetSpanSink installs (or, with nil, removes) the span sink. Without
// a sink StartSpan returns nil and span tracing costs nothing.
func (r *Registry) SetSpanSink(s SpanSink) {
	if r == nil {
		return
	}
	if s == nil {
		r.sink.Store(nil)
		return
	}
	r.sink.Store(&sinkBox{sink: s})
}

// TraceID identifies one trace: a tree of spans covering a whole run,
// crawl or request. The zero value means "no trace".
type TraceID uint64

// SpanID identifies one span within a trace. The zero value marks a
// root span's ParentID.
type SpanID uint64

// String renders the id as fixed-width hex (the ledger encoding).
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// String renders the id as fixed-width hex (the ledger encoding).
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// AttrKind tags how a span attribute's rendered Value should be
// re-interpreted by consumers (tracecat, the Chrome exporter). The
// zero value is AttrString, so untagged composite literals keep
// meaning plain strings.
type AttrKind uint8

const (
	AttrString AttrKind = iota
	AttrInt
	AttrBool
	AttrFloat
	AttrDuration
)

// Attr is one span attribute. Value always carries the rendered text;
// Kind records the original type so aggregation tools need not guess.
type Attr struct {
	Key   string
	Value string
	Kind  AttrKind
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, v int64) Attr {
	return Attr{Key: key, Value: strconv.FormatInt(v, 10), Kind: AttrInt}
}

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr {
	return Attr{Key: key, Value: strconv.FormatBool(v), Kind: AttrBool}
}

// Float builds a float attribute.
func Float(key string, v float64) Attr {
	return Attr{Key: key, Value: strconv.FormatFloat(v, 'g', -1, 64), Kind: AttrFloat}
}

// Duration builds a duration attribute (Value is time.Duration syntax,
// re-parseable with time.ParseDuration).
func Duration(key string, d time.Duration) Attr {
	return Attr{Key: key, Value: d.String(), Kind: AttrDuration}
}

// Event is one timestamped point inside a span — a retry, a budget
// trip, a checkpoint save — cheaper than a child span when there is no
// duration to measure.
type Event struct {
	Name  string
	Time  time.Time
	Attrs []Attr
}

// spanState is the mutable part of a live span, shared by reference so
// emitted copies stay plain data (no locks to copy).
type spanState struct {
	mu    sync.Mutex
	ended bool
}

// Span is one timed operation in a trace. Start one with the package
// StartSpan (context-propagating) or Registry.StartSpan (explicit
// root), attach attributes and events, call End. All methods are
// no-ops on a nil receiver, so instrumented code never checks whether
// tracing is on. SetAttr, Event and End are safe to call concurrently;
// End is idempotent — the first call emits, later ones do nothing.
type Span struct {
	Name   string
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	Start  time.Time
	Stop   time.Time
	Attrs  []Attr
	Events []Event

	sink SpanSink
	st   *spanState
}

// StartSpan begins a root span with no context to inherit from — the
// explicit form used by code that has no context.Context in reach
// (the analysis package's cache hooks). It returns nil — a no-op
// span — when the registry is nil, no sink is installed, or the
// head-based sampler drops the new trace.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	box := r.sink.Load()
	if box == nil {
		return nil
	}
	if !r.sampleRoot() {
		return nil
	}
	return newSpan(name, newTraceID(), 0, box.sink)
}

func newSpan(name string, trace TraceID, parent SpanID, sink SpanSink) *Span {
	return &Span{
		Name:   name,
		Trace:  trace,
		ID:     newSpanID(),
		Parent: parent,
		Start:  time.Now(),
		sink:   sink,
		st:     &spanState{},
	}
}

// SetAttr attaches one string attribute.
func (s *Span) SetAttr(key, value string) { s.setAttr(Attr{Key: key, Value: value}) }

// SetAttrInt attaches one integer attribute.
func (s *Span) SetAttrInt(key string, v int64) { s.setAttr(Int(key, v)) }

// SetAttrBool attaches one boolean attribute.
func (s *Span) SetAttrBool(key string, v bool) { s.setAttr(Bool(key, v)) }

// SetAttrDuration attaches one duration attribute.
func (s *Span) SetAttrDuration(key string, d time.Duration) { s.setAttr(Duration(key, d)) }

func (s *Span) setAttr(a Attr) {
	if s == nil {
		return
	}
	s.st.mu.Lock()
	if !s.st.ended {
		s.Attrs = append(s.Attrs, a)
	}
	s.st.mu.Unlock()
}

// Event records one timestamped in-span event.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.st.mu.Lock()
	if !s.st.ended {
		s.Events = append(s.Events, Event{Name: name, Time: time.Now(), Attrs: attrs})
	}
	s.st.mu.Unlock()
}

// End stamps the span's stop time and emits it to the sink. End is
// idempotent and safe to race with SetAttr/Event from other
// goroutines: exactly one emission happens, carrying every attribute
// attached before it.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.st.mu.Lock()
	if s.st.ended {
		s.st.mu.Unlock()
		return
	}
	s.st.ended = true
	s.Stop = time.Now()
	rec := *s
	s.st.mu.Unlock()
	s.sink.Emit(rec)
}

// Duration is the span's elapsed time (0 on nil or before End).
func (s *Span) Duration() time.Duration {
	if s == nil || s.Stop.IsZero() {
		return 0
	}
	return s.Stop.Sub(s.Start)
}

// RecordingSink collects spans in memory, for tests asserting on
// emitted spans.
type RecordingSink struct {
	mu    sync.Mutex
	spans []Span
}

// Emit implements SpanSink.
func (k *RecordingSink) Emit(s Span) {
	k.mu.Lock()
	k.spans = append(k.spans, s)
	k.mu.Unlock()
}

// Spans returns a copy of everything emitted so far.
func (k *RecordingSink) Spans() []Span {
	k.mu.Lock()
	defer k.mu.Unlock()
	return append([]Span(nil), k.spans...)
}

// Named returns the emitted spans with the given name.
func (k *RecordingSink) Named(name string) []Span {
	k.mu.Lock()
	defer k.mu.Unlock()
	var out []Span
	for _, s := range k.spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}
