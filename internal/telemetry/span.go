package telemetry

import (
	"sync"
	"time"
)

// SpanSink receives completed spans. Implementations must be safe for
// concurrent Emit calls.
type SpanSink interface {
	Emit(Span)
}

// sinkBox wraps the interface so it can live in an atomic.Pointer.
type sinkBox struct{ sink SpanSink }

// SetSpanSink installs (or, with nil, removes) the span sink. Without
// a sink StartSpan returns nil and span tracing costs nothing.
func (r *Registry) SetSpanSink(s SpanSink) {
	if r == nil {
		return
	}
	if s == nil {
		r.sink.Store(nil)
		return
	}
	r.sink.Store(&sinkBox{sink: s})
}

// Attr is one span attribute.
type Attr struct {
	Key   string
	Value string
}

// Span is one timed operation. Spans are cheap, manual, and
// single-goroutine: start one with Registry.StartSpan, attach
// attributes, call End. All methods are no-ops on a nil receiver, so
// instrumented code never checks whether tracing is on.
type Span struct {
	Name  string
	Start time.Time
	Stop  time.Time
	Attrs []Attr

	sink SpanSink
}

// StartSpan begins a span. It returns nil — a no-op span — when the
// registry is nil or no sink is installed.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	box := r.sink.Load()
	if box == nil {
		return nil
	}
	return &Span{Name: name, Start: time.Now(), sink: box.sink}
}

// SetAttr attaches one key/value attribute.
func (s *Span) SetAttr(key, value string) {
	if s != nil {
		s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
	}
}

// End stamps the span's stop time and emits it to the sink. Calling
// End twice emits twice; don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Stop = time.Now()
	s.sink.Emit(*s)
}

// Duration is the span's elapsed time (0 on nil or before End).
func (s *Span) Duration() time.Duration {
	if s == nil || s.Stop.IsZero() {
		return 0
	}
	return s.Stop.Sub(s.Start)
}

// RecordingSink collects spans in memory, for tests asserting on
// emitted spans.
type RecordingSink struct {
	mu    sync.Mutex
	spans []Span
}

// Emit implements SpanSink.
func (k *RecordingSink) Emit(s Span) {
	k.mu.Lock()
	k.spans = append(k.spans, s)
	k.mu.Unlock()
}

// Spans returns a copy of everything emitted so far.
func (k *RecordingSink) Spans() []Span {
	k.mu.Lock()
	defer k.mu.Unlock()
	return append([]Span(nil), k.spans...)
}

// Named returns the emitted spans with the given name.
func (k *RecordingSink) Named(name string) []Span {
	k.mu.Lock()
	defer k.mu.Unlock()
	var out []Span
	for _, s := range k.spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}
