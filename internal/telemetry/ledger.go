package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// LedgerVersion is the trace ledger format version. It is written in
// the ledger's header line and checked on read, so a consumer never
// silently misreads records from a different era (pinned by the
// golden-fixture test).
const LedgerVersion = 1

// ledgerKind is the header's format discriminator.
const ledgerKind = "ixplight-trace"

// ledgerHeader is the ledger's first line.
type ledgerHeader struct {
	V    int    `json:"v"`
	Kind string `json:"kind"`
}

// RecordAttr is one attribute in ledger encoding. T is the AttrKind
// name ("int", "bool", "float", "dur"), omitted for plain strings.
type RecordAttr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
	T     string `json:"t,omitempty"`
}

// RecordEvent is one in-span event in ledger encoding; At is
// UnixNano.
type RecordEvent struct {
	Name  string       `json:"name"`
	At    int64        `json:"at"`
	Attrs []RecordAttr `json:"attrs,omitempty"`
}

// SpanRecord is one completed span in ledger encoding. Start and End
// are UnixNano; Parent is empty on root spans.
type SpanRecord struct {
	Trace  string        `json:"trace"`
	ID     string        `json:"id"`
	Parent string        `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Start  int64         `json:"start"`
	End    int64         `json:"end"`
	Attrs  []RecordAttr  `json:"attrs,omitempty"`
	Events []RecordEvent `json:"events,omitempty"`
}

// Root reports whether the record is a trace root.
func (r *SpanRecord) Root() bool { return r.Parent == "" }

// Duration is the record's elapsed time.
func (r *SpanRecord) Duration() time.Duration { return time.Duration(r.End - r.Start) }

// Attr returns the last value recorded for key ("" when absent).
func (r *SpanRecord) Attr(key string) string {
	for i := len(r.Attrs) - 1; i >= 0; i-- {
		if r.Attrs[i].Key == key {
			return r.Attrs[i].Value
		}
	}
	return ""
}

var attrKindNames = map[AttrKind]string{
	AttrInt:      "int",
	AttrBool:     "bool",
	AttrFloat:    "float",
	AttrDuration: "dur",
}

func recordAttrs(attrs []Attr) []RecordAttr {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]RecordAttr, len(attrs))
	for i, a := range attrs {
		out[i] = RecordAttr{Key: a.Key, Value: a.Value, T: attrKindNames[a.Kind]}
	}
	return out
}

// Record converts a completed span to its ledger encoding.
func Record(s Span) SpanRecord {
	rec := SpanRecord{
		Trace: s.Trace.String(),
		ID:    s.ID.String(),
		Name:  s.Name,
		Start: s.Start.UnixNano(),
		End:   s.Stop.UnixNano(),
		Attrs: recordAttrs(s.Attrs),
	}
	if s.Parent != 0 {
		rec.Parent = s.Parent.String()
	}
	for _, e := range s.Events {
		rec.Events = append(rec.Events, RecordEvent{
			Name: e.Name, At: e.Time.UnixNano(), Attrs: recordAttrs(e.Attrs),
		})
	}
	return rec
}

// JSONLSink is a buffered SpanSink writing a per-run trace ledger:
// one header line followed by one JSON span record per line. The file
// is size-capped — once maxBytes of spans are written, later spans
// are counted in Dropped instead of growing the ledger without bound
// (an 84-day crawl's neighbor spans add up). Emit is safe for
// concurrent use; call Close (or at least Flush) before reading the
// file.
type JSONLSink struct {
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	max     int64
	written int64
	dropped int64
	err     error
}

// DefaultLedgerCap is the JSONLSink size cap used when NewJSONLSink
// gets maxBytes <= 0 — generous for any realistic run, small enough
// that a runaway span loop cannot fill a disk.
const DefaultLedgerCap int64 = 256 << 20

// NewJSONLSink creates (truncating) the ledger file at path and
// writes its header line. maxBytes <= 0 applies DefaultLedgerCap.
func NewJSONLSink(path string, maxBytes int64) (*JSONLSink, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultLedgerCap
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	k := &JSONLSink{f: f, w: bufio.NewWriterSize(f, 64<<10), max: maxBytes}
	hdr, _ := json.Marshal(ledgerHeader{V: LedgerVersion, Kind: ledgerKind})
	k.w.Write(hdr)
	k.w.WriteByte('\n')
	k.written = int64(len(hdr)) + 1
	return k, nil
}

// Emit implements SpanSink.
func (k *JSONLSink) Emit(s Span) {
	line, err := json.Marshal(Record(s))
	k.mu.Lock()
	defer k.mu.Unlock()
	if err != nil {
		k.dropped++
		return
	}
	if k.err != nil || k.written+int64(len(line))+1 > k.max {
		k.dropped++
		return
	}
	if _, err := k.w.Write(line); err != nil {
		k.err = err
		k.dropped++
		return
	}
	k.w.WriteByte('\n')
	k.written += int64(len(line)) + 1
}

// Dropped reports how many spans the size cap (or a write error)
// discarded.
func (k *JSONLSink) Dropped() int64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.dropped
}

// Err reports the first write error, if any.
func (k *JSONLSink) Err() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.err
}

// Flush pushes buffered records to the file, so the ledger can be
// read mid-run (the soak harness validates it after every phase).
func (k *JSONLSink) Flush() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if err := k.w.Flush(); err != nil && k.err == nil {
		k.err = err
	}
	return k.err
}

// Close flushes and closes the ledger file.
func (k *JSONLSink) Close() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	ferr := k.w.Flush()
	cerr := k.f.Close()
	if k.err != nil {
		return k.err
	}
	if ferr != nil {
		return ferr
	}
	return cerr
}

// Ledger is one parsed trace ledger.
type Ledger struct {
	Version int
	Spans   []SpanRecord
}

// ReadLedger parses the trace ledger at path.
func ReadLedger(path string) (*Ledger, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	l, err := ParseLedger(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return l, nil
}

// ParseLedger parses a trace ledger stream: the header line is
// required and its version must match LedgerVersion.
func ParseLedger(r io.Reader) (*Ledger, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace ledger: empty file")
	}
	var hdr ledgerHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Kind != ledgerKind {
		return nil, fmt.Errorf("trace ledger: missing %q header line", ledgerKind)
	}
	if hdr.V != LedgerVersion {
		return nil, fmt.Errorf("trace ledger: version %d, this build reads %d", hdr.V, LedgerVersion)
	}
	l := &Ledger{Version: hdr.V}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("trace ledger: line %d: %w", line, err)
		}
		l.Spans = append(l.Spans, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return l, nil
}
