package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestNilRegistryIsNoOp: the entire API must be callable through a nil
// registry — nil instruments, nil spans, empty exposition — because
// that is the default state of every instrumented subsystem.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("ixplight_nil_total", "")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter must stay 0")
	}
	cv := r.CounterVec("ixplight_nil_vec_total", "", "l")
	cv.With("x").Inc()
	g := r.Gauge("ixplight_nil_gauge", "")
	g.Set(3)
	g.Inc()
	g.Dec()
	if g.Value() != 0 {
		t.Error("nil gauge must stay 0")
	}
	gv := r.GaugeVec("ixplight_nil_gauge_vec", "", "l")
	gv.With("x").Set(1)
	h := r.Histogram("ixplight_nil_seconds", "", nil)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram must stay empty")
	}
	hv := r.HistogramVec("ixplight_nil_vec_seconds", "", nil, "l")
	hv.With("x").Observe(1)
	sp := r.StartSpan("nil")
	sp.SetAttr("k", "v")
	sp.End()
	if sp.Duration() != 0 {
		t.Error("nil span duration must be 0")
	}
	r.SetSpanSink(&RecordingSink{})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil registry exposition = %q, want empty", buf.String())
	}
	if len(r.Snapshot()) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

// TestZeroTimeObserveSinceIgnored pins the disabled-clock contract the
// instrument helpers rely on: m.now() returns the zero time when
// telemetry is off, and ObserveSince must drop it.
func TestZeroTimeObserveSinceIgnored(t *testing.T) {
	r := New()
	h := r.Histogram("ixplight_zero_seconds", "", nil)
	h.ObserveSince(time.Time{})
	if h.Count() != 0 {
		t.Errorf("count = %d after zero-time observe, want 0", h.Count())
	}
}

func TestSanitizeName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"ixplight_lg_requests_total", "ixplight_lg_requests_total"},
		{"IXPLight LG++Demo", "ixplight_lg_demo"},
		{"9lives", "_9lives"},
		{"a--b..c", "a_b_c"},
		{"", "_"},
		{"___", "_"},
	}
	for _, c := range cases {
		if got := SanitizeName(c.in); got != c.want {
			t.Errorf("SanitizeName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCounterMonotonic(t *testing.T) {
	r := New()
	c := r.Counter("ixplight_mono_total", "")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if c.Value() != 5 {
		t.Errorf("value = %d, want 5", c.Value())
	}
}

func TestVecChildrenAreDistinctAndIdempotent(t *testing.T) {
	r := New()
	v := r.CounterVec("ixplight_vec_total", "", "call")
	v.With("a").Inc()
	v.With("a").Inc()
	v.With("b").Inc()
	if v.With("a").Value() != 2 || v.With("b").Value() != 1 {
		t.Errorf("children = a:%d b:%d, want a:2 b:1", v.With("a").Value(), v.With("b").Value())
	}
	// Re-registering the same family returns the same instruments.
	if r.CounterVec("ixplight_vec_total", "", "call").With("a") != v.With("a") {
		t.Error("re-registration must return the same child")
	}
}

func TestReRegistrationKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("ixplight_shape_total", "")
	defer func() {
		if recover() == nil {
			t.Error("want panic on kind mismatch")
		}
	}()
	r.Gauge("ixplight_shape_total", "")
}

func TestHistogramBucketMath(t *testing.T) {
	r := New()
	h := r.Histogram("ixplight_buckets_seconds", "", []float64{0.25, 1, 5})
	for _, v := range []float64{0.125, 0.25, 0.5, 2, 8} {
		h.Observe(v)
	}
	s := h.snapshot()
	// 0.125 and 0.25 land in le=0.25 (le is inclusive), 0.5 in le=1,
	// 2 in le=5, 8 in +Inf.
	want := []uint64{2, 1, 1, 1}
	for i, n := range want {
		if s.counts[i] != n {
			t.Errorf("bucket %d = %d, want %d", i, s.counts[i], n)
		}
	}
	if s.count != 5 {
		t.Errorf("count = %d, want 5", s.count)
	}
	if s.sum != 10.875 {
		t.Errorf("sum = %v, want 10.875", s.sum)
	}
}

func TestSpanSinkRecords(t *testing.T) {
	r := New()
	if sp := r.StartSpan("before.sink"); sp != nil {
		t.Error("StartSpan without a sink must return nil")
	}
	sink := &RecordingSink{}
	r.SetSpanSink(sink)
	sp := r.StartSpan("test.op")
	sp.SetAttr("ixp", "DE-CIX")
	sp.End()
	spans := sink.Named("test.op")
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	got := spans[0]
	if got.Duration() < 0 {
		t.Errorf("duration = %v", got.Duration())
	}
	if len(got.Attrs) != 1 || got.Attrs[0] != (Attr{Key: "ixp", Value: "DE-CIX"}) {
		t.Errorf("attrs = %v", got.Attrs)
	}
	r.SetSpanSink(nil)
	if sp := r.StartSpan("after.removal"); sp != nil {
		t.Error("StartSpan after sink removal must return nil")
	}
}

// TestMetricsGolden pins the Prometheus text exposition byte-for-byte:
// name sanitization, label escaping, and the cumulative
// _bucket/_sum/_count histogram triplets. Regenerate with
//
//	go test ./internal/telemetry -run TestMetricsGolden -update
func TestMetricsGolden(t *testing.T) {
	r := New()
	// A name that needs sanitizing, and a HELP with a backslash.
	r.Counter("IXPLight Golden++Total", `crawls finished (path C:\data)`).Add(42)
	// Label values exercising every escape: backslash, quote, newline.
	v := r.CounterVec("ixplight_golden_labeled_total", "labeled counter.", "cause", "detail")
	v.With("http_5xx", `say "again"`).Inc()
	v.With("transport", "a\\b\nc").Add(2)
	r.Gauge("ixplight_golden_in_flight", "a gauge.").Set(3)
	h := r.Histogram("ixplight_golden_seconds", "a histogram.", []float64{0.25, 1, 5})
	for _, x := range []float64{0.125, 0.5, 2, 8} {
		h.Observe(x)
	}
	hv := r.HistogramVec("ixplight_golden_by_call_seconds", "a labeled histogram.", []float64{1}, "call")
	hv.With("status").Observe(0.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestEmptyFamiliesStillExposeHeaders: a fresh process's scrape must
// show the full metric catalog, samples or not.
func TestEmptyFamiliesStillExposeHeaders(t *testing.T) {
	r := New()
	r.CounterVec("ixplight_catalog_total", "registered but never incremented.", "cause")
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# HELP ixplight_catalog_total") ||
		!strings.Contains(out, "# TYPE ixplight_catalog_total counter") {
		t.Errorf("catalog headers missing:\n%s", out)
	}
}

func TestJSONSnapshot(t *testing.T) {
	r := New()
	r.Counter("ixplight_json_total", "").Add(7)
	r.GaugeVec("ixplight_json_gauge", "", "l").With("x").Set(-2)
	r.Histogram("ixplight_json_seconds", "", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("telemetry.json is not valid JSON: %v", err)
	}
	if doc["ixplight_json_total"] != float64(7) {
		t.Errorf("counter = %v", doc["ixplight_json_total"])
	}
	if doc[`ixplight_json_gauge{l="x"}`] != float64(-2) {
		t.Errorf("gauge = %v", doc[`ixplight_json_gauge{l="x"}`])
	}
	hist, ok := doc["ixplight_json_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("histogram = %T", doc["ixplight_json_seconds"])
	}
	if hist["count"] != float64(1) || hist["sum"] != float64(0.5) {
		t.Errorf("histogram = %v", hist)
	}
	buckets, ok := hist["buckets"].([]any)
	if !ok || len(buckets) != 2 {
		t.Errorf("buckets = %v", hist["buckets"])
	}
}

// TestHistogramConcurrentObserve hammers one histogram from
// GOMAXPROCS goroutines with scrapes racing the writers — the test the
// -race run leans on. Every observation must be counted exactly once.
func TestHistogramConcurrentObserve(t *testing.T) {
	r := New()
	h := r.Histogram("ixplight_hammer_seconds", "", []float64{0.5, 2})
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent scraper: exercises snapshot() against live writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var buf bytes.Buffer
				_ = r.WritePrometheus(&buf)
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < workers; w++ {
		ww.Add(1)
		go func() {
			defer ww.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(1.0)
			}
		}()
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	total := uint64(workers * perWorker)
	if h.Count() != total {
		t.Errorf("count = %d, want %d", h.Count(), total)
	}
	// Every observation is exactly 1.0, so the CAS-summed total is exact.
	if h.Sum() != float64(total) {
		t.Errorf("sum = %v, want %v", h.Sum(), float64(total))
	}
	s := h.snapshot()
	if s.counts[1] != total { // 1.0 lands in le=2
		t.Errorf("le=2 bucket = %d, want %d", s.counts[1], total)
	}
}
