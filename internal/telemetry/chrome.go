package telemetry

import (
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one Chrome trace_event "complete" (ph=X) slice —
// the subset of the catapult format Perfetto's legacy loader reads.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`  // microseconds
	Dur  int64          `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports span records as a Chrome trace_event JSON
// document loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Each trace gets its own thread track, so
// concurrent traces (parallel neighbor crawls of a multi-IXP run)
// render side by side; within a track the viewer nests slices by
// their time ranges, which mirrors span parentage.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	// Stable track assignment: traces in first-appearance order.
	tids := make(map[string]int)
	order := make([]string, 0)
	for _, s := range spans {
		if _, ok := tids[s.Trace]; !ok {
			tids[s.Trace] = len(order) + 1
			order = append(order, s.Trace)
		}
	}
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		args := make(map[string]any, len(s.Attrs)+2)
		args["trace"] = s.Trace
		args["span"] = s.ID
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   s.Start / 1e3,
			Dur:  (s.End - s.Start) / 1e3,
			Pid:  1,
			Tid:  tids[s.Trace],
		})
		events[len(events)-1].Args = args
	}
	// The viewer wants slices on one track sorted by start time.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Tid != events[j].Tid {
			return events[i].Tid < events[j].Tid
		}
		return events[i].Ts < events[j].Ts
	})
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
}
