package telemetry

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Trace and span ids are process-local counters: cheap, collision-free
// within one run, and stable enough for tests to reason about
// parentage. A ledger is always written by one process, so global
// uniqueness buys nothing here.
var (
	traceIDs atomic.Uint64
	spanIDs  atomic.Uint64
)

func newTraceID() TraceID { return TraceID(traceIDs.Add(1)) }
func newSpanID() SpanID   { return SpanID(spanIDs.Add(1)) }

// spanCtxKey carries the active span through a context chain.
type spanCtxKey struct{}

// notSampled marks a context whose root span was dropped by the
// head-based sampler: every descendant StartSpan sees the marker and
// stays silent, so a trace is recorded whole or not at all.
var notSampled = &Span{}

// ContextWithSpan returns a context carrying s as the active span.
// StartSpan calls it for you; it is exported for tests and for code
// that moves spans across API boundaries that don't take a context.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the active span, or nil when the context
// carries none (or carries a sampled-out trace).
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	if s == notSampled {
		return nil
	}
	return s
}

// StartSpan begins a span as a child of the context's active span and
// returns a context carrying the new span, for the next layer down.
// With no active span it starts a new trace, subject to the
// registry's head-based sampler: the sampling decision is made once
// at the root and inherited by every descendant through the context.
//
// When the registry is nil, no sink is installed, or the trace was
// sampled out, the original context and a nil (no-op) span come back —
// with no allocations on the nil-registry/no-sink path, the same
// zero-cost contract the metric instruments honour (pinned by
// BenchmarkSpanOverhead/disabled).
func StartSpan(ctx context.Context, r *Registry, name string) (context.Context, *Span) {
	if r == nil {
		return ctx, nil
	}
	box := r.sink.Load()
	if box == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanCtxKey{}).(*Span)
	if parent == notSampled {
		return ctx, nil
	}
	var trace TraceID
	var parentID SpanID
	if parent != nil {
		trace, parentID = parent.Trace, parent.ID
	} else {
		if !r.sampleRoot() {
			return ContextWithSpan(ctx, notSampled), nil
		}
		trace = newTraceID()
	}
	s := newSpan(name, trace, parentID, box.sink)
	return ContextWithSpan(ctx, s), s
}

// sampler makes head-based keep/drop decisions for new traces. The
// generator is seeded, so a run replayed with the same seed and the
// same sequence of root spans samples the same traces — chaos
// schedules and tests stay deterministic.
type sampler struct {
	mu   sync.Mutex
	rng  *rand.Rand
	rate float64
}

func (s *sampler) sample() bool {
	if s.rate >= 1 {
		return true
	}
	if s.rate <= 0 {
		return false
	}
	s.mu.Lock()
	keep := s.rng.Float64() < s.rate
	s.mu.Unlock()
	return keep
}

// SetSampler installs a head-based trace sampler: each new trace is
// kept with probability rate, decided once at its root span and
// inherited by every child. rate >= 1 (or never calling SetSampler)
// keeps everything; rate <= 0 drops everything. The seed makes the
// decision sequence reproducible.
func (r *Registry) SetSampler(rate float64, seed int64) {
	if r == nil {
		return
	}
	if rate >= 1 {
		r.smp.Store(nil)
		return
	}
	r.smp.Store(&sampler{rng: rand.New(rand.NewSource(seed)), rate: rate})
}

// sampleRoot decides whether a new trace is recorded (true without a
// sampler installed).
func (r *Registry) sampleRoot() bool {
	s := r.smp.Load()
	if s == nil {
		return true
	}
	return s.sample()
}
