// Package telemetry is the dependency-free metrics and tracing core
// of the collection and analysis pipeline: atomic counters and gauges,
// sharded histograms, a Registry of labeled metric families with
// Prometheus text-format and expvar-style JSON exposition, and
// span-style trace hooks with a pluggable sink.
//
// Everything is nil-safe by design: a nil *Registry hands out nil
// instruments, and every method on a nil instrument is a no-op. A
// library user who never wires a registry pays only an inlined nil
// check on the hot paths — no allocations, no locks, no time.Now
// calls (see BenchmarkTelemetryOverhead).
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric kinds, in exposition vocabulary.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// Registry holds labeled metric families. All methods are safe for
// concurrent use, and every constructor is idempotent: asking twice
// for the same family returns the same instruments, so independent
// subsystems can share one registry without coordination.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family

	sink atomic.Pointer[sinkBox]
	smp  atomic.Pointer[sampler]
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric family: a kind, a help string, label
// names, and one instrument per distinct label-value combination.
type family struct {
	name    string
	help    string
	kind    string
	labels  []string
	buckets []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child
}

// child is one instrument of a family, carrying the label values it
// was created with so exposition can render them back.
type child struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// SanitizeName maps an arbitrary string onto the Prometheus metric
// name charset: runs of invalid characters become single underscores,
// a leading digit is prefixed with one, and letters are lowercased to
// satisfy the repo's ixplight_[a-z_]+ naming rule.
func SanitizeName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	prevUnderscore := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c == '_':
		case c >= 'A' && c <= 'Z':
			c += 'a' - 'A'
		case c >= '0' && c <= '9':
			if b.Len() == 0 {
				b.WriteByte('_')
			}
		default:
			c = '_'
		}
		if c == '_' {
			if prevUnderscore {
				continue
			}
			prevUnderscore = true
		} else {
			prevUnderscore = false
		}
		b.WriteByte(c)
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// family returns the named family, creating it on first use. Asking
// for an existing name with a different kind or label set is a
// programming error and panics — two subsystems silently sharing one
// name with different shapes would corrupt the exposition.
func (r *Registry) family(kind, name, help string, buckets []float64, labels []string) *family {
	name = SanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s(%d labels), was %s(%d labels)",
				name, kind, len(labels), f.kind, len(f.labels)))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:   append([]string(nil), labels...),
		buckets:  buckets,
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// labelKey joins label values into a map key. 0x00 cannot appear in a
// sane label value; even if it does, the worst case is two exotic
// children merging.
func labelKey(values []string) string { return strings.Join(values, "\x00") }

// child returns the instrument for one label-value combination,
// creating it on first use.
func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	ch := f.children[key]
	if ch == nil {
		ch = &child{values: append([]string(nil), values...)}
		switch f.kind {
		case kindCounter:
			ch.c = &Counter{}
		case kindGauge:
			ch.g = &Gauge{}
		case kindHistogram:
			ch.h = newHistogram(f.buckets)
		}
		f.children[key] = ch
	}
	return ch
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// sortedChildren snapshots a family's children in label-value order.
func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	out := make([]*child, 0, len(f.children))
	for _, ch := range f.children {
		out = append(out, ch)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return labelKey(out[i].values) < labelKey(out[j].values)
	})
	return out
}

// --- counters -----------------------------------------------------------

// Counter is a monotonically increasing metric. The zero value is
// ready to use; all methods are no-ops on a nil receiver.
type Counter struct{ n atomic.Int64 }

// Counter returns the unlabeled counter family name. Nil-safe.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.family(kindCounter, name, help, nil, nil).child(nil).c
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family. Nil-safe.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.family(kindCounter, name, help, nil, labels)}
}

// With returns the counter for one label-value combination. Nil-safe.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(values).c
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.n.Add(1)
	}
}

// Add adds d; negative deltas are ignored (counters are monotonic).
func (c *Counter) Add(d int64) {
	if c != nil && d > 0 {
		c.n.Add(d)
	}
}

// Value reads the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// --- gauges -------------------------------------------------------------

// Gauge is a metric that can go up and down. The zero value is ready
// to use; all methods are no-ops on a nil receiver.
type Gauge struct{ n atomic.Int64 }

// Gauge returns the unlabeled gauge family name. Nil-safe.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.family(kindGauge, name, help, nil, nil).child(nil).g
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family. Nil-safe.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.family(kindGauge, name, help, nil, labels)}
}

// With returns the gauge for one label-value combination. Nil-safe.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(values).g
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.n.Store(v)
	}
}

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.n.Add(d)
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.n.Load()
}

// --- histograms (registration; mechanics in histogram.go) ---------------

// Histogram registers an unlabeled histogram with the given upper
// bounds (nil = DefBuckets). Nil-safe.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.family(kindHistogram, name, help, normalizeBuckets(buckets), nil).child(nil).h
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family. Nil-safe.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.family(kindHistogram, name, help, normalizeBuckets(buckets), labels)}
}

// With returns the histogram for one label-value combination. Nil-safe.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(values).h
}
