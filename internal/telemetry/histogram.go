package telemetry

import (
	"math"
	"runtime"
	"sort"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency bounds, in seconds — the usual
// Prometheus spread, extended downward because the in-process looking
// glass answers in microseconds.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// normalizeBuckets sorts and defaults the bounds; a trailing +Inf is
// implicit and dropped if supplied.
func normalizeBuckets(b []float64) []float64 {
	if len(b) == 0 {
		return DefBuckets
	}
	out := append([]float64(nil), b...)
	sort.Float64s(out)
	for len(out) > 0 && math.IsInf(out[len(out)-1], +1) {
		out = out[:len(out)-1]
	}
	return out
}

// Histogram observes a distribution of float64 values (seconds, by
// convention) into fixed cumulative buckets. Observations land in one
// of several shards — each with its own bucket counters and sum — so
// concurrent writers do not serialize on one cache line; a scrape
// folds the shards together. All methods are no-ops on a nil
// receiver.
type Histogram struct {
	bounds []float64
	shards []histShard
	mask   uint32
	rr     atomic.Uint32
}

// histShard is one shard's counters. The padding keeps the busiest
// fields of adjacent shards on separate cache lines.
type histShard struct {
	counts []atomic.Uint64 // len(bounds)+1; the last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-added
	_      [40]byte
}

// histShards picks the shard count: enough parallelism to spread
// GOMAXPROCS writers, rounded up to a power of two for cheap masking.
func histShards() int {
	n := runtime.GOMAXPROCS(0)
	if n > 64 {
		n = 64
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return size
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{
		bounds: bounds,
		shards: make([]histShard, histShards()),
	}
	h.mask = uint32(len(h.shards) - 1)
	for i := range h.shards {
		h.shards[i].counts = make([]atomic.Uint64, len(bounds)+1)
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	sh := &h.shards[h.rr.Add(1)&h.mask]
	// The first bound >= v is exactly the le-bucket the value belongs
	// to; past the last bound it falls into +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	sh.counts[i].Add(1)
	for {
		old := sh.sum.Load()
		if sh.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0. A zero t0 — the
// "telemetry disabled" sentinel handed out by instrument helpers — is
// ignored, so callers can skip the time.Now bookkeeping entirely when
// the registry is off.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil || t0.IsZero() {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// histSnapshot is a folded view of all shards.
type histSnapshot struct {
	counts []uint64 // per-bucket (non-cumulative), +Inf last
	count  uint64
	sum    float64
}

// snapshot folds the shards. Concurrent observations may straddle the
// fold — each observation is still counted exactly once; only the
// sum/count pairing of in-flight observations can skew transiently,
// which scrapes tolerate by design.
func (h *Histogram) snapshot() histSnapshot {
	s := histSnapshot{counts: make([]uint64, len(h.bounds)+1)}
	for i := range h.shards {
		sh := &h.shards[i]
		for b := range sh.counts {
			s.counts[b] += sh.counts[b].Load()
		}
		s.sum += math.Float64frombits(sh.sum.Load())
	}
	for _, c := range s.counts {
		s.count += c
	}
	return s
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.snapshot().count
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.snapshot().sum
}
