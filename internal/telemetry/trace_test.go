package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestStartSpanPropagation: the context returned by StartSpan carries
// the span, and spans started under it become its children — same
// trace, correct parent links, three layers deep.
func TestStartSpanPropagation(t *testing.T) {
	r := New()
	sink := &RecordingSink{}
	r.SetSpanSink(sink)

	ctx, root := StartSpan(context.Background(), r, "root.op")
	if root == nil {
		t.Fatal("root span is nil with a sink installed")
	}
	if got := SpanFromContext(ctx); got != root {
		t.Fatalf("SpanFromContext = %v, want the root span", got)
	}
	cctx, child := StartSpan(ctx, r, "child.op")
	_, grand := StartSpan(cctx, r, "grand.op")
	grand.End()
	child.End()
	root.End()

	spans := sink.Spans()
	if len(spans) != 3 {
		t.Fatalf("emitted %d spans, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	rs, cs, gs := byName["root.op"], byName["child.op"], byName["grand.op"]
	if rs.Parent != 0 {
		t.Errorf("root parent = %v, want 0", rs.Parent)
	}
	if cs.Trace != rs.Trace || gs.Trace != rs.Trace {
		t.Errorf("traces diverge: root %v child %v grand %v", rs.Trace, cs.Trace, gs.Trace)
	}
	if cs.Parent != rs.ID {
		t.Errorf("child parent = %v, want root id %v", cs.Parent, rs.ID)
	}
	if gs.Parent != cs.ID {
		t.Errorf("grandchild parent = %v, want child id %v", gs.Parent, cs.ID)
	}
}

// TestStartSpanDisabledIsFree: with a nil registry or no sink,
// StartSpan returns the context untouched, a nil span, and performs
// zero allocations — the contract every instrumented hot path relies
// on (pinned again, under load, by BenchmarkSpanOverhead/disabled).
func TestStartSpanDisabledIsFree(t *testing.T) {
	ctx := context.Background()
	var nilReg *Registry
	if c, s := StartSpan(ctx, nilReg, "x.y"); c != ctx || s != nil {
		t.Fatal("nil registry: want original ctx and nil span")
	}
	noSink := New()
	if c, s := StartSpan(ctx, noSink, "x.y"); c != ctx || s != nil {
		t.Fatal("no sink: want original ctx and nil span")
	}
	for name, r := range map[string]*Registry{"nil-registry": nilReg, "no-sink": noSink} {
		allocs := testing.AllocsPerRun(100, func() {
			_, sp := StartSpan(ctx, r, "x.y")
			sp.SetAttr("k", "v")
			sp.End()
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs per disabled span, want 0", name, allocs)
		}
	}
}

// TestSpanHammer races N goroutines each producing a chain of child
// spans under one root, with concurrent attribute writes and a racing
// double-End. Run under -race this pins the concurrency contract;
// afterwards every span must be accounted for with correct parentage.
func TestSpanHammer(t *testing.T) {
	const goroutines = 16
	const children = 25
	r := New()
	sink := &RecordingSink{}
	r.SetSpanSink(sink)

	ctx, root := StartSpan(context.Background(), r, "hammer.root")
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < children; i++ {
				cctx, sp := StartSpan(ctx, r, "hammer.child")
				sp.SetAttrInt("g", int64(g))
				_, leaf := StartSpan(cctx, r, "hammer.leaf")
				leaf.Event("tick", Int("i", int64(i)))
				leaf.End()
				go sp.End() // racing End…
				sp.End()    // …with a second End: exactly one emission
			}
		}(g)
	}
	wg.Wait()
	// The racing goroutine Ends may still be in flight; every span is
	// emitted by one of the two calls, so poll briefly for the total.
	want := 2 * goroutines * children
	deadline := time.Now().Add(5 * time.Second)
	for len(sink.Spans()) < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	root.End()
	spans := sink.Spans()
	if len(spans) != want+1 {
		t.Fatalf("emitted %d spans, want %d", len(spans), want+1)
	}
	byID := map[SpanID]Span{}
	for _, s := range spans {
		if _, dup := byID[s.ID]; dup {
			t.Fatalf("span id %v emitted twice", s.ID)
		}
		byID[s.ID] = s
	}
	for _, s := range spans {
		if s.Trace != root.Trace {
			t.Fatalf("span %v in trace %v, want %v", s.ID, s.Trace, root.Trace)
		}
		if s.Name == "hammer.leaf" {
			parent, ok := byID[s.Parent]
			if !ok || parent.Name != "hammer.child" {
				t.Fatalf("leaf %v parent %v is not a child span", s.ID, s.Parent)
			}
		}
	}
}

// TestSamplerDeterministic: the head-based sampler is seeded, so two
// registries given the same seed make the same keep/drop sequence,
// roughly rate of roots survive, and descendants of a dropped root
// stay silent all the way down.
func TestSamplerDeterministic(t *testing.T) {
	const n = 400
	decide := func(seed int64) []bool {
		r := New()
		sink := &RecordingSink{}
		r.SetSpanSink(sink)
		r.SetSampler(0.5, seed)
		out := make([]bool, n)
		for i := range out {
			ctx, sp := StartSpan(context.Background(), r, "sampled.root")
			if sp != nil {
				// A kept trace records its whole subtree…
				_, child := StartSpan(ctx, r, "sampled.child")
				child.End()
				sp.End()
				out[i] = true
				continue
			}
			// …a dropped root silences every descendant.
			cctx, child := StartSpan(ctx, r, "sampled.child")
			if child != nil {
				t.Fatal("child of a sampled-out root was recorded")
			}
			if _, grand := StartSpan(cctx, r, "sampled.grand"); grand != nil {
				t.Fatal("grandchild of a sampled-out root was recorded")
			}
		}
		kept := 0
		for _, k := range out {
			if k {
				kept++
			}
		}
		if got := len(sink.Named("sampled.root")); got != kept {
			t.Fatalf("%d roots emitted, want %d", got, kept)
		}
		if got := len(sink.Named("sampled.child")); got != kept {
			t.Fatalf("%d children emitted, want %d (whole traces only)", got, kept)
		}
		if kept == 0 || kept == n {
			t.Fatalf("kept %d/%d at rate 0.5 — sampler is not sampling", kept, n)
		}
		return out
	}
	a, b := decide(42), decide(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverges between same-seed runs", i)
		}
	}
	c := decide(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == n {
		t.Error("seeds 42 and 43 produced identical decision sequences")
	}

	// Rate 1 (or clearing) keeps everything; rate 0 drops everything.
	r := New()
	sink := &RecordingSink{}
	r.SetSpanSink(sink)
	r.SetSampler(0, 1)
	if _, sp := StartSpan(context.Background(), r, "drop.all"); sp != nil {
		t.Error("rate 0 kept a trace")
	}
	r.SetSampler(1, 1)
	if _, sp := StartSpan(context.Background(), r, "keep.all"); sp == nil {
		t.Error("rate 1 dropped a trace")
	}
}

// TestJSONLSinkRoundTrip: spans written through the ledger sink come
// back from ReadLedger with ids, parentage, typed attributes and
// events intact.
func TestJSONLSinkRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	sink, err := NewJSONLSink(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := New()
	r.SetSpanSink(sink)

	ctx, root := StartSpan(context.Background(), r, "rt.root")
	root.SetAttr("ixp", "DE-CIX")
	root.SetAttrInt("count", 7)
	root.SetAttrBool("partial", true)
	root.SetAttrDuration("wait", 1500*time.Millisecond)
	_, child := StartSpan(ctx, r, "rt.child")
	child.Event("retry", String("cause", "http-500"), Int("attempt", 2))
	child.End()
	root.End()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	led, err := ReadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if led.Version != LedgerVersion {
		t.Fatalf("ledger version %d, want %d", led.Version, LedgerVersion)
	}
	if len(led.Spans) != 2 {
		t.Fatalf("ledger has %d spans, want 2", len(led.Spans))
	}
	// The child ended first, so it is the first record.
	cs, rs := led.Spans[0], led.Spans[1]
	if cs.Name != "rt.child" || rs.Name != "rt.root" {
		t.Fatalf("unexpected record order: %q then %q", cs.Name, rs.Name)
	}
	if !rs.Root() || cs.Root() {
		t.Error("root/child Root() flags are wrong")
	}
	if cs.Parent != rs.ID || cs.Trace != rs.Trace {
		t.Errorf("child parent/trace %s/%s, want %s/%s", cs.Parent, cs.Trace, rs.ID, rs.Trace)
	}
	if got := rs.Attr("ixp"); got != "DE-CIX" {
		t.Errorf("ixp attr = %q", got)
	}
	wantKinds := map[string]string{"count": "int", "partial": "bool", "wait": "dur"}
	for _, a := range rs.Attrs {
		if want, ok := wantKinds[a.Key]; ok && a.T != want {
			t.Errorf("attr %s kind = %q, want %q", a.Key, a.T, want)
		}
	}
	if d, err := time.ParseDuration(rs.Attr("wait")); err != nil || d != 1500*time.Millisecond {
		t.Errorf("wait attr %q does not re-parse to 1.5s", rs.Attr("wait"))
	}
	if len(cs.Events) != 1 || cs.Events[0].Name != "retry" || len(cs.Events[0].Attrs) != 2 {
		t.Fatalf("child events = %+v, want one retry with two attrs", cs.Events)
	}
	if rs.End < rs.Start || cs.End < cs.Start {
		t.Error("span end precedes start")
	}
}

// TestJSONLSinkSizeCap: once the cap is reached later spans are
// dropped and counted, and the truncated ledger still parses cleanly.
func TestJSONLSinkSizeCap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	sink, err := NewJSONLSink(path, 600)
	if err != nil {
		t.Fatal(err)
	}
	r := New()
	r.SetSpanSink(sink)
	for i := 0; i < 50; i++ {
		sp := r.StartSpan("cap.op")
		sp.SetAttr("filler", strings.Repeat("x", 40))
		sp.End()
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	dropped := sink.Dropped()
	if dropped == 0 {
		t.Fatal("no spans dropped under a 600-byte cap")
	}
	led, err := ReadLedger(path)
	if err != nil {
		t.Fatalf("capped ledger does not parse: %v", err)
	}
	if got := int64(len(led.Spans)) + dropped; got != 50 {
		t.Fatalf("written %d + dropped %d != 50 emitted", len(led.Spans), dropped)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() > 600 {
		t.Fatalf("ledger is %d bytes, cap was 600", fi.Size())
	}
}

// goldenSpans builds a fixed two-span trace (deterministic ids and
// timestamps) whose ledger encoding is pinned by testdata/trace.jsonl.
func goldenSpans() []Span {
	base := time.Unix(1700000000, 0).UTC()
	return []Span{
		{
			Name: "collector.neighbor", Trace: 1, ID: 3, Parent: 2,
			Start: base.Add(10 * time.Millisecond), Stop: base.Add(250 * time.Millisecond),
			Attrs: []Attr{String("asn", "64500"), Int("attempts", 2)},
			Events: []Event{{
				Name: "retry", Time: base.Add(120 * time.Millisecond),
				Attrs: []Attr{String("cause", "http-500"), Duration("wait", 100*time.Millisecond)},
			}},
		},
		{
			Name: "collector.collect", Trace: 1, ID: 2,
			Start: base, Stop: base.Add(300 * time.Millisecond),
			Attrs: []Attr{String("ixp", "GOLD-IX"), Bool("partial", false)},
		},
	}
}

// TestLedgerGolden pins the ledger file format: the encoding of a
// fixed trace must match testdata/trace.jsonl byte for byte, and the
// fixture must parse back to the same records. A diff here means the
// format changed — bump LedgerVersion and regenerate with -update.
func TestLedgerGolden(t *testing.T) {
	var buf bytes.Buffer
	hdr, _ := json.Marshal(ledgerHeader{V: LedgerVersion, Kind: ledgerKind})
	buf.Write(hdr)
	buf.WriteByte('\n')
	for _, s := range goldenSpans() {
		line, err := json.Marshal(Record(s))
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	golden := filepath.Join("testdata", "trace.jsonl")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("ledger encoding drifted from golden file (rerun with -update after bumping LedgerVersion):\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	led, err := ReadLedger(golden)
	if err != nil {
		t.Fatal(err)
	}
	if len(led.Spans) != 2 {
		t.Fatalf("golden ledger has %d spans, want 2", len(led.Spans))
	}
	n := led.Spans[0]
	if n.Name != "collector.neighbor" || n.Attr("asn") != "64500" || n.Parent != "0000000000000002" {
		t.Errorf("golden neighbor span parsed wrong: %+v", n)
	}
	if n.Duration() != 240*time.Millisecond {
		t.Errorf("golden neighbor duration = %v, want 240ms", n.Duration())
	}
}

// TestLedgerVersionCheck: a ledger from another format era is
// rejected, never silently misread.
func TestLedgerVersionCheck(t *testing.T) {
	future := fmt.Sprintf("{\"v\":%d,\"kind\":\"ixplight-trace\"}\n", LedgerVersion+1)
	_, err := ParseLedger(strings.NewReader(future))
	if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("version %d", LedgerVersion+1)) {
		t.Fatalf("future version accepted (err=%v)", err)
	}
	if _, err := ParseLedger(strings.NewReader("{\"some\":\"json\"}\n")); err == nil {
		t.Fatal("missing header accepted")
	}
	if _, err := ParseLedger(strings.NewReader("")); err == nil {
		t.Fatal("empty stream accepted")
	}
}

// TestChromeTrace: the exporter emits one complete ("X") event per
// span with microsecond timestamps, grouped on one track per trace.
func TestChromeTrace(t *testing.T) {
	var recs []SpanRecord
	for _, s := range goldenSpans() {
		recs = append(recs, Record(s))
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace is not JSON: %v", err)
	}
	if len(out.TraceEvents) != 2 {
		t.Fatalf("%d events, want 2", len(out.TraceEvents))
	}
	// Events are ordered by (tid, ts): the collect span starts first.
	ev := out.TraceEvents[0]
	if ev.Name != "collector.collect" || ev.Ph != "X" {
		t.Errorf("first event %q ph=%q, want collector.collect ph=X", ev.Name, ev.Ph)
	}
	if ev.Dur != 300_000 {
		t.Errorf("collect dur = %dµs, want 300000", ev.Dur)
	}
	if ev.Ts != time.Unix(1700000000, 0).UnixMicro() {
		t.Errorf("collect ts = %d, want %d", ev.Ts, time.Unix(1700000000, 0).UnixMicro())
	}
	if out.TraceEvents[0].Tid != out.TraceEvents[1].Tid {
		t.Error("spans of one trace landed on different tracks")
	}
	if ev.Args["ixp"] != "GOLD-IX" {
		t.Errorf("collect args = %v, want ixp=GOLD-IX", ev.Args)
	}
}
