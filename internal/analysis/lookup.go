package analysis

import (
	"ixplight/internal/bgp"
	"ixplight/internal/dictionary"
)

// Point lookups for the serving layer (internal/ixpd): per-AS and
// per-community reads straight off an Index's aggregate maps. The
// ranking accessors (TopActionCommunities, CulpritRanking, …) answer
// "who are the top K" by copying and sorting whole aggregates; a
// daemon answering "what about AS X" per request wants the O(1) read
// instead. All lookups are read-only over maps frozen at
// construction, so they follow the Index concurrency contract: safe
// from any number of goroutines.

// ASActivity is one announcing AS's classified activity in one
// address family.
type ASActivity struct {
	// Routes the AS announced into the route server.
	Routes int `json:"routes"`
	// ActionInstances is the number of action communities the AS
	// attached across its routes.
	ActionInstances int `json:"action_instances"`
	// TargetedInstances counts action communities (announced by
	// anyone) targeting this AS.
	TargetedInstances int `json:"targeted_instances"`
	// NonMemberTargeting counts this AS's action instances aimed at
	// ASes that are not members at the route server — its Fig. 7
	// culprit score.
	NonMemberTargeting int `json:"non_member_targeting"`
}

// ASActivity returns the per-AS point lookup for one family. An AS
// absent from the snapshot returns the zero value.
func (ix *Index) ASActivity(asn uint32, v6 bool) ASActivity {
	st := ix.family(v6)
	return ASActivity{
		Routes:             st.perASRoutes[asn],
		ActionInstances:    st.perASActions[asn],
		TargetedInstances:  st.targets[asn],
		NonMemberTargeting: st.culprits[asn],
	}
}

// CommunityUsage is one standard community value's usage in one
// address family.
type CommunityUsage struct {
	// Class is the dictionary classification (JSON-silent: the caller
	// renders it once, not per family).
	Class dictionary.Class `json:"-"`
	// ActionInstances is how many times the value appears as an
	// action community on accepted routes.
	ActionInstances int `json:"action_instances"`
	// NonMemberInstances is how many of those instances target an AS
	// that is not a member at the route server.
	NonMemberInstances int `json:"non_member_instances"`
}

// CommunityUsage returns the per-community point lookup for one
// family. Values never seen in the snapshot classify through the
// scheme and report zero counts.
func (ix *Index) CommunityUsage(c bgp.Community, v6 bool) CommunityUsage {
	st := ix.family(v6)
	return CommunityUsage{
		Class:              ix.Class(c),
		ActionInstances:    st.actionComms[c],
		NonMemberInstances: st.nonMemberComms[c],
	}
}
