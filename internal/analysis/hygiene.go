package analysis

import (
	"sort"

	"ixplight/internal/collector"
)

// The §5.6 operational-implications analysis: DE-CIX mitigates the
// route-server overhead of blanket tagging by filtering routes with
// "too many communities". This what-if quantifies such a filter's
// impact on any snapshot: how many routes (and which share of the
// total community load) a given threshold would drop.

// HygieneImpact is the effect of one threshold value.
type HygieneImpact struct {
	// Threshold is the maximum allowed community count per route.
	Threshold int
	// RoutesDropped is how many routes exceed it.
	RoutesDropped int
	// RoutesTotal is the family's route count.
	RoutesTotal int
	// CommunitiesDropped is the community instances removed with them.
	CommunitiesDropped int
	// CommunitiesTotal is the family's instance count.
	CommunitiesTotal int
}

// DropShare is the fraction of routes lost at this threshold.
func (h HygieneImpact) DropShare() float64 { return ratio(h.RoutesDropped, h.RoutesTotal) }

// LoadShare is the fraction of the community load shed.
func (h HygieneImpact) LoadShare() float64 {
	return ratio(h.CommunitiesDropped, h.CommunitiesTotal)
}

// HygieneFilterImpact evaluates the §5.6 filter at each threshold.
// The per-route counts are scheme-independent, so any cached index for
// the snapshot can serve them; without one the direct walk is used.
func HygieneFilterImpact(s *collector.Snapshot, v6 bool, thresholds []int) []HygieneImpact {
	if ix := indexForSnapshot(s); ix != nil {
		return ix.HygieneFilterImpact(v6, thresholds)
	}
	return HygieneFilterImpactDirect(s, v6, thresholds)
}

// HygieneFilterImpactDirect is the direct twin of HygieneFilterImpact.
func HygieneFilterImpactDirect(s *collector.Snapshot, v6 bool, thresholds []int) []HygieneImpact {
	counts := communityCounts(s, v6)
	totalComms := 0
	for _, c := range counts {
		totalComms += c
	}
	return hygieneImpacts(counts, totalComms, thresholds)
}

// hygieneImpacts evaluates each threshold over a per-route community
// count series.
func hygieneImpacts(counts []int, totalComms int, thresholds []int) []HygieneImpact {
	out := make([]HygieneImpact, 0, len(thresholds))
	for _, th := range thresholds {
		h := HygieneImpact{Threshold: th, RoutesTotal: len(counts), CommunitiesTotal: totalComms}
		for _, c := range counts {
			if c > th {
				h.RoutesDropped++
				h.CommunitiesDropped += c
			}
		}
		out = append(out, h)
	}
	return out
}

// CommunityCountPercentiles summarises the per-route community count
// distribution at the given percentiles (0–100) — the evidence for
// picking a §5.6 threshold.
func CommunityCountPercentiles(s *collector.Snapshot, v6 bool, percentiles []float64) []int {
	if ix := indexForSnapshot(s); ix != nil {
		return ix.CommunityCountPercentiles(v6, percentiles)
	}
	return CommunityCountPercentilesDirect(s, v6, percentiles)
}

// CommunityCountPercentilesDirect is the direct twin of
// CommunityCountPercentiles.
func CommunityCountPercentilesDirect(s *collector.Snapshot, v6 bool, percentiles []float64) []int {
	return countPercentiles(communityCounts(s, v6), percentiles)
}

// countPercentiles sorts counts in place and reads off the requested
// percentiles. Callers handing out shared state must pass a copy.
func countPercentiles(counts []int, percentiles []float64) []int {
	if len(counts) == 0 {
		return make([]int, len(percentiles))
	}
	sort.Ints(counts)
	out := make([]int, len(percentiles))
	for i, p := range percentiles {
		idx := int(p / 100 * float64(len(counts)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(counts) {
			idx = len(counts) - 1
		}
		out[i] = counts[idx]
	}
	return out
}

func communityCounts(s *collector.Snapshot, v6 bool) []int {
	var counts []int
	for _, r := range s.Routes {
		if r.IsIPv6() != v6 {
			continue
		}
		counts = append(counts, r.CommunityCount())
	}
	return counts
}
