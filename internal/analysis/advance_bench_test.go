package analysis

import (
	"sync"
	"testing"

	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
	"ixplight/internal/ixpgen"
)

// seriesBench is the 84-day AMS-IX-scale evolved series both series
// benchmarks share: every day as a full binary file (the rebuild
// input) and as a delta chain (the advance input). Built once — the
// evolution itself is setup, not the thing measured.
var seriesBench struct {
	once   sync.Once
	err    error
	days   [][]byte // full CodecBinary encoding per day
	day0   []byte
	deltas [][]byte
	scheme *dictionary.Scheme
}

func seriesWorkload(b *testing.B) ([][]byte, []byte, [][]byte, *dictionary.Scheme) {
	b.Helper()
	sb := &seriesBench
	sb.once.Do(func() {
		p := ixpgen.ProfileByName("AMS-IX")
		if p == nil {
			sb.err = errTest("unknown profile AMS-IX")
			return
		}
		sb.scheme = p.Scheme
		o := ixpgen.TemporalOptions{Days: 84, Seed: 42, Scale: 0.02, ValleyDays: []int{9, 41}}
		var enc *collector.DeltaEncoder
		sb.err = ixpgen.EvolveSeries(*p, o, 0.03, func(day int, s *collector.Snapshot) error {
			bin := binBytes(b, s)
			sb.days = append(sb.days, bin)
			if day == 0 {
				sb.day0 = bin
				var err error
				enc, err = collector.NewDeltaEncoder(s)
				return err
			}
			buf, err := enc.Encode(s)
			if err != nil {
				return err
			}
			sb.deltas = append(sb.deltas, buf)
			return nil
		})
	})
	if sb.err != nil {
		b.Fatal(sb.err)
	}
	return sb.days, sb.day0, sb.deltas, sb.scheme
}

type errTest string

func (e errTest) Error() string { return string(e) }

// BenchmarkSeriesAdvance analyses the 84-day series incrementally:
// day 0 is indexed column-direct once, every later day advances the
// previous day's index by its delta. This is the LoadSnapshotDir
// default for delta chains.
func BenchmarkSeriesAdvance(b *testing.B) {
	_, day0, deltas, scheme := seriesWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr, err := collector.NewSnapshotReaderBytes(day0, "day0.bin")
		if err != nil {
			b.Fatal(err)
		}
		ix, err := IndexSeriesFromReader(sr, scheme)
		if err != nil {
			b.Fatal(err)
		}
		total := ix.Counts(false).Routes
		for _, buf := range deltas {
			dr, err := collector.NewDeltaReader(buf)
			if err != nil {
				b.Fatal(err)
			}
			if ix, err = ix.Advance(dr); err != nil {
				b.Fatal(err)
			}
			total += ix.Counts(false).Routes
		}
		if total == 0 {
			b.Fatal("empty series")
		}
	}
	b.ReportMetric(float64(len(deltas)+1), "days/op")
}

// BenchmarkSeriesFullRebuild is the same 84-day analysis without the
// tentpole: every day builds its index from scratch off its own
// binary columns (the previous best path). The SeriesAdvance /
// SeriesFullRebuild ratio is the incremental win.
func BenchmarkSeriesFullRebuild(b *testing.B) {
	days, _, _, scheme := seriesWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, bin := range days {
			sr, err := collector.NewSnapshotReaderBytes(bin, "day.bin")
			if err != nil {
				b.Fatal(err)
			}
			ix, err := IndexFromReader(sr, scheme)
			if err != nil {
				b.Fatal(err)
			}
			total += ix.Counts(false).Routes
		}
		if total == 0 {
			b.Fatal("empty series")
		}
	}
	b.ReportMetric(float64(len(days)), "days/op")
}
