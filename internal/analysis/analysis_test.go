package analysis

import (
	"math"
	"testing"

	"ixplight/internal/bgp"
	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
	"ixplight/internal/netutil"
)

// testSnapshot builds a tiny hand-checked snapshot at a DE-CIX-scheme
// IXP with three members (100, 200, 6939) and one non-member target
// (15169):
//
//	AS100:  r1 v4 [0:15169, 0:200, info0]   (2 actions: 1 non-member)
//	        r2 v4 [private 100:7]           (unknown only)
//	AS200:  r3 v4 [6695:100, 65501:100]     (AOT member + prepend member)
//	        r4 v6 [0:15169]                 (1 action, non-member)
//	AS6939: r5 v4 [0:15169, 0:16276, 65535:666]  (2 DNA non-member + blackhole)
func testSnapshot(t *testing.T) (*collector.Snapshot, *dictionary.Scheme) {
	t.Helper()
	scheme := dictionary.ProfileByName("DE-CIX")
	info0, _ := scheme.Info(0)
	mk := func(peer uint32, idx int, v6 bool, comms ...bgp.Community) bgp.Route {
		r := bgp.Route{ASPath: bgp.ASPath{peer}, Communities: comms}
		if v6 {
			r.Prefix = netutil.SyntheticV6Prefix(idx)
			r.NextHop = netutil.PeerAddrV6(1)
		} else {
			r.Prefix = netutil.SyntheticV4Prefix(idx)
			r.NextHop = netutil.PeerAddrV4(1)
		}
		return r
	}
	s := &collector.Snapshot{
		IXP:  "DE-CIX",
		Date: "2021-10-04",
		Members: []collector.Member{
			{ASN: 100, IPv4: true, IPv6: true},
			{ASN: 200, IPv4: true, IPv6: true},
			{ASN: 6939, IPv4: true, IPv6: false},
		},
		Routes: []bgp.Route{
			mk(100, 0, false, bgp.MustParseCommunity("0:15169"), bgp.MustParseCommunity("0:200"), info0),
			mk(100, 1, false, bgp.NewCommunity(100, 7)),
			mk(200, 2, false, bgp.MustParseCommunity("6695:100"), bgp.MustParseCommunity("65501:100")),
			mk(200, 3, true, bgp.MustParseCommunity("0:15169")),
			mk(6939, 4, false,
				bgp.MustParseCommunity("0:15169"), bgp.MustParseCommunity("0:16276"), bgp.BlackholeWellKnown),
		},
	}
	s.Normalize()
	return s, scheme
}

func TestComputeMix(t *testing.T) {
	s, scheme := testSnapshot(t)
	m := ComputeMix(s, scheme, false)
	// v4 standard instances: r1: 3 defined; r2: 1 unknown; r3: 2
	// defined; r5: 3 defined → defined 8, unknown 1.
	if m.DefinedStandard != 8 || m.UnknownStandard != 1 {
		t.Errorf("mix = %+v", m)
	}
	if m.Total() != 9 || m.Defined() != 8 {
		t.Errorf("totals: %d/%d", m.Total(), m.Defined())
	}
	if got := m.DefinedShare(); math.Abs(got-8.0/9) > 1e-9 {
		t.Errorf("defined share = %f", got)
	}
	if m.StandardShare() != 1.0 {
		t.Errorf("standard share = %f (no ext/large present)", m.StandardShare())
	}

	m6 := ComputeMix(s, scheme, true)
	if m6.DefinedStandard != 1 || m6.Total() != 1 {
		t.Errorf("v6 mix = %+v", m6)
	}
}

func TestComputeMixExtendedLarge(t *testing.T) {
	s, scheme := testSnapshot(t)
	s.Routes[0].ExtCommunities = []bgp.ExtendedCommunity{
		bgp.NewTwoOctetASExtended(6, scheme.RSASN, 1), // IXP-defined
		bgp.NewTwoOctetASExtended(6, 4999, 1),         // foreign
	}
	s.Routes[0].LargeCommunities = []bgp.LargeCommunity{
		{Global: uint32(scheme.RSASN), Local1: 1, Local2: 2}, // IXP-defined
	}
	m := ComputeMix(s, scheme, false)
	if m.DefinedExtended != 1 || m.UnknownExtended != 1 || m.DefinedLarge != 1 {
		t.Errorf("ext/large mix = %+v", m)
	}
	if m.ExtendedShare() <= 0 || m.LargeShare() <= 0 {
		t.Error("shares must be positive")
	}
}

func TestActionInfoSplit(t *testing.T) {
	s, scheme := testSnapshot(t)
	action, info := ActionInfoSplit(s, scheme, false)
	// v4 defined: 7 action (0:15169, 0:200, 6695:100, 65501:100,
	// 0:15169, 0:16276, 65535:666) + 1 info.
	if action != 7 || info != 1 {
		t.Errorf("action/info = %d/%d", action, info)
	}
	if got := ActionShare(s, scheme, false); math.Abs(got-7.0/8) > 1e-9 {
		t.Errorf("action share = %f", got)
	}
}

func TestComputeUsage(t *testing.T) {
	s, scheme := testSnapshot(t)
	u := ComputeUsage(s, scheme, false)
	if u.MembersAtRS != 3 {
		t.Errorf("members = %d", u.MembersAtRS)
	}
	if u.ASesUsing != 3 { // 100, 200, 6939 all tag at least one v4 route
		t.Errorf("ASes = %d", u.ASesUsing)
	}
	if u.RoutesTotal != 4 || u.RoutesTagged != 3 { // r2 untagged
		t.Errorf("routes = %d/%d", u.RoutesTagged, u.RoutesTotal)
	}
	if u.ActionInstances != 7 {
		t.Errorf("instances = %d", u.ActionInstances)
	}

	u6 := ComputeUsage(s, scheme, true)
	if u6.MembersAtRS != 2 || u6.ASesUsing != 1 || u6.RoutesTagged != 1 {
		t.Errorf("v6 usage = %+v", u6)
	}
}

func TestPerASCountsAndCDF(t *testing.T) {
	s, scheme := testSnapshot(t)
	counts := PerASActionCounts(s, scheme, false)
	if counts[100] != 2 || counts[200] != 2 || counts[6939] != 3 {
		t.Errorf("counts = %v", counts)
	}
	cdf := ConcentrationCDF(counts, 3)
	if len(cdf) != 3 {
		t.Fatalf("cdf = %v", cdf)
	}
	// Sorted desc: 3,2,2 of total 7.
	if math.Abs(cdf[0].CommFraction-3.0/7) > 1e-9 {
		t.Errorf("cdf[0] = %+v", cdf[0])
	}
	if cdf[2].CommFraction != 1.0 || cdf[2].ASFraction != 1.0 {
		t.Errorf("cdf[2] = %+v", cdf[2])
	}
	if TopShare(cdf, 0.34) != 3.0/7 {
		t.Errorf("TopShare(0.34) = %f", TopShare(cdf, 0.34))
	}
	if TopShare(cdf, 0.1) != 0 {
		t.Errorf("TopShare below first point must be 0")
	}
	if ConcentrationCDF(counts, 0) != nil {
		t.Error("zero members must give nil CDF")
	}
}

func TestRouteCommCorrelation(t *testing.T) {
	s, scheme := testSnapshot(t)
	points := RouteCommCorrelation(s, scheme, false)
	if len(points) != 3 {
		t.Fatalf("points = %v", points)
	}
	for _, p := range points {
		switch p.ASN {
		case 100:
			if math.Abs(p.RouteFrac-0.5) > 1e-9 || math.Abs(p.CommFrac-2.0/7) > 1e-9 {
				t.Errorf("AS100 point = %+v", p)
			}
		case 6939:
			if math.Abs(p.RouteFrac-0.25) > 1e-9 || math.Abs(p.CommFrac-3.0/7) > 1e-9 {
				t.Errorf("AS6939 point = %+v", p)
			}
		}
	}
}

func TestASesPerActionType(t *testing.T) {
	s, scheme := testSnapshot(t)
	rows := ASesPerActionType(s, scheme, false)
	want := map[dictionary.ActionType]int{
		dictionary.DoNotAnnounceTo: 2, // 100, 6939
		dictionary.AnnounceOnlyTo:  1, // 200
		dictionary.PrependTo:       1, // 200
		dictionary.Blackhole:       1, // 6939
	}
	for _, row := range rows {
		if row.ASes != want[row.Type] {
			t.Errorf("%v: ASes = %d, want %d", row.Type, row.ASes, want[row.Type])
		}
	}
	if rows[0].Share != 2.0/3 {
		t.Errorf("DNA share = %f", rows[0].Share)
	}
}

func TestOccurrencesPerType(t *testing.T) {
	s, scheme := testSnapshot(t)
	occ := OccurrencesPerType(s, scheme, false)
	if occ[dictionary.DoNotAnnounceTo] != 4 || occ[dictionary.AnnounceOnlyTo] != 1 ||
		occ[dictionary.PrependTo] != 1 || occ[dictionary.Blackhole] != 1 {
		t.Errorf("occ = %v", occ)
	}
}

func TestTopActionCommunities(t *testing.T) {
	s, scheme := testSnapshot(t)
	top := TopActionCommunities(s, scheme, false, 3)
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
	if top[0].Community != bgp.MustParseCommunity("0:15169") || top[0].Count != 2 {
		t.Errorf("top[0] = %+v", top[0])
	}
	// Ties (count 1) break by community value ascending.
	if top[1].Community >= top[2].Community {
		t.Errorf("tie break broken: %v before %v", top[1].Community, top[2].Community)
	}
	all := TopActionCommunities(s, scheme, false, 0)
	if len(all) != 6 {
		t.Errorf("all communities = %d, want 6 distinct", len(all))
	}
}

func TestNonMemberTargeting(t *testing.T) {
	s, scheme := testSnapshot(t)
	nm := ComputeNonMemberTargeting(s, scheme, false, 10)
	// Total actions 7. Non-member-targeting: 0:15169 ×2, 0:16276 ×1.
	// (0:200, 6695:100, 65501:100 target members; blackhole no target.)
	if nm.Total != 7 || nm.Instances != 3 {
		t.Errorf("nm = %+v", nm)
	}
	if math.Abs(nm.Share()-3.0/7) > 1e-9 {
		t.Errorf("share = %f", nm.Share())
	}
	if nm.Top[0].Community != bgp.MustParseCommunity("0:15169") || nm.Top[0].Count != 2 {
		t.Errorf("top = %+v", nm.Top[0])
	}
}

func TestCulpritRanking(t *testing.T) {
	s, scheme := testSnapshot(t)
	culprits := CulpritRanking(s, scheme, false, 10)
	if len(culprits) != 2 {
		t.Fatalf("culprits = %v", culprits)
	}
	if culprits[0].ASN != 6939 || culprits[0].Count != 2 {
		t.Errorf("culprits[0] = %+v", culprits[0])
	}
	if culprits[1].ASN != 100 || culprits[1].Count != 1 {
		t.Errorf("culprits[1] = %+v", culprits[1])
	}
}

func TestTopTargets(t *testing.T) {
	s, scheme := testSnapshot(t)
	targets := TopTargets(s, scheme, false, 0)
	byASN := map[uint32]TargetedAS{}
	for _, tg := range targets {
		byASN[tg.ASN] = tg
	}
	if tg := byASN[15169]; tg.Count != 2 || tg.IsMember {
		t.Errorf("google = %+v", tg)
	}
	if tg := byASN[100]; tg.Count != 2 || !tg.IsMember {
		t.Errorf("AS100 = %+v", tg)
	}
	if tg := byASN[200]; tg.Count != 1 || !tg.IsMember {
		t.Errorf("AS200 = %+v", tg)
	}
}

func TestCountSnapshotAndStability(t *testing.T) {
	s, _ := testSnapshot(t)
	c4 := CountSnapshot(s, false)
	if c4.Members != 3 || c4.Routes != 4 || c4.Prefixes != 4 || c4.Communities != 9 {
		t.Errorf("counts v4 = %+v", c4)
	}
	c6 := CountSnapshot(s, true)
	if c6.Members != 2 || c6.Routes != 1 {
		t.Errorf("counts v6 = %+v", c6)
	}

	// Stability over three identical snapshots: zero variation.
	table := Stability([]*collector.Snapshot{s, s, s}, false)
	if table.MaxDiffPct() != 0 {
		t.Errorf("identical snapshots: diff = %f", table.MaxDiffPct())
	}

	// Add a grown snapshot: +1 member.
	s2, _ := testSnapshot(t)
	s2.Members = append(s2.Members, collector.Member{ASN: 999, IPv4: true})
	table = Stability([]*collector.Snapshot{s, s2}, false)
	if math.Abs(table.Members.DiffPct-100.0/3) > 1e-9 {
		t.Errorf("members diff = %f", table.Members.DiffPct)
	}
}

func TestWeeklyRepresentatives(t *testing.T) {
	var snaps []*collector.Snapshot
	for i := 0; i < 20; i++ {
		snaps = append(snaps, &collector.Snapshot{Date: "d"})
	}
	weekly := WeeklyRepresentatives(snaps)
	if len(weekly) != 3 {
		t.Errorf("weekly = %d, want 3 (days 0, 7, 14)", len(weekly))
	}
	if WeeklyRepresentatives(nil) != nil {
		t.Error("empty input must give nil")
	}
}

func TestEmptySnapshotAnalyses(t *testing.T) {
	s := &collector.Snapshot{IXP: "DE-CIX", Date: "2021-10-04"}
	scheme := dictionary.ProfileByName("DE-CIX")
	if m := ComputeMix(s, scheme, false); m.Total() != 0 || m.DefinedShare() != 0 {
		t.Error("empty mix wrong")
	}
	if u := ComputeUsage(s, scheme, false); u.ASShare() != 0 || u.RouteShare() != 0 {
		t.Error("empty usage wrong")
	}
	if nm := ComputeNonMemberTargeting(s, scheme, false, 5); nm.Share() != 0 || len(nm.Top) != 0 {
		t.Error("empty targeting wrong")
	}
	if c := CulpritRanking(s, scheme, false, 5); len(c) != 0 {
		t.Error("empty culprits wrong")
	}
}

func TestTargetIntersections(t *testing.T) {
	s1, scheme := testSnapshot(t)
	// A second IXP snapshot sharing the target 15169 but not 16276.
	s2, _ := testSnapshot(t)
	s2.IXP = "OTHER"
	s2.Routes = s2.Routes[:1] // keep only r1: targets 15169 and 200

	ixps := []IXPSnapshot{
		{Snapshot: s1, Scheme: scheme},
		{Snapshot: s2, Scheme: scheme},
	}
	pairs, common := TargetIntersections(ixps, false, 20)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	// Shared: 15169 (both) and 200 (r1 exists in both).
	if len(pairs[0].Shared) != 2 || pairs[0].Shared[0] != 200 || pairs[0].Shared[1] != 15169 {
		t.Errorf("shared = %v", pairs[0].Shared)
	}
	if len(common) != 2 {
		t.Errorf("common = %v", common)
	}
	// Empty input.
	p0, c0 := TargetIntersections(nil, false, 20)
	if len(p0) != 0 || len(c0) != 0 {
		t.Error("empty input mishandled")
	}
}

func TestFlavourActions(t *testing.T) {
	s, scheme := testSnapshot(t)
	wide, err := scheme.LargeDoNotAnnounce(263075)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := scheme.LargeInfo(0)
	s.Routes[0].LargeCommunities = []bgp.LargeCommunity{wide, info}
	s.Routes[0].ExtCommunities = []bgp.ExtendedCommunity{scheme.ExtInfo(1)}

	f := ComputeFlavourActions(s, scheme, false)
	if f.StandardAction != 7 || f.StandardInfo != 1 {
		t.Errorf("standard = %d/%d", f.StandardAction, f.StandardInfo)
	}
	if f.LargeAction != 1 || f.LargeInfo != 1 || f.LargeWideTargets != 1 {
		t.Errorf("large = %d/%d wide=%d", f.LargeAction, f.LargeInfo, f.LargeWideTargets)
	}
	if f.ExtendedAction != 0 || f.ExtendedInfo != 1 {
		t.Errorf("extended = %d/%d", f.ExtendedAction, f.ExtendedInfo)
	}
	if f.TotalAction() != 8 {
		t.Errorf("total = %d", f.TotalAction())
	}
}

func TestCompareVisibility(t *testing.T) {
	s, scheme := testSnapshot(t)
	ingress := s.Routes
	// "Exported" routes: scrubbed copies (no action communities).
	var exported []bgp.Route
	for _, r := range ingress {
		c := r.Clone()
		c.Communities = nil
		exported = append(exported, c)
	}
	v := CompareVisibility(ingress, exported, scheme)
	// 7 v4 + 1 v6 action instances (visibility spans both families).
	if v.LGActionInstances != 8 || v.CollectorActionInstances != 0 {
		t.Errorf("visibility = %+v", v)
	}
	if v.VisibilityGap() != 1.0 {
		t.Errorf("gap = %f", v.VisibilityGap())
	}
	empty := CompareVisibility(nil, nil, scheme)
	if empty.VisibilityGap() != 0 {
		t.Error("empty gap must be 0")
	}
}

func TestHygieneFilterImpact(t *testing.T) {
	s, _ := testSnapshot(t)
	// v4 community counts per route: r1=3, r2=1, r3=2, r5=3.
	impacts := HygieneFilterImpact(s, false, []int{0, 1, 2, 5})
	if impacts[0].RoutesDropped != 4 || impacts[0].CommunitiesDropped != 9 {
		t.Errorf("threshold 0: %+v", impacts[0])
	}
	if impacts[1].RoutesDropped != 3 { // >1: r1, r3, r5
		t.Errorf("threshold 1: %+v", impacts[1])
	}
	if impacts[2].RoutesDropped != 2 { // >2: r1, r5
		t.Errorf("threshold 2: %+v", impacts[2])
	}
	if impacts[3].RoutesDropped != 0 {
		t.Errorf("threshold 5: %+v", impacts[3])
	}
	if impacts[2].DropShare() != 0.5 || impacts[0].LoadShare() != 1.0 {
		t.Errorf("shares: %f %f", impacts[2].DropShare(), impacts[0].LoadShare())
	}
}

func TestCommunityCountPercentiles(t *testing.T) {
	s, _ := testSnapshot(t)
	pct := CommunityCountPercentiles(s, false, []float64{0, 50, 100})
	// Sorted counts: 1, 2, 3, 3.
	if pct[0] != 1 || pct[2] != 3 {
		t.Errorf("percentiles = %v", pct)
	}
	empty := &collector.Snapshot{}
	if got := CommunityCountPercentiles(empty, false, []float64{50}); got[0] != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}
