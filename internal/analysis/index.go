package analysis

import (
	"net/netip"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ixplight/internal/asdb"
	"ixplight/internal/bgp"
	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
)

// The classified snapshot index.
//
// Every §5 analysis slices the same underlying classification: each
// community on each accepted route, mapped through the IXP dictionary.
// The direct entry points (the *Direct twins in this package) re-walk
// the snapshot and re-call Scheme.Classify per instance, so running
// the full experiment battery does O(experiments × routes ×
// communities) redundant classification work. An Index performs that
// classification exactly once — one pass over the routes, sharded
// across a worker pool, memoizing the Class of every *distinct*
// standard/extended/large community value — and aggregates, per
// address family, everything the analyses consume: the Fig. 1/2 mix,
// the Fig. 3 action/info split, Fig. 4's usage and per-AS counts, the
// Table 2 / §5.3 per-type tallies, the Fig. 5–7 / §5.5 rankings and
// the §5.6 per-route community-count distribution.

// numActionTypes sizes the per-ActionType arrays (Informational
// through Blackhole).
const numActionTypes = int(dictionary.Blackhole) + 1

// Index is the per-(snapshot, scheme) classified view.
//
// Concurrency contract: an Index is logically immutable after
// construction (the only internal mutation is a sync.Once-guarded
// lazy prefix count). Every method is read-only and safe to call from
// any number of goroutines without external locking; accessors that
// expose aggregate maps return fresh copies. The one obligation on
// the caller is that the underlying Snapshot must not be mutated
// while the Index (or any analysis wrapper that may consult the
// shared index cache) is in use — mutate a copy, or call
// InvalidateIndex first. TestIndexConcurrentUse pins the contract
// under -race.
type Index struct {
	snap    *collector.Snapshot
	scheme  *dictionary.Scheme
	members map[uint32]bool

	// Memoized classification of every distinct community value seen
	// in the snapshot, per flavour.
	classes      *classMemo
	extClasses   map[bgp.ExtendedCommunity]dictionary.Class
	largeClasses map[bgp.LargeCommunity]dictionary.Class

	// fam[0] aggregates IPv4, fam[1] IPv6.
	fam [2]familyStats

	// Distinct-prefix counts are only needed by Counts (Appendix A),
	// so they are computed lazily rather than paying a per-route set
	// insert during the classification pass.
	prefixOnce  [2]sync.Once
	prefixCount [2]int

	// Column-direct builds (IndexFromReader) carry no Routes to count
	// prefixes from; they retain each family's adjacent-deduplicated
	// encoded prefixes instead, released once the lazy count runs.
	colPrefixes bool
	prefixEnc   [2][]byte
	prefixEnds  [2][]int32

	// series is the incremental chain state of a series-built index
	// (IndexSeriesFromReader / Advance); nil for every other build.
	// Only the chain's newest index — the state's owner — may Advance.
	series *seriesState
}

// Snapshot returns the snapshot this index classifies. For a
// column-direct index it is header-only: Routes is nil, everything
// else matches the encoded snapshot.
func (ix *Index) Snapshot() *collector.Snapshot { return ix.snap }

// familyStats holds the per-address-family aggregates of one pass.
type familyStats struct {
	// commCounts is each route's total community count (all flavours),
	// in snapshot route order — the §5.6 hygiene distribution.
	// Incrementally maintained indexes (Index.Advance) carry the same
	// distribution as a histogram instead (commHist, count → routes),
	// because a positional slice cannot be patched under adds and
	// removals at arbitrary route positions; both §5.6 consumers are
	// order-independent, so either representation answers identically.
	commCounts    []int
	commHist      map[int]int
	commInstances int

	mix     Mix
	flavour FlavourActions
	usage   Usage

	perASActions map[uint32]int
	perASRoutes  map[uint32]int
	actionComms  map[bgp.Community]int

	typeASes [numActionTypes]int
	occ      [numActionTypes]int

	targets            map[uint32]int
	nonMemberInstances int
	nonMemberComms     map[bgp.Community]int
	culprits           map[uint32]int
}

// parallelism is the package-wide worker budget for index
// construction and the parallel analyses (Stability fan-out). It
// defaults to runtime.GOMAXPROCS(0); a value of 1 disables the index
// entirely and routes every wrapper through its *Direct twin — the
// pre-index sequential behaviour, selectable with `analyze
// -parallel 1`.
var parallelism atomic.Int64

func init() { parallelism.Store(int64(runtime.GOMAXPROCS(0))) }

// SetParallelism sets the analysis worker budget. n < 1 resets to
// runtime.GOMAXPROCS(0). With n == 1 the indexed fast path is
// disabled and every analysis runs its direct-classify twin.
func SetParallelism(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	parallelism.Store(int64(n))
}

// Parallelism returns the current analysis worker budget.
func Parallelism() int { return int(parallelism.Load()) }

// useIndex reports whether wrappers should go through the shared
// index (Parallelism() > 1) or the direct twins.
func useIndex() bool { return Parallelism() > 1 }

// --- shared index cache -------------------------------------------------

// The wrappers keep their historical (snapshot, scheme, family)
// signatures, so the cross-analysis reuse the index exists for has to
// happen behind them: a bounded cache keyed by the (snapshot, scheme)
// pointer pair. Entries single-flight their construction so that
// concurrent experiments requesting the same snapshot build one index
// between them.

const indexCacheCap = 32

type indexKey struct {
	snap   *collector.Snapshot
	scheme *dictionary.Scheme
}

type indexEntry struct {
	once sync.Once
	ix   *Index
	// done flips after the build completes, separating cache hits from
	// lookups that coalesce onto an in-flight build.
	done atomic.Bool
}

// build runs the entry's single-flight construction.
func (e *indexEntry) build(s *collector.Snapshot, scheme *dictionary.Scheme) *Index {
	e.once.Do(func() {
		e.ix = NewIndexWorkers(s, scheme, Parallelism())
		e.done.Store(true)
	})
	return e.ix
}

var (
	indexMu      sync.Mutex
	indexEntries = make(map[indexKey]*indexEntry)
	indexOrder   []indexKey
)

// IndexFor returns the shared Index for (s, scheme), building it on
// first use with the current Parallelism. The cache holds strong
// references to at most indexCacheCap snapshots (FIFO eviction); the
// snapshot must not be mutated while indexed analyses run against it
// (see the Index concurrency contract).
func IndexFor(s *collector.Snapshot, scheme *dictionary.Scheme) *Index {
	if ix := pinnedFor(s, scheme); ix != nil {
		return ix
	}
	t := tel()
	key := indexKey{snap: s, scheme: scheme}
	indexMu.Lock()
	e := indexEntries[key]
	if e == nil {
		evicted := 0
		if len(indexEntries) >= indexCacheCap {
			oldest := indexOrder[0]
			indexOrder = indexOrder[1:]
			delete(indexEntries, oldest)
			evicted = 1
		}
		e = &indexEntry{}
		indexEntries[key] = e
		indexOrder = append(indexOrder, key)
		t.miss()
		t.cache(len(indexEntries), evicted)
	} else if e.done.Load() {
		t.hit()
	} else {
		t.coalesce()
	}
	indexMu.Unlock()
	return e.build(s, scheme)
}

// InvalidateIndex drops any cached index for s, for callers that must
// mutate a snapshot that has already been analysed.
func InvalidateIndex(s *collector.Snapshot) {
	indexMu.Lock()
	defer indexMu.Unlock()
	kept := indexOrder[:0]
	dropped := 0
	for _, key := range indexOrder {
		if key.snap == s {
			delete(indexEntries, key)
			dropped++
			continue
		}
		kept = append(kept, key)
	}
	indexOrder = kept
	tel().cache(len(indexEntries), dropped)
}

// indexFor is the wrapper dispatch: the shared index when the indexed
// path is enabled, nil to signal "use the direct twin". A pinned
// index (AttachIndex) wins even over the Parallelism()==1 direct
// dispatch: pinned snapshots may be header-only, leaving the direct
// twins nothing to walk.
func indexFor(s *collector.Snapshot, scheme *dictionary.Scheme) *Index {
	if ix := pinnedFor(s, scheme); ix != nil {
		return ix
	}
	if !useIndex() {
		return nil
	}
	return IndexFor(s, scheme)
}

// indexForSnapshot finds an already-built index for s under any
// scheme — for the scheme-independent analyses (hygiene, Appendix A
// counts), whose aggregates are identical across schemes. Returns nil
// when nothing is cached; those analyses are cheap enough that
// building an index just for them would be a net loss.
func indexForSnapshot(s *collector.Snapshot) *Index {
	if ix := pinnedFor(s, nil); ix != nil {
		return ix
	}
	if !useIndex() {
		return nil
	}
	indexMu.Lock()
	var e *indexEntry
	var scheme *dictionary.Scheme
	for _, key := range indexOrder {
		if key.snap == s {
			e, scheme = indexEntries[key], key.scheme
			break
		}
	}
	indexMu.Unlock()
	if e == nil {
		return nil
	}
	if t := tel(); t != nil {
		if e.done.Load() {
			t.hit()
		} else {
			t.coalesce()
		}
	}
	return e.build(s, scheme)
}

// --- construction -------------------------------------------------------

// NewIndex builds the classified index for one snapshot under one
// scheme using the package Parallelism.
func NewIndex(s *collector.Snapshot, scheme *dictionary.Scheme) *Index {
	return NewIndexWorkers(s, scheme, Parallelism())
}

// NewIndexWorkers builds the index with an explicit worker count. The
// routes are sharded into contiguous chunks, each classified with a
// worker-local memo, and the shard aggregates are merged in route
// order — the result is identical for any worker count.
func NewIndexWorkers(s *collector.Snapshot, scheme *dictionary.Scheme, workers int) *Index {
	t := tel()
	if t != nil {
		sp := t.span("analysis.index_build")
		sp.SetAttr("ixp", s.IXP)
		sp.SetAttr("date", s.Date)
		sp.SetAttr("source", "routes")
		t0 := time.Now()
		defer func() {
			t.built(time.Since(t0))
			sp.End()
		}()
	}
	t.builtFrom("routes")
	ix := &Index{
		snap:    s,
		scheme:  scheme,
		members: s.MemberSet(),
	}
	for _, m := range s.Members {
		if m.IPv4 {
			ix.fam[0].usage.MembersAtRS++
		}
		if m.IPv6 {
			ix.fam[1].usage.MembersAtRS++
		}
	}

	routes := s.Routes
	if workers < 1 {
		workers = 1
	}
	if workers > len(routes) {
		workers = max(1, len(routes))
	}
	shards := make([]*indexShard, workers)
	if workers == 1 {
		sh := newIndexShard(s, len(routes))
		for i := range routes {
			sh.addRoute(&routes[i], scheme, ix.members)
		}
		shards[0] = sh
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * len(routes) / workers
			hi := (w + 1) * len(routes) / workers
			sh := newIndexShard(s, hi-lo)
			shards[w] = sh
			wg.Add(1)
			go func(chunk []bgp.Route) {
				defer wg.Done()
				for i := range chunk {
					sh.addRoute(&chunk[i], scheme, ix.members)
				}
			}(routes[lo:hi])
		}
		wg.Wait()
	}
	ix.merge(shards)
	return ix
}

// classMemo memoizes the Class of distinct standard community
// values. The calibrated workloads carry tens of thousands of
// distinct standard values per snapshot (action communities target
// many ASNs), and a builtin map of that size costs an allocation per
// table group; since bgp.Community is a bare uint32 this fixed
// open-addressing table does the same job in two allocations.
type classMemo struct {
	// slots holds community+1, so 0 marks an empty slot; the one
	// community whose increment wraps to 0 (0xFFFFFFFF) is carried in
	// maxVal instead.
	slots  []uint32
	vals   []dictionary.Class
	mask   uint32
	n      int
	hasMax bool
	maxVal dictionary.Class
}

// newClassMemo sizes the table for roughly `capacity` distinct
// values: the initial size keeps the load factor below ⅔ even when
// every value is distinct, and the table doubles if a pathological
// shard exceeds that.
func newClassMemo(capacity int) *classMemo {
	size := 64
	for size < capacity {
		size <<= 1
	}
	return &classMemo{
		slots: make([]uint32, size),
		vals:  make([]dictionary.Class, size),
		mask:  uint32(size - 1),
	}
}

// hash spreads sequential community values (Fibonacci hashing).
func (m *classMemo) hash(c bgp.Community) uint32 { return (uint32(c) * 0x9e3779b1) & m.mask }

func (m *classMemo) get(c bgp.Community) (dictionary.Class, bool) {
	if uint32(c) == ^uint32(0) {
		return m.maxVal, m.hasMax
	}
	k := uint32(c) + 1
	for i := m.hash(c); ; i = (i + 1) & m.mask {
		switch m.slots[i] {
		case k:
			return m.vals[i], true
		case 0:
			return dictionary.Class{}, false
		}
	}
}

func (m *classMemo) put(c bgp.Community, cl dictionary.Class) {
	if uint32(c) == ^uint32(0) {
		m.hasMax, m.maxVal = true, cl
		return
	}
	if 3*m.n >= 2*len(m.slots) {
		m.grow()
	}
	k := uint32(c) + 1
	for i := m.hash(c); ; i = (i + 1) & m.mask {
		switch m.slots[i] {
		case k:
			m.vals[i] = cl
			return
		case 0:
			m.slots[i], m.vals[i] = k, cl
			m.n++
			return
		}
	}
}

func (m *classMemo) grow() {
	oldSlots, oldVals := m.slots, m.vals
	m.slots = make([]uint32, 2*len(oldSlots))
	m.vals = make([]dictionary.Class, len(m.slots))
	m.mask = uint32(len(m.slots) - 1)
	m.n = 0
	for i, k := range oldSlots {
		if k != 0 {
			m.put(bgp.Community(k-1), oldVals[i])
		}
	}
}

// clone returns an independent copy of the memo — two slice copies.
// Advance snapshots the chain's growing memo per day with it, so each
// day's index stays immutable while the chain classifies on.
func (m *classMemo) clone() *classMemo {
	c := *m
	c.slots = append([]uint32(nil), m.slots...)
	c.vals = append([]dictionary.Class(nil), m.vals...)
	return &c
}

// each visits every memoized (community, class) pair, in no
// particular order.
func (m *classMemo) each(fn func(bgp.Community, dictionary.Class)) {
	for i, k := range m.slots {
		if k != 0 {
			fn(bgp.Community(k-1), m.vals[i])
		}
	}
	if m.hasMax {
		fn(bgp.Community(^uint32(0)), m.maxVal)
	}
}

// indexShard is one worker's slice of the classification pass.
type indexShard struct {
	classes      *classMemo
	extClasses   map[bgp.ExtendedCommunity]dictionary.Class
	largeClasses map[bgp.LargeCommunity]dictionary.Class
	fam          [2]shardFam
}

type shardFam struct {
	routes        int
	commCounts    []int
	commInstances int

	mix     Mix
	flavour FlavourActions

	routesTagged    int
	actionInstances int
	perASActions    map[uint32]int
	perASRoutes     map[uint32]int
	actionComms     map[bgp.Community]int
	// typeMask records, per announcing AS, a bitmask of the action
	// types it used — one map instead of one user-set per type.
	typeMask map[uint32]uint8
	occ      [numActionTypes]int

	targets            map[uint32]int
	nonMemberInstances int
	nonMemberComms     map[bgp.Community]int
	culprits           map[uint32]int
}

func newIndexShard(s *collector.Snapshot, chunk int) *indexShard {
	// The standard-community memo is sized to the chunk — in the
	// calibrated workloads distinct standard values approach the route
	// count. The aggregate histograms stay small (the dictionaries
	// define few action communities and few targeted ASNs recur), so
	// they get fixed small hints instead.
	sh := &indexShard{
		classes:      newClassMemo(chunk),
		extClasses:   make(map[bgp.ExtendedCommunity]dictionary.Class, 32),
		largeClasses: make(map[bgp.LargeCommunity]dictionary.Class, 32),
	}
	hint := len(s.Members)
	for f := range sh.fam {
		st := &sh.fam[f]
		st.commCounts = make([]int, 0, chunk)
		st.perASActions = make(map[uint32]int, hint)
		st.perASRoutes = make(map[uint32]int, hint)
		st.actionComms = make(map[bgp.Community]int, 64)
		st.typeMask = make(map[uint32]uint8, hint)
		st.targets = make(map[uint32]int, 64)
		st.nonMemberComms = make(map[bgp.Community]int, 32)
		st.culprits = make(map[uint32]int, hint)
	}
	return sh
}

// addRoute folds one route into the shard, classifying each community
// through the shard-local memo so every distinct value is classified
// at most once per worker.
func (sh *indexShard) addRoute(r *bgp.Route, scheme *dictionary.Scheme, members map[uint32]bool) {
	f := 0
	if r.IsIPv6() {
		f = 1
	}
	st := &sh.fam[f]
	peer := r.PeerAS()

	st.routes++
	cc := r.CommunityCount()
	st.commCounts = append(st.commCounts, cc)
	st.commInstances += cc
	st.perASRoutes[peer]++

	actions := 0
	for _, c := range r.Communities {
		cl, ok := sh.classes.get(c)
		if !ok {
			cl = scheme.Classify(c)
			sh.classes.put(c, cl)
		}
		if !cl.Known {
			st.mix.UnknownStandard++
			continue
		}
		st.mix.DefinedStandard++
		if !cl.Action.IsAction() {
			st.flavour.StandardInfo++
			continue
		}
		st.flavour.StandardAction++
		actions++
		st.actionComms[c]++
		st.occ[cl.Action]++
		st.typeMask[peer] |= 1 << cl.Action
		if cl.Target == dictionary.TargetPeer {
			st.targets[cl.TargetASN]++
			if !members[cl.TargetASN] {
				st.nonMemberInstances++
				st.nonMemberComms[c]++
				st.culprits[peer]++
			}
		}
	}
	for _, e := range r.ExtCommunities {
		cl, ok := sh.extClasses[e]
		if !ok {
			cl = scheme.ClassifyExtended(e)
			sh.extClasses[e] = cl
		}
		if !cl.Known {
			st.mix.UnknownExtended++
			continue
		}
		st.mix.DefinedExtended++
		if cl.Action.IsAction() {
			st.flavour.ExtendedAction++
		} else {
			st.flavour.ExtendedInfo++
		}
	}
	for _, l := range r.LargeCommunities {
		cl, ok := sh.largeClasses[l]
		if !ok {
			cl = scheme.ClassifyLarge(l)
			sh.largeClasses[l] = cl
		}
		if !cl.Known {
			st.mix.UnknownLarge++
			continue
		}
		st.mix.DefinedLarge++
		if cl.Action.IsAction() {
			st.flavour.LargeAction++
			if cl.Target == dictionary.TargetPeer && cl.TargetASN > 0xFFFF {
				st.flavour.LargeWideTargets++
			}
		} else {
			st.flavour.LargeInfo++
		}
	}
	if actions > 0 {
		st.routesTagged++
		st.actionInstances += actions
		st.perASActions[peer] += actions
	}
}

// merge folds the shards, in route order, into the final per-family
// aggregates.
func (ix *Index) merge(shards []*indexShard) {
	ix.classes = shards[0].classes
	ix.extClasses = shards[0].extClasses
	ix.largeClasses = shards[0].largeClasses
	for _, sh := range shards[1:] {
		sh.classes.each(func(c bgp.Community, cl dictionary.Class) { ix.classes.put(c, cl) })
		for e, cl := range sh.extClasses {
			ix.extClasses[e] = cl
		}
		for l, cl := range sh.largeClasses {
			ix.largeClasses[l] = cl
		}
	}

	// Shard 0's aggregates are adopted as the destination — with one
	// worker (or one populated shard) the merge allocates nothing.
	for f := range ix.fam {
		dst := &ix.fam[f]
		base := &shards[0].fam[f]
		typeMask := base.typeMask
		dst.commCounts = base.commCounts
		dst.commInstances = base.commInstances
		dst.mix = base.mix
		dst.flavour = base.flavour
		dst.usage.RoutesTotal = base.routes
		dst.usage.RoutesTagged = base.routesTagged
		dst.usage.ActionInstances = base.actionInstances
		dst.occ = base.occ
		dst.perASActions = base.perASActions
		dst.perASRoutes = base.perASRoutes
		dst.actionComms = base.actionComms
		dst.targets = base.targets
		dst.nonMemberInstances = base.nonMemberInstances
		dst.nonMemberComms = base.nonMemberComms
		dst.culprits = base.culprits

		for _, sh := range shards[1:] {
			st := &sh.fam[f]
			dst.usage.RoutesTotal += st.routes
			dst.commCounts = append(dst.commCounts, st.commCounts...)
			dst.commInstances += st.commInstances
			addMix(&dst.mix, st.mix)
			addFlavour(&dst.flavour, st.flavour)
			dst.usage.RoutesTagged += st.routesTagged
			dst.usage.ActionInstances += st.actionInstances
			dst.nonMemberInstances += st.nonMemberInstances
			for asn, n := range st.perASActions {
				dst.perASActions[asn] += n
			}
			for asn, n := range st.perASRoutes {
				dst.perASRoutes[asn] += n
			}
			for c, n := range st.actionComms {
				dst.actionComms[c] += n
			}
			for asn, mask := range st.typeMask {
				typeMask[asn] |= mask
			}
			for t := range st.occ {
				dst.occ[t] += st.occ[t]
			}
			for asn, n := range st.targets {
				dst.targets[asn] += n
			}
			for c, n := range st.nonMemberComms {
				dst.nonMemberComms[c] += n
			}
			for asn, n := range st.culprits {
				dst.culprits[asn] += n
			}
		}
		// A peer appears in perASActions iff it tagged ≥1 route.
		dst.usage.ASesUsing = len(dst.perASActions)
		for _, mask := range typeMask {
			for t := range dst.typeASes {
				if mask&(1<<t) != 0 {
					dst.typeASes[t]++
				}
			}
		}
	}
}

func addMix(dst *Mix, src Mix) {
	dst.DefinedStandard += src.DefinedStandard
	dst.UnknownStandard += src.UnknownStandard
	dst.DefinedExtended += src.DefinedExtended
	dst.UnknownExtended += src.UnknownExtended
	dst.DefinedLarge += src.DefinedLarge
	dst.UnknownLarge += src.UnknownLarge
}

func addFlavour(dst *FlavourActions, src FlavourActions) {
	dst.StandardAction += src.StandardAction
	dst.StandardInfo += src.StandardInfo
	dst.ExtendedAction += src.ExtendedAction
	dst.ExtendedInfo += src.ExtendedInfo
	dst.LargeAction += src.LargeAction
	dst.LargeInfo += src.LargeInfo
	dst.LargeWideTargets += src.LargeWideTargets
}

// --- accessors ----------------------------------------------------------

func (ix *Index) family(v6 bool) *familyStats {
	if v6 {
		return &ix.fam[1]
	}
	return &ix.fam[0]
}

// Class returns the memoized classification of a standard community,
// falling back to the scheme for values absent from the snapshot.
func (ix *Index) Class(c bgp.Community) dictionary.Class {
	if cl, ok := ix.classes.get(c); ok {
		return cl
	}
	return ix.scheme.Classify(c)
}

// Usage returns the Fig. 4a aggregate for one family.
func (ix *Index) Usage(v6 bool) Usage { return ix.family(v6).usage }

// Mix returns the Fig. 1/2 instance mix for one family.
func (ix *Index) Mix(v6 bool) Mix { return ix.family(v6).mix }

// ActionInfoSplit returns the Fig. 3 split for one family.
func (ix *Index) ActionInfoSplit(v6 bool) (action, info int) {
	f := ix.family(v6).flavour
	return f.StandardAction, f.StandardInfo
}

// FlavourActions returns the per-flavour action/info tallies.
func (ix *Index) FlavourActions(v6 bool) FlavourActions { return ix.family(v6).flavour }

// PerASActionCounts returns a copy of each announcing AS's action
// instance count (Fig. 4b/7 raw series).
func (ix *Index) PerASActionCounts(v6 bool) map[uint32]int {
	st := ix.family(v6)
	out := make(map[uint32]int, len(st.perASActions))
	for asn, n := range st.perASActions {
		out[asn] = n
	}
	return out
}

// RouteCommCorrelation returns the Fig. 4c scatter for one family.
func (ix *Index) RouteCommCorrelation(v6 bool) []CorrelationPoint {
	st := ix.family(v6)
	totalComms := 0
	for _, v := range st.perASActions {
		totalComms += v
	}
	out := make([]CorrelationPoint, 0, len(st.perASRoutes))
	for asn, rc := range st.perASRoutes {
		out = append(out, CorrelationPoint{
			ASN:       asn,
			RouteFrac: ratio(rc, st.usage.RoutesTotal),
			CommFrac:  ratio(st.perASActions[asn], totalComms),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// ASesPerActionType returns Table 2 for one family.
func (ix *Index) ASesPerActionType(v6 bool) []TypeUsage {
	st := ix.family(v6)
	out := make([]TypeUsage, 0, len(dictionary.ActionTypes))
	for _, t := range dictionary.ActionTypes {
		out = append(out, TypeUsage{
			Type:  t,
			ASes:  st.typeASes[t],
			Share: ratio(st.typeASes[t], st.usage.MembersAtRS),
		})
	}
	return out
}

// OccurrencesPerType returns the §5.3 per-type instance counts. Types
// with zero occurrences are absent, like in the direct twin.
func (ix *Index) OccurrencesPerType(v6 bool) map[dictionary.ActionType]int {
	st := ix.family(v6)
	out := make(map[dictionary.ActionType]int, len(dictionary.ActionTypes))
	for _, t := range dictionary.ActionTypes {
		if st.occ[t] > 0 {
			out[t] = st.occ[t]
		}
	}
	return out
}

// TopActionCommunities returns the Fig. 5 ranking for one family.
func (ix *Index) TopActionCommunities(v6 bool, k int) []CommunityCount {
	return rankCommunities(ix.family(v6).actionComms, ix.Class, k)
}

// NonMemberTargeting returns the §5.5 aggregate for one family.
func (ix *Index) NonMemberTargeting(v6 bool, k int) NonMemberTargeting {
	st := ix.family(v6)
	return NonMemberTargeting{
		Instances: st.nonMemberInstances,
		Total:     st.flavour.StandardAction,
		Top:       rankCommunities(st.nonMemberComms, ix.Class, k),
	}
}

// CulpritRanking returns the Fig. 7 ranking for one family.
func (ix *Index) CulpritRanking(v6 bool, k int) []Culprit {
	return rankCulprits(ix.family(v6).culprits, k)
}

// TopTargets ranks the ASes most targeted by action communities.
func (ix *Index) TopTargets(v6 bool, k int) []TargetedAS {
	st := ix.family(v6)
	out := make([]TargetedAS, 0, len(st.targets))
	for asn, n := range st.targets {
		out = append(out, TargetedAS{ASN: asn, IsMember: ix.members[asn], Count: n})
	}
	sortTargets(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// CategoryBreakdown returns the §5.4 target-category aggregation.
// Aggregating the per-target counts first and mapping each distinct
// ASN through the registry once gives the same totals as the
// per-instance walk of the direct twin.
func (ix *Index) CategoryBreakdown(reg *asdb.Registry, v6 bool) CategoryBreakdown {
	st := ix.family(v6)
	all := make(map[asdb.Category]int)
	nonMembers := make(map[asdb.Category]int)
	allTotal, nmTotal := 0, 0
	for asn, n := range st.targets {
		cat := reg.CategoryOf(asn)
		all[cat] += n
		allTotal += n
		if !ix.members[asn] {
			nonMembers[cat] += n
			nmTotal += n
		}
	}
	return CategoryBreakdown{
		All:        categoryShares(all, allTotal),
		NonMembers: categoryShares(nonMembers, nmTotal),
	}
}

// countsSlice materializes the family's per-route community counts:
// the positional slice when the index carries one, otherwise a fresh
// expansion of the histogram (arbitrary order — both consumers are
// order-independent). The result is freshly allocated either way and
// safe to sort in place.
func (st *familyStats) countsSlice() []int {
	if st.commCounts != nil || st.commHist == nil {
		return append([]int(nil), st.commCounts...)
	}
	counts := make([]int, 0, st.usage.RoutesTotal)
	for c, n := range st.commHist {
		for i := 0; i < n; i++ {
			counts = append(counts, c)
		}
	}
	return counts
}

// HygieneFilterImpact evaluates the §5.6 filter at each threshold.
func (ix *Index) HygieneFilterImpact(v6 bool, thresholds []int) []HygieneImpact {
	st := ix.family(v6)
	if st.commCounts != nil || st.commHist == nil {
		return hygieneImpacts(st.commCounts, st.commInstances, thresholds)
	}
	return hygieneImpacts(st.countsSlice(), st.commInstances, thresholds)
}

// CommunityCountPercentiles summarises the per-route community count
// distribution at the given percentiles.
func (ix *Index) CommunityCountPercentiles(v6 bool, percentiles []float64) []int {
	st := ix.family(v6)
	return countPercentiles(st.countsSlice(), percentiles)
}

// prefixes lazily counts the family's distinct prefixes — the only
// aggregate not worth computing during the classification pass.
func (ix *Index) prefixes(v6 bool) int {
	f := 0
	if v6 {
		f = 1
	}
	ix.prefixOnce[f].Do(func() {
		if ix.colPrefixes {
			// The retained encodings are canonical (appendPrefix is a
			// bijection on prefix values), so byte equality is prefix
			// equality and a string-keyed set counts exactly what the
			// netip.Prefix set below would.
			set := make(map[string]struct{}, len(ix.prefixEnds[f]))
			start := int32(0)
			for _, end := range ix.prefixEnds[f] {
				set[string(ix.prefixEnc[f][start:end])] = struct{}{}
				start = end
			}
			ix.prefixCount[f] = len(set)
			ix.prefixEnc[f], ix.prefixEnds[f] = nil, nil
			return
		}
		set := make(map[netip.Prefix]struct{}, ix.fam[f].usage.RoutesTotal/2+1)
		for i := range ix.snap.Routes {
			if r := &ix.snap.Routes[i]; r.IsIPv6() == v6 {
				set[r.Prefix] = struct{}{}
			}
		}
		ix.prefixCount[f] = len(set)
	})
	return ix.prefixCount[f]
}

// Counts returns the Appendix A row for one family.
func (ix *Index) Counts(v6 bool) SnapshotCounts {
	st := ix.family(v6)
	return SnapshotCounts{
		Date:        ix.snap.Date,
		Members:     st.usage.MembersAtRS,
		Prefixes:    ix.prefixes(v6),
		Routes:      st.usage.RoutesTotal,
		Communities: st.commInstances,
	}
}
