package analysis

import (
	"sync"
	"testing"

	"ixplight/internal/telemetry"
)

// setTelemetryForTest installs a fresh registry and restores the
// disabled state (and a clean index cache) when the test ends.
func setTelemetryForTest(t *testing.T) *telemetry.Registry {
	t.Helper()
	reg := telemetry.New()
	SetTelemetry(reg)
	t.Cleanup(func() {
		SetTelemetry(nil)
	})
	return reg
}

// TestIndexCacheMetrics walks one snapshot through the cache: first
// lookup is a miss that builds, repeats are hits, invalidation shows
// up as an eviction, and the entry gauge tracks the cache size.
func TestIndexCacheMetrics(t *testing.T) {
	setParallelismForTest(t, 2)
	reg := setTelemetryForTest(t)
	m := tel()
	s, scheme := genSnapshot(t, "DE-CIX")
	t.Cleanup(func() { InvalidateIndex(s) })
	InvalidateIndex(s) // drop anything another test may have cached
	hits0, misses0 := m.cacheHits.Value(), m.cacheMisses.Value()

	IndexFor(s, scheme)
	if got := m.cacheMisses.Value() - misses0; got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	if got := m.buildSeconds.Count(); got < 1 {
		t.Errorf("build observations = %d, want >= 1", got)
	}
	IndexFor(s, scheme)
	IndexFor(s, scheme)
	if got := m.cacheHits.Value() - hits0; got != 2 {
		t.Errorf("hits = %d, want 2", got)
	}
	if m.cacheEntries.Value() < 1 {
		t.Errorf("cache entries gauge = %d, want >= 1", m.cacheEntries.Value())
	}

	evictions0 := m.evictions.Value()
	InvalidateIndex(s)
	if got := m.evictions.Value() - evictions0; got != 1 {
		t.Errorf("evictions after invalidate = %d, want 1", got)
	}
	// The registry backing the instruments is the one we installed.
	if reg.Snapshot()["ixplight_analysis_index_cache_misses_total"] == nil {
		t.Error("metrics not registered on the installed registry")
	}
}

// TestIndexCoalescedBuilds: concurrent first lookups must build once
// and record the latecomers as coalesced.
func TestIndexCoalescedBuilds(t *testing.T) {
	setParallelismForTest(t, 2)
	setTelemetryForTest(t)
	m := tel()
	s, scheme := genSnapshot(t, "LINX")
	t.Cleanup(func() { InvalidateIndex(s) })
	InvalidateIndex(s)
	builds0 := m.buildSeconds.Count()

	const goroutines = 8
	var wg sync.WaitGroup
	ixs := make([]*Index, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ixs[g] = IndexFor(s, scheme)
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if ixs[g] != ixs[0] {
			t.Fatal("concurrent lookups returned different indexes")
		}
	}
	if got := m.buildSeconds.Count() - builds0; got != 1 {
		t.Errorf("builds = %d, want exactly 1", got)
	}
	// Every goroutine is accounted for: 1 miss + (hits + coalesced) = 8.
	total := m.cacheMisses.Value() + m.cacheHits.Value() + m.coalesced.Value()
	if total < goroutines {
		t.Errorf("accounted lookups = %d, want >= %d", total, goroutines)
	}
}

// TestIndexBuildSpan: builds must emit an analysis.index_build span
// carrying the snapshot identity.
func TestIndexBuildSpan(t *testing.T) {
	setParallelismForTest(t, 2)
	reg := setTelemetryForTest(t)
	sink := &telemetry.RecordingSink{}
	reg.SetSpanSink(sink)
	s, scheme := genSnapshot(t, "DE-CIX")
	NewIndexWorkers(s, scheme, 2)
	spans := sink.Named("analysis.index_build")
	if len(spans) != 1 {
		t.Fatalf("build spans = %d, want 1", len(spans))
	}
	attrs := map[string]string{}
	for _, a := range spans[0].Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["ixp"] != s.IXP || attrs["date"] != s.Date {
		t.Errorf("span attrs = %v, want ixp=%s date=%s", attrs, s.IXP, s.Date)
	}
}

// TestTelemetryOffCostsNothingVisible: with no registry installed the
// cache must behave identically (a correctness guard for the
// nil-telemetry fast path).
func TestTelemetryOffCostsNothingVisible(t *testing.T) {
	setParallelismForTest(t, 2)
	SetTelemetry(nil)
	s, scheme := genSnapshot(t, "DE-CIX")
	t.Cleanup(func() { InvalidateIndex(s) })
	InvalidateIndex(s)
	a := IndexFor(s, scheme)
	b := IndexFor(s, scheme)
	if a == nil || a != b {
		t.Error("cache broken with telemetry off")
	}
}
