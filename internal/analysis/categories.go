package analysis

import (
	"sort"

	"ixplight/internal/asdb"
	"ixplight/internal/bgp"
	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
)

// The §5.4 category view: "Communities that avoid route redistribution
// to big content and Internet providers ASes are among the most
// popular". This module aggregates action-community targets by the
// operator category of the targeted network, separately for member and
// non-member targets.

// CategoryShare is one row of the breakdown.
type CategoryShare struct {
	Category asdb.Category
	// Instances counts action communities targeting ASes of this
	// category; Share is its fraction of all AS-targeted instances.
	Instances int
	Share     float64
}

// CategoryBreakdown splits targeted action instances by operator
// category. Unregistered ASNs fall under asdb.Unknown (the synthetic
// tail); the named networks dominate the head, which is what §5.4
// reasons about.
type CategoryBreakdown struct {
	All        []CategoryShare
	NonMembers []CategoryShare
}

// ComputeCategoryBreakdown runs the §5.4 category aggregation for one
// snapshot family.
func ComputeCategoryBreakdown(s *collector.Snapshot, scheme *dictionary.Scheme, reg *asdb.Registry, v6 bool) CategoryBreakdown {
	if ix := indexFor(s, scheme); ix != nil {
		return ix.CategoryBreakdown(reg, v6)
	}
	return ComputeCategoryBreakdownDirect(s, scheme, reg, v6)
}

// ComputeCategoryBreakdownDirect is the direct-classify twin of
// ComputeCategoryBreakdown.
func ComputeCategoryBreakdownDirect(s *collector.Snapshot, scheme *dictionary.Scheme, reg *asdb.Registry, v6 bool) CategoryBreakdown {
	members := s.MemberSet()
	all := make(map[asdb.Category]int)
	nonMembers := make(map[asdb.Category]int)
	allTotal, nmTotal := 0, 0
	for _, r := range s.Routes {
		if r.IsIPv6() != v6 {
			continue
		}
		classifyRouteActions(r, scheme, func(_ bgp.Community, cl dictionary.Class) {
			if cl.Target != dictionary.TargetPeer {
				return
			}
			cat := reg.CategoryOf(cl.TargetASN)
			all[cat]++
			allTotal++
			if !members[cl.TargetASN] {
				nonMembers[cat]++
				nmTotal++
			}
		})
	}
	return CategoryBreakdown{
		All:        categoryShares(all, allTotal),
		NonMembers: categoryShares(nonMembers, nmTotal),
	}
}

func categoryShares(counts map[asdb.Category]int, total int) []CategoryShare {
	out := make([]CategoryShare, 0, len(counts))
	for cat, n := range counts {
		out = append(out, CategoryShare{Category: cat, Instances: n, Share: ratio(n, total)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Instances != out[j].Instances {
			return out[i].Instances > out[j].Instances
		}
		return out[i].Category < out[j].Category
	})
	return out
}

// ContentShare sums the content-provider and cloud shares of a
// breakdown — the paper's "big content" aggregate.
func ContentShare(shares []CategoryShare) float64 {
	total := 0.0
	for _, s := range shares {
		if s.Category == asdb.ContentProvider || s.Category == asdb.Cloud {
			total += s.Share
		}
	}
	return total
}
