package analysis

import (
	"sort"

	"ixplight/internal/bgp"
	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
)

// TypeUsage is one Table 2 cell pair: how many member ASes used an
// action type, and its share of the family's RS members.
type TypeUsage struct {
	Type  dictionary.ActionType
	ASes  int
	Share float64
}

// ASesPerActionType computes Table 2 for one snapshot family: for each
// of the four action groups, the number (and fraction) of RS members
// tagging at least one route with a community of that group.
func ASesPerActionType(s *collector.Snapshot, scheme *dictionary.Scheme, v6 bool) []TypeUsage {
	if ix := indexFor(s, scheme); ix != nil {
		return ix.ASesPerActionType(v6)
	}
	return ASesPerActionTypeDirect(s, scheme, v6)
}

// ASesPerActionTypeDirect is the direct-classify twin of
// ASesPerActionType.
func ASesPerActionTypeDirect(s *collector.Snapshot, scheme *dictionary.Scheme, v6 bool) []TypeUsage {
	users := map[dictionary.ActionType]map[uint32]bool{}
	for _, t := range dictionary.ActionTypes {
		users[t] = make(map[uint32]bool)
	}
	for _, r := range s.Routes {
		if r.IsIPv6() != v6 {
			continue
		}
		classifyRouteActions(r, scheme, func(_ bgp.Community, cl dictionary.Class) {
			users[cl.Action][r.PeerAS()] = true
		})
	}
	members := 0
	for _, m := range s.Members {
		if (v6 && m.IPv6) || (!v6 && m.IPv4) {
			members++
		}
	}
	out := make([]TypeUsage, 0, len(dictionary.ActionTypes))
	for _, t := range dictionary.ActionTypes {
		out = append(out, TypeUsage{
			Type:  t,
			ASes:  len(users[t]),
			Share: ratio(len(users[t]), members),
		})
	}
	return out
}

// OccurrencesPerType counts action-community instances per group —
// §5.3's second analysis.
func OccurrencesPerType(s *collector.Snapshot, scheme *dictionary.Scheme, v6 bool) map[dictionary.ActionType]int {
	if ix := indexFor(s, scheme); ix != nil {
		return ix.OccurrencesPerType(v6)
	}
	return OccurrencesPerTypeDirect(s, scheme, v6)
}

// OccurrencesPerTypeDirect is the direct-classify twin of
// OccurrencesPerType.
func OccurrencesPerTypeDirect(s *collector.Snapshot, scheme *dictionary.Scheme, v6 bool) map[dictionary.ActionType]int {
	out := make(map[dictionary.ActionType]int, len(dictionary.ActionTypes))
	for _, r := range s.Routes {
		if r.IsIPv6() != v6 {
			continue
		}
		classifyRouteActions(r, scheme, func(_ bgp.Community, cl dictionary.Class) {
			out[cl.Action]++
		})
	}
	return out
}

// CommunityCount is one ranked community in Fig. 5/6.
type CommunityCount struct {
	Community bgp.Community
	Class     dictionary.Class
	Count     int
}

// TopActionCommunities ranks individual action community values by
// occurrence — Fig. 5's top-20 per IXP (ties broken by value for
// determinism).
func TopActionCommunities(s *collector.Snapshot, scheme *dictionary.Scheme, v6 bool, k int) []CommunityCount {
	if ix := indexFor(s, scheme); ix != nil {
		return ix.TopActionCommunities(v6, k)
	}
	return TopActionCommunitiesDirect(s, scheme, v6, k)
}

// TopActionCommunitiesDirect is the direct-classify twin of
// TopActionCommunities.
func TopActionCommunitiesDirect(s *collector.Snapshot, scheme *dictionary.Scheme, v6 bool, k int) []CommunityCount {
	counts := make(map[bgp.Community]int, 128)
	for _, r := range s.Routes {
		if r.IsIPv6() != v6 {
			continue
		}
		classifyRouteActions(r, scheme, func(c bgp.Community, _ dictionary.Class) {
			counts[c]++
		})
	}
	return rankCommunities(counts, scheme.Classify, k)
}

// rankCommunities sorts a community histogram by count (desc) then
// value (asc) and truncates to k. classify resolves each value's
// Class — the scheme's Classify on the direct path, the index memo on
// the indexed one.
func rankCommunities(counts map[bgp.Community]int, classify func(bgp.Community) dictionary.Class, k int) []CommunityCount {
	out := make([]CommunityCount, 0, len(counts))
	for c, n := range counts {
		out = append(out, CommunityCount{Community: c, Class: classify(c), Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Community < out[j].Community
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// NonMemberTargeting quantifies §5.5 for one family: the action
// instances whose target AS has no session at the RS, the total action
// instances, and the top-k such communities (Fig. 6).
type NonMemberTargeting struct {
	Instances int
	Total     int
	Top       []CommunityCount
}

// Share is the headline §5.5 fraction (31.8%–64.3% in the paper).
func (n NonMemberTargeting) Share() float64 { return ratio(n.Instances, n.Total) }

// ComputeNonMemberTargeting runs the §5.5 analysis. Only communities
// with a specific AS target can be ineffective this way; to-all and
// blackhole actions always have effect.
func ComputeNonMemberTargeting(s *collector.Snapshot, scheme *dictionary.Scheme, v6 bool, k int) NonMemberTargeting {
	if ix := indexFor(s, scheme); ix != nil {
		return ix.NonMemberTargeting(v6, k)
	}
	return ComputeNonMemberTargetingDirect(s, scheme, v6, k)
}

// ComputeNonMemberTargetingDirect is the direct-classify twin of
// ComputeNonMemberTargeting.
func ComputeNonMemberTargetingDirect(s *collector.Snapshot, scheme *dictionary.Scheme, v6 bool, k int) NonMemberTargeting {
	members := s.MemberSet()
	counts := make(map[bgp.Community]int, 64)
	res := NonMemberTargeting{}
	for _, r := range s.Routes {
		if r.IsIPv6() != v6 {
			continue
		}
		classifyRouteActions(r, scheme, func(c bgp.Community, cl dictionary.Class) {
			res.Total++
			if cl.Target == dictionary.TargetPeer && !members[cl.TargetASN] {
				res.Instances++
				counts[c]++
			}
		})
	}
	res.Top = rankCommunities(counts, scheme.Classify, k)
	return res
}

// Culprit is one Fig. 7 bar: an AS and how many of its action
// communities target non-RS members.
type Culprit struct {
	ASN   uint32
	Count int
}

// CulpritRanking ranks the ASes tagging routes with communities that
// target non-RS members — Fig. 7's top-k.
func CulpritRanking(s *collector.Snapshot, scheme *dictionary.Scheme, v6 bool, k int) []Culprit {
	if ix := indexFor(s, scheme); ix != nil {
		return ix.CulpritRanking(v6, k)
	}
	return CulpritRankingDirect(s, scheme, v6, k)
}

// CulpritRankingDirect is the direct-classify twin of CulpritRanking.
func CulpritRankingDirect(s *collector.Snapshot, scheme *dictionary.Scheme, v6 bool, k int) []Culprit {
	members := s.MemberSet()
	counts := make(map[uint32]int, len(s.Members))
	for _, r := range s.Routes {
		if r.IsIPv6() != v6 {
			continue
		}
		classifyRouteActions(r, scheme, func(_ bgp.Community, cl dictionary.Class) {
			if cl.Target == dictionary.TargetPeer && !members[cl.TargetASN] {
				counts[r.PeerAS()]++
			}
		})
	}
	return rankCulprits(counts, k)
}

// rankCulprits sorts a per-AS histogram into the Fig. 7 order
// (count desc, ASN asc) and truncates to k.
func rankCulprits(counts map[uint32]int, k int) []Culprit {
	out := make([]Culprit, 0, len(counts))
	for asn, n := range counts {
		out = append(out, Culprit{ASN: asn, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].ASN < out[j].ASN
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// TargetedAS aggregates instances by target ASN (member or not) — the
// per-AS view behind the §5.4 "who is being avoided" discussion.
type TargetedAS struct {
	ASN      uint32
	IsMember bool
	Count    int
}

// TopTargets ranks the ASes most targeted by action communities.
func TopTargets(s *collector.Snapshot, scheme *dictionary.Scheme, v6 bool, k int) []TargetedAS {
	if ix := indexFor(s, scheme); ix != nil {
		return ix.TopTargets(v6, k)
	}
	return TopTargetsDirect(s, scheme, v6, k)
}

// TopTargetsDirect is the direct-classify twin of TopTargets.
func TopTargetsDirect(s *collector.Snapshot, scheme *dictionary.Scheme, v6 bool, k int) []TargetedAS {
	members := s.MemberSet()
	counts := make(map[uint32]int, 128)
	for _, r := range s.Routes {
		if r.IsIPv6() != v6 {
			continue
		}
		classifyRouteActions(r, scheme, func(_ bgp.Community, cl dictionary.Class) {
			if cl.Target == dictionary.TargetPeer {
				counts[cl.TargetASN]++
			}
		})
	}
	out := make([]TargetedAS, 0, len(counts))
	for asn, n := range counts {
		out = append(out, TargetedAS{ASN: asn, IsMember: members[asn], Count: n})
	}
	sortTargets(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// sortTargets orders targeted ASes by count (desc) then ASN (asc).
func sortTargets(out []TargetedAS) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].ASN < out[j].ASN
	})
}
