// Incremental index maintenance over snapshot delta chains: instead
// of rebuilding the classified Index from scratch for every day of a
// daily series, day N's index is derived from day N-1's by applying a
// delta's op stream (collector.DeltaReader) to the dense-id
// aggregates — decrementing for removed and changed-away routes,
// incrementing for added and changed-to ones, and classifying only
// the community values first seen in the delta's table extensions.
// Per-day cost scales with churn, not with table size.
//
// The chain's shared lookup state (dense community ids, per-set
// reductions, per-path peers, reference counts) lives in a
// seriesState owned by the chain's newest index. Each Advance clones
// the aggregate maps before patching them (runtime map cloning, not
// re-insertion), so every earlier day's index stays immutable and
// concurrently usable — exactly what Stability's per-day fan-out
// needs — while only the owner may advance further.
//
// Equivalence is by construction: day 0 replays every route of the
// base snapshot through the same applyRoute that the deltas use, and
// applyRoute mirrors indexShard.addRoute instance by instance, so a
// chained index answers every accessor identically to a full rebuild
// of the materialized day (pinned per accessor by the equivalence
// tests). The one representational difference is the §5.6 per-route
// community-count distribution, carried as a histogram
// (familyStats.commHist) because a positional slice cannot be patched
// under arbitrary-position edits; both consumers are
// order-independent.
package analysis

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"maps"
	"time"

	"ixplight/internal/bgp"
	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
)

// extSum is the member-independent reduction of one interned
// extended-community set: applying a route that references the set
// adds these numbers to the family's mix/flavour aggregates.
type extSum struct {
	n, defined, unknown, action, info int32
}

// largeSum is the same reduction for a large-community set, plus the
// §5.2 wide-target tally.
type largeSum struct {
	n, defined, unknown, action, info, wide int32
}

// seriesFam is one family's chain-lifetime reference counts — the
// state that lets removals undo exactly what additions did, and lets
// membership flips re-attribute non-member aggregates without
// revisiting routes.
type seriesFam struct {
	// idRefs counts live instances per dense action id — exactly the
	// per-community ranking data, kept dense so the op fold pays an
	// array increment instead of a map update per instance.
	idRefs []int32
	// idPeerRefs counts live instances per (peer-targeting action id,
	// announcing peer) — the culprit attribution, re-aggregated per day
	// against that day's member list.
	idPeerRefs map[int32]map[uint32]int32
	// peerTypes counts live action instances per (peer, action type);
	// typeASes increments on 0→1 and decrements on 1→0.
	peerTypes map[uint32]*[numActionTypes]int32
	// prefixRefs counts live routes per encoded prefix; the family's
	// distinct-prefix count is its length.
	prefixRefs map[string]int32
}

// seriesState is the chain state shared along one delta chain. It is
// single-writer: only the owner index's Advance mutates it, and the
// per-day indexes never read it after construction.
type seriesState struct {
	scheme *dictionary.Scheme
	owner  *Index
	digest [sha256.Size]byte
	// sizes tracks the chain table sizes in delta wire order
	// (next-hops, AS paths, community sets, extended sets, large
	// sets), verified against every delta's base sizes.
	sizes [5]int

	// Dense ids for distinct standard community values, in chain
	// first-appearance order; each is classified exactly once.
	commID  map[bgp.Community]int32
	idComm  []bgp.Community
	idClass []dictionary.Class
	idFlags []uint8 // idFlagAction

	// actionIDs lists the action-classified ids in registration order —
	// the iteration domain of the per-day aggregate materialization.
	actionIDs []int32

	// classes accumulates every classification; each day's index gets
	// a clone so it stays immutable while the chain classifies on.
	classes      *classMemo
	extClasses   map[bgp.ExtendedCommunity]dictionary.Class
	largeClasses map[bgp.LargeCommunity]dictionary.Class

	// Community sets as CSR runs of dense ids (chain set id → ids);
	// ext/large sets reduced to their member-independent sums; paths
	// reduced to their announcing peer.
	setOff    []int32
	setIDs    []int32
	extSets   []extSum
	largeSets []largeSum
	pathPeer  []uint32

	// targetIDs lists the peer-targeting action ids per target ASN —
	// the grouping the per-day materialization walks to rebuild the
	// target and non-member aggregates against that day's member list.
	targetIDs map[uint32][]int32

	members map[uint32]bool
	fam     [2]seriesFam
}

// registerCommSet appends one interned community set to the chain:
// new values are classified and get the next dense id, and the set
// becomes a CSR run of ids.
func (st *seriesState) registerCommSet(set []bgp.Community) {
	for _, c := range set {
		id, ok := st.commID[c]
		if !ok {
			cl := st.scheme.Classify(c)
			id = int32(len(st.idComm))
			st.commID[c] = id
			st.idComm = append(st.idComm, c)
			st.idClass = append(st.idClass, cl)
			var flags uint8
			if cl.Known && cl.Action.IsAction() {
				flags = idFlagAction
				st.actionIDs = append(st.actionIDs, id)
				if cl.Target == dictionary.TargetPeer {
					st.targetIDs[cl.TargetASN] = append(st.targetIDs[cl.TargetASN], id)
				}
			}
			st.idFlags = append(st.idFlags, flags)
			st.classes.put(c, cl)
			for f := range st.fam {
				st.fam[f].idRefs = append(st.fam[f].idRefs, 0)
			}
		}
		st.setIDs = append(st.setIDs, id)
	}
	st.setOff = append(st.setOff, int32(len(st.setIDs)))
}

func (st *seriesState) registerExtSet(set []bgp.ExtendedCommunity) {
	s := extSum{n: int32(len(set))}
	for _, e := range set {
		cl, ok := st.extClasses[e]
		if !ok {
			cl = st.scheme.ClassifyExtended(e)
			st.extClasses[e] = cl
		}
		switch {
		case !cl.Known:
			s.unknown++
		case cl.Action.IsAction():
			s.defined++
			s.action++
		default:
			s.defined++
			s.info++
		}
	}
	st.extSets = append(st.extSets, s)
}

func (st *seriesState) registerLargeSet(set []bgp.LargeCommunity) {
	s := largeSum{n: int32(len(set))}
	for _, l := range set {
		cl, ok := st.largeClasses[l]
		if !ok {
			cl = st.scheme.ClassifyLarge(l)
			st.largeClasses[l] = cl
		}
		switch {
		case !cl.Known:
			s.unknown++
		case cl.Action.IsAction():
			s.defined++
			s.action++
			if cl.Target == dictionary.TargetPeer && cl.TargetASN > 0xFFFF {
				s.wide++
			}
		default:
			s.defined++
			s.info++
		}
	}
	st.largeSets = append(st.largeSets, s)
}

// mapAdd adds n to m[k] with NewIndex's never-stores-zero invariant:
// entries reaching zero are deleted, so incrementally patched maps
// stay equal (not just equivalent) to rebuilt ones.
func mapAdd[K comparable](m map[K]int, k K, n int) {
	if v := m[k] + n; v == 0 {
		delete(m, k)
	} else {
		m[k] = v
	}
}

// prefixAdd is mapAdd over an encoded-prefix refcount; the string
// conversion only allocates on insertion.
func prefixAdd(m map[string]int32, key []byte, sign int) {
	if v := m[string(key)] + int32(sign); v == 0 {
		delete(m, string(key))
	} else {
		m[string(key)] = v
	}
}

// applyRoute folds one route instance into (sign +1) or out of
// (sign -1) ix's family-f aggregates. It mirrors indexShard.addRoute
// per instance — every aggregate a route contributes on the full
// rebuild path moves by exactly that contribution here — which is
// what keeps chained indexes accessor-identical to rebuilds.
func (st *seriesState) applyRoute(ix *Index, f int, prefix []byte, commSet, extSet, largeSet, path, sign int) {
	fam := &ix.fam[f]
	sf := &st.fam[f]
	peer := st.pathPeer[path]

	fam.usage.RoutesTotal += sign
	mapAdd(fam.perASRoutes, peer, sign)
	prefixAdd(sf.prefixRefs, prefix, sign)

	st.applyAttrs(ix, f, commSet, extSet, largeSet, path, sign)
}

// applyAttrs is applyRoute without the route-level terms (RoutesTotal,
// per-AS route counts, prefix refcounts). A DeltaChange keeps the
// route's prefix and peer, so those terms cancel between its -1/+1
// pair by construction — and an attribute change that leaves all
// three community sets alone (a MED flap, a next-hop move) touches no
// aggregate at all.
//
// The per-id fold updates only scalars, dense refcount arrays and the
// per-(id, peer) refcounts; the ranking maps a rebuild maintains per
// instance (actionComms, targets, the non-member aggregates) are pure
// functions of those refcounts and the day's member list, so they are
// materialized once per day (materializeFam) instead of being patched
// per instance — the day's cost moves from O(instances) map updates
// to O(distinct action ids) map inserts.
func (st *seriesState) applyAttrs(ix *Index, f int, commSet, extSet, largeSet, path, sign int) {
	fam := &ix.fam[f]
	sf := &st.fam[f]
	peer := st.pathPeer[path]

	setIDs := st.setIDs[st.setOff[commSet]:st.setOff[commSet+1]]
	es := &st.extSets[extSet]
	ls := &st.largeSets[largeSet]

	cc := len(setIDs) + int(es.n) + int(ls.n)
	mapAdd(fam.commHist, cc, sign)
	fam.commInstances += cc * sign

	fam.mix.DefinedExtended += int(es.defined) * sign
	fam.mix.UnknownExtended += int(es.unknown) * sign
	fam.flavour.ExtendedAction += int(es.action) * sign
	fam.flavour.ExtendedInfo += int(es.info) * sign
	fam.mix.DefinedLarge += int(ls.defined) * sign
	fam.mix.UnknownLarge += int(ls.unknown) * sign
	fam.flavour.LargeAction += int(ls.action) * sign
	fam.flavour.LargeInfo += int(ls.info) * sign
	fam.flavour.LargeWideTargets += int(ls.wide) * sign

	actions := 0
	var pt *[numActionTypes]int32 // the peer's type counts, fetched once
	for _, id := range setIDs {
		cl := &st.idClass[id]
		if !cl.Known {
			fam.mix.UnknownStandard += sign
			continue
		}
		fam.mix.DefinedStandard += sign
		if st.idFlags[id]&idFlagAction == 0 {
			fam.flavour.StandardInfo += sign
			continue
		}
		fam.flavour.StandardAction += sign
		actions++
		sf.idRefs[id] += int32(sign)
		fam.occ[cl.Action] += sign
		if pt == nil {
			pt = sf.peerTypes[peer]
			if pt == nil {
				pt = new([numActionTypes]int32)
				sf.peerTypes[peer] = pt
			}
		}
		prev := pt[cl.Action]
		pt[cl.Action] = prev + int32(sign)
		if prev == 0 && sign > 0 {
			fam.typeASes[cl.Action]++
		} else if prev == 1 && sign < 0 {
			fam.typeASes[cl.Action]--
		}
		if cl.Target == dictionary.TargetPeer {
			pm := sf.idPeerRefs[id]
			if pm == nil {
				pm = make(map[uint32]int32, 2)
				sf.idPeerRefs[id] = pm
			}
			if v := pm[peer] + int32(sign); v == 0 {
				delete(pm, peer)
			} else {
				pm[peer] = v
			}
		}
	}
	if actions > 0 {
		fam.usage.RoutesTagged += sign
		fam.usage.ActionInstances += actions * sign
		mapAdd(fam.perASActions, peer, actions*sign)
	}
}

// materializeFam derives one family's ranking maps from the chain
// refcounts at a day boundary. An action community's instance count
// is its id's refcount, a target ASN's count is the sum over its ids,
// and the §5.5 non-member aggregates are the target sums restricted
// to ASNs outside the day's member list — so membership churn needs
// no per-route work at all, the day's materialization simply reads
// the new member list. Zero-refcount entries are skipped, preserving
// NewIndex's never-stores-zero map shape.
func (st *seriesState) materializeFam(ix *Index, f int) {
	sf := &st.fam[f]
	fam := &ix.fam[f]

	actionComms := make(map[bgp.Community]int, len(st.actionIDs))
	for _, id := range st.actionIDs {
		if n := sf.idRefs[id]; n != 0 {
			actionComms[st.idComm[id]] = int(n)
		}
	}
	fam.actionComms = actionComms

	targets := make(map[uint32]int, len(st.targetIDs))
	nonMemberComms := make(map[bgp.Community]int, 32)
	culprits := make(map[uint32]int, 32)
	nonMemberInstances := 0
	for asn, ids := range st.targetIDs {
		total := 0
		for _, id := range ids {
			total += int(sf.idRefs[id])
		}
		if total != 0 {
			targets[asn] = total
		}
		if st.members[asn] {
			continue
		}
		for _, id := range ids {
			if n := int(sf.idRefs[id]); n != 0 {
				nonMemberComms[st.idComm[id]] = n
				nonMemberInstances += n
			}
			for peer, cnt := range sf.idPeerRefs[id] {
				culprits[peer] += int(cnt)
			}
		}
	}
	fam.targets = targets
	fam.nonMemberComms = nonMemberComms
	fam.culprits = culprits
	fam.nonMemberInstances = nonMemberInstances
}

// finalize derives the aggregates that fall out of the maintained
// state at day boundaries — the materialized ranking maps, the
// ASes-using count — and marks the lazy prefix count as already
// computed.
func (st *seriesState) finalize(ix *Index) {
	for f := range ix.fam {
		st.materializeFam(ix, f)
		ix.fam[f].usage.ASesUsing = len(ix.fam[f].perASActions)
		ix.prefixCount[f] = len(st.fam[f].prefixRefs)
		ix.prefixOnce[f].Do(func() {})
	}
}

// cloneFam copies one family's incrementally patched aggregates for
// the next day's index; the materialized ranking maps are rebuilt per
// day (materializeFam), so they start nil instead of cloned. The maps
// clone at the runtime's bucket level (maps.Clone), so this costs
// memory bandwidth, not re-insertion.
func cloneFam(src *familyStats) familyStats {
	dst := *src
	dst.commHist = maps.Clone(src.commHist)
	dst.perASActions = maps.Clone(src.perASActions)
	dst.perASRoutes = maps.Clone(src.perASRoutes)
	dst.actionComms = nil
	dst.targets = nil
	dst.nonMemberComms = nil
	dst.culprits = nil
	return dst
}

// IndexSeriesFromReader builds the classified index for a delta
// chain's base snapshot straight off its columnar route block, primed
// for Index.Advance: alongside the index it constructs the chain
// state (dense ids, per-set reductions, reference counts) that the
// deltas will patch. The snapshot must be CodecBinary in
// random-access mode — the chain digest is the file's own sha256.
//
// The day-0 index answers every accessor identically to NewIndex over
// the materialized snapshot; like IndexFromReader its embedded
// snapshot is header-only (attach with AttachIndex).
func IndexSeriesFromReader(sr *collector.SnapshotReader, scheme *dictionary.Scheme) (*Index, error) {
	digest, ok := sr.Digest()
	if !ok {
		return nil, errors.New("analysis: series index requires a random-access CodecBinary snapshot")
	}
	t := tel()
	if t != nil {
		sp := t.span("analysis.index_build")
		sp.SetAttr("ixp", sr.Header().IXP)
		sp.SetAttr("date", sr.Header().Date)
		sp.SetAttr("source", "columns")
		t0 := time.Now()
		defer func() {
			t.built(time.Since(t0))
			sp.End()
		}()
	}
	t.builtFrom("columns")

	var arena collector.Arena
	rb, err := sr.RouteBlock(&arena)
	if err != nil {
		return nil, err
	}

	head := *sr.Header() // private copy; Routes stays nil
	st := &seriesState{
		scheme:       scheme,
		digest:       digest,
		commID:       make(map[bgp.Community]int32, 1024),
		classes:      newClassMemo(64),
		extClasses:   make(map[bgp.ExtendedCommunity]dictionary.Class, 32),
		largeClasses: make(map[bgp.LargeCommunity]dictionary.Class, 32),
		targetIDs:    make(map[uint32][]int32, 64),
		members:      head.MemberSet(),
		setOff:       []int32{0},
	}
	hint := len(head.Members)
	for f := range st.fam {
		sf := &st.fam[f]
		sf.idPeerRefs = make(map[int32]map[uint32]int32, 64)
		sf.peerTypes = make(map[uint32]*[numActionTypes]int32, hint)
		sf.prefixRefs = make(map[string]int32, rb.NumRoutes()/2+1)
	}

	// The binary file's table order is canonical first-appearance
	// order — the same order a DeltaEncoder starting from this
	// snapshot interns, so chain ids agree by construction.
	for _, set := range rb.CommunitySets() {
		st.registerCommSet(set)
	}
	for _, set := range rb.ExtCommunitySets() {
		st.registerExtSet(set)
	}
	for _, set := range rb.LargeCommunitySets() {
		st.registerLargeSet(set)
	}
	for _, p := range rb.ASPaths() {
		st.pathPeer = append(st.pathPeer, p.Neighbor())
	}
	st.sizes = [5]int{
		len(rb.NextHops()), len(st.pathPeer),
		len(rb.CommunitySets()), len(st.extSets), len(st.largeSets),
	}

	ix := &Index{snap: &head, scheme: scheme, members: st.members, series: st}
	for f := range ix.fam {
		fam := &ix.fam[f]
		fam.commHist = make(map[int]int, 64)
		fam.perASActions = make(map[uint32]int, hint)
		fam.perASRoutes = make(map[uint32]int, hint)
	}
	for _, m := range head.Members {
		if m.IPv4 {
			ix.fam[0].usage.MembersAtRS++
		}
		if m.IPv6 {
			ix.fam[1].usage.MembersAtRS++
		}
	}

	// Replay every base route as an addition through the same fold the
	// deltas use — equivalence to a rebuild holds by construction.
	err = rb.Scan(func(ref *collector.RouteRef) error {
		f := 0
		if ref.V6 {
			f = 1
		}
		st.applyRoute(ix, f, ref.PrefixBytes,
			ref.Communities, ref.ExtCommunities, ref.LargeCommunities, ref.Path, 1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	st.finalize(ix)
	ix.classes = st.classes.clone()
	st.owner = ix
	return ix, nil
}

// Advance derives day N's index from this one (day N-1) by applying a
// delta's table extensions and op stream to cloned aggregates. Only
// the chain's newest index may advance, and the delta must extend
// exactly this index's snapshot (digest- and table-size-verified);
// earlier days' indexes stay valid and immutable. If Advance returns
// a non-mismatch error partway through, the chain state is undefined
// and the series must be rebuilt from its base.
func (ix *Index) Advance(d *collector.DeltaReader) (*Index, error) {
	st := ix.series
	if st == nil {
		return nil, errors.New("analysis: Advance requires a series index (IndexSeriesFromReader)")
	}
	if st.owner != ix {
		return nil, errors.New("analysis: Advance on a superseded day; only the chain's newest index may advance")
	}
	if bd := d.BaseDigest(); bd != st.digest {
		return nil, fmt.Errorf("%w: delta for %q does not extend this index's snapshot",
			collector.ErrDeltaBaseMismatch, d.BaseDate())
	}
	if sizes := d.BaseTableSizes(); sizes != st.sizes {
		return nil, fmt.Errorf("%w: delta expects table sizes %v, chain has %v",
			collector.ErrDeltaBaseMismatch, sizes, st.sizes)
	}
	t := tel()
	if t != nil {
		sp := t.span("analysis.index_build")
		sp.SetAttr("ixp", d.Header().IXP)
		sp.SetAttr("date", d.Header().Date)
		sp.SetAttr("source", "delta")
		t0 := time.Now()
		defer func() {
			t.built(time.Since(t0))
			sp.End()
		}()
	}
	t.builtFrom("delta")

	head := *d.Header() // private copy; Routes stays nil
	next := &Index{snap: &head, scheme: st.scheme, members: head.MemberSet(), series: st}
	for f := range next.fam {
		next.fam[f] = cloneFam(&ix.fam[f])
		next.fam[f].usage.MembersAtRS = 0
	}
	for _, m := range head.Members {
		if m.IPv4 {
			next.fam[0].usage.MembersAtRS++
		}
		if m.IPv6 {
			next.fam[1].usage.MembersAtRS++
		}
	}

	// Membership churn needs no aggregate surgery: the member-sensitive
	// aggregates are materialized per day against this list (finalize).
	st.members = next.members

	for _, set := range d.NewCommunitySets() {
		st.registerCommSet(set)
	}
	for _, set := range d.NewExtCommunitySets() {
		st.registerExtSet(set)
	}
	for _, set := range d.NewLargeCommunitySets() {
		st.registerLargeSet(set)
	}
	for _, p := range d.NewASPaths() {
		st.pathPeer = append(st.pathPeer, p.Neighbor())
	}
	st.sizes[0] += len(d.NewNextHops())
	st.sizes[1] += len(d.NewASPaths())
	st.sizes[2] += len(d.NewCommunitySets())
	st.sizes[3] += len(d.NewExtCommunitySets())
	st.sizes[4] += len(d.NewLargeCommunitySets())

	err := d.Ops(func(op *collector.DeltaOp) error {
		f := 0
		if op.V6 {
			f = 1
		}
		switch op.Kind {
		case collector.DeltaDel:
			st.applyRoute(next, f, op.PrefixBytes,
				op.Old.Communities, op.Old.ExtCommunities, op.Old.LargeCommunities, op.Old.Path, -1)
		case collector.DeltaAdd:
			st.applyRoute(next, f, op.PrefixBytes,
				op.New.Communities, op.New.ExtCommunities, op.New.LargeCommunities, op.New.Path, 1)
		case collector.DeltaChange:
			// A change keeps the route's merge key (prefix + peer), so
			// the route-level aggregates are untouched; and when the
			// community sets are also unchanged (MED flap, next-hop
			// move) the whole op is index-invisible. The peer check is
			// defensive: a path swap across peers falls back to the
			// full del+add pair.
			if op.Old.Communities == op.New.Communities &&
				op.Old.ExtCommunities == op.New.ExtCommunities &&
				op.Old.LargeCommunities == op.New.LargeCommunities {
				break
			}
			if st.pathPeer[op.Old.Path] != st.pathPeer[op.New.Path] {
				st.applyRoute(next, f, op.PrefixBytes,
					op.Old.Communities, op.Old.ExtCommunities, op.Old.LargeCommunities, op.Old.Path, -1)
				st.applyRoute(next, f, op.PrefixBytes,
					op.New.Communities, op.New.ExtCommunities, op.New.LargeCommunities, op.New.Path, 1)
				break
			}
			st.applyAttrs(next, f,
				op.Old.Communities, op.Old.ExtCommunities, op.Old.LargeCommunities, op.Old.Path, -1)
			st.applyAttrs(next, f,
				op.New.Communities, op.New.ExtCommunities, op.New.LargeCommunities, op.New.Path, 1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	st.digest = d.SelfDigest()
	st.finalize(next)
	next.classes = st.classes.clone()
	st.owner = next
	return next, nil
}

// AdvanceSnapshot advances a loaded chain snapshot (header-only, with
// its series index attached — the LoadSnapshotDir incremental path)
// by one delta, returning day N as another header-only snapshot with
// the advanced index attached.
func AdvanceSnapshot(base *collector.Snapshot, scheme *dictionary.Scheme, d *collector.DeltaReader) (*collector.Snapshot, error) {
	ix := pinnedFor(base, scheme)
	if ix == nil {
		return nil, errors.New("analysis: snapshot has no attached series index to advance")
	}
	next, err := ix.Advance(d)
	if err != nil {
		return nil, err
	}
	s := next.Snapshot()
	AttachIndex(s, next)
	return s, nil
}
