package analysis

import (
	"ixplight/internal/bgp"
	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
)

// FlavourActions extends the paper's §5 analyses to the community
// flavours it leaves for future work: per-flavour counts of action and
// informational instances, including the large-community actions that
// can name 32-bit targets and AMS-IX's extended-community prepending.
type FlavourActions struct {
	StandardAction int
	StandardInfo   int
	ExtendedAction int
	ExtendedInfo   int
	LargeAction    int
	LargeInfo      int
	// LargeWideTargets counts large-community actions whose target ASN
	// does not fit in 16 bits — actions that standard communities could
	// not express at all.
	LargeWideTargets int
}

// TotalAction sums the action instances across flavours.
func (f FlavourActions) TotalAction() int {
	return f.StandardAction + f.ExtendedAction + f.LargeAction
}

// ComputeFlavourActions tallies the extension analysis for one family.
func ComputeFlavourActions(s *collector.Snapshot, scheme *dictionary.Scheme, v6 bool) FlavourActions {
	if ix := indexFor(s, scheme); ix != nil {
		return ix.FlavourActions(v6)
	}
	return ComputeFlavourActionsDirect(s, scheme, v6)
}

// ComputeFlavourActionsDirect is the direct-classify twin of
// ComputeFlavourActions.
func ComputeFlavourActionsDirect(s *collector.Snapshot, scheme *dictionary.Scheme, v6 bool) FlavourActions {
	var f FlavourActions
	for _, r := range s.Routes {
		if r.IsIPv6() != v6 {
			continue
		}
		for _, c := range r.Communities {
			cl := scheme.Classify(c)
			if !cl.Known {
				continue
			}
			if cl.Action.IsAction() {
				f.StandardAction++
			} else {
				f.StandardInfo++
			}
		}
		for _, e := range r.ExtCommunities {
			cl := scheme.ClassifyExtended(e)
			if !cl.Known {
				continue
			}
			if cl.Action.IsAction() {
				f.ExtendedAction++
			} else {
				f.ExtendedInfo++
			}
		}
		for _, l := range r.LargeCommunities {
			cl := scheme.ClassifyLarge(l)
			if !cl.Known {
				continue
			}
			if cl.Action.IsAction() {
				f.LargeAction++
				if cl.Target == dictionary.TargetPeer && cl.TargetASN > 0xFFFF {
					f.LargeWideTargets++
				}
			} else {
				f.LargeInfo++
			}
		}
	}
	return f
}

// VisibilityReport quantifies the paper's core methodological claim
// (§1, footnote 1): action communities are visible at the route
// server's ingress (the looking-glass vantage point) but are scrubbed
// before propagation, so a classic route collector peering like a
// member sees almost none of them.
type VisibilityReport struct {
	// LGActionInstances counts action communities over the ingress
	// (Adj-RIB-In) routes — what the paper's LG crawl sees.
	LGActionInstances int
	// CollectorActionInstances counts action communities over the
	// routes exported towards a collector peer — what RouteViews/RIPE
	// RIS-style collectors see.
	CollectorActionInstances int
	// CollectorRoutes is how many routes the collector receives.
	CollectorRoutes int
}

// VisibilityGap is the fraction of action instances invisible at the
// collector (1.0 = everything scrubbed).
func (v VisibilityReport) VisibilityGap() float64 {
	if v.LGActionInstances == 0 {
		return 0
	}
	return 1 - float64(v.CollectorActionInstances)/float64(v.LGActionInstances)
}

// countActions tallies known action instances across all flavours of a
// route list.
func countActions(routes []bgp.Route, scheme *dictionary.Scheme) int {
	n := 0
	for _, r := range routes {
		for _, c := range r.Communities {
			if scheme.Classify(c).IsAction() {
				n++
			}
		}
		for _, e := range r.ExtCommunities {
			if scheme.ClassifyExtended(e).IsAction() {
				n++
			}
		}
		for _, l := range r.LargeCommunities {
			if scheme.ClassifyLarge(l).IsAction() {
				n++
			}
		}
	}
	return n
}

// CompareVisibility builds the report from the LG view (ingress
// routes) and a collector view (the post-action export towards one
// peer).
func CompareVisibility(ingress, exported []bgp.Route, scheme *dictionary.Scheme) VisibilityReport {
	return VisibilityReport{
		LGActionInstances:        countActions(ingress, scheme),
		CollectorActionInstances: countActions(exported, scheme),
		CollectorRoutes:          len(exported),
	}
}
