package analysis

import (
	"sort"

	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
)

// Usage aggregates Fig. 4a: how many ASes use action communities, how
// many routes carry at least one, and the total instance count.
type Usage struct {
	// ASesUsing is the number of member ASes with ≥1 action community
	// on ≥1 route; MembersAtRS is the family's member denominator.
	ASesUsing   int
	MembersAtRS int
	// RoutesTagged is the number of routes with ≥1 action community;
	// RoutesTotal the family's route count.
	RoutesTagged int
	RoutesTotal  int
	// ActionInstances is the total action community count (the number
	// atop Fig. 4a's bars).
	ActionInstances int
}

// ASShare and RouteShare are the fractions the paper reports.
func (u Usage) ASShare() float64 { return ratio(u.ASesUsing, u.MembersAtRS) }

// RouteShare is the fraction of routes carrying ≥1 action community.
func (u Usage) RouteShare() float64 { return ratio(u.RoutesTagged, u.RoutesTotal) }

// ComputeUsage tallies Fig. 4a for one snapshot family. With
// Parallelism() > 1 the result is served from the classified snapshot
// index; ComputeUsageDirect is the reference single-pass walk.
func ComputeUsage(s *collector.Snapshot, scheme *dictionary.Scheme, v6 bool) Usage {
	if ix := indexFor(s, scheme); ix != nil {
		return ix.Usage(v6)
	}
	return ComputeUsageDirect(s, scheme, v6)
}

// ComputeUsageDirect is the direct-classify twin of ComputeUsage.
func ComputeUsageDirect(s *collector.Snapshot, scheme *dictionary.Scheme, v6 bool) Usage {
	u := Usage{}
	users := make(map[uint32]bool, len(s.Members))
	for _, m := range s.Members {
		if (v6 && m.IPv6) || (!v6 && m.IPv4) {
			u.MembersAtRS++
		}
	}
	for _, r := range s.Routes {
		if r.IsIPv6() != v6 {
			continue
		}
		u.RoutesTotal++
		n := 0
		for _, c := range r.Communities {
			if scheme.Classify(c).IsAction() {
				n++
			}
		}
		if n > 0 {
			u.RoutesTagged++
			u.ActionInstances += n
			users[r.PeerAS()] = true
		}
	}
	u.ASesUsing = len(users)
	return u
}

// PerASActionCounts returns each announcing AS's action-instance count
// — the raw series behind Fig. 4b and Fig. 7.
func PerASActionCounts(s *collector.Snapshot, scheme *dictionary.Scheme, v6 bool) map[uint32]int {
	if ix := indexFor(s, scheme); ix != nil {
		return ix.PerASActionCounts(v6)
	}
	return PerASActionCountsDirect(s, scheme, v6)
}

// PerASActionCountsDirect is the direct-classify twin of
// PerASActionCounts.
func PerASActionCountsDirect(s *collector.Snapshot, scheme *dictionary.Scheme, v6 bool) map[uint32]int {
	counts := make(map[uint32]int, len(s.Members))
	for _, r := range s.Routes {
		if r.IsIPv6() != v6 {
			continue
		}
		n := 0
		for _, c := range r.Communities {
			if scheme.Classify(c).IsAction() {
				n++
			}
		}
		if n > 0 {
			counts[r.PeerAS()] += n
		}
	}
	return counts
}

// CDFPoint is one point of Fig. 4b: after including the top
// ASFraction of RS members (by usage), CommFraction of all action
// instances are covered.
type CDFPoint struct {
	ASFraction   float64
	CommFraction float64
}

// ConcentrationCDF computes Fig. 4b: ASes sorted by descending usage,
// cumulative instance share against the fraction of RS members.
func ConcentrationCDF(counts map[uint32]int, membersAtRS int) []CDFPoint {
	if membersAtRS <= 0 {
		return nil
	}
	vals := make([]int, 0, len(counts))
	total := 0
	for _, v := range counts {
		vals = append(vals, v)
		total += v
	}
	sort.Sort(sort.Reverse(sort.IntSlice(vals)))
	points := make([]CDFPoint, 0, len(vals))
	cum := 0
	for i, v := range vals {
		cum += v
		points = append(points, CDFPoint{
			ASFraction:   float64(i+1) / float64(membersAtRS),
			CommFraction: ratio(cum, total),
		})
	}
	return points
}

// TopShare interpolates a concentration CDF: the fraction of action
// instances covered by the top asFraction of RS members ("1% of the
// ASes account for 50–86%", §5.2).
func TopShare(points []CDFPoint, asFraction float64) float64 {
	best := 0.0
	for _, p := range points {
		if p.ASFraction <= asFraction && p.CommFraction > best {
			best = p.CommFraction
		}
	}
	return best
}

// CorrelationPoint is one AS in Fig. 4c: its share of the IXP's routes
// against its share of the IXP's action communities.
type CorrelationPoint struct {
	ASN       uint32
	RouteFrac float64
	CommFrac  float64
}

// RouteCommCorrelation computes Fig. 4c's scatter for one family.
// Only ASes announcing at least one route appear.
func RouteCommCorrelation(s *collector.Snapshot, scheme *dictionary.Scheme, v6 bool) []CorrelationPoint {
	if ix := indexFor(s, scheme); ix != nil {
		return ix.RouteCommCorrelation(v6)
	}
	return RouteCommCorrelationDirect(s, scheme, v6)
}

// RouteCommCorrelationDirect is the direct-classify twin of
// RouteCommCorrelation.
func RouteCommCorrelationDirect(s *collector.Snapshot, scheme *dictionary.Scheme, v6 bool) []CorrelationPoint {
	routeCounts := make(map[uint32]int, len(s.Members))
	totalRoutes := 0
	for _, r := range s.Routes {
		if r.IsIPv6() != v6 {
			continue
		}
		routeCounts[r.PeerAS()]++
		totalRoutes++
	}
	commCounts := PerASActionCountsDirect(s, scheme, v6)
	totalComms := 0
	for _, v := range commCounts {
		totalComms += v
	}
	out := make([]CorrelationPoint, 0, len(routeCounts))
	for asn, rc := range routeCounts {
		out = append(out, CorrelationPoint{
			ASN:       asn,
			RouteFrac: ratio(rc, totalRoutes),
			CommFrac:  ratio(commCounts[asn], totalComms),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}
