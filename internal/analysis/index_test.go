package analysis

import (
	"reflect"
	"sync"
	"testing"

	"ixplight/internal/asdb"
	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
	"ixplight/internal/ixpgen"
)

// setParallelismForTest overrides the package parallelism and restores
// it when the test ends.
func setParallelismForTest(t *testing.T, n int) {
	t.Helper()
	old := Parallelism()
	SetParallelism(n)
	t.Cleanup(func() { SetParallelism(old) })
}

// genSnapshot builds a mid-size generated workload so the equivalence
// check also covers ext/large communities, prepends and both families
// at realistic diversity.
func genSnapshot(t *testing.T, ixp string) (*collector.Snapshot, *dictionary.Scheme) {
	t.Helper()
	p := ixpgen.ProfileByName(ixp)
	if p == nil {
		t.Fatalf("unknown profile %q", ixp)
	}
	w, err := ixpgen.Generate(*p, ixpgen.Options{Seed: 42, Scale: 0.01})
	if err != nil {
		t.Fatalf("generate %s: %v", ixp, err)
	}
	return w.Snapshot("2021-10-04"), p.Scheme
}

// checkIndexMatchesDirect asserts every indexed accessor reproduces
// its direct-classify twin exactly, for both families.
func checkIndexMatchesDirect(t *testing.T, s *collector.Snapshot, scheme *dictionary.Scheme, workers int) {
	t.Helper()
	ix := NewIndexWorkers(s, scheme, workers)
	reg := asdb.Default()
	for _, v6 := range []bool{false, true} {
		eq := func(name string, got, want any) {
			t.Helper()
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s (v6=%v, workers=%d): indexed %+v != direct %+v", name, v6, workers, got, want)
			}
		}
		eq("Usage", ix.Usage(v6), ComputeUsageDirect(s, scheme, v6))
		eq("Mix", ix.Mix(v6), ComputeMixDirect(s, scheme, v6))
		a, i := ix.ActionInfoSplit(v6)
		da, di := ActionInfoSplitDirect(s, scheme, v6)
		eq("ActionInfoSplit", [2]int{a, i}, [2]int{da, di})
		eq("FlavourActions", ix.FlavourActions(v6), ComputeFlavourActionsDirect(s, scheme, v6))
		eq("PerASActionCounts", ix.PerASActionCounts(v6), PerASActionCountsDirect(s, scheme, v6))
		eq("RouteCommCorrelation", ix.RouteCommCorrelation(v6), RouteCommCorrelationDirect(s, scheme, v6))
		eq("ASesPerActionType", ix.ASesPerActionType(v6), ASesPerActionTypeDirect(s, scheme, v6))
		eq("OccurrencesPerType", ix.OccurrencesPerType(v6), OccurrencesPerTypeDirect(s, scheme, v6))
		for _, k := range []int{0, 3, 20} {
			eq("TopActionCommunities", ix.TopActionCommunities(v6, k), TopActionCommunitiesDirect(s, scheme, v6, k))
			eq("NonMemberTargeting", ix.NonMemberTargeting(v6, k), ComputeNonMemberTargetingDirect(s, scheme, v6, k))
			eq("CulpritRanking", ix.CulpritRanking(v6, k), CulpritRankingDirect(s, scheme, v6, k))
			eq("TopTargets", ix.TopTargets(v6, k), TopTargetsDirect(s, scheme, v6, k))
		}
		eq("CategoryBreakdown", ix.CategoryBreakdown(reg, v6), ComputeCategoryBreakdownDirect(s, scheme, reg, v6))
		eq("HygieneFilterImpact", ix.HygieneFilterImpact(v6, []int{0, 2, 10}), HygieneFilterImpactDirect(s, v6, []int{0, 2, 10}))
		eq("CommunityCountPercentiles",
			ix.CommunityCountPercentiles(v6, []float64{0, 50, 90, 100}),
			CommunityCountPercentilesDirect(s, v6, []float64{0, 50, 90, 100}))
		eq("Counts", ix.Counts(v6), CountSnapshotDirect(s, v6))
	}
}

func TestIndexMatchesDirect(t *testing.T) {
	s, scheme := testSnapshot(t)
	for _, workers := range []int{1, 4} {
		checkIndexMatchesDirect(t, s, scheme, workers)
	}

	for _, ixp := range []string{"DE-CIX", "AMS-IX"} {
		gs, gscheme := genSnapshot(t, ixp)
		for _, workers := range []int{1, 3, 8} {
			checkIndexMatchesDirect(t, gs, gscheme, workers)
		}
	}

	// Empty snapshot: accessors must keep the direct twins' nil/empty
	// semantics exactly.
	empty := &collector.Snapshot{IXP: "DE-CIX", Date: "2021-10-04"}
	checkIndexMatchesDirect(t, empty, dictionary.ProfileByName("DE-CIX"), 4)
}

// TestWrapperDispatch pins the -parallel 1 contract: with parallelism
// 1 the wrappers run the direct path; with > 1 they consult the shared
// index and still return identical results.
func TestWrapperDispatch(t *testing.T) {
	s, scheme := testSnapshot(t)

	setParallelismForTest(t, 1)
	if indexFor(s, scheme) != nil {
		t.Fatal("indexFor must be nil at parallelism 1")
	}
	direct := ComputeUsage(s, scheme, false)

	SetParallelism(4)
	ix := indexFor(s, scheme)
	if ix == nil {
		t.Fatal("indexFor must build at parallelism 4")
	}
	if got := ComputeUsage(s, scheme, false); !reflect.DeepEqual(got, direct) {
		t.Errorf("indexed ComputeUsage %+v != direct %+v", got, direct)
	}
	if again := IndexFor(s, scheme); again != ix {
		t.Error("IndexFor must return the cached index")
	}
	// Scheme-independent analyses piggyback on the cached index.
	if indexForSnapshot(s) != ix {
		t.Error("indexForSnapshot must find the cached index")
	}
	if got, want := CountSnapshot(s, false), CountSnapshotDirect(s, false); !reflect.DeepEqual(got, want) {
		t.Errorf("CountSnapshot via index %+v != direct %+v", got, want)
	}

	InvalidateIndex(s)
	if indexForSnapshot(s) != nil {
		t.Error("indexForSnapshot must miss after InvalidateIndex")
	}

	// SetParallelism(0) resets to GOMAXPROCS.
	SetParallelism(0)
	if Parallelism() < 1 {
		t.Errorf("Parallelism() = %d after reset", Parallelism())
	}
}

// TestIndexConcurrentUse pins the concurrency contract: one Index
// shared by many goroutines, every accessor exercised, plus concurrent
// cache hits through IndexFor — run under -race by `make check`.
func TestIndexConcurrentUse(t *testing.T) {
	setParallelismForTest(t, 4)
	s, scheme := genSnapshot(t, "LINX")
	ix := NewIndexWorkers(s, scheme, 4)
	reg := asdb.Default()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v6 := g%2 == 1
			for iter := 0; iter < 4; iter++ {
				_ = ix.Usage(v6)
				_ = ix.Mix(v6)
				_, _ = ix.ActionInfoSplit(v6)
				_ = ix.FlavourActions(v6)
				_ = ix.PerASActionCounts(v6)
				_ = ix.RouteCommCorrelation(v6)
				_ = ix.ASesPerActionType(v6)
				_ = ix.OccurrencesPerType(v6)
				_ = ix.TopActionCommunities(v6, 10)
				_ = ix.NonMemberTargeting(v6, 10)
				_ = ix.CulpritRanking(v6, 10)
				_ = ix.TopTargets(v6, 10)
				_ = ix.CategoryBreakdown(reg, v6)
				_ = ix.HygieneFilterImpact(v6, []int{1, 5, 15})
				_ = ix.CommunityCountPercentiles(v6, []float64{50, 99})
				_ = ix.Counts(v6)
				_ = ix.Class(0)
			}
			// Concurrent cache traffic: hits, singleflight builds and
			// scheme-independent lookups must all be race-clean.
			_ = IndexFor(s, scheme)
			_ = indexForSnapshot(s)
		}(g)
	}
	wg.Wait()
	t.Cleanup(func() { InvalidateIndex(s) })
}

// TestIndexCacheEviction keeps the cache bounded: filling it past
// indexCacheCap evicts the oldest entry.
func TestIndexCacheEviction(t *testing.T) {
	setParallelismForTest(t, 2)
	scheme := dictionary.ProfileByName("DE-CIX")
	first := &collector.Snapshot{IXP: "DE-CIX", Date: "d0"}
	_ = IndexFor(first, scheme)
	snaps := make([]*collector.Snapshot, indexCacheCap)
	for i := range snaps {
		snaps[i] = &collector.Snapshot{IXP: "DE-CIX", Date: "later"}
		_ = IndexFor(snaps[i], scheme)
	}
	if indexForSnapshot(first) != nil {
		t.Error("oldest entry must be evicted once the cache is full")
	}
	for _, s := range snaps {
		InvalidateIndex(s)
	}
}
