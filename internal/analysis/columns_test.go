package analysis

import (
	"bytes"
	"reflect"
	"testing"

	"ixplight/internal/asdb"
	"ixplight/internal/bgp"
	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
	"ixplight/internal/ixpgen"
)

// binBytes encodes s with the columnar binary codec.
func binBytes(tb testing.TB, s *collector.Snapshot) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := collector.WriteSnapshot(&buf, s, collector.CodecBinary); err != nil {
		tb.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// columnIndex round-trips s through the binary codec and builds the
// index column-direct.
func columnIndex(tb testing.TB, s *collector.Snapshot, scheme *dictionary.Scheme) *Index {
	tb.Helper()
	sr, err := collector.NewSnapshotReaderBytes(binBytes(tb, s), "x.bin")
	if err != nil {
		tb.Fatalf("open: %v", err)
	}
	ix, err := IndexFromReader(sr, scheme)
	if err != nil {
		tb.Fatalf("IndexFromReader: %v", err)
	}
	return ix
}

// checkIndexesAgree asserts every accessor of got answers identically
// to want — the column-direct build's equivalence contract against
// the route-walking NewIndex.
func checkIndexesAgree(t *testing.T, tag string, got, want *Index) {
	t.Helper()
	reg := asdb.Default()
	for _, v6 := range []bool{false, true} {
		eq := func(name string, g, w any) {
			t.Helper()
			if !reflect.DeepEqual(g, w) {
				t.Errorf("%s: %s (v6=%v): columns %+v != routes %+v", tag, name, v6, g, w)
			}
		}
		eq("Usage", got.Usage(v6), want.Usage(v6))
		eq("Mix", got.Mix(v6), want.Mix(v6))
		ga, gi := got.ActionInfoSplit(v6)
		wa, wi := want.ActionInfoSplit(v6)
		eq("ActionInfoSplit", [2]int{ga, gi}, [2]int{wa, wi})
		eq("FlavourActions", got.FlavourActions(v6), want.FlavourActions(v6))
		eq("PerASActionCounts", got.PerASActionCounts(v6), want.PerASActionCounts(v6))
		eq("RouteCommCorrelation", got.RouteCommCorrelation(v6), want.RouteCommCorrelation(v6))
		eq("ASesPerActionType", got.ASesPerActionType(v6), want.ASesPerActionType(v6))
		eq("OccurrencesPerType", got.OccurrencesPerType(v6), want.OccurrencesPerType(v6))
		for _, k := range []int{0, 3, 20} {
			eq("TopActionCommunities", got.TopActionCommunities(v6, k), want.TopActionCommunities(v6, k))
			eq("NonMemberTargeting", got.NonMemberTargeting(v6, k), want.NonMemberTargeting(v6, k))
			eq("CulpritRanking", got.CulpritRanking(v6, k), want.CulpritRanking(v6, k))
			eq("TopTargets", got.TopTargets(v6, k), want.TopTargets(v6, k))
		}
		eq("CategoryBreakdown", got.CategoryBreakdown(reg, v6), want.CategoryBreakdown(reg, v6))
		eq("HygieneFilterImpact", got.HygieneFilterImpact(v6, []int{0, 2, 10}), want.HygieneFilterImpact(v6, []int{0, 2, 10}))
		eq("CommunityCountPercentiles",
			got.CommunityCountPercentiles(v6, []float64{0, 50, 90, 100}),
			want.CommunityCountPercentiles(v6, []float64{0, 50, 90, 100}))
		eq("Counts", got.Counts(v6), want.Counts(v6))
		// Counts a second time: the column path releases its prefix
		// slabs after the lazy count, which must be memoized.
		eq("Counts(again)", got.Counts(v6), want.Counts(v6))
	}
}

// edgeSnapshot builds a partial snapshot covering the codec's
// nil-vs-empty distinction on every community flavour, plus
// MemberErrors and a degraded member list.
func edgeSnapshot(t *testing.T) (*collector.Snapshot, *dictionary.Scheme) {
	t.Helper()
	gs, scheme := genSnapshot(t, "DE-CIX")
	n := 12
	if len(gs.Routes) < n {
		t.Fatalf("generated snapshot too small: %d routes", len(gs.Routes))
	}
	routes := make([]bgp.Route, n)
	copy(routes, gs.Routes[:n])
	routes[0].Communities = nil
	routes[1].Communities = []bgp.Community{}
	routes[2].ExtCommunities = nil
	routes[2].LargeCommunities = nil
	routes[3].ExtCommunities = []bgp.ExtendedCommunity{}
	routes[3].LargeCommunities = []bgp.LargeCommunity{}
	routes[4].Communities = nil
	routes[4].ExtCommunities = nil
	routes[4].LargeCommunities = nil
	s := &collector.Snapshot{
		IXP:     gs.IXP,
		Date:    gs.Date,
		Members: gs.Members,
		Routes:  routes,
		Partial: true,
		MemberErrors: []collector.MemberError{
			{ASN: 64999, Stage: collector.StageRoutes, Err: "timeout", Attempts: 3},
		},
	}
	s.Normalize()
	return s, scheme
}

func TestIndexFromReaderMatchesNewIndex(t *testing.T) {
	s, scheme := testSnapshot(t)
	checkIndexesAgree(t, "testSnapshot", columnIndex(t, s, scheme), NewIndex(s, scheme))

	for _, ixp := range []string{"DE-CIX", "AMS-IX"} {
		gs, gscheme := genSnapshot(t, ixp)
		checkIndexesAgree(t, ixp, columnIndex(t, gs, gscheme), NewIndex(gs, gscheme))
	}

	es, escheme := edgeSnapshot(t)
	checkIndexesAgree(t, "edge", columnIndex(t, es, escheme), NewIndex(es, escheme))

	empty := &collector.Snapshot{IXP: "DE-CIX", Date: "2021-10-04"}
	empty.Normalize()
	checkIndexesAgree(t, "empty",
		columnIndex(t, empty, dictionary.ProfileByName("DE-CIX")),
		NewIndex(empty, dictionary.ProfileByName("DE-CIX")))
}

// TestIndexFromReaderNonBinary pins the transparent fallback: a
// non-columnar codec materializes and classifies the routes.
func TestIndexFromReaderNonBinary(t *testing.T) {
	s, scheme := testSnapshot(t)
	var buf bytes.Buffer
	if err := collector.WriteSnapshot(&buf, s, collector.CodecJSON); err != nil {
		t.Fatal(err)
	}
	sr, err := collector.NewSnapshotReaderBytes(buf.Bytes(), "x.json")
	if err != nil {
		t.Fatal(err)
	}
	ix, err := IndexFromReader(sr, scheme)
	if err != nil {
		t.Fatal(err)
	}
	checkIndexesAgree(t, "json-fallback", ix, NewIndex(s, scheme))
	if ix.Snapshot().Routes == nil {
		t.Error("fallback index must carry the materialized snapshot")
	}
}

// TestAttachIndexDispatch pins that a pinned index answers the
// analysis wrappers on its header-only snapshot — at any parallelism,
// including 1, where the direct twins would otherwise walk the absent
// routes.
func TestAttachIndexDispatch(t *testing.T) {
	s, scheme := testSnapshot(t)
	ix := columnIndex(t, s, scheme)
	head := ix.Snapshot()
	if head.Routes != nil {
		t.Fatal("column index snapshot must be header-only")
	}
	AttachIndex(head, ix)

	for _, par := range []int{1, 4} {
		setParallelismForTest(t, par)
		if got := indexFor(head, scheme); got != ix {
			t.Fatalf("parallelism %d: indexFor must return the pinned index", par)
		}
		if got := indexForSnapshot(head); got != ix {
			t.Fatalf("parallelism %d: indexForSnapshot must return the pinned index", par)
		}
		for _, v6 := range []bool{false, true} {
			if got, want := ComputeUsage(head, scheme, v6), ComputeUsageDirect(s, scheme, v6); !reflect.DeepEqual(got, want) {
				t.Errorf("parallelism %d: pinned ComputeUsage(v6=%v) %+v != direct %+v", par, v6, got, want)
			}
			if got, want := CountSnapshot(head, v6), CountSnapshotDirect(s, v6); !reflect.DeepEqual(got, want) {
				t.Errorf("parallelism %d: pinned CountSnapshot(v6=%v) %+v != direct %+v", par, v6, got, want)
			}
		}
	}
}

// TestIndexFromColumnsAllocs pins the arena contract: the
// column-direct build's steady-state allocations are the Index's own
// storage — O(intern tables), not O(routes). (The decode path's
// alloc *count* is also slab-bounded; what it pays per route is
// bytes and time, which the benchmarks cover — so the pin here is
// route-independence plus an absolute ceiling, not a ratio.)
func TestIndexFromColumnsAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting under -short")
	}
	s, scheme := genSnapshot(t, "DE-CIX")
	data := binBytes(t, s)
	routes := len(s.Routes)

	colRun := func() {
		sr, err := collector.NewSnapshotReaderBytes(data, "x.bin")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := IndexFromReader(sr, scheme); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the scratch pool so the measurement sees steady state.
	for i := 0; i < 3; i++ {
		colRun()
	}
	colAllocs := testing.AllocsPerRun(10, colRun)

	decAllocs := testing.AllocsPerRun(10, func() {
		sr, err := collector.NewSnapshotReaderBytes(data, "x.bin")
		if err != nil {
			t.Fatal(err)
		}
		full, err := sr.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		NewIndex(full, scheme)
	})

	t.Logf("routes=%d columns=%.0f allocs/op decode+index=%.0f allocs/op", routes, colAllocs, decAllocs)
	if colAllocs > float64(routes)/10 {
		t.Errorf("column build allocates per route: %.0f allocs for %d routes", colAllocs, routes)
	}
	if colAllocs > 512 {
		t.Errorf("column build steady state: %.0f allocs/op, ceiling 512", colAllocs)
	}
}

// FuzzIndexFromColumns feeds arbitrary bytes through the open →
// column-build path: whatever decodes must index identically to the
// materialized NewIndex, and whatever doesn't must fail cleanly.
func FuzzIndexFromColumns(f *testing.F) {
	seed, scheme := func() (*collector.Snapshot, *dictionary.Scheme) {
		s := &collector.Snapshot{
			IXP:  "DE-CIX",
			Date: "2021-10-04",
			Members: []collector.Member{
				{ASN: 100, IPv4: true, IPv6: true},
				{ASN: 6939, IPv4: true},
			},
			Routes: []bgp.Route{
				{ASPath: bgp.ASPath{100}, Communities: []bgp.Community{bgp.MustParseCommunity("0:15169")}},
			},
		}
		s.Normalize()
		return s, dictionary.ProfileByName("DE-CIX")
	}()
	var buf bytes.Buffer
	if err := collector.WriteSnapshot(&buf, seed, collector.CodecBinary); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("IXPB"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		sr, err := collector.NewSnapshotReaderBytes(data, "f.bin")
		if err != nil {
			return
		}
		ix, err := IndexFromReader(sr, scheme)
		if err != nil {
			return
		}
		// The column build does not consume the reader (and the
		// non-binary fallback caches its materialization), so the same
		// bytes must also materialize — and classify identically.
		full, err := sr.Snapshot()
		if err != nil {
			t.Fatalf("columns decoded but Snapshot failed: %v", err)
		}
		want := NewIndex(full, scheme)
		for _, v6 := range []bool{false, true} {
			if got, w := ix.Usage(v6), want.Usage(v6); !reflect.DeepEqual(got, w) {
				t.Errorf("Usage(v6=%v): %+v != %+v", v6, got, w)
			}
			if got, w := ix.Mix(v6), want.Mix(v6); !reflect.DeepEqual(got, w) {
				t.Errorf("Mix(v6=%v): %+v != %+v", v6, got, w)
			}
			if got, w := ix.FlavourActions(v6), want.FlavourActions(v6); !reflect.DeepEqual(got, w) {
				t.Errorf("FlavourActions(v6=%v): %+v != %+v", v6, got, w)
			}
			if got, w := ix.PerASActionCounts(v6), want.PerASActionCounts(v6); !reflect.DeepEqual(got, w) {
				t.Errorf("PerASActionCounts(v6=%v): %+v != %+v", v6, got, w)
			}
			if got, w := ix.Counts(v6), want.Counts(v6); !reflect.DeepEqual(got, w) {
				t.Errorf("Counts(v6=%v): %+v != %+v", v6, got, w)
			}
		}
	})
}

// benchWorkload is the AMS-IX benchmark snapshot in binary form.
func benchWorkload(b *testing.B) ([]byte, *dictionary.Scheme, int) {
	b.Helper()
	p := ixpgen.ProfileByName("AMS-IX")
	if p == nil {
		b.Fatal("unknown profile AMS-IX")
	}
	w, err := ixpgen.Generate(*p, ixpgen.Options{Seed: 42, Scale: 0.02})
	if err != nil {
		b.Fatal(err)
	}
	s := w.Snapshot("2021-10-04")
	return binBytes(b, s), p.Scheme, len(s.Routes)
}

// BenchmarkIndexFromColumns measures the column-direct build: open
// the encoded snapshot, classify the intern tables, aggregate off the
// columns. Compare against BenchmarkIndexDecodeThenNew.
func BenchmarkIndexFromColumns(b *testing.B) {
	data, scheme, routes := benchWorkload(b)
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr, err := collector.NewSnapshotReaderBytes(data, "x.bin")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := IndexFromReader(sr, scheme); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(routes), "routes")
}

// BenchmarkIndexDecodeThenNew is the baseline the tentpole displaces:
// materialize []bgp.Route, then classify route by route.
func BenchmarkIndexDecodeThenNew(b *testing.B) {
	data, scheme, routes := benchWorkload(b)
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr, err := collector.NewSnapshotReaderBytes(data, "x.bin")
		if err != nil {
			b.Fatal(err)
		}
		s, err := sr.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		NewIndex(s, scheme)
	}
	b.ReportMetric(float64(routes), "routes")
}
