// Package analysis implements the paper's measurements over collected
// snapshots: the community type mix (Fig. 1–2), the action vs
// informational split (Fig. 3), action-community usage by ASes and
// routes (Fig. 4a), usage concentration (Fig. 4b), the route-share
// correlation (Fig. 4c), per-action-type AS counts (Table 2) and
// occurrence counts (§5.3), top-k communities and targets (Fig. 5),
// targeting of non-RS members (§5.5, Fig. 6) and the responsible
// "culprit" ASes (Fig. 7), plus the snapshot-stability tables of
// Appendix A (Tables 3–4).
//
// Every function takes a *collector.Snapshot plus the hosting IXP's
// *dictionary.Scheme and an address-family selector, mirroring how the
// paper slices each analysis per IXP and per family.
package analysis
