// Package analysis implements the paper's measurements over collected
// snapshots: the community type mix (Fig. 1–2), the action vs
// informational split (Fig. 3), action-community usage by ASes and
// routes (Fig. 4a), usage concentration (Fig. 4b), the route-share
// correlation (Fig. 4c), per-action-type AS counts (Table 2) and
// occurrence counts (§5.3), top-k communities and targets (Fig. 5),
// targeting of non-RS members (§5.5, Fig. 6) and the responsible
// "culprit" ASes (Fig. 7), plus the snapshot-stability tables of
// Appendix A (Tables 3–4).
//
// Every function takes a *collector.Snapshot plus the hosting IXP's
// *dictionary.Scheme and an address-family selector, mirroring how the
// paper slices each analysis per IXP and per family.
//
// Two execution paths back each entry point. The direct-classify
// twins (ComputeUsageDirect, ComputeMixDirect, ...) re-walk the
// snapshot and re-classify every community instance — the reference
// implementation and the ablation baseline. When Parallelism() > 1
// (the default on multi-core hosts), the public wrappers instead
// consult a shared classified snapshot Index: one sharded pass per
// (snapshot, scheme) pair that memoizes the Class of every distinct
// community value and precomputes the aggregates all ~20 analyses
// slice, so the full experiment battery classifies each distinct
// value exactly once. SetParallelism(1) disables the index and
// restores the direct path everywhere. Both paths produce identical
// results; TestIndexMatchesDirect pins the equivalence.
package analysis
