package analysis

import (
	"errors"
	"fmt"
	"testing"

	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
	"ixplight/internal/ixpgen"
)

// evolvedChain materializes an evolved daily series plus its delta
// chain: the full snapshots (the ground truth each day), day 0 in
// binary form, and one encoded delta per later day.
func evolvedChain(tb testing.TB, ixp string, o ixpgen.TemporalOptions, churn float64) (days []*collector.Snapshot, day0 []byte, deltas [][]byte, scheme *dictionary.Scheme) {
	tb.Helper()
	p := ixpgen.ProfileByName(ixp)
	if p == nil {
		tb.Fatalf("no profile %q", ixp)
	}
	var enc *collector.DeltaEncoder
	err := ixpgen.EvolveSeries(*p, o, churn, func(day int, s *collector.Snapshot) error {
		days = append(days, s)
		if day == 0 {
			day0 = binBytes(tb, s)
			var err error
			enc, err = collector.NewDeltaEncoder(s)
			return err
		}
		buf, err := enc.Encode(s)
		if err != nil {
			return err
		}
		deltas = append(deltas, buf)
		return nil
	})
	if err != nil {
		tb.Fatal(err)
	}
	return days, day0, deltas, p.Scheme
}

// TestAdvanceMatchesFullRebuild pins the tentpole equivalence: a
// series index advanced delta-by-delta answers every accessor exactly
// like a from-scratch NewIndex of the materialized day — across route
// churn, weekly member swaps (the non-member/culprit flips), and a
// collection valley with its next-day recovery.
func TestAdvanceMatchesFullRebuild(t *testing.T) {
	o := ixpgen.TemporalOptions{Days: 16, Seed: 42, Scale: 0.02, ValleyDays: []int{11}}
	days, day0, deltas, scheme := evolvedChain(t, "AMS-IX", o, 0.04)

	sr, err := collector.NewSnapshotReaderBytes(day0, "day0.bin")
	if err != nil {
		t.Fatal(err)
	}
	ix, err := IndexSeriesFromReader(sr, scheme)
	if err != nil {
		t.Fatal(err)
	}
	checkIndexesAgree(t, "day0", ix, NewIndex(days[0], scheme))

	for d := 1; d < len(days); d++ {
		dr, err := collector.NewDeltaReader(deltas[d-1])
		if err != nil {
			t.Fatalf("day %d: %v", d, err)
		}
		next, err := ix.Advance(dr)
		if err != nil {
			t.Fatalf("day %d advance: %v", d, err)
		}
		checkIndexesAgree(t, fmt.Sprintf("day%d", d), next, NewIndex(days[d], scheme))
		ix = next
	}
}

// TestAdvanceEdgeSnapshots drives the chain through degenerate days:
// routeless snapshots and routes with no community sets at all.
func TestAdvanceEdgeSnapshots(t *testing.T) {
	s0, scheme := testSnapshot(t)
	empty := &collector.Snapshot{
		IXP:     s0.IXP,
		Date:    "2021-10-05",
		Members: s0.Members,
	}
	empty.Normalize()
	back := *s0
	back.Date = "2021-10-06"
	back.Normalize()
	series := []*collector.Snapshot{s0, empty, &back}

	enc, err := collector.NewDeltaEncoder(s0)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := collector.NewSnapshotReaderBytes(binBytes(t, s0), "edge.bin")
	if err != nil {
		t.Fatal(err)
	}
	ix, err := IndexSeriesFromReader(sr, scheme)
	if err != nil {
		t.Fatal(err)
	}
	checkIndexesAgree(t, "edge-day0", ix, NewIndex(series[0], scheme))
	for d := 1; d < len(series); d++ {
		buf, err := enc.Encode(series[d])
		if err != nil {
			t.Fatalf("day %d encode: %v", d, err)
		}
		dr, err := collector.NewDeltaReader(buf)
		if err != nil {
			t.Fatal(err)
		}
		ix, err = ix.Advance(dr)
		if err != nil {
			t.Fatalf("day %d advance: %v", d, err)
		}
		checkIndexesAgree(t, fmt.Sprintf("edge-day%d", d), ix, NewIndex(series[d], scheme))
	}
}

func TestAdvanceErrors(t *testing.T) {
	o := ixpgen.TemporalOptions{Days: 3, Seed: 9, Scale: 0.01}
	days, day0, deltas, scheme := evolvedChain(t, "LINX", o, 0.05)

	// A plain materialized index has no series state to advance.
	dr0, err := collector.NewDeltaReader(deltas[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewIndex(days[0], scheme).Advance(dr0); err == nil {
		t.Error("Advance on a non-series index succeeded")
	}

	sr, err := collector.NewSnapshotReaderBytes(day0, "day0.bin")
	if err != nil {
		t.Fatal(err)
	}
	ix, err := IndexSeriesFromReader(sr, scheme)
	if err != nil {
		t.Fatal(err)
	}

	// Applying day 2's delta to day 0 is a base-digest mismatch.
	dr1, err := collector.NewDeltaReader(deltas[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Advance(dr1); !errors.Is(err, collector.ErrDeltaBaseMismatch) {
		t.Errorf("out-of-order delta: err = %v, want ErrDeltaBaseMismatch", err)
	}

	// After advancing, the superseded day refuses further advances —
	// the chain state has moved on.
	next, err := ix.Advance(dr0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Advance(dr0); err == nil {
		t.Error("Advance on a superseded day succeeded")
	}
	_ = next
}

// TestAdvanceSnapshotChain exercises the report-loader entry point:
// header-only snapshots advancing through attached series indexes.
func TestAdvanceSnapshotChain(t *testing.T) {
	o := ixpgen.TemporalOptions{Days: 4, Seed: 5, Scale: 0.01}
	days, day0, deltas, scheme := evolvedChain(t, "LINX", o, 0.05)

	sr, err := collector.NewSnapshotReaderBytes(day0, "day0.bin")
	if err != nil {
		t.Fatal(err)
	}
	ix, err := IndexSeriesFromReader(sr, scheme)
	if err != nil {
		t.Fatal(err)
	}
	cur := ix.Snapshot()
	AttachIndex(cur, ix)
	for d := 1; d < len(days); d++ {
		dr, err := collector.NewDeltaReader(deltas[d-1])
		if err != nil {
			t.Fatal(err)
		}
		cur, err = AdvanceSnapshot(cur, scheme, dr)
		if err != nil {
			t.Fatalf("day %d: %v", d, err)
		}
		if cur.Date != days[d].Date {
			t.Fatalf("day %d: date %q, want %q", d, cur.Date, days[d].Date)
		}
		for _, v6 := range []bool{false, true} {
			got := CountSnapshot(cur, v6)
			want := NewIndex(days[d], scheme).Counts(v6)
			if got != want {
				t.Fatalf("day %d v6=%v: counts %+v, want %+v", d, v6, got, want)
			}
		}
	}

	// A snapshot with no attached index cannot ride the chain.
	dr, err := collector.NewDeltaReader(deltas[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AdvanceSnapshot(days[0], scheme, dr); err == nil {
		t.Error("AdvanceSnapshot without an attached series index succeeded")
	}
}
