package analysis

import (
	"sort"
	"sync"

	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
)

// The §5.4 intersection analysis: the paper finds "a considerable
// intersection among the ASes targeted by action communities in the
// top 20 of all IXPs" — fourteen shared avoid-targets between LINX and
// IX.br, six ASes avoided at all four large IXPs. This module computes
// those overlaps for any snapshot set.

// IXPSnapshot pairs a snapshot with its scheme for multi-IXP analyses.
type IXPSnapshot struct {
	Snapshot *collector.Snapshot
	Scheme   *dictionary.Scheme
}

// topTargetSet extracts the ASNs targeted by the top-k action
// communities of one IXP family.
func topTargetSet(s IXPSnapshot, v6 bool, k int) map[uint32]bool {
	set := make(map[uint32]bool)
	for _, cc := range TopActionCommunities(s.Snapshot, s.Scheme, v6, k) {
		if cc.Class.Target == dictionary.TargetPeer {
			set[cc.Class.TargetASN] = true
		}
	}
	return set
}

// PairwiseIntersection is one cell of the §5.4 pairwise comparison.
type PairwiseIntersection struct {
	IXPA, IXPB string
	Shared     []uint32
}

// TargetIntersections computes, over each IXP's top-k targeted ASes,
// the pairwise overlaps and the set shared by every IXP. Results are
// deterministic: shared ASNs are sorted ascending.
func TargetIntersections(ixps []IXPSnapshot, v6 bool, k int) (pairs []PairwiseIntersection, common []uint32) {
	// Each IXP's top-target set comes from its own snapshot index, so
	// the extraction fans out when Parallelism() allows; results land
	// in per-IXP slots and the intersections below stay deterministic.
	sets := make([]map[uint32]bool, len(ixps))
	if Parallelism() > 1 && len(ixps) > 1 {
		var wg sync.WaitGroup
		for i, s := range ixps {
			wg.Add(1)
			go func(i int, s IXPSnapshot) {
				defer wg.Done()
				sets[i] = topTargetSet(s, v6, k)
			}(i, s)
		}
		wg.Wait()
	} else {
		for i, s := range ixps {
			sets[i] = topTargetSet(s, v6, k)
		}
	}
	for i := 0; i < len(ixps); i++ {
		for j := i + 1; j < len(ixps); j++ {
			var shared []uint32
			for asn := range sets[i] {
				if sets[j][asn] {
					shared = append(shared, asn)
				}
			}
			sort.Slice(shared, func(a, b int) bool { return shared[a] < shared[b] })
			pairs = append(pairs, PairwiseIntersection{
				IXPA: ixps[i].Snapshot.IXP, IXPB: ixps[j].Snapshot.IXP, Shared: shared,
			})
		}
	}
	if len(sets) > 0 {
		for asn := range sets[0] {
			inAll := true
			for _, set := range sets[1:] {
				if !set[asn] {
					inAll = false
					break
				}
			}
			if inAll {
				common = append(common, asn)
			}
		}
		sort.Slice(common, func(a, b int) bool { return common[a] < common[b] })
	}
	return pairs, common
}
