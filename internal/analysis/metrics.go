package analysis

import (
	"sync/atomic"
	"time"

	"ixplight/internal/telemetry"
)

// indexMetrics instruments the shared index cache. The analysis entry
// points are package-level functions, so the instrument set lives in a
// package-level atomic rather than threading through every wrapper
// signature; SetTelemetry installs it once at process start.
type indexMetrics struct {
	reg          *telemetry.Registry
	buildSeconds *telemetry.Histogram
	builds       *telemetry.CounterVec
	cacheHits    *telemetry.Counter
	cacheMisses  *telemetry.Counter
	evictions    *telemetry.Counter
	coalesced    *telemetry.Counter
	cacheEntries *telemetry.Gauge
}

var indexTel atomic.Pointer[indexMetrics]

// SetTelemetry instruments the analysis package (index builds and the
// shared index cache) on the given registry. Passing nil turns
// instrumentation back off. Like every telemetry hook in this repo,
// the disabled state costs one atomic load on the instrumented paths.
func SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		indexTel.Store(nil)
		return
	}
	indexTel.Store(&indexMetrics{
		reg: reg,
		buildSeconds: reg.Histogram("ixplight_analysis_index_build_seconds",
			"Classified-index construction time.", nil),
		builds: reg.CounterVec("ixplight_analysis_index_builds_total",
			"Classified-index constructions by source: routes walks a materialized []bgp.Route, columns builds straight off the binary columns, delta advances the previous day's index by a snapshot delta.", "source"),
		cacheHits: reg.Counter("ixplight_analysis_index_cache_hits_total",
			"Index cache lookups answered by an already-built index."),
		cacheMisses: reg.Counter("ixplight_analysis_index_cache_misses_total",
			"Index cache lookups that triggered a build."),
		evictions: reg.Counter("ixplight_analysis_index_cache_evictions_total",
			"Index cache entries dropped (FIFO eviction or invalidation)."),
		coalesced: reg.Counter("ixplight_analysis_index_coalesced_builds_total",
			"Index cache lookups that joined another goroutine's in-flight build."),
		cacheEntries: reg.Gauge("ixplight_analysis_index_cache_entries",
			"Entries currently held by the index cache."),
	})
}

// tel reads the installed instrument set (nil when off).
func tel() *indexMetrics { return indexTel.Load() }

func (t *indexMetrics) hit() {
	if t != nil {
		t.cacheHits.Inc()
	}
}

func (t *indexMetrics) miss() {
	if t != nil {
		t.cacheMisses.Inc()
	}
}

func (t *indexMetrics) coalesce() {
	if t != nil {
		t.coalesced.Inc()
	}
}

// cache publishes the cache size after a mutation; dropped counts
// entries removed by the same mutation.
func (t *indexMetrics) cache(entries, dropped int) {
	if t == nil {
		return
	}
	t.cacheEntries.Set(int64(entries))
	t.evictions.Add(int64(dropped))
}

// builtFrom counts one index construction by source ("routes" for the
// materialized walk, "columns" for the column-direct build, "delta"
// for an incremental Advance) — the rebuild-vs-advance split.
func (t *indexMetrics) builtFrom(source string) {
	if t != nil {
		t.builds.With(source).Inc()
	}
}

// built records one index construction.
func (t *indexMetrics) built(dur time.Duration) {
	if t != nil {
		t.buildSeconds.ObserveDuration(dur)
	}
}

// span starts a trace span on the installed registry (nil-safe).
func (t *indexMetrics) span(name string) *telemetry.Span {
	if t == nil {
		return nil
	}
	return t.reg.StartSpan(name)
}
