// Column-direct index construction: build the classified Index
// straight off a CodecBinary snapshot's columns, with no []bgp.Route
// materialization.
//
// The observation this exploits: the Index's aggregates all factor
// through the intern tables. Per route, every per-community statistic
// depends only on (family, interned-set index) and every per-AS
// statistic only on (family, AS-path neighbor) — so the expensive
// work (Scheme.Classify, map inserts) can run once per *distinct
// value* instead of once per route instance:
//
//  1. pre-pass: resolve every interned set element to a dense
//     community id (classifying each distinct community exactly
//     once), reduce each set to the numbers the hot loop needs
//     (element count, action count, non-member-target count,
//     action-type mask), and map each interned AS path to a dense
//     neighbor id;
//  2. hot loop: one pass over the columns touching only flat arrays —
//     per-set reference counts and per-neighbor tallies, plus the
//     per-route §5.6 community count;
//  3. expansion: push the per-set reference counts down to per-id
//     reference counts (flat adds), then weight each distinct
//     community by its per-family count to recover the exact
//     per-instance aggregates NewIndex computes. Map writes happen
//     once per distinct community and once per distinct neighbor,
//     not once per element instance — on route-server data the
//     element instances outnumber the distinct values by orders of
//     magnitude.
//
// All scratch (decode slabs via collector.Arena, the id table, the
// flat arrays) comes from a sync.Pool, so a series run's steady state
// allocates only what the resulting Index itself owns.
package analysis

import (
	"bytes"
	"sync"
	"time"

	"ixplight/internal/bgp"
	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
)

// commSetStat is the pre-pass reduction of one interned
// standard-community set — everything the hot loop needs per route.
type commSetStat struct {
	n         int32 // element count
	actions   int32 // action-community instances in the set
	nonMember int32 // action instances targeting a non-member AS
	mask      uint8 // OR of 1<<ActionType over the set's actions
}

// Per-distinct-community flags derived from its Class once.
const (
	idFlagAction    = 1 << 0 // known action community
	idFlagNonMember = 1 << 1 // action targeting a non-member peer
)

// famScratch is one family's flat aggregation arrays.
type famScratch struct {
	comm, ext, large []int // per-interned-set reference counts

	// Per-dense-neighbor tallies, filled by the hot loop.
	peerRoutes, peerActions, peerCulprits []int
	peerMask                              []uint8

	idRefs []int32 // per-dense-community instance counts
}

// columnScratch is the pooled per-build scratch: the collector arena
// the route block decodes into plus the id tables and flat arrays.
type columnScratch struct {
	arena collector.Arena

	stats    []commSetStat
	extLen   []int32
	largeLen []int32

	// Open-addressed community → dense id table. idSlots holds id+1
	// (0 = empty) and is the only part cleared between builds;
	// idKeys[i] is only meaningful where idSlots[i] != 0.
	idSlots []uint32
	idKeys  []bgp.Community

	// Dense-id attributes, appended in discovery order.
	idComm  []bgp.Community
	idClass []dictionary.Class
	idMask  []uint8
	idFlags []uint8

	setIDs []int32 // concatenated per-set dense ids
	setOff []int32 // len(sets)+1 offsets into setIDs

	pidx    []int32  // interned path → dense neighbor id
	peerASN []uint32 // dense neighbor id → ASN
	peerOf  map[uint32]int32

	fam [2]famScratch
}

var columnPool = sync.Pool{New: func() any { return new(columnScratch) }}

// grown returns (*store)[:n] zeroed, growing the backing array as
// needed — the scratch-array analogue of the decoder's arena slabs.
func grown[T any](store *[]T, n int) []T {
	if cap(*store) < n {
		*store = make([]T, n)
		return *store
	}
	s := (*store)[:n]
	clear(s)
	return s
}

// grownDirty is grown without the clear, for arrays whose every cell
// is written before it is read.
func grownDirty[T any](store *[]T, n int) []T {
	if cap(*store) < n {
		*store = make([]T, n)
	}
	return (*store)[:n]
}

// IndexFromReader builds the classified index for one snapshot
// straight off its columnar route block, producing an Index whose
// every accessor answers identically to NewIndex over the
// materialized snapshot (the equivalence tests pin this per
// accessor). Only CodecBinary snapshots are columnar; other codecs
// transparently fall back to Snapshot() + NewIndex.
//
// The resulting Index owns all its storage: it stays valid after the
// reader is closed and after the pooled scratch is reused. Its
// embedded snapshot is header-only (Routes nil) — attach it with
// AttachIndex so the analysis wrappers answer from the index instead
// of walking the absent routes.
func IndexFromReader(sr *collector.SnapshotReader, scheme *dictionary.Scheme) (*Index, error) {
	if sr.Codec() != collector.CodecBinary {
		s, err := sr.Snapshot()
		if err != nil {
			return nil, err
		}
		return NewIndex(s, scheme), nil
	}
	t := tel()
	if t != nil {
		sp := t.span("analysis.index_build")
		sp.SetAttr("ixp", sr.Header().IXP)
		sp.SetAttr("date", sr.Header().Date)
		sp.SetAttr("source", "columns")
		t0 := time.Now()
		defer func() {
			t.built(time.Since(t0))
			sp.End()
		}()
	}
	t.builtFrom("columns")

	sc := columnPool.Get().(*columnScratch)
	defer columnPool.Put(sc)

	rb, err := sr.RouteBlock(&sc.arena)
	if err != nil {
		return nil, err
	}

	head := *sr.Header() // private copy; Routes stays nil
	ix := &Index{
		snap:        &head,
		scheme:      scheme,
		members:     head.MemberSet(),
		colPrefixes: true,
	}
	for _, m := range head.Members {
		if m.IPv4 {
			ix.fam[0].usage.MembersAtRS++
		}
		if m.IPv6 {
			ix.fam[1].usage.MembersAtRS++
		}
	}

	comms := rb.CommunitySets()
	exts := rb.ExtCommunitySets()
	larges := rb.LargeCommunitySets()
	paths := rb.ASPaths()

	// Pre-pass: resolve every set element to a dense id, classifying
	// each distinct community value exactly once. Sized at twice the
	// element count, the table's load factor never crosses ½, so it
	// never needs to grow mid-build.
	elems := 0
	for _, set := range comms {
		elems += len(set)
	}
	tabSize := 64
	for tabSize < 2*elems {
		tabSize <<= 1
	}
	tabMask := uint32(tabSize - 1)
	idSlots := grown(&sc.idSlots, tabSize)
	idKeys := grownDirty(&sc.idKeys, tabSize)
	idComm := sc.idComm[:0]
	idClass := sc.idClass[:0]
	idMask := sc.idMask[:0]
	idFlags := sc.idFlags[:0]
	setIDs := grownDirty(&sc.setIDs, elems)[:0]
	setOff := grownDirty(&sc.setOff, len(comms)+1)

	stats := grown(&sc.stats, len(comms))
	for ci, set := range comms {
		setOff[ci] = int32(len(setIDs))
		st := &stats[ci]
		st.n = int32(len(set))
		for _, c := range set {
			var id int32
			for h := (uint32(c) * 0x9e3779b1) & tabMask; ; h = (h + 1) & tabMask {
				if s := idSlots[h]; s != 0 {
					if idKeys[h] == c {
						id = int32(s) - 1
						break
					}
					continue
				}
				cl := scheme.Classify(c)
				id = int32(len(idComm))
				idComm = append(idComm, c)
				idClass = append(idClass, cl)
				var mask, flags uint8
				if cl.Known && cl.Action.IsAction() {
					mask = 1 << cl.Action
					flags = idFlagAction
					if cl.Target == dictionary.TargetPeer && !ix.members[cl.TargetASN] {
						flags |= idFlagNonMember
					}
				}
				idMask = append(idMask, mask)
				idFlags = append(idFlags, flags)
				idSlots[h], idKeys[h] = uint32(id)+1, c
				break
			}
			setIDs = append(setIDs, id)
			if fl := idFlags[id]; fl&idFlagAction != 0 {
				st.actions++
				st.mask |= idMask[id]
				if fl&idFlagNonMember != 0 {
					st.nonMember++
				}
			}
		}
	}
	setOff[len(comms)] = int32(len(setIDs))
	sc.idComm, sc.idClass, sc.idMask, sc.idFlags = idComm, idClass, idMask, idFlags

	// The index memo must end up with the same coverage NewIndex's
	// does — every distinct community in the snapshot — so Class()
	// and the accessors answer identically. The distinct count is
	// known now; the ×1.5 keeps the load factor under the memo's ⅔
	// grow threshold so the fill below never rehashes.
	ix.classes = newClassMemo(3 * len(idComm) / 2)
	for id, c := range idComm {
		ix.classes.put(c, idClass[id])
	}

	ix.extClasses = make(map[bgp.ExtendedCommunity]dictionary.Class, 32)
	extLen := grown(&sc.extLen, len(exts))
	for ei, set := range exts {
		extLen[ei] = int32(len(set))
		for _, e := range set {
			if _, ok := ix.extClasses[e]; !ok {
				ix.extClasses[e] = scheme.ClassifyExtended(e)
			}
		}
	}
	ix.largeClasses = make(map[bgp.LargeCommunity]dictionary.Class, 32)
	largeLen := grown(&sc.largeLen, len(larges))
	for li, set := range larges {
		largeLen[li] = int32(len(set))
		for _, l := range set {
			if _, ok := ix.largeClasses[l]; !ok {
				ix.largeClasses[l] = scheme.ClassifyLarge(l)
			}
		}
	}

	// Dense neighbor ids: distinct AS paths collapse onto few peers
	// (the members announcing them), so per-AS tallies can live in
	// flat arrays during the hot loop.
	pidx := grownDirty(&sc.pidx, len(paths))
	peerASN := sc.peerASN[:0]
	if sc.peerOf == nil {
		sc.peerOf = make(map[uint32]int32, 64)
	} else {
		clear(sc.peerOf)
	}
	for pi, p := range paths {
		a := p.Neighbor()
		id, ok := sc.peerOf[a]
		if !ok {
			id = int32(len(peerASN))
			peerASN = append(peerASN, a)
			sc.peerOf[a] = id
		}
		pidx[pi] = id
	}
	sc.peerASN = peerASN

	var fams [2]*famScratch
	for f := range sc.fam {
		fs := &sc.fam[f]
		fs.comm = grown(&fs.comm, len(comms))
		fs.ext = grown(&fs.ext, len(exts))
		fs.large = grown(&fs.large, len(larges))
		fs.peerRoutes = grown(&fs.peerRoutes, len(peerASN))
		fs.peerActions = grown(&fs.peerActions, len(peerASN))
		fs.peerCulprits = grown(&fs.peerCulprits, len(peerASN))
		fs.peerMask = grown(&fs.peerMask, len(peerASN))
		fams[f] = fs
		ix.fam[f].commCounts = make([]int, 0, rb.NumRoutes())
	}

	// Hot loop: flat array arithmetic only — no map, no Classify, no
	// allocation. The prefix encodings are adjacent-deduplicated per
	// family into an index-owned slab for the lazy Counts() prefix
	// count (snapshots are Normalize-sorted, so adjacency catches
	// nearly all duplicates; the count itself dedups globally).
	lastOff := [2]int{-1, -1}
	err = rb.Scan(func(ref *collector.RouteRef) error {
		f := 0
		if ref.V6 {
			f = 1
		}
		fs, st := fams[f], &ix.fam[f]

		fs.comm[ref.Communities]++
		fs.ext[ref.ExtCommunities]++
		fs.large[ref.LargeCommunities]++

		cc := int(stats[ref.Communities].n) + int(extLen[ref.ExtCommunities]) + int(largeLen[ref.LargeCommunities])
		st.commCounts = append(st.commCounts, cc)
		st.commInstances += cc
		st.usage.RoutesTotal++

		pe := pidx[ref.Path]
		fs.peerRoutes[pe]++
		cs := &stats[ref.Communities]
		if cs.actions > 0 {
			st.usage.RoutesTagged++
			st.usage.ActionInstances += int(cs.actions)
			fs.peerActions[pe] += int(cs.actions)
		}
		fs.peerMask[pe] |= cs.mask
		if cs.nonMember > 0 {
			st.nonMemberInstances += int(cs.nonMember)
			fs.peerCulprits[pe] += int(cs.nonMember)
		}

		if lastOff[f] < 0 || !bytes.Equal(ix.prefixEnc[f][lastOff[f]:], ref.PrefixBytes) {
			lastOff[f] = len(ix.prefixEnc[f])
			ix.prefixEnc[f] = append(ix.prefixEnc[f], ref.PrefixBytes...)
			ix.prefixEnds[f] = append(ix.prefixEnds[f], int32(len(ix.prefixEnc[f])))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Expansion: push the per-set reference counts down to per-id
	// instance counts (flat adds over the id slab) …
	ref0 := grown(&sc.fam[0].idRefs, len(idComm))
	ref1 := grown(&sc.fam[1].idRefs, len(idComm))
	for ci := range comms {
		n0, n1 := int32(fams[0].comm[ci]), int32(fams[1].comm[ci])
		ids := setIDs[setOff[ci]:setOff[ci+1]]
		switch {
		case n0 == 0 && n1 == 0:
		case n1 == 0:
			for _, id := range ids {
				ref0[id] += n0
			}
		case n0 == 0:
			for _, id := range ids {
				ref1[id] += n1
			}
		default:
			for _, id := range ids {
				ref0[id] += n0
				ref1[id] += n1
			}
		}
	}
	// … then weight each distinct community by its per-family count.
	// This reproduces, aggregate by aggregate, what addRoute does per
	// instance, with map writes only at distinct-community frequency.
	for f := range ix.fam {
		st := &ix.fam[f]
		st.perASActions = make(map[uint32]int, len(peerASN))
		st.perASRoutes = make(map[uint32]int, len(peerASN))
		st.actionComms = make(map[bgp.Community]int, 64)
		st.targets = make(map[uint32]int, 64)
		st.nonMemberComms = make(map[bgp.Community]int, 32)
		st.culprits = make(map[uint32]int, len(peerASN))
	}
	var refs [2]int
	for id, c := range idComm {
		refs[0], refs[1] = int(ref0[id]), int(ref1[id])
		if refs[0]+refs[1] == 0 {
			continue
		}
		cl := idClass[id]
		for f, n := range refs {
			if n == 0 {
				continue
			}
			st := &ix.fam[f]
			if !cl.Known {
				st.mix.UnknownStandard += n
				continue
			}
			st.mix.DefinedStandard += n
			if !cl.Action.IsAction() {
				st.flavour.StandardInfo += n
				continue
			}
			st.flavour.StandardAction += n
			st.actionComms[c] += n
			st.occ[cl.Action] += n
			if cl.Target == dictionary.TargetPeer {
				st.targets[cl.TargetASN] += n
				if !ix.members[cl.TargetASN] {
					st.nonMemberComms[c] += n
				}
			}
		}
	}
	for ei, set := range exts {
		refs[0], refs[1] = fams[0].ext[ei], fams[1].ext[ei]
		if refs[0]+refs[1] == 0 {
			continue
		}
		for _, e := range set {
			cl := ix.extClasses[e]
			for f, n := range refs {
				if n == 0 {
					continue
				}
				st := &ix.fam[f]
				if !cl.Known {
					st.mix.UnknownExtended += n
					continue
				}
				st.mix.DefinedExtended += n
				if cl.Action.IsAction() {
					st.flavour.ExtendedAction += n
				} else {
					st.flavour.ExtendedInfo += n
				}
			}
		}
	}
	for li, set := range larges {
		refs[0], refs[1] = fams[0].large[li], fams[1].large[li]
		if refs[0]+refs[1] == 0 {
			continue
		}
		for _, l := range set {
			cl := ix.largeClasses[l]
			for f, n := range refs {
				if n == 0 {
					continue
				}
				st := &ix.fam[f]
				if !cl.Known {
					st.mix.UnknownLarge += n
					continue
				}
				st.mix.DefinedLarge += n
				if cl.Action.IsAction() {
					st.flavour.LargeAction += n
					if cl.Target == dictionary.TargetPeer && cl.TargetASN > 0xFFFF {
						st.flavour.LargeWideTargets += n
					}
				} else {
					st.flavour.LargeInfo += n
				}
			}
		}
	}

	// Per-AS fold: the hot loop already collapsed paths onto dense
	// neighbors, so each family writes at most one map entry per
	// distinct peer — the same entries addRoute's per-route map
	// writes converge to.
	for f := range ix.fam {
		fs, st := fams[f], &ix.fam[f]
		for pe, asn := range peerASN {
			if n := fs.peerRoutes[pe]; n > 0 {
				st.perASRoutes[asn] += n
			}
			if n := fs.peerActions[pe]; n > 0 {
				st.perASActions[asn] += n
			}
			if n := fs.peerCulprits[pe]; n > 0 {
				st.culprits[asn] += n
			}
			if m := fs.peerMask[pe]; m != 0 {
				for t := 0; t < numActionTypes; t++ {
					if m&(1<<t) != 0 {
						st.typeASes[t]++
					}
				}
			}
		}
		st.usage.ASesUsing = len(st.perASActions)
	}
	return ix, nil
}

// pinnedIndex is the Snapshot aux attachment carrying a pre-built
// index for a (possibly route-less) snapshot.
type pinnedIndex struct {
	scheme *dictionary.Scheme
	ix     *Index
}

// AttachIndex pins a pre-built index on its snapshot, making every
// analysis wrapper answer from it — regardless of the Parallelism
// dispatch, because a header-only snapshot has no routes for the
// direct twins to walk. Attach before the snapshot is shared across
// goroutines. The pin is consulted ahead of the shared cache, keyed
// by the index's scheme (scheme-independent lookups match any pin).
func AttachIndex(s *collector.Snapshot, ix *Index) {
	s.SetAux(&pinnedIndex{scheme: ix.scheme, ix: ix})
}

// pinnedFor returns the index pinned on s when its scheme matches
// (nil scheme matches any pin), else nil.
func pinnedFor(s *collector.Snapshot, scheme *dictionary.Scheme) *Index {
	if p, ok := s.Aux().(*pinnedIndex); ok && (scheme == nil || p.scheme == scheme) {
		return p.ix
	}
	return nil
}
