package analysis

import (
	"net/netip"
	"sync"

	"ixplight/internal/collector"
)

// SnapshotCounts are the four quantities Appendix A tracks per
// snapshot, family and IXP.
type SnapshotCounts struct {
	Date        string
	Members     int
	Prefixes    int
	Routes      int
	Communities int
}

// CountSnapshot extracts one Appendix A row from a snapshot family.
// The counts are scheme-independent, so any cached index for the
// snapshot serves them; without one the direct walk is used.
func CountSnapshot(s *collector.Snapshot, v6 bool) SnapshotCounts {
	if ix := indexForSnapshot(s); ix != nil {
		return ix.Counts(v6)
	}
	return CountSnapshotDirect(s, v6)
}

// CountSnapshotDirect is the direct twin of CountSnapshot.
func CountSnapshotDirect(s *collector.Snapshot, v6 bool) SnapshotCounts {
	c := SnapshotCounts{Date: s.Date}
	if v6 {
		c.Members = s.MembersV6()
	} else {
		c.Members = s.MembersV4()
	}
	prefixes := make(map[netip.Prefix]bool)
	for _, r := range s.Routes {
		if r.IsIPv6() != v6 {
			continue
		}
		c.Routes++
		c.Communities += r.CommunityCount()
		prefixes[r.Prefix] = true
	}
	c.Prefixes = len(prefixes)
	return c
}

// StabilityRow summarises one quantity over a snapshot window: its
// minimum, maximum and percentual min-to-max difference (Tables 3/4).
type StabilityRow struct {
	Min, Max int
	DiffPct  float64
}

func newStabilityRow(vals []int) StabilityRow {
	if len(vals) == 0 {
		return StabilityRow{}
	}
	row := StabilityRow{Min: vals[0], Max: vals[0]}
	for _, v := range vals[1:] {
		if v < row.Min {
			row.Min = v
		}
		if v > row.Max {
			row.Max = v
		}
	}
	if row.Min > 0 {
		row.DiffPct = 100 * float64(row.Max-row.Min) / float64(row.Min)
	}
	return row
}

// StabilityTable is one Table 3/4 line: the variation of members,
// prefixes, routes and communities over a set of snapshots.
type StabilityTable struct {
	Members     StabilityRow
	Prefixes    StabilityRow
	Routes      StabilityRow
	Communities StabilityRow
}

// MaxDiffPct returns the largest variation across the four quantities,
// the number the paper quotes ("the variation ... was under 4%").
func (t StabilityTable) MaxDiffPct() float64 {
	m := t.Members.DiffPct
	for _, v := range []float64{t.Prefixes.DiffPct, t.Routes.DiffPct, t.Communities.DiffPct} {
		if v > m {
			m = v
		}
	}
	return m
}

// Stability computes the Table 3/4 row over a snapshot window. With
// Parallelism() > 1 the per-snapshot counting fans out over a bounded
// worker pool; each result lands in its snapshot's slot, so the table
// is identical to the sequential walk.
func Stability(snaps []*collector.Snapshot, v6 bool) StabilityTable {
	rows := make([]SnapshotCounts, len(snaps))
	workers := min(Parallelism(), len(snaps))
	if workers <= 1 {
		for i, s := range snaps {
			rows[i] = CountSnapshot(s, v6)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					rows[i] = CountSnapshot(snaps[i], v6)
				}
			}()
		}
		for i := range snaps {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	members := make([]int, len(rows))
	prefixes := make([]int, len(rows))
	routes := make([]int, len(rows))
	comms := make([]int, len(rows))
	for i, c := range rows {
		members[i] = c.Members
		prefixes[i] = c.Prefixes
		routes[i] = c.Routes
		comms[i] = c.Communities
	}
	return StabilityTable{
		Members:     newStabilityRow(members),
		Prefixes:    newStabilityRow(prefixes),
		Routes:      newStabilityRow(routes),
		Communities: newStabilityRow(comms),
	}
}

// WeeklyRepresentatives picks the first snapshot of each 7-day block —
// the paper's Monday-representative policy (§4).
func WeeklyRepresentatives(snaps []*collector.Snapshot) []*collector.Snapshot {
	var out []*collector.Snapshot
	for i := 0; i < len(snaps); i += 7 {
		out = append(out, snaps[i])
	}
	return out
}
