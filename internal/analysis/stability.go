package analysis

import (
	"net/netip"

	"ixplight/internal/collector"
)

// SnapshotCounts are the four quantities Appendix A tracks per
// snapshot, family and IXP.
type SnapshotCounts struct {
	Date        string
	Members     int
	Prefixes    int
	Routes      int
	Communities int
}

// CountSnapshot extracts one Appendix A row from a snapshot family.
func CountSnapshot(s *collector.Snapshot, v6 bool) SnapshotCounts {
	c := SnapshotCounts{Date: s.Date}
	if v6 {
		c.Members = s.MembersV6()
	} else {
		c.Members = s.MembersV4()
	}
	prefixes := make(map[netip.Prefix]bool)
	for _, r := range s.Routes {
		if r.IsIPv6() != v6 {
			continue
		}
		c.Routes++
		c.Communities += r.CommunityCount()
		prefixes[r.Prefix] = true
	}
	c.Prefixes = len(prefixes)
	return c
}

// StabilityRow summarises one quantity over a snapshot window: its
// minimum, maximum and percentual min-to-max difference (Tables 3/4).
type StabilityRow struct {
	Min, Max int
	DiffPct  float64
}

func newStabilityRow(vals []int) StabilityRow {
	if len(vals) == 0 {
		return StabilityRow{}
	}
	row := StabilityRow{Min: vals[0], Max: vals[0]}
	for _, v := range vals[1:] {
		if v < row.Min {
			row.Min = v
		}
		if v > row.Max {
			row.Max = v
		}
	}
	if row.Min > 0 {
		row.DiffPct = 100 * float64(row.Max-row.Min) / float64(row.Min)
	}
	return row
}

// StabilityTable is one Table 3/4 line: the variation of members,
// prefixes, routes and communities over a set of snapshots.
type StabilityTable struct {
	Members     StabilityRow
	Prefixes    StabilityRow
	Routes      StabilityRow
	Communities StabilityRow
}

// MaxDiffPct returns the largest variation across the four quantities,
// the number the paper quotes ("the variation ... was under 4%").
func (t StabilityTable) MaxDiffPct() float64 {
	m := t.Members.DiffPct
	for _, v := range []float64{t.Prefixes.DiffPct, t.Routes.DiffPct, t.Communities.DiffPct} {
		if v > m {
			m = v
		}
	}
	return m
}

// Stability computes the Table 3/4 row over a snapshot window.
func Stability(snaps []*collector.Snapshot, v6 bool) StabilityTable {
	var members, prefixes, routes, comms []int
	for _, s := range snaps {
		c := CountSnapshot(s, v6)
		members = append(members, c.Members)
		prefixes = append(prefixes, c.Prefixes)
		routes = append(routes, c.Routes)
		comms = append(comms, c.Communities)
	}
	return StabilityTable{
		Members:     newStabilityRow(members),
		Prefixes:    newStabilityRow(prefixes),
		Routes:      newStabilityRow(routes),
		Communities: newStabilityRow(comms),
	}
}

// WeeklyRepresentatives picks the first snapshot of each 7-day block —
// the paper's Monday-representative policy (§4).
func WeeklyRepresentatives(snaps []*collector.Snapshot) []*collector.Snapshot {
	var out []*collector.Snapshot
	for i := 0; i < len(snaps); i += 7 {
		out = append(out, snaps[i])
	}
	return out
}
