package analysis

import (
	"ixplight/internal/bgp"
	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
)

// Mix counts community instances by provenance and flavour for one
// snapshot family — the raw material of Fig. 1 (IXP-defined vs
// unknown) and Fig. 2 (standard vs extended vs large).
type Mix struct {
	// Standard community instances the IXP defines / does not define.
	DefinedStandard int
	UnknownStandard int
	// Extended and large instances, split the same way. An extended or
	// large community is IXP-defined when its administrator field is
	// the route server's ASN.
	DefinedExtended int
	UnknownExtended int
	DefinedLarge    int
	UnknownLarge    int
}

// Total returns all community instances.
func (m Mix) Total() int {
	return m.DefinedStandard + m.UnknownStandard +
		m.DefinedExtended + m.UnknownExtended +
		m.DefinedLarge + m.UnknownLarge
}

// Defined returns the IXP-defined instances (Fig. 1 numerator).
func (m Mix) Defined() int {
	return m.DefinedStandard + m.DefinedExtended + m.DefinedLarge
}

// DefinedShare is Fig. 1's per-bar fraction.
func (m Mix) DefinedShare() float64 { return ratio(m.Defined(), m.Total()) }

// StandardShare is Fig. 2's fraction: standard instances over all
// IXP-defined instances.
func (m Mix) StandardShare() float64 {
	return ratio(m.DefinedStandard, m.Defined())
}

// ExtendedShare and LargeShare complete Fig. 2.
func (m Mix) ExtendedShare() float64 { return ratio(m.DefinedExtended, m.Defined()) }

// LargeShare is the large-community slice of Fig. 2.
func (m Mix) LargeShare() float64 { return ratio(m.DefinedLarge, m.Defined()) }

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// ComputeMix tallies the Fig. 1/2 mix for one family of a snapshot.
func ComputeMix(s *collector.Snapshot, scheme *dictionary.Scheme, v6 bool) Mix {
	if ix := indexFor(s, scheme); ix != nil {
		return ix.Mix(v6)
	}
	return ComputeMixDirect(s, scheme, v6)
}

// ComputeMixDirect is the direct-classify twin of ComputeMix.
func ComputeMixDirect(s *collector.Snapshot, scheme *dictionary.Scheme, v6 bool) Mix {
	var m Mix
	for _, r := range s.Routes {
		if r.IsIPv6() != v6 {
			continue
		}
		for _, c := range r.Communities {
			if scheme.Classify(c).Known {
				m.DefinedStandard++
			} else {
				m.UnknownStandard++
			}
		}
		for _, e := range r.ExtCommunities {
			if scheme.ClassifyExtended(e).Known {
				m.DefinedExtended++
			} else {
				m.UnknownExtended++
			}
		}
		for _, l := range r.LargeCommunities {
			if scheme.ClassifyLarge(l).Known {
				m.DefinedLarge++
			} else {
				m.UnknownLarge++
			}
		}
	}
	return m
}

// ActionInfoSplit counts action vs informational instances among the
// IXP-defined standard communities — Fig. 3.
func ActionInfoSplit(s *collector.Snapshot, scheme *dictionary.Scheme, v6 bool) (action, info int) {
	if ix := indexFor(s, scheme); ix != nil {
		return ix.ActionInfoSplit(v6)
	}
	return ActionInfoSplitDirect(s, scheme, v6)
}

// ActionInfoSplitDirect is the direct-classify twin of ActionInfoSplit.
func ActionInfoSplitDirect(s *collector.Snapshot, scheme *dictionary.Scheme, v6 bool) (action, info int) {
	for _, r := range s.Routes {
		if r.IsIPv6() != v6 {
			continue
		}
		for _, c := range r.Communities {
			cl := scheme.Classify(c)
			if !cl.Known {
				continue
			}
			if cl.Action.IsAction() {
				action++
			} else {
				info++
			}
		}
	}
	return action, info
}

// ActionShare is Fig. 3's action fraction.
func ActionShare(s *collector.Snapshot, scheme *dictionary.Scheme, v6 bool) float64 {
	a, i := ActionInfoSplit(s, scheme, v6)
	return ratio(a, a+i)
}

// classifyRouteActions calls fn for every known action community on a
// route, the shared walk under most §5 analyses.
func classifyRouteActions(r bgp.Route, scheme *dictionary.Scheme, fn func(bgp.Community, dictionary.Class)) {
	for _, c := range r.Communities {
		cl := scheme.Classify(c)
		if cl.IsAction() {
			fn(c, cl)
		}
	}
}
