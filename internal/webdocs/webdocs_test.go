package webdocs

import (
	"strings"
	"testing"

	"ixplight/internal/bgp"
	"ixplight/internal/dictionary"
	"ixplight/internal/rsconfig"
)

// TestRoundTripAllSchemes pins the scrape: parsing a rendered page
// recovers exactly the scheme's website entry set, and the union with
// the RS-config entries rebuilds the full §3 dictionary.
func TestRoundTripAllSchemes(t *testing.T) {
	for _, scheme := range dictionary.Profiles() {
		page := Render(scheme)
		docs, err := Parse(page)
		if err != nil {
			t.Fatalf("%s: %v", scheme.IXP, err)
		}
		want := scheme.WebsiteEntries()
		if len(docs) != len(want) {
			t.Fatalf("%s: scraped %d rows, want %d", scheme.IXP, len(docs), len(want))
		}
		for i, d := range docs {
			w := want[i]
			if d.Community != w.Community || d.Action != w.Action || d.Description != w.Description {
				t.Errorf("%s row %d: got %+v want %+v", scheme.IXP, i, d, w)
			}
		}
		entries := Entries(scheme, docs)
		union := dictionary.UnionEntries(scheme.RSConfigEntries(), entries)
		if len(union) != len(scheme.Entries()) {
			t.Errorf("%s: union = %d entries, want %d", scheme.IXP, len(union), len(scheme.Entries()))
		}
	}
}

// TestFullSec3Construction runs the complete §3 dictionary pipeline
// from both textual artifacts, with no access to the scheme's own
// entry enumeration.
func TestFullSec3Construction(t *testing.T) {
	scheme := dictionary.ProfileByName("IX.br-SP")

	configDefs, err := rsconfig.Parse(rsconfig.Render(scheme, rsconfig.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	docs, err := Parse(Render(scheme))
	if err != nil {
		t.Fatal(err)
	}
	union := dictionary.UnionEntries(
		rsconfig.Entries(scheme.IXP, configDefs),
		Entries(scheme, docs),
	)
	dict := dictionary.FromEntries(scheme.IXP, union)
	if dict.Size() != 649 {
		t.Errorf("IX.br-SP dictionary = %d entries, want 649", dict.Size())
	}
	// Spot check: the blanket block-all community must be present and
	// correctly classified.
	e, ok := dict.Lookup(scheme.DoNotAnnounceAll())
	if !ok || e.Action != dictionary.DoNotAnnounceTo {
		t.Errorf("block-all lookup = %+v ok=%v", e, ok)
	}
}

func TestParseMessyMarkup(t *testing.T) {
	page := `
<html><body><table>
 <TR><TH>c</TH><TH>t</TH><TH>d</TH></TR>
 <tr class="odd">
   <td><code>0:15169</code></td>
   <td> do-not-announce-to </td>
   <td>Do not announce to <b>Google</b> &amp; friends</td>
 </tr>
</table></body></html>`
	docs, err := Parse(page)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 {
		t.Fatalf("docs = %v", docs)
	}
	d := docs[0]
	if d.Community != bgp.MustParseCommunity("0:15169") {
		t.Errorf("community = %v", d.Community)
	}
	if d.Action != dictionary.DoNotAnnounceTo {
		t.Errorf("action = %v", d.Action)
	}
	if d.Description != "Do not announce to Google & friends" {
		t.Errorf("description = %q", d.Description)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no rows":       `<html><body>nothing here</body></html>`,
		"bad community": `<tr><td>banana</td><td>do-not-announce-to</td><td>x</td></tr>`,
		"bad type":      `<tr><td>0:1</td><td>teleport</td><td>x</td></tr>`,
	}
	for name, page := range cases {
		if _, err := Parse(page); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestRenderEscapesHTML(t *testing.T) {
	scheme := dictionary.ProfileByName("LINX")
	page := Render(scheme)
	if strings.Contains(page, "<script") {
		t.Error("unexpected script tag")
	}
	if !strings.Contains(page, "LINX action &amp; informational") {
		t.Error("title not escaped/rendered")
	}
}
