// Package webdocs models the second source of the paper's §3
// dictionary: the BGP-communities documentation pages IXPs publish on
// their websites. Render produces the HTML table such a page carries
// (in the style of DE-CIX's route-server guide or the IX.br
// communities PDF); Parse scrapes the community semantics back out of
// any page using that table shape. Together with internal/rsconfig
// (the RS configuration file) this completes the §3 construction:
// dictionary = union(RS config, website documentation).
package webdocs

import (
	"fmt"
	"html"
	"regexp"
	"strings"

	"ixplight/internal/bgp"
	"ixplight/internal/dictionary"
)

// Render emits the documentation page for one scheme: an HTML document
// with one table row per documented community.
func Render(scheme *dictionary.Scheme) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<!DOCTYPE html>\n<html><head><title>%s route server BGP communities</title></head>\n<body>\n",
		html.EscapeString(scheme.IXP))
	fmt.Fprintf(&b, "<h1>%s action &amp; informational BGP communities</h1>\n", html.EscapeString(scheme.IXP))
	fmt.Fprintf(&b, "<p>Route server ASN: AS%d</p>\n", scheme.RSASN)
	b.WriteString("<table class=\"communities\">\n")
	b.WriteString("<tr><th>Community</th><th>Type</th><th>Description</th></tr>\n")
	for _, e := range scheme.WebsiteEntries() {
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%s</td></tr>\n",
			e.Community, e.Action, html.EscapeString(e.Description))
	}
	b.WriteString("</table>\n</body></html>\n")
	return b.String()
}

// rowRe matches one table row with three cells. The scrape is
// deliberately forgiving about attributes and whitespace — website
// markup varies — but strict about the cell contents it extracts.
var (
	rowRe  = regexp.MustCompile(`(?is)<tr[^>]*>(.*?)</tr>`)
	cellRe = regexp.MustCompile(`(?is)<td[^>]*>(.*?)</td>`)
	tagRe  = regexp.MustCompile(`(?s)<[^>]*>`)
)

// Doc is one community row scraped from a documentation page.
type Doc struct {
	Community   bgp.Community
	Action      dictionary.ActionType
	Description string
}

// Parse scrapes the community table out of a documentation page.
// Rows without three cells (headers, layout rows) are skipped; rows
// whose first cell is not a community, or whose second cell is not a
// known type, are reported as errors so a layout change cannot
// silently shrink the dictionary.
func Parse(page string) ([]Doc, error) {
	var out []Doc
	for _, row := range rowRe.FindAllStringSubmatch(page, -1) {
		cells := cellRe.FindAllStringSubmatch(row[1], -1)
		if len(cells) != 3 {
			continue // header or unrelated row
		}
		commText := cleanCell(cells[0][1])
		comm, err := bgp.ParseCommunity(commText)
		if err != nil {
			return nil, fmt.Errorf("webdocs: bad community cell %q: %v", commText, err)
		}
		actionText := cleanCell(cells[1][1])
		action, err := parseAction(actionText)
		if err != nil {
			return nil, fmt.Errorf("webdocs: community %s: %v", comm, err)
		}
		out = append(out, Doc{
			Community:   comm,
			Action:      action,
			Description: cleanCell(cells[2][1]),
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("webdocs: no community rows found")
	}
	return out, nil
}

func cleanCell(s string) string {
	s = tagRe.ReplaceAllString(s, "")
	return strings.TrimSpace(html.UnescapeString(s))
}

func parseAction(s string) (dictionary.ActionType, error) {
	for _, a := range []dictionary.ActionType{
		dictionary.Informational, dictionary.DoNotAnnounceTo,
		dictionary.AnnounceOnlyTo, dictionary.PrependTo, dictionary.Blackhole,
	} {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown community type %q", s)
}

// Entries converts scraped docs into dictionary entries for one IXP,
// recovering the target from the community value under the scheme
// (the website states semantics; the encoding carries the target).
func Entries(scheme *dictionary.Scheme, docs []Doc) []dictionary.Entry {
	out := make([]dictionary.Entry, 0, len(docs))
	for _, d := range docs {
		cl := scheme.Classify(d.Community)
		e := dictionary.Entry{
			Community:   d.Community,
			IXP:         scheme.IXP,
			Action:      d.Action,
			Description: d.Description,
		}
		if cl.Known {
			e.Target = cl.Target
			e.TargetASN = cl.TargetASN
		}
		out = append(out, e)
	}
	return out
}
