package collector

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ixplight/internal/lg"
)

// snapshotBytes serialises a snapshot deterministically so tests can
// assert byte-identical collections.
func snapshotBytes(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s, CodecJSON); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// equivalenceWorkerCounts is the acceptance matrix: sequential, a
// small pool, and one worker per CPU.
func equivalenceWorkerCounts() []int {
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	if counts[2] < 2 {
		counts[2] = 2
	}
	return counts
}

// TestParallelCollectEquivalenceHealthy pins the tentpole contract:
// for a healthy LG the Normalize()d snapshot is byte-identical for
// every worker count. Run with -race.
func TestParallelCollectEquivalenceHealthy(t *testing.T) {
	peers := []uint32{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000, 1100, 1200}
	server := degradedFixture(t, peers, 5)
	var want []byte
	for _, workers := range equivalenceWorkerCounts() {
		ts := httptest.NewServer(lg.NewServer(server))
		client := lg.NewClient(ts.URL, lg.ClientOptions{PageSize: 3, MaxInFlight: workers})
		snap, err := CollectWithOptions(context.Background(), client, "2021-10-04", CollectOptions{
			NeighborParallelism: workers,
		})
		ts.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if snap.Partial {
			t.Fatalf("workers=%d: healthy crawl came back partial", workers)
		}
		got := snapshotBytes(t, snap)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want, got) {
			t.Errorf("workers=%d: snapshot differs from sequential crawl", workers)
		}
	}
}

// TestParallelCollectEquivalenceFlaky is the degraded variant: a
// flaky LG (transient 500s, rate limits, truncation) plus two
// permanently-broken neighbors must yield byte-identical partial
// snapshots for every worker count — transient failures are retried
// through, permanent ones land in MemberErrors deterministically.
// Run with -race.
func TestParallelCollectEquivalenceFlaky(t *testing.T) {
	peers := []uint32{100, 200, 300, 400, 500, 600, 700, 800}
	server := degradedFixture(t, peers, 4)
	flakyOpts := lg.FlakyOptions{
		ErrorRate:      0.15,
		RateLimitEvery: 11,
		RetryAfter:     time.Second,
		TruncateEvery:  13,
		NeighborOutage: []uint32{300, 600},
		Seed:           7,
	}
	var want []byte
	for _, workers := range equivalenceWorkerCounts() {
		ts := httptest.NewServer(lg.Flaky(lg.NewServer(server), flakyOpts))
		client := lg.NewClient(ts.URL, lg.ClientOptions{
			PageSize:      3,
			MaxInFlight:   workers,
			MaxRetries:    20,
			RetryBackoff:  time.Millisecond,
			MaxBackoff:    2 * time.Millisecond,
			MaxRetryAfter: 2 * time.Millisecond,
		})
		snap, err := CollectWithOptions(context.Background(), client, "2021-10-04", CollectOptions{
			Partial:             true,
			NeighborRetries:     2,
			NeighborParallelism: workers,
		})
		ts.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !snap.Partial || len(snap.MemberErrors) != 2 {
			t.Fatalf("workers=%d: member errors = %+v, want exactly the two outage neighbors", workers, snap.MemberErrors)
		}
		if snap.MemberErrors[0].ASN != 300 || snap.MemberErrors[1].ASN != 600 {
			t.Fatalf("workers=%d: member errors = %+v", workers, snap.MemberErrors)
		}
		got := snapshotBytes(t, snap)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want, got) {
			t.Errorf("workers=%d: partial snapshot differs from sequential crawl", workers)
		}
	}
}

// TestParallelBudgetTripsInNeighborOrder forces failures to complete
// LAST: the two leading neighbors are broken and slow, the healthy
// tail is fast, so a parallel crawl sees successes stream in before
// either failure lands. The budget must still trip exactly where the
// sequential crawl trips — after the two leading failures — and the
// already-crawled healthy routes must be demoted to skipped, leaving
// the snapshot byte-identical to the sequential one.
func TestParallelBudgetTripsInNeighborOrder(t *testing.T) {
	peers := []uint32{100, 200, 300, 400, 500}
	server := degradedFixture(t, peers, 3)
	flakyOpts := lg.FlakyOptions{
		NeighborOutage: []uint32{100, 200},
		NeighborLatency: map[uint32]time.Duration{
			100: 40 * time.Millisecond,
			200: 40 * time.Millisecond,
		},
	}
	opts := CollectOptions{Partial: true, ErrorBudget: 2}

	run := func(workers int) *Snapshot {
		t.Helper()
		ts := httptest.NewServer(lg.Flaky(lg.NewServer(server), flakyOpts))
		defer ts.Close()
		client := lg.NewClient(ts.URL, lg.ClientOptions{MaxInFlight: workers})
		o := opts
		o.NeighborParallelism = workers
		snap, err := CollectWithOptions(context.Background(), client, "2021-10-04", o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return snap
	}

	seq := run(1)
	par := run(4)
	if !bytes.Equal(snapshotBytes(t, seq), snapshotBytes(t, par)) {
		t.Error("parallel snapshot differs from sequential under a tripped budget")
	}
	stages := map[string]int{}
	for _, me := range par.MemberErrors {
		stages[me.Stage]++
	}
	if stages[StageRoutes] != 2 || stages[StageSkipped] != 3 {
		t.Errorf("stages = %v, want 2 failed + 3 skipped", stages)
	}
	if len(par.Routes) != 0 {
		t.Errorf("routes = %d, want 0: successes past the trip point must be demoted", len(par.Routes))
	}
	for i, want := range []uint32{100, 200, 300, 400, 500} {
		if par.MemberErrors[i].ASN != want {
			t.Fatalf("member error %d = AS%d, want AS%d (neighbor order)", i, par.MemberErrors[i].ASN, want)
		}
	}
}

// TestParallelCheckpointResume round-trips checkpoint/resume with a
// worker pool: the first (degraded) crawl checkpoints every healthy
// neighbor, the resumed crawl issues zero route requests for them and
// completes the snapshot. Run with -race to exercise the serialized
// checkpoint writer.
func TestParallelCheckpointResume(t *testing.T) {
	peers := []uint32{100, 200, 300, 400, 500, 600}
	const routesPer = 4
	server := degradedFixture(t, peers, routesPer)
	flaky := httptest.NewServer(lg.Flaky(lg.NewServer(server), lg.FlakyOptions{
		NeighborOutage: []uint32{400},
	}))
	defer flaky.Close()

	ckpt := filepath.Join(t.TempDir(), "ckpt.json")
	opts := CollectOptions{
		Partial:             true,
		CheckpointPath:      ckpt,
		NeighborParallelism: 4,
	}
	client := lg.NewClient(flaky.URL, lg.ClientOptions{
		MaxInFlight: 4, MaxRetries: 1, RetryBackoff: time.Millisecond,
	})
	snap, err := CollectWithOptions(context.Background(), client, "2021-10-04", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Partial || len(snap.MemberErrors) != 1 || snap.MemberErrors[0].ASN != 400 {
		t.Fatalf("member errors = %+v, want exactly AS400", snap.MemberErrors)
	}
	ck, err := LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Done) != 5 || len(ck.Routes) != 5*routesPer {
		t.Fatalf("checkpoint: %d done / %d routes, want 5 / %d", len(ck.Done), len(ck.Routes), 5*routesPer)
	}
	// The resume run below marks further neighbors done on this same
	// Checkpoint; remember who was done beforehand.
	doneBefore := append([]uint32(nil), ck.Done...)

	// The LG recovers; resume with the same worker pool.
	rec := &pathRecorder{}
	healthy := httptest.NewServer(rec.wrap(lg.NewServer(server)))
	defer healthy.Close()
	opts.Checkpoint = ck
	client2 := lg.NewClient(healthy.URL, lg.ClientOptions{MaxInFlight: 4})
	snap2, err := CollectWithOptions(context.Background(), client2, "2021-10-04", opts)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Partial || len(snap2.Routes) != len(peers)*routesPer {
		t.Fatalf("resumed snapshot: partial=%v routes=%d, want complete %d",
			snap2.Partial, len(snap2.Routes), len(peers)*routesPer)
	}
	for _, done := range doneBefore {
		if n := rec.containing(fmt.Sprintf("/neighbors/%d/routes", done)); n != 0 {
			t.Errorf("AS%d re-crawled %d times despite checkpoint", done, n)
		}
	}
	if n := rec.containing("/neighbors/400/routes"); n == 0 {
		t.Error("failed neighbor AS400 was not re-attempted on resume")
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("checkpoint not removed after complete crawl: %v", err)
	}
}

// TestParallelStrictModeReportsEarliestFailure: without Partial the
// parallel crawl must abort like the sequential one and name the
// earliest failing neighbor, not whichever failure completed first.
func TestParallelStrictModeReportsEarliestFailure(t *testing.T) {
	peers := []uint32{100, 200, 300, 400}
	server := degradedFixture(t, peers, 2)
	ts := httptest.NewServer(lg.Flaky(lg.NewServer(server), lg.FlakyOptions{
		NeighborOutage: []uint32{200, 300},
		NeighborLatency: map[uint32]time.Duration{
			200: 30 * time.Millisecond, // the earlier failure lands later
		},
	}))
	defer ts.Close()
	client := lg.NewClient(ts.URL, lg.ClientOptions{MaxInFlight: 4})
	_, err := CollectWithOptions(context.Background(), client, "2021-10-04", CollectOptions{
		NeighborParallelism: 4,
	})
	if err == nil {
		t.Fatal("strict parallel crawl must abort on neighbor failure")
	}
	if want := "routes of AS200"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Errorf("err = %v, want the earliest failing neighbor (%s)", err, want)
	}
}

// TestCollectAllComposesGlobalBudget runs two targets with 4-way
// neighbor pools under a global budget of 2 in-flight requests; the
// backend-observed high-water mark must respect the budget while both
// snapshots still complete.
func TestCollectAllComposesGlobalBudget(t *testing.T) {
	var inFlight, peak atomic.Int32
	guard := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			next.ServeHTTP(w, r)
			inFlight.Add(-1)
		})
	}
	var targets []Target
	for i, name := range []string{"ONE", "TWO"} {
		server := degradedFixture(t, []uint32{100, 200, 300, 400, 500, 600}, 2)
		_ = i
		ts := httptest.NewServer(guard(lg.NewServer(server)))
		t.Cleanup(ts.Close)
		targets = append(targets, Target{
			Name: name, URL: ts.URL,
			Collect: CollectOptions{NeighborParallelism: 4},
		})
	}
	results := CollectAllWithOptions(context.Background(), targets, "2021-10-04", MultiOptions{
		TargetParallelism: 2,
		GlobalInFlight:    2,
	})
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Target.Name, r.Err)
		}
		if len(r.Snapshot.Routes) != 12 {
			t.Errorf("%s: routes = %d, want 12", r.Target.Name, len(r.Snapshot.Routes))
		}
	}
	if got := peak.Load(); got > 2 {
		t.Errorf("peak concurrent requests = %d, want ≤ 2 (global budget)", got)
	}
}

// TestCheckpointWriterSerializes hammers markDone from many
// goroutines (run with -race): every update must land and the
// persisted checkpoint must decode cleanly.
func TestCheckpointWriterSerializes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	w := &checkpointWriter{prog: &Checkpoint{IXP: "X", Date: "2021-10-04"}, path: path}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := w.markDone(uint32(1000+i), nil); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Done) != 16 {
		t.Errorf("done = %d, want 16", len(ck.Done))
	}
}
