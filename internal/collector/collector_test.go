package collector

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ixplight/internal/bgp"
	"ixplight/internal/dictionary"
	"ixplight/internal/lg"
	"ixplight/internal/netutil"
	"ixplight/internal/rs"
)

func sampleSnapshot() *Snapshot {
	s := &Snapshot{
		IXP:  "DE-CIX",
		Date: "2021-10-04",
		Members: []Member{
			{ASN: 200, Name: "b", IPv4: true},
			{ASN: 100, Name: "a", IPv4: true, IPv6: true},
		},
		Routes: []bgp.Route{
			{
				Prefix:  netutil.SyntheticV6Prefix(0),
				NextHop: netutil.PeerAddrV6(1),
				ASPath:  bgp.ASPath{100},
			},
			{
				Prefix:      netutil.SyntheticV4Prefix(1),
				NextHop:     netutil.PeerAddrV4(1),
				ASPath:      bgp.ASPath{100, 555},
				Communities: []bgp.Community{bgp.MustParseCommunity("0:15169")},
				ExtCommunities: []bgp.ExtendedCommunity{
					bgp.NewTwoOctetASExtended(6, 6695, 9),
				},
				LargeCommunities: []bgp.LargeCommunity{{Global: 6695, Local1: 1, Local2: 2}},
			},
			{
				Prefix:  netutil.SyntheticV4Prefix(0),
				NextHop: netutil.PeerAddrV4(2),
				ASPath:  bgp.ASPath{200},
			},
		},
		FilteredCount: 3,
	}
	s.Normalize()
	return s
}

func TestNormalizeOrders(t *testing.T) {
	s := sampleSnapshot()
	if s.Members[0].ASN != 100 {
		t.Error("members not sorted")
	}
	// v4 before v6, then by prefix.
	if s.Routes[0].IsIPv6() {
		t.Error("v6 route before v4")
	}
	if !s.Routes[0].Prefix.Addr().Less(s.Routes[1].Prefix.Addr()) {
		t.Error("v4 routes not sorted by prefix")
	}
}

func TestSnapshotAccessors(t *testing.T) {
	s := sampleSnapshot()
	if s.MembersV4() != 2 || s.MembersV6() != 1 {
		t.Errorf("members = %d/%d", s.MembersV4(), s.MembersV6())
	}
	set := s.MemberSet()
	if !set[100] || !set[200] || set[300] {
		t.Errorf("member set = %v", set)
	}
	if len(s.RoutesFamily(false)) != 2 || len(s.RoutesFamily(true)) != 1 {
		t.Error("family filter wrong")
	}
	day, err := s.Day()
	if err != nil || day.Year() != 2021 {
		t.Errorf("day = %v %v", day, err)
	}
}

func TestAllCodecsRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	for _, codec := range Codecs() {
		t.Run(codec.String(), func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteSnapshot(&buf, s, codec); err != nil {
				t.Fatal(err)
			}
			got, err := ReadSnapshot(&buf, codec)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(s, got) {
				t.Errorf("round trip mismatch:\n in  %+v\n out %+v", s, got)
			}
		})
	}
}

func TestGzipSmallerThanPlain(t *testing.T) {
	s := sampleSnapshot()
	// Pad with repetitive routes so compression has something to bite.
	for i := 0; i < 500; i++ {
		s.Routes = append(s.Routes, bgp.Route{
			Prefix:      netutil.SyntheticV4Prefix(i + 10),
			NextHop:     netutil.PeerAddrV4(1),
			ASPath:      bgp.ASPath{100},
			Communities: []bgp.Community{bgp.MustParseCommunity("0:15169")},
		})
	}
	var plain, zipped bytes.Buffer
	if err := WriteSnapshot(&plain, s, CodecJSON); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(&zipped, s, CodecJSONGzip); err != nil {
		t.Fatal(err)
	}
	if zipped.Len() >= plain.Len() {
		t.Errorf("gzip (%d) not smaller than plain (%d)", zipped.Len(), plain.Len())
	}
}

func TestSaveLoadSnapshotFiles(t *testing.T) {
	s := sampleSnapshot()
	dir := t.TempDir()
	for _, codec := range Codecs() {
		path, err := SaveSnapshot(dir, s, codec)
		if err != nil {
			t.Fatalf("%v: %v", codec, err)
		}
		if filepath.Ext(path) == "" {
			t.Errorf("%v: path %q has no extension", codec, path)
		}
		got, err := LoadSnapshot(path)
		if err != nil {
			t.Fatalf("%v: %v", codec, err)
		}
		if !reflect.DeepEqual(s, got) {
			t.Errorf("%v: file round trip mismatch", codec)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != len(Codecs()) {
		t.Errorf("dir entries = %d (%v)", len(entries), err)
	}
}

func TestSanitizeName(t *testing.T) {
	if got := sanitizeName("IX.br-SP"); got != "IX.br-SP" {
		t.Errorf("clean name mangled: %q", got)
	}
	if got := sanitizeName("DE-CIX Mad"); got != "DE-CIX_Mad" {
		t.Errorf("space not replaced: %q", got)
	}
}

func TestUnknownCodecErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, sampleSnapshot(), Codec(99)); err == nil {
		t.Error("unknown codec write accepted")
	}
	if _, err := ReadSnapshot(&buf, Codec(99)); err == nil {
		t.Error("unknown codec read accepted")
	}
}

// TestCollectFromLookingGlass exercises the full §3 pipeline: RS →
// LG API → client crawl → snapshot.
func TestCollectFromLookingGlass(t *testing.T) {
	scheme := dictionary.ProfileByName("DE-CIX")
	server, err := rs.New(rs.Config{Scheme: scheme})
	if err != nil {
		t.Fatal(err)
	}
	for i, asn := range []uint32{100, 200} {
		if err := server.AddPeer(rs.Peer{ASN: asn, Name: "peer", AddrV4: netutil.PeerAddrV4(i + 1), IPv4: true, IPv6: true}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 25; i++ {
		r := bgp.Route{
			Prefix:      netutil.SyntheticV4Prefix(i),
			NextHop:     netutil.PeerAddrV4(1),
			ASPath:      bgp.ASPath{100},
			Communities: []bgp.Community{scheme.DoNotAnnounce(6939)},
		}
		if reason, err := server.Announce(100, r); err != nil || reason != rs.FilterNone {
			t.Fatal(reason, err)
		}
	}
	// One filtered route.
	bad := bgp.Route{Prefix: netutil.SyntheticV4Prefix(99), NextHop: netutil.PeerAddrV4(1), ASPath: bgp.ASPath{777}}
	if reason, _ := server.Announce(100, bad); reason == rs.FilterNone {
		t.Fatal("bad route accepted")
	}

	ts := httptest.NewServer(lg.NewServer(server))
	defer ts.Close()
	client := lg.NewClient(ts.URL, lg.ClientOptions{PageSize: 7})

	snap, err := Collect(context.Background(), client, "2021-10-04")
	if err != nil {
		t.Fatal(err)
	}
	if snap.IXP != "DE-CIX" || snap.Date != "2021-10-04" {
		t.Errorf("snapshot identity = %s/%s", snap.IXP, snap.Date)
	}
	if len(snap.Members) != 2 {
		t.Errorf("members = %d", len(snap.Members))
	}
	if len(snap.Routes) != 25 {
		t.Errorf("routes = %d", len(snap.Routes))
	}
	if snap.FilteredCount != 1 {
		t.Errorf("filtered = %d", snap.FilteredCount)
	}
	// Action communities survive collection (the LG property the whole
	// paper depends on).
	found := false
	for _, r := range snap.Routes {
		if bgp.HasCommunity(r.Communities, scheme.DoNotAnnounce(6939)) {
			found = true
		}
	}
	if !found {
		t.Error("action community lost in collection")
	}
}

func TestCollectPropagatesClientErrors(t *testing.T) {
	client := lg.NewClient("http://127.0.0.1:1", lg.ClientOptions{})
	if _, err := Collect(context.Background(), client, "2021-10-04"); err == nil {
		t.Error("want error from unreachable LG")
	}
}

// TestFetchDictionaryOverLG reproduces the §3 dictionary construction
// over the wire: RS config via LG ∪ website docs = the full per-IXP
// dictionary.
func TestFetchDictionaryOverLG(t *testing.T) {
	scheme := dictionary.ProfileByName("DE-CIX")
	server, err := rs.New(rs.Config{Scheme: scheme})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(lg.NewServer(server))
	defer ts.Close()
	client := lg.NewClient(ts.URL, lg.ClientOptions{})

	dict, err := FetchDictionary(context.Background(), client, scheme.WebsiteEntries())
	if err != nil {
		t.Fatal(err)
	}
	if dict.Size() != 774 {
		t.Errorf("dictionary size = %d, want 774", dict.Size())
	}
	if dict.IXP() != "DE-CIX" {
		t.Errorf("dictionary IXP = %q", dict.IXP())
	}
	// Without the website half the dictionary is short (the paper's
	// "this list could be incomplete" discovery).
	partial, err := FetchDictionary(context.Background(), client, nil)
	if err != nil {
		t.Fatal(err)
	}
	if partial.Size() >= dict.Size() {
		t.Errorf("RS-config-only dictionary (%d) should be smaller than the union (%d)",
			partial.Size(), dict.Size())
	}
}

// TestCollectAllMultiIXP crawls three LGs concurrently, one of which
// is down; the other two must still succeed.
func TestCollectAllMultiIXP(t *testing.T) {
	var targets []Target
	for i, ixp := range []string{"DE-CIX", "AMS-IX"} {
		scheme := dictionary.ProfileByName(ixp)
		server, err := rs.New(rs.Config{Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		if err := server.AddPeer(rs.Peer{ASN: 100, Name: "m", AddrV4: netutil.PeerAddrV4(1), IPv4: true}); err != nil {
			t.Fatal(err)
		}
		r := bgp.Route{
			Prefix:  netutil.SyntheticV4Prefix(i),
			NextHop: netutil.PeerAddrV4(1),
			ASPath:  bgp.ASPath{100},
		}
		if reason, err := server.Announce(100, r); err != nil || reason != rs.FilterNone {
			t.Fatal(reason, err)
		}
		ts := httptest.NewServer(lg.NewServer(server))
		t.Cleanup(ts.Close)
		targets = append(targets, Target{Name: ixp, URL: ts.URL})
	}
	// A dead LG in the middle.
	targets = append(targets[:1], append([]Target{{Name: "DEAD", URL: "http://127.0.0.1:1"}}, targets[1:]...)...)

	results := CollectAll(context.Background(), targets, "2021-10-04", 2)
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("healthy targets failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Error("dead target succeeded")
	}
	snaps := Succeeded(results)
	if len(snaps) != 2 {
		t.Fatalf("succeeded = %d", len(snaps))
	}
	// Sorted by IXP name.
	if snaps[0].IXP != "AMS-IX" || snaps[1].IXP != "DE-CIX" {
		t.Errorf("order = %s, %s", snaps[0].IXP, snaps[1].IXP)
	}
}

func TestCollectAllCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := CollectAll(ctx, []Target{{Name: "X", URL: "http://127.0.0.1:1"}}, "2021-10-04", 1)
	if results[0].Err == nil {
		t.Error("cancelled collection succeeded")
	}
}
