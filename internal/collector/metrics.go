package collector

import (
	"context"
	"time"

	"ixplight/internal/telemetry"
)

// Metrics is the collector's instrument set. Build one with NewMetrics
// and hand it to CollectOptions.Metrics (or MultiOptions.Metrics for a
// whole run); all targets may share one set — counters aggregate. A
// nil *Metrics disables instrumentation at zero cost, the same
// nil-receiver contract as lg.Metrics.
type Metrics struct {
	reg               *telemetry.Registry
	neighborSeconds   *telemetry.Histogram  // per-neighbor crawl duration
	neighbors         *telemetry.CounterVec // by outcome: ok/failed/skipped
	neighborRetries   *telemetry.Counter    // neighbor-level re-crawls
	snapshots         *telemetry.CounterVec // by outcome: ok/partial/failed
	memberErrors      *telemetry.Counter    // degraded-member records written
	budgetTrips       *telemetry.Counter    // circuit-breaker trips
	budgetRemaining   *telemetry.Gauge      // failures left before a trip
	checkpointSeconds *telemetry.Histogram  // checkpoint save latency
	workersBusy       *telemetry.Gauge      // neighbor-crawl workers in flight
	targetsBusy       *telemetry.Gauge      // targets being crawled right now
}

// NewMetrics registers the collector metric families on reg and
// returns the instrument set. A nil registry returns nil — the
// disabled, zero-cost form.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		reg: reg,
		neighborSeconds: reg.Histogram("ixplight_collector_neighbor_seconds",
			"Wall-clock duration of one neighbor's route crawl, retries included.", nil),
		neighbors: reg.CounterVec("ixplight_collector_neighbors_total",
			"Crawl-plan neighbors by outcome (ok, failed, skipped).", "outcome"),
		neighborRetries: reg.Counter("ixplight_collector_neighbor_retries_total",
			"Neighbor-level re-crawls beyond the first attempt."),
		snapshots: reg.CounterVec("ixplight_collector_snapshots_total",
			"Finished crawls by outcome (ok, partial, failed).", "outcome"),
		memberErrors: reg.Counter("ixplight_collector_member_errors_total",
			"Member errors recorded in degraded snapshots."),
		budgetTrips: reg.Counter("ixplight_collector_budget_trips_total",
			"Error-budget circuit-breaker trips."),
		budgetRemaining: reg.Gauge("ixplight_collector_budget_remaining",
			"Consecutive failures left before the error budget trips (last crawl)."),
		checkpointSeconds: reg.Histogram("ixplight_collector_checkpoint_seconds",
			"Checkpoint save latency.", nil),
		workersBusy: reg.Gauge("ixplight_collector_workers_busy",
			"Neighbor-crawl workers currently fetching routes."),
		targetsBusy: reg.Gauge("ixplight_collector_targets_busy",
			"Targets currently being crawled in a multi-IXP run."),
	}
}

// startSpan begins a trace span as a child of the context's active
// span, returning the child context for the next layer down
// (nil-safe, allocation-free when tracing is off). Crawl spans form a
// tree this way: collector.collect parents every collector.neighbor,
// which parents the LG client's lg.request spans — across the
// parallel worker pool too, since each worker crawls with the collect
// span's context.
func (m *Metrics) startSpan(ctx context.Context, name string) (context.Context, *telemetry.Span) {
	if m == nil {
		return ctx, nil
	}
	return telemetry.StartSpan(ctx, m.reg, name)
}

// now is the zero-cost clock: the zero time when instrumentation is
// off, which ObserveSince ignores.
func (m *Metrics) now() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

// workerStart marks one neighbor-crawl worker as busy.
func (m *Metrics) workerStart() {
	if m != nil {
		m.workersBusy.Inc()
	}
}

// workerDone balances workerStart.
func (m *Metrics) workerDone() {
	if m != nil {
		m.workersBusy.Dec()
	}
}

// neighborCrawled records one finished neighbor crawl: its duration
// and any retries beyond the first attempt.
func (m *Metrics) neighborCrawled(dur time.Duration, attempts int) {
	if m == nil {
		return
	}
	m.neighborSeconds.ObserveDuration(dur)
	m.neighborRetries.Add(int64(attempts - 1))
}

// neighborOutcome counts one crawl-plan entry's final disposition.
func (m *Metrics) neighborOutcome(outcome string) {
	if m != nil {
		m.neighbors.With(outcome).Inc()
	}
}

// memberError counts one degraded-member record.
func (m *Metrics) memberError() {
	if m != nil {
		m.memberErrors.Inc()
	}
}

// budget publishes the error budget's state after a crawl.
func (m *Metrics) budget(remaining int, tripped bool) {
	if m == nil {
		return
	}
	m.budgetRemaining.Set(int64(remaining))
	if tripped {
		m.budgetTrips.Inc()
	}
}

// snapshotDone counts one finished crawl by outcome.
func (m *Metrics) snapshotDone(outcome string) {
	if m != nil {
		m.snapshots.With(outcome).Inc()
	}
}

// checkpointSaved records one checkpoint save's latency.
func (m *Metrics) checkpointSaved(t0 time.Time) {
	if m != nil {
		m.checkpointSeconds.ObserveSince(t0)
	}
}

// targetStart marks one multi-run target as in flight.
func (m *Metrics) targetStart() {
	if m != nil {
		m.targetsBusy.Inc()
	}
}

// targetDone balances targetStart.
func (m *Metrics) targetDone() {
	if m != nil {
		m.targetsBusy.Dec()
	}
}

// CrawlStats summarizes one crawl for logs and degraded-run reports.
// CollectWithOptions fills the struct pointed to by CollectOptions.Stats
// whenever the crawl produces a snapshot (including partial ones).
type CrawlStats struct {
	// Neighbors is the crawl-plan size (checkpointed and route-free
	// neighbors excluded).
	Neighbors int
	// Failed and Skipped count the plan entries that ended in a member
	// error; Skipped ones were never attempted because the budget
	// tripped first.
	Failed  int
	Skipped int
	// Retries counts neighbor-level re-crawls beyond each first attempt.
	Retries int
	// SlowestASN and Slowest identify the slowest neighbor crawl.
	SlowestASN uint32
	Slowest    time.Duration
	// BudgetRemaining is how many consecutive failures were left before
	// the error budget would have tripped (-1 when no budget is set).
	BudgetRemaining int
	// BudgetTripped reports whether the circuit breaker fired.
	BudgetTripped bool
}
