//go:build !linux

package collector

import (
	"io"
	"os"
)

// mmapFile on non-linux platforms reads the whole file: OpenSnapshotAt
// keeps its interface (zero-copy RouteBlock over the returned bytes)
// without per-platform mmap plumbing; only the out-of-heap property is
// lost.
func mmapFile(path string) ([]byte, io.Closer, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, nopCloser{}, nil
}

type nopCloser struct{}

func (nopCloser) Close() error { return nil }
