package collector

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"ixplight/internal/bgp"
)

// Checkpoint persists the progress of one LG crawl so an interrupted
// collection can resume without re-crawling finished neighbors. The
// paper's twelve-week campaign could not afford to restart a
// multi-hour crawl on every LG hiccup; neither can we.
type Checkpoint struct {
	IXP  string `json:"ixp"`
	Date string `json:"date"` // YYYY-MM-DD
	// Done lists the neighbor ASNs whose routes are fully collected.
	Done []uint32 `json:"done"`
	// Routes accumulates the routes of every done neighbor.
	Routes []bgp.Route `json:"routes"`
}

// DoneSet returns the completed neighbors as a set.
func (c *Checkpoint) DoneSet() map[uint32]bool {
	set := make(map[uint32]bool, len(c.Done))
	for _, asn := range c.Done {
		set[asn] = true
	}
	return set
}

// MarkDone records one completed neighbor and its routes.
func (c *Checkpoint) MarkDone(asn uint32, routes []bgp.Route) {
	c.Done = append(c.Done, asn)
	c.Routes = append(c.Routes, routes...)
}

// Matches reports whether the checkpoint belongs to the given crawl.
func (c *Checkpoint) Matches(ixp, date string) bool {
	return c.IXP == ixp && c.Date == date
}

// Save writes the checkpoint atomically (temp file + rename), so a
// crash mid-write cannot corrupt the resume state.
func (c *Checkpoint) Save(path string) error {
	return AtomicWrite(path, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(c)
	})
}

// ErrCorruptCheckpoint reports a checkpoint file whose contents cannot
// be trusted: truncated or malformed JSON (a kill inside AtomicWrite's
// rename window, a torn copy, a stray file) or a decoded checkpoint
// with no IXP/date identity — a file Matches could never validate.
// Callers resuming a crawl should treat it as "no checkpoint", not as
// a fatal error; ResumeCheckpoint does exactly that.
var ErrCorruptCheckpoint = errors.New("corrupt checkpoint")

// LoadCheckpoint reads a checkpoint written by Save. A missing file
// is reported via os.IsNotExist on the returned error; an unreadable
// or semantically empty one wraps ErrCorruptCheckpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var c Checkpoint
	if err := json.NewDecoder(f).Decode(&c); err != nil {
		return nil, fmt.Errorf("collector: checkpoint %s: %w: %v", path, ErrCorruptCheckpoint, err)
	}
	if c.IXP == "" || c.Date == "" {
		return nil, fmt.Errorf("collector: checkpoint %s: %w: missing ixp/date identity", path, ErrCorruptCheckpoint)
	}
	return &c, nil
}

// ResumeCheckpoint loads the checkpoint at path the way a resuming
// crawl should: degraded, never fatal. A missing file means a fresh
// crawl (nil checkpoint, nil error). A corrupt file — the remains of a
// crash mid-write or a partial copy — is moved aside to path+".corrupt"
// (so the evidence survives and the next Save is unobstructed), logged
// through logf, and likewise yields a fresh crawl. Only real I/O
// errors (permissions, unreadable directories) are returned.
func ResumeCheckpoint(path string, logf func(format string, args ...any)) (*Checkpoint, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	c, err := LoadCheckpoint(path)
	switch {
	case err == nil:
		return c, nil
	case os.IsNotExist(err):
		return nil, nil
	case errors.Is(err, ErrCorruptCheckpoint):
		aside := path + ".corrupt"
		if rerr := os.Rename(path, aside); rerr != nil {
			// Couldn't move it aside; remove it so the crawl's own
			// checkpoint saves aren't fighting a poisoned file.
			os.Remove(path)
			aside = "(removed)"
		}
		logf("%v — starting a fresh crawl, corrupt file kept at %s", err, aside)
		return nil, nil
	default:
		return nil, err
	}
}
