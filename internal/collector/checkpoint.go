package collector

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"ixplight/internal/bgp"
)

// Checkpoint persists the progress of one LG crawl so an interrupted
// collection can resume without re-crawling finished neighbors. The
// paper's twelve-week campaign could not afford to restart a
// multi-hour crawl on every LG hiccup; neither can we.
type Checkpoint struct {
	IXP  string `json:"ixp"`
	Date string `json:"date"` // YYYY-MM-DD
	// Done lists the neighbor ASNs whose routes are fully collected.
	Done []uint32 `json:"done"`
	// Routes accumulates the routes of every done neighbor.
	Routes []bgp.Route `json:"routes"`
}

// DoneSet returns the completed neighbors as a set.
func (c *Checkpoint) DoneSet() map[uint32]bool {
	set := make(map[uint32]bool, len(c.Done))
	for _, asn := range c.Done {
		set[asn] = true
	}
	return set
}

// MarkDone records one completed neighbor and its routes.
func (c *Checkpoint) MarkDone(asn uint32, routes []bgp.Route) {
	c.Done = append(c.Done, asn)
	c.Routes = append(c.Routes, routes...)
}

// Matches reports whether the checkpoint belongs to the given crawl.
func (c *Checkpoint) Matches(ixp, date string) bool {
	return c.IXP == ixp && c.Date == date
}

// Save writes the checkpoint atomically (temp file + rename), so a
// crash mid-write cannot corrupt the resume state.
func (c *Checkpoint) Save(path string) error {
	return AtomicWrite(path, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(c)
	})
}

// LoadCheckpoint reads a checkpoint written by Save. A missing file
// is reported via os.IsNotExist on the returned error.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var c Checkpoint
	if err := json.NewDecoder(f).Decode(&c); err != nil {
		return nil, fmt.Errorf("collector: checkpoint %s: %w", path, err)
	}
	return &c, nil
}
