package collector

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"ixplight/internal/bgp"
)

// ErrConsumed reports a second route walk over a reader whose
// single-shot column cursors are already spent. ForEachRoute and
// Snapshot return it (test with errors.Is); RouteBlock never does —
// its cursors are copied per Scan, so it is the multi-pass consumer.
var ErrConsumed = errors.New("collector: snapshot route block already consumed")

// ErrNotColumnar reports a RouteBlock request against a snapshot that
// is not in the columnar binary codec; callers fall back to
// Snapshot() / ForEachRoute.
var ErrNotColumnar = errors.New("collector: snapshot is not in the columnar binary codec")

// SnapshotReader is the streaming read path over a snapshot file:
// Header() answers the IXP/date/member-list/partial metadata without
// decoding routes, and ForEachRoute visits routes one at a time
// without materialising a []bgp.Route. For CodecBinary files only the
// header section is parsed at open time; the other codecs cannot be
// partially decoded (their reflection decoders produce the whole
// value at once), so OpenSnapshot falls back to an eager full decode
// and serves the same interface over it.
type SnapshotReader struct {
	codec  Codec
	closer io.Closer

	// Binary streaming state.
	br       *bufio.Reader
	header   *Snapshot
	rb       *binaryRoutes
	counter  *countingReader
	size     int64 // total encoded size when known (file stat), else -1
	consumed bool

	// Buffer mode (NewSnapshotReaderBytes / OpenSnapshotAt): the whole
	// encoded snapshot as one byte slice — possibly an mmap'd file —
	// decoded in place with no bufio layer. block caches the raw route
	// block bytes once located (aliasing buf in buffer mode, read once
	// from br in stream mode) so RouteBlock and ForEachRoute/Snapshot
	// can each decode from it independently.
	buf   []byte
	block []byte

	// Eager fallback for the non-binary codecs, and the cache once
	// Snapshot() has materialised a binary file.
	full *Snapshot
}

// OpenSnapshot opens a snapshot file for streaming reads, deducing
// the codec from the file extension with a magic-byte and content
// sniff for unknown extensions (so renamed or extensionless files
// still load). The caller must Close the reader.
func OpenSnapshot(path string) (*SnapshotReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	sr, err := NewSnapshotReader(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	sr.closer = f
	if fi, err := f.Stat(); err == nil && fi.Mode().IsRegular() {
		sr.size = fi.Size()
	}
	return sr, nil
}

// NewSnapshotReader is OpenSnapshot over any reader. pathHint may be
// empty; when it carries a known snapshot extension the codec is
// taken from it, otherwise the content is sniffed. The caller owns r;
// Close only closes what OpenSnapshot itself opened.
func NewSnapshotReader(r io.Reader, pathHint string) (*SnapshotReader, error) {
	counter := &countingReader{r: r}
	br := bufio.NewReaderSize(counter, 1<<16)
	codec, err := detectCodec(br, pathHint)
	if err != nil {
		return nil, err
	}
	sr := &SnapshotReader{codec: codec, br: br, counter: counter, size: -1}
	if codec != CodecBinary {
		// Eager fallback: decode everything now, stream from memory.
		tel := codecTel()
		t0 := tel.now()
		full, err := readSnapshot(br, codec)
		if err != nil {
			return nil, err
		}
		tel.decoded(codec, t0, counter.n, len(full.Routes))
		sr.full = full
		sr.header = headerOnly(full)
		return sr, nil
	}
	// Binary: parse magic + version + the length-prefixed header
	// section only.
	head, err := readBinaryPreamble(br)
	if err != nil {
		return nil, err
	}
	sr.header = head
	return sr, nil
}

// OpenSnapshotAt opens a snapshot file for random-access reads over
// its raw bytes: on linux the file is mmap'd read-only (a multi-GB
// dataset directory never fully resides in heap — pages fault in as
// the columns are walked and drop out under memory pressure), with a
// whole-file read fallback elsewhere. The returned reader serves the
// same interface as OpenSnapshot plus zero-copy RouteBlock access.
// Close unmaps the file: the RouteBlock, its intern tables and any
// arena-free decode results must not be used after Close.
func OpenSnapshotAt(path string) (*SnapshotReader, error) {
	data, closer, err := mmapFile(path)
	if err != nil {
		return nil, err
	}
	sr, err := NewSnapshotReaderBytes(data, path)
	if err != nil {
		closer.Close()
		return nil, err
	}
	sr.closer = closer
	return sr, nil
}

// NewSnapshotReaderBytes is NewSnapshotReader over an in-memory
// encoded snapshot. For CodecBinary the bytes are decoded in place —
// the header is parsed immediately and the route block aliases data
// with no copy — so data must stay immutable and alive for the
// reader's lifetime. The other codecs fall back to an eager decode,
// exactly like NewSnapshotReader.
func NewSnapshotReaderBytes(data []byte, pathHint string) (*SnapshotReader, error) {
	br := bufio.NewReaderSize(bytes.NewReader(data), 1<<12)
	codec, err := detectCodec(br, pathHint)
	if err != nil {
		return nil, err
	}
	sr := &SnapshotReader{codec: codec, buf: data, size: int64(len(data))}
	if codec != CodecBinary {
		tel := codecTel()
		t0 := tel.now()
		full, err := readSnapshot(bytes.NewReader(data), codec)
		if err != nil {
			return nil, err
		}
		tel.decoded(codec, t0, int64(len(data)), len(full.Routes))
		sr.full = full
		sr.header = headerOnly(full)
		return sr, nil
	}
	r := &breader{b: data}
	head, err := decodeBinaryHeader(r)
	if err != nil {
		return nil, err
	}
	sr.header = head
	sr.block = data[r.off:]
	return sr, nil
}

// readBinaryPreamble consumes the magic, version and header section
// from a buffered binary stream.
func readBinaryPreamble(br *bufio.Reader) (*Snapshot, error) {
	var magic [len(binaryMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || string(magic[:]) != binaryMagic {
		return nil, fmt.Errorf("collector: not a binary snapshot (bad magic)")
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, errBinaryTruncated
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("collector: unsupported binary snapshot version %d (want %d)", version, binaryVersion)
	}
	hdrLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, errBinaryTruncated
	}
	const maxHeader = 1 << 30 // corrupt length-prefix guard
	if hdrLen > maxHeader {
		return nil, errBinaryTruncated
	}
	hdr := make([]byte, hdrLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, errBinaryTruncated
	}
	return decodeHeaderSection(&breader{b: hdr})
}

// Codec reports the codec the file was detected as.
func (sr *SnapshotReader) Codec() Codec { return sr.codec }

// Header returns the snapshot metadata — IXP, date, members, filtered
// count, partial flag and member errors — with Routes left nil. The
// returned value is shared; callers must not mutate it.
func (sr *SnapshotReader) Header() *Snapshot { return sr.header }

// blockHint estimates the unread byte count — file size (or the
// source reader's own Len) minus what the counter has consumed, plus
// what sits in the bufio buffer — so loadBlock can allocate the route
// block in one shot instead of through io.ReadAll's doubling growth.
func (sr *SnapshotReader) blockHint() int {
	rem := -1
	if sr.size >= 0 {
		rem = int(sr.size - sr.counter.n)
	} else if n := sr.counter.Len(); n >= 0 {
		rem = n
	}
	if rem < 0 {
		return -1
	}
	return rem + sr.br.Buffered()
}

// blockBytes returns the raw route-block bytes, reading the rest of
// the stream on first use (buffer-mode readers located them at open
// with no copy). The cache is what lifts the read side of the
// single-shot restriction: RouteBlock and the materializing paths can
// each decode from it independently.
func (sr *SnapshotReader) blockBytes() ([]byte, error) {
	if sr.block == nil {
		rest, err := readAllHint(sr.br, sr.blockHint())
		if err != nil {
			return nil, err
		}
		if rest == nil {
			rest = []byte{}
		}
		sr.block = rest
	}
	return sr.block, nil
}

// bytesRead reports the encoded bytes consumed so far, for the codec
// decode telemetry (buffer-mode readers have no counting reader).
func (sr *SnapshotReader) bytesRead() int64 {
	if sr.counter != nil {
		return sr.counter.n
	}
	return sr.size
}

// loadBlock parses the binary route block: intern tables into arena
// slabs, column cursors positioned at route zero.
func (sr *SnapshotReader) loadBlock() error {
	if sr.rb != nil {
		return nil
	}
	rest, err := sr.blockBytes()
	if err != nil {
		return err
	}
	rb, err := decodeBinaryRoutes(&breader{b: rest})
	if err != nil {
		return err
	}
	sr.rb = rb
	return nil
}

// RouteBlock exposes the columnar route block — intern tables plus a
// re-scannable row cursor — without assembling a single bgp.Route.
// Only CodecBinary snapshots are columnar; other codecs return
// ErrNotColumnar and the caller falls back to Snapshot(). Unlike
// ForEachRoute the result is multi-pass (Scan copies the column
// cursors, so it can run any number of times) and does not consume
// the reader: Snapshot() still works afterwards.
//
// With a non-nil arena the tables are decoded into its reusable
// slabs, and the block plus everything reachable from it dies at the
// arena's next decode. With a nil arena the block owns fresh storage
// but still aliases the reader's raw block bytes — for a reader from
// OpenSnapshotAt that is the mmap'd file, so the block also dies at
// sr.Close.
func (sr *SnapshotReader) RouteBlock(a *Arena) (*RouteBlock, error) {
	if sr.codec != CodecBinary {
		return nil, ErrNotColumnar
	}
	rest, err := sr.blockBytes()
	if err != nil {
		return nil, err
	}
	rb, err := decodeBinaryRoutesArena(&breader{b: rest}, a)
	if err != nil {
		return nil, err
	}
	b := &RouteBlock{rb: rb}
	if a != nil {
		b.prefix = a.prefix[:0]
		b.arena = a
	}
	return b, nil
}

// ForEachRoute decodes routes in file order, calling fn for each; a
// non-nil error from fn stops the walk and is returned. On a binary
// file the routes are decoded one at a time straight off the columns
// — no []bgp.Route is ever materialised — so a dataset-wide scan
// holds one route plus the intern tables, not the whole snapshot.
// The column walk is single-shot: call ForEachRoute once, or use
// Snapshot() when the full slice is needed. Decoded routes alias the
// snapshot's interned tables; treat them as immutable (Clone before
// mutating), the contract every snapshot consumer already follows.
func (sr *SnapshotReader) ForEachRoute(fn func(bgp.Route) error) error {
	if sr.full != nil {
		for i := range sr.full.Routes {
			if err := fn(sr.full.Routes[i]); err != nil {
				return err
			}
		}
		return nil
	}
	if sr.consumed {
		return ErrConsumed
	}
	if err := sr.loadBlock(); err != nil {
		return err
	}
	sr.consumed = true
	tel := codecTel()
	t0 := tel.now()
	if !sr.rb.isNil {
		for i := 0; i < sr.rb.n; i++ {
			r, err := sr.rb.next()
			if err != nil {
				return err
			}
			if err := fn(r); err != nil {
				return err
			}
		}
	}
	tel.decoded(CodecBinary, t0, sr.bytesRead(), sr.rb.n)
	return nil
}

// Snapshot materialises the complete snapshot (header + routes).
func (sr *SnapshotReader) Snapshot() (*Snapshot, error) {
	if sr.full != nil {
		return sr.full, nil
	}
	if sr.consumed {
		return nil, ErrConsumed
	}
	if err := sr.loadBlock(); err != nil {
		return nil, err
	}
	sr.consumed = true
	tel := codecTel()
	t0 := tel.now()
	s := *sr.header
	if !sr.rb.isNil {
		s.Routes = make([]bgp.Route, sr.rb.n)
		for i := range s.Routes {
			var err error
			if s.Routes[i], err = sr.rb.next(); err != nil {
				return nil, err
			}
		}
	}
	sr.full = &s
	tel.decoded(CodecBinary, t0, sr.bytesRead(), len(s.Routes))
	return sr.full, nil
}

// Close releases the underlying file (no-op for NewSnapshotReader).
func (sr *SnapshotReader) Close() error {
	if sr.closer == nil {
		return nil
	}
	return sr.closer.Close()
}

// headerOnly shallow-copies a snapshot with its Routes detached.
func headerOnly(s *Snapshot) *Snapshot {
	h := *s
	h.Routes = nil
	return &h
}

// detectCodec deduces a snapshot file's codec: a known extension wins
// (SaveSnapshot always writes one), then the CodecBinary magic, then
// a content sniff that distinguishes JSON, gob and their gzip forms.
func detectCodec(br *bufio.Reader, path string) (Codec, error) {
	switch {
	case hasSuffix(path, ".json.gz"):
		return CodecJSONGzip, nil
	case hasSuffix(path, ".json"):
		return CodecJSON, nil
	case hasSuffix(path, ".gob.gz"):
		return CodecGobGzip, nil
	case hasSuffix(path, ".gob"):
		return CodecGob, nil
	case hasSuffix(path, ".bin"):
		return CodecBinary, nil
	}
	head, err := br.Peek(4)
	if len(head) == 0 {
		return 0, fmt.Errorf("collector: cannot detect snapshot codec: %w", err)
	}
	if string(head) == binaryMagic {
		return CodecBinary, nil
	}
	if head[0] == '{' {
		return CodecJSON, nil
	}
	if len(head) >= 2 && head[0] == 0x1f && head[1] == 0x8b {
		// Gzip: peek a window and sniff the decompressed first byte.
		chunk, _ := br.Peek(4096)
		zr, err := gzip.NewReader(bytes.NewReader(chunk))
		if err != nil {
			return 0, fmt.Errorf("collector: cannot detect snapshot codec: %w", err)
		}
		var first [1]byte
		n, _ := zr.Read(first[:])
		zr.Close()
		if n == 1 && first[0] == '{' {
			return CodecJSONGzip, nil
		}
		return CodecGobGzip, nil
	}
	return CodecGob, nil
}
