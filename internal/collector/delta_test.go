package collector

import (
	"bytes"
	"errors"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"

	"ixplight/internal/bgp"
)

// churnSnapshot derives a plausible next-day snapshot from prev:
// withdraw a fraction of routes, re-tag another fraction, announce a
// few fresh prefixes reusing existing attribute sets, and bump the
// date. Deterministic per (prev, seed).
func churnSnapshot(prev *Snapshot, date string, seed int64) *Snapshot {
	rng := rand.New(rand.NewSource(seed))
	next := &Snapshot{
		IXP:           prev.IXP,
		Date:          date,
		FilteredCount: prev.FilteredCount,
		Partial:       prev.Partial,
		Members:       append([]Member(nil), prev.Members...),
		MemberErrors:  append([]MemberError(nil), prev.MemberErrors...),
	}
	for _, r := range prev.Routes {
		switch rng.Intn(10) {
		case 0: // withdrawn
			continue
		case 1: // re-tagged
			r.Communities = append(append([]bgp.Community(nil), r.Communities...),
				bgp.NewCommunity(65000, uint16(rng.Intn(500))))
		case 2: // path attr flap
			r.MED = uint32(rng.Intn(200))
		}
		next.Routes = append(next.Routes, r)
	}
	for i := 0; i < 1+rng.Intn(3); i++ {
		if len(prev.Routes) == 0 {
			break
		}
		tmpl := prev.Routes[rng.Intn(len(prev.Routes))]
		tmpl.Prefix = netip.PrefixFrom(
			netip.AddrFrom4([4]byte{11, byte(seed), byte(rng.Intn(256)), 0}), 24)
		next.Routes = append(next.Routes, tmpl)
	}
	next.Normalize()
	return next
}

func TestDeltaRoundTrip(t *testing.T) {
	base := goldenSnapshot()
	base.Normalize()
	next := churnSnapshot(base, "2021-10-05", 1)
	next.Members = append(next.Members, Member{ASN: 64999, Name: "Newcomer", IPv4: true})
	next.FilteredCount++

	delta, err := EncodeDelta(base, next)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ApplyDelta(base, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(next, got) {
		t.Fatalf("delta round trip mismatch:\n want %+v\n got  %+v", next, got)
	}
	if SnapshotDigest(got) != SnapshotDigest(next) {
		t.Fatal("round-tripped snapshot digest differs")
	}
	if !IsDelta(delta) {
		t.Fatal("IsDelta(delta) = false")
	}
	if IsDelta(appendBinarySnapshot(nil, base)) {
		t.Fatal("IsDelta(full binary snapshot) = true")
	}
}

func TestDeltaChain(t *testing.T) {
	base := sampleSnapshot()
	base.Normalize()
	const days = 6
	series := []*Snapshot{base}
	for d := 1; d < days; d++ {
		series = append(series, churnSnapshot(series[d-1], "2021-10-05", int64(d)))
	}

	enc, err := NewDeltaEncoder(base)
	if err != nil {
		t.Fatal(err)
	}
	var deltas [][]byte
	for d := 1; d < days; d++ {
		buf, err := enc.Encode(series[d])
		if err != nil {
			t.Fatalf("day %d: %v", d, err)
		}
		deltas = append(deltas, buf)
	}

	app, err := NewDeltaApplier(base)
	if err != nil {
		t.Fatal(err)
	}
	for d := 1; d < days; d++ {
		dr, err := NewDeltaReader(deltas[d-1])
		if err != nil {
			t.Fatalf("day %d: %v", d, err)
		}
		if dr.BaseRoutes() != len(series[d-1].Routes) || dr.NextRoutes() != len(series[d].Routes) {
			t.Fatalf("day %d: route counts %d/%d, want %d/%d",
				d, dr.BaseRoutes(), dr.NextRoutes(), len(series[d-1].Routes), len(series[d].Routes))
		}
		got, err := app.Apply(dr)
		if err != nil {
			t.Fatalf("day %d: %v", d, err)
		}
		if !reflect.DeepEqual(series[d], got) {
			t.Fatalf("day %d diverged from original", d)
		}
		if app.Digest() != SnapshotDigest(series[d]) {
			t.Fatalf("day %d: chain digest mismatch", d)
		}
	}

	// A delta never applies out of order or to the wrong base: day 2's
	// delta against the original base must be refused by digest.
	if len(deltas) >= 2 {
		if _, err := ApplyDelta(base, deltas[1]); !errors.Is(err, ErrDeltaBaseMismatch) {
			t.Fatalf("out-of-order apply: got %v, want ErrDeltaBaseMismatch", err)
		}
	}
}

// TestDeltaApplierEncoderContinuation pins the cmd/collect workflow:
// reconstruct an existing chain with a DeltaApplier, then continue it
// with Applier.Encoder(). Because applier and encoder grow the same
// chain tables in lockstep, the continuation's bytes are identical to
// what the original encoder would have produced.
func TestDeltaApplierEncoderContinuation(t *testing.T) {
	base := sampleSnapshot()
	base.Normalize()
	day1 := churnSnapshot(base, "2021-10-05", 10)
	day2 := churnSnapshot(day1, "2021-10-06", 11)

	enc, err := NewDeltaEncoder(base)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := enc.Encode(day1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := enc.Encode(day2)
	if err != nil {
		t.Fatal(err)
	}

	app, err := NewDeltaApplier(base)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := NewDeltaReader(d1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Apply(dr); err != nil {
		t.Fatal(err)
	}
	cont, err := app.Encoder().Encode(day2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cont, d2) {
		t.Fatal("continuation encoder diverged from the original chain encoder")
	}
}

func TestDeltaReaderOps(t *testing.T) {
	base := goldenSnapshot()
	base.Normalize()
	next := churnSnapshot(base, "2021-10-05", 3)
	delta, err := EncodeDelta(base, next)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := NewDeltaReader(delta)
	if err != nil {
		t.Fatal(err)
	}
	if dr.BaseDate() != base.Date {
		t.Fatalf("BaseDate = %q, want %q", dr.BaseDate(), base.Date)
	}
	head := dr.Header()
	if head.Date != next.Date || head.IXP != next.IXP || head.Routes != nil {
		t.Fatalf("Header() = %+v, want header-only day-N snapshot", head)
	}
	if !reflect.DeepEqual(head.Members, next.Members) {
		t.Fatal("Header() members differ from day N")
	}

	// The op stream must balance: base + adds - dels == next, and
	// copies + dels + changes must consume exactly the base.
	count := func() (copies, adds, dels, changes int) {
		err := dr.Ops(func(op *DeltaOp) error {
			switch op.Kind {
			case DeltaCopy:
				copies += op.N
			case DeltaAdd:
				adds++
				if _, err := op.Prefix(); err != nil {
					return err
				}
			case DeltaDel:
				dels++
			case DeltaChange:
				changes++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return
	}
	copies, adds, dels, changes := count()
	if copies+dels+changes != len(base.Routes) {
		t.Fatalf("ops consume %d base routes, want %d", copies+dels+changes, len(base.Routes))
	}
	if copies+adds+changes != len(next.Routes) {
		t.Fatalf("ops produce %d next routes, want %d", copies+adds+changes, len(next.Routes))
	}
	// Re-runnable, like RouteBlock.Scan.
	c2, a2, d2, g2 := count()
	if c2 != copies || a2 != adds || d2 != dels || g2 != changes {
		t.Fatal("second Ops pass diverged")
	}
}

// bulkSnapshot builds an n-route snapshot with realistic attribute
// sharing (few next-hops/paths/community sets, many prefixes), big
// enough that per-day overheads do not dominate size comparisons.
func bulkSnapshot(n int) *Snapshot {
	s := &Snapshot{IXP: "BULK-IX", Date: "2021-10-04"}
	for asn := uint32(64500); asn < 64508; asn++ {
		s.Members = append(s.Members, Member{ASN: asn, Name: "m", IPv4: true})
	}
	for i := 0; i < n; i++ {
		peer := 64500 + uint32(i%8)
		s.Routes = append(s.Routes, bgp.Route{
			Prefix:    netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24),
			NextHop:   netip.AddrFrom4([4]byte{192, 0, 2, byte(i % 8)}),
			ASPath:    bgp.ASPath{peer, 3356, uint32(65000 + i%16)},
			Origin:    bgp.OriginIGP,
			LocalPref: 100,
			Communities: []bgp.Community{
				bgp.NewCommunity(uint16(peer%100), 100),
				bgp.NewCommunity(0, uint16(i%4)),
			},
		})
	}
	s.Normalize()
	return s
}

func TestDeltaIdenticalDays(t *testing.T) {
	base := bulkSnapshot(600)
	same := *base
	delta, err := EncodeDelta(base, &same)
	if err != nil {
		t.Fatal(err)
	}
	// An unchanged day collapses to one copy run and no extensions.
	full := appendBinarySnapshot(nil, base)
	if len(delta) >= len(full)/4 {
		t.Fatalf("identical-day delta is %d bytes, full snapshot %d — expected a fraction", len(delta), len(full))
	}
	got, err := ApplyDelta(base, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&same, got) {
		t.Fatal("identical-day round trip diverged")
	}
}

func TestDeltaTruncated(t *testing.T) {
	base := goldenSnapshot()
	base.Normalize()
	next := churnSnapshot(base, "2021-10-05", 4)
	delta, err := EncodeDelta(base, next)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(delta); i++ {
		if _, err := NewDeltaReader(delta[:i]); err == nil {
			// A truncation that still parses must at least fail to
			// apply; it can never silently produce a snapshot.
			if _, err := ApplyDelta(base, delta[:i]); err == nil {
				t.Fatalf("truncation at %d applied cleanly", i)
			}
		}
	}
}

func TestDeltaRejectsUnsorted(t *testing.T) {
	base := goldenSnapshot()
	base.Normalize()
	if len(base.Routes) < 2 {
		t.Fatal("fixture too small")
	}
	shuffled := *base
	shuffled.Routes = append([]bgp.Route(nil), base.Routes...)
	shuffled.Routes[0], shuffled.Routes[len(shuffled.Routes)-1] =
		shuffled.Routes[len(shuffled.Routes)-1], shuffled.Routes[0]
	if _, err := NewDeltaEncoder(&shuffled); err == nil {
		t.Fatal("NewDeltaEncoder accepted unsorted routes")
	}
	if _, err := EncodeDelta(base, &shuffled); err == nil {
		t.Fatal("EncodeDelta accepted unsorted next")
	}
}

func FuzzSnapshotDelta(f *testing.F) {
	f.Add([]byte("seed"), []byte("pair"))
	f.Add(appendBinarySnapshot(nil, goldenSnapshot()), []byte{})
	f.Add([]byte{}, appendBinarySnapshot(nil, sampleSnapshot()))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		base := snapshotFromFuzzBytes(a)
		next := snapshotFromFuzzBytes(b)
		base.Normalize()
		next.Normalize()
		delta, err := EncodeDelta(base, next)
		if err != nil {
			t.Fatalf("EncodeDelta: %v", err)
		}
		got, err := ApplyDelta(base, delta)
		if err != nil {
			t.Fatalf("ApplyDelta: %v", err)
		}
		if !reflect.DeepEqual(next, got) {
			t.Fatalf("delta round trip mismatch:\n want %+v\n got  %+v", next, got)
		}
		if SnapshotDigest(got) != SnapshotDigest(next) {
			t.Fatal("digest mismatch after round trip")
		}
	})
}
