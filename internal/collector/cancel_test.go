package collector

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"ixplight/internal/lg"
)

// goroutineCount samples the current goroutine count after giving the
// scheduler a moment to settle.
func goroutineCount() int {
	runtime.Gosched()
	return runtime.NumGoroutine()
}

// waitGoroutinesBelow polls until the goroutine count drops to at most
// limit, failing the test on timeout — the goleak-style pin that a
// cancelled parallel crawl leaves no workers behind.
func waitGoroutinesBelow(t *testing.T, limit int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := goroutineCount()
		if n <= limit {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak after cancellation: %d goroutines, want <= %d\n%s", n, limit, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCancelMidCrawlParallelNoLeaksValidCheckpoint(t *testing.T) {
	peers := []uint32{100, 200, 300, 400, 500, 600, 700, 800}
	const routesPer = 3
	server := degradedFixture(t, peers, routesPer)
	// Slow every response down so the cancel lands mid-crawl, with
	// several neighbor workers in flight.
	ts := httptest.NewServer(lg.Flaky(lg.NewServer(server), lg.FlakyOptions{
		Latency: 25 * time.Millisecond,
	}))
	defer ts.Close()
	httpClient := &http.Client{Transport: &http.Transport{}}
	defer httpClient.CloseIdleConnections()

	before := goroutineCount()

	ckpt := filepath.Join(t.TempDir(), "checkpoint.json")
	client := lg.NewClient(ts.URL, lg.ClientOptions{
		MaxInFlight: 4,
		HTTPClient:  httpClient,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	done := make(chan error, 1)
	go func() {
		_, err := CollectWithOptions(ctx, client, "2021-10-04", CollectOptions{
			Partial:             true,
			NeighborParallelism: 4,
			CheckpointPath:      ckpt,
		})
		done <- err
	}()

	// Cancel once real progress is on disk: at least one neighbor
	// finished and checkpointed, with others still in flight.
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		select {
		case err := <-done:
			t.Fatalf("crawl finished before a checkpoint appeared: %v", err)
		case <-time.After(2 * time.Millisecond):
		}
	}
	cancel()

	err := <-done
	if err == nil {
		t.Fatal("cancelled crawl returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled crawl error = %v, want context.Canceled in the chain", err)
	}

	// No goroutine may outlive the crawl: neighbor workers, retry
	// sleeps and checkpoint writers all exit on cancellation. The +2
	// slack covers the httptest server's own accept loop machinery.
	httpClient.CloseIdleConnections()
	waitGoroutinesBelow(t, before+2)

	// The checkpoint on disk is valid and resumable: right identity, a
	// strict subset of the plan done, and exactly the routes of the
	// done neighbors.
	ck, err := LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("checkpoint after cancellation is not loadable: %v", err)
	}
	if !ck.Matches("DE-CIX", "2021-10-04") {
		t.Fatalf("checkpoint identity %s/%s", ck.IXP, ck.Date)
	}
	if len(ck.Done) == 0 {
		t.Fatal("checkpoint has no completed neighbors")
	}
	if len(ck.Done) == len(peers) {
		t.Fatal("every neighbor done — the cancel landed after the crawl finished")
	}
	valid := make(map[uint32]bool, len(peers))
	for _, asn := range peers {
		valid[asn] = true
	}
	seen := make(map[uint32]bool)
	for _, asn := range ck.Done {
		if !valid[asn] {
			t.Fatalf("checkpoint lists unknown neighbor AS%d", asn)
		}
		if seen[asn] {
			t.Fatalf("checkpoint lists AS%d twice", asn)
		}
		seen[asn] = true
	}
	if got, want := len(ck.Routes), routesPer*len(ck.Done); got != want {
		t.Fatalf("checkpoint has %d routes for %d done neighbors, want %d", got, len(ck.Done), want)
	}

	// And the checkpoint actually resumes: a fresh crawl over it
	// completes without re-crawling the done neighbors. Snapshot the
	// done list first — the resumed crawl appends its own progress to
	// the same checkpoint object.
	doneAtCancel := append([]uint32(nil), ck.Done...)
	rec := &pathRecorder{}
	ts2 := httptest.NewServer(rec.wrap(lg.NewServer(server)))
	defer ts2.Close()
	client2 := lg.NewClient(ts2.URL, lg.ClientOptions{HTTPClient: httpClient})
	snap, err := CollectWithOptions(context.Background(), client2, "2021-10-04", CollectOptions{
		Partial:    true,
		Checkpoint: ck,
	})
	if err != nil {
		t.Fatalf("resume after cancellation: %v", err)
	}
	if snap.Partial || len(snap.Routes) != routesPer*len(peers) {
		t.Fatalf("resumed snapshot: partial=%v routes=%d, want %d", snap.Partial, len(snap.Routes), routesPer*len(peers))
	}
	for _, asn := range doneAtCancel {
		if n := rec.containing("/neighbors/" + itoa(asn) + "/routes"); n != 0 {
			t.Errorf("resume re-issued %d requests for finished neighbor AS%d", n, asn)
		}
	}
}

func TestCancelBeforeCrawlStartNoCheckpoint(t *testing.T) {
	server := degradedFixture(t, []uint32{100, 200}, 1)
	ts := httptest.NewServer(lg.NewServer(server))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ckpt := filepath.Join(t.TempDir(), "checkpoint.json")
	client := lg.NewClient(ts.URL, lg.ClientOptions{MaxInFlight: 2})
	_, err := CollectWithOptions(ctx, client, "2021-10-04", CollectOptions{
		Partial:             true,
		NeighborParallelism: 2,
		CheckpointPath:      ckpt,
	})
	if err == nil {
		t.Fatal("pre-cancelled crawl succeeded")
	}
	if _, serr := os.Stat(ckpt); !os.IsNotExist(serr) {
		t.Fatal("pre-cancelled crawl left a checkpoint")
	}
}

// itoa renders an ASN without importing strconv at every call site.
func itoa(asn uint32) string {
	if asn == 0 {
		return "0"
	}
	var b [10]byte
	i := len(b)
	for asn > 0 {
		i--
		b[i] = byte('0' + asn%10)
		asn /= 10
	}
	return string(b[i:])
}
