package collector

import (
	"context"
	"fmt"
	"os"

	"ixplight/internal/bgp"
	"ixplight/internal/dictionary"
	"ixplight/internal/lg"
	"ixplight/internal/rsconfig"
)

// CollectOptions tunes the fault tolerance of one LG crawl. The zero
// value reproduces the strict all-or-nothing behaviour: the first
// neighbor failure aborts the snapshot.
type CollectOptions struct {
	// Partial switches to degraded collection: a neighbor whose routes
	// cannot be fetched is recorded in Snapshot.MemberErrors instead
	// of aborting the whole snapshot.
	Partial bool
	// NeighborRetries re-crawls a failing neighbor this many extra
	// times, on top of the client's own per-request retries.
	NeighborRetries int
	// ErrorBudget trips a circuit breaker after this many consecutive
	// neighbor failures: the LG is abandoned, what was collected is
	// kept, and the remaining neighbors are recorded as skipped.
	// 0 means no budget (crawl every neighbor regardless).
	ErrorBudget int
	// Checkpoint resumes a previous crawl: neighbors it lists as done
	// are not re-crawled and their routes are taken from it. The
	// checkpoint must match the crawl's IXP and date.
	Checkpoint *Checkpoint
	// CheckpointPath persists progress after every completed neighbor
	// when set. The file is removed once a snapshot completes with no
	// member errors.
	CheckpointPath string
}

// Collect crawls a looking glass into one snapshot, following the §3
// recipe: fetch the peer summary first, then every peer's accepted
// routes, recording only the count of filtered ones. The first
// neighbor failure aborts the crawl; use CollectWithOptions for
// degraded collection.
func Collect(ctx context.Context, client *lg.Client, date string) (*Snapshot, error) {
	return CollectWithOptions(ctx, client, date, CollectOptions{})
}

// CollectWithOptions crawls a looking glass with the given fault
// tolerance. In Partial mode the returned snapshot may be degraded:
// Snapshot.Partial is set and Snapshot.MemberErrors explains every
// neighbor whose routes are missing. Status or neighbor-summary
// failures are always fatal — without the member list there is no
// snapshot to degrade.
func CollectWithOptions(ctx context.Context, client *lg.Client, date string, opts CollectOptions) (*Snapshot, error) {
	status, err := client.Status(ctx)
	if err != nil {
		return nil, fmt.Errorf("collector: status: %w", err)
	}
	neighbors, err := client.Neighbors(ctx)
	if err != nil {
		return nil, fmt.Errorf("collector: neighbors: %w", err)
	}
	prog := opts.Checkpoint
	if prog != nil && !prog.Matches(status.IXP, date) {
		return nil, fmt.Errorf("collector: checkpoint is for %s/%s, not %s/%s",
			prog.IXP, prog.Date, status.IXP, date)
	}
	if prog == nil {
		prog = &Checkpoint{IXP: status.IXP, Date: date}
	}
	done := prog.DoneSet()

	snap := &Snapshot{IXP: status.IXP, Date: date}
	snap.Routes = append(snap.Routes, prog.Routes...)
	consecutive := 0
	tripped := false
	for _, n := range neighbors {
		snap.Members = append(snap.Members, Member{
			ASN: n.ASN, Name: n.Description, IPv4: n.IPv4, IPv6: n.IPv6,
		})
		snap.FilteredCount += n.RoutesFiltered
		if done[n.ASN] {
			continue
		}
		if n.RoutesAccepted == 0 {
			continue
		}
		if tripped {
			snap.MemberErrors = append(snap.MemberErrors, MemberError{
				ASN: n.ASN, Stage: StageSkipped,
				Err: fmt.Sprintf("error budget of %d consecutive failures exhausted", opts.ErrorBudget),
			})
			continue
		}
		routes, attempts, err := crawlNeighbor(ctx, client, n.ASN, opts.NeighborRetries)
		if err != nil {
			if !opts.Partial || ctx.Err() != nil {
				return nil, fmt.Errorf("collector: routes of AS%d: %w", n.ASN, err)
			}
			snap.MemberErrors = append(snap.MemberErrors, MemberError{
				ASN: n.ASN, Stage: StageRoutes, Err: err.Error(), Attempts: attempts,
			})
			consecutive++
			if opts.ErrorBudget > 0 && consecutive >= opts.ErrorBudget {
				tripped = true
			}
			continue
		}
		consecutive = 0
		snap.Routes = append(snap.Routes, routes...)
		prog.MarkDone(n.ASN, routes)
		if opts.CheckpointPath != "" {
			if err := prog.Save(opts.CheckpointPath); err != nil {
				return nil, fmt.Errorf("collector: checkpoint: %w", err)
			}
		}
	}
	snap.Partial = len(snap.MemberErrors) > 0
	snap.Normalize()
	if !snap.Partial && opts.CheckpointPath != "" {
		// The crawl is complete; the resume state has served its purpose.
		os.Remove(opts.CheckpointPath)
	}
	return snap, nil
}

// crawlNeighbor fetches one neighbor's accepted routes with
// neighbor-level retries, reporting how many attempts were made.
func crawlNeighbor(ctx context.Context, client *lg.Client, asn uint32, retries int) ([]bgp.Route, int, error) {
	var lastErr error
	for attempt := 1; attempt <= retries+1; attempt++ {
		routes, err := client.RoutesReceived(ctx, asn)
		if err == nil {
			return routes, attempt, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, attempt, lastErr
		}
	}
	return nil, retries + 1, lastErr
}

// FetchDictionary builds the §3 dictionary for one IXP the way the
// paper does: fetch the route server's configuration text from the LG,
// parse its community definitions, and union them with the website
// documentation (which the caller supplies — it is scraped, not served
// by the LG).
func FetchDictionary(ctx context.Context, client *lg.Client, websiteEntries []dictionary.Entry) (*dictionary.Dictionary, error) {
	status, err := client.Status(ctx)
	if err != nil {
		return nil, fmt.Errorf("collector: status: %w", err)
	}
	text, err := client.ConfigRaw(ctx)
	if err != nil {
		return nil, fmt.Errorf("collector: config: %w", err)
	}
	defs, err := rsconfig.Parse(text)
	if err != nil {
		return nil, fmt.Errorf("collector: parse config: %w", err)
	}
	entries := dictionary.UnionEntries(rsconfig.Entries(status.IXP, defs), websiteEntries)
	return dictionary.FromEntries(status.IXP, entries), nil
}
