package collector

import (
	"context"
	"fmt"

	"ixplight/internal/dictionary"
	"ixplight/internal/lg"
	"ixplight/internal/rsconfig"
)

// Collect crawls a looking glass into one snapshot, following the §3
// recipe: fetch the peer summary first, then every peer's accepted
// routes, recording only the count of filtered ones.
func Collect(ctx context.Context, client *lg.Client, date string) (*Snapshot, error) {
	status, err := client.Status(ctx)
	if err != nil {
		return nil, fmt.Errorf("collector: status: %w", err)
	}
	neighbors, err := client.Neighbors(ctx)
	if err != nil {
		return nil, fmt.Errorf("collector: neighbors: %w", err)
	}
	snap := &Snapshot{IXP: status.IXP, Date: date}
	for _, n := range neighbors {
		snap.Members = append(snap.Members, Member{
			ASN: n.ASN, Name: n.Description, IPv4: n.IPv4, IPv6: n.IPv6,
		})
		snap.FilteredCount += n.RoutesFiltered
		if n.RoutesAccepted == 0 {
			continue
		}
		routes, err := client.RoutesReceived(ctx, n.ASN)
		if err != nil {
			return nil, fmt.Errorf("collector: routes of AS%d: %w", n.ASN, err)
		}
		snap.Routes = append(snap.Routes, routes...)
	}
	snap.Normalize()
	return snap, nil
}

// FetchDictionary builds the §3 dictionary for one IXP the way the
// paper does: fetch the route server's configuration text from the LG,
// parse its community definitions, and union them with the website
// documentation (which the caller supplies — it is scraped, not served
// by the LG).
func FetchDictionary(ctx context.Context, client *lg.Client, websiteEntries []dictionary.Entry) (*dictionary.Dictionary, error) {
	status, err := client.Status(ctx)
	if err != nil {
		return nil, fmt.Errorf("collector: status: %w", err)
	}
	text, err := client.ConfigRaw(ctx)
	if err != nil {
		return nil, fmt.Errorf("collector: config: %w", err)
	}
	defs, err := rsconfig.Parse(text)
	if err != nil {
		return nil, fmt.Errorf("collector: parse config: %w", err)
	}
	entries := dictionary.UnionEntries(rsconfig.Entries(status.IXP, defs), websiteEntries)
	return dictionary.FromEntries(status.IXP, entries), nil
}
