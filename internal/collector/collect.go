package collector

import (
	"context"
	"fmt"
	"os"
	"time"

	"ixplight/internal/bgp"
	"ixplight/internal/dictionary"
	"ixplight/internal/lg"
	"ixplight/internal/rsconfig"
)

// CollectOptions tunes the fault tolerance of one LG crawl. The zero
// value reproduces the strict all-or-nothing behaviour: the first
// neighbor failure aborts the snapshot.
type CollectOptions struct {
	// Partial switches to degraded collection: a neighbor whose routes
	// cannot be fetched is recorded in Snapshot.MemberErrors instead
	// of aborting the whole snapshot.
	Partial bool
	// NeighborRetries re-crawls a failing neighbor this many extra
	// times, on top of the client's own per-request retries.
	NeighborRetries int
	// ErrorBudget trips a circuit breaker after this many consecutive
	// neighbor failures: the LG is abandoned, what was collected is
	// kept, and the remaining neighbors are recorded as skipped.
	// 0 means no budget (crawl every neighbor regardless).
	ErrorBudget int
	// Checkpoint resumes a previous crawl: neighbors it lists as done
	// are not re-crawled and their routes are taken from it. The
	// checkpoint must match the crawl's IXP and date.
	Checkpoint *Checkpoint
	// CheckpointPath persists progress after every completed neighbor
	// when set. The file is removed once a snapshot completes with no
	// member errors.
	CheckpointPath string
	// NeighborParallelism fans the per-neighbor route crawls across
	// this many workers (0 or 1 = the sequential crawl). The snapshot
	// is byte-identical to a sequential crawl for every worker count:
	// routes are merged in neighbor order and the error budget is
	// replayed in neighbor order, so a breaker that would have tripped
	// sequentially trips at the same neighbor here — successes a
	// sequential crawl would never have attempted are demoted to
	// skipped (their routes still reach the checkpoint, so nothing
	// fetched is wasted on resume). Effective parallelism is capped by
	// the client's MaxInFlight and checkpoint saves are serialized
	// through a single writer.
	NeighborParallelism int
	// Metrics records crawl telemetry when set (see NewMetrics). Nil
	// disables instrumentation at zero cost.
	Metrics *Metrics
	// Stats, when non-nil, is filled with a per-crawl summary (retries,
	// slowest neighbor, budget state) whenever the crawl produces a
	// snapshot.
	Stats *CrawlStats
}

// Collect crawls a looking glass into one snapshot, following the §3
// recipe: fetch the peer summary first, then every peer's accepted
// routes, recording only the count of filtered ones. The first
// neighbor failure aborts the crawl; use CollectWithOptions for
// degraded collection.
func Collect(ctx context.Context, client *lg.Client, date string) (*Snapshot, error) {
	return CollectWithOptions(ctx, client, date, CollectOptions{})
}

// CollectWithOptions crawls a looking glass with the given fault
// tolerance. In Partial mode the returned snapshot may be degraded:
// Snapshot.Partial is set and Snapshot.MemberErrors explains every
// neighbor whose routes are missing. Status or neighbor-summary
// failures are always fatal — without the member list there is no
// snapshot to degrade.
func CollectWithOptions(ctx context.Context, client *lg.Client, date string, opts CollectOptions) (snap *Snapshot, err error) {
	m := opts.Metrics
	ctx, sp := m.startSpan(ctx, "collector.collect")
	defer func() {
		switch {
		case err != nil:
			m.snapshotDone("failed")
			sp.SetAttr("outcome", "failed")
		case snap.Partial:
			m.snapshotDone("partial")
			sp.SetAttr("outcome", "partial")
		default:
			m.snapshotDone("ok")
			sp.SetAttr("outcome", "ok")
		}
		sp.End()
	}()
	status, err := client.Status(ctx)
	if err != nil {
		return nil, fmt.Errorf("collector: status: %w", err)
	}
	sp.SetAttr("ixp", status.IXP)
	sp.SetAttr("date", date)
	neighbors, err := client.Neighbors(ctx)
	if err != nil {
		return nil, fmt.Errorf("collector: neighbors: %w", err)
	}
	prog := opts.Checkpoint
	if prog != nil && !prog.Matches(status.IXP, date) {
		return nil, fmt.Errorf("collector: checkpoint is for %s/%s, not %s/%s",
			prog.IXP, prog.Date, status.IXP, date)
	}
	if prog == nil {
		prog = &Checkpoint{IXP: status.IXP, Date: date}
	}
	done := prog.DoneSet()

	snap = &Snapshot{IXP: status.IXP, Date: date}
	snap.Routes = append(snap.Routes, prog.Routes...)
	// The crawl plan: every neighbor that actually needs a route
	// listing, in neighbor order. Checkpointed neighbors never reach
	// the plan, so a resumed crawl issues zero requests for them no
	// matter how many workers run.
	var crawl []uint32
	for _, n := range neighbors {
		snap.Members = append(snap.Members, Member{
			ASN: n.ASN, Name: n.Description, IPv4: n.IPv4, IPv6: n.IPv6,
		})
		snap.FilteredCount += n.RoutesFiltered
		if done[n.ASN] || n.RoutesAccepted == 0 {
			continue
		}
		crawl = append(crawl, n.ASN)
	}

	saver := &checkpointWriter{prog: prog, path: opts.CheckpointPath, m: m}
	workers := opts.NeighborParallelism
	if workers < 1 {
		workers = 1
	}
	if m := client.MaxInFlight(); workers > m {
		workers = m
	}
	if workers > len(crawl) {
		workers = len(crawl)
	}
	var outcomes []neighborOutcome
	if workers <= 1 {
		outcomes, err = crawlSequential(ctx, client, crawl, opts, saver)
	} else {
		outcomes, err = crawlParallel(ctx, client, crawl, opts, saver, workers)
	}
	if err != nil {
		return nil, err
	}

	// Replay the outcomes in neighbor order. Both crawl strategies
	// converge here, so the budget arithmetic — and therefore the
	// snapshot — is identical for every worker count.
	stats := CrawlStats{Neighbors: len(crawl), BudgetRemaining: -1}
	consecutive, tripped := 0, false
	for i, asn := range crawl {
		o := outcomes[i]
		if o.attempted {
			stats.Retries += o.attempts - 1
			if o.dur > stats.Slowest {
				stats.Slowest, stats.SlowestASN = o.dur, asn
			}
		}
		if tripped {
			snap.MemberErrors = append(snap.MemberErrors, MemberError{
				ASN: asn, Stage: StageSkipped,
				Err: fmt.Sprintf("error budget of %d consecutive failures exhausted", opts.ErrorBudget),
			})
			stats.Skipped++
			m.neighborOutcome("skipped")
			m.memberError()
			continue
		}
		if !o.attempted {
			// Only a cancelled crawl leaves a neighbor unattempted
			// without tripping the budget first.
			cause := ctx.Err()
			if cause == nil {
				cause = context.Canceled
			}
			return nil, fmt.Errorf("collector: routes of AS%d: %w", asn, cause)
		}
		if o.err != nil {
			if !opts.Partial || ctx.Err() != nil {
				return nil, fmt.Errorf("collector: routes of AS%d: %w", asn, o.err)
			}
			snap.MemberErrors = append(snap.MemberErrors, MemberError{
				ASN: asn, Stage: StageRoutes, Err: o.err.Error(), Attempts: o.attempts,
			})
			stats.Failed++
			m.neighborOutcome("failed")
			m.memberError()
			consecutive++
			if opts.ErrorBudget > 0 && consecutive >= opts.ErrorBudget {
				tripped = true
			}
			continue
		}
		consecutive = 0
		m.neighborOutcome("ok")
		snap.Routes = append(snap.Routes, o.routes...)
	}
	stats.BudgetTripped = tripped
	if opts.ErrorBudget > 0 {
		stats.BudgetRemaining = opts.ErrorBudget - consecutive
		if tripped {
			stats.BudgetRemaining = 0
		}
		m.budget(stats.BudgetRemaining, tripped)
	}
	if opts.Stats != nil {
		*opts.Stats = stats
	}
	snap.Partial = len(snap.MemberErrors) > 0
	snap.Normalize()
	if !snap.Partial && opts.CheckpointPath != "" {
		// The crawl is complete; the resume state has served its purpose.
		os.Remove(opts.CheckpointPath)
	}
	return snap, nil
}

// crawlNeighbor fetches one neighbor's accepted routes with
// neighbor-level retries, reporting how many attempts were made and
// how long the whole crawl (retries included) took.
func crawlNeighbor(ctx context.Context, client *lg.Client, asn uint32, retries int, m *Metrics) (routes []bgp.Route, attempts int, dur time.Duration, err error) {
	m.workerStart()
	defer m.workerDone()
	ctx, sp := m.startSpan(ctx, "collector.neighbor")
	sp.SetAttr("asn", fmt.Sprintf("%d", asn))
	t0 := time.Now()
	defer func() {
		dur = time.Since(t0)
		m.neighborCrawled(dur, attempts)
		sp.SetAttrInt("attempts", int64(attempts))
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
	}()
	var lastErr error
	for attempt := 1; attempt <= retries+1; attempt++ {
		routes, err := client.RoutesReceived(ctx, asn)
		if err == nil {
			return routes, attempt, 0, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, attempt, 0, lastErr
		}
	}
	return nil, retries + 1, 0, lastErr
}

// FetchDictionary builds the §3 dictionary for one IXP the way the
// paper does: fetch the route server's configuration text from the LG,
// parse its community definitions, and union them with the website
// documentation (which the caller supplies — it is scraped, not served
// by the LG).
func FetchDictionary(ctx context.Context, client *lg.Client, websiteEntries []dictionary.Entry) (*dictionary.Dictionary, error) {
	status, err := client.Status(ctx)
	if err != nil {
		return nil, fmt.Errorf("collector: status: %w", err)
	}
	text, err := client.ConfigRaw(ctx)
	if err != nil {
		return nil, fmt.Errorf("collector: config: %w", err)
	}
	defs, err := rsconfig.Parse(text)
	if err != nil {
		return nil, fmt.Errorf("collector: parse config: %w", err)
	}
	entries := dictionary.UnionEntries(rsconfig.Entries(status.IXP, defs), websiteEntries)
	return dictionary.FromEntries(status.IXP, entries), nil
}
