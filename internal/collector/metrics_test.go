package collector

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ixplight/internal/lg"
	"ixplight/internal/telemetry"
)

// TestCollectMetricsAndStats: a degraded crawl with one dead neighbor
// must land in every collector instrument and fill CrawlStats.
func TestCollectMetricsAndStats(t *testing.T) {
	server := degradedFixture(t, []uint32{100, 200, 300}, 4)
	ts := httptest.NewServer(lg.Flaky(lg.NewServer(server), lg.FlakyOptions{
		NeighborOutage: []uint32{200},
	}))
	defer ts.Close()

	reg := telemetry.New()
	sink := &telemetry.RecordingSink{}
	reg.SetSpanSink(sink)
	m := NewMetrics(reg)
	var stats CrawlStats
	client := lg.NewClient(ts.URL, lg.ClientOptions{MaxRetries: 0, RetryBackoff: time.Millisecond})
	snap, err := CollectWithOptions(context.Background(), client, "2021-10-04", CollectOptions{
		Partial:         true,
		NeighborRetries: 2,
		Metrics:         m,
		Stats:           &stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Partial {
		t.Fatal("snapshot not flagged partial")
	}

	if got := m.neighbors.With("ok").Value(); got != 2 {
		t.Errorf("neighbors{ok} = %d, want 2", got)
	}
	if got := m.neighbors.With("failed").Value(); got != 1 {
		t.Errorf("neighbors{failed} = %d, want 1", got)
	}
	if got := m.neighborRetries.Value(); got != 2 {
		t.Errorf("neighbor retries = %d, want 2 (3 attempts on AS200)", got)
	}
	if got := m.neighborSeconds.Count(); got != 3 {
		t.Errorf("neighbor duration observations = %d, want 3", got)
	}
	if got := m.snapshots.With("partial").Value(); got != 1 {
		t.Errorf("snapshots{partial} = %d, want 1", got)
	}
	if got := m.memberErrors.Value(); got != 1 {
		t.Errorf("member errors = %d, want 1", got)
	}

	if stats.Neighbors != 3 || stats.Failed != 1 || stats.Skipped != 0 {
		t.Errorf("stats = %+v, want 3 neighbors / 1 failed / 0 skipped", stats)
	}
	if stats.Retries != 2 {
		t.Errorf("stats.Retries = %d, want 2", stats.Retries)
	}
	if stats.SlowestASN == 0 || stats.Slowest <= 0 {
		t.Errorf("slowest neighbor not recorded: %+v", stats)
	}
	if stats.BudgetRemaining != -1 || stats.BudgetTripped {
		t.Errorf("budget stats = %+v, want unlimited/untripped", stats)
	}

	// Spans: one per crawled neighbor plus the crawl itself.
	if got := len(sink.Named("collector.neighbor")); got != 3 {
		t.Errorf("neighbor spans = %d, want 3", got)
	}
	crawls := sink.Named("collector.collect")
	if len(crawls) != 1 {
		t.Fatalf("crawl spans = %d, want 1", len(crawls))
	}
	outcome := ""
	for _, a := range crawls[0].Attrs {
		if a.Key == "outcome" {
			outcome = a.Value
		}
	}
	if outcome != "partial" {
		t.Errorf("crawl span outcome = %q, want partial", outcome)
	}
}

// TestCollectMetricsBudgetTrip: the circuit breaker must show up in
// the trip counter, the remaining gauge, and the skipped outcomes.
func TestCollectMetricsBudgetTrip(t *testing.T) {
	server := degradedFixture(t, []uint32{100, 200, 300, 400}, 2)
	ts := httptest.NewServer(lg.Flaky(lg.NewServer(server), lg.FlakyOptions{
		NeighborOutage: []uint32{100, 200},
	}))
	defer ts.Close()

	reg := telemetry.New()
	m := NewMetrics(reg)
	var stats CrawlStats
	client := lg.NewClient(ts.URL, lg.ClientOptions{MaxRetries: 0})
	snap, err := CollectWithOptions(context.Background(), client, "2021-10-04", CollectOptions{
		Partial:     true,
		ErrorBudget: 2,
		Metrics:     m,
		Stats:       &stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.MemberErrors) != 4 {
		t.Fatalf("member errors = %d, want 4 (2 failed + 2 skipped)", len(snap.MemberErrors))
	}
	if got := m.budgetTrips.Value(); got != 1 {
		t.Errorf("budget trips = %d, want 1", got)
	}
	if got := m.budgetRemaining.Value(); got != 0 {
		t.Errorf("budget remaining gauge = %d, want 0", got)
	}
	if got := m.neighbors.With("skipped").Value(); got != 2 {
		t.Errorf("neighbors{skipped} = %d, want 2", got)
	}
	if !stats.BudgetTripped || stats.BudgetRemaining != 0 {
		t.Errorf("stats budget = %+v, want tripped with 0 left", stats)
	}
	if stats.Skipped != 2 || stats.Failed != 2 {
		t.Errorf("stats = %+v, want 2 failed / 2 skipped", stats)
	}
}

// TestCollectMetricsCheckpointSaves: checkpointed crawls must observe
// one save per completed neighbor.
func TestCollectMetricsCheckpointSaves(t *testing.T) {
	server := degradedFixture(t, []uint32{100, 200}, 2)
	ts := httptest.NewServer(lg.NewServer(server))
	defer ts.Close()

	reg := telemetry.New()
	m := NewMetrics(reg)
	client := lg.NewClient(ts.URL, lg.ClientOptions{})
	dir := t.TempDir()
	_, err := CollectWithOptions(context.Background(), client, "2021-10-04", CollectOptions{
		Partial:        true,
		CheckpointPath: dir + "/ckpt.json",
		Metrics:        m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.checkpointSeconds.Count(); got != 2 {
		t.Errorf("checkpoint save observations = %d, want 2", got)
	}
	if got := m.snapshots.With("ok").Value(); got != 1 {
		t.Errorf("snapshots{ok} = %d, want 1", got)
	}
}

// TestResultSummaryDegradedLine pins the extended degraded log line:
// retries, slowest neighbor, and budget headroom.
func TestResultSummaryDegradedLine(t *testing.T) {
	r := Result{
		Target:   Target{Name: "TEST-IX"},
		Snapshot: &Snapshot{Partial: true, MemberErrors: []MemberError{{ASN: 200}}},
		Partial:  true,
		Duration: 1500 * time.Millisecond,
		Requests: 42,
		Stats: CrawlStats{
			Neighbors: 3, Failed: 1, Retries: 5,
			SlowestASN: 200, Slowest: 800 * time.Millisecond,
			BudgetRemaining: 2,
		},
	}
	got := r.Summary()
	for _, want := range []string{"TEST-IX: partial:", "5 retries", "slowest AS200 800ms", "budget 2 left"} {
		if !strings.Contains(got, want) {
			t.Errorf("summary %q missing %q", got, want)
		}
	}
	r.Stats.BudgetTripped = true
	if got := r.Summary(); !strings.Contains(got, "budget tripped") {
		t.Errorf("summary %q missing tripped budget", got)
	}
	r.Stats.BudgetTripped = false
	r.Stats.BudgetRemaining = -1
	if got := r.Summary(); !strings.Contains(got, "no budget") {
		t.Errorf("summary %q missing unlimited budget", got)
	}
}

// TestCollectAllSharedMetrics: MultiOptions wiring — one instrument
// set across targets, Result.Stats populated, HTTP request counts.
func TestCollectAllSharedMetrics(t *testing.T) {
	server := degradedFixture(t, []uint32{100, 200}, 2)
	ts := httptest.NewServer(lg.NewServer(server))
	defer ts.Close()

	reg := telemetry.New()
	m := NewMetrics(reg)
	lgm := lg.NewMetrics(reg)
	targets := []Target{
		{Name: "A", URL: ts.URL},
		{Name: "B", URL: ts.URL},
	}
	results := CollectAllWithOptions(context.Background(), targets, "2021-10-04", MultiOptions{
		Metrics:   m,
		LGMetrics: lgm,
	})
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Target.Name, r.Err)
		}
		if r.Stats.Neighbors != 2 {
			t.Errorf("%s: stats.Neighbors = %d, want 2", r.Target.Name, r.Stats.Neighbors)
		}
		if r.Requests == 0 {
			t.Errorf("%s: requests = 0", r.Target.Name)
		}
	}
	if got := m.snapshots.With("ok").Value(); got != 2 {
		t.Errorf("snapshots{ok} = %d, want 2", got)
	}
	if got := m.neighbors.With("ok").Value(); got != 4 {
		t.Errorf("neighbors{ok} = %d, want 4", got)
	}
	// Each crawl: status + neighbors + 2 route listings = 4 wire requests.
	if got := results[0].Requests + results[1].Requests; got != 8 {
		t.Errorf("total http requests = %d, want 8", got)
	}
	if got := m.targetsBusy.Value(); got != 0 {
		t.Errorf("targets busy gauge = %d after run", got)
	}
	if got := m.workersBusy.Value(); got != 0 {
		t.Errorf("workers busy gauge = %d after run", got)
	}
}
