package collector

import (
	"bytes"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ixplight/internal/bgp"
	"ixplight/internal/telemetry"
)

// -update-golden regenerates testdata/snapshot.bin from
// goldenSnapshot(). Never run it casually: a byte change there is a
// wire-format change and needs a binaryVersion bump.
var updateGolden = flag.Bool("update-golden", false, "rewrite the committed binary snapshot fixture")

// goldenSnapshot is the fixture frozen into testdata/snapshot.bin. Do
// not edit — the committed bytes pin the wire format, and this value
// pins the decoding of those bytes.
func goldenSnapshot() *Snapshot {
	s := &Snapshot{
		IXP:           "DE-CIX",
		Date:          "2021-10-04",
		FilteredCount: 7,
		Partial:       true,
		Members: []Member{
			{ASN: 64500, Name: "Alpha Networks", IPv4: true},
			{ASN: 64501, Name: "Beta Tränsit", IPv4: true, IPv6: true},
			{ASN: 64502, Name: "", IPv6: true},
		},
		MemberErrors: []MemberError{
			{ASN: 64502, Stage: StageRoutes, Err: "lg: status 500", Attempts: 3},
		},
		Routes: []bgp.Route{
			{
				Prefix:    netip.MustParsePrefix("203.0.113.0/24"),
				NextHop:   netip.MustParseAddr("192.0.2.1"),
				ASPath:    bgp.ASPath{64500, 174},
				Origin:    bgp.OriginIGP,
				LocalPref: 100,
				Communities: []bgp.Community{
					bgp.NewCommunity(0, 64501),
					bgp.NewCommunity(6695, 64501),
				},
			},
			{
				Prefix:    netip.MustParsePrefix("203.0.114.0/23"),
				NextHop:   netip.MustParseAddr("192.0.2.1"),
				ASPath:    bgp.ASPath{64500, 174},
				Origin:    bgp.OriginIncomplete,
				MED:       50,
				LocalPref: 100,
				Communities: []bgp.Community{
					bgp.NewCommunity(0, 64501),
					bgp.NewCommunity(6695, 64501),
				},
				ExtCommunities: []bgp.ExtendedCommunity{
					bgp.NewTwoOctetASExtended(bgp.ExtSubTypePrependAction, 6695, 64501),
				},
				LargeCommunities: []bgp.LargeCommunity{
					{Global: 4200000000, Local1: 1, Local2: 4200000001},
				},
			},
			{
				// Same attributes as route 0 except the prefix: the
				// path and community sets intern to shared entries.
				Prefix:    netip.MustParsePrefix("198.51.100.0/24"),
				NextHop:   netip.MustParseAddr("192.0.2.1"),
				ASPath:    bgp.ASPath{64500, 174},
				Origin:    bgp.OriginIGP,
				LocalPref: 100,
				Communities: []bgp.Community{
					bgp.NewCommunity(0, 64501),
					bgp.NewCommunity(6695, 64501),
				},
			},
			{
				Prefix:      netip.MustParsePrefix("2001:db8:100::/48"),
				NextHop:     netip.MustParseAddr("2001:db8::1"),
				ASPath:      bgp.ASPath{64501},
				Origin:      bgp.OriginEGP,
				LocalPref:   200,
				Communities: []bgp.Community{}, // empty, not nil: the slice headers must tell them apart
			},
			{
				// 4-in-6 mapped next hop and single-element path.
				Prefix:  netip.MustParsePrefix("2001:db8:200::/48"),
				NextHop: netip.MustParseAddr("::ffff:192.0.2.7"),
				ASPath:  bgp.ASPath{64502},
			},
		},
	}
	s.Normalize()
	return s
}

const goldenPath = "testdata/snapshot.bin"

// TestBinaryGoldenFixture pins the wire format: the committed fixture
// must decode to exactly goldenSnapshot(), and re-encoding that value
// must reproduce the committed bytes. Any accidental format drift
// fails here loudly; a deliberate change needs a binaryVersion bump
// and -update-golden.
func TestBinaryGoldenFixture(t *testing.T) {
	want := goldenSnapshot()
	encoded := appendBinarySnapshot(nil, want)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, encoded, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(encoded))
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden fixture missing (run with -update-golden to create): %v", err)
	}
	got, err := decodeBinarySnapshot(data)
	if err != nil {
		t.Fatalf("golden fixture no longer decodes: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("golden fixture decodes differently:\n want %+v\n got  %+v", want, got)
	}
	if !bytes.Equal(encoded, data) {
		t.Errorf("encoder output drifted from committed fixture (%d vs %d bytes): wire-format change without a binaryVersion bump?", len(encoded), len(data))
	}
}

// TestBinaryVersionCheck ensures a future-versioned file is rejected
// with a version error rather than misparsed.
func TestBinaryVersionCheck(t *testing.T) {
	data := append([]byte(nil), appendBinarySnapshot(nil, goldenSnapshot())...)
	data[len(binaryMagic)] = binaryVersion + 1 // version varint is one byte for small versions
	if _, err := decodeBinarySnapshot(data); err == nil {
		t.Fatal("future version accepted")
	} else if want := fmt.Sprintf("version %d", binaryVersion+1); !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Errorf("error %q does not name the offending version", err)
	}
	// The streaming path must reject it the same way.
	if _, err := NewSnapshotReader(bytes.NewReader(data), "x.bin"); err == nil {
		t.Fatal("streaming reader accepted future version")
	}
}

// TestBinaryRoundTripEdgeCases exercises shapes the paper pipeline
// produces rarely but legally.
func TestBinaryRoundTripEdgeCases(t *testing.T) {
	cases := map[string]*Snapshot{
		"zero":         {},
		"empty-slices": {Members: []Member{}, MemberErrors: []MemberError{}, Routes: []bgp.Route{}},
		"golden":       goldenSnapshot(),
		"no-routes": {
			IXP: "LINX", Date: "2021-12-26",
			Members: []Member{{ASN: 1, Name: "x", IPv4: true}},
		},
		"invalid-route-fields": {
			IXP: "AMS-IX", Date: "2021-10-05",
			Routes: []bgp.Route{
				{}, // zero route: invalid prefix, invalid next hop, nil path
				{Prefix: netip.MustParsePrefix("10.0.0.0/8"), ASPath: bgp.ASPath{}},
			},
		},
	}
	for name, s := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteSnapshot(&buf, s, CodecBinary); err != nil {
				t.Fatal(err)
			}
			got, err := ReadSnapshot(&buf, CodecBinary)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(s, got) {
				t.Errorf("round trip mismatch:\n in  %+v\n out %+v", s, got)
			}
		})
	}
}

// TestBinaryDecodeTruncated ensures every prefix of a valid encoding
// fails cleanly instead of panicking or succeeding.
func TestBinaryDecodeTruncated(t *testing.T) {
	data := appendBinarySnapshot(nil, goldenSnapshot())
	for n := 0; n < len(data); n++ {
		if _, err := decodeBinarySnapshot(data[:n]); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded successfully", n, len(data))
		}
	}
}

// TestCrossCodecEquivalence decodes the same fixture through all five
// codecs and requires identical in-memory snapshots — the guarantee
// that lets a dataset mix codecs freely.
func TestCrossCodecEquivalence(t *testing.T) {
	s := sampleSnapshot()
	s.Partial = true
	s.MemberErrors = []MemberError{{ASN: 300, Stage: StageSkipped, Err: "budget", Attempts: 1}}
	s.Normalize()
	decoded := make(map[Codec]*Snapshot)
	for _, codec := range Codecs() {
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, s, codec); err != nil {
			t.Fatalf("%v: %v", codec, err)
		}
		got, err := ReadSnapshot(&buf, codec)
		if err != nil {
			t.Fatalf("%v: %v", codec, err)
		}
		decoded[codec] = got
	}
	for _, codec := range Codecs() {
		if !reflect.DeepEqual(decoded[CodecJSON], decoded[codec]) {
			t.Errorf("%v decodes differently from json:\n json %+v\n %v %+v",
				codec, decoded[CodecJSON], codec, decoded[codec])
		}
	}
}

// TestSnapshotReaderStreams pins the streaming contract: Header()
// before the route block, routes in file order, single-shot column
// walk.
func TestSnapshotReaderStreams(t *testing.T) {
	s := goldenSnapshot()
	dir := t.TempDir()
	path, err := SaveSnapshot(dir, s, CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if sr.Codec() != CodecBinary {
		t.Fatalf("codec = %v", sr.Codec())
	}
	h := sr.Header()
	if h.Routes != nil {
		t.Error("header carries routes")
	}
	if h.IXP != s.IXP || h.Date != s.Date || !h.Partial ||
		!reflect.DeepEqual(h.Members, s.Members) ||
		!reflect.DeepEqual(h.MemberErrors, s.MemberErrors) ||
		h.FilteredCount != s.FilteredCount {
		t.Errorf("header mismatch: %+v", h)
	}
	var got []bgp.Route
	if err := sr.ForEachRoute(func(r bgp.Route) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s.Routes) {
		t.Errorf("streamed routes mismatch:\n want %+v\n got  %+v", s.Routes, got)
	}
	// The column walk is single-shot.
	if err := sr.ForEachRoute(func(bgp.Route) error { return nil }); err == nil {
		t.Error("second ForEachRoute succeeded")
	}
	if _, err := sr.Snapshot(); err == nil {
		t.Error("Snapshot() after ForEachRoute succeeded")
	}
}

// TestSnapshotReaderEagerCodecs drives the same interface over the
// reflection codecs (eager fallback) and checks ForEachRoute stops on
// a callback error.
func TestSnapshotReaderEagerCodecs(t *testing.T) {
	s := sampleSnapshot()
	dir := t.TempDir()
	for _, codec := range Codecs() {
		t.Run(codec.String(), func(t *testing.T) {
			path, err := SaveSnapshot(dir, s, codec)
			if err != nil {
				t.Fatal(err)
			}
			sr, err := OpenSnapshot(path)
			if err != nil {
				t.Fatal(err)
			}
			defer sr.Close()
			if sr.Codec() != codec {
				t.Fatalf("codec = %v, want %v", sr.Codec(), codec)
			}
			if h := sr.Header(); h.IXP != s.IXP || h.Routes != nil {
				t.Errorf("header = %+v", h)
			}
			n := 0
			stop := fmt.Errorf("stop")
			err = sr.ForEachRoute(func(bgp.Route) error {
				n++
				if n == 2 {
					return stop
				}
				return nil
			})
			if err != stop || n != 2 {
				t.Errorf("early stop: err=%v n=%d", err, n)
			}
		})
	}
}

// TestCodecAutoDetect renames each codec's file to a meaningless
// extension and checks LoadSnapshot still decodes it via magic bytes
// and content sniffing.
func TestCodecAutoDetect(t *testing.T) {
	s := sampleSnapshot()
	dir := t.TempDir()
	for _, codec := range Codecs() {
		t.Run(codec.String(), func(t *testing.T) {
			path, err := SaveSnapshot(dir, s, codec)
			if err != nil {
				t.Fatal(err)
			}
			disguised := filepath.Join(dir, "disguised-"+codec.String()+".dat")
			if err := os.Rename(path, disguised); err != nil {
				t.Fatal(err)
			}
			got, err := LoadSnapshot(disguised)
			if err != nil {
				t.Fatal(err)
			}
			want, err := func() (*Snapshot, error) {
				var buf bytes.Buffer
				if err := WriteSnapshot(&buf, s, codec); err != nil {
					return nil, err
				}
				return ReadSnapshot(&buf, codec)
			}()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("sniffed decode mismatch")
			}
		})
	}
}

// TestCodecTelemetry checks the decode instruments and the
// binary-codec intern hit counters flow into a registry.
func TestCodecTelemetry(t *testing.T) {
	reg := telemetry.New()
	SetTelemetry(reg)
	defer SetTelemetry(nil)

	s := goldenSnapshot()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s, CodecBinary); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), CodecBinary); err != nil {
		t.Fatal(err)
	}
	var dump bytes.Buffer
	if err := reg.WritePrometheus(&dump); err != nil {
		t.Fatal(err)
	}
	out := dump.String()
	for _, want := range []string{
		`ixplight_codec_decode_bytes_total{codec="binary"}`,
		`ixplight_codec_decode_routes_total{codec="binary"} 5`,
		`ixplight_codec_intern_hits_total{table="aspath"} 2`,
		`ixplight_codec_intern_misses_total{table="aspath"} 3`,
		`ixplight_codec_intern_hits_total{table="nexthop"} 2`,
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}

// FuzzSnapshotCodecBinary is the round-trip fuzzer: any input that
// decodes must re-encode deterministically to a form that decodes to
// the same snapshot, and structured inputs derived from the fuzz data
// must survive encode→decode exactly.
func FuzzSnapshotCodecBinary(f *testing.F) {
	f.Add(appendBinarySnapshot(nil, goldenSnapshot()))
	f.Add(appendBinarySnapshot(nil, sampleSnapshot()))
	f.Add(appendBinarySnapshot(nil, &Snapshot{}))
	f.Add([]byte(binaryMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: arbitrary bytes → decode → canonical re-encode.
		if s, err := decodeBinarySnapshot(data); err == nil {
			enc := appendBinarySnapshot(nil, s)
			s2, err := decodeBinarySnapshot(enc)
			if err != nil {
				t.Fatalf("re-decode of canonical encoding failed: %v", err)
			}
			if !reflect.DeepEqual(s, s2) {
				t.Fatalf("canonical round trip diverged:\n s  %+v\n s2 %+v", s, s2)
			}
			if enc2 := appendBinarySnapshot(nil, s2); !bytes.Equal(enc, enc2) {
				t.Fatalf("encoder is not deterministic")
			}
		}
		// Direction 2: structured snapshot derived from the data →
		// encode → decode → DeepEqual.
		s := snapshotFromFuzzBytes(data)
		enc := appendBinarySnapshot(nil, s)
		got, err := decodeBinarySnapshot(enc)
		if err != nil {
			t.Fatalf("decode of fresh encoding failed: %v", err)
		}
		if !reflect.DeepEqual(s, got) {
			t.Fatalf("structured round trip mismatch:\n in  %+v\n out %+v", s, got)
		}
	})
}

// snapshotFromFuzzBytes deterministically builds a snapshot from raw
// fuzz bytes, covering both families, all three community flavours,
// nil-vs-empty slices and invalid routes.
func snapshotFromFuzzBytes(data []byte) *Snapshot {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	u32 := func() uint32 {
		return uint32(next()) | uint32(next())<<8 | uint32(next())<<16 | uint32(next())<<24
	}
	s := &Snapshot{
		IXP:           string([]byte{next(), next()}),
		Date:          "2021-10-04",
		FilteredCount: int(int8(next())),
		Partial:       next()&1 == 1,
	}
	for i := byte(0); i < next()%4; i++ {
		s.Members = append(s.Members, Member{
			ASN: u32(), Name: string([]byte{next()}),
			IPv4: next()&1 == 1, IPv6: next()&1 == 1,
		})
	}
	for i := byte(0); i < next()%3; i++ {
		s.MemberErrors = append(s.MemberErrors, MemberError{
			ASN: u32(), Stage: StageRoutes, Err: string([]byte{next()}), Attempts: int(next()),
		})
	}
	nRoutes := int(next() % 8)
	for i := 0; i < nRoutes; i++ {
		var r bgp.Route
		kind := next() % 4
		switch kind {
		case 0: // valid v4
			a := netip.AddrFrom4([4]byte{next(), next(), next(), next()})
			r.Prefix = netip.PrefixFrom(a, int(next())%33)
			r.NextHop = netip.AddrFrom4([4]byte{10, next(), next(), next()})
		case 1: // valid v6
			var a16 [16]byte
			for j := range a16 {
				a16[j] = next()
			}
			r.Prefix = netip.PrefixFrom(netip.AddrFrom16(a16), int(next())%129)
			a16[0] = 0xfd
			r.NextHop = netip.AddrFrom16(a16)
		case 2: // invalid prefix, zero next hop
		case 3: // 4-in-6 next hop
			r.Prefix = netip.PrefixFrom(netip.AddrFrom4([4]byte{next(), next(), 0, 0}), 16)
			r.NextHop = netip.AddrFrom16([16]byte{10: 0xff, 11: 0xff, 12: next(), 15: 1})
		}
		for j := byte(0); j < next()%4; j++ {
			r.ASPath = append(r.ASPath, u32())
		}
		if next()&1 == 1 {
			r.Communities = []bgp.Community{}
		}
		for j := byte(0); j < next()%4; j++ {
			r.Communities = append(r.Communities, bgp.Community(u32()))
		}
		for j := byte(0); j < next()%3; j++ {
			var e bgp.ExtendedCommunity
			for k := range e {
				e[k] = next()
			}
			r.ExtCommunities = append(r.ExtCommunities, e)
		}
		for j := byte(0); j < next()%3; j++ {
			r.LargeCommunities = append(r.LargeCommunities, bgp.LargeCommunity{
				Global: u32(), Local1: u32(), Local2: u32(),
			})
		}
		r.Origin = bgp.Origin(next() % 3)
		r.MED = u32()
		r.LocalPref = u32()
		s.Routes = append(s.Routes, r)
	}
	return s
}
