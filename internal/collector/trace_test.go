package collector

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"ixplight/internal/lg"
	"ixplight/internal/telemetry"
)

// TestCollectTraceTree: with the LG client and the collector sharing
// one registry, a crawl produces a single trace shaped
// collector.collect → collector.neighbor → lg.request — across the
// parallel worker pool — and a flaked neighbor's request span carries
// the retry evidence.
func TestCollectTraceTree(t *testing.T) {
	server := degradedFixture(t, []uint32{100, 200, 300, 400}, 3)
	ts := httptest.NewServer(lg.Flaky(lg.NewServer(server), lg.FlakyOptions{
		NeighborOutage: []uint32{200},
	}))
	defer ts.Close()

	reg := telemetry.New()
	sink := &telemetry.RecordingSink{}
	reg.SetSpanSink(sink)
	client := lg.NewClient(ts.URL, lg.ClientOptions{
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
		MaxInFlight:  4,
		Metrics:      lg.NewMetrics(reg),
	})
	snap, err := CollectWithOptions(context.Background(), client, "2021-10-04", CollectOptions{
		Partial:             true,
		NeighborParallelism: 4,
		Metrics:             NewMetrics(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Partial {
		t.Fatal("AS200 outage did not degrade the snapshot")
	}

	spans := sink.Spans()
	collects := sink.Named("collector.collect")
	if len(collects) != 1 {
		t.Fatalf("collect spans = %d, want 1", len(collects))
	}
	root := collects[0]
	if root.Parent != 0 {
		t.Fatalf("collect span has parent %v, want root", root.Parent)
	}
	neighborIDs := map[telemetry.SpanID]bool{}
	for _, s := range sink.Named("collector.neighbor") {
		if s.Trace != root.Trace {
			t.Fatalf("neighbor span in trace %v, want %v", s.Trace, root.Trace)
		}
		if s.Parent != root.ID {
			t.Fatalf("neighbor span parent %v, want the collect span %v", s.Parent, root.ID)
		}
		neighborIDs[s.ID] = true
	}
	if len(neighborIDs) != 4 {
		t.Fatalf("neighbor spans = %d, want 4", len(neighborIDs))
	}
	underNeighbor, underCollect, retried := 0, 0, 0
	for _, s := range sink.Named("lg.request") {
		if s.Trace != root.Trace {
			t.Fatalf("request span in trace %v, want %v", s.Trace, root.Trace)
		}
		switch {
		case neighborIDs[s.Parent]:
			underNeighbor++
		case s.Parent == root.ID:
			underCollect++ // status + neighbor summary
		default:
			t.Fatalf("request span parent %v is neither the crawl nor a neighbor", s.Parent)
		}
		for _, e := range s.Events {
			if e.Name == "retry" {
				retried++
			}
		}
	}
	if underCollect != 2 {
		t.Errorf("requests parented by the crawl = %d, want 2 (status, neighbors)", underCollect)
	}
	if underNeighbor < 4 {
		t.Errorf("requests parented by neighbors = %d, want >= 4", underNeighbor)
	}
	if retried == 0 {
		t.Error("no retry events recorded despite the AS200 outage")
	}
	for _, s := range spans {
		if s.Stop.Before(s.Start) {
			t.Fatalf("span %s ends before it starts", s.Name)
		}
	}
}

// TestCollectSnapshotIdenticalWithTracing: tracing must observe, not
// perturb — the same crawl with spans on and fully off encodes to
// byte-identical snapshots.
func TestCollectSnapshotIdenticalWithTracing(t *testing.T) {
	server := degradedFixture(t, []uint32{100, 200, 300}, 5)
	ts := httptest.NewServer(lg.NewServer(server))
	defer ts.Close()

	crawl := func(traced bool) []byte {
		opts := CollectOptions{NeighborParallelism: 2}
		copts := lg.ClientOptions{MaxInFlight: 2}
		if traced {
			reg := telemetry.New()
			reg.SetSpanSink(&telemetry.RecordingSink{})
			opts.Metrics = NewMetrics(reg)
			copts.Metrics = lg.NewMetrics(reg)
		}
		client := lg.NewClient(ts.URL, copts)
		snap, err := CollectWithOptions(context.Background(), client, "2021-10-04", opts)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	if on, off := crawl(true), crawl(false); !bytes.Equal(on, off) {
		t.Fatalf("snapshot bytes differ with tracing on vs off:\non:  %.200s\noff: %.200s", on, off)
	}
}
