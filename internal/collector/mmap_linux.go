//go:build linux

package collector

import (
	"io"
	"os"
	"syscall"
)

// mmapFile maps path read-only and returns its bytes plus the closer
// that unmaps them. Empty and non-regular files (where mmap is
// meaningless or would fail) fall back to a plain read. The fd is
// closed immediately after mapping — the mapping outlives it.
func mmapFile(path string) ([]byte, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if !fi.Mode().IsRegular() || size == 0 {
		data, err := io.ReadAll(f)
		if err != nil {
			return nil, nil, err
		}
		return data, nopCloser{}, nil
	}
	if size != int64(int(size)) {
		return nil, nil, syscall.EFBIG
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, &os.PathError{Op: "mmap", Path: path, Err: err}
	}
	return data, munmapCloser(data), nil
}

// munmapCloser unmaps its mapping on Close. Any slice still aliasing
// the mapping (route block bytes, arena-free decode results) faults
// on use after Close — the OpenSnapshotAt lifetime contract.
type munmapCloser []byte

func (m munmapCloser) Close() error { return syscall.Munmap(m) }

type nopCloser struct{}

func (nopCloser) Close() error { return nil }
