package collector

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ixplight/internal/lg"
)

// saveTestCheckpoint writes a small valid checkpoint and returns its
// path and encoded bytes.
func saveTestCheckpoint(t *testing.T) (string, []byte) {
	t.Helper()
	ck := &Checkpoint{IXP: "DE-CIX", Date: "2021-10-04"}
	ck.MarkDone(64500, nil)
	ck.MarkDone(64501, nil)
	path := filepath.Join(t.TempDir(), "checkpoint.json")
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

func TestLoadCheckpointCorrupt(t *testing.T) {
	path, data := saveTestCheckpoint(t)

	// Every truncation point of a valid checkpoint — the file a kill
	// inside AtomicWrite's rename window or a torn copy leaves behind —
	// must surface as ErrCorruptCheckpoint, never as a valid (or
	// silently empty) checkpoint.
	cuts := []int{0, 1, len(data) / 4, len(data) / 2, len(data) - 2}
	for _, cut := range cuts {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadCheckpoint(path)
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Errorf("truncated at %d/%d bytes: err = %v, want ErrCorruptCheckpoint", cut, len(data), err)
		}
	}

	// Garbage bytes and identity-less JSON are corrupt too: a bare {}
	// would otherwise sail through decoding and abort the crawl later
	// with a bogus IXP/date mismatch.
	for name, contents := range map[string]string{
		"garbage":     "\x00\xff\x17not json at all",
		"empty":       "",
		"no-identity": "{}",
		"half-object": `{"ixp": "DE-CIX", "date": "2021-`,
	} {
		if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(path); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Errorf("%s: err = %v, want ErrCorruptCheckpoint", name, err)
		}
	}
}

func TestResumeCheckpointFallsBackOnCorruption(t *testing.T) {
	path, data := saveTestCheckpoint(t)

	// Valid file resumes.
	ck, err := ResumeCheckpoint(path, t.Logf)
	if err != nil || ck == nil || len(ck.Done) != 2 {
		t.Fatalf("valid checkpoint: ck=%v err=%v", ck, err)
	}

	// Missing file is a silent fresh start.
	ck, err = ResumeCheckpoint(filepath.Join(t.TempDir(), "nope.json"), t.Logf)
	if err != nil || ck != nil {
		t.Fatalf("missing checkpoint: ck=%v err=%v, want nil/nil", ck, err)
	}

	// Corrupt file: logged, moved aside, fresh start — never an abort.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var logged []string
	logf := func(format string, args ...any) {
		logged = append(logged, format)
	}
	ck, err = ResumeCheckpoint(path, logf)
	if err != nil || ck != nil {
		t.Fatalf("corrupt checkpoint: ck=%v err=%v, want nil/nil", ck, err)
	}
	if len(logged) != 1 {
		t.Fatalf("corrupt checkpoint logged %d lines, want 1", len(logged))
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt checkpoint still at %s", path)
	}
	aside, err := os.ReadFile(path + ".corrupt")
	if err != nil {
		t.Fatalf("corrupt file not kept aside: %v", err)
	}
	if string(aside) != string(data[:len(data)/2]) {
		t.Fatal("moved-aside corrupt file does not match the original bytes")
	}
}

func TestCollectAfterCorruptCheckpointFallback(t *testing.T) {
	// End to end: a crawl resumed through ResumeCheckpoint over a
	// corrupted file must complete as a fresh crawl, and re-crawl
	// every neighbor (nothing can be trusted from the bad file).
	server := degradedFixture(t, []uint32{100, 200, 300}, 2)
	rec := &pathRecorder{}
	ts := httptest.NewServer(rec.wrap(lg.NewServer(server)))
	defer ts.Close()

	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoint.json")
	if err := os.WriteFile(path, []byte(`{"ixp": "DE-CIX", "date":`), 0o644); err != nil {
		t.Fatal(err)
	}

	ck, err := ResumeCheckpoint(path, t.Logf)
	if err != nil {
		t.Fatalf("ResumeCheckpoint must not abort the run: %v", err)
	}
	client := lg.NewClient(ts.URL, lg.ClientOptions{})
	snap, err := CollectWithOptions(context.Background(), client, "2021-10-04", CollectOptions{
		Partial:        true,
		Checkpoint:     ck, // nil: fresh crawl
		CheckpointPath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Partial || len(snap.Routes) != 6 {
		t.Fatalf("fresh crawl after fallback: partial=%v routes=%d, want complete with 6", snap.Partial, len(snap.Routes))
	}
	for _, asn := range []string{"100", "200", "300"} {
		if n := rec.containing("/neighbors/" + asn + "/routes"); n != 1 {
			t.Errorf("neighbor %s crawled %d times, want 1", asn, n)
		}
	}
	// The completed crawl removed its checkpoint; the corrupt remains
	// stay aside for the post-mortem.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("completed crawl left a checkpoint behind")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("corrupt evidence missing: %v", err)
	}
}

func TestResumeCheckpointKeepsRealErrors(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("running as root: permission errors are not enforceable")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoint.json")
	if err := os.WriteFile(path, []byte("{}"), 0o000); err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeCheckpoint(path, t.Logf); err == nil {
		t.Fatal("permission error must surface, not silently start fresh")
	}
}

func TestCheckpointCorruptErrorMentionsPath(t *testing.T) {
	path, data := saveTestCheckpoint(t)
	if err := os.WriteFile(path, data[:3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCheckpoint(path)
	if err == nil || !strings.Contains(err.Error(), path) {
		t.Fatalf("corrupt error should name the file: %v", err)
	}
}
