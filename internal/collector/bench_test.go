// Benchmarks live in an external test package so they can build
// realistic workloads with ixpgen (which itself imports collector).
package collector_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ixplight/internal/bgp"
	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
	"ixplight/internal/ixpgen"
	"ixplight/internal/lg"
	"ixplight/internal/netutil"
	"ixplight/internal/rs"
)

// benchFixture builds a route server with nPeers members announcing
// routesPer routes each — sized like a mid-size IXP LG so the
// collection benchmarks exercise real pagination and decode work.
func benchFixture(b *testing.B, nPeers, routesPer int) *rs.Server {
	b.Helper()
	server, err := rs.New(rs.Config{Scheme: dictionary.ProfileByName("DE-CIX")})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < nPeers; i++ {
		asn := uint32(100 + i)
		if err := server.AddPeer(rs.Peer{
			ASN: asn, Name: fmt.Sprintf("peer-%d", asn),
			AddrV4: netutil.PeerAddrV4(i + 1), IPv4: true,
		}); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < routesPer; j++ {
			r := bgp.Route{
				Prefix:  netutil.SyntheticV4Prefix(i*routesPer + j),
				NextHop: netutil.PeerAddrV4(i + 1),
				ASPath:  bgp.ASPath{asn},
			}
			if reason, err := server.Announce(asn, r); err != nil || reason != rs.FilterNone {
				b.Fatalf("announce AS%d #%d: %v %v", asn, j, reason, err)
			}
		}
	}
	return server
}

// BenchmarkCollect measures one full LG crawl against a simulated
// 120-neighbor looking glass with 1ms of per-request latency (the
// network round trip that dominates a real crawl). The sequential and
// parallel variants collect byte-identical snapshots; the parallel
// ones overlap the latency across the neighbor worker pool. The flaky
// variants add a 5% transient error rate to show the fan-out keeps
// its advantage when retries are in play.
func BenchmarkCollect(b *testing.B) {
	const (
		nPeers    = 120
		routesPer = 4
		latency   = time.Millisecond
	)
	server := benchFixture(b, nPeers, routesPer)
	cases := []struct {
		name    string
		workers int
		flaky   bool
	}{
		{"sequential", 1, false},
		{"parallel=4", 4, false},
		{"parallel=8", 8, false},
		{"flaky/sequential", 1, true},
		{"flaky/parallel=8", 8, true},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			fopts := lg.FlakyOptions{Latency: latency}
			if tc.flaky {
				fopts.ErrorRate = 0.05
				fopts.Seed = 1
			}
			ts := httptest.NewServer(lg.Flaky(lg.NewServer(server), fopts))
			defer ts.Close()
			// Default transport keeps only 2 idle conns per host; a worker
			// pool would measure connection churn instead of the crawl.
			transport := &http.Transport{MaxIdleConns: 64, MaxIdleConnsPerHost: 64}
			defer transport.CloseIdleConnections()
			hc := &http.Client{Transport: transport}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				client := lg.NewClient(ts.URL, lg.ClientOptions{
					MaxInFlight:  tc.workers,
					MaxRetries:   8,
					RetryBackoff: time.Millisecond,
					MaxBackoff:   2 * time.Millisecond,
					HTTPClient:   hc,
				})
				snap, err := collector.CollectWithOptions(context.Background(), client, "2021-10-04", collector.CollectOptions{
					NeighborParallelism: tc.workers,
					NeighborRetries:     1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(snap.Routes) != nPeers*routesPer {
					b.Fatalf("routes = %d, want %d", len(snap.Routes), nPeers*routesPer)
				}
			}
		})
	}
}

// BenchmarkSnapshotCodec measures serialising one paper-shaped
// snapshot (AMS-IX profile at bench scale) under each of the five
// codecs, in both directions. The gzip variants exercise the pooled
// gzip writers; the reported bytes and bytes_per_route metrics are
// the encoded size, so the speed/size trade-off of the codec ablation
// is visible in one run. The decode direction is the one the analysis
// pipeline pays on every experiment run — the binary codec's arena
// decode is the headline number here.
func BenchmarkSnapshotCodec(b *testing.B) {
	p := ixpgen.ProfileByName("AMS-IX")
	if p == nil {
		b.Fatal("AMS-IX profile missing")
	}
	w, err := ixpgen.Generate(*p, ixpgen.Options{Seed: 42, Scale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	snap := w.Snapshot("2021-10-04")
	nRoutes := float64(len(snap.Routes))
	b.Run("encode", func(b *testing.B) {
		for _, codec := range collector.Codecs() {
			b.Run(codec.String(), func(b *testing.B) {
				var buf bytes.Buffer
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					buf.Reset()
					if err := collector.WriteSnapshot(&buf, snap, codec); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(buf.Len()), "bytes")
				b.ReportMetric(float64(buf.Len())/nRoutes, "bytes_per_route")
			})
		}
	})
	b.Run("decode", func(b *testing.B) {
		for _, codec := range collector.Codecs() {
			b.Run(codec.String(), func(b *testing.B) {
				var buf bytes.Buffer
				if err := collector.WriteSnapshot(&buf, snap, codec); err != nil {
					b.Fatal(err)
				}
				data := buf.Bytes()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					got, err := collector.ReadSnapshot(bytes.NewReader(data), codec)
					if err != nil {
						b.Fatal(err)
					}
					if len(got.Routes) != len(snap.Routes) {
						b.Fatalf("routes = %d, want %d", len(got.Routes), len(snap.Routes))
					}
				}
				b.ReportMetric(float64(len(data)), "bytes")
				b.ReportMetric(float64(len(data))/nRoutes, "bytes_per_route")
			})
		}
	})
}

// BenchmarkSnapshotStream measures the streaming read path over a
// binary snapshot: header-only open (what a dataset index pays per
// file) and a full ForEachRoute walk (what a dataset-wide scan pays
// without ever materialising a []bgp.Route).
func BenchmarkSnapshotStream(b *testing.B) {
	p := ixpgen.ProfileByName("AMS-IX")
	if p == nil {
		b.Fatal("AMS-IX profile missing")
	}
	w, err := ixpgen.Generate(*p, ixpgen.Options{Seed: 42, Scale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	snap := w.Snapshot("2021-10-04")
	var buf bytes.Buffer
	if err := collector.WriteSnapshot(&buf, snap, collector.CodecBinary); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("header", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sr, err := collector.NewSnapshotReader(bytes.NewReader(data), "bench.bin")
			if err != nil {
				b.Fatal(err)
			}
			if sr.Header().IXP != snap.IXP {
				b.Fatal("bad header")
			}
		}
	})
	b.Run("foreach", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sr, err := collector.NewSnapshotReader(bytes.NewReader(data), "bench.bin")
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			if err := sr.ForEachRoute(func(bgp.Route) error { n++; return nil }); err != nil {
				b.Fatal(err)
			}
			if n != len(snap.Routes) {
				b.Fatalf("visited %d routes, want %d", n, len(snap.Routes))
			}
		}
	})
}
