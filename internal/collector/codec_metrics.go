package collector

import (
	"sync/atomic"
	"time"

	"ixplight/internal/telemetry"
)

// codecMetrics instruments the snapshot codecs. Reading snapshots
// happens through package-level functions (ReadSnapshot, LoadSnapshot,
// OpenSnapshot), so like analysis.SetTelemetry the instrument set
// lives in a package-level atomic instead of threading through every
// call site. A disabled state costs one atomic load per decode.
type codecMetrics struct {
	reg           *telemetry.Registry
	decodeSeconds *telemetry.HistogramVec // snapshot decode wall time, by codec
	decodeBytes   *telemetry.CounterVec   // encoded bytes read, by codec
	decodeRoutes  *telemetry.CounterVec   // routes decoded, by codec
	internHits    *telemetry.CounterVec   // encode-side intern table hits, by table
	internMisses  *telemetry.CounterVec   // encode-side intern table misses (new entries)

	deltaEncodeSeconds *telemetry.Histogram  // delta encode wall time
	deltaEncodeBytes   *telemetry.Counter    // delta bytes produced
	deltaApplySeconds  *telemetry.Histogram  // delta apply wall time
	deltaApplyRoutes   *telemetry.Counter    // routes materialized by delta application
	deltaOps           *telemetry.CounterVec // route ops encoded, by op kind
}

var codecTelPtr atomic.Pointer[codecMetrics]

// SetTelemetry instruments the snapshot codec layer (decode time,
// bytes read and the binary codec's intern-table hit ratios) on the
// given registry. Passing nil turns instrumentation back off.
func SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		codecTelPtr.Store(nil)
		return
	}
	codecTelPtr.Store(&codecMetrics{
		reg: reg,
		decodeSeconds: reg.HistogramVec("ixplight_codec_decode_seconds",
			"Snapshot decode wall time by codec.", nil, "codec"),
		decodeBytes: reg.CounterVec("ixplight_codec_decode_bytes_total",
			"Encoded snapshot bytes read by codec.", "codec"),
		decodeRoutes: reg.CounterVec("ixplight_codec_decode_routes_total",
			"Routes decoded from snapshots by codec.", "codec"),
		internHits: reg.CounterVec("ixplight_codec_intern_hits_total",
			"Binary-codec encode lookups answered by an existing intern-table entry, by table.", "table"),
		internMisses: reg.CounterVec("ixplight_codec_intern_misses_total",
			"Binary-codec encode lookups that created a new intern-table entry, by table.", "table"),
		deltaEncodeSeconds: reg.Histogram("ixplight_codec_delta_encode_seconds",
			"Snapshot delta encode wall time.", nil),
		deltaEncodeBytes: reg.Counter("ixplight_codec_delta_encode_bytes_total",
			"Encoded snapshot delta bytes produced."),
		deltaApplySeconds: reg.Histogram("ixplight_codec_delta_apply_seconds",
			"Snapshot delta apply wall time.", nil),
		deltaApplyRoutes: reg.Counter("ixplight_codec_delta_apply_routes_total",
			"Routes materialized by snapshot delta application."),
		deltaOps: reg.CounterVec("ixplight_codec_delta_ops_total",
			"Route ops encoded into snapshot deltas, by op kind (copy counts runs, not routes).", "op"),
	})
}

// codecTel reads the installed instrument set (nil when off).
func codecTel() *codecMetrics { return codecTelPtr.Load() }

// now is the zero-cost clock: the zero time when instrumentation is
// off, which decoded ignores.
func (t *codecMetrics) now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// decoded records one finished snapshot decode: its codec, wall time,
// encoded size and route count.
func (t *codecMetrics) decoded(codec Codec, t0 time.Time, bytes int64, routes int) {
	if t == nil {
		return
	}
	name := codec.String()
	t.decodeSeconds.With(name).ObserveSince(t0)
	t.decodeBytes.With(name).Add(bytes)
	t.decodeRoutes.With(name).Add(int64(routes))
}

// interned publishes one intern table's encode-side hit/miss counts;
// hits/(hits+misses) is the table's dedup ratio.
func (t *codecMetrics) interned(table string, hits, misses int64) {
	if t == nil {
		return
	}
	t.internHits.With(table).Add(hits)
	t.internMisses.With(table).Add(misses)
}

// deltaEncoded records one finished delta encode: wall time, output
// size and the op mix (copies count runs, not the routes they cover).
func (t *codecMetrics) deltaEncoded(t0 time.Time, bytes int64, copies, adds, dels, changes int64) {
	if t == nil {
		return
	}
	t.deltaEncodeSeconds.ObserveSince(t0)
	t.deltaEncodeBytes.Add(bytes)
	t.deltaOps.With("copy").Add(copies)
	t.deltaOps.With("add").Add(adds)
	t.deltaOps.With("del").Add(dels)
	t.deltaOps.With("change").Add(changes)
}

// deltaApplied records one finished delta application.
func (t *codecMetrics) deltaApplied(t0 time.Time, routes int) {
	if t == nil {
		return
	}
	t.deltaApplySeconds.ObserveSince(t0)
	t.deltaApplyRoutes.Add(int64(routes))
}
