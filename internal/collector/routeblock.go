// RouteBlock: column-level access to a decoded CodecBinary route
// block. The consumer this exists for is analysis.IndexFromReader,
// which classifies the interned community tables once and then walks
// the columns without ever assembling a bgp.Route — see the RouteRef
// contract below for what each row carries instead.
package collector

import (
	"net/netip"

	"ixplight/internal/bgp"
)

// RouteBlock is a decoded route block: the intern tables plus the raw
// column bytes. Obtain one from SnapshotReader.RouteBlock. Scan may
// be called any number of times (each call copies the column
// cursors); the table accessors return the decoder's own slices —
// callers must treat them as immutable, and when the block was
// decoded into an Arena they are valid only until that arena's next
// decode.
type RouteBlock struct {
	rb     *binaryRoutes
	prefix []byte // front-coding scratch, reused across Scans
	arena  *Arena // non-nil when the block decodes into an arena
}

// NumRoutes returns the row count.
func (b *RouteBlock) NumRoutes() int { return b.rb.n }

// NextHops returns the interned next-hop table.
func (b *RouteBlock) NextHops() []netip.Addr { return b.rb.nexthops }

// ASPaths returns the interned AS-path table.
func (b *RouteBlock) ASPaths() []bgp.ASPath { return b.rb.paths }

// CommunitySets returns the interned standard-community set table.
// A nil entry is a route encoded with a nil (not empty) slice.
func (b *RouteBlock) CommunitySets() [][]bgp.Community { return b.rb.comms }

// ExtCommunitySets returns the interned extended-community set table.
func (b *RouteBlock) ExtCommunitySets() [][]bgp.ExtendedCommunity { return b.rb.exts }

// LargeCommunitySets returns the interned large-community set table.
func (b *RouteBlock) LargeCommunitySets() [][]bgp.LargeCommunity { return b.rb.larges }

// RouteRef is one row of the column walk: intern-table indices plus
// the scalar attributes, no materialized route. PrefixBytes is the
// canonical encoded prefix (length-prefixed netip.Addr.MarshalBinary
// address followed by one bits byte) aliasing a scratch buffer that
// the next row overwrites — copy it to retain it. Two rows carry the
// same prefix iff their PrefixBytes are equal, and V6 matches what
// bgp.Route.IsIPv6 would report for the assembled route.
type RouteRef struct {
	Row         int
	V6          bool
	PrefixBytes []byte

	NextHop          int // index into NextHops
	Path             int // index into ASPaths
	Communities      int // index into CommunitySets
	ExtCommunities   int // index into ExtCommunitySets
	LargeCommunities int // index into LargeCommunitySets

	Origin    bgp.Origin
	MED       uint32
	LocalPref uint32
}

// colIndex reads one bounds-checked intern-table index.
func colIndex(col *breader, n int) (int, error) {
	v, err := col.uvarint()
	if err != nil {
		return 0, err
	}
	if v >= uint64(n) {
		return 0, errBinaryTruncated
	}
	return int(v), nil
}

// Scan walks the rows in file order, invoking fn with a reused
// RouteRef; a non-nil error from fn stops the walk and is returned.
// The ref and its PrefixBytes are valid only during the callback.
func (b *RouteBlock) Scan(fn func(*RouteRef) error) error {
	rb := b.rb
	if rb.isNil || rb.n == 0 {
		return nil
	}
	// Local cursor copies make the walk re-runnable: the decoded
	// breaders carry the column bytes with offset zero and are never
	// advanced through the block itself.
	prefixCol := breader{b: rb.prefixCol.b}
	nhCol := breader{b: rb.nhCol.b}
	pathCol := breader{b: rb.pathCol.b}
	originCol := breader{b: rb.originCol.b}
	medCol := breader{b: rb.medCol.b}
	lpCol := breader{b: rb.lpCol.b}
	commCol := breader{b: rb.commCol.b}
	extCol := breader{b: rb.extCol.b}
	largeCol := breader{b: rb.largeCol.b}
	var originRun, medRun, lpRun uint64
	var originVal, medVal, lpVal uint64

	prev := b.prefix[:0]
	var ref RouteRef
	for i := 0; i < rb.n; i++ {
		ref.Row = i

		// Prefix: undo the front coding into the scratch buffer.
		shared, err := prefixCol.uvarint()
		if err != nil {
			return err
		}
		suffixLen, err := prefixCol.uvarint()
		if err != nil {
			return err
		}
		if shared > uint64(len(prev)) {
			return errBinaryTruncated
		}
		suffix, err := prefixCol.bytes(int(suffixLen))
		if err != nil {
			return err
		}
		prev = append(prev[:shared], suffix...)
		ref.PrefixBytes = prev
		// The leading uvarint is the marshalled address byte length: 0
		// invalid, 4 v4, ≥16 v6 — exactly the addresses for which
		// netip.Addr.Is6 (and so bgp.Route.IsIPv6) reports true,
		// 4-in-6 mapped forms included.
		pr := breader{b: prev}
		addrLen, err := pr.uvarint()
		if err != nil {
			return err
		}
		ref.V6 = addrLen >= 16

		if ref.NextHop, err = colIndex(&nhCol, len(rb.nexthops)); err != nil {
			return err
		}
		if ref.Path, err = colIndex(&pathCol, len(rb.paths)); err != nil {
			return err
		}

		origin, err := rle(&originCol, &originRun, &originVal)
		if err != nil {
			return err
		}
		ref.Origin = bgp.Origin(origin)
		med, err := rle(&medCol, &medRun, &medVal)
		if err != nil {
			return err
		}
		ref.MED = uint32(med)
		lp, err := rle(&lpCol, &lpRun, &lpVal)
		if err != nil {
			return err
		}
		ref.LocalPref = uint32(lp)

		if ref.Communities, err = colIndex(&commCol, len(rb.comms)); err != nil {
			return err
		}
		if ref.ExtCommunities, err = colIndex(&extCol, len(rb.exts)); err != nil {
			return err
		}
		if ref.LargeCommunities, err = colIndex(&largeCol, len(rb.larges)); err != nil {
			return err
		}

		if err := fn(&ref); err != nil {
			return err
		}
	}
	b.prefix = prev[:0]
	if b.arena != nil {
		b.arena.prefix = b.prefix
	}
	return nil
}
