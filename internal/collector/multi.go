package collector

import (
	"context"
	"sort"
	"sync"
	"time"

	"ixplight/internal/lg"
)

// Target is one looking glass to crawl in a multi-IXP collection run.
type Target struct {
	// Name labels the target in results (usually the IXP name).
	Name string
	// URL is the LG base URL.
	URL string
	// Options tune this target's client. Politeness is per-LG: the §3
	// single-connection rule applies to each looking glass, not to the
	// collection as a whole.
	Options lg.ClientOptions
}

// Result is the outcome of crawling one target. Exactly one of
// Snapshot/Err is set.
type Result struct {
	Target   Target
	Snapshot *Snapshot
	Err      error
	Duration time.Duration
	Requests int
}

// CollectAll crawls every target concurrently (at most parallel at a
// time; 0 means all at once) and returns one result per target, in
// target order. A failing LG does not abort the others — the paper's
// collection had to tolerate individual LG outages.
func CollectAll(ctx context.Context, targets []Target, date string, parallel int) []Result {
	if parallel <= 0 || parallel > len(targets) {
		parallel = len(targets)
	}
	results := make([]Result, len(targets))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, tgt := range targets {
		wg.Add(1)
		go func(i int, tgt Target) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				results[i] = Result{Target: tgt, Err: ctx.Err()}
				return
			}
			start := time.Now()
			client := lg.NewClient(tgt.URL, tgt.Options)
			snap, err := Collect(ctx, client, date)
			results[i] = Result{
				Target:   tgt,
				Snapshot: snap,
				Err:      err,
				Duration: time.Since(start),
				Requests: client.Requests,
			}
		}(i, tgt)
	}
	wg.Wait()
	return results
}

// Succeeded filters the successful snapshots, sorted by IXP name for
// deterministic downstream processing.
func Succeeded(results []Result) []*Snapshot {
	var out []*Snapshot
	for _, r := range results {
		if r.Err == nil && r.Snapshot != nil {
			out = append(out, r.Snapshot)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IXP < out[j].IXP })
	return out
}
