package collector

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"ixplight/internal/lg"
)

// Target is one looking glass to crawl in a multi-IXP collection run.
type Target struct {
	// Name labels the target in results (usually the IXP name).
	Name string
	// URL is the LG base URL.
	URL string
	// Options tune this target's client. Politeness is per-LG: the §3
	// single-connection rule applies to each looking glass, not to the
	// collection as a whole.
	Options lg.ClientOptions
	// Collect tunes this target's fault tolerance (degraded
	// collection, error budget, checkpoint/resume). Checkpoint paths
	// must be distinct per target.
	Collect CollectOptions
}

// Result is the outcome of crawling one target. Exactly one of
// Snapshot/Err is set; a snapshot may be partial (degraded but kept).
type Result struct {
	Target   Target
	Snapshot *Snapshot
	Err      error
	// Partial mirrors Snapshot.Partial: the crawl finished but some
	// neighbors' routes are missing (see Snapshot.MemberErrors).
	Partial  bool
	Duration time.Duration
	// Requests counts HTTP requests sent to the LG, retries and
	// pagination included (lg.Client.HTTPRequests).
	Requests int
	// Calls counts logical API calls admitted by the client (status,
	// neighbors, one routes listing each — lg.Client.Requests). The
	// soak harness reconciles this against the crawl plan: a resumed
	// crawl must spend exactly 2 + remaining-neighbors calls.
	Calls int
	// Stats is the per-crawl summary (retries, slowest neighbor, budget
	// state). Zero when the crawl failed before producing a snapshot.
	Stats CrawlStats
}

// Summary renders a one-line human-readable outcome for logs. Degraded
// crawls additionally report the retry count, the slowest neighbor and
// the error budget's remaining headroom — the numbers an operator
// needs to decide whether a partial snapshot is worth keeping.
func (r Result) Summary() string {
	switch {
	case r.Err != nil:
		return fmt.Sprintf("%s: failed: %v (%d requests, %v)",
			r.Target.Name, r.Err, r.Requests, r.Duration.Round(time.Millisecond))
	case r.Partial:
		budget := "no budget"
		if r.Stats.BudgetTripped {
			budget = "budget tripped"
		} else if r.Stats.BudgetRemaining >= 0 {
			budget = fmt.Sprintf("budget %d left", r.Stats.BudgetRemaining)
		}
		return fmt.Sprintf("%s: partial: %d members, %d routes, %d neighbor errors (%d requests, %v); %d retries, slowest AS%d %v, %s",
			r.Target.Name, len(r.Snapshot.Members), len(r.Snapshot.Routes),
			len(r.Snapshot.MemberErrors), r.Requests, r.Duration.Round(time.Millisecond),
			r.Stats.Retries, r.Stats.SlowestASN, r.Stats.Slowest.Round(time.Millisecond), budget)
	default:
		return fmt.Sprintf("%s: ok: %d members, %d routes (%d requests, %v)",
			r.Target.Name, len(r.Snapshot.Members), len(r.Snapshot.Routes),
			r.Requests, r.Duration.Round(time.Millisecond))
	}
}

// MultiOptions tunes a multi-target collection run. Parallelism
// composes across three layers: TargetParallelism LGs are crawled at
// once, each target's CollectOptions.NeighborParallelism workers fan
// out inside its crawl, and GlobalInFlight caps the HTTP requests in
// flight across all of them under one budget.
type MultiOptions struct {
	// TargetParallelism is how many targets are crawled at once
	// (0 = all at once).
	TargetParallelism int
	// GlobalInFlight caps concurrent LG requests across every target
	// (0 = no global budget). Workers past the cap block until a
	// request slot frees up; per-target politeness (MinInterval,
	// MaxInFlight) still applies underneath.
	GlobalInFlight int
	// Metrics instruments every target's crawl with one shared
	// collector instrument set; targets that set their own
	// CollectOptions.Metrics keep it.
	Metrics *Metrics
	// LGMetrics instruments every target's LG client with one shared
	// instrument set; targets that set their own
	// lg.ClientOptions.Metrics keep it.
	LGMetrics *lg.Metrics
}

// CollectAll crawls every target concurrently (at most parallel at a
// time; 0 means all at once) and returns one result per target, in
// target order. A failing LG does not abort the others — the paper's
// collection had to tolerate individual LG outages — and targets in
// degraded mode contribute partial snapshots instead of failures.
func CollectAll(ctx context.Context, targets []Target, date string, parallel int) []Result {
	return CollectAllWithOptions(ctx, targets, date, MultiOptions{TargetParallelism: parallel})
}

// CollectAllWithOptions is CollectAll with the full multi-target
// parallelism controls. A target whose client options leave
// MaxInFlight unset inherits its own NeighborParallelism, so setting
// one knob per target is enough to go parallel end to end.
func CollectAllWithOptions(ctx context.Context, targets []Target, date string, mopts MultiOptions) []Result {
	parallel := mopts.TargetParallelism
	if parallel <= 0 || parallel > len(targets) {
		parallel = len(targets)
	}
	var budget *lg.RequestBudget
	if mopts.GlobalInFlight > 0 {
		budget = lg.NewRequestBudget(mopts.GlobalInFlight)
	}
	results := make([]Result, len(targets))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, tgt := range targets {
		wg.Add(1)
		go func(i int, tgt Target) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				results[i] = Result{Target: tgt, Err: ctx.Err()}
				return
			}
			start := time.Now()
			copts := tgt.Options
			if copts.MaxInFlight == 0 && tgt.Collect.NeighborParallelism > 1 {
				copts.MaxInFlight = tgt.Collect.NeighborParallelism
			}
			if copts.Budget == nil {
				copts.Budget = budget
			}
			if copts.Metrics == nil {
				copts.Metrics = mopts.LGMetrics
			}
			collectOpts := tgt.Collect
			if collectOpts.Metrics == nil {
				collectOpts.Metrics = mopts.Metrics
			}
			if collectOpts.Stats == nil {
				collectOpts.Stats = new(CrawlStats)
			}
			collectOpts.Metrics.targetStart()
			client := lg.NewClient(tgt.URL, copts)
			snap, err := CollectWithOptions(ctx, client, date, collectOpts)
			collectOpts.Metrics.targetDone()
			results[i] = Result{
				Target:   tgt,
				Snapshot: snap,
				Err:      err,
				Partial:  snap != nil && snap.Partial,
				Duration: time.Since(start),
				Requests: client.HTTPRequests(),
				Calls:    client.Requests(),
				Stats:    *collectOpts.Stats,
			}
		}(i, tgt)
	}
	wg.Wait()
	return results
}

// Succeeded filters the snapshots that were collected (including
// partial ones), sorted by IXP name for deterministic downstream
// processing.
func Succeeded(results []Result) []*Snapshot {
	var out []*Snapshot
	for _, r := range results {
		if r.Err == nil && r.Snapshot != nil {
			out = append(out, r.Snapshot)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IXP < out[j].IXP })
	return out
}

// Degraded filters the results whose snapshot came back partial.
func Degraded(results []Result) []Result {
	var out []Result
	for _, r := range results {
		if r.Partial {
			out = append(out, r)
		}
	}
	return out
}
