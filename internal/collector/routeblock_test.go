package collector

import (
	"bytes"
	"errors"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ixplight/internal/bgp"
)

// encodeBinary returns s in CodecBinary form.
func encodeBinary(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s, CodecBinary); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// blockRoutes re-assembles []bgp.Route from a RouteBlock scan — the
// reference for column/row equivalence. It also pins that RouteRef.V6
// agrees with the assembled route's IsIPv6.
func blockRoutes(t *testing.T, b *RouteBlock) []bgp.Route {
	t.Helper()
	var out []bgp.Route
	err := b.Scan(func(ref *RouteRef) error {
		pr := breader{b: ref.PrefixBytes}
		addr, err := pr.addr()
		if err != nil {
			return err
		}
		bitsByte, err := pr.byte()
		if err != nil {
			return err
		}
		routeBits := int(bitsByte)
		if bitsByte == 0xFF {
			routeBits = -1
		}
		r := bgp.Route{
			Prefix:           netip.PrefixFrom(addr, routeBits),
			NextHop:          b.NextHops()[ref.NextHop],
			ASPath:           b.ASPaths()[ref.Path],
			Origin:           ref.Origin,
			MED:              ref.MED,
			LocalPref:        ref.LocalPref,
			Communities:      b.CommunitySets()[ref.Communities],
			ExtCommunities:   b.ExtCommunitySets()[ref.ExtCommunities],
			LargeCommunities: b.LargeCommunitySets()[ref.LargeCommunities],
		}
		if ref.V6 != r.IsIPv6() {
			t.Errorf("row %d: ref.V6=%v but assembled route IsIPv6=%v (%s)", ref.Row, ref.V6, r.IsIPv6(), r.Prefix)
		}
		if ref.Row != len(out) {
			t.Errorf("ref.Row=%d, want %d", ref.Row, len(out))
		}
		out = append(out, r)
		return nil
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return out
}

// TestErrConsumedSentinel pins the exported sentinel on both
// single-shot paths, via errors.Is.
func TestErrConsumedSentinel(t *testing.T) {
	data := encodeBinary(t, sampleSnapshot())
	sr, err := NewSnapshotReader(bytes.NewReader(data), "x.bin")
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.ForEachRoute(func(bgp.Route) error { return nil }); err != nil {
		t.Fatalf("first walk: %v", err)
	}
	if err := sr.ForEachRoute(func(bgp.Route) error { return nil }); !errors.Is(err, ErrConsumed) {
		t.Errorf("second ForEachRoute: got %v, want ErrConsumed", err)
	}
	if _, err := sr.Snapshot(); !errors.Is(err, ErrConsumed) {
		t.Errorf("Snapshot after ForEachRoute: got %v, want ErrConsumed", err)
	}
}

// TestRouteBlockMatchesRows pins the RouteBlock contract: rows
// re-assembled from the columns equal the materialized decode, Scan
// is re-runnable, and taking a RouteBlock does not consume the
// reader.
func TestRouteBlockMatchesRows(t *testing.T) {
	for _, s := range []*Snapshot{sampleSnapshot(), goldenSnapshot(), {IXP: "X", Date: "2021-10-04"}} {
		data := encodeBinary(t, s)
		want, err := decodeBinarySnapshot(data)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := NewSnapshotReader(bytes.NewReader(data), "x.bin")
		if err != nil {
			t.Fatal(err)
		}
		rb, err := sr.RouteBlock(nil)
		if err != nil {
			t.Fatal(err)
		}
		if rb.NumRoutes() != len(want.Routes) {
			t.Fatalf("NumRoutes=%d, want %d", rb.NumRoutes(), len(want.Routes))
		}
		first := blockRoutes(t, rb)
		again := blockRoutes(t, rb)
		if !reflect.DeepEqual(first, again) {
			t.Error("second Scan diverged from the first")
		}
		for i := range want.Routes {
			if !reflect.DeepEqual(first[i], want.Routes[i]) {
				t.Errorf("row %d: column %+v != materialized %+v", i, first[i], want.Routes[i])
			}
		}
		// The reader is not consumed: a full materialization still works.
		got, err := sr.Snapshot()
		if err != nil {
			t.Fatalf("Snapshot after RouteBlock: %v", err)
		}
		if !reflect.DeepEqual(got.Routes, want.Routes) {
			t.Error("Snapshot after RouteBlock diverged")
		}
	}
}

// TestRouteBlockNonColumnar pins the ErrNotColumnar fallback signal.
func TestRouteBlockNonColumnar(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, sampleSnapshot(), CodecJSON); err != nil {
		t.Fatal(err)
	}
	sr, err := NewSnapshotReader(bytes.NewReader(buf.Bytes()), "x.json")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.RouteBlock(nil); !errors.Is(err, ErrNotColumnar) {
		t.Errorf("got %v, want ErrNotColumnar", err)
	}
}

// TestRouteBlockArenaReuse decodes alternating snapshots into one
// arena: every decode must be exact even though it overwrites the
// previous decode's storage, including across size changes.
func TestRouteBlockArenaReuse(t *testing.T) {
	snaps := []*Snapshot{goldenSnapshot(), sampleSnapshot(), {IXP: "E", Date: "2021-10-04"}, goldenSnapshot()}
	var a Arena
	for round := 0; round < 2; round++ {
		for i, s := range snaps {
			data := encodeBinary(t, s)
			want, err := decodeBinarySnapshot(data)
			if err != nil {
				t.Fatal(err)
			}
			sr, err := NewSnapshotReaderBytes(data, "x.bin")
			if err != nil {
				t.Fatal(err)
			}
			rb, err := sr.RouteBlock(&a)
			if err != nil {
				t.Fatalf("round %d snap %d: %v", round, i, err)
			}
			got := blockRoutes(t, rb)
			for j := range want.Routes {
				if !reflect.DeepEqual(got[j], want.Routes[j]) {
					t.Fatalf("round %d snap %d row %d: %+v != %+v", round, i, j, got[j], want.Routes[j])
				}
			}
			if len(got) != len(want.Routes) {
				t.Fatalf("round %d snap %d: %d rows, want %d", round, i, len(got), len(want.Routes))
			}
		}
	}
}

// TestOpenSnapshotAt exercises the mmap/read open path: header
// without route decode, column access, full materialization equal to
// the streaming loader, and the non-columnar fallback.
func TestOpenSnapshotAt(t *testing.T) {
	dir := t.TempDir()
	s := goldenSnapshot()
	path, err := SaveSnapshot(dir, s, CodecBinary)
	if err != nil {
		t.Fatal(err)
	}

	sr, err := OpenSnapshotAt(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if sr.Codec() != CodecBinary {
		t.Fatalf("codec=%v, want CodecBinary", sr.Codec())
	}
	h := sr.Header()
	if h.IXP != s.IXP || h.Date != s.Date || len(h.Members) != len(s.Members) || h.Routes != nil {
		t.Fatalf("header mismatch: %+v", h)
	}
	rb, err := sr.RouteBlock(nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	got := blockRoutes(t, rb)
	if !reflect.DeepEqual(got, want.Routes) {
		t.Error("OpenSnapshotAt columns diverged from LoadSnapshot")
	}
	full, err := sr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, want) {
		t.Error("OpenSnapshotAt snapshot diverged from LoadSnapshot")
	}

	// Non-binary file: same interface over the eager decode.
	jpath, err := SaveSnapshot(dir, s, CodecJSONGzip)
	if err != nil {
		t.Fatal(err)
	}
	jr, err := OpenSnapshotAt(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	if _, err := jr.RouteBlock(nil); !errors.Is(err, ErrNotColumnar) {
		t.Errorf("json RouteBlock: got %v, want ErrNotColumnar", err)
	}
	jfull, err := jr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jfull.Routes, want.Routes) {
		t.Error("OpenSnapshotAt(json) routes diverged")
	}
}

// TestOpenSnapshotAtErrors pins open failures: missing file, and
// corrupt content detected at open.
func TestOpenSnapshotAtErrors(t *testing.T) {
	if _, err := OpenSnapshotAt(filepath.Join(t.TempDir(), "nope.bin")); err == nil {
		t.Error("missing file must fail")
	}
	p := filepath.Join(t.TempDir(), "short.bin")
	if err := os.WriteFile(p, []byte("IX"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSnapshotAt(p); err == nil {
		t.Error("truncated magic must fail")
	}
}
