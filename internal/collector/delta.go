// Delta snapshot codec: day N of a daily RIB series stored as edits
// against day N-1 instead of a full table. Consecutive IXP snapshots
// overlap overwhelmingly (the paper's twelve-week series re-announces
// almost every route every day), so a delta carries only the churn:
// intern-table *extensions* (next-hops, AS paths and community sets
// first seen on day N, appended to the base tables so existing ids
// keep meaning the same value along the whole chain) plus a varint op
// stream of add / remove / attr-change route edits keyed by
// (prefix, peer). The format is self-describing — "IXPD" magic,
// version, digests of both endpoints — and chains verify: a delta
// refuses to apply to anything but the exact base it was encoded
// against.
//
// Three access layers mirror the full binary codec:
//
//   - EncodeDelta / DeltaEncoder: day N vs day N-1 → delta bytes.
//     The stateful encoder carries the chain's intern tables forward
//     so a whole series can be encoded with each day diffed in one
//     merge pass over two sorted route slices.
//   - ApplyDelta / DeltaApplier: base + delta → day N snapshot.
//     The stateful applier reconstructs a chain day by day, reusing
//     interned attribute values across days.
//   - DeltaReader: header + table extensions + op stream without
//     materializing any route (the RouteBlock analogue), which is
//     what analysis.Index.Advance consumes.
package collector

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"net/netip"
	"os"

	"ixplight/internal/bgp"
)

const deltaMagic = "IXPD"
const deltaVersion = 1

// DeltaExt is the file extension for delta-encoded snapshots; deltas
// live outside the Codec enum (like .mrt archives) because a delta
// file is not self-contained — it needs its base to materialize.
const DeltaExt = ".delta"

// ErrDeltaBaseMismatch reports a delta applied to (or advanced from)
// a snapshot that is not the base it was encoded against.
var ErrDeltaBaseMismatch = errors.New("collector: delta base mismatch")

var errDeltaCorrupt = errors.New("collector: snapshot delta corrupt")

// IsDelta reports whether data starts with the delta magic.
func IsDelta(data []byte) bool {
	return len(data) >= len(deltaMagic) && string(data[:len(deltaMagic)]) == deltaMagic
}

// SnapshotDigest is the canonical identity of a snapshot's content:
// the sha256 of its CodecBinary encoding. For a snapshot written with
// SaveSnapshot(..., CodecBinary) this equals the sha256 of the file
// bytes, so chain verification works against files without decoding.
func SnapshotDigest(s *Snapshot) [sha256.Size]byte {
	return sha256.Sum256(appendBinarySnapshot(nil, s))
}

// Digest returns the sha256 of the reader's CodecBinary encoding.
// Available only for binary snapshots opened in random-access mode
// (OpenSnapshotAt, NewSnapshotReaderBytes); otherwise ok is false.
func (sr *SnapshotReader) Digest() (sum [sha256.Size]byte, ok bool) {
	if sr.codec != CodecBinary || sr.buf == nil {
		return sum, false
	}
	return sha256.Sum256(sr.buf), true
}

// --- chain intern tables --------------------------------------------------

// Table indices for the five interned attribute tables, in wire order.
const (
	tabNH = iota
	tabPath
	tabComm
	tabExt
	tabLarge
	numTabs
)

// rowIDs is one route's attribute ids in the chain table space.
type rowIDs [numTabs]uint64

// deltaTables is the chain's append-only id space: the base
// snapshot's tables in canonical (first-appearance) order, extended
// by each delta in turn, never shrunk. Both endpoints of a delta —
// encoder and applier/Advance — grow identical tables in lockstep, so
// an id means the same value on both sides for the chain's lifetime.
type deltaTables struct {
	tabs [numTabs]*interner
}

func newDeltaTables() *deltaTables {
	var t deltaTables
	for i := range t.tabs {
		t.tabs[i] = newInterner()
	}
	return &t
}

func (t *deltaTables) sizes() (s [numTabs]int) {
	for i, it := range t.tabs {
		s[i] = len(it.idx)
	}
	return s
}

// Attribute key encodings — identical to the intern keys (and table
// body encodings) of appendBinaryRoutes, so extension bodies are just
// the concatenated keys of the new entries.

func appendPathKey(b []byte, p bgp.ASPath) []byte {
	b = appendSliceHeader(b, len(p), p == nil)
	for _, asn := range p {
		b = appendUvarint(b, uint64(asn))
	}
	return b
}

func appendCommKey(b []byte, cs []bgp.Community) []byte {
	b = appendSliceHeader(b, len(cs), cs == nil)
	for _, c := range cs {
		b = appendUvarint(b, uint64(c))
	}
	return b
}

func appendExtKey(b []byte, es []bgp.ExtendedCommunity) []byte {
	b = appendSliceHeader(b, len(es), es == nil)
	for _, e := range es {
		b = append(b, e[:]...)
	}
	return b
}

func appendLargeKey(b []byte, ls []bgp.LargeCommunity) []byte {
	b = appendSliceHeader(b, len(ls), ls == nil)
	for _, l := range ls {
		b = appendUvarint(b, uint64(l.Global))
		b = appendUvarint(b, uint64(l.Local1))
		b = appendUvarint(b, uint64(l.Local2))
	}
	return b
}

// internRoute resolves r's five attributes to chain ids, calling
// onNew(tab, key, elems) for each value seen for the first time (key
// is the canonical encoding, elems the value's element count).
// scratch is reused across calls; the grown slice is returned.
func (t *deltaTables) internRoute(scratch []byte, r *bgp.Route, onNew func(tab int, key []byte, elems int)) (rowIDs, []byte) {
	var ids rowIDs
	intern := func(tab, elems int) {
		idx, isNew := t.tabs[tab].intern(scratch)
		ids[tab] = idx
		if isNew && onNew != nil {
			onNew(tab, scratch, elems)
		}
	}
	scratch = appendAddr(scratch[:0], r.NextHop)
	intern(tabNH, 0)
	scratch = appendPathKey(scratch[:0], r.ASPath)
	intern(tabPath, len(r.ASPath))
	scratch = appendCommKey(scratch[:0], r.Communities)
	intern(tabComm, len(r.Communities))
	scratch = appendExtKey(scratch[:0], r.ExtCommunities)
	intern(tabExt, len(r.ExtCommunities))
	scratch = appendLargeKey(scratch[:0], r.LargeCommunities)
	intern(tabLarge, len(r.LargeCommunities))
	return ids, scratch
}

// routeCompare is Normalize's sort order (family, prefix address,
// prefix length, peer AS) — the delta merge key. It deliberately
// compares the parsed fields, not encoded bytes, so it agrees with
// Normalize for every representable route.
func routeCompare(a, b *bgp.Route) int {
	av6, bv6 := a.IsIPv6(), b.IsIPv6()
	if av6 != bv6 {
		if bv6 {
			return -1
		}
		return 1
	}
	if c := a.Prefix.Addr().Compare(b.Prefix.Addr()); c != 0 {
		return c
	}
	ab, bb := a.Prefix.Bits(), b.Prefix.Bits()
	if ab != bb {
		if ab < bb {
			return -1
		}
		return 1
	}
	ap, bp := a.PeerAS(), b.PeerAS()
	if ap != bp {
		if ap < bp {
			return -1
		}
		return 1
	}
	return 0
}

// checkRouteOrder verifies routes are Normalize-sorted; the merge
// walk is only correct over sorted inputs.
func checkRouteOrder(routes []bgp.Route) error {
	for i := 1; i < len(routes); i++ {
		if routeCompare(&routes[i-1], &routes[i]) > 0 {
			return fmt.Errorf("collector: delta endpoint not normalized (route %d out of order); call Snapshot.Normalize first", i)
		}
	}
	return nil
}

// --- op stream ------------------------------------------------------------

// DeltaOpKind enumerates the route ops of a delta's edit stream.
type DeltaOpKind uint8

const (
	// DeltaCopy keeps the next N base routes unchanged.
	DeltaCopy DeltaOpKind = iota
	// DeltaDel removes the next base route (op carries its tuple).
	DeltaDel
	// DeltaAdd inserts a route absent from the base.
	DeltaAdd
	// DeltaChange replaces the attributes of a (prefix, peer) present
	// in both endpoints; the op carries old and new attribute tuples
	// so consumers can decrement/increment without per-row state.
	DeltaChange
)

func (k DeltaOpKind) String() string {
	switch k {
	case DeltaCopy:
		return "copy"
	case DeltaDel:
		return "del"
	case DeltaAdd:
		return "add"
	case DeltaChange:
		return "change"
	default:
		return fmt.Sprintf("DeltaOpKind(%d)", uint8(k))
	}
}

// DeltaTuple is one route version's attributes: five chain-table ids
// plus the three scalar path attributes.
type DeltaTuple struct {
	NextHop          int
	Path             int
	Communities      int
	ExtCommunities   int
	LargeCommunities int
	Origin           bgp.Origin
	MED              uint32
	LocalPref        uint32
}

// DeltaOp is one decoded edit. Like RouteBlock's RouteRef it is
// reused across Ops callbacks; PrefixBytes aliases the delta buffer
// (the canonical appendPrefix encoding, valid while the reader's
// bytes live).
type DeltaOp struct {
	Kind DeltaOpKind
	// N is the run length of a DeltaCopy.
	N int
	// V6 reports the route family for Del/Add/Change ops.
	V6 bool
	// PrefixBytes is the encoded prefix for Del/Add/Change ops.
	PrefixBytes []byte
	// Old is set for Del and Change; New for Add and Change.
	Old, New DeltaTuple
}

// Prefix decodes the op's prefix.
func (op *DeltaOp) Prefix() (netip.Prefix, error) {
	return decodePrefixBytes(op.PrefixBytes)
}

func decodePrefixBytes(b []byte) (netip.Prefix, error) {
	r := &breader{b: b}
	a, err := r.addr()
	if err != nil {
		return netip.Prefix{}, err
	}
	bits, err := r.byte()
	if err != nil {
		return netip.Prefix{}, err
	}
	if bits == 0xFF {
		return netip.PrefixFrom(a, -1), nil
	}
	return netip.PrefixFrom(a, int(bits)), nil
}

// --- encoder --------------------------------------------------------------

// DeltaEncoder diffs a daily series against its chain tables. Create
// it on day 0 (the full base snapshot) and call Encode once per
// following day; each call diffs against the previous one and
// advances. The encoder retains each snapshot until the next call.
// One-shot use: EncodeDelta.
type DeltaEncoder struct {
	tabs    *deltaTables
	prev    *Snapshot
	prevIDs []rowIDs
	digest  [sha256.Size]byte
	scratch []byte
}

// NewDeltaEncoder starts a chain at base, which must be normalized
// (Normalize-sorted routes). The chain id space starts as base's
// canonical intern tables — identical to its CodecBinary table order.
func NewDeltaEncoder(base *Snapshot) (*DeltaEncoder, error) {
	if err := checkRouteOrder(base.Routes); err != nil {
		return nil, err
	}
	e := &DeltaEncoder{tabs: newDeltaTables()}
	e.prevIDs = make([]rowIDs, len(base.Routes))
	for i := range base.Routes {
		e.prevIDs[i], e.scratch = e.tabs.internRoute(e.scratch, &base.Routes[i], nil)
	}
	e.prev = base
	e.digest = SnapshotDigest(base)
	return e, nil
}

// Base returns the snapshot the next Encode will diff against.
func (e *DeltaEncoder) Base() *Snapshot { return e.prev }

// BaseDigest returns the chain digest of the current base.
func (e *DeltaEncoder) BaseDigest() [sha256.Size]byte { return e.digest }

// Encode emits next as a delta against the encoder's current base
// and makes next the new base. next must be normalized and is
// retained by the encoder.
func (e *DeltaEncoder) Encode(next *Snapshot) ([]byte, error) {
	t0 := codecTel().now()
	if err := checkRouteOrder(next.Routes); err != nil {
		return nil, err
	}
	base := e.prev
	baseSizes := e.tabs.sizes()

	// Intern day N's attributes; first-seen values become the table
	// extensions, in day-N first-appearance order.
	var (
		extBodies [numTabs][]byte
		extCounts [numTabs]int
		extElems  [numTabs]uint64
	)
	nextIDs := make([]rowIDs, len(next.Routes))
	for i := range next.Routes {
		nextIDs[i], e.scratch = e.tabs.internRoute(e.scratch, &next.Routes[i], func(tab int, key []byte, elems int) {
			extBodies[tab] = append(extBodies[tab], key...)
			extCounts[tab]++
			extElems[tab] += uint64(elems)
		})
	}

	// Merge walk over the two sorted route slices, emitting ops.
	// Duplicate (prefix, peer) keys — possible in principle — pair up
	// one-to-one in order on both sides.
	var (
		ops                         []byte
		run                         uint64
		copies, adds, dels, changes int64
	)
	flushRun := func() {
		if run > 0 {
			ops = append(ops, byte(DeltaCopy))
			ops = appendUvarint(ops, run)
			run = 0
			copies++
		}
	}
	appendAttrs := func(b []byte, ids rowIDs, r *bgp.Route) []byte {
		for _, id := range ids {
			b = appendUvarint(b, id)
		}
		b = appendUvarint(b, uint64(r.Origin))
		b = appendUvarint(b, uint64(r.MED))
		return appendUvarint(b, uint64(r.LocalPref))
	}
	appendOpPrefix := func(b []byte, r *bgp.Route) []byte {
		e.scratch = appendPrefix(e.scratch[:0], r.Prefix)
		b = appendUvarint(b, uint64(len(e.scratch)))
		return append(b, e.scratch...)
	}
	i, j := 0, 0
	for i < len(base.Routes) || j < len(next.Routes) {
		c := 0
		switch {
		case i >= len(base.Routes):
			c = 1
		case j >= len(next.Routes):
			c = -1
		default:
			c = routeCompare(&base.Routes[i], &next.Routes[j])
		}
		switch {
		case c < 0: // only in base → removed
			flushRun()
			ops = append(ops, byte(DeltaDel))
			ops = appendOpPrefix(ops, &base.Routes[i])
			ops = appendAttrs(ops, e.prevIDs[i], &base.Routes[i])
			dels++
			i++
		case c > 0: // only in next → announced
			flushRun()
			ops = append(ops, byte(DeltaAdd))
			ops = appendOpPrefix(ops, &next.Routes[j])
			ops = appendAttrs(ops, nextIDs[j], &next.Routes[j])
			adds++
			j++
		default:
			br, nr := &base.Routes[i], &next.Routes[j]
			if e.prevIDs[i] == nextIDs[j] && br.Origin == nr.Origin && br.MED == nr.MED && br.LocalPref == nr.LocalPref {
				run++
			} else {
				flushRun()
				ops = append(ops, byte(DeltaChange))
				ops = appendOpPrefix(ops, nr)
				ops = appendAttrs(ops, e.prevIDs[i], br)
				ops = appendAttrs(ops, nextIDs[j], nr)
				changes++
			}
			i++
			j++
		}
	}
	flushRun()

	// Header: chain linkage (dates, digests, route counts) plus day
	// N's full snapshot header section, so a DeltaReader can answer
	// Header() — and analysis can see day N's member list — without
	// the base.
	self := SnapshotDigest(next)
	var hdr []byte
	hdr = appendString(hdr, base.Date)
	hdr = append(hdr, e.digest[:]...)
	hdr = append(hdr, self[:]...)
	hdr = appendUvarint(hdr, uint64(len(base.Routes)))
	hdr = appendUvarint(hdr, uint64(len(next.Routes)))
	// Nil-vs-empty Routes is digest-relevant (the binary codec
	// distinguishes them), so the delta must preserve it.
	var hdrFlags byte
	if next.Routes == nil {
		hdrFlags |= 1
	}
	hdr = append(hdr, hdrFlags)
	snapHdr := appendHeaderSection(nil, next)
	hdr = appendUvarint(hdr, uint64(len(snapHdr)))
	hdr = append(hdr, snapHdr...)

	buf := append([]byte(nil), deltaMagic...)
	buf = appendUvarint(buf, deltaVersion)
	buf = appendUvarint(buf, uint64(len(hdr)))
	buf = append(buf, hdr...)
	// Table extensions, each prefixed with the base table size it
	// extends (an id-space handshake: apply fails fast when encoder
	// and applier tables drifted, instead of mis-resolving ids).
	buf = appendUvarint(buf, uint64(baseSizes[tabNH]))
	buf = appendUvarint(buf, uint64(extCounts[tabNH]))
	buf = append(buf, extBodies[tabNH]...)
	for tab := tabPath; tab <= tabLarge; tab++ {
		buf = appendUvarint(buf, uint64(baseSizes[tab]))
		buf = appendUvarint(buf, uint64(extCounts[tab]))
		buf = appendUvarint(buf, extElems[tab])
		buf = append(buf, extBodies[tab]...)
	}
	buf = appendColumn(buf, ops)

	e.prev, e.prevIDs, e.digest = next, nextIDs, self
	codecTel().deltaEncoded(t0, int64(len(buf)), copies, adds, dels, changes)
	return buf, nil
}

// EncodeDelta encodes next as a one-shot delta against base. For a
// multi-day chain, keep a DeltaEncoder instead — ids then extend
// across days rather than restarting from base each time.
func EncodeDelta(base, next *Snapshot) ([]byte, error) {
	e, err := NewDeltaEncoder(base)
	if err != nil {
		return nil, err
	}
	return e.Encode(next)
}

// --- reader ---------------------------------------------------------------

// DeltaReader exposes a parsed delta — header, table extensions and
// the op stream — without materializing routes, mirroring RouteBlock.
// The extension tables are decoded eagerly (they are churn-sized, not
// table-sized); ops are decoded on each Ops call.
type DeltaReader struct {
	head       *Snapshot
	baseDate   string
	baseDigest [sha256.Size]byte
	selfDigest [sha256.Size]byte
	baseRoutes int
	nextRoutes int
	routesNil  bool

	baseSizes [numTabs]int

	newNexthops []netip.Addr
	newPaths    []bgp.ASPath
	newComms    [][]bgp.Community
	newExts     [][]bgp.ExtendedCommunity
	newLarges   [][]bgp.LargeCommunity

	ops []byte
}

// OpenDelta reads and parses a delta file.
func OpenDelta(path string) (*DeltaReader, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dr, err := NewDeltaReader(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return dr, nil
}

// NewDeltaReader parses a delta from data, which must stay immutable
// and alive for the reader's lifetime (ops alias it).
func NewDeltaReader(data []byte) (*DeltaReader, error) {
	r := &breader{b: data}
	magic, err := r.bytes(len(deltaMagic))
	if err != nil || string(magic) != deltaMagic {
		return nil, errors.New("collector: not a snapshot delta (bad magic)")
	}
	version, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if version != deltaVersion {
		return nil, fmt.Errorf("collector: unsupported snapshot delta version %d (want %d)", version, deltaVersion)
	}
	hdrLen, err := r.count()
	if err != nil {
		return nil, err
	}
	hdrBytes, err := r.bytes(hdrLen)
	if err != nil {
		return nil, err
	}
	d := &DeltaReader{}
	hr := &breader{b: hdrBytes}
	if d.baseDate, err = hr.string(); err != nil {
		return nil, err
	}
	bd, err := hr.bytes(sha256.Size)
	if err != nil {
		return nil, err
	}
	copy(d.baseDigest[:], bd)
	sd, err := hr.bytes(sha256.Size)
	if err != nil {
		return nil, err
	}
	copy(d.selfDigest[:], sd)
	br, err := hr.uvarint()
	if err != nil {
		return nil, err
	}
	nr, err := hr.uvarint()
	if err != nil {
		return nil, err
	}
	d.baseRoutes, d.nextRoutes = int(br), int(nr)
	// Every added route costs at least two op bytes, so a plausible
	// nextRoutes is bounded by the base plus the delta size; anything
	// larger is a corrupt count that would drive huge allocations.
	if d.baseRoutes < 0 || d.nextRoutes < 0 || d.nextRoutes > d.baseRoutes+len(data) {
		return nil, errDeltaCorrupt
	}
	hdrFlags, err := hr.byte()
	if err != nil {
		return nil, err
	}
	d.routesNil = hdrFlags&1 != 0
	if d.routesNil && d.nextRoutes != 0 {
		return nil, errDeltaCorrupt
	}
	shLen, err := hr.count()
	if err != nil {
		return nil, err
	}
	shBytes, err := hr.bytes(shLen)
	if err != nil {
		return nil, err
	}
	if d.head, err = decodeHeaderSection(&breader{b: shBytes}); err != nil {
		return nil, err
	}
	if hr.remaining() != 0 {
		return nil, errDeltaCorrupt
	}

	// Table extensions.
	if d.baseSizes[tabNH], err = readBaseSize(r); err != nil {
		return nil, err
	}
	nhCount, err := r.count()
	if err != nil {
		return nil, err
	}
	d.newNexthops = make([]netip.Addr, nhCount)
	for i := range d.newNexthops {
		if d.newNexthops[i], err = r.addr(); err != nil {
			return nil, err
		}
	}
	if d.baseSizes[tabPath], err = readBaseSize(r); err != nil {
		return nil, err
	}
	pathCount, pathElems, err := readExtHeader(r)
	if err != nil {
		return nil, err
	}
	pathSlab := make([]uint32, 0, pathElems)
	d.newPaths = make([]bgp.ASPath, pathCount)
	for i := range d.newPaths {
		n, isNil, err := r.sliceHeader()
		if err != nil {
			return nil, err
		}
		if isNil {
			continue
		}
		if len(pathSlab)+n > cap(pathSlab) {
			return nil, errDeltaCorrupt
		}
		start := len(pathSlab)
		for j := 0; j < n; j++ {
			v, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			pathSlab = append(pathSlab, uint32(v))
		}
		d.newPaths[i] = bgp.ASPath(pathSlab[start:len(pathSlab):len(pathSlab)])
	}
	if d.baseSizes[tabComm], err = readBaseSize(r); err != nil {
		return nil, err
	}
	commCount, commElems, err := readExtHeader(r)
	if err != nil {
		return nil, err
	}
	commSlab := make([]bgp.Community, 0, commElems)
	d.newComms = make([][]bgp.Community, commCount)
	for i := range d.newComms {
		n, isNil, err := r.sliceHeader()
		if err != nil {
			return nil, err
		}
		if isNil {
			continue
		}
		if len(commSlab)+n > cap(commSlab) {
			return nil, errDeltaCorrupt
		}
		start := len(commSlab)
		for j := 0; j < n; j++ {
			v, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			commSlab = append(commSlab, bgp.Community(v))
		}
		d.newComms[i] = commSlab[start:len(commSlab):len(commSlab)]
	}
	if d.baseSizes[tabExt], err = readBaseSize(r); err != nil {
		return nil, err
	}
	extCount, extElems, err := readExtHeader(r)
	if err != nil {
		return nil, err
	}
	extSlab := make([]bgp.ExtendedCommunity, 0, extElems)
	d.newExts = make([][]bgp.ExtendedCommunity, extCount)
	for i := range d.newExts {
		n, isNil, err := r.sliceHeader()
		if err != nil {
			return nil, err
		}
		if isNil {
			continue
		}
		if len(extSlab)+n > cap(extSlab) {
			return nil, errDeltaCorrupt
		}
		start := len(extSlab)
		for j := 0; j < n; j++ {
			raw, err := r.bytes(8)
			if err != nil {
				return nil, err
			}
			extSlab = append(extSlab, bgp.ExtendedCommunity(raw))
		}
		d.newExts[i] = extSlab[start:len(extSlab):len(extSlab)]
	}
	if d.baseSizes[tabLarge], err = readBaseSize(r); err != nil {
		return nil, err
	}
	largeCount, largeElems, err := readExtHeader(r)
	if err != nil {
		return nil, err
	}
	largeSlab := make([]bgp.LargeCommunity, 0, largeElems)
	d.newLarges = make([][]bgp.LargeCommunity, largeCount)
	for i := range d.newLarges {
		n, isNil, err := r.sliceHeader()
		if err != nil {
			return nil, err
		}
		if isNil {
			continue
		}
		if len(largeSlab)+n > cap(largeSlab) {
			return nil, errDeltaCorrupt
		}
		start := len(largeSlab)
		for j := 0; j < n; j++ {
			g, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			l1, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			l2, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			largeSlab = append(largeSlab, bgp.LargeCommunity{
				Global: uint32(g), Local1: uint32(l1), Local2: uint32(l2),
			})
		}
		d.newLarges[i] = largeSlab[start:len(largeSlab):len(largeSlab)]
	}

	opsLen, err := r.count()
	if err != nil {
		return nil, err
	}
	if d.ops, err = r.bytes(opsLen); err != nil {
		return nil, err
	}
	if r.remaining() != 0 {
		return nil, errDeltaCorrupt
	}
	return d, nil
}

func readBaseSize(r *breader) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	n := int(v)
	if n < 0 {
		return 0, errDeltaCorrupt
	}
	return n, nil
}

func readExtHeader(r *breader) (count, elems int, err error) {
	if count, err = r.count(); err != nil {
		return 0, 0, err
	}
	if elems, err = r.count(); err != nil {
		return 0, 0, err
	}
	return count, elems, nil
}

// Header returns day N's header-only snapshot (Routes nil); callers
// must not mutate it.
func (d *DeltaReader) Header() *Snapshot { return d.head }

// BaseDate returns the Date of the snapshot this delta applies to.
func (d *DeltaReader) BaseDate() string { return d.baseDate }

// BaseDigest returns the required base's SnapshotDigest.
func (d *DeltaReader) BaseDigest() [sha256.Size]byte { return d.baseDigest }

// SelfDigest returns day N's SnapshotDigest — the BaseDigest the
// chain's next delta must carry.
func (d *DeltaReader) SelfDigest() [sha256.Size]byte { return d.selfDigest }

// BaseRoutes and NextRoutes return the route counts of the two
// endpoints.
func (d *DeltaReader) BaseRoutes() int { return d.baseRoutes }
func (d *DeltaReader) NextRoutes() int { return d.nextRoutes }

// BaseTableSizes returns the per-table base entry counts this delta's
// ids assume, in table wire order (next-hops, AS paths, community
// sets, extended sets, large sets).
func (d *DeltaReader) BaseTableSizes() [5]int { return d.baseSizes }

// Table extension accessors: values first seen on day N, to be
// appended to the base tables in this order. Callers must not mutate.
func (d *DeltaReader) NewNextHops() []netip.Addr                      { return d.newNexthops }
func (d *DeltaReader) NewASPaths() []bgp.ASPath                       { return d.newPaths }
func (d *DeltaReader) NewCommunitySets() [][]bgp.Community            { return d.newComms }
func (d *DeltaReader) NewExtCommunitySets() [][]bgp.ExtendedCommunity { return d.newExts }
func (d *DeltaReader) NewLargeCommunitySets() [][]bgp.LargeCommunity  { return d.newLarges }

// Ops streams the edit ops in order, reusing one DeltaOp across
// calls (copy what you keep). It is re-runnable: each call walks the
// op bytes from the start. Ids are bounds-checked against
// base+extension table sizes before the callback sees them.
func (d *DeltaReader) Ops(fn func(op *DeltaOp) error) error {
	limits := d.baseSizes
	limits[tabNH] += len(d.newNexthops)
	limits[tabPath] += len(d.newPaths)
	limits[tabComm] += len(d.newComms)
	limits[tabExt] += len(d.newExts)
	limits[tabLarge] += len(d.newLarges)

	r := breader{b: d.ops}
	var op DeltaOp
	readTuple := func(t *DeltaTuple) error {
		var ids [numTabs]uint64
		for tab := range ids {
			v, err := r.uvarint()
			if err != nil {
				return err
			}
			if v >= uint64(limits[tab]) {
				return errDeltaCorrupt
			}
			ids[tab] = v
		}
		t.NextHop = int(ids[tabNH])
		t.Path = int(ids[tabPath])
		t.Communities = int(ids[tabComm])
		t.ExtCommunities = int(ids[tabExt])
		t.LargeCommunities = int(ids[tabLarge])
		o, err := r.uvarint()
		if err != nil {
			return err
		}
		t.Origin = bgp.Origin(o)
		med, err := r.uvarint()
		if err != nil {
			return err
		}
		t.MED = uint32(med)
		lp, err := r.uvarint()
		if err != nil {
			return err
		}
		t.LocalPref = uint32(lp)
		return nil
	}
	readPrefix := func() error {
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		if op.PrefixBytes, err = r.bytes(int(n)); err != nil {
			return err
		}
		if len(op.PrefixBytes) == 0 {
			return errDeltaCorrupt
		}
		// appendPrefix's first byte is the single-byte address length
		// varint: ≥16 means a 16-byte (IPv6) address.
		op.V6 = op.PrefixBytes[0] >= 16
		return nil
	}
	for r.remaining() > 0 {
		kind, err := r.byte()
		if err != nil {
			return err
		}
		op = DeltaOp{Kind: DeltaOpKind(kind)}
		switch op.Kind {
		case DeltaCopy:
			n, err := r.uvarint()
			if err != nil {
				return err
			}
			op.N = int(n)
			if op.N <= 0 {
				return errDeltaCorrupt
			}
		case DeltaDel:
			if err := readPrefix(); err != nil {
				return err
			}
			if err := readTuple(&op.Old); err != nil {
				return err
			}
		case DeltaAdd:
			if err := readPrefix(); err != nil {
				return err
			}
			if err := readTuple(&op.New); err != nil {
				return err
			}
		case DeltaChange:
			if err := readPrefix(); err != nil {
				return err
			}
			if err := readTuple(&op.Old); err != nil {
				return err
			}
			if err := readTuple(&op.New); err != nil {
				return err
			}
		default:
			return errDeltaCorrupt
		}
		if err := fn(&op); err != nil {
			return err
		}
	}
	return nil
}

// --- applier --------------------------------------------------------------

// DeltaApplier materializes a delta chain day by day. Create it on
// the chain's base snapshot and call Apply once per delta in order;
// interned attribute values are shared across all materialized days.
// One-shot use: ApplyDelta.
type DeltaApplier struct {
	tabs *deltaTables

	nexthops []netip.Addr
	paths    []bgp.ASPath
	comms    [][]bgp.Community
	exts     [][]bgp.ExtendedCommunity
	larges   [][]bgp.LargeCommunity

	cur     *Snapshot
	curIDs  []rowIDs
	digest  [sha256.Size]byte
	scratch []byte
}

// NewDeltaApplier starts a chain at base (normalized routes).
func NewDeltaApplier(base *Snapshot) (*DeltaApplier, error) {
	if err := checkRouteOrder(base.Routes); err != nil {
		return nil, err
	}
	a := &DeltaApplier{tabs: newDeltaTables()}
	a.curIDs = make([]rowIDs, len(base.Routes))
	for i := range base.Routes {
		r := &base.Routes[i]
		var ids rowIDs
		ids, a.scratch = a.tabs.internRoute(a.scratch, r, func(tab int, _ []byte, _ int) {
			switch tab {
			case tabNH:
				a.nexthops = append(a.nexthops, r.NextHop)
			case tabPath:
				a.paths = append(a.paths, r.ASPath)
			case tabComm:
				a.comms = append(a.comms, r.Communities)
			case tabExt:
				a.exts = append(a.exts, r.ExtCommunities)
			case tabLarge:
				a.larges = append(a.larges, r.LargeCommunities)
			}
		})
		a.curIDs[i] = ids
	}
	a.cur = base
	a.digest = SnapshotDigest(base)
	return a, nil
}

// Current returns the chain's latest materialized snapshot.
func (a *DeltaApplier) Current() *Snapshot { return a.cur }

// Digest returns the chain digest of the current snapshot.
func (a *DeltaApplier) Digest() [sha256.Size]byte { return a.digest }

// extend registers a delta's table extensions: values are appended to
// the id-indexed tables and their canonical keys re-interned so the
// chain's id space stays in lockstep with the encoder's.
func (a *DeltaApplier) extend(d *DeltaReader) error {
	sizes := a.tabs.sizes()
	if sizes != d.BaseTableSizes() {
		return fmt.Errorf("%w: delta expects table sizes %v, chain has %v",
			ErrDeltaBaseMismatch, d.BaseTableSizes(), sizes)
	}
	for _, nh := range d.NewNextHops() {
		a.scratch = appendAddr(a.scratch[:0], nh)
		if _, isNew := a.tabs.tabs[tabNH].intern(a.scratch); !isNew {
			return errDeltaCorrupt // extension value already interned
		}
		a.nexthops = append(a.nexthops, nh)
	}
	for _, p := range d.NewASPaths() {
		a.scratch = appendPathKey(a.scratch[:0], p)
		if _, isNew := a.tabs.tabs[tabPath].intern(a.scratch); !isNew {
			return errDeltaCorrupt
		}
		a.paths = append(a.paths, p)
	}
	for _, cs := range d.NewCommunitySets() {
		a.scratch = appendCommKey(a.scratch[:0], cs)
		if _, isNew := a.tabs.tabs[tabComm].intern(a.scratch); !isNew {
			return errDeltaCorrupt
		}
		a.comms = append(a.comms, cs)
	}
	for _, es := range d.NewExtCommunitySets() {
		a.scratch = appendExtKey(a.scratch[:0], es)
		if _, isNew := a.tabs.tabs[tabExt].intern(a.scratch); !isNew {
			return errDeltaCorrupt
		}
		a.exts = append(a.exts, es)
	}
	for _, ls := range d.NewLargeCommunitySets() {
		a.scratch = appendLargeKey(a.scratch[:0], ls)
		if _, isNew := a.tabs.tabs[tabLarge].intern(a.scratch); !isNew {
			return errDeltaCorrupt
		}
		a.larges = append(a.larges, ls)
	}
	return nil
}

// Apply materializes the delta's day-N snapshot and advances the
// chain. The delta must have been encoded against the chain's current
// snapshot (digest-verified).
func (a *DeltaApplier) Apply(d *DeltaReader) (*Snapshot, error) {
	t0 := codecTel().now()
	if bd := d.BaseDigest(); bd != a.digest {
		return nil, fmt.Errorf("%w: delta for %q base %x…, chain at %x…",
			ErrDeltaBaseMismatch, d.BaseDate(), bd[:4], a.digest[:4])
	}
	if d.BaseRoutes() != len(a.cur.Routes) {
		return nil, fmt.Errorf("%w: delta expects %d base routes, chain has %d",
			ErrDeltaBaseMismatch, d.BaseRoutes(), len(a.cur.Routes))
	}
	if err := a.extend(d); err != nil {
		return nil, err
	}

	next := *d.Header() // copy; Routes filled below
	routes := make([]bgp.Route, 0, d.NextRoutes())
	ids := make([]rowIDs, 0, d.NextRoutes())
	i := 0 // base cursor
	tupleIDs := func(t *DeltaTuple) rowIDs {
		return rowIDs{uint64(t.NextHop), uint64(t.Path), uint64(t.Communities), uint64(t.ExtCommunities), uint64(t.LargeCommunities)}
	}
	buildRoute := func(p netip.Prefix, t *DeltaTuple) bgp.Route {
		return bgp.Route{
			Prefix:           p,
			NextHop:          a.nexthops[t.NextHop],
			ASPath:           a.paths[t.Path],
			Origin:           t.Origin,
			MED:              t.MED,
			LocalPref:        t.LocalPref,
			Communities:      a.comms[t.Communities],
			ExtCommunities:   a.exts[t.ExtCommunities],
			LargeCommunities: a.larges[t.LargeCommunities],
		}
	}
	err := d.Ops(func(op *DeltaOp) error {
		switch op.Kind {
		case DeltaCopy:
			if i+op.N > len(a.cur.Routes) {
				return errDeltaCorrupt
			}
			routes = append(routes, a.cur.Routes[i:i+op.N]...)
			ids = append(ids, a.curIDs[i:i+op.N]...)
			i += op.N
		case DeltaDel:
			if i >= len(a.cur.Routes) || a.curIDs[i] != tupleIDs(&op.Old) {
				return errDeltaCorrupt
			}
			i++
		case DeltaAdd:
			p, err := op.Prefix()
			if err != nil {
				return err
			}
			routes = append(routes, buildRoute(p, &op.New))
			ids = append(ids, tupleIDs(&op.New))
		case DeltaChange:
			if i >= len(a.cur.Routes) || a.curIDs[i] != tupleIDs(&op.Old) {
				return errDeltaCorrupt
			}
			p, err := op.Prefix()
			if err != nil {
				return err
			}
			routes = append(routes, buildRoute(p, &op.New))
			ids = append(ids, tupleIDs(&op.New))
			i++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if i != len(a.cur.Routes) || len(routes) != d.NextRoutes() {
		return nil, errDeltaCorrupt
	}
	if d.routesNil {
		routes = nil
	}
	next.Routes = routes
	a.cur, a.curIDs, a.digest = &next, ids, d.SelfDigest()
	codecTel().deltaApplied(t0, len(routes))
	return &next, nil
}

// Encoder returns a DeltaEncoder continuing this chain: it shares the
// applier's id space and diffs against the applier's current
// snapshot. Used by cmd/collect to append today's crawl to an
// existing on-disk chain. The applier must not Apply further deltas
// once its encoder has Encoded (their states would diverge).
func (a *DeltaApplier) Encoder() *DeltaEncoder {
	return &DeltaEncoder{
		tabs:    a.tabs,
		prev:    a.cur,
		prevIDs: a.curIDs,
		digest:  a.digest,
	}
}

// ApplyDelta materializes delta against base in one shot. For a
// multi-day chain, keep a DeltaApplier instead.
func ApplyDelta(base *Snapshot, delta []byte) (*Snapshot, error) {
	d, err := NewDeltaReader(delta)
	if err != nil {
		return nil, err
	}
	a, err := NewDeltaApplier(base)
	if err != nil {
		return nil, err
	}
	return a.Apply(d)
}
