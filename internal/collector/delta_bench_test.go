package collector

import (
	"fmt"
	"testing"
)

// benchDeltaPair is a bulk day and its churned successor — roughly
// 10% of routes withdrawn/re-tagged/flapped, the fixture scale the
// delta codec is built for.
func benchDeltaPair(n int) (base, next *Snapshot) {
	base = bulkSnapshot(n)
	next = churnSnapshot(base, "2021-10-05", 1)
	return base, next
}

func BenchmarkSnapshotDeltaEncode(b *testing.B) {
	base, next := benchDeltaPair(50000)
	b.ReportAllocs()
	b.ResetTimer()
	var buf []byte
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = EncodeDelta(base, next)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
	b.ReportMetric(float64(len(buf))/float64(len(next.Routes)), "bytes/route")
}

func BenchmarkSnapshotDeltaApply(b *testing.B) {
	base, next := benchDeltaPair(50000)
	delta, err := EncodeDelta(base, next)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(delta)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := ApplyDelta(base, delta)
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Routes) != len(next.Routes) {
			b.Fatal("route count diverged")
		}
	}
}

// BenchmarkSnapshotDeltaChainSize encodes a two-week churned chain
// and reports its storage footprint next to the full binary files it
// replaces — the chain/full ratio is the codec's reason to exist.
func BenchmarkSnapshotDeltaChainSize(b *testing.B) {
	const days = 14
	series := []*Snapshot{bulkSnapshot(20000)}
	fullBytes := len(appendBinarySnapshot(nil, series[0]))
	for d := 1; d < days; d++ {
		next := churnSnapshot(series[d-1], fmt.Sprintf("2021-10-%02d", 4+d), int64(d))
		fullBytes += len(appendBinarySnapshot(nil, next))
		series = append(series, next)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var chainBytes int
	for i := 0; i < b.N; i++ {
		enc, err := NewDeltaEncoder(series[0])
		if err != nil {
			b.Fatal(err)
		}
		chainBytes = len(appendBinarySnapshot(nil, series[0]))
		for d := 1; d < days; d++ {
			buf, err := enc.Encode(series[d])
			if err != nil {
				b.Fatal(err)
			}
			chainBytes += len(buf)
		}
	}
	b.ReportMetric(float64(chainBytes)/float64(fullBytes), "chain/full-bytes")
	b.ReportMetric(float64(chainBytes)/float64(days), "bytes/day")
}
