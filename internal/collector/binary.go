// Binary snapshot codec: a hand-rolled, versioned, length-prefixed
// columnar format built for the pipeline's dominant cost — re-reading
// twelve weeks × eight IXPs of daily snapshots. The encoding exploits
// the redundancy BGP community studies keep re-measuring: AS paths,
// next hops and whole community sets repeat massively across routes,
// so each appears once in a deduplicated intern table and a route row
// is mostly small varint table indices. Decoding allocates from a
// single per-snapshot arena (one backing slab per element type shared
// by all routes' slices) instead of one slice per route, which is
// where the reflection codecs burn their time.
//
// Layout (all integers varint unless noted):
//
//	magic "IXPB" | uvarint version | uvarint header byte length
//	header: IXP, Date (strings), svarint FilteredCount, flags byte
//	        (bit0 Partial), Members, MemberErrors
//	routes: slice header, intern tables (next hops, AS paths,
//	        standard/extended/large community sets), then nine
//	        byte-length-prefixed columns: prefix (front-coded),
//	        next-hop index, AS-path index, origin (RLE), MED (RLE),
//	        local-pref (RLE), and the three community-set indices.
//
// Slice headers distinguish nil from empty (0 = nil, n+1 = len n) so
// round trips are exact under reflect.DeepEqual. The prefix column is
// front-coded: consecutive encoded prefixes share a common byte
// prefix (snapshots are Normalize-sorted by address, so neighbours
// agree on most leading bytes), and each row stores only the shared
// length and the differing suffix.
//
// Aliasing contract: routes decoded from this codec share their
// ASPath and community slices with every other route carrying the
// same interned value. Snapshot consumers (analysis, report, export)
// treat routes as immutable; anything that mutates a route must
// Clone() it first — the same rule rs.Server already follows.
package collector

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"net/netip"

	"ixplight/internal/bgp"
)

// binaryMagic opens every CodecBinary file; LoadSnapshot and
// OpenSnapshot use it to auto-detect the codec regardless of file
// extension.
const binaryMagic = "IXPB"

// binaryVersion is the wire-format version. Bump it on any layout
// change; the golden-fixture test pins version drift.
const binaryVersion = 1

// errBinaryTruncated reports a snapshot cut short mid-structure.
var errBinaryTruncated = errors.New("collector: binary snapshot truncated")

// --- encoding ------------------------------------------------------------

// appendUvarint/appendSvarint are binary.AppendUvarint/AppendVarint
// under the local naming convention.
func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendSvarint(b []byte, v int64) []byte  { return binary.AppendVarint(b, v) }

// appendString writes a length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendSliceHeader writes a nil-preserving slice length: 0 encodes a
// nil slice, n+1 a slice of length n.
func appendSliceHeader(b []byte, n int, isNil bool) []byte {
	if isNil {
		return appendUvarint(b, 0)
	}
	return appendUvarint(b, uint64(n)+1)
}

// interner deduplicates one kind of route attribute during encoding.
// Keys are the attribute's canonical byte encoding; values are table
// indices in first-appearance order, so encoding is deterministic.
type interner struct {
	idx          map[string]uint64
	hits, misses int64
}

func newInterner() *interner { return &interner{idx: make(map[string]uint64)} }

// intern returns the table index for key, recording whether the value
// was already present (the intern-table hit ratio telemetry).
func (it *interner) intern(key []byte) (idx uint64, isNew bool) {
	if i, ok := it.idx[string(key)]; ok {
		it.hits++
		return i, false
	}
	i := uint64(len(it.idx))
	it.idx[string(key)] = i
	it.misses++
	return i, true
}

// appendBinarySnapshot encodes s into buf.
func appendBinarySnapshot(buf []byte, s *Snapshot) []byte {
	buf = append(buf, binaryMagic...)
	buf = appendUvarint(buf, binaryVersion)

	// Header section, byte-length-prefixed so a streaming reader can
	// answer Header() after reading exactly this many bytes, without
	// touching the route block.
	hdr := appendHeaderSection(nil, s)
	buf = appendUvarint(buf, uint64(len(hdr)))
	buf = append(buf, hdr...)

	return appendBinaryRoutes(buf, s.Routes)
}

// appendHeaderSection encodes the header-section fields (everything
// but the route block) into hdr. The delta codec reuses this to carry
// day N's full header inside a delta file, so header layout changes
// stay in one place.
func appendHeaderSection(hdr []byte, s *Snapshot) []byte {
	hdr = appendString(hdr, s.IXP)
	hdr = appendString(hdr, s.Date)
	hdr = appendSvarint(hdr, int64(s.FilteredCount))
	var flags byte
	if s.Partial {
		flags |= 1
	}
	hdr = append(hdr, flags)
	hdr = appendSliceHeader(hdr, len(s.Members), s.Members == nil)
	for _, m := range s.Members {
		hdr = appendUvarint(hdr, uint64(m.ASN))
		hdr = appendString(hdr, m.Name)
		var mf byte
		if m.IPv4 {
			mf |= 1
		}
		if m.IPv6 {
			mf |= 2
		}
		hdr = append(hdr, mf)
	}
	hdr = appendSliceHeader(hdr, len(s.MemberErrors), s.MemberErrors == nil)
	for _, e := range s.MemberErrors {
		hdr = appendUvarint(hdr, uint64(e.ASN))
		hdr = appendString(hdr, e.Stage)
		hdr = appendString(hdr, e.Err)
		hdr = appendSvarint(hdr, int64(e.Attempts))
	}
	return hdr
}

// appendBinaryRoutes encodes the route block: intern tables first,
// then the columns.
func appendBinaryRoutes(buf []byte, routes []bgp.Route) []byte {
	buf = appendSliceHeader(buf, len(routes), routes == nil)

	// Pass 1: intern every repeated attribute, recording per-route
	// table indices. Table bodies are built in first-appearance order
	// so the encoding is deterministic.
	var (
		scratch  []byte
		nhTab    = newInterner()
		pathTab  = newInterner()
		commTab  = newInterner()
		extTab   = newInterner()
		largeTab = newInterner()

		nhBody, pathBody, commBody, extBody, largeBody []byte
		pathElems, commElems, extElems, largeElems     uint64

		nhIdx    = make([]uint64, len(routes))
		pathIdx  = make([]uint64, len(routes))
		commIdx  = make([]uint64, len(routes))
		extIdx   = make([]uint64, len(routes))
		largeIdx = make([]uint64, len(routes))
	)
	for i := range routes {
		r := &routes[i]

		scratch = appendAddr(scratch[:0], r.NextHop)
		idx, isNew := nhTab.intern(scratch)
		nhIdx[i] = idx
		if isNew {
			nhBody = append(nhBody, scratch...)
		}

		scratch = scratch[:0]
		scratch = appendSliceHeader(scratch, len(r.ASPath), r.ASPath == nil)
		for _, asn := range r.ASPath {
			scratch = appendUvarint(scratch, uint64(asn))
		}
		if idx, isNew = pathTab.intern(scratch); isNew {
			pathBody = append(pathBody, scratch...)
			pathElems += uint64(len(r.ASPath))
		}
		pathIdx[i] = idx

		scratch = scratch[:0]
		scratch = appendSliceHeader(scratch, len(r.Communities), r.Communities == nil)
		for _, c := range r.Communities {
			scratch = appendUvarint(scratch, uint64(c))
		}
		if idx, isNew = commTab.intern(scratch); isNew {
			commBody = append(commBody, scratch...)
			commElems += uint64(len(r.Communities))
		}
		commIdx[i] = idx

		scratch = scratch[:0]
		scratch = appendSliceHeader(scratch, len(r.ExtCommunities), r.ExtCommunities == nil)
		for _, e := range r.ExtCommunities {
			scratch = append(scratch, e[:]...)
		}
		if idx, isNew = extTab.intern(scratch); isNew {
			extBody = append(extBody, scratch...)
			extElems += uint64(len(r.ExtCommunities))
		}
		extIdx[i] = idx

		scratch = scratch[:0]
		scratch = appendSliceHeader(scratch, len(r.LargeCommunities), r.LargeCommunities == nil)
		for _, l := range r.LargeCommunities {
			scratch = appendUvarint(scratch, uint64(l.Global))
			scratch = appendUvarint(scratch, uint64(l.Local1))
			scratch = appendUvarint(scratch, uint64(l.Local2))
		}
		if idx, isNew = largeTab.intern(scratch); isNew {
			largeBody = append(largeBody, scratch...)
			largeElems += uint64(len(r.LargeCommunities))
		}
		largeIdx[i] = idx
	}
	codecTel().interned("nexthop", nhTab.hits, nhTab.misses)
	codecTel().interned("aspath", pathTab.hits, pathTab.misses)
	codecTel().interned("community", commTab.hits, commTab.misses)
	codecTel().interned("extcommunity", extTab.hits, extTab.misses)
	codecTel().interned("largecommunity", largeTab.hits, largeTab.misses)

	// Intern tables. Element totals precede the slice tables so the
	// decoder can size each arena slab with a single allocation.
	buf = appendUvarint(buf, uint64(len(nhTab.idx)))
	buf = append(buf, nhBody...)
	buf = appendUvarint(buf, uint64(len(pathTab.idx)))
	buf = appendUvarint(buf, pathElems)
	buf = append(buf, pathBody...)
	buf = appendUvarint(buf, uint64(len(commTab.idx)))
	buf = appendUvarint(buf, commElems)
	buf = append(buf, commBody...)
	buf = appendUvarint(buf, uint64(len(extTab.idx)))
	buf = appendUvarint(buf, extElems)
	buf = append(buf, extBody...)
	buf = appendUvarint(buf, uint64(len(largeTab.idx)))
	buf = appendUvarint(buf, largeElems)
	buf = append(buf, largeBody...)

	// Columns, each byte-length-prefixed so a reader can set up
	// per-column cursors without a parsing pre-pass.
	var col, prev []byte

	// Prefix column, front-coded against the previous row.
	for i := range routes {
		scratch = appendPrefix(scratch[:0], routes[i].Prefix)
		shared := commonPrefixLen(prev, scratch)
		col = appendUvarint(col, uint64(shared))
		col = appendUvarint(col, uint64(len(scratch)-shared))
		col = append(col, scratch[shared:]...)
		prev = append(prev[:0], scratch...)
	}
	buf = appendColumn(buf, col)

	col = appendIndexColumn(col[:0], nhIdx)
	buf = appendColumn(buf, col)
	col = appendIndexColumn(col[:0], pathIdx)
	buf = appendColumn(buf, col)

	// Origin / MED / LocalPref columns are run-length encoded: route
	// servers leave them at a handful of values, so whole snapshots
	// collapse to a few (run, value) pairs.
	col = col[:0]
	for i := 0; i < len(routes); {
		j := i
		for j < len(routes) && routes[j].Origin == routes[i].Origin {
			j++
		}
		col = appendUvarint(col, uint64(j-i))
		col = appendUvarint(col, uint64(routes[i].Origin))
		i = j
	}
	buf = appendColumn(buf, col)
	col = col[:0]
	for i := 0; i < len(routes); {
		j := i
		for j < len(routes) && routes[j].MED == routes[i].MED {
			j++
		}
		col = appendUvarint(col, uint64(j-i))
		col = appendUvarint(col, uint64(routes[i].MED))
		i = j
	}
	buf = appendColumn(buf, col)
	col = col[:0]
	for i := 0; i < len(routes); {
		j := i
		for j < len(routes) && routes[j].LocalPref == routes[i].LocalPref {
			j++
		}
		col = appendUvarint(col, uint64(j-i))
		col = appendUvarint(col, uint64(routes[i].LocalPref))
		i = j
	}
	buf = appendColumn(buf, col)

	col = appendIndexColumn(col[:0], commIdx)
	buf = appendColumn(buf, col)
	col = appendIndexColumn(col[:0], extIdx)
	buf = appendColumn(buf, col)
	col = appendIndexColumn(col[:0], largeIdx)
	buf = appendColumn(buf, col)
	return buf
}

// appendColumn writes one byte-length-prefixed column.
func appendColumn(buf, col []byte) []byte {
	buf = appendUvarint(buf, uint64(len(col)))
	return append(buf, col...)
}

// appendIndexColumn writes one table-index column.
func appendIndexColumn(col []byte, idx []uint64) []byte {
	for _, v := range idx {
		col = appendUvarint(col, v)
	}
	return col
}

// appendAddr writes a length-prefixed address in
// netip.Addr.MarshalBinary form (0 bytes invalid, 4 v4, 16 v6,
// 16+zone for zoned), which UnmarshalBinary reverses exactly —
// including 4-in-6 mapped forms.
func appendAddr(b []byte, a netip.Addr) []byte {
	raw, _ := a.MarshalBinary() // cannot fail
	b = appendUvarint(b, uint64(len(raw)))
	return append(b, raw...)
}

// appendPrefix writes a prefix as its address bytes (length-prefixed,
// zone-free by netip.Prefix construction) followed by one bits byte;
// 0xFF encodes the invalid bits value -1.
func appendPrefix(b []byte, p netip.Prefix) []byte {
	b = appendAddr(b, p.Addr())
	return append(b, byte(p.Bits()))
}

// commonPrefixLen returns the length of the longest common prefix of
// a and b.
func commonPrefixLen(a, b []byte) int {
	n := min(len(a), len(b))
	i := 0
	for ; i+8 <= n; i += 8 {
		x := binary.LittleEndian.Uint64(a[i:]) ^ binary.LittleEndian.Uint64(b[i:])
		if x != 0 {
			return i + bits.TrailingZeros64(x)/8
		}
	}
	for ; i < n; i++ {
		if a[i] != b[i] {
			break
		}
	}
	return i
}

// --- decoding ------------------------------------------------------------

// breader is a bounds-checked cursor over an encoded snapshot.
type breader struct {
	b   []byte
	off int
}

func (r *breader) remaining() int { return len(r.b) - r.off }

// uvarint is the decoder's hottest call (every index, count, length
// and column value goes through it), so the LEB128 loop is written
// out here instead of calling binary.Uvarint: the single-byte case
// returns immediately, and the general loop avoids re-slicing r.b on
// every call. Semantics match binary.Uvarint, with truncation and
// >64-bit overflow both reported as errBinaryTruncated.
func (r *breader) uvarint() (uint64, error) {
	b, i := r.b, r.off
	if i < len(b) && b[i] < 0x80 {
		r.off = i + 1
		return uint64(b[i]), nil
	}
	var v uint64
	for s := uint(0); s < 64; s += 7 {
		if i >= len(b) {
			return 0, errBinaryTruncated
		}
		c := b[i]
		i++
		if c < 0x80 {
			if s == 63 && c > 1 {
				return 0, errBinaryTruncated // value overflows uint64
			}
			r.off = i
			return v | uint64(c)<<s, nil
		}
		v |= uint64(c&0x7f) << s
	}
	return 0, errBinaryTruncated // varint longer than 10 bytes
}

func (r *breader) svarint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, errBinaryTruncated
	}
	r.off += n
	return v, nil
}

func (r *breader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, errBinaryTruncated
	}
	b := r.b[r.off]
	r.off++
	return b, nil
}

func (r *breader) bytes(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, errBinaryTruncated
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *breader) string() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// sliceHeader reverses appendSliceHeader. The returned length is
// bounded by the remaining bytes (each element costs at least one
// byte), so a corrupt count cannot trigger a huge allocation.
func (r *breader) sliceHeader() (n int, isNil bool, err error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, false, err
	}
	if v == 0 {
		return 0, true, nil
	}
	n = int(v - 1)
	if n < 0 || n > r.remaining() {
		return 0, false, errBinaryTruncated
	}
	return n, false, nil
}

// count reads a table/element count with the same remaining-bytes
// bound as sliceHeader.
func (r *breader) count() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	n := int(v)
	if n < 0 || n > r.remaining() {
		return 0, errBinaryTruncated
	}
	return n, nil
}

func (r *breader) addr() (netip.Addr, error) {
	n, err := r.uvarint()
	if err != nil {
		return netip.Addr{}, err
	}
	raw, err := r.bytes(int(n))
	if err != nil {
		return netip.Addr{}, err
	}
	var a netip.Addr
	if err := a.UnmarshalBinary(raw); err != nil {
		return netip.Addr{}, fmt.Errorf("collector: binary snapshot: %w", err)
	}
	return a, nil
}

// decodeBinaryHeader parses the magic, version and length-prefixed
// header section, leaving the cursor at the route block.
func decodeBinaryHeader(r *breader) (*Snapshot, error) {
	magic, err := r.bytes(len(binaryMagic))
	if err != nil || string(magic) != binaryMagic {
		return nil, errors.New("collector: not a binary snapshot (bad magic)")
	}
	version, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("collector: unsupported binary snapshot version %d (want %d)", version, binaryVersion)
	}
	hdrLen, err := r.count()
	if err != nil {
		return nil, err
	}
	hdr, err := r.bytes(hdrLen)
	if err != nil {
		return nil, err
	}
	s, err := decodeHeaderSection(&breader{b: hdr})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// decodeHeaderSection parses the header bytes (everything between the
// length prefix and the route block). The section must be consumed
// exactly — trailing bytes mean a corrupt length prefix.
func decodeHeaderSection(r *breader) (*Snapshot, error) {
	s := &Snapshot{}
	var err error
	if s.IXP, err = r.string(); err != nil {
		return nil, err
	}
	if s.Date, err = r.string(); err != nil {
		return nil, err
	}
	fc, err := r.svarint()
	if err != nil {
		return nil, err
	}
	s.FilteredCount = int(fc)
	flags, err := r.byte()
	if err != nil {
		return nil, err
	}
	s.Partial = flags&1 != 0

	n, isNil, err := r.sliceHeader()
	if err != nil {
		return nil, err
	}
	if !isNil {
		s.Members = make([]Member, n)
		for i := range s.Members {
			m := &s.Members[i]
			asn, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			m.ASN = uint32(asn)
			if m.Name, err = r.string(); err != nil {
				return nil, err
			}
			mf, err := r.byte()
			if err != nil {
				return nil, err
			}
			m.IPv4, m.IPv6 = mf&1 != 0, mf&2 != 0
		}
	}
	n, isNil, err = r.sliceHeader()
	if err != nil {
		return nil, err
	}
	if !isNil {
		s.MemberErrors = make([]MemberError, n)
		for i := range s.MemberErrors {
			e := &s.MemberErrors[i]
			asn, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			e.ASN = uint32(asn)
			if e.Stage, err = r.string(); err != nil {
				return nil, err
			}
			if e.Err, err = r.string(); err != nil {
				return nil, err
			}
			attempts, err := r.svarint()
			if err != nil {
				return nil, err
			}
			e.Attempts = int(attempts)
		}
	}
	if r.remaining() != 0 {
		return nil, errBinaryTruncated
	}
	return s, nil
}

// binaryRoutes is a decoded route block positioned before the first
// route: intern tables materialised into arena-backed slices plus one
// sequential cursor per column. next() yields routes in order.
type binaryRoutes struct {
	n     int
	isNil bool

	nexthops []netip.Addr
	paths    []bgp.ASPath
	comms    [][]bgp.Community
	exts     [][]bgp.ExtendedCommunity
	larges   [][]bgp.LargeCommunity

	prefixCol, nhCol, pathCol breader
	originCol, medCol, lpCol  breader
	commCol, extCol, largeCol breader
	originRun, medRun, lpRun  uint64
	originVal, medVal, lpVal  uint64
	prefixPrev                []byte
}

// decodeBinaryRoutes parses the route block that follows the header,
// allocating fresh slabs the decoded routes may alias forever.
func decodeBinaryRoutes(r *breader) (*binaryRoutes, error) {
	return decodeBinaryRoutesArena(r, nil)
}

// decodeBinaryRoutesArena is decodeBinaryRoutes with the slab and
// intern-table storage drawn from a (a nil arena allocates fresh).
// Arena-backed results are valid only until the arena's next decode;
// see the Arena doc for the aliasing contract.
func decodeBinaryRoutesArena(r *breader, a *Arena) (*binaryRoutes, error) {
	var (
		pathSlabStore  *[]uint32
		commSlabStore  *[]bgp.Community
		extSlabStore   *[]bgp.ExtendedCommunity
		largeSlabStore *[]bgp.LargeCommunity

		nhStore     *[]netip.Addr
		pathsStore  *[]bgp.ASPath
		commsStore  *[][]bgp.Community
		extsStore   *[][]bgp.ExtendedCommunity
		largesStore *[][]bgp.LargeCommunity
	)
	if a != nil {
		pathSlabStore, commSlabStore = &a.pathSlab, &a.commSlab
		extSlabStore, largeSlabStore = &a.extSlab, &a.largeSlab
		nhStore, pathsStore = &a.nexthops, &a.paths
		commsStore, extsStore, largesStore = &a.comms, &a.exts, &a.larges
	}

	rb := &binaryRoutes{}
	var err error
	if rb.n, rb.isNil, err = r.sliceHeader(); err != nil {
		return nil, err
	}

	// Next-hop table.
	nhCount, err := r.count()
	if err != nil {
		return nil, err
	}
	rb.nexthops = tableFor(nhStore, nhCount)
	for i := range rb.nexthops {
		if rb.nexthops[i], err = r.addr(); err != nil {
			return nil, err
		}
	}

	// AS-path table: every path's elements live in one uint32 slab.
	pathCount, err := r.count()
	if err != nil {
		return nil, err
	}
	pathElems, err := r.count()
	if err != nil {
		return nil, err
	}
	pathSlab := slabFor(pathSlabStore, pathElems)
	rb.paths = tableFor(pathsStore, pathCount)
	for i := range rb.paths {
		n, isNil, err := r.sliceHeader()
		if err != nil {
			return nil, err
		}
		if isNil {
			continue
		}
		if len(pathSlab)+n > cap(pathSlab) {
			return nil, errBinaryTruncated
		}
		start := len(pathSlab)
		for j := 0; j < n; j++ {
			v, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			pathSlab = append(pathSlab, uint32(v))
		}
		rb.paths[i] = bgp.ASPath(pathSlab[start:len(pathSlab):len(pathSlab)])
	}

	// Standard-community set table, same slab scheme.
	commCount, err := r.count()
	if err != nil {
		return nil, err
	}
	commElems, err := r.count()
	if err != nil {
		return nil, err
	}
	commSlab := slabFor(commSlabStore, commElems)
	rb.comms = tableFor(commsStore, commCount)
	for i := range rb.comms {
		n, isNil, err := r.sliceHeader()
		if err != nil {
			return nil, err
		}
		if isNil {
			continue
		}
		if len(commSlab)+n > cap(commSlab) {
			return nil, errBinaryTruncated
		}
		start := len(commSlab)
		for j := 0; j < n; j++ {
			v, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			commSlab = append(commSlab, bgp.Community(v))
		}
		rb.comms[i] = commSlab[start:len(commSlab):len(commSlab)]
	}

	// Extended-community set table.
	extCount, err := r.count()
	if err != nil {
		return nil, err
	}
	extElems, err := r.count()
	if err != nil {
		return nil, err
	}
	extSlab := slabFor(extSlabStore, extElems)
	rb.exts = tableFor(extsStore, extCount)
	for i := range rb.exts {
		n, isNil, err := r.sliceHeader()
		if err != nil {
			return nil, err
		}
		if isNil {
			continue
		}
		if len(extSlab)+n > cap(extSlab) {
			return nil, errBinaryTruncated
		}
		start := len(extSlab)
		for j := 0; j < n; j++ {
			raw, err := r.bytes(8)
			if err != nil {
				return nil, err
			}
			extSlab = append(extSlab, bgp.ExtendedCommunity(raw))
		}
		rb.exts[i] = extSlab[start:len(extSlab):len(extSlab)]
	}

	// Large-community set table.
	largeCount, err := r.count()
	if err != nil {
		return nil, err
	}
	largeElems, err := r.count()
	if err != nil {
		return nil, err
	}
	largeSlab := slabFor(largeSlabStore, largeElems)
	rb.larges = tableFor(largesStore, largeCount)
	for i := range rb.larges {
		n, isNil, err := r.sliceHeader()
		if err != nil {
			return nil, err
		}
		if isNil {
			continue
		}
		if len(largeSlab)+n > cap(largeSlab) {
			return nil, errBinaryTruncated
		}
		start := len(largeSlab)
		for j := 0; j < n; j++ {
			g, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			l1, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			l2, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			largeSlab = append(largeSlab, bgp.LargeCommunity{
				Global: uint32(g), Local1: uint32(l1), Local2: uint32(l2),
			})
		}
		rb.larges[i] = largeSlab[start:len(largeSlab):len(largeSlab)]
	}

	// Column cursors.
	for _, col := range []*breader{
		&rb.prefixCol, &rb.nhCol, &rb.pathCol,
		&rb.originCol, &rb.medCol, &rb.lpCol,
		&rb.commCol, &rb.extCol, &rb.largeCol,
	} {
		n, err := r.count()
		if err != nil {
			return nil, err
		}
		raw, err := r.bytes(n)
		if err != nil {
			return nil, err
		}
		col.b = raw
	}
	return rb, nil
}

// tableEntry bounds-checks one column index against its intern table.
func tableLookup[T any](col *breader, table []T) (T, error) {
	var zero T
	idx, err := col.uvarint()
	if err != nil {
		return zero, err
	}
	if idx >= uint64(len(table)) {
		return zero, errBinaryTruncated
	}
	return table[idx], nil
}

// rle advances one run-length-encoded column cursor.
func rle(col *breader, run, val *uint64) (uint64, error) {
	if *run == 0 {
		var err error
		if *run, err = col.uvarint(); err != nil {
			return 0, err
		}
		if *run == 0 {
			return 0, errBinaryTruncated
		}
		if *val, err = col.uvarint(); err != nil {
			return 0, err
		}
	}
	*run--
	return *val, nil
}

// next decodes the next route. Callers invoke it exactly rb.n times.
func (rb *binaryRoutes) next() (bgp.Route, error) {
	var r bgp.Route

	// Prefix: front-coded bytes, then address + bits byte.
	shared, err := rb.prefixCol.uvarint()
	if err != nil {
		return r, err
	}
	suffixLen, err := rb.prefixCol.uvarint()
	if err != nil {
		return r, err
	}
	if shared > uint64(len(rb.prefixPrev)) {
		return r, errBinaryTruncated
	}
	suffix, err := rb.prefixCol.bytes(int(suffixLen))
	if err != nil {
		return r, err
	}
	rb.prefixPrev = append(rb.prefixPrev[:shared], suffix...)
	pr := breader{b: rb.prefixPrev}
	addr, err := pr.addr()
	if err != nil {
		return r, err
	}
	bitsByte, err := pr.byte()
	if err != nil || pr.remaining() != 0 {
		return r, errBinaryTruncated
	}
	routeBits := int(bitsByte)
	if bitsByte == 0xFF {
		routeBits = -1
	}
	r.Prefix = netip.PrefixFrom(addr, routeBits)

	if r.NextHop, err = tableLookup(&rb.nhCol, rb.nexthops); err != nil {
		return r, err
	}
	if r.ASPath, err = tableLookup(&rb.pathCol, rb.paths); err != nil {
		return r, err
	}

	origin, err := rle(&rb.originCol, &rb.originRun, &rb.originVal)
	if err != nil {
		return r, err
	}
	r.Origin = bgp.Origin(origin)
	med, err := rle(&rb.medCol, &rb.medRun, &rb.medVal)
	if err != nil {
		return r, err
	}
	r.MED = uint32(med)
	lp, err := rle(&rb.lpCol, &rb.lpRun, &rb.lpVal)
	if err != nil {
		return r, err
	}
	r.LocalPref = uint32(lp)

	if r.Communities, err = tableLookup(&rb.commCol, rb.comms); err != nil {
		return r, err
	}
	if r.ExtCommunities, err = tableLookup(&rb.extCol, rb.exts); err != nil {
		return r, err
	}
	if r.LargeCommunities, err = tableLookup(&rb.largeCol, rb.larges); err != nil {
		return r, err
	}
	return r, nil
}

// decodeBinarySnapshot decodes a complete CodecBinary snapshot.
func decodeBinarySnapshot(data []byte) (*Snapshot, error) {
	r := &breader{b: data}
	s, err := decodeBinaryHeader(r)
	if err != nil {
		return nil, err
	}
	rb, err := decodeBinaryRoutes(r)
	if err != nil {
		return nil, err
	}
	if !rb.isNil {
		s.Routes = make([]bgp.Route, rb.n)
		for i := range s.Routes {
			if s.Routes[i], err = rb.next(); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}
