package collector

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ixplight/internal/bgp"
	"ixplight/internal/lg"
)

// neighborOutcome is one crawl-plan entry's result. attempted is false
// when the crawl stopped (budget trip, strict-mode failure or
// cancellation) before the neighbor's first request went out — the
// replay in CollectWithOptions decides what that means.
type neighborOutcome struct {
	attempted bool
	routes    []bgp.Route
	attempts  int
	dur       time.Duration
	err       error
}

// checkpointWriter serializes checkpoint updates: workers of a
// parallel crawl all mark progress through one writer, so the
// checkpoint file is written by exactly one goroutine at a time and
// every save sees a consistent Done/Routes pair.
type checkpointWriter struct {
	mu   sync.Mutex
	prog *Checkpoint
	path string
	m    *Metrics
}

// markDone records one completed neighbor and persists the checkpoint
// when a path is configured.
func (w *checkpointWriter) markDone(asn uint32, routes []bgp.Route) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.prog.MarkDone(asn, routes)
	if w.path == "" {
		return nil
	}
	t0 := w.m.now()
	err := w.prog.Save(w.path)
	w.m.checkpointSaved(t0)
	return err
}

// crawlSequential is the single-connection crawl: one neighbor at a
// time, in neighbor order, stopping early when strict mode hits a
// failure or the error budget trips — so a dead LG sees exactly as
// many requests as it did before the crawl went parallel.
func crawlSequential(ctx context.Context, client *lg.Client, crawl []uint32, opts CollectOptions, saver *checkpointWriter) ([]neighborOutcome, error) {
	outcomes := make([]neighborOutcome, len(crawl))
	consecutive := 0
	for i, asn := range crawl {
		routes, attempts, dur, err := crawlNeighbor(ctx, client, asn, opts.NeighborRetries, opts.Metrics)
		outcomes[i] = neighborOutcome{attempted: true, routes: routes, attempts: attempts, dur: dur, err: err}
		if err != nil {
			if !opts.Partial || ctx.Err() != nil {
				// The replay surfaces this outcome as the crawl error.
				return outcomes, nil
			}
			consecutive++
			if opts.ErrorBudget > 0 && consecutive >= opts.ErrorBudget {
				return outcomes, nil
			}
			continue
		}
		consecutive = 0
		if serr := saver.markDone(asn, routes); serr != nil {
			return nil, fmt.Errorf("collector: checkpoint: %w", serr)
		}
	}
	return outcomes, nil
}

// crawlParallel fans the crawl plan across a worker pool. Workers
// claim neighbors strictly in plan order, so at any moment the
// attempted set is a prefix of the plan plus at most workers-1
// in-flight entries. A frontier walk over the contiguous completed
// prefix re-runs the sequential budget arithmetic as results land;
// once it proves the sequential crawl would have stopped (budget
// tripped, strict-mode failure, checkpoint save error), no new
// neighbors are claimed — in-flight ones drain and the replay demotes
// any overshoot to skipped.
func crawlParallel(ctx context.Context, client *lg.Client, crawl []uint32, opts CollectOptions, saver *checkpointWriter, workers int) ([]neighborOutcome, error) {
	outcomes := make([]neighborOutcome, len(crawl))
	var (
		mu          sync.Mutex
		next        int
		frontier    int
		consecutive int
		stopped     bool
		saveErr     error
		completed   = make([]bool, len(crawl))
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if stopped || next >= len(crawl) || ctx.Err() != nil {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				asn := crawl[i]
				routes, attempts, dur, err := crawlNeighbor(ctx, client, asn, opts.NeighborRetries, opts.Metrics)
				var serr error
				if err == nil {
					serr = saver.markDone(asn, routes)
				}

				mu.Lock()
				outcomes[i] = neighborOutcome{attempted: true, routes: routes, attempts: attempts, dur: dur, err: err}
				completed[i] = true
				if serr != nil {
					if saveErr == nil {
						saveErr = serr
					}
					stopped = true
				}
				if err != nil && (!opts.Partial || ctx.Err() != nil) {
					stopped = true
				}
				for frontier < len(crawl) && completed[frontier] {
					if outcomes[frontier].err != nil {
						consecutive++
						if opts.ErrorBudget > 0 && consecutive >= opts.ErrorBudget {
							stopped = true
						}
					} else {
						consecutive = 0
					}
					frontier++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if saveErr != nil {
		return nil, fmt.Errorf("collector: checkpoint: %w", saveErr)
	}
	return outcomes, nil
}
