package collector

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ixplight/internal/bgp"
	"ixplight/internal/dictionary"
	"ixplight/internal/lg"
	"ixplight/internal/netutil"
	"ixplight/internal/rs"
)

// degradedFixture builds a route server where each listed peer
// announces routesPer routes.
func degradedFixture(t *testing.T, peers []uint32, routesPer int) *rs.Server {
	t.Helper()
	server, err := rs.New(rs.Config{Scheme: dictionary.ProfileByName("DE-CIX")})
	if err != nil {
		t.Fatal(err)
	}
	for i, asn := range peers {
		if err := server.AddPeer(rs.Peer{
			ASN: asn, Name: fmt.Sprintf("peer-%d", asn),
			AddrV4: netutil.PeerAddrV4(i + 1), IPv4: true,
		}); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < routesPer; j++ {
			r := bgp.Route{
				Prefix:  netutil.SyntheticV4Prefix(i*100 + j),
				NextHop: netutil.PeerAddrV4(i + 1),
				ASPath:  bgp.ASPath{asn},
			}
			if reason, err := server.Announce(asn, r); err != nil || reason != rs.FilterNone {
				t.Fatalf("announce AS%d #%d: %v %v", asn, j, reason, err)
			}
		}
	}
	return server
}

// pathRecorder captures every request path that reaches the LG.
type pathRecorder struct {
	mu    sync.Mutex
	paths []string
}

func (p *pathRecorder) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		p.paths = append(p.paths, r.URL.Path)
		p.mu.Unlock()
		next.ServeHTTP(w, r)
	})
}

func (p *pathRecorder) containing(sub string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, path := range p.paths {
		if strings.Contains(path, sub) {
			n++
		}
	}
	return n
}

func TestCollectPartialRecordsMemberErrors(t *testing.T) {
	server := degradedFixture(t, []uint32{100, 200, 300}, 4)
	ts := httptest.NewServer(lg.Flaky(lg.NewServer(server), lg.FlakyOptions{
		NeighborOutage: []uint32{200},
	}))
	defer ts.Close()

	client := lg.NewClient(ts.URL, lg.ClientOptions{MaxRetries: 1, RetryBackoff: time.Millisecond})
	snap, err := CollectWithOptions(context.Background(), client, "2021-10-04", CollectOptions{
		Partial:         true,
		NeighborRetries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Partial {
		t.Error("snapshot not flagged partial")
	}
	if len(snap.Members) != 3 {
		t.Errorf("members = %d: the member list must stay complete", len(snap.Members))
	}
	if len(snap.Routes) != 8 {
		t.Errorf("routes = %d, want 8 (AS100 + AS300)", len(snap.Routes))
	}
	if len(snap.MemberErrors) != 1 {
		t.Fatalf("member errors = %+v, want exactly AS200", snap.MemberErrors)
	}
	me := snap.MemberErrors[0]
	if me.ASN != 200 || me.Stage != StageRoutes {
		t.Errorf("member error = %+v", me)
	}
	if me.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (1 + 2 neighbor retries)", me.Attempts)
	}
	if me.Err == "" {
		t.Error("member error must carry the cause")
	}
	if !snap.FailedMemberSet()[200] {
		t.Error("FailedMemberSet misses AS200")
	}
}

func TestStrictModeStillAbortsOnNeighborFailure(t *testing.T) {
	server := degradedFixture(t, []uint32{100, 200}, 2)
	ts := httptest.NewServer(lg.Flaky(lg.NewServer(server), lg.FlakyOptions{
		NeighborOutage: []uint32{100},
	}))
	defer ts.Close()
	client := lg.NewClient(ts.URL, lg.ClientOptions{MaxRetries: 0})
	if _, err := Collect(context.Background(), client, "2021-10-04"); err == nil {
		t.Error("strict mode must abort on the first neighbor failure")
	}
}

func TestErrorBudgetCircuitBreaker(t *testing.T) {
	asns := []uint32{100, 200, 300, 400, 500}
	server := degradedFixture(t, asns, 2)
	ts := httptest.NewServer(lg.Flaky(lg.NewServer(server), lg.FlakyOptions{
		NeighborOutage: asns, // everything fails
	}))
	defer ts.Close()

	client := lg.NewClient(ts.URL, lg.ClientOptions{MaxRetries: 0})
	snap, err := CollectWithOptions(context.Background(), client, "2021-10-04", CollectOptions{
		Partial:     true,
		ErrorBudget: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.MemberErrors) != 5 {
		t.Fatalf("member errors = %d, want all 5 neighbors accounted for", len(snap.MemberErrors))
	}
	stages := map[string]int{}
	for _, me := range snap.MemberErrors {
		stages[me.Stage]++
	}
	if stages[StageRoutes] != 2 || stages[StageSkipped] != 3 {
		t.Errorf("stages = %v, want 2 attempted + 3 skipped after the breaker trips", stages)
	}
	// status + neighbors + exactly 2 neighbor attempts: the breaker must
	// stop the crawl from hammering a dead LG.
	if client.HTTPRequests() != 4 {
		t.Errorf("http requests = %d, want 4", client.HTTPRequests())
	}
}

func TestCheckpointRoundTripAndMismatch(t *testing.T) {
	ck := &Checkpoint{IXP: "DE-CIX", Date: "2021-10-04"}
	ck.MarkDone(100, []bgp.Route{{
		Prefix:  netutil.SyntheticV4Prefix(1),
		NextHop: netutil.PeerAddrV4(1),
		ASPath:  bgp.ASPath{100},
	}})
	ck.MarkDone(200, nil)
	path := filepath.Join(t.TempDir(), "sub", "ckpt.json")
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, got) {
		t.Errorf("round trip:\n in  %+v\n out %+v", ck, got)
	}
	if set := got.DoneSet(); !set[100] || !set[200] || set[300] {
		t.Errorf("done set = %v", set)
	}
	if !got.Matches("DE-CIX", "2021-10-04") || got.Matches("DE-CIX", "2021-10-05") {
		t.Error("Matches wrong")
	}
	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "missing.json")); !os.IsNotExist(err) {
		t.Errorf("missing file: err = %v, want IsNotExist", err)
	}

	// A checkpoint for another crawl must be refused.
	server := degradedFixture(t, []uint32{100}, 1)
	ts := httptest.NewServer(lg.NewServer(server))
	defer ts.Close()
	client := lg.NewClient(ts.URL, lg.ClientOptions{})
	stale := &Checkpoint{IXP: "AMS-IX", Date: "2021-10-04"}
	if _, err := CollectWithOptions(context.Background(), client, "2021-10-04", CollectOptions{Checkpoint: stale}); err == nil {
		t.Error("mismatched checkpoint accepted")
	}
}

// TestEndToEndDegradedCollectionAndResume is the acceptance scenario:
// a crawl through injected 500s, 429s (with Retry-After), latency and
// one permanently-failing neighbor yields a partial snapshot that
// names exactly that neighbor; resuming from the checkpoint issues
// zero route requests for the neighbors already done.
func TestEndToEndDegradedCollectionAndResume(t *testing.T) {
	peers := []uint32{100, 200, 300}
	const routesPer = 6
	server := degradedFixture(t, peers, routesPer)
	flaky := httptest.NewServer(lg.Flaky(lg.NewServer(server), lg.FlakyOptions{
		ErrorRate:      0.2,
		RateLimitEvery: 7,
		RetryAfter:     time.Second,
		Latency:        time.Millisecond,
		NeighborOutage: []uint32{300},
		Seed:           11,
	}))
	defer flaky.Close()

	ckpt := filepath.Join(t.TempDir(), "ckpt.json")
	opts := CollectOptions{Partial: true, NeighborRetries: 1, CheckpointPath: ckpt}
	clientOpts := lg.ClientOptions{
		PageSize:       4,
		MaxRetries:     8,
		RetryBackoff:   time.Millisecond,
		MaxRetryAfter:  2 * time.Millisecond, // cap the advertised 1s for test speed
		RequestTimeout: time.Second,
	}
	client := lg.NewClient(flaky.URL, clientOpts)
	snap, err := CollectWithOptions(context.Background(), client, "2021-10-04", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Partial || len(snap.MemberErrors) != 1 || snap.MemberErrors[0].ASN != 300 {
		t.Fatalf("member errors = %+v, want exactly AS300", snap.MemberErrors)
	}
	if len(snap.Routes) != 2*routesPer {
		t.Errorf("routes = %d, want %d: healthy neighbors must be complete", len(snap.Routes), 2*routesPer)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint not persisted: %v", err)
	}

	// Second run: the LG has recovered; resume from the checkpoint.
	rec := &pathRecorder{}
	healthy := httptest.NewServer(rec.wrap(lg.NewServer(server)))
	defer healthy.Close()
	ck, err := LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	opts.Checkpoint = ck
	client2 := lg.NewClient(healthy.URL, clientOpts)
	snap2, err := CollectWithOptions(context.Background(), client2, "2021-10-04", opts)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Partial || len(snap2.MemberErrors) != 0 {
		t.Errorf("resumed snapshot still degraded: %+v", snap2.MemberErrors)
	}
	if len(snap2.Routes) != 3*routesPer {
		t.Errorf("resumed routes = %d, want %d", len(snap2.Routes), 3*routesPer)
	}
	// Zero requests for the neighbors the checkpoint already covers.
	for _, done := range []uint32{100, 200} {
		if n := rec.containing(fmt.Sprintf("/neighbors/%d/routes", done)); n != 0 {
			t.Errorf("AS%d re-crawled %d times despite checkpoint", done, n)
		}
	}
	if n := rec.containing("/neighbors/300/routes"); n == 0 {
		t.Error("failed neighbor AS300 was not re-attempted on resume")
	}
	// A completed crawl cleans up its resume state.
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("checkpoint not removed after complete crawl: %v", err)
	}
}

// TestCombinedFailureInjection crawls through error rate + rate
// limits + truncation at once; the resulting snapshot's member-error
// records must exactly explain every missing neighbor.
func TestCombinedFailureInjection(t *testing.T) {
	peers := []uint32{100, 200, 300, 400}
	const routesPer = 5
	server := degradedFixture(t, peers, routesPer)
	flaky := httptest.NewServer(lg.Flaky(lg.NewServer(server), lg.FlakyOptions{
		ErrorRate:      0.3,
		RateLimitEvery: 5,
		RetryAfter:     time.Second,
		TruncateEvery:  9,
		NeighborOutage: []uint32{200},
		Seed:           42,
	}))
	defer flaky.Close()

	client := lg.NewClient(flaky.URL, lg.ClientOptions{
		PageSize:      3,
		MaxRetries:    10,
		RetryBackoff:  time.Millisecond,
		MaxRetryAfter: 2 * time.Millisecond,
	})
	snap, err := CollectWithOptions(context.Background(), client, "2021-10-04", CollectOptions{
		Partial:         true,
		NeighborRetries: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every announcing neighbor either contributed all its routes or is
	// recorded in MemberErrors — no silent gaps, no double-counting.
	failed := snap.FailedMemberSet()
	perPeer := map[uint32]int{}
	for _, r := range snap.Routes {
		perPeer[r.PeerAS()]++
	}
	for _, asn := range peers {
		switch {
		case failed[asn] && perPeer[asn] > 0:
			t.Errorf("AS%d both failed and contributed %d routes", asn, perPeer[asn])
		case !failed[asn] && perPeer[asn] != routesPer:
			t.Errorf("AS%d: %d routes, want %d or a member-error record", asn, perPeer[asn], routesPer)
		}
	}
	if !failed[200] {
		t.Error("the permanently-broken AS200 must be recorded")
	}
	if snap.Partial != (len(snap.MemberErrors) > 0) {
		t.Error("Partial flag inconsistent with MemberErrors")
	}
}

// TestPartialSnapshotRoundTrip ensures the degraded-collection fields
// survive every codec.
func TestPartialSnapshotRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	s.Partial = true
	s.MemberErrors = []MemberError{
		{ASN: 300, Stage: StageRoutes, Err: "lg: status 500", Attempts: 3},
		{ASN: 400, Stage: StageSkipped, Err: "error budget exhausted"},
	}
	s.Normalize()
	for _, codec := range Codecs() {
		t.Run(codec.String(), func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteSnapshot(&buf, s, codec); err != nil {
				t.Fatal(err)
			}
			got, err := ReadSnapshot(&buf, codec)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(s, got) {
				t.Errorf("round trip mismatch:\n in  %+v\n out %+v", s, got)
			}
		})
	}
}

// TestCollectAllDegradedTargets drives the multi-IXP path with one
// healthy, one degraded, and one dead target.
func TestCollectAllDegradedTargets(t *testing.T) {
	healthySrv := degradedFixture(t, []uint32{100}, 2)
	healthy := httptest.NewServer(lg.NewServer(healthySrv))
	defer healthy.Close()
	degradedSrv := degradedFixture(t, []uint32{100, 200}, 2)
	degraded := httptest.NewServer(lg.Flaky(lg.NewServer(degradedSrv), lg.FlakyOptions{
		NeighborOutage: []uint32{200},
	}))
	defer degraded.Close()

	faultOpts := CollectOptions{Partial: true}
	targets := []Target{
		{Name: "OK", URL: healthy.URL, Collect: faultOpts},
		{Name: "DEGRADED", URL: degraded.URL,
			Options: lg.ClientOptions{MaxRetries: 1, RetryBackoff: time.Millisecond},
			Collect: faultOpts},
		{Name: "DEAD", URL: "http://127.0.0.1:1", Collect: faultOpts},
	}
	results := CollectAll(context.Background(), targets, "2021-10-04", 3)
	if results[0].Err != nil || results[0].Partial {
		t.Errorf("healthy: %+v", results[0])
	}
	if results[1].Err != nil || !results[1].Partial {
		t.Errorf("degraded target: err=%v partial=%v", results[1].Err, results[1].Partial)
	}
	if results[2].Err == nil {
		t.Error("dead target succeeded")
	}
	if got := len(Succeeded(results)); got != 2 {
		t.Errorf("succeeded = %d, want 2 (partial snapshots count)", got)
	}
	if got := Degraded(results); len(got) != 1 || got[0].Target.Name != "DEGRADED" {
		t.Errorf("degraded = %+v", got)
	}
	for _, r := range results {
		if r.Summary() == "" {
			t.Error("empty summary")
		}
	}
	if !strings.Contains(results[1].Summary(), "partial") {
		t.Errorf("summary = %q, want partial marker", results[1].Summary())
	}
}
