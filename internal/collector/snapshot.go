// Package collector implements the paper's §3 data pipeline: daily
// snapshots of an IXP route server (member list plus every member's
// accepted routes) assembled by crawling a looking-glass API, and the
// dataset files those snapshots persist into.
package collector

import (
	"cmp"
	"compress/gzip"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"time"

	"ixplight/internal/bgp"
)

// Member is one AS present at the route server in a snapshot. The
// collection captures peers with active sessions regardless of whether
// they share routes (§3).
type Member struct {
	ASN  uint32 `json:"asn"`
	Name string `json:"name"`
	IPv4 bool   `json:"ipv4"`
	IPv6 bool   `json:"ipv6"`
}

// Collection stages recorded in MemberError.
const (
	// StageRoutes means the neighbor's route listing failed.
	StageRoutes = "routes"
	// StageSkipped means the neighbor was never attempted because the
	// per-target error budget tripped the circuit breaker first.
	StageSkipped = "skipped"
)

// MemberError records one neighbor whose routes could not be
// collected. A partial snapshot carries one entry per missing member,
// so degraded data always comes with explicit provenance — the §3
// stance that a flagged gap beats a silently lost snapshot.
type MemberError struct {
	ASN      uint32 `json:"asn"`
	Stage    string `json:"stage"`
	Err      string `json:"error"`
	Attempts int    `json:"attempts"`
}

// Snapshot is one day's view of one IXP route server: the member list
// and the accepted routes of every member (the announcing member is
// the first hop of each route's AS path). FilteredCount records how
// many routes the RS rejected, without storing them. Partial flags a
// degraded collection; MemberErrors then explains exactly which
// members' routes are missing and why.
type Snapshot struct {
	IXP           string        `json:"ixp"`
	Date          string        `json:"date"` // YYYY-MM-DD
	Members       []Member      `json:"members"`
	Routes        []bgp.Route   `json:"routes"`
	FilteredCount int           `json:"filtered_count"`
	Partial       bool          `json:"partial,omitempty"`
	MemberErrors  []MemberError `json:"member_errors,omitempty"`

	// aux is an out-of-band consumer attachment (analysis pins a
	// pre-built index on route-less snapshots through it). No codec
	// encodes it. reflect.DeepEqual does see unexported fields, so
	// attach aux only to snapshots that are not DeepEqual'd against
	// codec round-trips.
	aux any
}

// SetAux attaches an out-of-band consumer value to the snapshot. Call
// it before the snapshot is shared across goroutines; Aux reads are
// unsynchronized.
func (s *Snapshot) SetAux(v any) { s.aux = v }

// Aux returns the value attached with SetAux, or nil.
func (s *Snapshot) Aux() any { return s.aux }

// FailedMemberSet returns the ASNs whose routes are missing from a
// partial snapshot.
func (s *Snapshot) FailedMemberSet() map[uint32]bool {
	set := make(map[uint32]bool, len(s.MemberErrors))
	for _, e := range s.MemberErrors {
		set[e.ASN] = true
	}
	return set
}

// Day parses the snapshot date.
func (s *Snapshot) Day() (time.Time, error) {
	return time.Parse("2006-01-02", s.Date)
}

// MemberSet returns the set of member ASNs, the §5.5 membership test.
func (s *Snapshot) MemberSet() map[uint32]bool {
	set := make(map[uint32]bool, len(s.Members))
	for _, m := range s.Members {
		set[m.ASN] = true
	}
	return set
}

// MembersV4 counts members with an IPv4 session.
func (s *Snapshot) MembersV4() int {
	n := 0
	for _, m := range s.Members {
		if m.IPv4 {
			n++
		}
	}
	return n
}

// MembersV6 counts members with an IPv6 session.
func (s *Snapshot) MembersV6() int {
	n := 0
	for _, m := range s.Members {
		if m.IPv6 {
			n++
		}
	}
	return n
}

// RoutesFamily returns the routes of one family (v6 selects IPv6).
// It counts first and allocates the result exactly once — the method
// runs per family per experiment on snapshots with ~10⁵ routes, where
// append-doubling costs a dozen reallocations and copies.
func (s *Snapshot) RoutesFamily(v6 bool) []bgp.Route {
	n := 0
	for i := range s.Routes {
		if s.Routes[i].IsIPv6() == v6 {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]bgp.Route, 0, n)
	for i := range s.Routes {
		if s.Routes[i].IsIPv6() == v6 {
			out = append(out, s.Routes[i])
		}
	}
	return out
}

// Normalize sorts members (and member errors) by ASN and routes by
// (family, prefix, announcing peer) so that snapshots serialise
// deterministically.
func (s *Snapshot) Normalize() {
	// slices.SortFunc over sort.Slice: the comparator runs on concrete
	// element types instead of reflect-backed swaps, which is
	// measurably faster on the snapshot write path.
	slices.SortFunc(s.Members, func(a, b Member) int { return cmp.Compare(a.ASN, b.ASN) })
	slices.SortFunc(s.MemberErrors, func(a, b MemberError) int { return cmp.Compare(a.ASN, b.ASN) })
	slices.SortFunc(s.Routes, func(a, b bgp.Route) int {
		if a.IsIPv6() != b.IsIPv6() {
			if b.IsIPv6() {
				return -1
			}
			return 1
		}
		if c := a.Prefix.Addr().Compare(b.Prefix.Addr()); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Prefix.Bits(), b.Prefix.Bits()); c != 0 {
			return c
		}
		return cmp.Compare(a.PeerAS(), b.PeerAS())
	})
}

// Dataset is a time-ordered series of snapshots for one IXP.
type Dataset struct {
	IXP       string     `json:"ixp"`
	Snapshots []Snapshot `json:"snapshots"`
}

// Codec selects a snapshot serialisation (the snapshot-codec ablation).
type Codec int

// Available codecs.
const (
	CodecJSON Codec = iota
	CodecJSONGzip
	CodecGob
	CodecGobGzip
	// CodecBinary is the hand-rolled columnar format (binary.go):
	// varint-encoded columns with deduplicated intern tables for AS
	// paths, next hops and community sets, decoded from a single
	// per-snapshot arena. The fastest decode path and the format
	// cmd/analyze-scale re-reads should use.
	CodecBinary
)

// Codecs lists every available codec in declaration order — the
// snapshot-codec ablation iterates it.
func Codecs() []Codec {
	return []Codec{CodecJSON, CodecJSONGzip, CodecGob, CodecGobGzip, CodecBinary}
}

// String implements fmt.Stringer.
func (c Codec) String() string {
	switch c {
	case CodecJSON:
		return "json"
	case CodecJSONGzip:
		return "json+gzip"
	case CodecGob:
		return "gob"
	case CodecGobGzip:
		return "gob+gzip"
	case CodecBinary:
		return "binary"
	default:
		return fmt.Sprintf("Codec(%d)", int(c))
	}
}

// Ext returns the conventional file extension for the codec.
func (c Codec) Ext() string {
	switch c {
	case CodecJSON:
		return ".json"
	case CodecJSONGzip:
		return ".json.gz"
	case CodecGob:
		return ".gob"
	case CodecGobGzip:
		return ".gob.gz"
	case CodecBinary:
		return ".bin"
	default:
		return fmt.Sprintf(".codec%d", int(c))
	}
}

// gzipWriters pools gzip writers across snapshot writes: a gzip
// writer carries ~800kB of deflate state, and the daily-snapshot
// write path would otherwise reallocate it once per snapshot.
var gzipWriters = sync.Pool{
	New: func() any { return gzip.NewWriter(io.Discard) },
}

// withPooledGzip runs encode against a pooled gzip writer targeting w,
// closing (flushing) it afterwards. The writer is detached from w
// before being pooled so the pool never pins caller buffers.
func withPooledGzip(w io.Writer, encode func(io.Writer) error) error {
	zw := gzipWriters.Get().(*gzip.Writer)
	zw.Reset(w)
	err := encode(zw)
	cerr := zw.Close()
	zw.Reset(io.Discard)
	gzipWriters.Put(zw)
	if err != nil {
		return err
	}
	return cerr
}

// WriteSnapshot serialises s to w using the codec.
func WriteSnapshot(w io.Writer, s *Snapshot, codec Codec) error {
	switch codec {
	case CodecJSON:
		return json.NewEncoder(w).Encode(s)
	case CodecJSONGzip:
		return withPooledGzip(w, func(zw io.Writer) error {
			return json.NewEncoder(zw).Encode(s)
		})
	case CodecGob:
		return gob.NewEncoder(w).Encode(s)
	case CodecGobGzip:
		return withPooledGzip(w, func(zw io.Writer) error {
			return gob.NewEncoder(zw).Encode(s)
		})
	case CodecBinary:
		_, err := w.Write(appendBinarySnapshot(nil, s))
		return err
	default:
		return fmt.Errorf("collector: unknown codec %v", codec)
	}
}

// countingReader tracks encoded bytes consumed, for the codec
// telemetry.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Len lets size hints pass through the counter (bytes.Reader,
// bytes.Buffer and strings.Reader all report remaining length).
func (c *countingReader) Len() int {
	if lr, ok := c.r.(interface{ Len() int }); ok {
		return lr.Len()
	}
	return -1
}

// readAllHint is io.ReadAll with an exact-size first allocation when
// the remaining length is known — from the hint, or from the reader's
// own Len(). io.ReadAll's doubling growth re-clears and re-copies the
// buffer ~log2(size) times, which is a third of the binary codec's
// decode cost on a megabyte snapshot; a sized allocation reads the
// bytes exactly once.
func readAllHint(r io.Reader, hint int) ([]byte, error) {
	if hint < 0 {
		if lr, ok := r.(interface{ Len() int }); ok {
			hint = lr.Len()
		}
	}
	if hint < 0 {
		return io.ReadAll(r)
	}
	buf := make([]byte, 0, hint+1) // +1 so EOF surfaces without a growth step
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// ReadSnapshot deserialises one snapshot from r.
func ReadSnapshot(r io.Reader, codec Codec) (*Snapshot, error) {
	tel := codecTel()
	t0 := tel.now()
	cr := r
	var counter *countingReader
	if tel != nil {
		counter = &countingReader{r: r}
		cr = counter
	}
	s, err := readSnapshot(cr, codec)
	if err != nil {
		return nil, err
	}
	if tel != nil {
		tel.decoded(codec, t0, counter.n, len(s.Routes))
	}
	return s, nil
}

func readSnapshot(r io.Reader, codec Codec) (*Snapshot, error) {
	var s Snapshot
	switch codec {
	case CodecJSON:
		if err := json.NewDecoder(r).Decode(&s); err != nil {
			return nil, err
		}
	case CodecJSONGzip:
		zr, err := gzip.NewReader(r)
		if err != nil {
			return nil, err
		}
		defer zr.Close()
		if err := json.NewDecoder(zr).Decode(&s); err != nil {
			return nil, err
		}
	case CodecGob:
		if err := gob.NewDecoder(r).Decode(&s); err != nil {
			return nil, err
		}
	case CodecGobGzip:
		zr, err := gzip.NewReader(r)
		if err != nil {
			return nil, err
		}
		defer zr.Close()
		if err := gob.NewDecoder(zr).Decode(&s); err != nil {
			return nil, err
		}
	case CodecBinary:
		data, err := readAllHint(r, -1)
		if err != nil {
			return nil, err
		}
		return decodeBinarySnapshot(data)
	default:
		return nil, fmt.Errorf("collector: unknown codec %v", codec)
	}
	return &s, nil
}

// AtomicWrite writes a file through write via a temp file in the same
// directory followed by a rename — the Checkpoint.Save discipline — so
// a crash mid-write never leaves a truncated or corrupt file at path.
// Missing parent directories are created.
func AtomicWrite(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	if err := write(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// SaveSnapshot writes s into dir as <ixp>-<date><ext>, creating the
// directory if needed, and returns the file path. The write is atomic
// (temp file + rename): an interrupted save never leaves a truncated
// snapshot where the next collection run would trust it.
func SaveSnapshot(dir string, s *Snapshot, codec Codec) (string, error) {
	path := filepath.Join(dir, fmt.Sprintf("%s-%s%s", sanitizeName(s.IXP), s.Date, codec.Ext()))
	if err := AtomicWrite(path, func(w io.Writer) error {
		return WriteSnapshot(w, s, codec)
	}); err != nil {
		return "", err
	}
	return path, nil
}

// LoadSnapshot reads a snapshot file written by SaveSnapshot. The
// codec is auto-detected: a known extension wins, and files with an
// unknown or missing extension are sniffed by magic bytes and content
// (see detectCodec).
func LoadSnapshot(path string) (*Snapshot, error) {
	sr, err := OpenSnapshot(path)
	if err != nil {
		return nil, err
	}
	defer sr.Close()
	return sr.Snapshot()
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

func sanitizeName(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '.':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}
