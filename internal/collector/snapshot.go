// Package collector implements the paper's §3 data pipeline: daily
// snapshots of an IXP route server (member list plus every member's
// accepted routes) assembled by crawling a looking-glass API, and the
// dataset files those snapshots persist into.
package collector

import (
	"compress/gzip"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"ixplight/internal/bgp"
)

// Member is one AS present at the route server in a snapshot. The
// collection captures peers with active sessions regardless of whether
// they share routes (§3).
type Member struct {
	ASN  uint32 `json:"asn"`
	Name string `json:"name"`
	IPv4 bool   `json:"ipv4"`
	IPv6 bool   `json:"ipv6"`
}

// Collection stages recorded in MemberError.
const (
	// StageRoutes means the neighbor's route listing failed.
	StageRoutes = "routes"
	// StageSkipped means the neighbor was never attempted because the
	// per-target error budget tripped the circuit breaker first.
	StageSkipped = "skipped"
)

// MemberError records one neighbor whose routes could not be
// collected. A partial snapshot carries one entry per missing member,
// so degraded data always comes with explicit provenance — the §3
// stance that a flagged gap beats a silently lost snapshot.
type MemberError struct {
	ASN      uint32 `json:"asn"`
	Stage    string `json:"stage"`
	Err      string `json:"error"`
	Attempts int    `json:"attempts"`
}

// Snapshot is one day's view of one IXP route server: the member list
// and the accepted routes of every member (the announcing member is
// the first hop of each route's AS path). FilteredCount records how
// many routes the RS rejected, without storing them. Partial flags a
// degraded collection; MemberErrors then explains exactly which
// members' routes are missing and why.
type Snapshot struct {
	IXP           string        `json:"ixp"`
	Date          string        `json:"date"` // YYYY-MM-DD
	Members       []Member      `json:"members"`
	Routes        []bgp.Route   `json:"routes"`
	FilteredCount int           `json:"filtered_count"`
	Partial       bool          `json:"partial,omitempty"`
	MemberErrors  []MemberError `json:"member_errors,omitempty"`
}

// FailedMemberSet returns the ASNs whose routes are missing from a
// partial snapshot.
func (s *Snapshot) FailedMemberSet() map[uint32]bool {
	set := make(map[uint32]bool, len(s.MemberErrors))
	for _, e := range s.MemberErrors {
		set[e.ASN] = true
	}
	return set
}

// Day parses the snapshot date.
func (s *Snapshot) Day() (time.Time, error) {
	return time.Parse("2006-01-02", s.Date)
}

// MemberSet returns the set of member ASNs, the §5.5 membership test.
func (s *Snapshot) MemberSet() map[uint32]bool {
	set := make(map[uint32]bool, len(s.Members))
	for _, m := range s.Members {
		set[m.ASN] = true
	}
	return set
}

// MembersV4 counts members with an IPv4 session.
func (s *Snapshot) MembersV4() int {
	n := 0
	for _, m := range s.Members {
		if m.IPv4 {
			n++
		}
	}
	return n
}

// MembersV6 counts members with an IPv6 session.
func (s *Snapshot) MembersV6() int {
	n := 0
	for _, m := range s.Members {
		if m.IPv6 {
			n++
		}
	}
	return n
}

// RoutesFamily returns the routes of one family (v6 selects IPv6).
func (s *Snapshot) RoutesFamily(v6 bool) []bgp.Route {
	var out []bgp.Route
	for _, r := range s.Routes {
		if r.IsIPv6() == v6 {
			out = append(out, r)
		}
	}
	return out
}

// Normalize sorts members (and member errors) by ASN and routes by
// (family, prefix, announcing peer) so that snapshots serialise
// deterministically.
func (s *Snapshot) Normalize() {
	sort.Slice(s.Members, func(i, j int) bool { return s.Members[i].ASN < s.Members[j].ASN })
	sort.Slice(s.MemberErrors, func(i, j int) bool { return s.MemberErrors[i].ASN < s.MemberErrors[j].ASN })
	sort.Slice(s.Routes, func(i, j int) bool {
		a, b := s.Routes[i], s.Routes[j]
		if a.IsIPv6() != b.IsIPv6() {
			return !a.IsIPv6()
		}
		if a.Prefix.Addr() != b.Prefix.Addr() {
			return a.Prefix.Addr().Less(b.Prefix.Addr())
		}
		if a.Prefix.Bits() != b.Prefix.Bits() {
			return a.Prefix.Bits() < b.Prefix.Bits()
		}
		return a.PeerAS() < b.PeerAS()
	})
}

// Dataset is a time-ordered series of snapshots for one IXP.
type Dataset struct {
	IXP       string     `json:"ixp"`
	Snapshots []Snapshot `json:"snapshots"`
}

// Codec selects a snapshot serialisation (the snapshot-codec ablation).
type Codec int

// Available codecs.
const (
	CodecJSON Codec = iota
	CodecJSONGzip
	CodecGob
	CodecGobGzip
)

// String implements fmt.Stringer.
func (c Codec) String() string {
	switch c {
	case CodecJSON:
		return "json"
	case CodecJSONGzip:
		return "json+gzip"
	case CodecGob:
		return "gob"
	case CodecGobGzip:
		return "gob+gzip"
	default:
		return fmt.Sprintf("Codec(%d)", int(c))
	}
}

// Ext returns the conventional file extension for the codec.
func (c Codec) Ext() string {
	switch c {
	case CodecJSON:
		return ".json"
	case CodecJSONGzip:
		return ".json.gz"
	case CodecGob:
		return ".gob"
	case CodecGobGzip:
		return ".gob.gz"
	default:
		return ".bin"
	}
}

// gzipWriters pools gzip writers across snapshot writes: a gzip
// writer carries ~800kB of deflate state, and the daily-snapshot
// write path would otherwise reallocate it once per snapshot.
var gzipWriters = sync.Pool{
	New: func() any { return gzip.NewWriter(io.Discard) },
}

// withPooledGzip runs encode against a pooled gzip writer targeting w,
// closing (flushing) it afterwards. The writer is detached from w
// before being pooled so the pool never pins caller buffers.
func withPooledGzip(w io.Writer, encode func(io.Writer) error) error {
	zw := gzipWriters.Get().(*gzip.Writer)
	zw.Reset(w)
	err := encode(zw)
	cerr := zw.Close()
	zw.Reset(io.Discard)
	gzipWriters.Put(zw)
	if err != nil {
		return err
	}
	return cerr
}

// WriteSnapshot serialises s to w using the codec.
func WriteSnapshot(w io.Writer, s *Snapshot, codec Codec) error {
	switch codec {
	case CodecJSON:
		return json.NewEncoder(w).Encode(s)
	case CodecJSONGzip:
		return withPooledGzip(w, func(zw io.Writer) error {
			return json.NewEncoder(zw).Encode(s)
		})
	case CodecGob:
		return gob.NewEncoder(w).Encode(s)
	case CodecGobGzip:
		return withPooledGzip(w, func(zw io.Writer) error {
			return gob.NewEncoder(zw).Encode(s)
		})
	default:
		return fmt.Errorf("collector: unknown codec %v", codec)
	}
}

// ReadSnapshot deserialises one snapshot from r.
func ReadSnapshot(r io.Reader, codec Codec) (*Snapshot, error) {
	var s Snapshot
	switch codec {
	case CodecJSON:
		if err := json.NewDecoder(r).Decode(&s); err != nil {
			return nil, err
		}
	case CodecJSONGzip:
		zr, err := gzip.NewReader(r)
		if err != nil {
			return nil, err
		}
		defer zr.Close()
		if err := json.NewDecoder(zr).Decode(&s); err != nil {
			return nil, err
		}
	case CodecGob:
		if err := gob.NewDecoder(r).Decode(&s); err != nil {
			return nil, err
		}
	case CodecGobGzip:
		zr, err := gzip.NewReader(r)
		if err != nil {
			return nil, err
		}
		defer zr.Close()
		if err := gob.NewDecoder(zr).Decode(&s); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("collector: unknown codec %v", codec)
	}
	return &s, nil
}

// AtomicWrite writes a file through write via a temp file in the same
// directory followed by a rename — the Checkpoint.Save discipline — so
// a crash mid-write never leaves a truncated or corrupt file at path.
// Missing parent directories are created.
func AtomicWrite(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	if err := write(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// SaveSnapshot writes s into dir as <ixp>-<date><ext>, creating the
// directory if needed, and returns the file path. The write is atomic
// (temp file + rename): an interrupted save never leaves a truncated
// snapshot where the next collection run would trust it.
func SaveSnapshot(dir string, s *Snapshot, codec Codec) (string, error) {
	path := filepath.Join(dir, fmt.Sprintf("%s-%s%s", sanitizeName(s.IXP), s.Date, codec.Ext()))
	if err := AtomicWrite(path, func(w io.Writer) error {
		return WriteSnapshot(w, s, codec)
	}); err != nil {
		return "", err
	}
	return path, nil
}

// LoadSnapshot reads a snapshot file written by SaveSnapshot, deducing
// the codec from the extension.
func LoadSnapshot(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f, codecForPath(path))
}

func codecForPath(path string) Codec {
	switch {
	case hasSuffix(path, ".json.gz"):
		return CodecJSONGzip
	case hasSuffix(path, ".json"):
		return CodecJSON
	case hasSuffix(path, ".gob.gz"):
		return CodecGobGzip
	case hasSuffix(path, ".gob"):
		return CodecGob
	default:
		return CodecJSON
	}
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

func sanitizeName(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '.':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}
