// Arena: reusable decode scratch for the binary route block. A series
// run (84 days × 8 IXPs) decodes hundreds of route blocks whose intern
// tables are all roughly the same size; without reuse every decode
// pays one slab allocation per element type. An Arena keeps those
// slabs alive between decodes so the steady-state column walk
// allocates nothing.
package collector

import (
	"net/netip"

	"ixplight/internal/bgp"
)

// Arena owns the backing storage for one decoded route block: the
// per-element-type slabs plus the intern-table slices whose entries
// alias them. Decoding into an arena overwrites everything a previous
// decode handed out — a RouteBlock (and every slice obtained from it)
// is valid only until the arena's next decode. The zero value is
// ready to use; an Arena must not be shared by concurrent decodes.
//
// The materializing paths (Snapshot, ForEachRoute, LoadSnapshot) never
// use an arena: their routes alias the decoded tables and are retained
// by callers indefinitely, so they keep the fresh-allocation decode.
type Arena struct {
	pathSlab  []uint32
	commSlab  []bgp.Community
	extSlab   []bgp.ExtendedCommunity
	largeSlab []bgp.LargeCommunity

	nexthops []netip.Addr
	paths    []bgp.ASPath
	comms    [][]bgp.Community
	exts     [][]bgp.ExtendedCommunity
	larges   [][]bgp.LargeCommunity

	// prefix is the front-coding scratch for RouteBlock.Scan.
	prefix []byte
}

// slabFor returns a zero-length slice with capacity exactly n, backed
// by *store when an arena is in play (store non-nil). The exact
// capacity is load-bearing: the decoder's per-table truncation checks
// compare len+n against cap, so a slab must not be able to absorb
// more elements than the block's element-total prefix declared.
func slabFor[T any](store *[]T, n int) []T {
	if store == nil {
		return make([]T, 0, n)
	}
	if cap(*store) < n {
		*store = make([]T, n)
	}
	return (*store)[:0:n]
}

// tableFor returns a cleared slice of length n for an intern table,
// backed by *store when an arena is in play. Clearing matters: nil
// table entries (nil-slice sets) are encoded by absence, so a reused
// buffer must not leak the previous block's entries through them.
func tableFor[T any](store *[]T, n int) []T {
	if store == nil {
		return make([]T, n)
	}
	if cap(*store) < n {
		*store = make([]T, n)
		return *store
	}
	t := (*store)[:n]
	clear(t)
	return t
}
