package dictionary

import (
	"testing"

	"ixplight/internal/bgp"
)

func TestProfilesValidate(t *testing.T) {
	ps := Profiles()
	if len(ps) != 8 {
		t.Fatalf("profiles = %d, want 8", len(ps))
	}
	names := map[string]bool{}
	for _, s := range ps {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.IXP, err)
		}
		if names[s.IXP] {
			t.Errorf("duplicate profile %s", s.IXP)
		}
		names[s.IXP] = true
	}
	for _, want := range BigFour {
		if !names[want] {
			t.Errorf("big-four IXP %s missing", want)
		}
	}
}

// TestDictionarySizesMatchPaper pins each per-IXP dictionary to the
// §3 entry counts (649/774/774/774/58/37/50/67, total 3,183).
func TestDictionarySizesMatchPaper(t *testing.T) {
	want := map[string]int{
		"IX.br-SP":   649,
		"DE-CIX":     774,
		"DE-CIX Mad": 774,
		"DE-CIX NYC": 774,
		"LINX":       58,
		"AMS-IX":     37,
		"BCIX":       50,
		"Netnod":     67,
	}
	total := 0
	for _, s := range Profiles() {
		got := len(s.Entries())
		if got != want[s.IXP] {
			t.Errorf("%s: %d entries, want %d", s.IXP, got, want[s.IXP])
		}
		total += got
	}
	if total != 3183 {
		t.Errorf("total entries = %d, want 3183", total)
	}
}

func TestUnionReconstructsFullDictionary(t *testing.T) {
	for _, s := range Profiles() {
		full := s.Entries()
		rs := s.RSConfigEntries()
		web := s.WebsiteEntries()
		if len(rs) >= len(full) {
			t.Errorf("%s: RS config list (%d) should be incomplete (< %d)", s.IXP, len(rs), len(full))
		}
		if len(web) >= len(full) {
			t.Errorf("%s: website list (%d) should be incomplete (< %d)", s.IXP, len(web), len(full))
		}
		union := UnionEntries(rs, web)
		if len(union) != len(full) {
			t.Errorf("%s: union = %d entries, want %d", s.IXP, len(union), len(full))
		}
	}
}

func TestClassifyActionPatterns(t *testing.T) {
	s := newDECIX("DE-CIX", 6695)
	cases := []struct {
		comm   string
		known  bool
		action ActionType
		target TargetKind
		asn    uint32
		prep   int
	}{
		{"0:15169", true, DoNotAnnounceTo, TargetPeer, 15169, 0},
		{"0:6695", true, DoNotAnnounceTo, TargetAll, 0, 0},
		{"6695:15169", true, AnnounceOnlyTo, TargetPeer, 15169, 0},
		{"6695:6695", true, AnnounceOnlyTo, TargetAll, 0, 0},
		{"65501:15169", true, PrependTo, TargetPeer, 15169, 1},
		{"65502:15169", true, PrependTo, TargetPeer, 15169, 2},
		{"65503:6695", true, PrependTo, TargetAll, 0, 3},
		{"65535:666", true, Blackhole, TargetNone, 0, 0},
		{"6696:5", true, Informational, TargetNone, 0, 0},
		{"6696:20", true, Informational, TargetNone, 0, 0},
		{"6696:21", false, Informational, TargetNone, 0, 0}, // beyond InfoCount
		{"0:0", false, Informational, TargetNone, 0, 0},
		{"6695:0", false, Informational, TargetNone, 0, 0},
		{"15169:100", false, Informational, TargetNone, 0, 0}, // member-private
		{"65504:15169", false, Informational, TargetNone, 0, 0},
		{"65535:665", false, Informational, TargetNone, 0, 0},
	}
	for _, tt := range cases {
		cl := s.Classify(bgp.MustParseCommunity(tt.comm))
		if cl.Known != tt.known {
			t.Errorf("%s: Known = %v, want %v", tt.comm, cl.Known, tt.known)
			continue
		}
		if !tt.known {
			continue
		}
		if cl.Action != tt.action || cl.Target != tt.target || cl.TargetASN != tt.asn || cl.PrependCount != tt.prep {
			t.Errorf("%s: got %+v", tt.comm, cl)
		}
	}
}

func TestClassifyFeatureFlags(t *testing.T) {
	ixbr := ProfileByName("IX.br-SP")
	if cl := ixbr.Classify(bgp.BlackholeWellKnown); cl.Known {
		t.Error("IX.br-SP must not define the blackhole community")
	}
	if cl := ixbr.Classify(bgp.MustParseCommunity("65501:15169")); !cl.Known || cl.Action != PrependTo {
		t.Error("IX.br-SP must define prepend communities")
	}
	ams := ProfileByName("AMS-IX")
	if cl := ams.Classify(bgp.MustParseCommunity("65501:15169")); cl.Known {
		t.Error("AMS-IX must not define standard prepend communities")
	}
	if cl := ams.Classify(bgp.BlackholeWellKnown); !cl.Known || cl.Action != Blackhole {
		t.Error("AMS-IX must define the blackhole community")
	}
	linx := ProfileByName("LINX")
	if cl := linx.Classify(bgp.BlackholeWellKnown); cl.Known {
		t.Error("LINX must not define the blackhole community")
	}
}

func TestClassifyAgreesWithEntries(t *testing.T) {
	// Every enumerated dictionary entry must classify as Known with the
	// same action/target as its entry row.
	for _, s := range Profiles() {
		for _, e := range s.Entries() {
			cl := s.Classify(e.Community)
			if !cl.Known {
				t.Errorf("%s: entry %s unknown to Classify", s.IXP, e.Community)
				continue
			}
			if cl.Action != e.Action {
				t.Errorf("%s: entry %s action %v, Classify says %v", s.IXP, e.Community, e.Action, cl.Action)
			}
			if e.Target == TargetPeer && cl.TargetASN != e.TargetASN {
				t.Errorf("%s: entry %s target %d, Classify says %d", s.IXP, e.Community, e.TargetASN, cl.TargetASN)
			}
		}
	}
}

func TestSchemeBuilderErrors(t *testing.T) {
	ams := ProfileByName("AMS-IX")
	if _, err := ams.Prepend(1, 15169); err == nil {
		t.Error("AMS-IX Prepend must error")
	}
	linx := ProfileByName("LINX")
	if _, err := linx.BlackholeCommunity(); err == nil {
		t.Error("LINX BlackholeCommunity must error")
	}
	de := ProfileByName("DE-CIX")
	if _, err := de.Prepend(0, 1); err == nil {
		t.Error("prepend count 0 must error")
	}
	if _, err := de.Prepend(4, 1); err == nil {
		t.Error("prepend count 4 must error")
	}
	if _, err := de.Info(de.InfoCount); err == nil {
		t.Error("out-of-range Info must error")
	}
	if _, err := de.Info(-1); err == nil {
		t.Error("negative Info must error")
	}
}

func TestSchemeValidateRejectsCollisions(t *testing.T) {
	bad := &Scheme{IXP: "X", RSASN: 100, InfoASN: 100}
	if err := bad.Validate(); err == nil {
		t.Error("RS/info collision accepted")
	}
	bad2 := &Scheme{IXP: "X", RSASN: 65502, InfoASN: 5}
	if err := bad2.Validate(); err == nil {
		t.Error("RSASN in prepend range accepted")
	}
	bad3 := &Scheme{RSASN: 1, InfoASN: 2}
	if err := bad3.Validate(); err == nil {
		t.Error("empty name accepted")
	}
}

func TestDictionaryLookupPathsAgree(t *testing.T) {
	d := Build(ProfileByName("DE-CIX"))
	if d.Size() != 774 {
		t.Fatalf("size = %d", d.Size())
	}
	for _, e := range d.Entries() {
		a, okA := d.Lookup(e.Community)
		b, okB := d.LookupBinary(e.Community)
		if !okA || !okB {
			t.Fatalf("entry %s not found (map=%v binary=%v)", e.Community, okA, okB)
		}
		if a.Community != b.Community || a.Action != b.Action {
			t.Fatalf("lookup paths disagree for %s", e.Community)
		}
	}
	if _, ok := d.Lookup(bgp.MustParseCommunity("12345:12345")); ok {
		t.Error("absent community found via map")
	}
	if _, ok := d.LookupBinary(bgp.MustParseCommunity("12345:12345")); ok {
		t.Error("absent community found via binary search")
	}
}

func TestMergedDictionary(t *testing.T) {
	m := Merged(Profiles())
	// The merged set is smaller than the 3,183 sum because IXPs share
	// values (blackhole, overlapping 0:target entries).
	if m.Size() >= 3183 {
		t.Errorf("merged size = %d, want < 3183 (shared values collapse)", m.Size())
	}
	if m.Size() < 1000 {
		t.Errorf("merged size = %d suspiciously small", m.Size())
	}
	if TotalEntries(Profiles()) != 3183 {
		t.Errorf("TotalEntries = %d, want 3183", TotalEntries(Profiles()))
	}
	if _, ok := m.Lookup(bgp.BlackholeWellKnown); !ok {
		t.Error("merged dictionary misses the blackhole community")
	}
}

func TestActionTypeStrings(t *testing.T) {
	want := map[ActionType]string{
		Informational:   "informational",
		DoNotAnnounceTo: "do-not-announce-to",
		AnnounceOnlyTo:  "announce-only-to",
		PrependTo:       "prepend-to",
		Blackhole:       "blackholing",
		ActionType(42):  "unknown",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), s)
		}
	}
	if Informational.IsAction() {
		t.Error("informational must not be an action")
	}
	for _, a := range ActionTypes {
		if !a.IsAction() {
			t.Errorf("%v must be an action", a)
		}
	}
	for tk, s := range map[TargetKind]string{TargetNone: "none", TargetAll: "all", TargetPeer: "peer"} {
		if tk.String() != s {
			t.Errorf("TargetKind %d = %q, want %q", int(tk), tk.String(), s)
		}
	}
}

func TestProfileByNameUnknown(t *testing.T) {
	if ProfileByName("nope") != nil {
		t.Error("unknown profile must be nil")
	}
}

func TestDocumentedTargetsAvoidAnchors(t *testing.T) {
	for _, s := range Profiles() {
		for _, tgt := range s.DocumentedTargets {
			if tgt == s.RSASN || tgt == s.InfoASN || tgt == 0 {
				t.Errorf("%s: documented target %d collides with an anchor", s.IXP, tgt)
			}
		}
	}
}
