package dictionary

import (
	"testing"

	"ixplight/internal/bgp"
)

func TestExtPrependRoundTrip(t *testing.T) {
	ams := ProfileByName("AMS-IX")
	for n := 1; n <= 3; n++ {
		e, err := ams.ExtPrepend(n, 15169)
		if err != nil {
			t.Fatal(err)
		}
		cl := ams.ClassifyExtended(e)
		if !cl.Known || cl.Action != PrependTo || cl.PrependCount != n || cl.TargetASN != 15169 {
			t.Errorf("n=%d: class = %+v", n, cl)
		}
	}
}

func TestExtPrependUnsupported(t *testing.T) {
	de := ProfileByName("DE-CIX")
	if _, err := de.ExtPrepend(1, 15169); err == nil {
		t.Error("DE-CIX ext prepend must error")
	}
	ams := ProfileByName("AMS-IX")
	if _, err := ams.ExtPrepend(0, 15169); err == nil {
		t.Error("prepend count 0 must error")
	}
	if _, err := ams.ExtPrepend(4, 15169); err == nil {
		t.Error("prepend count 4 must error")
	}
	// A prepend-encoded value under a non-supporting scheme is unknown.
	e, _ := ams.ExtPrepend(2, 15169)
	if de.ClassifyExtended(e).Known {
		t.Error("DE-CIX must not recognise AMS-IX's ext prepend (different RS ASN)")
	}
}

func TestExtInfoClassifies(t *testing.T) {
	for _, s := range Profiles() {
		e := s.ExtInfo(5)
		cl := s.ClassifyExtended(e)
		if !cl.Known || cl.Action != Informational {
			t.Errorf("%s: ExtInfo class = %+v", s.IXP, cl)
		}
	}
}

func TestClassifyExtendedForeign(t *testing.T) {
	s := ProfileByName("AMS-IX")
	foreign := bgp.NewTwoOctetASExtended(bgp.ExtSubTypeRouteTarget, 4999, 1)
	if s.ClassifyExtended(foreign).Known {
		t.Error("foreign route-target classified as known")
	}
	opaque := bgp.ExtendedCommunity{0x03, 0x0c, 1, 2, 3, 4, 5, 6}
	if s.ClassifyExtended(opaque).Known {
		t.Error("opaque value classified as known")
	}
	// Malformed prepend payloads are unknown.
	bad := bgp.NewTwoOctetASExtended(bgp.ExtSubTypePrependAction, s.RSASN, 0) // count 0
	if s.ClassifyExtended(bad).Known {
		t.Error("count-0 prepend classified as known")
	}
	bad2 := bgp.NewTwoOctetASExtended(bgp.ExtSubTypePrependAction, s.RSASN, 9<<16|15169)
	if s.ClassifyExtended(bad2).Known {
		t.Error("count-9 prepend classified as known")
	}
}

func TestLargeBuildersRoundTrip(t *testing.T) {
	s := ProfileByName("DE-CIX")
	const wide = uint32(263075) // 32-bit-only target

	dna, err := s.LargeDoNotAnnounce(wide)
	if err != nil {
		t.Fatal(err)
	}
	cl := s.ClassifyLarge(dna)
	if !cl.Known || cl.Action != DoNotAnnounceTo || cl.TargetASN != wide {
		t.Errorf("large DNA class = %+v", cl)
	}

	all, _ := s.LargeDoNotAnnounce(0)
	if cl := s.ClassifyLarge(all); !cl.Known || cl.Target != TargetAll {
		t.Errorf("large DNA-all class = %+v", cl)
	}

	aot, _ := s.LargeAnnounceOnly(wide)
	if cl := s.ClassifyLarge(aot); !cl.Known || cl.Action != AnnounceOnlyTo || cl.TargetASN != wide {
		t.Errorf("large AOT class = %+v", cl)
	}

	for n := 1; n <= 3; n++ {
		p, err := s.LargePrepend(n, wide)
		if err != nil {
			t.Fatal(err)
		}
		if cl := s.ClassifyLarge(p); !cl.Known || cl.Action != PrependTo || cl.PrependCount != n {
			t.Errorf("large prepend %d class = %+v", n, cl)
		}
	}

	info, err := s.LargeInfo(3)
	if err != nil {
		t.Fatal(err)
	}
	if cl := s.ClassifyLarge(info); !cl.Known || cl.Action != Informational {
		t.Errorf("large info class = %+v", cl)
	}
}

func TestLargeUnsupportedIXPs(t *testing.T) {
	for _, name := range []string{"LINX", "AMS-IX"} {
		s := ProfileByName(name)
		if _, err := s.LargeDoNotAnnounce(1); err == nil {
			t.Errorf("%s: LargeDoNotAnnounce must error", name)
		}
		if _, err := s.LargeInfo(0); err == nil {
			t.Errorf("%s: LargeInfo must error", name)
		}
		// Values that would be valid at DE-CIX are unknown here.
		de := ProfileByName("DE-CIX")
		v, _ := de.LargeDoNotAnnounce(15169)
		if s.ClassifyLarge(v).Known {
			t.Errorf("%s recognised DE-CIX's large community", name)
		}
	}
}

func TestClassifyLargeEdges(t *testing.T) {
	s := ProfileByName("DE-CIX")
	rs := uint32(s.RSASN)
	cases := []struct {
		l    bgp.LargeCommunity
		want bool
	}{
		{bgp.LargeCommunity{Global: rs, Local1: LargeFnBlackhole, Local2: 0}, true},
		{bgp.LargeCommunity{Global: rs, Local1: 5, Local2: 1}, false},               // gap between prepend and info
		{bgp.LargeCommunity{Global: rs, Local1: LargeFnInfoBase, Local2: 7}, false}, // info with target set
		{bgp.LargeCommunity{Global: rs, Local1: LargeFnInfoBase + uint32(s.InfoCount), Local2: 0}, false},
		{bgp.LargeCommunity{Global: 64512, Local1: 0, Local2: 1}, false}, // foreign global
	}
	for i, tt := range cases {
		if got := s.ClassifyLarge(tt.l).Known; got != tt.want {
			t.Errorf("case %d (%v): Known = %v, want %v", i, tt.l, got, tt.want)
		}
	}
	// Blackhole at an IXP without blackholing stays unknown.
	ixbr := ProfileByName("IX.br-SP")
	bh := bgp.LargeCommunity{Global: uint32(ixbr.RSASN), Local1: LargeFnBlackhole, Local2: 0}
	if ixbr.ClassifyLarge(bh).Known {
		t.Error("IX.br-SP large blackhole must be unknown")
	}
	// Prepend at an IXP without prepending stays unknown.
	amsLike := &Scheme{IXP: "T", RSASN: 1000, InfoASN: 1001, InfoCount: 2, SupportsLarge: true}
	p := bgp.LargeCommunity{Global: 1000, Local1: LargeFnPrependBase, Local2: 5}
	if amsLike.ClassifyLarge(p).Known {
		t.Error("prepend without SupportsPrepend must be unknown")
	}
}

func TestLargePrependUnsupportedVariants(t *testing.T) {
	de := ProfileByName("DE-CIX")
	if _, err := de.LargePrepend(0, 1); err == nil {
		t.Error("count 0 must error")
	}
	if _, err := de.LargeInfo(-1); err == nil {
		t.Error("negative info index must error")
	}
	if _, err := de.LargeInfo(de.InfoCount); err == nil {
		t.Error("out-of-range info index must error")
	}
}
