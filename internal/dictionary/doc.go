// Package dictionary implements the IXP BGP communities dictionary the
// paper builds in §3: per-IXP community schemes with well-defined
// semantics, classification of observed community values into
// informational vs action (and the four action groups of §5.3), target
// extraction, and the enumerated dictionary entries whose per-IXP
// counts the paper reports (649 for IX.br-SP, 774 for each DE-CIX,
// 58 for LINX, 37 for AMS-IX, 50 for BCIX, 67 for Netnod).
//
// The schemes mirror the community encodings the eight IXPs publish:
//
//   - 0:<peer-as>          do not announce to <peer-as>
//   - 0:<rs-as>            do not announce to anyone
//   - <rs-as>:<peer-as>    announce only to <peer-as>
//   - <rs-as>:<rs-as>      announce to everyone
//   - 65501..65503:<peer>  prepend 1–3× towards <peer-as>
//   - 65535:666            blackhole (RFC 7999)
//   - <info-as>:<k>        informational tags added by the route server
//
// Per-IXP feature flags reproduce the support matrix the paper
// observes in Table 2 (no blackholing at IX.br-SP and LINX, no
// standard-community prepending at AMS-IX).
package dictionary
