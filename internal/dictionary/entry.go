package dictionary

import (
	"fmt"
	"sort"

	"ixplight/internal/bgp"
)

// Entry is one enumerated dictionary row: a concrete community value
// with its semantics under one IXP's scheme.
type Entry struct {
	Community   bgp.Community
	IXP         string
	Action      ActionType
	Target      TargetKind
	TargetASN   uint32
	Description string
}

// Entries enumerates the scheme's full dictionary: the union of the
// route-server configuration and the website documentation, as the
// paper constructs it. The result is sorted by community value.
func (s *Scheme) Entries() []Entry {
	var out []Entry
	add := func(c bgp.Community, a ActionType, tk TargetKind, asn uint32, desc string) {
		out = append(out, Entry{Community: c, IXP: s.IXP, Action: a, Target: tk, TargetASN: asn, Description: desc})
	}

	add(s.DoNotAnnounceAll(), DoNotAnnounceTo, TargetAll, 0, "do not announce to any peer")
	add(s.AnnounceAll(), AnnounceOnlyTo, TargetAll, 0, "announce to all peers")

	for _, t := range s.DocumentedTargets {
		add(s.DoNotAnnounce(t), DoNotAnnounceTo, TargetPeer, uint32(t),
			fmt.Sprintf("do not announce to AS%d", t))
		add(s.AnnounceOnly(t), AnnounceOnlyTo, TargetPeer, uint32(t),
			fmt.Sprintf("announce only to AS%d", t))
		if s.SupportsPrepend {
			for n := 1; n <= 3; n++ {
				c, _ := s.Prepend(n, t)
				add(c, PrependTo, TargetPeer, uint32(t),
					fmt.Sprintf("prepend %dx towards AS%d", n, t))
			}
		}
	}
	if s.SupportsBlackhole {
		c, _ := s.BlackholeCommunity()
		add(c, Blackhole, TargetNone, 0, "blackhole traffic for the prefix")
	}
	for k := 0; k < s.InfoCount; k++ {
		c, _ := s.Info(k)
		add(c, Informational, TargetNone, 0, fmt.Sprintf("informational tag #%d", k))
	}

	sort.Slice(out, func(i, j int) bool { return out[i].Community < out[j].Community })
	return out
}

// RSConfigEntries simulates the (incomplete) community list extracted
// from the route-server configuration file: everything except the
// website-only tail of documented targets. The paper found exactly
// this gap, which is why it unions the two sources.
func (s *Scheme) RSConfigEntries() []Entry {
	missing := make(map[uint32]bool)
	// ~10% of targets (at least one) are documented only on the website.
	tail := max(1, len(s.DocumentedTargets)/10)
	for _, t := range s.DocumentedTargets[len(s.DocumentedTargets)-tail:] {
		missing[uint32(t)] = true
	}
	var out []Entry
	for _, e := range s.Entries() {
		if e.Target == TargetPeer && missing[e.TargetASN] {
			continue
		}
		out = append(out, e)
	}
	return out
}

// WebsiteEntries simulates the website documentation: all action
// communities, but not the informational tags (which only the RS
// config describes).
func (s *Scheme) WebsiteEntries() []Entry {
	var out []Entry
	for _, e := range s.Entries() {
		if e.Action != Informational {
			out = append(out, e)
		}
	}
	return out
}

// UnionEntries merges entry lists by community value, preferring the
// first occurrence, and returns the result sorted. Building a
// dictionary as union(RS config, website docs) reproduces §3.
func UnionEntries(lists ...[]Entry) []Entry {
	seen := make(map[bgp.Community]bool)
	var out []Entry
	for _, list := range lists {
		for _, e := range list {
			if !seen[e.Community] {
				seen[e.Community] = true
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Community < out[j].Community })
	return out
}
