package dictionary

import (
	"fmt"

	"ixplight/internal/bgp"
)

// Extended and large community schemes.
//
// The paper scopes its analysis to standard communities and leaves the
// other flavours "for future work" (§4); this file implements that
// future work. Two real-world encodings are modelled:
//
//   - AMS-IX's fine-grained prepending, which is only available via
//     extended communities (§5.3): a two-octet-AS-specific value with
//     the RS ASN as administrator, a private sub-type, and the prepend
//     count packed with the 16-bit target in the local field.
//
//   - Large-community mirrors of the standard action set, which exist
//     precisely because standard communities cannot name 32-bit
//     targets: {rs-asn, function, target-asn} with the function
//     selecting the action.
//
// Large-community function selectors.
const (
	LargeFnDoNotAnnounce uint32 = 0
	LargeFnAnnounceOnly  uint32 = 1
	LargeFnPrependBase   uint32 = 2 // 2,3,4 = prepend 1–3×
	LargeFnBlackhole     uint32 = 666
	LargeFnInfoBase      uint32 = 100
)

// ExtPrepend builds the extended-community prepend request: n (1–3)
// prepends towards target. Only IXPs with SupportsExtPrepend (AMS-IX)
// define it.
func (s *Scheme) ExtPrepend(n int, target uint16) (bgp.ExtendedCommunity, error) {
	if !s.SupportsExtPrepend {
		return bgp.ExtendedCommunity{}, fmt.Errorf("dictionary: %s does not support extended-community prepending", s.IXP)
	}
	if n < 1 || n > 3 {
		return bgp.ExtendedCommunity{}, fmt.Errorf("dictionary: prepend count %d out of range 1..3", n)
	}
	local := uint32(n)<<16 | uint32(target)
	return bgp.NewTwoOctetASExtended(bgp.ExtSubTypePrependAction, s.RSASN, local), nil
}

// ExtInfo builds the k-th extended informational tag the route server
// attaches (mirrors Info for the extended flavour).
func (s *Scheme) ExtInfo(k int) bgp.ExtendedCommunity {
	return bgp.NewTwoOctetASExtended(bgp.ExtSubTypeTrafficAction, s.RSASN, uint32(k))
}

// ClassifyExtended maps an extended community to its meaning under the
// scheme. Values whose administrator is not the RS ASN are unknown.
func (s *Scheme) ClassifyExtended(e bgp.ExtendedCommunity) Class {
	if !e.IsTwoOctetAS() || e.ASN() != s.RSASN {
		return Class{}
	}
	switch e.SubType() {
	case bgp.ExtSubTypePrependAction:
		if !s.SupportsExtPrepend {
			return Class{}
		}
		local := e.LocalAdmin()
		n := int(local >> 16)
		target := local & 0xFFFF
		if n < 1 || n > 3 || target == 0 {
			return Class{}
		}
		return Class{Known: true, Action: PrependTo, Target: TargetPeer, TargetASN: target, PrependCount: n}
	case bgp.ExtSubTypeTrafficAction:
		return Class{Known: true, Action: Informational, Target: TargetNone}
	default:
		return Class{}
	}
}

// Large-community builders. Targets may be full 32-bit ASNs — the
// capability standard communities lack.

// LargeDoNotAnnounce builds {rs, 0, target}; target 0 means everyone.
func (s *Scheme) LargeDoNotAnnounce(target uint32) (bgp.LargeCommunity, error) {
	if !s.SupportsLarge {
		return bgp.LargeCommunity{}, fmt.Errorf("dictionary: %s does not define large communities", s.IXP)
	}
	return bgp.LargeCommunity{Global: uint32(s.RSASN), Local1: LargeFnDoNotAnnounce, Local2: target}, nil
}

// LargeAnnounceOnly builds {rs, 1, target}; target 0 means everyone.
func (s *Scheme) LargeAnnounceOnly(target uint32) (bgp.LargeCommunity, error) {
	if !s.SupportsLarge {
		return bgp.LargeCommunity{}, fmt.Errorf("dictionary: %s does not define large communities", s.IXP)
	}
	return bgp.LargeCommunity{Global: uint32(s.RSASN), Local1: LargeFnAnnounceOnly, Local2: target}, nil
}

// LargePrepend builds {rs, 1+n, target}: n (1–3) prepends.
func (s *Scheme) LargePrepend(n int, target uint32) (bgp.LargeCommunity, error) {
	if !s.SupportsLarge {
		return bgp.LargeCommunity{}, fmt.Errorf("dictionary: %s does not define large communities", s.IXP)
	}
	if !s.SupportsPrepend {
		return bgp.LargeCommunity{}, fmt.Errorf("dictionary: %s does not support prepending", s.IXP)
	}
	if n < 1 || n > 3 {
		return bgp.LargeCommunity{}, fmt.Errorf("dictionary: prepend count %d out of range 1..3", n)
	}
	return bgp.LargeCommunity{Global: uint32(s.RSASN), Local1: LargeFnPrependBase + uint32(n) - 1, Local2: target}, nil
}

// LargeInfo builds the k-th large informational tag.
func (s *Scheme) LargeInfo(k int) (bgp.LargeCommunity, error) {
	if !s.SupportsLarge {
		return bgp.LargeCommunity{}, fmt.Errorf("dictionary: %s does not define large communities", s.IXP)
	}
	if k < 0 || k >= s.InfoCount {
		return bgp.LargeCommunity{}, fmt.Errorf("dictionary: large info index %d out of range", k)
	}
	return bgp.LargeCommunity{Global: uint32(s.RSASN), Local1: LargeFnInfoBase + uint32(k), Local2: 0}, nil
}

// ClassifyLarge maps a large community to its meaning under the
// scheme.
func (s *Scheme) ClassifyLarge(l bgp.LargeCommunity) Class {
	if !s.SupportsLarge || l.Global != uint32(s.RSASN) {
		return Class{}
	}
	targetOf := func() (TargetKind, uint32) {
		if l.Local2 == 0 {
			return TargetAll, 0
		}
		return TargetPeer, l.Local2
	}
	switch {
	case l.Local1 == LargeFnDoNotAnnounce:
		tk, asn := targetOf()
		return Class{Known: true, Action: DoNotAnnounceTo, Target: tk, TargetASN: asn}
	case l.Local1 == LargeFnAnnounceOnly:
		tk, asn := targetOf()
		return Class{Known: true, Action: AnnounceOnlyTo, Target: tk, TargetASN: asn}
	case l.Local1 >= LargeFnPrependBase && l.Local1 < LargeFnPrependBase+3:
		if !s.SupportsPrepend {
			return Class{}
		}
		tk, asn := targetOf()
		return Class{Known: true, Action: PrependTo, Target: tk, TargetASN: asn,
			PrependCount: int(l.Local1-LargeFnPrependBase) + 1}
	case l.Local1 == LargeFnBlackhole:
		if !s.SupportsBlackhole {
			return Class{}
		}
		return Class{Known: true, Action: Blackhole, Target: TargetNone}
	case l.Local1 >= LargeFnInfoBase && l.Local1 < LargeFnInfoBase+uint32(s.InfoCount):
		if l.Local2 != 0 {
			return Class{}
		}
		return Class{Known: true, Action: Informational, Target: TargetNone}
	default:
		return Class{}
	}
}
