package dictionary

// ActionType is the paper's community taxonomy: informational tags vs
// the four traffic-engineering action groups of §5.3.
type ActionType int

// Community classes. Informational is the zero value so that an
// unpopulated classification reads as "no action".
const (
	Informational ActionType = iota
	DoNotAnnounceTo
	AnnounceOnlyTo
	PrependTo
	Blackhole
)

// ActionTypes lists the four action groups in the order the paper's
// tables present them.
var ActionTypes = []ActionType{DoNotAnnounceTo, AnnounceOnlyTo, PrependTo, Blackhole}

// String implements fmt.Stringer with the paper's names.
func (a ActionType) String() string {
	switch a {
	case Informational:
		return "informational"
	case DoNotAnnounceTo:
		return "do-not-announce-to"
	case AnnounceOnlyTo:
		return "announce-only-to"
	case PrependTo:
		return "prepend-to"
	case Blackhole:
		return "blackholing"
	default:
		return "unknown"
	}
}

// IsAction reports whether a is one of the four action groups.
func (a ActionType) IsAction() bool { return a != Informational }

// TargetKind says what an action community points at.
type TargetKind int

// Target kinds.
const (
	TargetNone TargetKind = iota // informational or blackhole: no AS target
	TargetAll                    // applies to every peer
	TargetPeer                   // applies to one specific peer ASN
)

// String implements fmt.Stringer.
func (t TargetKind) String() string {
	switch t {
	case TargetAll:
		return "all"
	case TargetPeer:
		return "peer"
	default:
		return "none"
	}
}

// Class is the classification of one community value under one IXP's
// scheme.
type Class struct {
	// Known reports whether the IXP defines this community (the
	// "IXP-defined" vs "unknown" split of Fig. 1).
	Known bool
	// Action is the community group; Informational when the community
	// carries information rather than a request.
	Action ActionType
	// Target and TargetASN identify whom an action applies to.
	Target    TargetKind
	TargetASN uint32
	// PrependCount is 1–3 for PrependTo communities.
	PrependCount int
}

// IsAction reports whether the community is a known action community.
func (c Class) IsAction() bool { return c.Known && c.Action.IsAction() }
