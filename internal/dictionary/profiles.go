package dictionary

import "ixplight/internal/asdb"

// wellKnownTargets are the peer ASNs that real IXP documentation
// enumerates community examples for — the heavily-targeted networks of
// the paper's §5.4 (all 16-bit, as standard communities require).
var wellKnownTargets = []uint16{
	asdb.ASNHurricaneElectric,
	asdb.ASNGoogle,
	asdb.ASNOVHcloud,
	asdb.ASNAkamai,
	asdb.ASNCloudflare,
	asdb.ASNNetflix,
	asdb.ASNEdgecast,
	asdb.ASNLeaseWeb,
	asdb.ASNApple,
	asdb.ASNMeta,
	asdb.ASNAmazon,
	asdb.ASNMicrosoft,
	asdb.ASNFilanco,
	asdb.ASNRNP,
	asdb.ASNCDNetworks,
	asdb.ASNItau,
	asdb.ASNNICSimet,
	asdb.ASNProlink,
	asdb.ASNSyntegra,
	asdb.ASNTelia,
	asdb.ASNGTT,
	asdb.ASNCogent,
	asdb.ASNLumen,
}

// documentedTargets returns n target ASNs: the well-known list first,
// padded with synthetic 16-bit ASNs from 27001 upward. The padding
// range is chosen to avoid every scheme anchor ASN.
func documentedTargets(n int) []uint16 {
	out := make([]uint16, 0, n)
	for _, t := range wellKnownTargets {
		if len(out) == n {
			return out
		}
		out = append(out, t)
	}
	for next := uint16(27001); len(out) < n; next++ {
		out = append(out, next)
	}
	return out
}

// The eight IXP schemes. Route-server ASNs follow the IXPs' real
// 16-bit infrastructure ASNs; informational communities use the
// adjacent ASN. Feature flags reproduce the support matrix the paper
// observes in Table 2 (July–October 2021): no blackholing at IX.br-SP
// and LINX, no standard-community prepending at AMS-IX. The
// documented-target counts size each dictionary to the §3 entry
// counts (649, 774, 58, 37, 50, 67).
func newIXBrSP() *Scheme {
	return &Scheme{
		IXP: "IX.br-SP", RSASN: 26162, InfoASN: 26163, InfoCount: 47,
		SupportsPrepend: true, SupportsBlackhole: false, SupportsLarge: true,
		DocumentedTargets: documentedTargets(120),
	}
}

func newDECIX(name string, rsASN uint16) *Scheme {
	return &Scheme{
		IXP: name, RSASN: rsASN, InfoASN: rsASN + 1, InfoCount: 21,
		SupportsPrepend: true, SupportsBlackhole: true, SupportsLarge: true,
		DocumentedTargets: documentedTargets(150),
	}
}

func newLINX() *Scheme {
	return &Scheme{
		IXP: "LINX", RSASN: 8714, InfoASN: 8715, InfoCount: 6,
		SupportsPrepend: true, SupportsBlackhole: false,
		DocumentedTargets: documentedTargets(10),
	}
}

func newAMSIX() *Scheme {
	return &Scheme{
		IXP: "AMS-IX", RSASN: 6777, InfoASN: 6778, InfoCount: 6,
		SupportsPrepend: false, SupportsBlackhole: true, SupportsExtPrepend: true,
		DocumentedTargets: documentedTargets(14),
	}
}

func newBCIX() *Scheme {
	return &Scheme{
		IXP: "BCIX", RSASN: 16374, InfoASN: 16375, InfoCount: 2,
		SupportsPrepend: true, SupportsBlackhole: true, SupportsLarge: true,
		DocumentedTargets: documentedTargets(9),
	}
}

func newNetnod() *Scheme {
	return &Scheme{
		IXP: "Netnod", RSASN: 52005, InfoASN: 52006, InfoCount: 4,
		SupportsPrepend: true, SupportsBlackhole: true, SupportsLarge: true,
		DocumentedTargets: documentedTargets(12),
	}
}

// Profiles returns the eight IXP schemes in the paper's Table 1 order.
// Each call builds fresh values so callers may mutate them freely.
func Profiles() []*Scheme {
	return []*Scheme{
		newIXBrSP(),
		newDECIX("DE-CIX", 6695),
		newLINX(),
		newAMSIX(),
		newDECIX("DE-CIX Mad", 61968),
		newDECIX("DE-CIX NYC", 63034),
		newBCIX(),
		newNetnod(),
	}
}

// ProfileByName returns the scheme for an IXP short name, or nil.
func ProfileByName(name string) *Scheme {
	for _, s := range Profiles() {
		if s.IXP == name {
			return s
		}
	}
	return nil
}

// BigFour lists the IXPs the paper's main analyses focus on.
var BigFour = []string{"IX.br-SP", "DE-CIX", "LINX", "AMS-IX"}
