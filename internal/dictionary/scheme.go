package dictionary

import (
	"fmt"

	"ixplight/internal/bgp"
)

// Prepend community high halves (the de-facto convention DE-CIX and
// IX.br document: 65501:x prepends once, 65502:x twice, 65503:x three
// times).
const (
	PrependOnceASN   = 65501
	PrependTwiceASN  = 65502
	PrependThriceASN = 65503
)

// Scheme describes how one IXP encodes its standard BGP communities.
// It can classify arbitrary community values (pattern-based, so any
// target ASN is recognised) and construct communities for the route
// server and the workload generator.
type Scheme struct {
	// IXP is the short name used across the repo ("IX.br-SP", ...).
	IXP string
	// RSASN is the route server's 16-bit ASN; it anchors the
	// do-not-announce / announce-only encodings.
	RSASN uint16
	// InfoASN is the high half of informational communities the RS
	// attaches on ingress.
	InfoASN uint16
	// InfoCount is how many informational values the IXP defines
	// (InfoASN:0 .. InfoASN:InfoCount-1).
	InfoCount int
	// SupportsPrepend / SupportsBlackhole reproduce the per-IXP
	// feature matrix of Table 2.
	SupportsPrepend   bool
	SupportsBlackhole bool
	// SupportsExtPrepend enables the extended-community prepending
	// encoding (AMS-IX, §5.3: standard-community prepending there only
	// exists in the to-everyone form).
	SupportsExtPrepend bool
	// SupportsLarge enables the large-community mirror of the action
	// set, needed for 32-bit target ASNs.
	SupportsLarge bool
	// DocumentedTargets are the peer ASNs the IXP's website explicitly
	// enumerates community values for; they size the dictionary.
	DocumentedTargets []uint16
}

// Validate checks the scheme's internal consistency: the anchor ASNs
// must not collide with each other or with the reserved prepend and
// well-known ranges.
func (s *Scheme) Validate() error {
	if s.IXP == "" {
		return fmt.Errorf("dictionary: scheme without IXP name")
	}
	anchors := map[uint16]string{0: "zero"}
	for _, a := range []struct {
		asn  uint16
		name string
	}{{s.RSASN, "rs"}, {s.InfoASN, "info"}} {
		if a.asn >= PrependOnceASN {
			return fmt.Errorf("dictionary: %s: %s ASN %d collides with reserved space", s.IXP, a.name, a.asn)
		}
		if prev, dup := anchors[a.asn]; dup {
			return fmt.Errorf("dictionary: %s: %s ASN %d collides with %s", s.IXP, a.name, a.asn, prev)
		}
		anchors[a.asn] = a.name
	}
	if s.InfoCount < 0 {
		return fmt.Errorf("dictionary: %s: negative InfoCount", s.IXP)
	}
	return nil
}

// Classify maps one standard community value to its meaning under this
// scheme. Values the IXP does not define come back with Known=false.
func (s *Scheme) Classify(c bgp.Community) Class {
	high, low := c.ASN(), c.Value()
	switch {
	case c == bgp.BlackholeWellKnown:
		if !s.SupportsBlackhole {
			return Class{}
		}
		return Class{Known: true, Action: Blackhole, Target: TargetNone}

	case high == 0:
		if low == 0 {
			return Class{} // 0:0 is undefined everywhere
		}
		if low == s.RSASN {
			return Class{Known: true, Action: DoNotAnnounceTo, Target: TargetAll}
		}
		return Class{Known: true, Action: DoNotAnnounceTo, Target: TargetPeer, TargetASN: uint32(low)}

	case high == s.RSASN:
		if low == s.RSASN {
			return Class{Known: true, Action: AnnounceOnlyTo, Target: TargetAll}
		}
		if low == 0 {
			return Class{}
		}
		return Class{Known: true, Action: AnnounceOnlyTo, Target: TargetPeer, TargetASN: uint32(low)}

	case high >= PrependOnceASN && high <= PrependThriceASN:
		if !s.SupportsPrepend || low == 0 {
			return Class{}
		}
		n := int(high - PrependOnceASN + 1)
		if low == s.RSASN {
			return Class{Known: true, Action: PrependTo, Target: TargetAll, PrependCount: n}
		}
		return Class{Known: true, Action: PrependTo, Target: TargetPeer, TargetASN: uint32(low), PrependCount: n}

	case high == s.InfoASN:
		if int(low) < s.InfoCount {
			return Class{Known: true, Action: Informational, Target: TargetNone}
		}
		return Class{}

	default:
		return Class{}
	}
}

// DoNotAnnounce builds the community requesting the RS not to export a
// route to target.
func (s *Scheme) DoNotAnnounce(target uint16) bgp.Community {
	return bgp.NewCommunity(0, target)
}

// DoNotAnnounceAll builds the community blocking export to all peers.
func (s *Scheme) DoNotAnnounceAll() bgp.Community {
	return bgp.NewCommunity(0, s.RSASN)
}

// AnnounceOnly builds the community restricting export to target.
func (s *Scheme) AnnounceOnly(target uint16) bgp.Community {
	return bgp.NewCommunity(s.RSASN, target)
}

// AnnounceAll builds the community explicitly allowing export to all.
func (s *Scheme) AnnounceAll() bgp.Community {
	return bgp.NewCommunity(s.RSASN, s.RSASN)
}

// Prepend builds the community asking for n (1–3) prepends towards
// target; target == s.RSASN means "towards everyone".
func (s *Scheme) Prepend(n int, target uint16) (bgp.Community, error) {
	if !s.SupportsPrepend {
		return 0, fmt.Errorf("dictionary: %s does not support prepend communities", s.IXP)
	}
	if n < 1 || n > 3 {
		return 0, fmt.Errorf("dictionary: prepend count %d out of range 1..3", n)
	}
	return bgp.NewCommunity(uint16(PrependOnceASN+n-1), target), nil
}

// BlackholeCommunity returns the RFC 7999 community if supported.
func (s *Scheme) BlackholeCommunity() (bgp.Community, error) {
	if !s.SupportsBlackhole {
		return 0, fmt.Errorf("dictionary: %s does not support blackholing", s.IXP)
	}
	return bgp.BlackholeWellKnown, nil
}

// Info builds the k-th informational community.
func (s *Scheme) Info(k int) (bgp.Community, error) {
	if k < 0 || k >= s.InfoCount {
		return 0, fmt.Errorf("dictionary: %s defines %d informational communities, index %d out of range", s.IXP, s.InfoCount, k)
	}
	return bgp.NewCommunity(s.InfoASN, uint16(k)), nil
}
