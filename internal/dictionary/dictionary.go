package dictionary

import (
	"sort"

	"ixplight/internal/bgp"
)

// Dictionary is an indexed set of enumerated entries for one IXP (or a
// merged set across IXPs). It offers two lookup paths — a hash map and
// binary search over a sorted slice — so the representation choice can
// be benchmarked (see BenchmarkAblation_DictionaryLookup).
type Dictionary struct {
	ixp     string
	entries []Entry // sorted by community
	index   map[bgp.Community]int
}

// Build constructs the dictionary for one scheme, as the union of the
// RS configuration and the website documentation (§3).
func Build(s *Scheme) *Dictionary {
	return FromEntries(s.IXP, UnionEntries(s.RSConfigEntries(), s.WebsiteEntries()))
}

// FromEntries indexes an entry list. Entries are re-sorted and
// de-duplicated by community value.
func FromEntries(ixp string, entries []Entry) *Dictionary {
	entries = UnionEntries(entries)
	d := &Dictionary{
		ixp:     ixp,
		entries: entries,
		index:   make(map[bgp.Community]int, len(entries)),
	}
	for i, e := range entries {
		d.index[e.Community] = i
	}
	return d
}

// Merged builds one dictionary covering all the given schemes — the
// paper's 3,183-entry combined dictionary when called on Profiles().
// Colliding values (e.g. the shared RFC 7999 blackhole community) are
// kept once, labelled by the first scheme that defines them.
func Merged(schemes []*Scheme) *Dictionary {
	var all []Entry
	for _, s := range schemes {
		all = append(all, s.Entries()...)
	}
	return FromEntries("merged", all)
}

// IXP returns the dictionary's label.
func (d *Dictionary) IXP() string { return d.ixp }

// Size returns the number of distinct community values.
func (d *Dictionary) Size() int { return len(d.entries) }

// Entries returns the sorted entry list (shared, do not mutate).
func (d *Dictionary) Entries() []Entry { return d.entries }

// Lookup finds the entry for c via the hash index.
func (d *Dictionary) Lookup(c bgp.Community) (Entry, bool) {
	if i, ok := d.index[c]; ok {
		return d.entries[i], true
	}
	return Entry{}, false
}

// LookupBinary finds the entry for c via binary search over the sorted
// slice. Functionally identical to Lookup; kept for the ablation
// benchmark of index representations.
func (d *Dictionary) LookupBinary(c bgp.Community) (Entry, bool) {
	i := sort.Search(len(d.entries), func(i int) bool { return d.entries[i].Community >= c })
	if i < len(d.entries) && d.entries[i].Community == c {
		return d.entries[i], true
	}
	return Entry{}, false
}

// TotalEntries sums the per-scheme dictionary sizes without merging —
// the quantity the paper reports as "more than 3000 communities".
func TotalEntries(schemes []*Scheme) int {
	n := 0
	for _, s := range schemes {
		n += len(s.Entries())
	}
	return n
}
