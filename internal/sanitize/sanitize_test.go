package sanitize

import (
	"testing"

	"ixplight/internal/bgp"
	"ixplight/internal/collector"
	"ixplight/internal/netutil"
)

// snapshotWith builds a snapshot with n members and n×3 routes.
func snapshotWith(n int, date string) *collector.Snapshot {
	s := &collector.Snapshot{IXP: "X", Date: date}
	for i := 0; i < n; i++ {
		asn := uint32(100 + i)
		s.Members = append(s.Members, collector.Member{ASN: asn, IPv4: true})
		for j := 0; j < 3; j++ {
			s.Routes = append(s.Routes, bgp.Route{
				Prefix:  netutil.SyntheticV4Prefix(i*3 + j),
				NextHop: netutil.PeerAddrV4(i),
				ASPath:  bgp.ASPath{asn},
			})
		}
	}
	return s
}

func series(sizes ...int) []*collector.Snapshot {
	out := make([]*collector.Snapshot, len(sizes))
	for i, n := range sizes {
		out[i] = snapshotWith(n, "2021-07-19")
	}
	return out
}

func TestDetectValleySimple(t *testing.T) {
	// 100,100,60,100,100: day 2 drops 40% and recovers.
	snaps := series(100, 100, 60, 100, 100)
	valleys := DetectValleys(snaps, Options{})
	if len(valleys) != 1 || valleys[0] != 2 {
		t.Errorf("valleys = %v, want [2]", valleys)
	}
}

func TestGenuineDeclineIsNotAValley(t *testing.T) {
	// Drops 40% and stays down: real change, keep it.
	snaps := series(100, 100, 60, 58, 59, 60)
	if valleys := DetectValleys(snaps, Options{}); len(valleys) != 0 {
		t.Errorf("valleys = %v, want none (no recovery)", valleys)
	}
}

func TestSmallDipIgnored(t *testing.T) {
	// 20% dip is under the 30% threshold.
	snaps := series(100, 80, 100)
	if valleys := DetectValleys(snaps, Options{}); len(valleys) != 0 {
		t.Errorf("valleys = %v, want none", valleys)
	}
}

func TestRecoveryOutsideWindow(t *testing.T) {
	// Recovery happens 5 snapshots later, past the default window of 3.
	snaps := series(100, 60, 61, 60, 61, 60, 100)
	if valleys := DetectValleys(snaps, Options{}); len(valleys) != 0 {
		t.Errorf("valleys = %v, want none (late recovery)", valleys)
	}
	// A wider window accepts it.
	if valleys := DetectValleys(snaps, Options{RecoveryWindow: 6}); len(valleys) != 1 {
		t.Errorf("valleys = %v, want one with wide window", valleys)
	}
}

func TestMultipleValleys(t *testing.T) {
	snaps := series(100, 50, 100, 100, 40, 100, 100)
	valleys := DetectValleys(snaps, Options{})
	if len(valleys) != 2 || valleys[0] != 1 || valleys[1] != 4 {
		t.Errorf("valleys = %v, want [1 4]", valleys)
	}
}

func TestCleanRemovesValleys(t *testing.T) {
	snaps := series(100, 100, 55, 100, 100)
	kept, removed := Clean(snaps, Options{})
	if removed != 1 || len(kept) != 4 {
		t.Errorf("removed = %d kept = %d", removed, len(kept))
	}
	for _, s := range kept {
		if len(s.Members) == 55 {
			t.Error("valley snapshot survived cleaning")
		}
	}
}

func TestCleanEmptyAndSingle(t *testing.T) {
	if kept, removed := Clean(nil, Options{}); removed != 0 || len(kept) != 0 {
		t.Error("empty series mishandled")
	}
	one := series(100)
	if kept, removed := Clean(one, Options{}); removed != 0 || len(kept) != 1 {
		t.Error("single snapshot mishandled")
	}
}

func TestPrefixValleyAlsoDetected(t *testing.T) {
	// Members stable, prefixes collapse: collection lost routes only.
	snaps := series(100, 100, 100, 100)
	snaps[2].Routes = snaps[2].Routes[:90] // 300 → 90 prefixes (70% drop)
	valleys := DetectValleys(snaps, Options{})
	if len(valleys) != 1 || valleys[0] != 2 {
		t.Errorf("valleys = %v, want [2]", valleys)
	}
}

func TestZeroPreviousDaySafe(t *testing.T) {
	snaps := series(0, 0, 10)
	if valleys := DetectValleys(snaps, Options{}); len(valleys) != 0 {
		t.Errorf("valleys = %v on zero series", valleys)
	}
}
