// Package sanitize implements the paper's §3 data sanitation: snapshot
// series are inspected for "valleys" — days where the number of
// members and/or prefixes drops at least 30% below the previous day
// and returns to previous values on subsequent days — which indicate a
// failure at the IXP or in the collection, not real routing change.
// Valley snapshots are removed from the dataset (the paper dropped
// 13.5% of its snapshots this way).
package sanitize

import (
	"ixplight/internal/analysis"
	"ixplight/internal/collector"
)

// Options tune the valley detector. The zero value uses the paper's
// parameters.
type Options struct {
	// DropThreshold is the relative fall that flags a valley
	// (default 0.30, the paper's "dropped at least 30%").
	DropThreshold float64
	// RecoveryTolerance is how close to the pre-valley level the
	// series must return for the dip to count as a transient valley
	// rather than a genuine decline (default 0.15).
	RecoveryTolerance float64
	// RecoveryWindow is how many subsequent snapshots may pass before
	// recovery (default 3).
	RecoveryWindow int
}

func (o *Options) setDefaults() {
	if o.DropThreshold == 0 {
		o.DropThreshold = 0.30
	}
	if o.RecoveryTolerance == 0 {
		o.RecoveryTolerance = 0.15
	}
	if o.RecoveryWindow == 0 {
		o.RecoveryWindow = 3
	}
}

// seriesCounts extracts the member and prefix series the detector
// inspects (both families combined; a collection failure hits both).
// Counting per family through analysis.CountSnapshot is exact —
// address family partitions the prefix set — and lets a pinned or
// cached index answer without walking routes, so the detector also
// works on the header-only snapshots column-direct loading produces.
func seriesCounts(s *collector.Snapshot) (members, prefixes int) {
	p := analysis.CountSnapshot(s, false).Prefixes + analysis.CountSnapshot(s, true).Prefixes
	return len(s.Members), p
}

// DetectValleys returns the indices of valley snapshots in the series.
func DetectValleys(snaps []*collector.Snapshot, opts Options) []int {
	opts.setDefaults()
	n := len(snaps)
	members := make([]int, n)
	prefixes := make([]int, n)
	for i, s := range snaps {
		members[i], prefixes[i] = seriesCounts(s)
	}
	var valleys []int
	for i := 1; i < n; i++ {
		if isValley(members, i, opts) || isValley(prefixes, i, opts) {
			valleys = append(valleys, i)
		}
	}
	return valleys
}

// isValley reports whether series[i] dropped ≥ threshold below
// series[i-1] and recovered within the window.
func isValley(series []int, i int, opts Options) bool {
	prev := series[i-1]
	if prev == 0 {
		return false
	}
	drop := 1 - float64(series[i])/float64(prev)
	if drop < opts.DropThreshold {
		return false
	}
	// Recovery: some snapshot within the window returns near (or
	// above) the pre-valley level.
	floor := float64(prev) * (1 - opts.RecoveryTolerance)
	for j := i + 1; j <= i+opts.RecoveryWindow && j < len(series); j++ {
		if float64(series[j]) >= floor {
			return true
		}
	}
	return false
}

// Clean removes valley snapshots and returns the surviving series plus
// the number removed.
func Clean(snaps []*collector.Snapshot, opts Options) (kept []*collector.Snapshot, removed int) {
	valleys := DetectValleys(snaps, opts)
	bad := make(map[int]bool, len(valleys))
	for _, i := range valleys {
		bad[i] = true
	}
	kept = make([]*collector.Snapshot, 0, len(snaps))
	for i, s := range snaps {
		if bad[i] {
			removed++
			continue
		}
		kept = append(kept, s)
	}
	return kept, removed
}
