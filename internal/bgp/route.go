package bgp

import (
	"fmt"
	"net/netip"
	"slices"
	"strings"
)

// Origin is the BGP ORIGIN attribute (RFC 4271 §5.1.1).
type Origin uint8

// Origin codes.
const (
	OriginIGP        Origin = 0
	OriginEGP        Origin = 1
	OriginIncomplete Origin = 2
)

// String implements fmt.Stringer with the conventional short names.
func (o Origin) String() string {
	switch o {
	case OriginIGP:
		return "IGP"
	case OriginEGP:
		return "EGP"
	case OriginIncomplete:
		return "Incomplete"
	default:
		return fmt.Sprintf("Origin(%d)", uint8(o))
	}
}

// Route is one RIB entry: a prefix plus the path attributes the paper's
// collection records for every accepted route (prefix, next hop,
// AS path and the three community lists).
type Route struct {
	Prefix    netip.Prefix
	NextHop   netip.Addr
	ASPath    ASPath
	Origin    Origin
	MED       uint32
	LocalPref uint32

	Communities      []Community
	ExtCommunities   []ExtendedCommunity
	LargeCommunities []LargeCommunity
}

// Clone returns a deep copy; the route server mutates exported copies
// (scrubbing action communities, prepending) and must not alias the
// Adj-RIB-In entry.
func (r Route) Clone() Route {
	r.ASPath = slices.Clone(r.ASPath)
	r.Communities = slices.Clone(r.Communities)
	r.ExtCommunities = slices.Clone(r.ExtCommunities)
	r.LargeCommunities = slices.Clone(r.LargeCommunities)
	return r
}

// PeerAS returns the ASN of the announcing peer (first path element).
func (r Route) PeerAS() uint32 { return r.ASPath.Neighbor() }

// OriginAS returns the originating ASN (last path element).
func (r Route) OriginAS() uint32 { return r.ASPath.Origin() }

// IsIPv6 reports whether the route carries an IPv6 prefix.
func (r Route) IsIPv6() bool { return r.Prefix.Addr().Is6() }

// CommunityCount returns the total number of community values of all
// three flavours attached to the route — the unit the paper's "4
// billion community instances" dataset counts.
func (r Route) CommunityCount() int {
	return len(r.Communities) + len(r.ExtCommunities) + len(r.LargeCommunities)
}

// String renders a compact single-line summary, e.g.
// "203.0.113.0/24 via 10.0.0.7 path [6939 64500] comm [0:15169 64500:64500]".
func (r Route) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s via %s path [%s]", r.Prefix, r.NextHop, r.ASPath)
	if len(r.Communities) > 0 {
		b.WriteString(" comm [")
		for i, c := range r.Communities {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(c.String())
		}
		b.WriteByte(']')
	}
	return b.String()
}

// Validate performs the structural checks the wire codec and the route
// server rely on: a valid prefix, a next hop of matching family and a
// non-empty AS path.
func (r Route) Validate() error {
	if !r.Prefix.IsValid() {
		return fmt.Errorf("bgp: route has invalid prefix")
	}
	if !r.NextHop.IsValid() {
		return fmt.Errorf("bgp: route %s has invalid next hop", r.Prefix)
	}
	if r.Prefix.Addr().Is6() != r.NextHop.Is6() {
		return fmt.Errorf("bgp: route %s next hop %s family mismatch", r.Prefix, r.NextHop)
	}
	if len(r.ASPath) == 0 {
		return fmt.Errorf("bgp: route %s has empty AS path", r.Prefix)
	}
	return nil
}
