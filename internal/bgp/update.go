package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Path attribute type codes.
const (
	attrOrigin           = 1
	attrASPath           = 2
	attrNextHop          = 3
	attrMED              = 4
	attrLocalPref        = 5
	attrCommunities      = 8
	attrMPReachNLRI      = 14
	attrMPUnreachNLRI    = 15
	attrExtCommunities   = 16
	attrLargeCommunities = 32
)

// Path attribute flag bits.
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagExtLen     = 0x10
)

// Update carries one attribute set plus the prefixes it applies to.
// IPv4 reachability uses the classic NLRI fields; IPv6 uses the
// MP-BGP attributes (RFC 4760). A single Update never mixes families.
type Update struct {
	// Withdrawn prefixes (either family; v6 withdrawals travel in
	// MP_UNREACH_NLRI on the wire).
	Withdrawn []netip.Prefix

	// Attribute set shared by all announced prefixes.
	Origin           Origin
	ASPath           ASPath
	NextHop          netip.Addr
	MED              uint32
	HasMED           bool
	LocalPref        uint32
	HasLocalPref     bool
	Communities      []Community
	ExtCommunities   []ExtendedCommunity
	LargeCommunities []LargeCommunity

	// Announced prefixes.
	NLRI []netip.Prefix
}

// MsgType implements Message.
func (*Update) MsgType() MessageType { return MsgUpdate }

// NewUpdateFromRoute builds a single-prefix UPDATE announcing r.
func NewUpdateFromRoute(r Route) *Update {
	return &Update{
		Origin:           r.Origin,
		ASPath:           r.ASPath,
		NextHop:          r.NextHop,
		MED:              r.MED,
		HasMED:           r.MED != 0,
		LocalPref:        r.LocalPref,
		HasLocalPref:     r.LocalPref != 0,
		Communities:      r.Communities,
		ExtCommunities:   r.ExtCommunities,
		LargeCommunities: r.LargeCommunities,
		NLRI:             []netip.Prefix{r.Prefix},
	}
}

// Routes expands the update into one Route per announced prefix.
func (u *Update) Routes() []Route {
	routes := make([]Route, 0, len(u.NLRI))
	for _, p := range u.NLRI {
		routes = append(routes, Route{
			Prefix:           p,
			NextHop:          u.NextHop,
			ASPath:           u.ASPath,
			Origin:           u.Origin,
			MED:              u.MED,
			LocalPref:        u.LocalPref,
			Communities:      u.Communities,
			ExtCommunities:   u.ExtCommunities,
			LargeCommunities: u.LargeCommunities,
		})
	}
	return routes
}

// isIPv6 reports whether the update carries IPv6 reachability.
func (u *Update) isIPv6() bool {
	if len(u.NLRI) > 0 {
		return u.NLRI[0].Addr().Is6()
	}
	if len(u.Withdrawn) > 0 {
		return u.Withdrawn[0].Addr().Is6()
	}
	return false
}

// appendPrefix encodes one NLRI entry: length-in-bits byte followed by
// the minimum number of address bytes.
func appendPrefix(dst []byte, p netip.Prefix) []byte {
	bits := p.Bits()
	dst = append(dst, byte(bits))
	nbytes := (bits + 7) / 8
	if p.Addr().Is4() {
		a := p.Addr().As4()
		return append(dst, a[:nbytes]...)
	}
	a := p.Addr().As16()
	return append(dst, a[:nbytes]...)
}

// parsePrefixes decodes a packed NLRI field of the given family.
func parsePrefixes(b []byte, v6 bool) ([]netip.Prefix, error) {
	var out []netip.Prefix
	maxBits := 32
	if v6 {
		maxBits = 128
	}
	for len(b) > 0 {
		bits := int(b[0])
		if bits > maxBits {
			return nil, fmt.Errorf("bgp: NLRI prefix length %d exceeds %d", bits, maxBits)
		}
		nbytes := (bits + 7) / 8
		if len(b) < 1+nbytes {
			return nil, ErrShortMessage
		}
		var addr netip.Addr
		if v6 {
			var a [16]byte
			copy(a[:], b[1:1+nbytes])
			addr = netip.AddrFrom16(a)
		} else {
			var a [4]byte
			copy(a[:], b[1:1+nbytes])
			addr = netip.AddrFrom4(a)
		}
		p := netip.PrefixFrom(addr, bits)
		if p.Masked() != p {
			return nil, fmt.Errorf("bgp: NLRI %s has host bits set", p)
		}
		out = append(out, p)
		b = b[1+nbytes:]
	}
	return out, nil
}

// appendAttr appends one path attribute with the extended-length flag
// set automatically when the payload exceeds 255 bytes.
func appendAttr(dst []byte, flags, typ byte, payload []byte) []byte {
	if len(payload) > 255 {
		dst = append(dst, flags|flagExtLen, typ)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(payload)))
	} else {
		dst = append(dst, flags, typ, byte(len(payload)))
	}
	return append(dst, payload...)
}

func (u *Update) marshalBody(dst []byte) ([]byte, error) {
	v6 := u.isIPv6()

	// Withdrawn routes field (IPv4 only on the wire).
	var withdrawn []byte
	if !v6 {
		for _, p := range u.Withdrawn {
			withdrawn = appendPrefix(withdrawn, p)
		}
	}
	if len(withdrawn) > 0xFFFF {
		return nil, errors.New("bgp: withdrawn routes field too long")
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(withdrawn)))
	dst = append(dst, withdrawn...)

	// Path attributes.
	var attrs []byte
	hasAnnouncement := len(u.NLRI) > 0
	if hasAnnouncement {
		attrs = appendAttr(attrs, flagTransitive, attrOrigin, []byte{byte(u.Origin)})

		// AS_PATH: one AS_SEQUENCE segment of 4-octet ASNs. An empty
		// path encodes as a zero-segment attribute (iBGP-originated).
		var pathPayload []byte
		if len(u.ASPath) > 0 {
			if len(u.ASPath) > 255 {
				return nil, errors.New("bgp: AS path longer than 255")
			}
			pathPayload = append(pathPayload, 2, byte(len(u.ASPath)))
			for _, asn := range u.ASPath {
				pathPayload = binary.BigEndian.AppendUint32(pathPayload, asn)
			}
		}
		attrs = appendAttr(attrs, flagTransitive, attrASPath, pathPayload)

		if !v6 {
			if !u.NextHop.Is4() {
				return nil, fmt.Errorf("bgp: IPv4 update with next hop %v", u.NextHop)
			}
			nh := u.NextHop.As4()
			attrs = appendAttr(attrs, flagTransitive, attrNextHop, nh[:])
		}
		if u.HasMED {
			attrs = appendAttr(attrs, flagOptional, attrMED, binary.BigEndian.AppendUint32(nil, u.MED))
		}
		if u.HasLocalPref {
			attrs = appendAttr(attrs, flagTransitive, attrLocalPref, binary.BigEndian.AppendUint32(nil, u.LocalPref))
		}
		if len(u.Communities) > 0 {
			payload := make([]byte, 0, 4*len(u.Communities))
			for _, c := range u.Communities {
				payload = binary.BigEndian.AppendUint32(payload, uint32(c))
			}
			attrs = appendAttr(attrs, flagOptional|flagTransitive, attrCommunities, payload)
		}
		if len(u.ExtCommunities) > 0 {
			payload := make([]byte, 0, 8*len(u.ExtCommunities))
			for _, e := range u.ExtCommunities {
				payload = append(payload, e[:]...)
			}
			attrs = appendAttr(attrs, flagOptional|flagTransitive, attrExtCommunities, payload)
		}
		if len(u.LargeCommunities) > 0 {
			payload := make([]byte, 0, 12*len(u.LargeCommunities))
			for _, l := range u.LargeCommunities {
				payload = binary.BigEndian.AppendUint32(payload, l.Global)
				payload = binary.BigEndian.AppendUint32(payload, l.Local1)
				payload = binary.BigEndian.AppendUint32(payload, l.Local2)
			}
			attrs = appendAttr(attrs, flagOptional|flagTransitive, attrLargeCommunities, payload)
		}
		if v6 {
			if !u.NextHop.Is6() {
				return nil, fmt.Errorf("bgp: IPv6 update with next hop %v", u.NextHop)
			}
			payload := make([]byte, 0, 5+16+len(u.NLRI)*17)
			payload = binary.BigEndian.AppendUint16(payload, AFIIPv6)
			payload = append(payload, SAFIUnicast, 16)
			nh := u.NextHop.As16()
			payload = append(payload, nh[:]...)
			payload = append(payload, 0) // reserved
			for _, p := range u.NLRI {
				payload = appendPrefix(payload, p)
			}
			attrs = appendAttr(attrs, flagOptional, attrMPReachNLRI, payload)
		}
	}
	if v6 && len(u.Withdrawn) > 0 {
		payload := make([]byte, 0, 3+len(u.Withdrawn)*17)
		payload = binary.BigEndian.AppendUint16(payload, AFIIPv6)
		payload = append(payload, SAFIUnicast)
		for _, p := range u.Withdrawn {
			payload = appendPrefix(payload, p)
		}
		attrs = appendAttr(attrs, flagOptional, attrMPUnreachNLRI, payload)
	}
	if len(attrs) > 0xFFFF {
		return nil, errors.New("bgp: path attributes field too long")
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(attrs)))
	dst = append(dst, attrs...)

	// Classic NLRI (IPv4 only).
	if !v6 {
		for _, p := range u.NLRI {
			dst = appendPrefix(dst, p)
		}
	}
	return dst, nil
}

func (u *Update) unmarshalBody(body []byte) error {
	*u = Update{}
	if len(body) < 4 {
		return ErrShortMessage
	}
	wlen := int(binary.BigEndian.Uint16(body[0:2]))
	if len(body) < 2+wlen+2 {
		return ErrShortMessage
	}
	withdrawn4, err := parsePrefixes(body[2:2+wlen], false)
	if err != nil {
		return err
	}
	u.Withdrawn = withdrawn4
	rest := body[2+wlen:]
	alen := int(binary.BigEndian.Uint16(rest[0:2]))
	if len(rest) < 2+alen {
		return ErrShortMessage
	}
	attrs := rest[2 : 2+alen]
	nlri := rest[2+alen:]

	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return ErrShortMessage
		}
		flags, typ := attrs[0], attrs[1]
		var plen, hdr int
		if flags&flagExtLen != 0 {
			if len(attrs) < 4 {
				return ErrShortMessage
			}
			plen, hdr = int(binary.BigEndian.Uint16(attrs[2:4])), 4
		} else {
			plen, hdr = int(attrs[2]), 3
		}
		if len(attrs) < hdr+plen {
			return ErrShortMessage
		}
		payload := attrs[hdr : hdr+plen]
		attrs = attrs[hdr+plen:]

		switch typ {
		case attrOrigin:
			if plen != 1 {
				return fmt.Errorf("bgp: ORIGIN length %d", plen)
			}
			u.Origin = Origin(payload[0])
		case attrASPath:
			path, err := parseASPathAttr(payload)
			if err != nil {
				return err
			}
			u.ASPath = path
		case attrNextHop:
			if plen != 4 {
				return fmt.Errorf("bgp: NEXT_HOP length %d", plen)
			}
			u.NextHop = netip.AddrFrom4([4]byte(payload))
		case attrMED:
			if plen != 4 {
				return fmt.Errorf("bgp: MED length %d", plen)
			}
			u.MED, u.HasMED = binary.BigEndian.Uint32(payload), true
		case attrLocalPref:
			if plen != 4 {
				return fmt.Errorf("bgp: LOCAL_PREF length %d", plen)
			}
			u.LocalPref, u.HasLocalPref = binary.BigEndian.Uint32(payload), true
		case attrCommunities:
			if plen%4 != 0 {
				return fmt.Errorf("bgp: COMMUNITIES length %d not multiple of 4", plen)
			}
			u.Communities = make([]Community, 0, plen/4)
			for i := 0; i < plen; i += 4 {
				u.Communities = append(u.Communities, Community(binary.BigEndian.Uint32(payload[i:i+4])))
			}
		case attrExtCommunities:
			if plen%8 != 0 {
				return fmt.Errorf("bgp: EXTENDED_COMMUNITIES length %d not multiple of 8", plen)
			}
			u.ExtCommunities = make([]ExtendedCommunity, 0, plen/8)
			for i := 0; i < plen; i += 8 {
				u.ExtCommunities = append(u.ExtCommunities, ExtendedCommunity(payload[i:i+8]))
			}
		case attrLargeCommunities:
			if plen%12 != 0 {
				return fmt.Errorf("bgp: LARGE_COMMUNITY length %d not multiple of 12", plen)
			}
			u.LargeCommunities = make([]LargeCommunity, 0, plen/12)
			for i := 0; i < plen; i += 12 {
				u.LargeCommunities = append(u.LargeCommunities, LargeCommunity{
					Global: binary.BigEndian.Uint32(payload[i : i+4]),
					Local1: binary.BigEndian.Uint32(payload[i+4 : i+8]),
					Local2: binary.BigEndian.Uint32(payload[i+8 : i+12]),
				})
			}
		case attrMPReachNLRI:
			if err := u.parseMPReach(payload); err != nil {
				return err
			}
		case attrMPUnreachNLRI:
			if err := u.parseMPUnreach(payload); err != nil {
				return err
			}
		default:
			// Unknown optional attributes are tolerated (and dropped);
			// unknown well-known attributes are a protocol error.
			if flags&flagOptional == 0 {
				return fmt.Errorf("bgp: unrecognised well-known attribute %d", typ)
			}
		}
	}

	nlri4, err := parsePrefixes(nlri, false)
	if err != nil {
		return err
	}
	u.NLRI = append(u.NLRI, nlri4...)
	return nil
}

func parseASPathAttr(payload []byte) (ASPath, error) {
	var path ASPath
	for len(payload) > 0 {
		if len(payload) < 2 {
			return nil, ErrShortMessage
		}
		segType, count := payload[0], int(payload[1])
		if segType != 2 {
			return nil, fmt.Errorf("bgp: unsupported AS_PATH segment type %d", segType)
		}
		need := 2 + count*4
		if len(payload) < need {
			return nil, ErrShortMessage
		}
		for i := 0; i < count; i++ {
			path = append(path, binary.BigEndian.Uint32(payload[2+i*4:6+i*4]))
		}
		payload = payload[need:]
	}
	return path, nil
}

func (u *Update) parseMPReach(payload []byte) error {
	if len(payload) < 5 {
		return ErrShortMessage
	}
	afi := binary.BigEndian.Uint16(payload[0:2])
	safi := payload[2]
	nhLen := int(payload[3])
	if afi != AFIIPv6 || safi != SAFIUnicast {
		return fmt.Errorf("bgp: unsupported MP_REACH AFI/SAFI %d/%d", afi, safi)
	}
	if nhLen != 16 && nhLen != 32 {
		return fmt.Errorf("bgp: MP_REACH next hop length %d", nhLen)
	}
	if len(payload) < 4+nhLen+1 {
		return ErrShortMessage
	}
	u.NextHop = netip.AddrFrom16([16]byte(payload[4:20]))
	nlri := payload[4+nhLen+1:]
	prefixes, err := parsePrefixes(nlri, true)
	if err != nil {
		return err
	}
	u.NLRI = append(u.NLRI, prefixes...)
	return nil
}

func (u *Update) parseMPUnreach(payload []byte) error {
	if len(payload) < 3 {
		return ErrShortMessage
	}
	afi := binary.BigEndian.Uint16(payload[0:2])
	safi := payload[2]
	if afi != AFIIPv6 || safi != SAFIUnicast {
		return fmt.Errorf("bgp: unsupported MP_UNREACH AFI/SAFI %d/%d", afi, safi)
	}
	prefixes, err := parsePrefixes(payload[3:], true)
	if err != nil {
		return err
	}
	u.Withdrawn = append(u.Withdrawn, prefixes...)
	return nil
}
