package bgp

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// ASTrans is the 2-octet placeholder ASN for speakers whose real ASN
// needs four octets (RFC 6793).
const ASTrans = 23456

// Capability codes used by this implementation (RFC 5492 registry).
const (
	CapMultiProtocol = 1  // RFC 4760
	CapFourOctetAS   = 65 // RFC 6793
)

// AFI/SAFI pairs for the two address families the route server carries.
const (
	AFIIPv4     uint16 = 1
	AFIIPv6     uint16 = 2
	SAFIUnicast byte   = 1
)

// Capability is one optional-parameter capability TLV from an OPEN.
type Capability struct {
	Code byte
	Data []byte
}

// NewMPCapability builds a multiprotocol capability for afi/unicast.
func NewMPCapability(afi uint16) Capability {
	data := make([]byte, 4)
	binary.BigEndian.PutUint16(data[0:2], afi)
	data[3] = SAFIUnicast
	return Capability{Code: CapMultiProtocol, Data: data}
}

// NewFourOctetASCapability advertises a 4-octet ASN.
func NewFourOctetASCapability(asn uint32) Capability {
	data := make([]byte, 4)
	binary.BigEndian.PutUint32(data, asn)
	return Capability{Code: CapFourOctetAS, Data: data}
}

// Open is the session-establishment message.
type Open struct {
	Version      byte
	ASN          uint32 // the real (possibly 4-octet) ASN
	HoldTime     uint16
	RouterID     netip.Addr // 4-byte BGP identifier
	Capabilities []Capability
}

// MsgType implements Message.
func (*Open) MsgType() MessageType { return MsgOpen }

// FourOctetASN extracts the ASN from a 4-octet-AS capability if
// present, falling back to the 2-octet header field.
func (o *Open) FourOctetASN() uint32 {
	for _, c := range o.Capabilities {
		if c.Code == CapFourOctetAS && len(c.Data) == 4 {
			return binary.BigEndian.Uint32(c.Data)
		}
	}
	return o.ASN
}

// SupportsAFI reports whether the OPEN advertised the multiprotocol
// capability for afi/unicast.
func (o *Open) SupportsAFI(afi uint16) bool {
	for _, c := range o.Capabilities {
		if c.Code == CapMultiProtocol && len(c.Data) == 4 &&
			binary.BigEndian.Uint16(c.Data[0:2]) == afi && c.Data[3] == SAFIUnicast {
			return true
		}
	}
	return false
}

func (o *Open) marshalBody(dst []byte) ([]byte, error) {
	if !o.RouterID.Is4() {
		return nil, fmt.Errorf("bgp: OPEN router ID %v is not IPv4", o.RouterID)
	}
	dst = append(dst, o.Version)
	as2 := o.ASN
	if as2 > 0xFFFF {
		as2 = ASTrans
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(as2))
	dst = binary.BigEndian.AppendUint16(dst, o.HoldTime)
	rid := o.RouterID.As4()
	dst = append(dst, rid[:]...)

	// Optional parameters: each capability wrapped in an opt-param of
	// type 2 (RFC 5492).
	var params []byte
	for _, c := range o.Capabilities {
		if len(c.Data) > 255 {
			return nil, fmt.Errorf("bgp: capability %d data too long", c.Code)
		}
		params = append(params, 2, byte(2+len(c.Data)), c.Code, byte(len(c.Data)))
		params = append(params, c.Data...)
	}
	if len(params) > 255 {
		return nil, fmt.Errorf("bgp: OPEN optional parameters too long (%d)", len(params))
	}
	dst = append(dst, byte(len(params)))
	return append(dst, params...), nil
}

func (o *Open) unmarshalBody(body []byte) error {
	if len(body) < 10 {
		return ErrShortMessage
	}
	o.Version = body[0]
	o.ASN = uint32(binary.BigEndian.Uint16(body[1:3]))
	o.HoldTime = binary.BigEndian.Uint16(body[3:5])
	o.RouterID = netip.AddrFrom4([4]byte(body[5:9]))
	optLen := int(body[9])
	opts := body[10:]
	if optLen != len(opts) {
		return fmt.Errorf("bgp: OPEN optional parameter length %d does not match %d", optLen, len(opts))
	}
	o.Capabilities = nil
	for len(opts) > 0 {
		if len(opts) < 2 {
			return ErrShortMessage
		}
		ptype, plen := opts[0], int(opts[1])
		if len(opts) < 2+plen {
			return ErrShortMessage
		}
		pdata := opts[2 : 2+plen]
		opts = opts[2+plen:]
		if ptype != 2 {
			continue // ignore deprecated auth parameter
		}
		for len(pdata) > 0 {
			if len(pdata) < 2 {
				return ErrShortMessage
			}
			code, clen := pdata[0], int(pdata[1])
			if len(pdata) < 2+clen {
				return ErrShortMessage
			}
			cap := Capability{Code: code}
			if clen > 0 {
				cap.Data = append([]byte(nil), pdata[2:2+clen]...)
			}
			o.Capabilities = append(o.Capabilities, cap)
			pdata = pdata[2+clen:]
		}
	}
	// Surface the 4-octet ASN if negotiated so callers can use o.ASN
	// directly.
	o.ASN = o.FourOctetASN()
	return nil
}

// Notification reports a protocol error and closes the session.
type Notification struct {
	Code    byte
	Subcode byte
	Data    []byte
}

// Notification error codes (RFC 4271 §4.5).
const (
	NotifMessageHeaderError = 1
	NotifOpenError          = 2
	NotifUpdateError        = 3
	NotifHoldTimerExpired   = 4
	NotifFSMError           = 5
	NotifCease              = 6
)

// MsgType implements Message.
func (*Notification) MsgType() MessageType { return MsgNotification }

// Error implements the error interface so a received NOTIFICATION can
// be returned directly from session code.
func (n *Notification) Error() string {
	return fmt.Sprintf("bgp: notification code %d subcode %d", n.Code, n.Subcode)
}

func (n *Notification) marshalBody(dst []byte) ([]byte, error) {
	dst = append(dst, n.Code, n.Subcode)
	return append(dst, n.Data...), nil
}

func (n *Notification) unmarshalBody(body []byte) error {
	if len(body) < 2 {
		return ErrShortMessage
	}
	n.Code, n.Subcode = body[0], body[1]
	if len(body) > 2 {
		n.Data = append([]byte(nil), body[2:]...)
	}
	return nil
}
