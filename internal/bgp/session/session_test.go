package session

import (
	"context"
	"errors"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"ixplight/internal/bgp"
	"ixplight/internal/netutil"
)

// pipePair returns two connected conns over TCP loopback. A plain
// net.Pipe would deadlock the symmetric handshake: it is unbuffered,
// and both sides write their OPEN before reading.
func pipePair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ch := make(chan net.Conn, 1)
	errc := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			errc <- err
			return
		}
		ch <- c
	}()
	a, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	var b net.Conn
	select {
	case b = <-ch:
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("accept timed out")
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// establishPair runs the handshake concurrently on both pipe ends.
func establishPair(t *testing.T, cfgA, cfgB Config) (*Session, *Session) {
	t.Helper()
	a, b := pipePair(t)
	var sa, sb *Session
	var ea, eb error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); sa, ea = Establish(a, cfgA) }()
	go func() { defer wg.Done(); sb, eb = Establish(b, cfgB) }()
	wg.Wait()
	if ea != nil || eb != nil {
		t.Fatalf("establish: %v / %v", ea, eb)
	}
	return sa, sb
}

func TestHandshake(t *testing.T) {
	member := Config{ASN: 4260000001, RouterID: netip.MustParseAddr("10.0.0.1"), IPv4: true, IPv6: true}
	rsCfg := Config{ASN: 6695, RouterID: netip.MustParseAddr("10.0.0.254"), HoldTime: 30 * time.Second}
	sa, sb := establishPair(t, member, rsCfg)
	if sa.PeerASN() != 6695 {
		t.Errorf("member sees peer ASN %d", sa.PeerASN())
	}
	if sb.PeerASN() != 4260000001 {
		t.Errorf("rs sees peer ASN %d (4-octet capability must survive)", sb.PeerASN())
	}
	if !sb.PeerSupportsAFI(bgp.AFIIPv6) {
		t.Error("rs must see the member's IPv6 capability")
	}
	// Negotiated hold time is the minimum of both.
	if sa.HoldTime() != 30*time.Second || sb.HoldTime() != 30*time.Second {
		t.Errorf("hold times = %v / %v", sa.HoldTime(), sb.HoldTime())
	}
}

func TestRouteExchange(t *testing.T) {
	sa, sb := establishPair(t,
		Config{ASN: 64500, RouterID: netip.MustParseAddr("10.0.0.1")},
		Config{ASN: 6695, RouterID: netip.MustParseAddr("10.0.0.254")},
	)
	route := bgp.Route{
		Prefix:      netutil.SyntheticV4Prefix(0),
		NextHop:     netutil.PeerAddrV4(1),
		ASPath:      bgp.ASPath{64500},
		Communities: []bgp.Community{bgp.MustParseCommunity("0:15169")},
	}
	go func() {
		sa.Keepalive() // keepalives must be transparent to Recv
		sa.SendRoute(route)
		sa.SendWithdraw(route.Prefix)
	}()
	msg, err := sb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	u := msg.(*bgp.Update)
	routes := u.Routes()
	if len(routes) != 1 || routes[0].Prefix != route.Prefix {
		t.Fatalf("routes = %+v", routes)
	}
	if !bgp.HasCommunity(routes[0].Communities, bgp.MustParseCommunity("0:15169")) {
		t.Error("community lost in transit")
	}
	msg, err = sb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	w := msg.(*bgp.Update)
	if len(w.Withdrawn) != 1 || w.Withdrawn[0] != route.Prefix {
		t.Fatalf("withdraw = %+v", w)
	}
}

func TestCloseSendsCease(t *testing.T) {
	sa, sb := establishPair(t,
		Config{ASN: 1, RouterID: netip.MustParseAddr("10.0.0.1")},
		Config{ASN: 2, RouterID: netip.MustParseAddr("10.0.0.2")},
	)
	go sa.Close()
	_, err := sb.Recv()
	var notif *bgp.Notification
	if !errors.As(err, &notif) || notif.Code != bgp.NotifCease {
		t.Fatalf("err = %v, want cease notification", err)
	}
	if err := sa.Send(&bgp.Keepalive{}); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("send on closed session = %v", err)
	}
	if sa.Close() != nil {
		t.Error("double close must be nil")
	}
}

func TestEstablishRejectsBadVersion(t *testing.T) {
	a, b := pipePair(t)
	go func() {
		open := Config{ASN: 1, RouterID: netip.MustParseAddr("10.0.0.1")}.open()
		open.Version = 3
		bgp.WriteMessage(b, open)
		bgp.ReadMessage(b) // their OPEN
		bgp.ReadMessage(b) // their NOTIFICATION
	}()
	if _, err := Establish(a, Config{ASN: 2, RouterID: netip.MustParseAddr("10.0.0.2")}); err == nil {
		t.Fatal("version 3 OPEN accepted")
	}
}

func TestEstablishRejectsNonOpen(t *testing.T) {
	a, b := pipePair(t)
	go func() {
		bgp.ReadMessage(b) // discard their OPEN
		bgp.WriteMessage(b, &bgp.Keepalive{})
	}()
	if _, err := Establish(a, Config{ASN: 2, RouterID: netip.MustParseAddr("10.0.0.2")}); err == nil {
		t.Fatal("KEEPALIVE-as-OPEN accepted")
	}
}

func TestServeConnOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type upd struct {
		peer uint32
		u    *bgp.Update
	}
	got := make(chan upd, 16)
	serveErr := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			serveErr <- err
			return
		}
		serveErr <- ServeConn(context.Background(), conn,
			Config{ASN: 6695, RouterID: netip.MustParseAddr("10.0.0.254"), IPv4: true, IPv6: true},
			func(peer uint32, u *bgp.Update) error {
				got <- upd{peer, u}
				return nil
			})
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := Establish(conn, Config{ASN: 64500, RouterID: netip.MustParseAddr("10.0.0.1"), IPv4: true, IPv6: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r := bgp.Route{
			Prefix:  netutil.SyntheticV4Prefix(i),
			NextHop: netutil.PeerAddrV4(1),
			ASPath:  bgp.ASPath{64500},
		}
		if err := sess.SendRoute(r); err != nil {
			t.Fatal(err)
		}
	}
	v6 := bgp.Route{
		Prefix:  netutil.SyntheticV6Prefix(0),
		NextHop: netutil.PeerAddrV6(1),
		ASPath:  bgp.ASPath{64500},
	}
	if err := sess.SendRoute(v6); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 6; i++ {
		select {
		case u := <-got:
			if u.peer != 64500 {
				t.Errorf("update %d from peer %d", i, u.peer)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for updates")
		}
	}
	sess.Close()
	if err := <-serveErr; err != nil {
		t.Errorf("ServeConn = %v, want nil after orderly cease", err)
	}
}

func TestServeConnHandlerErrorStops(t *testing.T) {
	a, b := pipePair(t)
	handlerErr := errors.New("boom")
	done := make(chan error, 1)
	go func() {
		done <- ServeConn(context.Background(), a,
			Config{ASN: 2, RouterID: netip.MustParseAddr("10.0.0.2")},
			func(uint32, *bgp.Update) error { return handlerErr })
	}()
	sess, err := Establish(b, Config{ASN: 1, RouterID: netip.MustParseAddr("10.0.0.1")})
	if err != nil {
		t.Fatal(err)
	}
	sess.SendRoute(bgp.Route{
		Prefix:  netutil.SyntheticV4Prefix(0),
		NextHop: netutil.PeerAddrV4(1),
		ASPath:  bgp.ASPath{1},
	})
	if err := <-done; !errors.Is(err, handlerErr) {
		t.Errorf("ServeConn = %v, want handler error", err)
	}
}

func TestRunKeepalivesStopsOnContext(t *testing.T) {
	sa, sb := establishPair(t,
		Config{ASN: 1, RouterID: netip.MustParseAddr("10.0.0.1"), HoldTime: 300 * time.Millisecond},
		Config{ASN: 2, RouterID: netip.MustParseAddr("10.0.0.2"), HoldTime: 300 * time.Millisecond},
	)
	ctx, cancel := context.WithCancel(context.Background())
	kaDone := make(chan struct{})
	go func() { sa.RunKeepalives(ctx); close(kaDone) }()

	// The reader side keeps the pipe drained while keepalives flow.
	readerDone := make(chan struct{})
	go func() { sb.Recv(); close(readerDone) }()

	time.Sleep(250 * time.Millisecond) // at least two keepalive intervals
	cancel()
	select {
	case <-kaDone:
	case <-time.After(2 * time.Second):
		t.Fatal("keepalive loop did not stop")
	}
	sa.Close()
	<-readerDone
}
