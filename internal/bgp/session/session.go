// Package session implements a minimal BGP speaker over a byte stream:
// OPEN negotiation with the 4-octet-AS and multiprotocol capabilities,
// keepalives, update exchange and NOTIFICATION-based teardown. It is
// the transport that lets simulated IXP members feed a route server
// over real TCP connections, exercising the same wire format the
// paper's route servers speak.
//
// The implementation is deliberately session-scoped: no FSM timers
// beyond the hold timer, no route refresh, no graceful restart — an
// IXP lab needs exactly "establish, announce, withdraw, close".
package session

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"time"

	"ixplight/internal/bgp"
)

// Config parameterises the local end of a session.
type Config struct {
	// ASN is the local (possibly 4-octet) AS number.
	ASN uint32
	// RouterID is the 4-byte BGP identifier.
	RouterID netip.Addr
	// HoldTime, if zero, defaults to 90 seconds. The negotiated hold
	// time is the minimum of both sides'.
	HoldTime time.Duration
	// IPv4/IPv6 advertise the multiprotocol capabilities (IPv4
	// defaults to true when both are false).
	IPv4 bool
	IPv6 bool
}

func (c *Config) setDefaults() {
	if c.HoldTime == 0 {
		c.HoldTime = 90 * time.Second
	}
	if !c.IPv4 && !c.IPv6 {
		c.IPv4 = true
	}
}

func (c Config) open() *bgp.Open {
	caps := []bgp.Capability{bgp.NewFourOctetASCapability(c.ASN)}
	if c.IPv4 {
		caps = append(caps, bgp.NewMPCapability(bgp.AFIIPv4))
	}
	if c.IPv6 {
		caps = append(caps, bgp.NewMPCapability(bgp.AFIIPv6))
	}
	return &bgp.Open{
		Version:      4,
		ASN:          c.ASN,
		HoldTime:     uint16(c.HoldTime / time.Second),
		RouterID:     c.RouterID,
		Capabilities: caps,
	}
}

// Session is an established BGP session. It is safe for one reader
// and one writer goroutine (Recv vs Send) but not for concurrent
// senders.
type Session struct {
	conn     net.Conn
	peerOpen *bgp.Open
	holdTime time.Duration
	closed   bool
}

// ErrSessionClosed reports use of a closed session.
var ErrSessionClosed = errors.New("session: closed")

// Establish performs the symmetric OPEN/KEEPALIVE handshake over conn.
// Both the dialing and the accepting side call it — BGP's handshake is
// symmetric once the TCP connection exists.
func Establish(conn net.Conn, cfg Config) (*Session, error) {
	cfg.setDefaults()
	if err := bgp.WriteMessage(conn, cfg.open()); err != nil {
		return nil, fmt.Errorf("session: send OPEN: %w", err)
	}
	msg, err := bgp.ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("session: read OPEN: %w", err)
	}
	peerOpen, ok := msg.(*bgp.Open)
	if !ok {
		return nil, fmt.Errorf("session: expected OPEN, got %v", msg.MsgType())
	}
	if peerOpen.Version != 4 {
		_ = bgp.WriteMessage(conn, &bgp.Notification{Code: bgp.NotifOpenError, Subcode: 1})
		return nil, fmt.Errorf("session: unsupported BGP version %d", peerOpen.Version)
	}
	if err := bgp.WriteMessage(conn, &bgp.Keepalive{}); err != nil {
		return nil, fmt.Errorf("session: send KEEPALIVE: %w", err)
	}
	msg, err = bgp.ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("session: read KEEPALIVE: %w", err)
	}
	if _, ok := msg.(*bgp.Keepalive); !ok {
		if n, isNotif := msg.(*bgp.Notification); isNotif {
			return nil, n
		}
		return nil, fmt.Errorf("session: expected KEEPALIVE, got %v", msg.MsgType())
	}
	hold := cfg.HoldTime
	if peer := time.Duration(peerOpen.HoldTime) * time.Second; peer > 0 && peer < hold {
		hold = peer
	}
	return &Session{conn: conn, peerOpen: peerOpen, holdTime: hold}, nil
}

// PeerASN returns the peer's (4-octet aware) AS number.
func (s *Session) PeerASN() uint32 { return s.peerOpen.ASN }

// PeerSupportsAFI reports the peer's multiprotocol capabilities.
func (s *Session) PeerSupportsAFI(afi uint16) bool { return s.peerOpen.SupportsAFI(afi) }

// HoldTime returns the negotiated hold time.
func (s *Session) HoldTime() time.Duration { return s.holdTime }

// Send writes one message.
func (s *Session) Send(m bgp.Message) error {
	if s.closed {
		return ErrSessionClosed
	}
	return bgp.WriteMessage(s.conn, m)
}

// SendRoute announces one route.
func (s *Session) SendRoute(r bgp.Route) error {
	return s.Send(bgp.NewUpdateFromRoute(r))
}

// SendWithdraw withdraws one prefix.
func (s *Session) SendWithdraw(prefix netip.Prefix) error {
	return s.Send(&bgp.Update{Withdrawn: []netip.Prefix{prefix}})
}

// Recv reads the next non-keepalive message, refreshing the hold timer
// on every arrival. A received NOTIFICATION is returned as an error.
func (s *Session) Recv() (bgp.Message, error) {
	for {
		if s.closed {
			return nil, ErrSessionClosed
		}
		if s.holdTime > 0 {
			if err := s.conn.SetReadDeadline(time.Now().Add(s.holdTime)); err != nil {
				return nil, err
			}
		}
		msg, err := bgp.ReadMessage(s.conn)
		if err != nil {
			return nil, err
		}
		switch m := msg.(type) {
		case *bgp.Keepalive:
			continue
		case *bgp.Notification:
			return nil, m
		default:
			return msg, nil
		}
	}
}

// Keepalive sends one liveness message.
func (s *Session) Keepalive() error { return s.Send(&bgp.Keepalive{}) }

// RunKeepalives sends keepalives every third of the hold time until
// the context ends. Run it in its own goroutine for long sessions.
func (s *Session) RunKeepalives(ctx context.Context) {
	interval := s.holdTime / 3
	if interval <= 0 {
		interval = 30 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if s.Keepalive() != nil {
				return
			}
		}
	}
}

// Close sends a cease NOTIFICATION and closes the connection.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	_ = bgp.WriteMessage(s.conn, &bgp.Notification{Code: bgp.NotifCease})
	return s.conn.Close()
}

// UpdateHandler consumes updates from an established session.
type UpdateHandler func(peerASN uint32, u *bgp.Update) error

// ServeConn establishes the passive side on conn and pumps updates
// into handler until the peer closes, errors, or ctx ends. It is the
// building block for a route server's BGP front end.
func ServeConn(ctx context.Context, conn net.Conn, cfg Config, handler UpdateHandler) error {
	sess, err := Establish(conn, cfg)
	if err != nil {
		conn.Close()
		return err
	}
	defer sess.Close()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			sess.Close()
		case <-done:
		}
	}()
	for {
		msg, err := sess.Recv()
		if err != nil {
			var notif *bgp.Notification
			if errors.As(err, &notif) && notif.Code == bgp.NotifCease {
				return nil // orderly shutdown
			}
			return err
		}
		if u, ok := msg.(*bgp.Update); ok {
			if err := handler(sess.PeerASN(), u); err != nil {
				return err
			}
		}
	}
}
