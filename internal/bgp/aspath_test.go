package bgp

import (
	"testing"
	"testing/quick"
)

func TestASPathBasics(t *testing.T) {
	p := ASPath{6939, 64500, 64501}
	if p.Neighbor() != 6939 {
		t.Errorf("Neighbor = %d", p.Neighbor())
	}
	if p.Origin() != 64501 {
		t.Errorf("Origin = %d", p.Origin())
	}
	if p.Len() != 3 {
		t.Errorf("Len = %d", p.Len())
	}
	if !p.Contains(64500) || p.Contains(1) {
		t.Error("Contains misbehaved")
	}
	var empty ASPath
	if empty.Neighbor() != 0 || empty.Origin() != 0 {
		t.Error("empty path endpoints must be 0")
	}
}

func TestASPathPrepend(t *testing.T) {
	p := ASPath{64500}
	q := p.Prepend(64500, 2)
	if q.String() != "64500 64500 64500" {
		t.Errorf("Prepend = %q", q)
	}
	if p.String() != "64500" {
		t.Errorf("Prepend mutated receiver: %q", p)
	}
	r := p.Prepend(1, 0)
	if r.String() != "64500" {
		t.Errorf("Prepend n=0 = %q", r)
	}
	// Prepend must return an independent copy even for n=0.
	r[0] = 99
	if p[0] != 64500 {
		t.Error("Prepend n=0 aliased the receiver")
	}
}

func TestASPathHasLoop(t *testing.T) {
	for _, tt := range []struct {
		path ASPath
		want bool
	}{
		{ASPath{1, 2, 3}, false},
		{ASPath{1, 1, 1, 2}, false}, // legitimate prepending
		{ASPath{1, 2, 1}, true},     // loop
		{ASPath{}, false},
		{ASPath{5}, false},
		{ASPath{1, 2, 2, 3, 2}, true},
	} {
		if got := tt.path.HasLoop(); got != tt.want {
			t.Errorf("HasLoop(%v) = %v, want %v", tt.path, got, tt.want)
		}
	}
}

func TestASPathStringRoundTripQuick(t *testing.T) {
	f := func(asns []uint32) bool {
		p := ASPath(asns)
		parsed, err := ParseASPath(p.String())
		if err != nil {
			return false
		}
		if len(parsed) != len(p) {
			return len(p) == 0 && len(parsed) == 0
		}
		for i := range p {
			if parsed[i] != p[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseASPathError(t *testing.T) {
	if _, err := ParseASPath("1 two 3"); err == nil {
		t.Error("want error for non-numeric hop")
	}
	if _, err := ParseASPath("4294967296"); err == nil {
		t.Error("want error for out-of-range ASN")
	}
}
