package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// RIB attribute codec for MRT TABLE_DUMP_V2 entries (RFC 6396 §4.3.4).
// The encoding is the UPDATE path-attribute format with one
// MRT-specific twist: MP_REACH_NLRI is abbreviated to just the next-hop
// length and next-hop address (no AFI/SAFI, no NLRI).

// MarshalRIBAttributes encodes a route's path attributes in the MRT
// RIB-entry form.
func MarshalRIBAttributes(r Route) ([]byte, error) {
	var attrs []byte
	attrs = appendAttr(attrs, flagTransitive, attrOrigin, []byte{byte(r.Origin)})

	var pathPayload []byte
	if len(r.ASPath) > 0 {
		if len(r.ASPath) > 255 {
			return nil, errors.New("bgp: AS path longer than 255")
		}
		pathPayload = append(pathPayload, 2, byte(len(r.ASPath)))
		for _, asn := range r.ASPath {
			pathPayload = binary.BigEndian.AppendUint32(pathPayload, asn)
		}
	}
	attrs = appendAttr(attrs, flagTransitive, attrASPath, pathPayload)

	if r.NextHop.Is4() {
		nh := r.NextHop.As4()
		attrs = appendAttr(attrs, flagTransitive, attrNextHop, nh[:])
	} else if r.NextHop.Is6() {
		// Abbreviated MP_REACH: nexthop length + nexthop.
		nh := r.NextHop.As16()
		payload := append([]byte{16}, nh[:]...)
		attrs = appendAttr(attrs, flagOptional, attrMPReachNLRI, payload)
	}
	if r.MED != 0 {
		attrs = appendAttr(attrs, flagOptional, attrMED, binary.BigEndian.AppendUint32(nil, r.MED))
	}
	if r.LocalPref != 0 {
		attrs = appendAttr(attrs, flagTransitive, attrLocalPref, binary.BigEndian.AppendUint32(nil, r.LocalPref))
	}
	if len(r.Communities) > 0 {
		payload := make([]byte, 0, 4*len(r.Communities))
		for _, c := range r.Communities {
			payload = binary.BigEndian.AppendUint32(payload, uint32(c))
		}
		attrs = appendAttr(attrs, flagOptional|flagTransitive, attrCommunities, payload)
	}
	if len(r.ExtCommunities) > 0 {
		payload := make([]byte, 0, 8*len(r.ExtCommunities))
		for _, e := range r.ExtCommunities {
			payload = append(payload, e[:]...)
		}
		attrs = appendAttr(attrs, flagOptional|flagTransitive, attrExtCommunities, payload)
	}
	if len(r.LargeCommunities) > 0 {
		payload := make([]byte, 0, 12*len(r.LargeCommunities))
		for _, l := range r.LargeCommunities {
			payload = binary.BigEndian.AppendUint32(payload, l.Global)
			payload = binary.BigEndian.AppendUint32(payload, l.Local1)
			payload = binary.BigEndian.AppendUint32(payload, l.Local2)
		}
		attrs = appendAttr(attrs, flagOptional|flagTransitive, attrLargeCommunities, payload)
	}
	return attrs, nil
}

// UnmarshalRIBAttributes decodes MRT RIB-entry attributes onto a route
// whose Prefix is already set (it decides the MP_REACH interpretation).
func UnmarshalRIBAttributes(attrs []byte, r *Route) error {
	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return ErrShortMessage
		}
		flags, typ := attrs[0], attrs[1]
		var plen, hdr int
		if flags&flagExtLen != 0 {
			if len(attrs) < 4 {
				return ErrShortMessage
			}
			plen, hdr = int(binary.BigEndian.Uint16(attrs[2:4])), 4
		} else {
			plen, hdr = int(attrs[2]), 3
		}
		if len(attrs) < hdr+plen {
			return ErrShortMessage
		}
		payload := attrs[hdr : hdr+plen]
		attrs = attrs[hdr+plen:]

		switch typ {
		case attrOrigin:
			if plen != 1 {
				return fmt.Errorf("bgp: ORIGIN length %d", plen)
			}
			r.Origin = Origin(payload[0])
		case attrASPath:
			path, err := parseASPathAttr(payload)
			if err != nil {
				return err
			}
			r.ASPath = path
		case attrNextHop:
			if plen != 4 {
				return fmt.Errorf("bgp: NEXT_HOP length %d", plen)
			}
			r.NextHop = netip.AddrFrom4([4]byte(payload))
		case attrMPReachNLRI:
			// Abbreviated form: nexthop length + nexthop.
			if plen < 1 || int(payload[0]) != plen-1 {
				return fmt.Errorf("bgp: abbreviated MP_REACH length mismatch (%d vs %d)", payload[0], plen-1)
			}
			switch payload[0] {
			case 16:
				r.NextHop = netip.AddrFrom16([16]byte(payload[1:17]))
			case 4:
				r.NextHop = netip.AddrFrom4([4]byte(payload[1:5]))
			default:
				return fmt.Errorf("bgp: abbreviated MP_REACH next hop length %d", payload[0])
			}
		case attrMED:
			if plen != 4 {
				return fmt.Errorf("bgp: MED length %d", plen)
			}
			r.MED = binary.BigEndian.Uint32(payload)
		case attrLocalPref:
			if plen != 4 {
				return fmt.Errorf("bgp: LOCAL_PREF length %d", plen)
			}
			r.LocalPref = binary.BigEndian.Uint32(payload)
		case attrCommunities:
			if plen%4 != 0 {
				return fmt.Errorf("bgp: COMMUNITIES length %d", plen)
			}
			for i := 0; i < plen; i += 4 {
				r.Communities = append(r.Communities, Community(binary.BigEndian.Uint32(payload[i:i+4])))
			}
		case attrExtCommunities:
			if plen%8 != 0 {
				return fmt.Errorf("bgp: EXTENDED_COMMUNITIES length %d", plen)
			}
			for i := 0; i < plen; i += 8 {
				r.ExtCommunities = append(r.ExtCommunities, ExtendedCommunity(payload[i:i+8]))
			}
		case attrLargeCommunities:
			if plen%12 != 0 {
				return fmt.Errorf("bgp: LARGE_COMMUNITY length %d", plen)
			}
			for i := 0; i < plen; i += 12 {
				r.LargeCommunities = append(r.LargeCommunities, LargeCommunity{
					Global: binary.BigEndian.Uint32(payload[i : i+4]),
					Local1: binary.BigEndian.Uint32(payload[i+4 : i+8]),
					Local2: binary.BigEndian.Uint32(payload[i+8 : i+12]),
				})
			}
		default:
			if flags&flagOptional == 0 {
				return fmt.Errorf("bgp: unrecognised well-known attribute %d", typ)
			}
		}
	}
	return nil
}
