package bgp

import (
	"testing"
	"testing/quick"
)

func TestExtendedCommunityAccessors(t *testing.T) {
	e := NewTwoOctetASExtended(ExtSubTypePrependAction, 64500, 15169)
	if !e.IsTwoOctetAS() {
		t.Fatal("IsTwoOctetAS = false")
	}
	if e.Type() != ExtTypeTwoOctetAS {
		t.Errorf("Type = %d", e.Type())
	}
	if e.SubType() != ExtSubTypePrependAction {
		t.Errorf("SubType = %d", e.SubType())
	}
	if e.ASN() != 64500 {
		t.Errorf("ASN = %d", e.ASN())
	}
	if e.LocalAdmin() != 15169 {
		t.Errorf("LocalAdmin = %d", e.LocalAdmin())
	}
	if got, want := e.String(), "128:64500:15169"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestExtendedCommunityOpaqueString(t *testing.T) {
	e := ExtendedCommunity{0x03, 0x0c, 1, 2, 3, 4, 5, 6}
	if e.IsTwoOctetAS() {
		t.Fatal("opaque value claimed two-octet-AS")
	}
	if got, want := e.String(), "030c010203040506"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestExtendedCommunityRoundTripQuick(t *testing.T) {
	f := func(sub byte, asn uint16, local uint32) bool {
		e := NewTwoOctetASExtended(sub, asn, local)
		parsed, err := ParseExtendedCommunity(e.String())
		return err == nil && parsed == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseExtendedCommunityErrors(t *testing.T) {
	for _, s := range []string{"", "1:2", "256:1:1", "1:65536:1", "1:1:4294967296", "a:b:c"} {
		if _, err := ParseExtendedCommunity(s); err == nil {
			t.Errorf("ParseExtendedCommunity(%q): want error", s)
		}
	}
}

func TestLargeCommunityRoundTripQuick(t *testing.T) {
	f := func(g, l1, l2 uint32) bool {
		l := LargeCommunity{Global: g, Local1: l1, Local2: l2}
		parsed, err := ParseLargeCommunity(l.String())
		return err == nil && parsed == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLargeCommunityLess(t *testing.T) {
	a := LargeCommunity{1, 2, 3}
	b := LargeCommunity{1, 2, 4}
	c := LargeCommunity{1, 3, 0}
	d := LargeCommunity{2, 0, 0}
	for _, tt := range []struct {
		x, y LargeCommunity
		want bool
	}{
		{a, b, true}, {b, a, false}, {a, c, true}, {c, d, true}, {a, a, false},
	} {
		if got := tt.x.Less(tt.y); got != tt.want {
			t.Errorf("%v.Less(%v) = %v, want %v", tt.x, tt.y, got, tt.want)
		}
	}
}

func TestParseLargeCommunityErrors(t *testing.T) {
	for _, s := range []string{"", "1:2", "1:2:3:4", "x:1:1", "1:1:4294967296"} {
		if _, err := ParseLargeCommunity(s); err == nil {
			t.Errorf("ParseLargeCommunity(%q): want error", s)
		}
	}
}
