package bgp

import (
	"strings"
	"testing"
)

func TestStringers(t *testing.T) {
	for typ, want := range map[MessageType]string{
		MsgOpen: "OPEN", MsgUpdate: "UPDATE",
		MsgNotification: "NOTIFICATION", MsgKeepalive: "KEEPALIVE",
		MessageType(77): "MessageType(77)",
	} {
		if got := typ.String(); got != want {
			t.Errorf("MessageType(%d) = %q, want %q", typ, got, want)
		}
	}
	for o, want := range map[Origin]string{
		OriginIGP: "IGP", OriginEGP: "EGP", OriginIncomplete: "Incomplete",
		Origin(9): "Origin(9)",
	} {
		if got := o.String(); got != want {
			t.Errorf("Origin(%d) = %q, want %q", o, got, want)
		}
	}
}

func TestRouteString(t *testing.T) {
	r := Route{
		Prefix:      mustPrefix("198.51.100.0/24"),
		NextHop:     mustAddr("10.0.0.7"),
		ASPath:      ASPath{6939, 64512},
		Communities: []Community{NewCommunity(0, 15169)},
	}
	s := r.String()
	for _, want := range []string{"198.51.100.0/24", "10.0.0.7", "6939 64512", "0:15169"} {
		if !strings.Contains(s, want) {
			t.Errorf("Route.String() = %q misses %q", s, want)
		}
	}
	// Without communities the comm block is absent.
	r.Communities = nil
	if strings.Contains(r.String(), "comm") {
		t.Errorf("empty communities still rendered: %q", r.String())
	}
}

func TestRouteAccessors(t *testing.T) {
	r := Route{
		Prefix:  mustPrefix("2001:db8::/32"),
		NextHop: mustAddr("2001:db8::1"),
		ASPath:  ASPath{100, 200, 300},
	}
	if r.OriginAS() != 300 || r.PeerAS() != 100 {
		t.Errorf("origin/peer = %d/%d", r.OriginAS(), r.PeerAS())
	}
	if !r.IsIPv6() {
		t.Error("IsIPv6 = false for a v6 route")
	}
}

func TestSupportsAFIEdge(t *testing.T) {
	o := &Open{Capabilities: []Capability{
		{Code: CapMultiProtocol, Data: []byte{0, 1}},       // truncated
		{Code: CapMultiProtocol, Data: []byte{0, 2, 0, 2}}, // SAFI 2 (multicast)
	}}
	if o.SupportsAFI(AFIIPv4) {
		t.Error("truncated capability accepted")
	}
	if o.SupportsAFI(AFIIPv6) {
		t.Error("non-unicast SAFI accepted")
	}
}

func TestRIBAttributesRoundTripVariants(t *testing.T) {
	routes := []Route{
		{ // v4 with every optional attribute
			Prefix: mustPrefix("198.51.100.0/24"), NextHop: mustAddr("10.0.0.1"),
			ASPath: ASPath{64512, 64513}, Origin: OriginEGP,
			MED: 7, LocalPref: 200,
			Communities:      []Community{NewCommunity(0, 1), NewCommunity(2, 3)},
			ExtCommunities:   []ExtendedCommunity{NewTwoOctetASExtended(6, 64512, 9)},
			LargeCommunities: []LargeCommunity{{Global: 1, Local1: 2, Local2: 3}},
		},
		{ // v6 via abbreviated MP_REACH
			Prefix: mustPrefix("2001:db8::/32"), NextHop: mustAddr("2001:db8::9"),
			ASPath: ASPath{64512}, Origin: OriginIGP,
		},
		{ // empty AS path (zero-segment attribute)
			Prefix: mustPrefix("198.51.100.0/24"), NextHop: mustAddr("10.0.0.1"),
		},
	}
	for i, in := range routes {
		attrs, err := MarshalRIBAttributes(in)
		if err != nil {
			t.Fatalf("route %d: %v", i, err)
		}
		out := Route{Prefix: in.Prefix}
		if err := UnmarshalRIBAttributes(attrs, &out); err != nil {
			t.Fatalf("route %d: %v", i, err)
		}
		if out.NextHop != in.NextHop || out.Origin != in.Origin ||
			out.MED != in.MED || out.LocalPref != in.LocalPref {
			t.Errorf("route %d: scalar attrs lost: %+v", i, out)
		}
		if len(out.Communities) != len(in.Communities) ||
			len(out.ExtCommunities) != len(in.ExtCommunities) ||
			len(out.LargeCommunities) != len(in.LargeCommunities) {
			t.Errorf("route %d: community lists lost", i)
		}
		if out.ASPath.String() != in.ASPath.String() {
			t.Errorf("route %d: path %q vs %q", i, out.ASPath, in.ASPath)
		}
	}
}

func TestRIBAttributesErrors(t *testing.T) {
	long := Route{
		Prefix: mustPrefix("198.51.100.0/24"), NextHop: mustAddr("10.0.0.1"),
		ASPath: make(ASPath, 256),
	}
	if _, err := MarshalRIBAttributes(long); err == nil {
		t.Error("256-hop path accepted")
	}
	cases := [][]byte{
		{0x40},                    // truncated header
		{0x40, 1, 2, 0},           // payload shorter than declared
		{0x40, 1, 2, 0, 0},        // ORIGIN with length 2
		{0x40, 3, 2, 1, 2},        // NEXT_HOP with length 2
		{0x80, 4, 2, 1, 2},        // MED with length 2
		{0x40, 5, 2, 1, 2},        // LOCAL_PREF with length 2
		{0xC0, 8, 3, 1, 2, 3},     // COMMUNITIES not multiple of 4
		{0xC0, 16, 4, 1, 2, 3, 4}, // EXT not multiple of 8
		{0xC0, 32, 4, 1, 2, 3, 4}, // LARGE not multiple of 12
		{0x80, 14, 2, 4, 0},       // abbreviated MP_REACH length mismatch
		{0x80, 14, 3, 2, 0, 0},    // MP_REACH nexthop length 2
		{0x40, 99, 1, 0},          // unknown well-known attribute
	}
	for i, attrs := range cases {
		r := Route{Prefix: mustPrefix("198.51.100.0/24")}
		if err := UnmarshalRIBAttributes(attrs, &r); err == nil {
			t.Errorf("case %d: malformed attrs accepted", i)
		}
	}
	// Unknown *optional* attributes are tolerated.
	r := Route{Prefix: mustPrefix("198.51.100.0/24")}
	if err := UnmarshalRIBAttributes([]byte{0x80, 99, 1, 0}, &r); err != nil {
		t.Errorf("unknown optional attribute rejected: %v", err)
	}
}

func TestUpdateParserErrorPaths(t *testing.T) {
	// Build a valid update and corrupt specific attributes.
	mk := func(mutate func([]byte) []byte) error {
		good, err := Marshal(sampleUpdateV4())
		if err != nil {
			t.Fatal(err)
		}
		b := mutate(append([]byte(nil), good...))
		// Fix the length field.
		b[16], b[17] = byte(len(b)>>8), byte(len(b))
		_, err = Unmarshal(b)
		return err
	}
	// AS_PATH with an AS_SET segment type (1) must be rejected: find
	// the attribute (flags 0x40, type 2) and patch its segment type.
	err := mk(func(b []byte) []byte {
		for i := HeaderLen; i < len(b)-2; i++ {
			if b[i] == flagTransitive && b[i+1] == attrASPath {
				b[i+3] = 1 // segment type AS_SET
				return b
			}
		}
		t.Fatal("AS_PATH attribute not found")
		return b
	})
	if err == nil {
		t.Error("AS_SET segment accepted")
	}
}

func TestMustParseCommunityOK(t *testing.T) {
	if MustParseCommunity("0:15169") != NewCommunity(0, 15169) {
		t.Error("MustParseCommunity wrong value")
	}
}
