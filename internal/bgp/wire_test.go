package bgp

import (
	"bytes"
	"net/netip"
	"reflect"
	"testing"
)

func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func mustAddr(s string) netip.Addr     { return netip.MustParseAddr(s) }

func TestKeepaliveRoundTrip(t *testing.T) {
	b, err := Marshal(&Keepalive{})
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != HeaderLen {
		t.Fatalf("keepalive length = %d, want %d", len(b), HeaderLen)
	}
	m, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.MsgType() != MsgKeepalive {
		t.Fatalf("type = %v", m.MsgType())
	}
}

func TestOpenRoundTrip(t *testing.T) {
	in := &Open{
		Version:  4,
		ASN:      4259840000, // needs 4 octets
		HoldTime: 90,
		RouterID: mustAddr("192.0.2.1"),
		Capabilities: []Capability{
			NewMPCapability(AFIIPv4),
			NewMPCapability(AFIIPv6),
			NewFourOctetASCapability(4259840000),
		},
	}
	b, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := m.(*Open)
	if !ok {
		t.Fatalf("got %T", m)
	}
	if out.ASN != in.ASN {
		t.Errorf("ASN = %d, want %d (4-octet capability must win over AS_TRANS)", out.ASN, in.ASN)
	}
	if out.HoldTime != 90 || out.Version != 4 {
		t.Errorf("hold/version = %d/%d", out.HoldTime, out.Version)
	}
	if out.RouterID != in.RouterID {
		t.Errorf("RouterID = %v", out.RouterID)
	}
	if !out.SupportsAFI(AFIIPv6) || !out.SupportsAFI(AFIIPv4) {
		t.Error("MP capabilities lost")
	}
}

func TestOpenSmallASN(t *testing.T) {
	in := &Open{Version: 4, ASN: 64500, HoldTime: 180, RouterID: mustAddr("10.0.0.1")}
	b, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.(*Open).ASN; got != 64500 {
		t.Errorf("ASN = %d", got)
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	in := &Notification{Code: NotifCease, Subcode: 2, Data: []byte("bye")}
	b, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	out := m.(*Notification)
	if out.Code != in.Code || out.Subcode != in.Subcode || !bytes.Equal(out.Data, in.Data) {
		t.Errorf("round trip = %+v", out)
	}
	if out.Error() == "" {
		t.Error("Notification.Error empty")
	}
}

func sampleUpdateV4() *Update {
	return &Update{
		Origin:       OriginIGP,
		ASPath:       ASPath{6939, 64500},
		NextHop:      mustAddr("203.0.113.7"),
		MED:          50,
		HasMED:       true,
		LocalPref:    100,
		HasLocalPref: true,
		Communities: []Community{
			NewCommunity(0, 15169),
			NewCommunity(64500, 64500),
			BlackholeWellKnown,
		},
		ExtCommunities: []ExtendedCommunity{
			NewTwoOctetASExtended(ExtSubTypePrependAction, 64500, 15169),
		},
		LargeCommunities: []LargeCommunity{{Global: 64500, Local1: 0, Local2: 263075}},
		NLRI: []netip.Prefix{
			mustPrefix("198.51.100.0/24"),
			mustPrefix("203.0.113.0/25"),
			mustPrefix("10.0.0.0/8"),
		},
	}
}

func TestUpdateRoundTripIPv4(t *testing.T) {
	in := sampleUpdateV4()
	b, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	out := m.(*Update)
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in  %+v\n out %+v", in, out)
	}
}

func TestUpdateRoundTripIPv6(t *testing.T) {
	in := &Update{
		Origin:      OriginIncomplete,
		ASPath:      ASPath{64500, 64501, 64501, 64501},
		NextHop:     mustAddr("2001:db8::1"),
		Communities: []Community{NewCommunity(0, 6939)},
		NLRI: []netip.Prefix{
			mustPrefix("2001:db8:1000::/36"),
			mustPrefix("2001:db8::/32"),
		},
	}
	b, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	out := m.(*Update)
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in  %+v\n out %+v", in, out)
	}
}

func TestUpdateWithdrawOnlyIPv4(t *testing.T) {
	in := &Update{Withdrawn: []netip.Prefix{mustPrefix("198.51.100.0/24")}}
	b, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out := mustUnmarshalUpdate(t, b)
	if len(out.NLRI) != 0 || len(out.Withdrawn) != 1 || out.Withdrawn[0] != in.Withdrawn[0] {
		t.Errorf("withdraw round trip = %+v", out)
	}
}

func TestUpdateWithdrawOnlyIPv6(t *testing.T) {
	in := &Update{Withdrawn: []netip.Prefix{mustPrefix("2001:db8::/32")}}
	b, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out := mustUnmarshalUpdate(t, b)
	if len(out.Withdrawn) != 1 || out.Withdrawn[0] != in.Withdrawn[0] {
		t.Errorf("v6 withdraw round trip = %+v", out)
	}
}

func mustUnmarshalUpdate(t *testing.T, b []byte) *Update {
	t.Helper()
	m, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	u, ok := m.(*Update)
	if !ok {
		t.Fatalf("got %T", m)
	}
	return u
}

func TestUpdateManyCommunitiesExtendedLength(t *testing.T) {
	// >63 communities pushes the attribute payload past 255 bytes and
	// forces the extended-length flag.
	in := &Update{
		Origin:  OriginIGP,
		ASPath:  ASPath{64500},
		NextHop: mustAddr("192.0.2.1"),
		NLRI:    []netip.Prefix{mustPrefix("198.51.100.0/24")},
	}
	for i := 0; i < 100; i++ {
		in.Communities = append(in.Communities, NewCommunity(64500, uint16(i)))
	}
	b, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out := mustUnmarshalUpdate(t, b)
	if len(out.Communities) != 100 {
		t.Fatalf("communities = %d", len(out.Communities))
	}
	if !reflect.DeepEqual(in.Communities, out.Communities) {
		t.Error("community list mismatch after extended-length encoding")
	}
}

func TestNewUpdateFromRouteAndBack(t *testing.T) {
	r := Route{
		Prefix:      mustPrefix("198.51.100.0/24"),
		NextHop:     mustAddr("203.0.113.9"),
		ASPath:      ASPath{64501},
		Origin:      OriginIGP,
		Communities: []Community{NewCommunity(0, 15169)},
	}
	u := NewUpdateFromRoute(r)
	routes := u.Routes()
	if len(routes) != 1 {
		t.Fatalf("routes = %d", len(routes))
	}
	got := routes[0]
	if got.Prefix != r.Prefix || got.NextHop != r.NextHop || got.PeerAS() != 64501 {
		t.Errorf("route round trip = %+v", got)
	}
}

func TestUnmarshalRejectsCorruptMessages(t *testing.T) {
	good, _ := Marshal(sampleUpdateV4())

	t.Run("short", func(t *testing.T) {
		if _, err := Unmarshal(good[:10]); err == nil {
			t.Error("want error")
		}
	})
	t.Run("bad marker", func(t *testing.T) {
		b := bytes.Clone(good)
		b[0] = 0
		if _, err := Unmarshal(b); err == nil {
			t.Error("want error")
		}
	})
	t.Run("bad length field", func(t *testing.T) {
		b := bytes.Clone(good)
		b[16], b[17] = 0xFF, 0xFF
		if _, err := Unmarshal(b); err == nil {
			t.Error("want error")
		}
	})
	t.Run("unknown type", func(t *testing.T) {
		b := bytes.Clone(good)
		b[18] = 99
		if _, err := Unmarshal(b); err == nil {
			t.Error("want error")
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		// Chop the body but fix the length field so framing passes.
		b := bytes.Clone(good[:len(good)-3])
		b[16] = byte(len(b) >> 8)
		b[17] = byte(len(b))
		if _, err := Unmarshal(b); err == nil {
			t.Error("want error")
		}
	})
}

func TestReadWriteMessageStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		&Open{Version: 4, ASN: 64500, HoldTime: 90, RouterID: mustAddr("10.0.0.1")},
		&Keepalive{},
		sampleUpdateV4(),
		&Notification{Code: NotifCease},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got.MsgType() != want.MsgType() {
			t.Errorf("message %d type = %v, want %v", i, got.MsgType(), want.MsgType())
		}
	}
	if _, err := ReadMessage(&buf); err == nil {
		t.Error("want EOF after last message")
	}
}

func TestParsePrefixesRejectsHostBits(t *testing.T) {
	// 198.51.100.1/24 has host bits set — encode manually.
	raw := []byte{24, 198, 51, 100}
	if _, err := parsePrefixes(raw, false); err != nil {
		t.Fatalf("clean prefix rejected: %v", err)
	}
	raw2 := append([]byte{25}, 198, 51, 100, 0x80)
	if _, err := parsePrefixes(raw2, false); err != nil {
		t.Fatalf("/25 rejected: %v", err)
	}
	bad := []byte{33, 1, 2, 3, 4, 0}
	if _, err := parsePrefixes(bad, false); err == nil {
		t.Error("prefix length 33 accepted")
	}
}

func TestRouteValidate(t *testing.T) {
	ok := Route{Prefix: mustPrefix("198.51.100.0/24"), NextHop: mustAddr("10.0.0.1"), ASPath: ASPath{1}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid route rejected: %v", err)
	}
	cases := []Route{
		{},
		{Prefix: mustPrefix("198.51.100.0/24")},
		{Prefix: mustPrefix("198.51.100.0/24"), NextHop: mustAddr("2001:db8::1"), ASPath: ASPath{1}},
		{Prefix: mustPrefix("198.51.100.0/24"), NextHop: mustAddr("10.0.0.1")},
	}
	for i, r := range cases {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: invalid route accepted", i)
		}
	}
}

func TestRouteCloneIndependence(t *testing.T) {
	r := Route{
		Prefix:      mustPrefix("198.51.100.0/24"),
		NextHop:     mustAddr("10.0.0.1"),
		ASPath:      ASPath{1, 2},
		Communities: []Community{NewCommunity(1, 1)},
	}
	c := r.Clone()
	c.ASPath[0] = 99
	c.Communities[0] = NewCommunity(9, 9)
	if r.ASPath[0] != 1 || r.Communities[0] != NewCommunity(1, 1) {
		t.Error("Clone aliases the original")
	}
}

func TestRouteCommunityCount(t *testing.T) {
	r := Route{
		Communities:      []Community{1, 2, 3},
		ExtCommunities:   []ExtendedCommunity{{}},
		LargeCommunities: []LargeCommunity{{}, {}},
	}
	if got := r.CommunityCount(); got != 6 {
		t.Errorf("CommunityCount = %d, want 6", got)
	}
}
