package bgp

import (
	"testing"
	"testing/quick"
)

func TestCommunityHalves(t *testing.T) {
	tests := []struct {
		asn, value uint16
		want       string
	}{
		{0, 0, "0:0"},
		{0, 15169, "0:15169"},
		{64500, 64500, "64500:64500"},
		{65535, 666, "65535:666"},
		{1, 65535, "1:65535"},
	}
	for _, tt := range tests {
		c := NewCommunity(tt.asn, tt.value)
		if c.ASN() != tt.asn || c.Value() != tt.value {
			t.Errorf("NewCommunity(%d,%d) halves = %d:%d", tt.asn, tt.value, c.ASN(), c.Value())
		}
		if got := c.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestCommunityRoundTripQuick(t *testing.T) {
	f := func(asn, value uint16) bool {
		c := NewCommunity(asn, value)
		parsed, err := ParseCommunity(c.String())
		return err == nil && parsed == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseCommunityErrors(t *testing.T) {
	for _, s := range []string{"", "123", "a:b", "65536:0", "0:65536", "-1:0", "1:2:3", "1:", ":1"} {
		if _, err := ParseCommunity(s); err == nil {
			t.Errorf("ParseCommunity(%q): want error", s)
		}
	}
}

func TestWellKnownCommunities(t *testing.T) {
	if NoExport.String() != "65535:65281" {
		t.Errorf("NoExport = %s", NoExport)
	}
	if BlackholeWellKnown.String() != "65535:666" {
		t.Errorf("Blackhole = %s", BlackholeWellKnown)
	}
	if !NoAdvertise.IsWellKnown() || !BlackholeWellKnown.IsWellKnown() {
		t.Error("well-known range detection failed")
	}
	if NewCommunity(64500, 1).IsWellKnown() {
		t.Error("64500:1 must not be well-known")
	}
}

func TestDedupCommunities(t *testing.T) {
	in := []Community{
		NewCommunity(3, 3), NewCommunity(1, 1), NewCommunity(3, 3),
		NewCommunity(2, 2), NewCommunity(1, 1),
	}
	out := DedupCommunities(in)
	want := []Community{NewCommunity(1, 1), NewCommunity(2, 2), NewCommunity(3, 3)}
	if len(out) != len(want) {
		t.Fatalf("len = %d, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %s, want %s", i, out[i], want[i])
		}
	}
	if got := DedupCommunities(nil); len(got) != 0 {
		t.Errorf("DedupCommunities(nil) = %v", got)
	}
	one := []Community{NewCommunity(9, 9)}
	if got := DedupCommunities(one); len(got) != 1 || got[0] != one[0] {
		t.Errorf("single-element dedup = %v", got)
	}
}

func TestHasCommunity(t *testing.T) {
	cs := []Community{NewCommunity(0, 15169), NewCommunity(64500, 64500)}
	if !HasCommunity(cs, NewCommunity(0, 15169)) {
		t.Error("expected member not found")
	}
	if HasCommunity(cs, NewCommunity(0, 15170)) {
		t.Error("non-member reported found")
	}
	if HasCommunity(nil, NewCommunity(0, 0)) {
		t.Error("nil slice reported a member")
	}
}

func TestMustParseCommunityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseCommunity did not panic on bad input")
		}
	}()
	MustParseCommunity("not-a-community")
}
