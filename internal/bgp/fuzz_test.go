package bgp

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal drives the message parser with arbitrary input: any
// byte string must yield an error or a message, never a panic, and a
// successfully parsed message must re-marshal.
func FuzzUnmarshal(f *testing.F) {
	seed := func(m Message) {
		b, err := Marshal(m)
		if err == nil {
			f.Add(b)
		}
	}
	seed(&Keepalive{})
	seed(&Open{Version: 4, ASN: 64512, HoldTime: 90, RouterID: mustAddr("10.0.0.1"),
		Capabilities: []Capability{NewMPCapability(AFIIPv6), NewFourOctetASCapability(4260000000)}})
	seed(sampleUpdateV4())
	seed(&Notification{Code: NotifCease, Subcode: 1, Data: []byte("x")})
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 19))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		if _, err := Marshal(m); err != nil {
			// Some parsed values cannot re-marshal (e.g. an OPEN with a
			// non-IPv4 router ID is unrepresentable, so this branch only
			// tolerates explicit errors — never panics).
			t.Logf("re-marshal failed: %v", err)
		}
	})
}

// FuzzUpdateRoundTrip checks that any update that survives a parse
// re-encodes to a byte-identical message (canonical form).
func FuzzUpdateRoundTrip(f *testing.F) {
	b, _ := Marshal(sampleUpdateV4())
	f.Add(b)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		u, ok := m.(*Update)
		if !ok {
			return
		}
		out, err := Marshal(u)
		if err != nil {
			return
		}
		m2, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-parse of re-marshalled update failed: %v", err)
		}
		out2, err := Marshal(m2.(*Update))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatal("marshal not canonical after first round trip")
		}
	})
}

// FuzzRIBAttributes drives the MRT attribute parser.
func FuzzRIBAttributes(f *testing.F) {
	attrs, _ := MarshalRIBAttributes(Route{
		Prefix:      mustPrefix("198.51.100.0/24"),
		NextHop:     mustAddr("10.0.0.1"),
		ASPath:      ASPath{64512},
		Communities: []Community{NewCommunity(0, 15169)},
	})
	f.Add(attrs)
	f.Fuzz(func(t *testing.T, data []byte) {
		r := Route{Prefix: mustPrefix("198.51.100.0/24")}
		_ = UnmarshalRIBAttributes(data, &r)
	})
}
