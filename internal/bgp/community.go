package bgp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Community is an RFC 1997 standard BGP community: a 32-bit value
// conventionally written and interpreted as two 16-bit halves
// "ASN:value". The high half usually names the network that defines
// the community's semantics, the low half carries the operand (for
// IXP action communities, typically the target peer ASN).
type Community uint32

// NewCommunity builds a community from its two 16-bit halves.
func NewCommunity(asn, value uint16) Community {
	return Community(uint32(asn)<<16 | uint32(value))
}

// ASN returns the high 16 bits (the defining ASN by convention).
func (c Community) ASN() uint16 { return uint16(c >> 16) }

// Value returns the low 16 bits (the operand).
func (c Community) Value() uint16 { return uint16(c) }

// String renders the community in the canonical "asn:value" notation.
func (c Community) String() string {
	return strconv.Itoa(int(c.ASN())) + ":" + strconv.Itoa(int(c.Value()))
}

// Well-known communities from RFC 1997 and RFC 7999. The original
// standard defined only the three route-propagation limiters; the
// BLACKHOLE community was standardised two decades later.
const (
	// NoExport: do not advertise outside the local AS (or confederation).
	NoExport Community = 0xFFFFFF01
	// NoAdvertise: do not advertise to any peer.
	NoAdvertise Community = 0xFFFFFF02
	// NoExportSubconfed: do not advertise to external peers.
	NoExportSubconfed Community = 0xFFFFFF03
	// BlackholeWellKnown is the RFC 7999 BLACKHOLE community (65535:666).
	BlackholeWellKnown Community = 0xFFFF029A
)

// IsWellKnown reports whether c falls in the reserved well-known range
// 0xFFFF0000–0xFFFFFFFF defined by RFC 1997.
func (c Community) IsWellKnown() bool { return c.ASN() == 0xFFFF }

// ParseCommunity parses the "asn:value" notation. Both halves must be
// decimal integers within uint16 range.
func ParseCommunity(s string) (Community, error) {
	a, v, ok := strings.Cut(s, ":")
	if !ok {
		return 0, fmt.Errorf("bgp: community %q: want \"asn:value\"", s)
	}
	asn, err := strconv.ParseUint(a, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("bgp: community %q: bad asn: %v", s, err)
	}
	val, err := strconv.ParseUint(v, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("bgp: community %q: bad value: %v", s, err)
	}
	return NewCommunity(uint16(asn), uint16(val)), nil
}

// MustParseCommunity is ParseCommunity for constant-like inputs; it
// panics on error and is intended for tests and static tables.
func MustParseCommunity(s string) Community {
	c, err := ParseCommunity(s)
	if err != nil {
		panic(err)
	}
	return c
}

// SortCommunities sorts a community list in ascending numeric order,
// the order BGP implementations conventionally emit.
func SortCommunities(cs []Community) {
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
}

// DedupCommunities sorts cs and removes duplicates in place, returning
// the shortened slice.
func DedupCommunities(cs []Community) []Community {
	if len(cs) < 2 {
		return cs
	}
	SortCommunities(cs)
	out := cs[:1]
	for _, c := range cs[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

// HasCommunity reports whether cs contains c. Community lists on real
// routes are short (a handful of entries), so a linear scan beats any
// indexed structure; see BenchmarkAblation_CommunitySet.
func HasCommunity(cs []Community, c Community) bool {
	for _, x := range cs {
		if x == c {
			return true
		}
	}
	return false
}
