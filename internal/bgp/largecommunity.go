package bgp

import (
	"fmt"
	"strconv"
	"strings"
)

// LargeCommunity is an RFC 8092 large community: three 32-bit fields
// written "global:local1:local2". Large communities exist precisely
// because 32-bit ASNs cannot fit in either half of a standard
// community; IXPs whose route-server ASN or member ASNs exceed 16 bits
// define their action schemes over large communities instead.
type LargeCommunity struct {
	Global uint32 // usually the defining ASN
	Local1 uint32 // function selector in IXP schemes
	Local2 uint32 // operand (target ASN) in IXP schemes
}

// String renders the canonical "global:local1:local2" notation.
func (l LargeCommunity) String() string {
	return strconv.FormatUint(uint64(l.Global), 10) + ":" +
		strconv.FormatUint(uint64(l.Local1), 10) + ":" +
		strconv.FormatUint(uint64(l.Local2), 10)
}

// ParseLargeCommunity parses the "global:local1:local2" notation.
func ParseLargeCommunity(s string) (LargeCommunity, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return LargeCommunity{}, fmt.Errorf("bgp: large community %q: want \"global:local1:local2\"", s)
	}
	var vals [3]uint32
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return LargeCommunity{}, fmt.Errorf("bgp: large community %q: field %d: %v", s, i+1, err)
		}
		vals[i] = uint32(v)
	}
	return LargeCommunity{Global: vals[0], Local1: vals[1], Local2: vals[2]}, nil
}

// Less orders large communities field-by-field, the emission order
// required by RFC 8092 §5.
func (l LargeCommunity) Less(o LargeCommunity) bool {
	if l.Global != o.Global {
		return l.Global < o.Global
	}
	if l.Local1 != o.Local1 {
		return l.Local1 < o.Local1
	}
	return l.Local2 < o.Local2
}
