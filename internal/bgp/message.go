package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Message framing constants from RFC 4271 §4.1.
const (
	HeaderLen     = 19
	MaxMessageLen = 4096
	markerLen     = 16
)

// MessageType identifies the four BGP message kinds.
type MessageType uint8

// BGP message type codes.
const (
	MsgOpen         MessageType = 1
	MsgUpdate       MessageType = 2
	MsgNotification MessageType = 3
	MsgKeepalive    MessageType = 4
)

// String implements fmt.Stringer.
func (t MessageType) String() string {
	switch t {
	case MsgOpen:
		return "OPEN"
	case MsgUpdate:
		return "UPDATE"
	case MsgNotification:
		return "NOTIFICATION"
	case MsgKeepalive:
		return "KEEPALIVE"
	default:
		return fmt.Sprintf("MessageType(%d)", uint8(t))
	}
}

// Message is one BGP protocol message. Concrete types are *Open,
// *Update, *Notification and *Keepalive.
type Message interface {
	// MsgType returns the wire type code.
	MsgType() MessageType
	// marshalBody appends the message body (without header) to dst.
	marshalBody(dst []byte) ([]byte, error)
	// unmarshalBody parses the message body.
	unmarshalBody(body []byte) error
}

// Keepalive is the bodiless liveness message.
type Keepalive struct{}

// MsgType implements Message.
func (*Keepalive) MsgType() MessageType { return MsgKeepalive }

func (*Keepalive) marshalBody(dst []byte) ([]byte, error) { return dst, nil }

func (*Keepalive) unmarshalBody(body []byte) error {
	if len(body) != 0 {
		return errors.New("bgp: KEEPALIVE with non-empty body")
	}
	return nil
}

// ErrShortMessage reports a message truncated below its declared or
// minimum length.
var ErrShortMessage = errors.New("bgp: short message")

// Marshal encodes a full message: all-ones marker, length, type, body.
func Marshal(m Message) ([]byte, error) {
	buf := make([]byte, HeaderLen, HeaderLen+64)
	for i := 0; i < markerLen; i++ {
		buf[i] = 0xFF
	}
	buf[18] = byte(m.MsgType())
	buf, err := m.marshalBody(buf)
	if err != nil {
		return nil, err
	}
	if len(buf) > MaxMessageLen {
		return nil, fmt.Errorf("bgp: %s message length %d exceeds %d", m.MsgType(), len(buf), MaxMessageLen)
	}
	binary.BigEndian.PutUint16(buf[16:18], uint16(len(buf)))
	return buf, nil
}

// Unmarshal decodes one complete message from b, which must contain
// exactly one message.
func Unmarshal(b []byte) (Message, error) {
	if len(b) < HeaderLen {
		return nil, ErrShortMessage
	}
	for i := 0; i < markerLen; i++ {
		if b[i] != 0xFF {
			return nil, errors.New("bgp: bad marker")
		}
	}
	length := int(binary.BigEndian.Uint16(b[16:18]))
	if length < HeaderLen || length > MaxMessageLen {
		return nil, fmt.Errorf("bgp: bad message length %d", length)
	}
	if length != len(b) {
		return nil, fmt.Errorf("bgp: message length %d does not match buffer %d", length, len(b))
	}
	var m Message
	switch MessageType(b[18]) {
	case MsgOpen:
		m = &Open{}
	case MsgUpdate:
		m = &Update{}
	case MsgNotification:
		m = &Notification{}
	case MsgKeepalive:
		m = &Keepalive{}
	default:
		return nil, fmt.Errorf("bgp: unknown message type %d", b[18])
	}
	if err := m.unmarshalBody(b[HeaderLen:length]); err != nil {
		return nil, err
	}
	return m, nil
}

// ReadMessage reads exactly one message from a stream, validating the
// framing before allocating the body.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	length := int(binary.BigEndian.Uint16(hdr[16:18]))
	if length < HeaderLen || length > MaxMessageLen {
		return nil, fmt.Errorf("bgp: bad message length %d", length)
	}
	buf := make([]byte, length)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[HeaderLen:]); err != nil {
		return nil, err
	}
	return Unmarshal(buf)
}

// WriteMessage marshals m and writes it to w.
func WriteMessage(w io.Writer, m Message) error {
	b, err := Marshal(m)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}
