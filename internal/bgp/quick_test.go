package bgp

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

// randomV4Prefix derives a masked IPv4 prefix from arbitrary fuzz input.
func randomV4Prefix(r *rand.Rand) netip.Prefix {
	var a [4]byte
	r.Read(a[:])
	bits := r.Intn(25) + 8 // /8../32
	return netip.PrefixFrom(netip.AddrFrom4(a), bits).Masked()
}

func randomV6Prefix(r *rand.Rand) netip.Prefix {
	var a [16]byte
	r.Read(a[:])
	bits := r.Intn(109) + 20 // /20../128
	return netip.PrefixFrom(netip.AddrFrom16(a), bits).Masked()
}

// randomUpdate builds a structurally valid random UPDATE for the
// property tests. Generate implements quick.Generator.
type randomUpdate struct{ u *Update }

// Generate implements testing/quick.Generator.
func (randomUpdate) Generate(r *rand.Rand, size int) reflect.Value {
	v6 := r.Intn(2) == 1
	u := &Update{Origin: Origin(r.Intn(3))}

	pathLen := r.Intn(6) + 1
	for i := 0; i < pathLen; i++ {
		u.ASPath = append(u.ASPath, r.Uint32())
	}
	if v6 {
		var a [16]byte
		r.Read(a[:])
		u.NextHop = netip.AddrFrom16(a)
	} else {
		var a [4]byte
		r.Read(a[:])
		u.NextHop = netip.AddrFrom4(a)
	}
	if r.Intn(2) == 1 {
		u.MED, u.HasMED = r.Uint32(), true
	}
	if r.Intn(2) == 1 {
		u.LocalPref, u.HasLocalPref = r.Uint32(), true
	}
	for i, n := 0, r.Intn(8); i < n; i++ {
		u.Communities = append(u.Communities, Community(r.Uint32()))
	}
	for i, n := 0, r.Intn(3); i < n; i++ {
		u.ExtCommunities = append(u.ExtCommunities,
			NewTwoOctetASExtended(byte(r.Intn(256)), uint16(r.Uint32()), r.Uint32()))
	}
	for i, n := 0, r.Intn(3); i < n; i++ {
		u.LargeCommunities = append(u.LargeCommunities,
			LargeCommunity{Global: r.Uint32(), Local1: r.Uint32(), Local2: r.Uint32()})
	}
	seen := map[netip.Prefix]bool{}
	for i, n := 0, r.Intn(5)+1; i < n; i++ {
		var p netip.Prefix
		if v6 {
			p = randomV6Prefix(r)
		} else {
			p = randomV4Prefix(r)
		}
		if !seen[p] {
			seen[p] = true
			u.NLRI = append(u.NLRI, p)
		}
	}
	return reflect.ValueOf(randomUpdate{u})
}

// TestUpdateWireRoundTripProperty checks that Marshal∘Unmarshal is the
// identity on arbitrary well-formed updates.
func TestUpdateWireRoundTripProperty(t *testing.T) {
	f := func(ru randomUpdate) bool {
		b, err := Marshal(ru.u)
		if err != nil {
			t.Logf("marshal: %v", err)
			return false
		}
		m, err := Unmarshal(b)
		if err != nil {
			t.Logf("unmarshal: %v", err)
			return false
		}
		out := m.(*Update)
		if !reflect.DeepEqual(ru.u, out) {
			t.Logf("mismatch:\n in  %+v\n out %+v", ru.u, out)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestMarshalIsDeterministic checks that encoding the same update twice
// yields identical bytes (the snapshot store relies on this).
func TestMarshalIsDeterministic(t *testing.T) {
	f := func(ru randomUpdate) bool {
		a, err1 := Marshal(ru.u)
		b, err2 := Marshal(ru.u)
		if err1 != nil || err2 != nil {
			return false
		}
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestUnmarshalNeverPanics feeds random bytes through the parser; any
// input must produce an error or a message, never a panic.
func TestUnmarshalNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		n := r.Intn(200)
		b := make([]byte, n)
		r.Read(b)
		if n >= HeaderLen && r.Intn(2) == 1 {
			// Make framing plausible so body parsers get exercised.
			for j := 0; j < markerLen; j++ {
				b[j] = 0xFF
			}
			b[16] = byte(n >> 8)
			b[17] = byte(n)
			b[18] = byte(r.Intn(6))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on input %x: %v", b, p)
				}
			}()
			_, _ = Unmarshal(b)
		}()
	}
}
