// Package bgp implements the subset of the Border Gateway Protocol
// (RFC 4271) needed to model an IXP route-server ecosystem: routes,
// AS paths, the three BGP community attribute flavours (standard
// RFC 1997, extended RFC 4360, large RFC 8092) and a binary codec for
// BGP messages including the MP-BGP attributes (RFC 4760) used to
// carry IPv6 reachability and the 4-octet AS number extensions
// (RFC 6793).
//
// The package is self-contained and allocation-conscious: routes and
// communities are value types, message parsing validates lengths
// before slicing, and all codecs round-trip (see the property tests).
package bgp
