package bgp

import (
	"slices"
	"strconv"
	"strings"
)

// ASPath is a sequence of AS numbers, most-recent (neighbour) first.
// Only AS_SEQUENCE segments are modelled; AS_SET has been deprecated
// for new advertisements (RFC 6472) and never appears at IXP route
// servers, whose import filters reject it.
type ASPath []uint32

// Origin returns the originating AS (the last element), or 0 for an
// empty path.
func (p ASPath) Origin() uint32 {
	if len(p) == 0 {
		return 0
	}
	return p[len(p)-1]
}

// Neighbor returns the first AS on the path (the announcing peer), or
// 0 for an empty path.
func (p ASPath) Neighbor() uint32 {
	if len(p) == 0 {
		return 0
	}
	return p[0]
}

// Prepend returns a copy of p with asn prepended n times. It never
// mutates p, so routes sharing a path slice stay independent.
func (p ASPath) Prepend(asn uint32, n int) ASPath {
	if n <= 0 {
		return slices.Clone(p)
	}
	out := make(ASPath, 0, len(p)+n)
	for i := 0; i < n; i++ {
		out = append(out, asn)
	}
	return append(out, p...)
}

// Contains reports whether asn appears anywhere on the path.
func (p ASPath) Contains(asn uint32) bool {
	return slices.Contains(p, asn)
}

// HasLoop reports whether any AS appears more than once in a
// non-adjacent position, which indicates a routing loop rather than
// legitimate prepending.
func (p ASPath) HasLoop() bool {
	seen := make(map[uint32]int, len(p))
	for i, asn := range p {
		if j, ok := seen[asn]; ok && j != i-1 {
			return true
		}
		seen[asn] = i
	}
	return false
}

// Len returns the number of hops counting prepends, i.e. the value BGP
// path selection compares.
func (p ASPath) Len() int { return len(p) }

// String renders the path as space-separated ASNs ("6939 13335 ...").
func (p ASPath) String() string {
	if len(p) == 0 {
		return ""
	}
	var b strings.Builder
	for i, asn := range p {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatUint(uint64(asn), 10))
	}
	return b.String()
}

// ParseASPath parses a space-separated ASN list as produced by String.
func ParseASPath(s string) (ASPath, error) {
	fields := strings.Fields(s)
	p := make(ASPath, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseUint(f, 10, 32)
		if err != nil {
			return nil, err
		}
		p = append(p, uint32(v))
	}
	return p, nil
}
