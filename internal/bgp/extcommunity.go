package bgp

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// ExtendedCommunity is an RFC 4360 extended community: an 8-byte
// opaque value whose first byte(s) select a type and sub-type. Only
// the two-octet-AS-specific encodings (the ones IXPs use, e.g. for
// fine-grained prepending at AMS-IX) get structured accessors; any
// other value round-trips as opaque bytes.
type ExtendedCommunity [8]byte

// Extended community type / sub-type constants (RFC 4360, RFC 7153).
const (
	ExtTypeTwoOctetAS       = 0x00 // transitive two-octet AS specific
	ExtTypeNonTransTwoOctet = 0x40
	ExtSubTypeRouteTarget   = 0x02
	ExtSubTypeRouteOrigin   = 0x03
	ExtSubTypeTrafficAction = 0x06
	ExtSubTypePrependAction = 0x80 // IXP-local convention used here
)

// NewTwoOctetASExtended builds a transitive two-octet-AS-specific
// extended community: type byte, sub-type byte, 2-byte ASN, 4-byte
// local administrator value.
func NewTwoOctetASExtended(subType byte, asn uint16, local uint32) ExtendedCommunity {
	var e ExtendedCommunity
	e[0] = ExtTypeTwoOctetAS
	e[1] = subType
	binary.BigEndian.PutUint16(e[2:4], asn)
	binary.BigEndian.PutUint32(e[4:8], local)
	return e
}

// Type returns the high type byte.
func (e ExtendedCommunity) Type() byte { return e[0] }

// SubType returns the sub-type byte.
func (e ExtendedCommunity) SubType() byte { return e[1] }

// IsTwoOctetAS reports whether e uses the two-octet-AS-specific
// encoding (transitive or not).
func (e ExtendedCommunity) IsTwoOctetAS() bool {
	return e[0] == ExtTypeTwoOctetAS || e[0] == ExtTypeNonTransTwoOctet
}

// ASN returns the 2-byte ASN field of a two-octet-AS-specific value.
func (e ExtendedCommunity) ASN() uint16 { return binary.BigEndian.Uint16(e[2:4]) }

// LocalAdmin returns the 4-byte local administrator field of a
// two-octet-AS-specific value.
func (e ExtendedCommunity) LocalAdmin() uint32 { return binary.BigEndian.Uint32(e[4:8]) }

// String renders two-octet-AS-specific values as "type:asn:local" and
// anything else as raw hex.
func (e ExtendedCommunity) String() string {
	if e.IsTwoOctetAS() {
		return fmt.Sprintf("%d:%d:%d", e.SubType(), e.ASN(), e.LocalAdmin())
	}
	return fmt.Sprintf("%x", e[:])
}

// ParseExtendedCommunity parses the "subtype:asn:local" notation
// produced by String for two-octet-AS-specific values.
func ParseExtendedCommunity(s string) (ExtendedCommunity, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return ExtendedCommunity{}, fmt.Errorf("bgp: extended community %q: want \"subtype:asn:local\"", s)
	}
	st, err := strconv.ParseUint(parts[0], 10, 8)
	if err != nil {
		return ExtendedCommunity{}, fmt.Errorf("bgp: extended community %q: bad subtype: %v", s, err)
	}
	asn, err := strconv.ParseUint(parts[1], 10, 16)
	if err != nil {
		return ExtendedCommunity{}, fmt.Errorf("bgp: extended community %q: bad asn: %v", s, err)
	}
	local, err := strconv.ParseUint(parts[2], 10, 32)
	if err != nil {
		return ExtendedCommunity{}, fmt.Errorf("bgp: extended community %q: bad local: %v", s, err)
	}
	return NewTwoOctetASExtended(byte(st), uint16(asn), uint32(local)), nil
}
