package soak

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"
)

// quickConfig is the CI-sized soak: 3 IXPs, 2 kills, tiny workloads.
func quickConfig(t *testing.T) Config {
	cfg := DefaultConfig()
	cfg.Dir = t.TempDir()
	cfg.Logf = t.Logf
	return cfg
}

func TestSoakRunAllInvariantsGreen(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	report, err := Run(ctx, quickConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Checks) == 0 {
		t.Fatal("soak ran no invariant checks")
	}
	for _, c := range report.Failed() {
		t.Error(c.String())
	}
	// The run must actually have exercised the chaos paths it claims
	// to: kills armed and fired, resumes checked.
	var kills, resumes int
	for _, c := range report.Checks {
		switch c.Name {
		case "kill":
			kills++
		case "resume-digest":
			resumes++
		}
	}
	if kills < 2 {
		t.Errorf("soak killed %d servers, want >= 2", kills)
	}
	if resumes < 2 {
		t.Errorf("soak resumed %d crawls, want >= 2", resumes)
	}
	if len(report.Digests) != 3 {
		t.Errorf("report has %d digests, want 3", len(report.Digests))
	}
	if !strings.Contains(report.Schedule, "kill_after=") {
		t.Errorf("schedule script lists no kills:\n%s", report.Schedule)
	}
}

func TestSoakSameSeedReproduces(t *testing.T) {
	// The acceptance bar: the same seed replays the identical chaos
	// schedule and lands on the identical final snapshot bytes, even
	// though the chaos interleaving between runs is timing-dependent.
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	run := func(dir string) *Report {
		t.Helper()
		cfg := DefaultConfig()
		cfg.Dir = dir
		report, err := Run(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !report.OK() {
			for _, c := range report.Failed() {
				t.Error(c.String())
			}
			t.Fatal("soak run not green")
		}
		return report
	}
	first := run(t.TempDir())
	second := run(t.TempDir())
	if first.Schedule != second.Schedule {
		t.Errorf("same seed produced different chaos schedules:\n--- first\n%s--- second\n%s",
			first.Schedule, second.Schedule)
	}
	if !reflect.DeepEqual(first.Digests, second.Digests) {
		t.Errorf("same seed produced different snapshot digests:\n%v\nvs\n%v",
			first.Digests, second.Digests)
	}
}

func TestNeighborASN(t *testing.T) {
	cases := []struct {
		path string
		asn  uint32
		ok   bool
	}{
		{"/api/v1/routeservers/rs1/neighbors/64500/routes/received", 64500, true},
		{"/api/v1/routeservers/rs1/neighbors/100/routes", 100, true},
		{"/api/v1/routeservers/rs1/neighbors", 0, false},
		{"/api/v1/status", 0, false},
		{"/api/v1/routeservers/rs1/neighbors/abc/routes", 0, false},
	}
	for _, c := range cases {
		asn, ok := neighborASN(c.path)
		if asn != c.asn || ok != c.ok {
			t.Errorf("neighborASN(%q) = %d,%v want %d,%v", c.path, asn, ok, c.asn, c.ok)
		}
	}
}
