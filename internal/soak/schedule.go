package soak

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"ixplight/internal/lg"
)

// flakyJSON renders FlakyOptions for the admin endpoint.
func flakyJSON(opts lg.FlakyOptions) (string, error) {
	b, err := json.Marshal(opts)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// IXPChaos is the scripted failure plan for one IXP in one round.
type IXPChaos struct {
	// Flaky is armed over the admin endpoint before the degraded
	// crawl. Outage neighbors are baked into it.
	Flaky lg.FlakyOptions
	// Outage lists the neighbors whose routes endpoints are down for
	// the round — the exact member-error set a strict IXP must report.
	Outage []uint32
	// Strict marks an IXP with only deterministic failures (outages,
	// latency): its degraded snapshot's member errors must equal the
	// outage set exactly. Relaxed IXPs add stochastic failures, so
	// outages are only a lower bound there.
	Strict bool
	// KillAfter kills the server after this many further LG requests
	// during the kill phase (0 = this IXP is not killed this round).
	KillAfter int
}

// Schedule is one soak run's complete chaos script, generated up
// front from the seed and the reference crawl's deterministic shape —
// nothing about it depends on crawl timing, so the same seed always
// yields the same script.
type Schedule struct {
	Rounds [][]IXPChaos // [round][ixp]
}

// String renders the schedule for logs and reproducibility checks.
func (s *Schedule) String() string {
	var b strings.Builder
	for r, round := range s.Rounds {
		for i, c := range round {
			fmt.Fprintf(&b, "round %d ixp %d:", r, i)
			if c.Strict {
				b.WriteString(" strict")
			}
			fmt.Fprintf(&b, " outage=%v", c.Outage)
			if c.Flaky.ErrorRate > 0 {
				fmt.Fprintf(&b, " error_rate=%.2f", c.Flaky.ErrorRate)
			}
			if c.Flaky.Latency > 0 {
				fmt.Fprintf(&b, " latency=%v", c.Flaky.Latency)
			}
			if c.Flaky.TruncateEvery > 0 {
				fmt.Fprintf(&b, " truncate_every=%d", c.Flaky.TruncateEvery)
			}
			if c.Flaky.HangEvery > 0 {
				fmt.Fprintf(&b, " hang_every=%d", c.Flaky.HangEvery)
			}
			if c.Flaky.ShrinkAfter > 0 {
				fmt.Fprintf(&b, " shrink_after=%d", c.Flaky.ShrinkAfter)
			}
			if c.KillAfter > 0 {
				fmt.Fprintf(&b, " kill_after=%d", c.KillAfter)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// planInfo is what the schedule generator may depend on: the
// reference crawl's deterministic shape, per IXP.
type planInfo struct {
	// planASNs is the crawl plan (neighbors with accepted routes),
	// sorted ascending.
	planASNs []uint32
	// serverRequests is how many LG requests the chaos-free reference
	// crawl took — the window a kill point is drawn from.
	serverRequests int
}

// buildSchedule scripts the whole run. rng draws are made in a fixed
// order (round-major, IXP-minor) so the schedule is a pure function
// of (seed, reference shape).
func buildSchedule(rng *rand.Rand, infos []planInfo, rounds, kills int) *Schedule {
	sched := &Schedule{}
	for r := 0; r < rounds; r++ {
		round := make([]IXPChaos, len(infos))
		for i, info := range infos {
			c := IXPChaos{
				// IXP 0 is always strict, so every run exercises the
				// exact member-error invariant; the others draw.
				Strict: i == 0 || rng.Intn(3) == 0,
			}
			// One or two neighbors go dark, drawn from the sorted
			// crawl plan so the pick is content-deterministic.
			k := 1 + rng.Intn(2)
			if k > len(info.planASNs) {
				k = len(info.planASNs)
			}
			for _, pick := range rng.Perm(len(info.planASNs))[:k] {
				c.Outage = append(c.Outage, info.planASNs[pick])
			}
			sort.Slice(c.Outage, func(a, b int) bool { return c.Outage[a] < c.Outage[b] })
			c.Flaky.NeighborOutage = c.Outage
			c.Flaky.Latency = time.Duration(1+rng.Intn(3)) * time.Millisecond
			c.Flaky.Seed = rng.Int63()
			if !c.Strict {
				// Stochastic chaos: injected 500s, truncated bodies,
				// hangs. All are survivable under the client's retry
				// policy; they may add member errors beyond the
				// outage set, which is why relaxed IXPs only get the
				// subset check.
				c.Flaky.ErrorRate = 0.05 + rng.Float64()*0.10
				if rng.Intn(2) == 0 {
					c.Flaky.TruncateEvery = 7 + rng.Intn(7)
				}
				if rng.Intn(2) == 0 {
					c.Flaky.HangEvery = 11 + rng.Intn(7)
				}
				if rng.Intn(3) == 0 {
					// Pagination shrinkage: declared route totals
					// shrink mid-listing, so multi-page neighbors
					// fail with "total count changed mid-crawl" and
					// surface as member errors.
					c.Flaky.ShrinkAfter = 10 + rng.Intn(10)
				}
			}
			round[i] = c
		}
		// Pick the kill victims among IXPs with enough reference
		// traffic for a mid-crawl kill window.
		victims := rng.Perm(len(infos))
		armed := 0
		for _, v := range victims {
			if armed >= kills {
				break
			}
			window := infos[v].serverRequests - 6
			if window < 2 {
				continue
			}
			round[v].KillAfter = 4 + rng.Intn(window)
			armed++
		}
		sched.Rounds = append(sched.Rounds, round)
	}
	return sched
}
