package soak

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strconv"
	"strings"

	"ixplight/internal/analysis"
	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
)

// CheckResult is one invariant's verdict. A soak run passes only when
// every check is OK.
type CheckResult struct {
	Name   string // invariant family, e.g. "codec-roundtrip"
	IXP    string
	OK     bool
	Detail string
}

func (c CheckResult) String() string {
	mark := "ok"
	if !c.OK {
		mark = "FAIL"
	}
	return fmt.Sprintf("[%s] %s %s: %s", mark, c.Name, c.IXP, c.Detail)
}

// digest hashes a snapshot's binary-codec encoding — the
// byte-for-byte identity the acceptance criterion compares.
func digest(s *collector.Snapshot) (string, error) {
	h := sha256.New()
	if err := collector.WriteSnapshot(h, s, collector.CodecBinary); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// checkCodecs verifies that a snapshot survives every codec
// round-trip exactly and that Normalize is idempotent on it.
func checkCodecs(ixp string, snap *collector.Snapshot) []CheckResult {
	var out []CheckResult
	for _, codec := range collector.Codecs() {
		var buf bytes.Buffer
		name := fmt.Sprintf("codec %v", codec)
		if err := collector.WriteSnapshot(&buf, snap, codec); err != nil {
			out = append(out, CheckResult{"codec-roundtrip", ixp, false, name + ": encode: " + err.Error()})
			continue
		}
		back, err := collector.ReadSnapshot(bytes.NewReader(buf.Bytes()), codec)
		if err != nil {
			out = append(out, CheckResult{"codec-roundtrip", ixp, false, name + ": decode: " + err.Error()})
			continue
		}
		if !reflect.DeepEqual(snap, back) {
			out = append(out, CheckResult{"codec-roundtrip", ixp, false, name + ": round-trip not identical"})
			continue
		}
		out = append(out, CheckResult{"codec-roundtrip", ixp, true, name})
	}
	renorm := *snap
	renorm.Members = append([]collector.Member(nil), snap.Members...)
	renorm.Routes = append(snap.Routes[:0:0], snap.Routes...)
	renorm.MemberErrors = append([]collector.MemberError(nil), snap.MemberErrors...)
	renorm.Normalize()
	if !reflect.DeepEqual(snap, &renorm) {
		out = append(out, CheckResult{"normalize-idempotent", ixp, false, "Normalize changed an already-normalized snapshot"})
	} else {
		out = append(out, CheckResult{"normalize-idempotent", ixp, true, fmt.Sprintf("%d routes stable", len(snap.Routes))})
	}
	return out
}

// checkMemberErrors verifies the degraded snapshot's member errors
// against the scripted outage. Strict IXPs (deterministic chaos only)
// must report exactly the outage set; relaxed IXPs at least it.
func checkMemberErrors(ixp string, snap *collector.Snapshot, chaos IXPChaos) CheckResult {
	failed := snap.FailedMemberSet()
	for _, asn := range chaos.Outage {
		if !failed[asn] {
			return CheckResult{"member-errors", ixp, false,
				fmt.Sprintf("outage neighbor AS%d missing from member errors %v", asn, errorASNs(snap))}
		}
	}
	if chaos.Strict && len(failed) != len(chaos.Outage) {
		return CheckResult{"member-errors", ixp, false,
			fmt.Sprintf("strict IXP: member errors %v != scripted outage %v", errorASNs(snap), chaos.Outage)}
	}
	return CheckResult{"member-errors", ixp, true,
		fmt.Sprintf("%d member errors cover outage %v", len(snap.MemberErrors), chaos.Outage)}
}

func errorASNs(snap *collector.Snapshot) []uint32 {
	out := make([]uint32, 0, len(snap.MemberErrors))
	for _, me := range snap.MemberErrors {
		out = append(out, me.ASN)
	}
	return out
}

// restrict builds the reference run's view of a degraded world: the
// reference snapshot minus the routes of the failed members. Members
// stay — a degraded crawl still fetches the full member list — and so
// does FilteredCount, which comes from the same listing.
func restrict(ref *collector.Snapshot, failed map[uint32]bool) *collector.Snapshot {
	out := &collector.Snapshot{
		IXP:           ref.IXP,
		Date:          ref.Date,
		Members:       append([]collector.Member(nil), ref.Members...),
		FilteredCount: ref.FilteredCount,
	}
	for _, r := range ref.Routes {
		if !failed[r.PeerAS()] {
			out.Routes = append(out.Routes, r)
		}
	}
	out.Normalize()
	return out
}

// checkDegradedEquivalence verifies invariant 4: the degraded
// snapshot carries exactly the reference content restricted to the
// surviving members — first byte-for-byte on the route data, then
// through the analysis layer (the numbers the paper reports must not
// care whether a member was missing or never crawled).
func checkDegradedEquivalence(ixp string, scheme *dictionary.Scheme, ref, degraded *collector.Snapshot) []CheckResult {
	var out []CheckResult
	want := restrict(ref, degraded.FailedMemberSet())
	got := *degraded
	got.Partial = false
	got.MemberErrors = nil
	wantDigest, werr := digest(want)
	gotDigest, gerr := digest(&got)
	switch {
	case werr != nil || gerr != nil:
		out = append(out, CheckResult{"degraded-equivalence", ixp, false, fmt.Sprintf("digest: %v %v", werr, gerr)})
	case wantDigest != gotDigest:
		out = append(out, CheckResult{"degraded-equivalence", ixp, false,
			fmt.Sprintf("degraded routes != reference restricted to survivors (%d vs %d routes)", len(got.Routes), len(want.Routes))})
	default:
		out = append(out, CheckResult{"degraded-equivalence", ixp, true,
			fmt.Sprintf("%d routes identical to restricted reference", len(got.Routes))})
	}
	for _, v6 := range []bool{false, true} {
		fam := "v4"
		if v6 {
			fam = "v6"
		}
		if u1, u2 := analysis.ComputeUsage(degraded, scheme, v6), analysis.ComputeUsage(want, scheme, v6); u1 != u2 {
			out = append(out, CheckResult{"analysis-equivalence", ixp, false,
				fmt.Sprintf("%s usage %+v != restricted reference %+v", fam, u1, u2)})
			continue
		}
		if o1, o2 := analysis.OccurrencesPerType(degraded, scheme, v6), analysis.OccurrencesPerType(want, scheme, v6); !reflect.DeepEqual(o1, o2) {
			out = append(out, CheckResult{"analysis-equivalence", ixp, false,
				fmt.Sprintf("%s per-type occurrences diverge", fam)})
			continue
		}
		a1, i1 := analysis.ActionInfoSplit(degraded, scheme, v6)
		a2, i2 := analysis.ActionInfoSplit(want, scheme, v6)
		if a1 != a2 || i1 != i2 {
			out = append(out, CheckResult{"analysis-equivalence", ixp, false,
				fmt.Sprintf("%s action/info split %d/%d != %d/%d", fam, a1, i1, a2, i2)})
			continue
		}
		out = append(out, CheckResult{"analysis-equivalence", ixp, true, fam + " usage, occurrences and split match"})
	}
	return out
}

// scrapeCounters fetches a /metrics endpoint over HTTP and parses the
// counter samples (histogram series and comments skipped) into
// name{labels} → value.
func scrapeCounters(client *http.Client, url string) (map[string]float64, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("soak: scrape %s: HTTP %d", url, resp.StatusCode)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(io.LimitReader(resp.Body, 16<<20))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	return out, sc.Err()
}

// counterSum adds up every sample of one family (all label
// combinations).
func counterSum(samples map[string]float64, family string) float64 {
	var sum float64
	for name, v := range samples {
		if name == family || strings.HasPrefix(name, family+"{") {
			sum += v
		}
	}
	return sum
}

// checkCounter compares one scraped value against an observed total.
func checkCounter(name string, got float64, want int) CheckResult {
	if int(got) != want {
		return CheckResult{"metrics-reconcile", name, false,
			fmt.Sprintf("/metrics says %d, run observed %d", int(got), want)}
	}
	return CheckResult{"metrics-reconcile", name, true, fmt.Sprintf("%d", want)}
}
