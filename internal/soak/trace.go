package soak

import (
	"context"
	"fmt"

	"ixplight/internal/telemetry"
)

// phase runs fn under one root "soak.phase" trace span and validates
// the trace ledger once the phase is over. Everything a phase does —
// multi-IXP collects, neighbor crawls, LG requests — carries the
// phase span's context, so the ledger grows exactly one span tree per
// phase.
func (h *harness) phase(ctx context.Context, name string, fn func(context.Context)) {
	h.phaseErr(ctx, name, func(pctx context.Context) error {
		fn(pctx)
		return nil
	})
}

// phaseErr is phase for bodies that can fail; the ledger is validated
// even when the body errors (a failing phase must still leave a
// well-formed ledger behind).
func (h *harness) phaseErr(ctx context.Context, name string, fn func(context.Context) error) error {
	pctx, sp := telemetry.StartSpan(ctx, h.reg, "soak.phase")
	sp.SetAttr("phase", name)
	err := fn(pctx)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	h.checkLedger(name)
	return err
}

// checkLedger validates the spans the just-finished phase appended to
// the trace ledger: the file parses (header version included), no
// span was dropped by the size cap, every span finished no earlier
// than it started, every non-root ParentID resolves to a span in the
// ledger, and the phase emitted exactly one root — its own soak.phase
// span. One CheckResult per phase.
func (h *harness) checkLedger(phase string) {
	if h.sink == nil {
		return
	}
	fail := func(detail string) {
		h.check(CheckResult{"trace-ledger", phase, false, detail})
	}
	if err := h.sink.Flush(); err != nil {
		fail("flush: " + err.Error())
		return
	}
	if n := h.sink.Dropped(); n > 0 {
		fail(fmt.Sprintf("%d spans dropped by the ledger size cap", n))
		return
	}
	led, err := telemetry.ReadLedger(h.tracePath)
	if err != nil {
		fail(err.Error())
		return
	}
	if len(led.Spans) < h.ledgerSeen {
		fail(fmt.Sprintf("ledger shrank: %d spans, %d already validated", len(led.Spans), h.ledgerSeen))
		return
	}
	// Parents may finish after their children (a collect span ends
	// after its neighbor spans), so resolution is checked against the
	// whole ledger, roots only against this phase's segment.
	ids := make(map[string]bool, len(led.Spans))
	for i := range led.Spans {
		ids[led.Spans[i].ID] = true
	}
	segment := led.Spans[h.ledgerSeen:]
	h.ledgerSeen = len(led.Spans)
	roots := 0
	rootName := ""
	for i := range segment {
		s := &segment[i]
		if s.End < s.Start {
			fail(fmt.Sprintf("span %s (%s) ends %dns before it starts", s.ID, s.Name, s.Start-s.End))
			return
		}
		if s.Root() {
			roots++
			rootName = s.Name
			continue
		}
		if !ids[s.Parent] {
			fail(fmt.Sprintf("span %s (%s) has unresolved parent %s", s.ID, s.Name, s.Parent))
			return
		}
	}
	if roots != 1 || rootName != "soak.phase" {
		fail(fmt.Sprintf("%d root spans in phase segment (want exactly one soak.phase), %d spans total", roots, len(segment)))
		return
	}
	h.check(CheckResult{"trace-ledger", phase, true,
		fmt.Sprintf("%d spans, one root, all parents resolved", len(segment))})
}
