package soak

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"time"

	"ixplight/internal/collector"
	"ixplight/internal/ixpgen"
	"ixplight/internal/lg"
	"ixplight/internal/telemetry"
)

// Config tunes one soak run. The zero value is not runnable; use
// DefaultConfig as the base.
type Config struct {
	// IXPs is how many simulated IXPs to run (capped at the number of
	// calibrated profiles).
	IXPs int
	// Kills is how many of them are killed and restarted mid-crawl
	// per round.
	Kills int
	// Rounds repeats the chaos cycle (degrade → kill → resume).
	Rounds int
	// Seed drives everything random: workload generation, the chaos
	// schedule and the flaky middleware. Same seed, same run.
	Seed int64
	// Scale shrinks the generated workloads (1.0 = the paper's
	// calibrated sizes — far too big for a quick soak).
	Scale float64
	// NeighborParallelism fans each crawl's route fetches out.
	NeighborParallelism int
	// Dir holds checkpoint files (required).
	Dir string
	// Date stamps the collected snapshots.
	Date string
	// TracePath is where the run's trace ledger is written (empty =
	// <Dir>/trace.jsonl). Tracing is always on in a soak: every phase
	// runs under one root "soak.phase" span, and after each phase the
	// harness validates the ledger's shape (see checkLedger).
	TracePath string
	// Logf, when set, narrates the run.
	Logf func(format string, args ...any)
}

// DefaultConfig is the quick deterministic soak: three IXPs, two
// kill/restart cycles, one round, small workloads.
func DefaultConfig() Config {
	return Config{
		IXPs:                3,
		Kills:               2,
		Rounds:              1,
		Seed:                1,
		Scale:               0.004,
		NeighborParallelism: 4,
		Date:                "2021-10-04",
	}
}

// Report is one soak run's outcome: the chaos script it played, the
// final snapshot digests, and every invariant verdict.
type Report struct {
	Schedule string
	// Digests maps IXP name → sha256 of the binary-codec encoding of
	// the final (post-resume) snapshot. Reproducible per seed.
	Digests map[string]string
	Checks  []CheckResult
	// Requests is the total client-side HTTP request count across all
	// phases.
	Requests int
	// TracePath is where the run's trace ledger landed.
	TracePath string
	Duration  time.Duration
}

// OK reports whether every invariant held.
func (r *Report) OK() bool {
	for _, c := range r.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// Failed returns the failing checks.
func (r *Report) Failed() []CheckResult {
	var out []CheckResult
	for _, c := range r.Checks {
		if !c.OK {
			out = append(out, c)
		}
	}
	return out
}

// harness carries one run's live state.
type harness struct {
	cfg    Config
	ixps   []*SimIXP
	http   *http.Client
	reg    *telemetry.Registry
	lgm    *lg.Metrics
	colm   *collector.Metrics
	report *Report

	// trace ledger state: the sink every span lands in, its path, and
	// how many ledger spans earlier phases already validated.
	sink       *telemetry.JSONLSink
	tracePath  string
	ledgerSeen int

	// observed totals for the final metrics reconciliation
	httpRequests       int
	calls              int
	memberErrors       int
	planNeighbors      int
	snapshotsByOutcome map[string]int
	neighborOutcomes   int
}

func (h *harness) logf(format string, args ...any) {
	if h.cfg.Logf != nil {
		h.cfg.Logf(format, args...)
	}
}

func (h *harness) check(c CheckResult) {
	h.report.Checks = append(h.report.Checks, c)
	if !c.OK {
		h.logf("FAIL %s %s: %s", c.Name, c.IXP, c.Detail)
	}
}

// clientOptions is the crawl tuning every phase shares: fast retries
// (chaos makes them constant), a request timeout that cuts hangs off,
// and the harness's shared transport and instruments.
func (h *harness) clientOptions() lg.ClientOptions {
	return lg.ClientOptions{
		MaxRetries:     3,
		RetryBackoff:   2 * time.Millisecond,
		MaxBackoff:     25 * time.Millisecond,
		RequestTimeout: 400 * time.Millisecond,
		MaxInFlight:    h.cfg.NeighborParallelism,
		HTTPClient:     h.http,
		Metrics:        h.lgm,
	}
}

// targets builds the multi-IXP crawl target list over the live
// listeners. build tweaks each target's collect options.
func (h *harness) targets(build func(i int, c *collector.CollectOptions)) []collector.Target {
	out := make([]collector.Target, len(h.ixps))
	for i, sim := range h.ixps {
		copts := collector.CollectOptions{
			NeighborParallelism: h.cfg.NeighborParallelism,
			Metrics:             h.colm,
		}
		if build != nil {
			build(i, &copts)
		}
		out[i] = collector.Target{
			Name:    sim.Name,
			URL:     sim.URL(),
			Options: h.clientOptions(),
			Collect: copts,
		}
	}
	return out
}

// account folds one phase's results into the totals the final
// /metrics reconciliation compares against.
func (h *harness) account(results []collector.Result) {
	for _, r := range results {
		h.httpRequests += r.Requests
		h.calls += r.Calls
		switch {
		case r.Err != nil:
			h.snapshotsByOutcome["failed"]++
		case r.Partial:
			h.snapshotsByOutcome["partial"]++
		default:
			h.snapshotsByOutcome["ok"]++
		}
		if r.Snapshot != nil {
			h.memberErrors += len(r.Snapshot.MemberErrors)
		}
		h.planNeighbors += r.Stats.Neighbors
	}
	h.report.Requests = h.httpRequests
}

// Run executes one full soak: reference crawl, then per round a
// degraded crawl under scripted chaos, a kill mid-crawl, and a
// restart+resume — with invariants checked after every phase and the
// telemetry reconciled at the end.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("soak: Config.Dir is required")
	}
	if cfg.Date == "" {
		cfg.Date = "2021-10-04"
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	profiles := ixpgen.Profiles()
	if cfg.IXPs <= 0 || cfg.IXPs > len(profiles) {
		cfg.IXPs = len(profiles)
	}
	if cfg.Kills > cfg.IXPs {
		cfg.Kills = cfg.IXPs
	}

	start := time.Now()
	transport := &http.Transport{MaxIdleConnsPerHost: cfg.NeighborParallelism + 2}
	defer transport.CloseIdleConnections()
	reg := telemetry.New()
	h := &harness{
		cfg:                cfg,
		http:               &http.Client{Transport: transport},
		reg:                reg,
		lgm:                lg.NewMetrics(reg),
		colm:               collector.NewMetrics(reg),
		report:             &Report{Digests: make(map[string]string)},
		snapshotsByOutcome: make(map[string]int),
	}

	// Every soak runs traced: a per-run ledger, validated after each
	// phase, is itself one of the invariants under test.
	h.tracePath = cfg.TracePath
	if h.tracePath == "" {
		h.tracePath = filepath.Join(cfg.Dir, "trace.jsonl")
	}
	sink, err := telemetry.NewJSONLSink(h.tracePath, 0)
	if err != nil {
		return nil, fmt.Errorf("soak: trace ledger: %w", err)
	}
	defer sink.Close()
	h.sink = sink
	reg.SetSpanSink(sink)
	h.report.TracePath = h.tracePath

	// Boot the fleet: real listeners on ephemeral ports.
	for i := 0; i < cfg.IXPs; i++ {
		sim, err := NewSimIXP(profiles[i], cfg.Seed+int64(i), cfg.Scale)
		if err != nil {
			return nil, err
		}
		if err := sim.Start(); err != nil {
			return nil, err
		}
		defer sim.Stop()
		h.ixps = append(h.ixps, sim)
		h.logf("ixp %d: %s on %s (%d peers)", i, sim.Name, sim.URL(), len(sim.RS.Peers()))
	}

	// The telemetry surface the final reconciliation scrapes, on a
	// real socket like everything else.
	metricsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("soak: metrics listener: %w", err)
	}
	metricsSrv := &http.Server{Handler: reg.Handler()}
	go metricsSrv.Serve(metricsLn)
	defer metricsSrv.Close()
	metricsURL := "http://" + metricsLn.Addr().String() + "/metrics"

	// Phase 0: chaos-free reference crawl of every IXP. Its snapshots
	// are the ground truth every later invariant compares against, and
	// its deterministic shape feeds the schedule generator.
	h.logf("phase 0: reference crawl (%d IXPs)", len(h.ixps))
	var refResults []collector.Result
	h.phase(ctx, "reference", func(pctx context.Context) {
		refResults = collector.CollectAllWithOptions(pctx, h.targets(nil), cfg.Date, collector.MultiOptions{})
	})
	refs := make([]*collector.Snapshot, len(h.ixps))
	infos := make([]planInfo, len(h.ixps))
	refServerTotals := make([]int, len(h.ixps))
	for i, r := range refResults {
		if r.Err != nil {
			return nil, fmt.Errorf("soak: reference crawl %s: %w", r.Target.Name, r.Err)
		}
		if r.Partial {
			return nil, fmt.Errorf("soak: reference crawl %s came back partial", r.Target.Name)
		}
		refs[i] = r.Snapshot
		refServerTotals[i] = h.ixps[i].Total()
		planSet := make(map[uint32]bool)
		for _, rt := range r.Snapshot.Routes {
			planSet[rt.PeerAS()] = true
		}
		for asn := range planSet {
			infos[i].planASNs = append(infos[i].planASNs, asn)
		}
		sort.Slice(infos[i].planASNs, func(a, b int) bool { return infos[i].planASNs[a] < infos[i].planASNs[b] })
		infos[i].serverRequests = refServerTotals[i]
		d, err := digest(r.Snapshot)
		if err != nil {
			return nil, err
		}
		h.report.Digests[r.Target.Name] = d
		h.check(CheckResult{"reference", r.Target.Name, true,
			fmt.Sprintf("%d members, %d routes, %d plan neighbors", len(r.Snapshot.Members), len(r.Snapshot.Routes), r.Stats.Neighbors)})
		for _, c := range checkCodecs(r.Target.Name, r.Snapshot) {
			h.check(c)
		}
	}
	h.account(refResults)

	// The whole run's chaos is scripted here, before any of it plays
	// out: a pure function of the seed and the reference shape.
	rng := rand.New(rand.NewSource(cfg.Seed))
	sched := buildSchedule(rng, infos, cfg.Rounds, cfg.Kills)
	h.report.Schedule = sched.String()
	h.logf("chaos schedule:\n%s", h.report.Schedule)

	for round, chaos := range sched.Rounds {
		if err := h.runRound(ctx, round, chaos, refResults, refs); err != nil {
			return nil, err
		}
	}

	// Final: reconcile the /metrics surface with what the run
	// observed, over a real scrape.
	samples, err := scrapeCounters(h.http, metricsURL)
	if err != nil {
		return nil, fmt.Errorf("soak: scrape: %w", err)
	}
	h.check(checkCounter("ixplight_lg_http_requests_total",
		counterSum(samples, "ixplight_lg_http_requests_total"), h.httpRequests))
	h.check(checkCounter("ixplight_lg_requests_total",
		counterSum(samples, "ixplight_lg_requests_total"), h.calls))
	h.check(checkCounter("ixplight_collector_member_errors_total",
		counterSum(samples, "ixplight_collector_member_errors_total"), h.memberErrors))
	h.check(checkCounter("ixplight_collector_neighbors_total",
		counterSum(samples, "ixplight_collector_neighbors_total"), h.planNeighbors))
	for _, outcome := range []string{"ok", "partial", "failed"} {
		h.check(checkCounter(fmt.Sprintf("ixplight_collector_snapshots_total{outcome=%q}", outcome),
			counterSum(samples, fmt.Sprintf("ixplight_collector_snapshots_total{outcome=%q}", outcome)),
			h.snapshotsByOutcome[outcome]))
	}
	// Client-side wire requests can exceed what servers saw (refused
	// connections after a kill are counted by the client only), never
	// the reverse.
	serverTotal := 0
	for _, sim := range h.ixps {
		serverTotal += sim.Total()
	}
	if serverTotal > h.httpRequests {
		h.check(CheckResult{"metrics-reconcile", "server-vs-client", false,
			fmt.Sprintf("servers saw %d requests, clients sent %d", serverTotal, h.httpRequests)})
	} else {
		h.check(CheckResult{"metrics-reconcile", "server-vs-client", true,
			fmt.Sprintf("servers saw %d of %d client requests", serverTotal, h.httpRequests)})
	}

	h.report.Duration = time.Since(start)
	return h.report, nil
}

// runRound plays one chaos round: degraded crawl under scripted
// flakiness, heal, kill mid-crawl, restart and resume.
func (h *harness) runRound(ctx context.Context, round int, chaos []IXPChaos, refResults []collector.Result, refs []*collector.Snapshot) error {
	cfg := h.cfg

	// Phase 1: arm the scripted chaos over the admin endpoints and
	// crawl everything in degraded mode.
	h.logf("round %d phase 1: degraded crawl under chaos", round)
	for i, sim := range h.ixps {
		if err := sim.SetFlaky(ctx, h.http, chaos[i].Flaky); err != nil {
			return err
		}
	}
	var degResults []collector.Result
	h.phase(ctx, fmt.Sprintf("degraded-r%d", round), func(pctx context.Context) {
		degResults = collector.CollectAllWithOptions(pctx, h.targets(func(i int, c *collector.CollectOptions) {
			c.Partial = true
			c.NeighborRetries = 1
		}), cfg.Date, collector.MultiOptions{})
	})
	h.account(degResults)
	for i, r := range degResults {
		name := r.Target.Name
		if r.Err != nil {
			h.check(CheckResult{"degraded-crawl", name, false, r.Err.Error()})
			continue
		}
		h.check(CheckResult{"degraded-crawl", name, true,
			fmt.Sprintf("partial=%v, %d member errors", r.Partial, len(r.Snapshot.MemberErrors))})
		h.check(checkMemberErrors(name, r.Snapshot, chaos[i]))
		for _, c := range checkCodecs(name, r.Snapshot) {
			h.check(c)
		}
		for _, c := range checkDegradedEquivalence(name, h.ixps[i].Profile.Scheme, refs[i], r.Snapshot) {
			h.check(c)
		}
	}

	// Heal everything before the kill phase: its chaos is the kill
	// itself, nothing stochastic.
	for _, sim := range h.ixps {
		if err := sim.SetFlaky(ctx, h.http, lg.FlakyOptions{}); err != nil {
			return err
		}
	}

	// Phase 2: arm the kills and crawl everything with checkpoints.
	h.logf("round %d phase 2: kill %d servers mid-crawl", round, killCount(chaos))
	ckptPath := func(i int) string {
		return filepath.Join(cfg.Dir, fmt.Sprintf("soak-r%d-%s.ckpt", round, h.ixps[i].Name))
	}
	for i, sim := range h.ixps {
		if chaos[i].KillAfter > 0 {
			sim.ArmKill(chaos[i].KillAfter)
		}
	}
	var killResults []collector.Result
	h.phase(ctx, fmt.Sprintf("kill-r%d", round), func(pctx context.Context) {
		killResults = collector.CollectAllWithOptions(pctx, h.targets(func(i int, c *collector.CollectOptions) {
			c.Partial = true
			c.ErrorBudget = 3
			c.CheckpointPath = ckptPath(i)
		}), cfg.Date, collector.MultiOptions{})
	})
	h.account(killResults)
	for i, r := range killResults {
		name := r.Target.Name
		if chaos[i].KillAfter == 0 {
			// Untouched IXPs must come back byte-identical to the
			// reference even while their siblings are being killed.
			if r.Err != nil || r.Partial {
				h.check(CheckResult{"kill-bystander", name, false,
					fmt.Sprintf("undisturbed crawl degraded: err=%v partial=%v", r.Err, r.Partial)})
				continue
			}
			d, err := digest(r.Snapshot)
			if err != nil {
				return err
			}
			h.check(CheckResult{"kill-bystander", name, d == h.report.Digests[name],
				"snapshot digest vs reference"})
			continue
		}
		if !h.ixps[i].Killed() {
			h.check(CheckResult{"kill", name, false,
				fmt.Sprintf("kill after %d requests never fired", chaos[i].KillAfter)})
			continue
		}
		// A killed crawl may survive as partial (budget tripped) or
		// fail outright — both are legal; what matters is what resume
		// makes of the leftovers.
		h.check(CheckResult{"kill", name, true,
			fmt.Sprintf("killed mid-crawl: err=%v partial=%v", r.Err != nil, r.Partial)})
	}

	// Phase 3: restart the killed servers and resume their crawls
	// from the checkpoints.
	h.logf("round %d phase 3: restart and resume", round)
	return h.phaseErr(ctx, fmt.Sprintf("resume-r%d", round), func(pctx context.Context) error {
		return h.resumeKilled(pctx, round, chaos, refResults, ckptPath)
	})
}

// resumeKilled is phase 3's body: restart every killed server and
// resume its crawl from the checkpoint, checking the resume
// invariants per IXP.
func (h *harness) resumeKilled(ctx context.Context, round int, chaos []IXPChaos, refResults []collector.Result, ckptPath func(int) string) error {
	cfg := h.cfg
	for i, sim := range h.ixps {
		if chaos[i].KillAfter == 0 {
			continue
		}
		name := sim.Name
		if err := sim.Restart(); err != nil {
			return err
		}
		// Lenient load: a checkpoint torn by the kill must fall back
		// to a fresh crawl, never abort the soak.
		ck, err := collector.ResumeCheckpoint(ckptPath(i), h.cfg.Logf)
		if err != nil {
			return fmt.Errorf("soak: resume checkpoint %s: %w", name, err)
		}
		doneBefore := 0
		countsBefore := sim.NeighborCounts()
		if ck != nil {
			doneBefore = len(ck.Done)
		}
		resumeResults := collector.CollectAllWithOptions(ctx, []collector.Target{{
			Name:    name,
			URL:     sim.URL(),
			Options: h.clientOptions(),
			Collect: collector.CollectOptions{
				Partial:             true,
				NeighborParallelism: cfg.NeighborParallelism,
				Metrics:             h.colm,
				Checkpoint:          ck,
				CheckpointPath:      ckptPath(i),
			},
		}}, cfg.Date, collector.MultiOptions{})
		h.account(resumeResults)
		rr := resumeResults[0]
		if rr.Err != nil || rr.Partial {
			h.check(CheckResult{"resume", name, false,
				fmt.Sprintf("resumed crawl err=%v partial=%v", rr.Err, rr.Partial)})
			continue
		}
		// Invariant 3a, by server observation: zero routes requests
		// re-issued for checkpointed neighbors.
		countsAfter := sim.NeighborCounts()
		reissued := 0
		if ck != nil {
			for _, asn := range ck.Done[:doneBefore] {
				reissued += countsAfter[asn] - countsBefore[asn]
			}
		}
		h.check(CheckResult{"resume-no-reissue", name, reissued == 0,
			fmt.Sprintf("%d requests re-issued for %d checkpointed neighbors", reissued, doneBefore)})
		// Invariant 3b, by client telemetry: the resumed crawl spends
		// exactly status + neighbors + one listing per remaining
		// neighbor.
		wantCalls := 2 + refResults[i].Stats.Neighbors - doneBefore
		h.check(CheckResult{"resume-call-budget", name, rr.Calls == wantCalls,
			fmt.Sprintf("%d logical calls, want %d (plan %d, %d done)",
				rr.Calls, wantCalls, refResults[i].Stats.Neighbors, doneBefore)})
		// The acceptance bar: the resumed snapshot is byte-for-byte
		// the reference.
		d, err := digest(rr.Snapshot)
		if err != nil {
			return err
		}
		h.check(CheckResult{"resume-digest", name, d == h.report.Digests[name],
			"final snapshot bytes vs reference"})
		if _, err := os.Stat(ckptPath(i)); !os.IsNotExist(err) {
			h.check(CheckResult{"resume-cleanup", name, false, "completed crawl left its checkpoint behind"})
		} else {
			h.check(CheckResult{"resume-cleanup", name, true, "checkpoint removed"})
		}
		for _, c := range checkCodecs(name, rr.Snapshot) {
			h.check(c)
		}
	}
	return nil
}

func killCount(chaos []IXPChaos) int {
	n := 0
	for _, c := range chaos {
		if c.KillAfter > 0 {
			n++
		}
	}
	return n
}
