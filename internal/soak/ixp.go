// Package soak is the end-to-end chaos harness: it spins up several
// simulated IXP looking glasses as real HTTP listeners, runs the
// resumable parallel collector against all of them at once, injects
// failures mid-crawl — kills, flaky responses, neighbor outages,
// pagination shrinkage — from a seeded, reproducible schedule, and
// after every phase checks the invariants the robustness layers
// promise (degraded snapshots, checkpoints, resume, telemetry).
//
// Everything chaotic is scripted from one seed: the same Config
// reproduces the identical chaos schedule and the identical final
// snapshot bytes, so a soak failure is replayable, not anecdotal.
package soak

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"ixplight/internal/ixpgen"
	"ixplight/internal/lg"
	"ixplight/internal/rs"
)

// SimIXP is one simulated IXP: a route server populated with a seeded
// workload, exposed as a looking glass on a real TCP listener. The
// route server survives kills and restarts — chaos perturbs delivery,
// never content — and the listener re-binds the same port so crawl
// targets stay valid across a kill.
type SimIXP struct {
	Name    string
	Profile ixpgen.Profile
	RS      *rs.Server

	flaky   *lg.FlakySwitch
	handler http.Handler

	mu      sync.Mutex
	addr    string // pinned after the first Start
	srv     *http.Server
	running bool
	total   int   // LG requests served across all incarnations
	perASN  map[uint32]int
	killAt  int  // fire a kill once total reaches this (0 = disarmed)
	killed  bool // a kill fired since the last Restart
}

// NewSimIXP generates the profile's workload at the given seed/scale,
// populates a fresh route server and wraps it with the LG API behind
// a flaky switch and a request-counting middleware. Call Start to
// begin serving.
func NewSimIXP(profile ixpgen.Profile, seed int64, scale float64) (*SimIXP, error) {
	server, err := rs.New(rs.Config{
		Scheme:       profile.Scheme,
		MaxPathLen:   64,
		ScrubActions: true,
	})
	if err != nil {
		return nil, fmt.Errorf("soak: %s: %w", profile.IXP, err)
	}
	w, err := ixpgen.Generate(profile, ixpgen.Options{Seed: seed, Scale: scale})
	if err != nil {
		return nil, fmt.Errorf("soak: %s: %w", profile.IXP, err)
	}
	if err := w.Populate(server); err != nil {
		return nil, fmt.Errorf("soak: %s: %w", profile.IXP, err)
	}
	s := &SimIXP{
		Name:    profile.IXP,
		Profile: profile,
		RS:      server,
		flaky:   lg.NewFlakySwitch(lg.NewServer(server), lg.FlakyOptions{}),
		perASN:  make(map[uint32]int),
	}
	// Admin traffic bypasses the counter and the flaky switch: chaos
	// control must stay reachable and uncounted while chaos is on.
	mux := http.NewServeMux()
	mux.Handle("/admin/", lg.AdminHandler(s.flaky))
	mux.Handle("/", s.counting(s.flaky))
	s.handler = mux
	return s, nil
}

// counting wraps the LG handler with the server-side observer the
// invariant checks reconcile against: total and per-neighbor request
// counts, and the one-shot kill trigger.
func (s *SimIXP) counting(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		s.total++
		if asn, ok := neighborASN(r.URL.Path); ok {
			s.perASN[asn]++
		}
		var victim *http.Server
		if s.killAt > 0 && s.total >= s.killAt && !s.killed {
			s.killed = true
			s.killAt = 0
			victim = s.srv
			s.running = false
		}
		s.mu.Unlock()
		if victim != nil {
			// An abrupt kill, not a drain: every open connection —
			// including this request's — dies mid-flight.
			victim.Close()
			return
		}
		next.ServeHTTP(w, r)
	})
}

// neighborASN extracts the neighbor ASN from a routes-listing path
// (/api/v1/routeservers/<rs>/neighbors/<asn>/routes...).
func neighborASN(path string) (uint32, bool) {
	const marker = "/neighbors/"
	i := strings.Index(path, marker)
	if i < 0 {
		return 0, false
	}
	rest := path[i+len(marker):]
	j := strings.IndexByte(rest, '/')
	if j < 0 || !strings.HasPrefix(rest[j:], "/routes") {
		return 0, false
	}
	asn, err := strconv.ParseUint(rest[:j], 10, 32)
	if err != nil {
		return 0, false
	}
	return uint32(asn), true
}

// Start begins serving. The first call binds an ephemeral port; every
// later call (Restart) re-binds the same address so the crawl target
// stays valid. Re-binding retries briefly: the dying incarnation's
// socket may still be closing.
func (s *SimIXP) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return fmt.Errorf("soak: %s already running", s.Name)
	}
	addr := s.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("soak: %s listen %s: %w", s.Name, addr, err)
	}
	s.addr = ln.Addr().String()
	s.srv = &http.Server{Handler: s.handler}
	s.running = true
	s.killed = false
	go s.srv.Serve(ln)
	return nil
}

// URL returns the LG base URL. Stable across restarts once started.
func (s *SimIXP) URL() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return "http://" + s.addr
}

// ArmKill schedules an abrupt server kill after n more LG requests
// have been served. The trigger is one-shot; Restart re-arms nothing.
func (s *SimIXP) ArmKill(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.killAt = s.total + n
	s.killed = false
}

// Killed reports whether the armed kill has fired.
func (s *SimIXP) Killed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.killed
}

// Restart brings a killed (or stopped) server back on the same
// address. The route server and its content are untouched.
func (s *SimIXP) Restart() error { return s.Start() }

// Stop shuts the listener down abruptly (test teardown).
func (s *SimIXP) Stop() {
	s.mu.Lock()
	srv := s.srv
	s.running = false
	s.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
}

// Total returns the LG requests served across all incarnations
// (admin traffic excluded).
func (s *SimIXP) Total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// NeighborCounts returns a copy of the per-neighbor routes-request
// counts — what the server actually saw, reconciled against what the
// client claims it sent.
func (s *SimIXP) NeighborCounts() map[uint32]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[uint32]int, len(s.perASN))
	for asn, n := range s.perASN {
		out[asn] = n
	}
	return out
}

// SetFlaky arms (or heals, with the zero options) failure injection
// over the real admin endpoint — the same wire path an operator or
// the soak driver would use, not an in-process shortcut.
func (s *SimIXP) SetFlaky(ctx context.Context, client *http.Client, opts lg.FlakyOptions) error {
	body, err := flakyJSON(opts)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.URL()+"/admin/flaky", strings.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("soak: %s: arm flaky: %w", s.Name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("soak: %s: arm flaky: HTTP %d", s.Name, resp.StatusCode)
	}
	return nil
}
